/**
 * @file
 * ehpsim-lint: simulator-specific determinism and hygiene rules.
 *
 * The compiler cannot check the two properties ehpsim's value rests
 * on: simulated time must be the only clock, and everything that
 * reaches stats or JSON output must be byte-deterministic across
 * worker counts. This linter enforces the project conventions that
 * protect those properties:
 *
 *   wall-clock      no wall-clock APIs outside sim/wall_timer
 *   raw-rand        no rand()/std::random_device etc. outside sim/rng
 *   unordered-iter  no iteration over std::unordered_map/_set
 *   event-new       events go through EventQueue factory paths, not
 *                   raw new/delete (the PR 1 use-after-free class)
 *   event-alloc     one-shot callbacks in hot paths use the pooled
 *                   scheduleCallback(), not an allocating
 *                   new LambdaEvent / scheduleLambda(capturing)
 *   dup-stat        a stat name registers at most once per group
 *   float-arith     no float in simulation arithmetic (use double)
 *   chunk-alloc     no per-iteration std::vector construction in
 *                   collective-construction loops (src/comm); the
 *                   chunk DAG builders are a per-chunk hot path and
 *                   use closed-form counts or reused scratch buffers
 *   static-state    no mutable globals or function-static locals:
 *                   state shared behind the SimObject tree's back
 *                   leaks between sweep jobs and races under
 *                   parallel workers (whitelist: sim/access_tracker,
 *                   whose thread-local binding is the sanctioned
 *                   exception)
 *   pointer-key     no ordered containers (std::map/set) keyed by
 *                   raw pointers: pointer order is
 *                   allocator-dependent, so iteration order varies
 *                   run to run
 *   snapshot-pair   a class overriding one of the checkpoint pair
 *                   snapshot(SnapshotWriter&) /
 *                   restore(SnapshotReader&) without the other: the
 *                   writer and reader must walk the same record
 *                   sequence, so a one-sided override desyncs the
 *                   stream for every object serialized after it
 *                   (whitelist: sim/event_queue, whose save/restore
 *                   pair is the kernel-side convention)
 *
 * Findings can be suppressed with a comment on the same or the
 * preceding line:
 *
 *     // ehpsim-lint: allow(unordered-iter)
 *
 * or for a whole file:
 *
 *     // ehpsim-lint: allow-file(unordered-iter)
 *
 * The analysis is token-level, not a full C++ parse: comments and
 * string literals are stripped, declarations of unordered containers
 * are tracked across the whole run (so a loop in probe_filter.cc over
 * a member declared in probe_filter.hh is still caught), and each
 * rule matches a small, documented set of patterns. That keeps the
 * linter dependency-free, fast, and wrong in predictable ways — the
 * allow() hatch covers the rest.
 */

#ifndef EHPSIM_TOOLS_LINT_LINT_HH
#define EHPSIM_TOOLS_LINT_LINT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace ehpsim
{
namespace lint
{

/** Rule identifiers; stable strings used in output and allow(). */
enum class Rule
{
    wallClock,
    rawRand,
    unorderedIter,
    eventNew,
    eventAlloc,
    dupStat,
    floatArith,
    chunkAlloc,
    staticState,
    pointerKey,
    snapshotPair,
};

/** The stable name used in output lines and allow() directives. */
const char *ruleName(Rule r);

/** Parse a rule name; returns false if unknown. */
bool parseRule(const std::string &name, Rule &out);

/** All rules, in reporting order. */
const std::vector<Rule> &allRules();

/** One-line human rationale per rule (for --list-rules). */
const char *ruleRationale(Rule r);

/** A single finding. */
struct Finding
{
    std::string file;
    unsigned line = 0;
    Rule rule = Rule::wallClock;
    std::string message;
};

/** Render as the machine-readable "file:line:rule: message" form. */
std::string toString(const Finding &f);

/**
 * Render a finding set as the ehpsim-lint-v1 JSON document
 * (deterministic: findings are already sorted by lintFiles). Used
 * by `ehpsim-lint --format=json` and CI annotation tooling.
 */
std::string toJson(const std::vector<Finding> &findings);

struct Options
{
    /**
     * Restrict checking to these rules; empty means all rules.
     */
    std::vector<Rule> only_rules;

    /**
     * Apply the built-in path whitelist (sim/wall_timer and sim/rng
     * may touch the host clock and raw entropy; sim/event_queue owns
     * event lifetimes). Disabled in fixture tests.
     */
    bool default_whitelist = true;
};

/**
 * Lint a set of files. @p files are paths readable from the current
 * directory; directories must already be expanded (see listSources).
 * Findings come back sorted by (file, line, rule).
 */
std::vector<Finding> lintFiles(const std::vector<std::string> &files,
                               const Options &opts = {});

/**
 * Recursively collect C++ sources (.hh/.h/.hpp/.cc/.cpp) under each
 * path; a path that is itself a regular file is taken verbatim.
 * Results are lexicographically sorted so runs are deterministic.
 * @return false if any path does not exist.
 */
bool listSources(const std::vector<std::string> &paths,
                 std::vector<std::string> &out, std::string &error);

/**
 * Lint file content supplied directly (unit-test entry point).
 * @p filename is used for whitelisting and reporting only.
 */
std::vector<Finding> lintContent(const std::string &filename,
                                 const std::string &content,
                                 const Options &opts = {});

} // namespace lint
} // namespace ehpsim

#endif // EHPSIM_TOOLS_LINT_LINT_HH
