/**
 * @file
 * ehpsim-lint command-line driver.
 *
 *     ehpsim-lint [--rule <name>]... [--no-default-whitelist] \
 *                 [--list-rules] <path>...
 *
 * Paths may be files or directories (recursed for .hh/.h/.hpp/.cc/
 * .cpp). Findings print one per line as "file:line:rule: message".
 * Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ehpsim-lint [--rule <name>]... "
        "[--no-default-whitelist] [--list-rules] <path>...\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ehpsim::lint;

    Options opts;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const Rule r : allRules()) {
                std::printf("%-15s %s\n", ruleName(r),
                            ruleRationale(r));
            }
            return 0;
        } else if (arg == "--rule") {
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            Rule r;
            if (!parseRule(argv[++i], r)) {
                std::fprintf(stderr,
                             "ehpsim-lint: unknown rule '%s' "
                             "(--list-rules shows all)\n",
                             argv[i]);
                return 2;
            }
            opts.only_rules.push_back(r);
        } else if (arg == "--no-default-whitelist") {
            opts.default_whitelist = false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "ehpsim-lint: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage();
        return 2;
    }

    std::vector<std::string> files;
    std::string error;
    if (!listSources(paths, files, error)) {
        std::fprintf(stderr, "ehpsim-lint: %s\n", error.c_str());
        return 2;
    }

    const std::vector<Finding> findings = lintFiles(files, opts);
    for (const Finding &f : findings)
        std::printf("%s\n", toString(f).c_str());
    std::fprintf(stderr, "ehpsim-lint: %zu file(s), %zu finding(s)\n",
                 files.size(), findings.size());
    return findings.empty() ? 0 : 1;
}
