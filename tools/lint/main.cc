/**
 * @file
 * ehpsim-lint command-line driver.
 *
 *     ehpsim-lint [--rule <name>]... [--no-default-whitelist] \
 *                 [--format=text|json] [--list-rules] <path>...
 *
 * Paths may be files or directories (recursed for .hh/.h/.hpp/.cc/
 * .cpp). Findings print one per line as "file:line:rule: message"
 * (the form the CI problem matcher parses), or as the
 * ehpsim-lint-v1 JSON document with --format=json.
 * Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ehpsim-lint [--rule <name>]... "
        "[--no-default-whitelist] [--format=text|json] "
        "[--list-rules] <path>...\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ehpsim::lint;

    Options opts;
    std::vector<std::string> paths;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
            std::string fmt;
            if (arg == "--format") {
                if (i + 1 >= argc) {
                    usage();
                    return 2;
                }
                fmt = argv[++i];
            } else {
                fmt = arg.substr(std::string("--format=").size());
            }
            if (fmt == "json") {
                json = true;
            } else if (fmt == "text") {
                json = false;
            } else {
                std::fprintf(stderr,
                             "ehpsim-lint: unknown format '%s' "
                             "(text or json)\n",
                             fmt.c_str());
                return 2;
            }
        } else if (arg == "--list-rules") {
            for (const Rule r : allRules()) {
                std::printf("%-15s %s\n", ruleName(r),
                            ruleRationale(r));
            }
            return 0;
        } else if (arg == "--rule") {
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            Rule r;
            if (!parseRule(argv[++i], r)) {
                std::fprintf(stderr,
                             "ehpsim-lint: unknown rule '%s' "
                             "(--list-rules shows all)\n",
                             argv[i]);
                return 2;
            }
            opts.only_rules.push_back(r);
        } else if (arg == "--no-default-whitelist") {
            opts.default_whitelist = false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "ehpsim-lint: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty()) {
        usage();
        return 2;
    }

    std::vector<std::string> files;
    std::string error;
    if (!listSources(paths, files, error)) {
        std::fprintf(stderr, "ehpsim-lint: %s\n", error.c_str());
        return 2;
    }

    const std::vector<Finding> findings = lintFiles(files, opts);
    if (json) {
        std::fputs(toJson(findings).c_str(), stdout);
    } else {
        for (const Finding &f : findings)
            std::printf("%s\n", toString(f).c_str());
    }
    std::fprintf(stderr, "ehpsim-lint: %zu file(s), %zu finding(s)\n",
                 files.size(), findings.size());
    return findings.empty() ? 0 : 1;
}
