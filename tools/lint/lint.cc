#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace ehpsim
{
namespace lint
{

namespace
{

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isSpace(char c)
{
    return std::isspace(static_cast<unsigned char>(c));
}

std::size_t
skipSpace(const std::string &s, std::size_t i)
{
    while (i < s.size() && isSpace(s[i]))
        ++i;
    return i;
}

/** Offset of each line start, for offset -> line translation. */
std::vector<std::size_t>
lineStarts(const std::string &s)
{
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\n')
            starts.push_back(i + 1);
    }
    return starts;
}

unsigned
lineOf(const std::vector<std::size_t> &starts, std::size_t off)
{
    const auto it =
        std::upper_bound(starts.begin(), starts.end(), off);
    return static_cast<unsigned>(it - starts.begin());
}

/**
 * Blank comments (always) and string/char literals (optionally) with
 * spaces, preserving every byte offset and newline. Handles //,
 * block comments, escapes, and raw string literals.
 */
std::string
stripSource(const std::string &in, bool keep_strings)
{
    std::string out = in;
    std::size_t i = 0;
    const std::size_t n = in.size();

    auto blank = [&](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to && k < n; ++k) {
            if (out[k] != '\n')
                out[k] = ' ';
        }
    };

    while (i < n) {
        const char c = in[i];
        if (c == '/' && i + 1 < n && in[i + 1] == '/') {
            std::size_t j = i;
            while (j < n && in[j] != '\n')
                ++j;
            blank(i, j);
            i = j;
        } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
            std::size_t j = i + 2;
            while (j + 1 < n && !(in[j] == '*' && in[j + 1] == '/'))
                ++j;
            j = std::min(n, j + 2);
            blank(i, j);
            i = j;
        } else if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
                   (i == 0 || !isIdentChar(in[i - 1]))) {
            // Raw string: R"delim( ... )delim"
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && in[j] != '(')
                delim += in[j++];
            const std::string close = ")" + delim + "\"";
            const std::size_t end = in.find(close, j);
            const std::size_t stop =
                end == std::string::npos ? n : end + close.size();
            if (!keep_strings)
                blank(i, stop);
            i = stop;
        } else if (c == '"' || c == '\'') {
            // Skip char/string literal, honouring escapes. Blank the
            // contents but keep the quotes so patterns that look for
            // a string (dup-stat) still see one.
            const char q = c;
            std::size_t j = i + 1;
            while (j < n && in[j] != q) {
                if (in[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            j = std::min(n, j + 1);
            if (!keep_strings)
                blank(i + 1, j - 1);
            i = j;
        } else {
            ++i;
        }
    }
    return out;
}

/** Find the next whole-word occurrence of @p word at or after @p from. */
std::size_t
findWord(const std::string &s, const std::string &word,
         std::size_t from)
{
    for (;;) {
        const std::size_t p = s.find(word, from);
        if (p == std::string::npos)
            return std::string::npos;
        const bool left_ok = p == 0 || !isIdentChar(s[p - 1]);
        const std::size_t after = p + word.size();
        const bool right_ok =
            after >= s.size() || !isIdentChar(s[after]);
        if (left_ok && right_ok)
            return p;
        from = p + 1;
    }
}

/** Read the identifier starting at @p i (possibly ::-qualified). */
std::string
readQualifiedIdent(const std::string &s, std::size_t i)
{
    std::string out;
    while (i < s.size()) {
        if (isIdentChar(s[i])) {
            out += s[i++];
        } else if (s[i] == ':' && i + 1 < s.size() &&
                   s[i + 1] == ':') {
            out += "::";
            i += 2;
        } else {
            break;
        }
    }
    return out;
}

/**
 * Last plain identifier in @p expr ("op->tasks_" -> "tasks_"). A
 * trailing call is resolved to its callee ("sortedKeys(dir_)" ->
 * "sortedKeys"), since iterating a function's result is not
 * iterating the argument container.
 */
std::string
trailingIdent(const std::string &expr)
{
    std::size_t end = expr.size();
    while (end > 0 && isSpace(expr[end - 1]))
        --end;
    while (end > 0 && expr[end - 1] == ')') {
        int depth = 0;
        std::size_t i = end;
        while (i > 0) {
            --i;
            if (expr[i] == ')') {
                ++depth;
            } else if (expr[i] == '(') {
                if (--depth == 0)
                    break;
            }
        }
        end = i;
        while (end > 0 && isSpace(expr[end - 1]))
            --end;
    }
    std::size_t begin = end;
    while (begin > 0 && isIdentChar(expr[begin - 1]))
        --begin;
    return expr.substr(begin, end - begin);
}

/** Skip a balanced <...> starting at the '<' at @p i; returns the
 *  index just past the matching '>', or npos on imbalance. */
std::size_t
skipAngles(const std::string &s, std::size_t i)
{
    int depth = 0;
    for (; i < s.size(); ++i) {
        if (s[i] == '<') {
            ++depth;
        } else if (s[i] == '>') {
            if (--depth == 0)
                return i + 1;
        } else if (s[i] == ';') {
            return std::string::npos;
        }
    }
    return std::string::npos;
}

/**
 * Collect names declared with std::unordered_map / std::unordered_set
 * types: "std::unordered_map<K, V> name". Declarations behind a
 * pointer/reference still count (iterating through them is just as
 * unordered). Type aliases ("using X = ...") are skipped.
 */
void
collectUnorderedNames(const std::string &code,
                      std::set<std::string> &names)
{
    for (const char *kw : {"unordered_map", "unordered_set",
                           "unordered_multimap",
                           "unordered_multiset"}) {
        std::size_t p = 0;
        while ((p = findWord(code, kw, p)) != std::string::npos) {
            std::size_t i = p + std::string(kw).size();
            p = i;
            i = skipSpace(code, i);
            if (i >= code.size() || code[i] != '<')
                continue;
            i = skipAngles(code, i);
            if (i == std::string::npos)
                continue;
            i = skipSpace(code, i);
            while (i < code.size() &&
                   (code[i] == '*' || code[i] == '&'))
                i = skipSpace(code, i + 1);
            const std::string name = readQualifiedIdent(code, i);
            if (!name.empty() && name.find("::") == std::string::npos)
                names.insert(name);
        }
    }
}

/** Collect names declared as pointers to Event types ("Event *e",
 *  "LambdaEvent *ev", "auto *ev = new FooEvent"). */
void
collectEventPtrNames(const std::string &code,
                     std::set<std::string> &names)
{
    std::size_t i = 0;
    while (i < code.size()) {
        if (!isIdentChar(code[i]) ||
            (i > 0 && isIdentChar(code[i - 1]))) {
            ++i;
            continue;
        }
        const std::string ident = readQualifiedIdent(code, i);
        const std::size_t after = i + ident.size();
        i = after;
        const bool eventish =
            ident == "Event" ||
            (ident.size() > 5 &&
             ident.compare(ident.size() - 5, 5, "Event") == 0);
        if (!eventish)
            continue;
        std::size_t j = skipSpace(code, after);
        if (j >= code.size() || code[j] != '*')
            continue;
        j = skipSpace(code, j + 1);
        const std::string name = readQualifiedIdent(code, j);
        if (!name.empty())
            names.insert(name);
    }
    // auto *x = new FooEvent(...)
    std::size_t p = 0;
    while ((p = findWord(code, "auto", p)) != std::string::npos) {
        std::size_t j = skipSpace(code, p + 4);
        p += 4;
        if (j >= code.size() || code[j] != '*')
            continue;
        j = skipSpace(code, j + 1);
        const std::string name = readQualifiedIdent(code, j);
        if (name.empty())
            continue;
        j = skipSpace(code, j + name.size());
        if (j >= code.size() || code[j] != '=')
            continue;
        j = skipSpace(code, j + 1);
        if (findWord(code, "new", j) != j)
            continue;
        j = skipSpace(code, j + 3);
        const std::string type = readQualifiedIdent(code, j);
        if (type.size() > 5 &&
            type.compare(type.size() - 5, 5, "Event") == 0) {
            names.insert(name);
        }
    }
}

/** Per-run context shared across files. */
struct RunContext
{
    std::set<std::string> unordered_names;
    std::set<std::string> event_ptr_names;
};

/** Per-file suppression state parsed from directive comments. */
struct Suppressions
{
    std::set<Rule> file_allows;
    /** line number -> rules allowed on that line. */
    std::map<unsigned, std::set<Rule>> line_allows;

    bool
    allowed(Rule r, unsigned line) const
    {
        if (file_allows.count(r))
            return true;
        // A directive covers its own line and the following line.
        for (const unsigned l : {line, line > 0 ? line - 1 : 0u}) {
            const auto it = line_allows.find(l);
            if (it != line_allows.end() && it->second.count(r))
                return true;
        }
        return false;
    }
};

/** Parse "ehpsim-lint: allow(rule, ...)" / "allow-file(rule, ...)". */
Suppressions
parseSuppressions(const std::string &content)
{
    Suppressions sup;
    std::istringstream in(content);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t p = line.find("ehpsim-lint:");
        if (p == std::string::npos)
            continue;
        p += std::string("ehpsim-lint:").size();
        while (p < line.size()) {
            p = skipSpace(line, p);
            const bool file_scope =
                line.compare(p, 11, "allow-file(") == 0;
            const bool line_scope =
                !file_scope && line.compare(p, 6, "allow(") == 0;
            if (!file_scope && !line_scope)
                break;
            p = line.find('(', p) + 1;
            const std::size_t close = line.find(')', p);
            if (close == std::string::npos)
                break;
            std::string args = line.substr(p, close - p);
            std::replace(args.begin(), args.end(), ',', ' ');
            std::istringstream as(args);
            std::string name;
            while (as >> name) {
                Rule r;
                if (!parseRule(name, r))
                    continue;
                if (file_scope)
                    sup.file_allows.insert(r);
                else
                    sup.line_allows[lineno].insert(r);
            }
            p = close + 1;
        }
    }
    return sup;
}

struct FileLintState
{
    const std::string &file;
    const std::string &code;          ///< comments+strings blanked
    const std::string &code_strings;  ///< comments blanked only
    const std::vector<std::size_t> &starts;
    const RunContext &ctx;
    const Suppressions &sup;
    std::vector<Finding> &findings;

    void
    report(Rule rule, std::size_t off, std::string msg) const
    {
        const unsigned line = lineOf(starts, off);
        if (sup.allowed(rule, line))
            return;
        findings.push_back(
            Finding{file, line, rule, std::move(msg)});
    }
};

bool
pathContains(const std::string &file, const char *needle)
{
    std::string norm = file;
    std::replace(norm.begin(), norm.end(), '\\', '/');
    return norm.find(needle) != std::string::npos;
}

void
checkWallClock(const FileLintState &st)
{
    static const char *const words[] = {
        "steady_clock",    "system_clock", "high_resolution_clock",
        "clock_gettime",   "gettimeofday", "timespec_get",
        "localtime",       "gmtime",       "mktime",
        "asctime",
    };
    for (const char *w : words) {
        std::size_t p = 0;
        while ((p = findWord(st.code, w, p)) != std::string::npos) {
            st.report(Rule::wallClock, p,
                      std::string("wall-clock API '") + w +
                          "' — simulated time (EventQueue) is the "
                          "only clock; operator-facing timing goes "
                          "through sim/wall_timer.hh");
            p += std::string(w).size();
        }
    }
    // time(nullptr) / time(NULL) / time(0) and clock()
    for (const char *fn : {"time", "clock"}) {
        std::size_t p = 0;
        while ((p = findWord(st.code, fn, p)) != std::string::npos) {
            const std::size_t call = p;
            p += std::string(fn).size();
            std::size_t i = skipSpace(st.code, p);
            if (i >= st.code.size() || st.code[i] != '(')
                continue;
            i = skipSpace(st.code, i + 1);
            const std::string arg = readQualifiedIdent(st.code, i);
            const std::size_t close =
                skipSpace(st.code, i + arg.size());
            if (close >= st.code.size() || st.code[close] != ')')
                continue;
            const bool is_wall =
                std::string(fn) == "clock"
                    ? arg.empty()
                    : (arg == "nullptr" || arg == "NULL" ||
                       arg == "0");
            if (is_wall) {
                st.report(Rule::wallClock, call,
                          std::string("wall-clock call '") + fn +
                              "()' — simulated time is the only "
                              "clock; use sim/wall_timer.hh");
            }
        }
    }
}

void
checkRawRand(const FileLintState &st)
{
    static const char *const words[] = {
        "random_device", "mt19937",      "mt19937_64",
        "minstd_rand",   "minstd_rand0", "ranlux24",
        "ranlux48",      "knuth_b",      "default_random_engine",
        "drand48",       "lrand48",      "mrand48",
        "srand",         "srandom",      "rand_r",
    };
    for (const char *w : words) {
        std::size_t p = 0;
        while ((p = findWord(st.code, w, p)) != std::string::npos) {
            st.report(Rule::rawRand, p,
                      std::string("raw randomness '") + w +
                          "' — use the seeded deterministic "
                          "sim/rng.hh (Rng) so runs reproduce");
            p += std::string(w).size();
        }
    }
    for (const char *fn : {"rand", "random"}) {
        std::size_t p = 0;
        while ((p = findWord(st.code, fn, p)) != std::string::npos) {
            const std::size_t call = p;
            p += std::string(fn).size();
            std::size_t i = skipSpace(st.code, p);
            if (i < st.code.size() && st.code[i] == '(') {
                i = skipSpace(st.code, i + 1);
                if (i < st.code.size() && st.code[i] == ')') {
                    st.report(Rule::rawRand, call,
                              std::string("raw randomness '") + fn +
                                  "()' — use the seeded "
                                  "deterministic sim/rng.hh (Rng)");
                }
            }
        }
    }
}

void
checkUnorderedIter(const FileLintState &st)
{
    const std::string &code = st.code;
    // Range-for over a tracked unordered container.
    std::size_t p = 0;
    while ((p = findWord(code, "for", p)) != std::string::npos) {
        std::size_t i = skipSpace(code, p + 3);
        p += 3;
        if (i >= code.size() || code[i] != '(')
            continue;
        // Find the matching close paren.
        int depth = 0;
        std::size_t colon = std::string::npos;
        std::size_t j = i;
        for (; j < code.size(); ++j) {
            if (code[j] == '(') {
                ++depth;
            } else if (code[j] == ')') {
                if (--depth == 0)
                    break;
            } else if (code[j] == ':' && depth == 1 &&
                       colon == std::string::npos) {
                const bool scope =
                    (j + 1 < code.size() && code[j + 1] == ':') ||
                    (j > 0 && code[j - 1] == ':');
                if (!scope)
                    colon = j;
            }
        }
        if (colon == std::string::npos || j >= code.size())
            continue;
        const std::string range =
            code.substr(colon + 1, j - colon - 1);
        const std::string base = trailingIdent(range);
        if (!base.empty() && st.ctx.unordered_names.count(base)) {
            st.report(
                Rule::unorderedIter, p - 3,
                "range-for over unordered container '" + base +
                    "' — hash order is nondeterministic; traverse "
                    "sorted keys (sim/ordered.hh sortedKeys) before "
                    "anything that feeds stats, JSON, or event "
                    "scheduling");
        }
    }
    // Iterator loops: name.begin() / name.cbegin().
    for (const std::string &name : st.ctx.unordered_names) {
        std::size_t q = 0;
        while ((q = findWord(code, name, q)) != std::string::npos) {
            const std::size_t at = q;
            q += name.size();
            std::size_t i = skipSpace(code, q);
            if (i >= code.size() || code[i] != '.')
                continue;
            i = skipSpace(code, i + 1);
            const std::string member = readQualifiedIdent(code, i);
            if (member == "begin" || member == "cbegin" ||
                member == "rbegin") {
                st.report(
                    Rule::unorderedIter, at,
                    "iterator over unordered container '" + name +
                        "' — hash order is nondeterministic; "
                        "traverse sorted keys (sim/ordered.hh "
                        "sortedKeys) before anything that feeds "
                        "stats, JSON, or event scheduling");
            }
        }
    }
}

void
checkEventNew(const FileLintState &st)
{
    const std::string &code = st.code;
    std::size_t p = 0;
    while ((p = findWord(code, "new", p)) != std::string::npos) {
        std::size_t i = skipSpace(code, p + 3);
        const std::size_t at = p;
        p += 3;
        const std::string type = readQualifiedIdent(code, i);
        if (type.size() >= 5 &&
            type.compare(type.size() - 5, 5, "Event") == 0) {
            st.report(Rule::eventNew, at,
                      "raw 'new " + type +
                          "' — events are created through EventQueue "
                          "factory paths (scheduleLambda) so the "
                          "queue controls their lifetime; raw "
                          "new/delete caused the PR 1 "
                          "use-after-free");
        }
    }
    p = 0;
    while ((p = findWord(code, "delete", p)) != std::string::npos) {
        std::size_t i = skipSpace(code, p + 6);
        const std::size_t at = p;
        p += 6;
        if (i + 1 < code.size() && code[i] == '[' &&
            code[i + 1] == ']') {
            i = skipSpace(code, i + 2);
        }
        const std::string name = readQualifiedIdent(code, i);
        const bool eventish =
            st.ctx.event_ptr_names.count(name) ||
            (name.size() >= 5 &&
             name.compare(name.size() - 5, 5, "Event") == 0);
        if (eventish) {
            st.report(Rule::eventNew, at,
                      "raw 'delete " + name +
                          "' of an event — only the EventQueue may "
                          "end a scheduled event's lifetime "
                          "(deschedule() first, or let it fire)");
        }
    }
}

void
checkEventAlloc(const FileLintState &st)
{
    const std::string &code = st.code;
    // new LambdaEvent: a std::function-backed heap allocation per
    // one-shot. (event-new also fires on these outside the queue;
    // this rule adds the "use the pool" guidance and catches the
    // factory-internal pattern too.)
    std::size_t p = 0;
    while ((p = findWord(code, "new", p)) != std::string::npos) {
        std::size_t i = skipSpace(code, p + 3);
        const std::size_t at = p;
        p += 3;
        const std::string type = readQualifiedIdent(code, i);
        if (type == "LambdaEvent" ||
            type == "ehpsim::LambdaEvent") {
            st.report(Rule::eventAlloc, at,
                      "'new LambdaEvent' allocates a std::function "
                      "event per one-shot — hot paths use "
                      "EventQueue::scheduleCallback(), which "
                      "constructs the callable in recycled pooled "
                      "storage");
        }
    }
    // scheduleLambda(..., [captures]...): the capturing lambda is
    // converted to std::function, which allocates when the capture
    // state outgrows the small-buffer optimization — and always
    // costs a type-erased copy. Capture-less lambdas are cheap and
    // not flagged.
    p = 0;
    while ((p = findWord(code, "scheduleLambda", p)) !=
           std::string::npos) {
        const std::size_t at = p;
        p += std::string("scheduleLambda").size();
        std::size_t i = skipSpace(code, p);
        if (i >= code.size() || code[i] != '(')
            continue;
        int depth = 0;
        for (std::size_t j = i; j < code.size(); ++j) {
            const char c = code[j];
            if (c == '(') {
                ++depth;
            } else if (c == ')') {
                if (--depth == 0)
                    break;
            } else if (c == '[') {
                const std::size_t close = code.find(']', j);
                if (close == std::string::npos)
                    break;
                bool has_capture = false;
                for (std::size_t k = j + 1; k < close; ++k) {
                    if (!isSpace(code[k])) {
                        has_capture = true;
                        break;
                    }
                }
                // A lambda introducer is followed by its parameter
                // list or body; an array index ("arr[i]") is not.
                const std::size_t after = skipSpace(code, close + 1);
                const bool is_lambda =
                    after < code.size() &&
                    (code[after] == '(' || code[after] == '{');
                if (has_capture && is_lambda) {
                    st.report(
                        Rule::eventAlloc, at,
                        "scheduleLambda() with a capturing lambda "
                        "pays a std::function conversion per call — "
                        "hot paths use EventQueue::scheduleCallback()"
                        ", which constructs the callable in recycled "
                        "pooled storage");
                    break;
                }
                j = close;
            }
        }
    }
}

void
checkDupStat(const FileLintState &st)
{
    // Occurrences of `(this, "name"` — the registration idiom for
    // all stat kinds. Two same-name registrations with no closing
    // brace between them sit in the same constructor/group.
    const std::string &code = st.code_strings;
    std::map<std::string, std::size_t> current;  // name -> first off
    std::size_t scan_from = 0;
    std::size_t p = 0;
    while ((p = findWord(code, "this", p)) != std::string::npos) {
        const std::size_t at = p;
        p += 4;
        // Previous non-space must be '('.
        std::size_t b = at;
        while (b > 0 && isSpace(code[b - 1]))
            --b;
        if (b == 0 || code[b - 1] != '(')
            continue;
        std::size_t i = skipSpace(code, at + 4);
        if (i >= code.size() || code[i] != ',')
            continue;
        i = skipSpace(code, i + 1);
        if (i >= code.size() || code[i] != '"')
            continue;
        std::size_t e = i + 1;
        while (e < code.size() && code[e] != '"') {
            if (code[e] == '\\')
                ++e;
            ++e;
        }
        const std::string name = code.substr(i + 1, e - i - 1);
        // `"ch" + std::to_string(i)` builds a computed name; the
        // literal alone says nothing about uniqueness.
        const std::size_t after_lit = skipSpace(code, e + 1);
        if (after_lit < code.size() && code[after_lit] == '+')
            continue;
        // A '}' between registrations ends the group (constructor).
        if (code.find('}', scan_from) != std::string::npos &&
            code.find('}', scan_from) < at) {
            current.clear();
        }
        scan_from = at;
        const auto [it, inserted] = current.emplace(name, at);
        if (!inserted) {
            st.report(Rule::dupStat, at,
                      "stat name \"" + name +
                          "\" registered more than once in the same "
                          "group — stat paths must be unique "
                          "(first registration at line " +
                          std::to_string(lineOf(st.starts,
                                                it->second)) +
                          ")");
        }
    }
}

void
checkSnapshotPair(const FileLintState &st)
{
    // The checkpoint walk (DESIGN.md §16) has no framing between
    // objects: SnapshotWriter and SnapshotReader must visit the
    // exact same record sequence, so a class overriding only one of
    // snapshot(SnapshotWriter&) / restore(SnapshotReader&) desyncs
    // the stream for everything serialized after it — the restore
    // either fatals at the next tag mismatch or silently reads the
    // wrong bytes. Flag the class declaration.
    const std::string &code = st.code;
    for (const char *kw : {"class", "struct"}) {
        std::size_t p = 0;
        while ((p = findWord(code, kw, p)) != std::string::npos) {
            const std::size_t at = p;
            p += std::string(kw).size();
            std::size_t i = skipSpace(code, p);
            const std::string cname = readQualifiedIdent(code, i);
            if (cname.empty())
                continue;
            // Only a definition: the name is followed by its base
            // list or body. Forward declarations (';'), template
            // parameters ("class T>"), and elaborated type uses all
            // drop out here.
            std::size_t after = skipSpace(code, i + cname.size());
            if (after >= code.size() ||
                (code[after] != '{' && code[after] != ':'))
                continue;
            std::size_t open = code.find('{', after);
            if (open == std::string::npos)
                continue;
            int depth = 0;
            std::size_t end = open;
            for (; end < code.size(); ++end) {
                if (code[end] == '{') {
                    ++depth;
                } else if (code[end] == '}') {
                    if (--depth == 0)
                        break;
                }
            }
            const auto declares = [&](const std::string &fn,
                                      const std::string &arg) {
                std::size_t q = open;
                while ((q = findWord(code, fn, q)) !=
                           std::string::npos &&
                       q < end) {
                    std::size_t k = skipSpace(code, q + fn.size());
                    if (k < end && code[k] == '(') {
                        const std::size_t close = code.find(')', k);
                        if (close != std::string::npos &&
                            close < end &&
                            code.find(arg, k) < close)
                            return true;
                    }
                    q += fn.size();
                }
                return false;
            };
            const bool snap = declares("snapshot", "SnapshotWriter");
            const bool rest = declares("restore", "SnapshotReader");
            if (snap != rest) {
                st.report(Rule::snapshotPair, at,
                          "class '" + cname + "' declares " +
                              (snap ? "snapshot(SnapshotWriter&) "
                                      "without restore("
                                      "SnapshotReader&)"
                                    : "restore(SnapshotReader&) "
                                      "without snapshot("
                                      "SnapshotWriter&)") +
                              " — the checkpoint stream has no "
                              "framing, so a one-sided override "
                              "desyncs every object serialized "
                              "after this one");
            }
        }
    }
}

void
checkFloatArith(const FileLintState &st)
{
    std::size_t p = 0;
    while ((p = findWord(st.code, "float", p)) !=
           std::string::npos) {
        st.report(Rule::floatArith, p,
                  "'float' in simulation code — time, bandwidth, "
                  "and energy arithmetic uses double throughout; "
                  "float rounding breaks tick math and cross-build "
                  "determinism");
        p += 5;
    }
}

void
checkChunkAlloc(const FileLintState &st)
{
    const std::string &code = st.code;
    // Collect the body extent of every for/while loop.
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    for (const char *kw : {"for", "while"}) {
        std::size_t p = 0;
        while ((p = findWord(code, kw, p)) != std::string::npos) {
            p += std::string(kw).size();
            std::size_t i = skipSpace(code, p);
            if (i >= code.size() || code[i] != '(')
                continue;
            int depth = 0;
            std::size_t j = i;
            for (; j < code.size(); ++j) {
                if (code[j] == '(') {
                    ++depth;
                } else if (code[j] == ')') {
                    if (--depth == 0)
                        break;
                }
            }
            if (j >= code.size())
                continue;
            const std::size_t b = skipSpace(code, j + 1);
            if (b >= code.size() || code[b] != '{')
                continue;
            int bd = 0;
            std::size_t e = b;
            for (; e < code.size(); ++e) {
                if (code[e] == '{') {
                    ++bd;
                } else if (code[e] == '}') {
                    if (--bd == 0)
                        break;
                }
            }
            if (e < code.size())
                bodies.emplace_back(b, e);
        }
    }
    if (bodies.empty())
        return;
    // By-value `vector<...> name` declarations inside a body: one
    // heap allocation (or more) per loop iteration. References,
    // pointers, and non-declaration uses are fine.
    std::size_t q = 0;
    while ((q = findWord(code, "vector", q)) != std::string::npos) {
        const std::size_t at = q;
        q += std::string("vector").size();
        bool in_loop = false;
        for (const auto &[b, e] : bodies) {
            if (at > b && at < e) {
                in_loop = true;
                break;
            }
        }
        if (!in_loop)
            continue;
        std::size_t k = skipSpace(code, q);
        if (k >= code.size() || code[k] != '<')
            continue;
        k = skipAngles(code, k);
        if (k == std::string::npos)
            continue;
        k = skipSpace(code, k);
        if (k < code.size() && (code[k] == '*' || code[k] == '&'))
            continue;       // no per-iteration buffer
        const std::string name = readQualifiedIdent(code, k);
        if (name.empty() || name.find("::") != std::string::npos)
            continue;
        // Declarations end in `= ... ;`, `;`, `(...)`, or `{...}`;
        // anything else ("vector<T>::iterator", a template argument)
        // is not a construction.
        const std::size_t after = skipSpace(code, k + name.size());
        if (after >= code.size())
            continue;
        const char c = code[after];
        if (c != '=' && c != ';' && c != '(' && c != '{')
            continue;
        st.report(Rule::chunkAlloc, at,
                  "std::vector '" + name +
                      "' constructed inside a loop body — collective "
                      "construction is the per-chunk hot path; use a "
                      "closed-form count (ChunkSpan) or a reused "
                      "scratch member (DESIGN.md §12)");
    }
}

void
checkStaticState(const FileLintState &st)
{
    const std::string &code = st.code;
    for (const char *kw : {"static", "thread_local"}) {
        std::size_t p = 0;
        while ((p = findWord(code, kw, p)) != std::string::npos) {
            const std::size_t at = p;
            p += std::string(kw).size();

            // `const static int x` — a const-qualifier before the
            // keyword still makes the object immutable.
            std::size_t back = at;
            while (back > 0 && isSpace(code[back - 1]))
                --back;
            std::size_t wb = back;
            while (wb > 0 && isIdentChar(code[wb - 1]))
                --wb;
            const std::string before = code.substr(wb, back - wb);
            if (before == "const" || before == "constexpr" ||
                before == "constinit") {
                continue;
            }

            // Walk the declaration tokens up to the declarator.
            // Qualifiers anywhere make it immutable; a declarator
            // followed by '(' is a function (or a direct-init
            // variable — a documented imprecision the allow()
            // hatch covers).
            std::size_t i = skipSpace(code, p);
            bool immutable = false;
            std::string name;
            while (i < code.size()) {
                const char c = code[i];
                if (c == '<') {
                    const std::size_t past = skipAngles(code, i);
                    if (past == std::string::npos)
                        break;
                    i = skipSpace(code, past);
                } else if (isIdentChar(c)) {
                    const std::string tok =
                        readQualifiedIdent(code, i);
                    i = skipSpace(code, i + tok.size());
                    if (tok == "const" || tok == "constexpr" ||
                        tok == "constinit") {
                        immutable = true;
                    } else if (tok != "inline" && tok != "static" &&
                               tok != "thread_local" &&
                               tok != "struct" && tok != "class" &&
                               tok != "unsigned" && tok != "signed" &&
                               tok != "long" && tok != "short") {
                        name = tok;
                    }
                } else if (c == '*' || c == '&') {
                    i = skipSpace(code, i + 1);
                } else {
                    break;
                }
            }
            if (immutable || name.empty() || i >= code.size())
                continue;
            const char next = code[i];
            if (next == '(')
                continue;       // function declaration
            if (next != '=' && next != ';' && next != '{' &&
                next != '[') {
                continue;       // not a declaration we understand
            }
            st.report(Rule::staticState, at,
                      "mutable " + std::string(kw) + " state '" +
                          name +
                          "' — state outside the SimObject tree "
                          "leaks between sweep jobs and races under "
                          "parallel workers; make it a member, pass "
                          "it explicitly, or const-qualify it");
        }
    }
}

void
checkPointerKey(const FileLintState &st)
{
    const std::string &code = st.code;
    for (const char *kw : {"map", "multimap", "set", "multiset"}) {
        const bool is_map =
            std::string(kw) == "map" || std::string(kw) == "multimap";
        std::size_t p = 0;
        while ((p = findWord(code, kw, p)) != std::string::npos) {
            const std::size_t at = p;
            p += std::string(kw).size();
            std::size_t i = skipSpace(code, p);
            if (i >= code.size() || code[i] != '<')
                continue;
            // The key type runs to the first depth-1 comma (map)
            // or the closing angle (set).
            std::size_t key_end = std::string::npos;
            int depth = 0;
            std::size_t j = i;
            for (; j < code.size(); ++j) {
                const char c = code[j];
                if (c == '<') {
                    ++depth;
                } else if (c == '>') {
                    if (--depth == 0) {
                        if (!is_map)
                            key_end = j;
                        break;
                    }
                } else if (c == ',' && depth == 1 && is_map) {
                    key_end = j;
                    break;
                } else if (c == ';') {
                    break;
                }
            }
            if (key_end == std::string::npos)
                continue;
            std::string key = code.substr(i + 1, key_end - i - 1);
            if (key.find('*') == std::string::npos)
                continue;
            // Keep the message single-line for the "file:line:rule:
            // message" output contract.
            std::replace(key.begin(), key.end(), '\n', ' ');
            st.report(
                Rule::pointerKey, at,
                "ordered container '" + std::string(kw) +
                    "' keyed by a raw pointer (" + key +
                    ") — pointer order is allocator-dependent, so "
                    "iteration order varies run to run; key by a "
                    "stable id or name (or allow() with a "
                    "deterministic custom comparator)");
        }
    }
}

void
lintOne(const std::string &file, const std::string &content,
        const RunContext &ctx, const Options &opts,
        std::vector<Finding> &findings)
{
    const Suppressions sup = parseSuppressions(content);
    const std::string code = stripSource(content, false);
    const std::string code_strings = stripSource(content, true);
    const std::vector<std::size_t> starts = lineStarts(content);
    const FileLintState st{file,    code, code_strings, starts,
                           ctx,     sup,  findings};

    auto enabled = [&](Rule r) {
        if (!opts.only_rules.empty() &&
            std::find(opts.only_rules.begin(), opts.only_rules.end(),
                      r) == opts.only_rules.end()) {
            return false;
        }
        if (!opts.default_whitelist)
            return true;
        if ((r == Rule::wallClock || r == Rule::rawRand) &&
            (pathContains(file, "sim/wall_timer") ||
             pathContains(file, "sim/rng"))) {
            return false;
        }
        if ((r == Rule::eventNew || r == Rule::eventAlloc) &&
            pathContains(file, "sim/event_queue")) {
            return false;
        }
        // Per-iteration vectors are ordinary C++ almost everywhere;
        // only the collective-construction hot path bans them.
        if (r == Rule::chunkAlloc && !pathContains(file, "comm/"))
            return false;
        // The race tracker's thread-local current-tracker binding is
        // the sanctioned piece of non-member state (one per worker
        // thread, never shared).
        if (r == Rule::staticState &&
            pathContains(file, "sim/access_tracker")) {
            return false;
        }
        // The kernel's own pair is save()/restore() — EventQueue
        // restores through the keyed-factory registry, not the
        // StatGroup walk — so its one-sided restore() is by design.
        if (r == Rule::snapshotPair &&
            pathContains(file, "sim/event_queue")) {
            return false;
        }
        return true;
    };

    if (enabled(Rule::wallClock))
        checkWallClock(st);
    if (enabled(Rule::rawRand))
        checkRawRand(st);
    if (enabled(Rule::unorderedIter))
        checkUnorderedIter(st);
    if (enabled(Rule::eventNew))
        checkEventNew(st);
    if (enabled(Rule::eventAlloc))
        checkEventAlloc(st);
    if (enabled(Rule::dupStat))
        checkDupStat(st);
    if (enabled(Rule::floatArith))
        checkFloatArith(st);
    if (enabled(Rule::chunkAlloc))
        checkChunkAlloc(st);
    if (enabled(Rule::staticState))
        checkStaticState(st);
    if (enabled(Rule::pointerKey))
        checkPointerKey(st);
    if (enabled(Rule::snapshotPair))
        checkSnapshotPair(st);
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // anonymous namespace

const char *
ruleName(Rule r)
{
    switch (r) {
      case Rule::wallClock:
        return "wall-clock";
      case Rule::rawRand:
        return "raw-rand";
      case Rule::unorderedIter:
        return "unordered-iter";
      case Rule::eventNew:
        return "event-new";
      case Rule::eventAlloc:
        return "event-alloc";
      case Rule::dupStat:
        return "dup-stat";
      case Rule::floatArith:
        return "float-arith";
      case Rule::chunkAlloc:
        return "chunk-alloc";
      case Rule::staticState:
        return "static-state";
      case Rule::pointerKey:
        return "pointer-key";
      case Rule::snapshotPair:
        return "snapshot-pair";
    }
    return "unknown";
}

bool
parseRule(const std::string &name, Rule &out)
{
    for (const Rule r : allRules()) {
        if (name == ruleName(r)) {
            out = r;
            return true;
        }
    }
    return false;
}

const std::vector<Rule> &
allRules()
{
    static const std::vector<Rule> rules = {
        Rule::wallClock,  Rule::rawRand,    Rule::unorderedIter,
        Rule::eventNew,   Rule::eventAlloc,
        Rule::dupStat,    Rule::floatArith, Rule::chunkAlloc,
        Rule::staticState, Rule::pointerKey, Rule::snapshotPair,
    };
    return rules;
}

const char *
ruleRationale(Rule r)
{
    switch (r) {
      case Rule::wallClock:
        return "simulated time is the only clock; wall-clock reads "
               "make runs irreproducible (whitelist: sim/wall_timer)";
      case Rule::rawRand:
        return "all randomness flows from a seed through sim/rng.hh "
               "so any run can be replayed (whitelist: sim/rng)";
      case Rule::unorderedIter:
        return "hash-order iteration is nondeterministic; anything "
               "feeding stats, JSON, or event scheduling must "
               "traverse in sorted order";
      case Rule::eventNew:
        return "events are created and destroyed only through "
               "EventQueue paths; raw new/delete of events caused a "
               "use-after-free (whitelist: sim/event_queue)";
      case Rule::eventAlloc:
        return "one-shot callbacks allocate unless they go through "
               "the pooled EventQueue::scheduleCallback(); "
               "new LambdaEvent / scheduleLambda(capturing) pay a "
               "std::function per call (whitelist: sim/event_queue)";
      case Rule::dupStat:
        return "a stat name may register only once per group, or "
               "dump output silently aliases two counters";
      case Rule::floatArith:
        return "time/bandwidth/energy math uses double; float "
               "rounding breaks tick arithmetic";
      case Rule::chunkAlloc:
        return "collective construction runs per chunk; a "
               "std::vector built inside a loop allocates every "
               "iteration — use closed-form counts or reused "
               "scratch buffers (applies to comm/ paths)";
      case Rule::staticState:
        return "mutable globals / function-static locals live "
               "outside the SimObject tree: they leak between sweep "
               "jobs and race under parallel workers (whitelist: "
               "sim/access_tracker)";
      case Rule::pointerKey:
        return "ordered containers keyed by raw pointers iterate in "
               "allocator-dependent order; key by a stable id or "
               "name instead";
      case Rule::snapshotPair:
        return "the checkpoint stream has no framing between "
               "objects: a class overriding only one of "
               "snapshot(SnapshotWriter&)/restore(SnapshotReader&) "
               "desyncs every object serialized after it "
               "(whitelist: sim/event_queue)";
    }
    return "";
}

std::string
toString(const Finding &f)
{
    std::ostringstream os;
    os << f.file << ":" << f.line << ":" << ruleName(f.rule) << ": "
       << f.message;
    return os.str();
}

namespace
{

/** Minimal JSON string escaping (the linter is dependency-free and
 *  does not link the simulator's json library). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // anonymous namespace

std::string
toJson(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"ehpsim-lint-v1\",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? ",\n" : "\n")
           << "    {\n"
           << "      \"file\": \"" << jsonEscape(f.file) << "\",\n"
           << "      \"line\": " << f.line << ",\n"
           << "      \"rule\": \"" << ruleName(f.rule) << "\",\n"
           << "      \"message\": \"" << jsonEscape(f.message)
           << "\"\n"
           << "    }";
    }
    os << (findings.empty() ? "" : "\n  ") << "],\n  \"count\": "
       << findings.size() << "\n}\n";
    return os.str();
}

bool
listSources(const std::vector<std::string> &paths,
            std::vector<std::string> &out, std::string &error)
{
    namespace fs = std::filesystem;
    static const std::set<std::string> exts = {".hh", ".h", ".hpp",
                                               ".cc", ".cpp"};
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_regular_file(p, ec)) {
            out.push_back(p);
        } else if (fs::is_directory(p, ec)) {
            for (auto it = fs::recursive_directory_iterator(p, ec);
                 it != fs::recursive_directory_iterator();
                 it.increment(ec)) {
                if (ec) {
                    error = "cannot walk '" + p + "': " + ec.message();
                    return false;
                }
                if (it->is_regular_file() &&
                    exts.count(it->path().extension().string())) {
                    out.push_back(it->path().string());
                }
            }
        } else {
            error = "no such file or directory: '" + p + "'";
            return false;
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return true;
}

std::vector<Finding>
lintFiles(const std::vector<std::string> &files, const Options &opts)
{
    // Pass 1: declarations. Member containers are usually declared
    // in a header and iterated in the matching .cc, so the name
    // table is shared across the whole run.
    RunContext ctx;
    std::vector<std::pair<std::string, std::string>> contents;
    contents.reserve(files.size());
    for (const std::string &f : files) {
        std::string text;
        if (!readFile(f, text))
            continue;
        const std::string code = stripSource(text, false);
        collectUnorderedNames(code, ctx.unordered_names);
        collectEventPtrNames(code, ctx.event_ptr_names);
        contents.emplace_back(f, std::move(text));
    }
    // Pass 2: rules.
    std::vector<Finding> findings;
    for (const auto &[f, text] : contents)
        lintOne(f, text, ctx, opts, findings);
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return static_cast<int>(a.rule) <
                         static_cast<int>(b.rule);
              });
    return findings;
}

std::vector<Finding>
lintContent(const std::string &filename, const std::string &content,
            const Options &opts)
{
    RunContext ctx;
    const std::string code = stripSource(content, false);
    collectUnorderedNames(code, ctx.unordered_names);
    collectEventPtrNames(code, ctx.event_ptr_names);
    std::vector<Finding> findings;
    lintOne(filename, content, ctx, opts, findings);
    return findings;
}

} // namespace lint
} // namespace ehpsim
