/**
 * @file
 * Node-architecture exploration (paper Sec. VIII, Fig. 18): build
 * the quad-MI300A and octo-MI300X reference nodes plus a custom
 * topology, and compare point-to-point bandwidth, latency,
 * all-to-all exchange time, and bisection bandwidth.
 *
 *   ./build/examples/node_explorer
 */

#include <cstdio>

#include "soc/node_topology.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

namespace
{

void
describe(NodeTopology &node, const char *title)
{
    std::printf("\n== %s ==\n", title);
    const unsigned n = node.numEndpoints();
    std::printf("p2p bandwidth matrix (GB/s, one direction):\n     ");
    for (unsigned b = 0; b < n; ++b)
        std::printf("%6u", b);
    std::printf("\n");
    for (unsigned a = 0; a < n; ++a) {
        std::printf("%4u ", a);
        for (unsigned b = 0; b < n; ++b) {
            if (a == b)
                std::printf("     -");
            else
                std::printf("%6.0f", node.p2pBandwidth(a, b) / 1e9);
        }
        std::printf("\n");
    }
    std::printf("bisection bandwidth: %.0f GB/s\n",
                node.bisectionBandwidth() / 1e9);
    const Tick a2a = node.allToAll(0, 64u << 20);
    std::printf("64 MB all-to-all: %.2f ms\n",
                secondsFromTicks(a2a) * 1e3);
}

} // anonymous namespace

int
main()
{
    SimObject root(nullptr, "root", nullptr);

    // Fig. 18(a): four MI300A APUs, fully connected, 2 x16 IF links
    // per pair, two links spare per socket for NIC/storage.
    auto quad = NodeTopology::mi300aQuadNode(&root);
    describe(*quad, "Fig. 18a: 4x MI300A, fully connected IF");
    for (unsigned s = 0; s < 4; ++s) {
        std::printf("socket %u free x16 links: %u\n", s,
                    quad->freeLinks(s));
    }

    // Fig. 18(b): eight MI300X accelerators + two EPYC hosts.
    auto octo = NodeTopology::mi300xOctoNode(&root);
    describe(*octo, "Fig. 18b: 8x MI300X + EPYC hosts over PCIe");

    // A custom exploration: a 2D ring of four sockets with doubled
    // links on one axis (what if the node spent all eight links on
    // two neighbors?).
    NodeTopology ring(&root, "ring");
    for (unsigned i = 0; i < 4; ++i)
        ring.addSocket("s" + std::to_string(i), 8);
    for (unsigned i = 0; i < 4; ++i)
        ring.connect(i, (i + 1) % 4, 4);
    describe(ring, "custom: 4-socket ring, 4x16 per edge");
    std::printf("\nObservation: the ring doubles neighbor bandwidth "
                "but halves bisection versus\nthe fully-connected "
                "Fig. 18a topology and adds a hop for opposite "
                "sockets.\n");
    return 0;
}
