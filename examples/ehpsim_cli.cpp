/**
 * @file
 * ehpsim command-line driver: pick a product, a workload, an engine,
 * and run it.
 *
 *   ehpsim_cli [--product mi300a|mi300x|mi250x|ehpv3|ehpv4]
 *              [--workload triad|gemm|nbody|hpcg|cfd|gromacs|llm]
 *              [--engine event|roofline]
 *              [--partitions N] [--policy rr|blocked] [--nps 1|4]
 *              [--scale N] [--trace out.json] [--stats]
 *
 * Examples:
 *   ehpsim_cli --product mi300a --workload cfd --engine roofline
 *   ehpsim_cli --product mi300x --workload triad --partitions 8
 *   ehpsim_cli --workload llm --engine roofline --trace llm.json
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/apu_system.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "core/trace.hh"
#include "sim/logging.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

struct Options
{
    std::string product = "mi300a";
    std::string workload = "triad";
    std::string engine = "event";
    unsigned partitions = 1;
    std::string policy = "rr";
    unsigned nps = 1;
    std::uint64_t scale = 1;
    std::string trace_path;
    bool dump_stats = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--product P] [--workload W] "
                 "[--engine event|roofline]\n"
                 "          [--partitions N] [--policy rr|blocked] "
                 "[--nps 1|4] [--scale N]\n"
                 "          [--trace FILE] [--stats]\n",
                 argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--product")
            opt.product = next();
        else if (arg == "--workload")
            opt.workload = next();
        else if (arg == "--engine")
            opt.engine = next();
        else if (arg == "--partitions")
            opt.partitions = std::stoul(next());
        else if (arg == "--policy")
            opt.policy = next();
        else if (arg == "--nps")
            opt.nps = std::stoul(next());
        else if (arg == "--scale")
            opt.scale = std::stoull(next());
        else if (arg == "--trace")
            opt.trace_path = next();
        else if (arg == "--stats")
            opt.dump_stats = true;
        else
            usage(argv[0]);
    }
    return opt;
}

soc::ProductConfig
productFor(const std::string &name)
{
    if (name == "mi300a")
        return soc::mi300aConfig();
    if (name == "mi300x")
        return soc::mi300xConfig();
    if (name == "mi250x")
        return soc::mi250xConfig();
    if (name == "ehpv3")
        return soc::ehpv3Config();
    if (name == "ehpv4")
        return soc::ehpv4Config();
    fatal("unknown product '", name, "'");
}

MachineModel
modelFor(const std::string &name)
{
    if (name == "mi300a")
        return mi300aModel();
    if (name == "mi300x")
        return mi300xModel();
    if (name == "mi250x")
        return mi250xNodeModel();
    fatal("no analytical model for product '", name,
          "' (use --engine event)");
}

Workload
workloadFor(const std::string &name, std::uint64_t scale)
{
    if (name == "triad") {
        auto w = streamTriad((1u << 19) * scale);
        w.phases[0].grid_workgroups = 512;
        return w;
    }
    if (name == "gemm")
        return gemm(2048 * scale, 2048, 2048, gpu::DataType::fp16,
                    gpu::Pipe::matrix);
    if (name == "nbody")
        return nbody(100'000 * scale, 5);
    if (name == "hpcg")
        return hpcg(128 * scale, 128, 128, 10);
    if (name == "cfd")
        return cfdSolver(2'000'000 * scale, 5);
    if (name == "gromacs")
        return gromacsLike(1'000'000 * scale, 5);
    if (name == "llm")
        return llmInference(LlmConfig{});
    fatal("unknown workload '", name, "'");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    const auto workload = workloadFor(opt.workload, opt.scale);
    std::printf("ehpsim: %s on %s via %s engine\n",
                workload.name.c_str(), opt.product.c_str(),
                opt.engine.c_str());

    RunReport report;
    if (opt.engine == "roofline") {
        const RooflineEngine eng(modelFor(opt.product));
        report = eng.run(workload);
    } else if (opt.engine == "event") {
        ApuSystem sys(productFor(opt.product),
                      opt.nps == 4 ? mem::NumaMode::nps4
                                   : mem::NumaMode::nps1);
        const auto policy = opt.policy == "blocked"
                                ? hsa::DistributionPolicy::blocked
                                : hsa::DistributionPolicy::roundRobin;
        report = sys.run(workload, opt.partitions, policy);
        if (opt.dump_stats)
            sys.dumpStats(std::cout);
    } else {
        usage(argv[0]);
    }

    std::printf("\n%-24s %12s %10s %10s %10s\n", "phase", "total",
                "gpu", "cpu", "copies");
    for (const auto &p : report.phases) {
        std::printf("%-24s %9.3f ms %7.3f ms %7.3f ms %7.3f ms\n",
                    p.name.c_str(), p.total_s * 1e3, p.gpu_s * 1e3,
                    p.cpu_s * 1e3, p.transfer_s * 1e3);
    }
    std::printf("%-24s %9.3f ms\n", "TOTAL", report.total_s * 1e3);
    const double flops =
        static_cast<double>(workload.totalGpuFlops());
    if (flops > 0 && report.total_s > 0) {
        std::printf("achieved: %.2f Tflops, %.2f TB/s\n",
                    flops / report.total_s / 1e12,
                    static_cast<double>(workload.totalGpuBytes()) /
                        report.total_s / 1e12);
    }
    if (!opt.trace_path.empty()) {
        writeChromeTrace(report, opt.trace_path);
        std::printf("trace written to %s\n", opt.trace_path.c_str());
    }
    return 0;
}
