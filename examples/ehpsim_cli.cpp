/**
 * @file
 * ehpsim command-line driver: pick a product, a workload, an engine,
 * and run it — or sweep a whole configuration matrix in parallel.
 *
 *   ehpsim_cli [--product mi300a|mi300x|mi250x|ehpv3|ehpv4]
 *              [--workload triad|gemm|nbody|hpcg|cfd|gromacs|llm]
 *              [--engine event|roofline]
 *              [--partitions N] [--policy rr|blocked] [--nps 1|4]
 *              [--scale N] [--trace out.json] [--stats]
 *
 *   ehpsim_cli sweep [--products a,b,...] [--workloads x,y,...]
 *              [--engine event|roofline] [--jobs N] [--json FILE]
 *              [--scale N] [--stats]
 *
 *   ehpsim_cli comm [--topology quad|octo]
 *              [--collective all_reduce|all_gather|reduce_scatter|
 *               broadcast|all_to_all]
 *              [--algos ring,direct,auto] [--sizes 1M,16M,64M]
 *              [--warmup N] [--warmup-bytes SIZE] [--fork]
 *              [--checkpoint FILE]
 *              [--pdes N] [--jobs N] [--json FILE]
 *
 *   ehpsim_cli fault [--topology quad|octo] [--collective C]
 *              [--algos ring,direct] [--sizes 1M,16M,64M]
 *              [--rates 0,0.005,0.02] [--seed N]
 *              [--kill a:b@tick[*factor]] [--max-retries N]
 *              [--retry-timeout TICKS] [--pdes N] [--jobs N]
 *              [--json FILE]
 *
 *   ehpsim_cli serve [--devices mi300x,baseline] [--loads 0.25,1.0]
 *              [--tp 1|2|4|8] [--requests N] [--input-tokens N]
 *              [--output-tokens N] [--seed N] [--bursty]
 *              [--token-budget N] [--max-batch N] [--kv-blocks N]
 *              [--error-rate R] [--kill a:b@tick[*factor]]
 *              [--blackout ch@tick] [--pdes N] [--checkpoint-at T]
 *              [--jobs N] [--json FILE]
 *
 *   ehpsim_cli race [--bytes SIZE] [--requests N] [--seed N]
 *              [--jobs N] [--json FILE]
 *
 * The sweep subcommand runs the products x workloads cross product
 * as independent jobs on a sweep::SweepRunner worker pool and emits
 * an ehpsim-sweep-v1 JSON document (stdout, or FILE with --json).
 * Output is byte-identical for any --jobs value. The comm
 * subcommand does the same for collective microbenchmarks over the
 * Fig. 18 node fabrics: each (algorithm, size) point simulates the
 * collective as chunked transfers on the event queue and reports
 * achieved algorithmic bandwidth and link utilization.
 *
 * The fault subcommand reruns those collectives under the fault
 * injector: a seeded transient chunk-error rate (survived via
 * retry/backoff) and optional scheduled link kills or derates
 * (--kill, repeatable; a *factor suffix derates instead of
 * killing). Each job reports the degraded bandwidth plus the
 * retry/reroute counters; same seed means byte-identical JSON for
 * any --jobs value.
 *
 * The serve subcommand replays a seeded open-loop LLM serving trace
 * (Poisson, or MMPP with --bursty) through the src/serve continuous
 * batcher for every (device, load) grid point: paged KV cache sized
 * by device memory minus weights, TP decode all-reduces on the
 * Fig. 18b octo node, and — with --error-rate / --kill /
 * --blackout — the fault injector degrading service mid-run. Each
 * job reports TTFT/TPOT percentiles, tokens/s, SLO attainment, and
 * the KV eviction/retry counters.
 *
 * The comm, fault, and serve subcommands accept --pdes N to run
 * each job's simulation on the conservative parallel core
 * (DESIGN.md §15): the node graph is partitioned into N logical
 * processes synchronized by min-link-latency lookahead. Output is
 * byte-identical to the serial run — `cmp` the two JSON documents to
 * check — so the knob trades wall time only. sweep REJECTS the flag
 * with an error (its jobs are per-partition roofline/event sims
 * with no cross-partition traffic to overlap; use --jobs instead).
 *
 * Checkpoint/fast-forward (DESIGN.md §16): `comm --warmup N` runs N
 * ring all-reduces before each measured point; adding `--fork`
 * simulates that shared prefix ONCE, snapshots the warmed world,
 * and forks every (algorithm, size) point from the in-memory blob —
 * JSON stays byte-identical to the unforked run, so only wall time
 * changes. `--checkpoint FILE` persists the warmup blob across
 * invocations (missing file: simulate and save; existing file: load
 * and skip the warmup). `serve --checkpoint-at T` rehearses the
 * same machinery end to end: run to tick T, snapshot, and finish
 * the run on a restored copy of the world.
 *
 * The race subcommand (requires a -DEHPSIM_RACE=ON build; exits 2
 * otherwise) runs the octo all-reduce and a fixed-seed serving
 * scenario under the ehpsim-race AccessTracker and emits the merged
 * ehpsim-race-v1 report: order/partition conflicts with waiver
 * status plus the partition dependency graph and PDES lookahead
 * table (DESIGN.md §14). Exit 1 when any conflict is unwaived. The
 * report is byte-identical for any --jobs value.
 *
 * Examples:
 *   ehpsim_cli --product mi300a --workload cfd --engine roofline
 *   ehpsim_cli --product mi300x --workload triad --partitions 8
 *   ehpsim_cli sweep --products mi300a,mi300x,mi250x \
 *       --workloads triad,gemm,cfd --jobs 8 --json sweep.json
 *   ehpsim_cli comm --topology octo --collective all_reduce \
 *       --algos ring,direct --sizes 1M,64M,256M --jobs 8
 *   ehpsim_cli fault --topology octo --rates 0,0.02 \
 *       --kill mi300x0:mi300x1@50000000 --jobs 8
 *   ehpsim_cli serve --devices mi300x,baseline --loads 0.25,1.0 \
 *       --requests 32 --jobs 8 --json serve.json
 *   ehpsim_cli serve --tp 4 --loads 1.5 --error-rate 0.02 \
 *       --kill mi300x0:mi300x1@2000000000000 --blackout 3@3000000000000
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "comm/comm_group.hh"
#include "core/apu_system.hh"
#include "sim/access_tracker.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "core/trace.hh"
#include "serve/scenario.hh"
#include "sim/logging.hh"
#include "sim/pdes/pdes_engine.hh"
#include "sim/sim_object.hh"
#include "sim/snapshot.hh"
#include "soc/node_topology.hh"
#include "sweep/sweep_runner.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

struct Options
{
    std::string product = "mi300a";
    std::string workload = "triad";
    std::string engine = "event";
    unsigned partitions = 1;
    std::string policy = "rr";
    unsigned nps = 1;
    std::uint64_t scale = 1;
    std::string trace_path;
    bool dump_stats = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--product P] [--workload W] "
                 "[--engine event|roofline]\n"
                 "          [--partitions N] [--policy rr|blocked] "
                 "[--nps 1|4] [--scale N]\n"
                 "          [--trace FILE] [--stats]\n"
                 "       %s sweep [--products a,b,...] "
                 "[--workloads x,y,...]\n"
                 "          [--engine event|roofline] [--jobs N] "
                 "[--json FILE] [--scale N] [--stats]\n"
                 "       %s comm [--topology quad|octo] "
                 "[--collective C] [--algos a,b,...]\n"
                 "          [--sizes 1M,64M,...] [--warmup N] "
                 "[--warmup-bytes SIZE]\n"
                 "          [--fork] [--checkpoint FILE] [--pdes N] "
                 "[--jobs N] [--json FILE]\n"
                 "       %s fault [--topology quad|octo] "
                 "[--collective C] [--algos a,b,...]\n"
                 "          [--sizes 1M,...] [--rates 0,0.02,...] "
                 "[--seed N]\n"
                 "          [--kill a:b@tick[*factor]] "
                 "[--max-retries N]\n"
                 "          [--retry-timeout TICKS] [--pdes N] "
                 "[--jobs N] [--json FILE]\n"
                 "       %s serve [--devices a,b] [--loads r,s,...] "
                 "[--tp N]\n"
                 "          [--requests N] [--input-tokens N] "
                 "[--output-tokens N]\n"
                 "          [--seed N] [--bursty] [--token-budget N] "
                 "[--max-batch N]\n"
                 "          [--kv-blocks N] [--error-rate R] "
                 "[--kill a:b@tick[*factor]]\n"
                 "          [--blackout ch@tick] [--pdes N] "
                 "[--checkpoint-at T] [--jobs N] [--json FILE]\n"
                 "       %s race [--bytes SIZE] [--requests N] "
                 "[--seed N]\n"
                 "          [--jobs N] [--json FILE]   "
                 "(needs -DEHPSIM_RACE=ON)\n",
                 argv0, argv0, argv0, argv0, argv0, argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--product")
            opt.product = next();
        else if (arg == "--workload")
            opt.workload = next();
        else if (arg == "--engine")
            opt.engine = next();
        else if (arg == "--partitions")
            opt.partitions = std::stoul(next());
        else if (arg == "--policy")
            opt.policy = next();
        else if (arg == "--nps")
            opt.nps = std::stoul(next());
        else if (arg == "--scale")
            opt.scale = std::stoull(next());
        else if (arg == "--trace")
            opt.trace_path = next();
        else if (arg == "--stats")
            opt.dump_stats = true;
        else
            usage(argv[0]);
    }
    return opt;
}

soc::ProductConfig
productFor(const std::string &name)
{
    if (name == "mi300a")
        return soc::mi300aConfig();
    if (name == "mi300x")
        return soc::mi300xConfig();
    if (name == "mi250x")
        return soc::mi250xConfig();
    if (name == "ehpv3")
        return soc::ehpv3Config();
    if (name == "ehpv4")
        return soc::ehpv4Config();
    fatal("unknown product '", name, "'");
}

MachineModel
modelFor(const std::string &name)
{
    if (name == "mi300a")
        return mi300aModel();
    if (name == "mi300x")
        return mi300xModel();
    if (name == "mi250x")
        return mi250xNodeModel();
    fatal("no analytical model for product '", name,
          "' (use --engine event)");
}

Workload
workloadFor(const std::string &name, std::uint64_t scale)
{
    if (name == "triad") {
        auto w = streamTriad((1u << 19) * scale);
        w.phases[0].grid_workgroups = 512;
        return w;
    }
    if (name == "gemm")
        return gemm(2048 * scale, 2048, 2048, gpu::DataType::fp16,
                    gpu::Pipe::matrix);
    if (name == "nbody")
        return nbody(100'000 * scale, 5);
    if (name == "hpcg")
        return hpcg(128 * scale, 128, 128, 10);
    if (name == "cfd")
        return cfdSolver(2'000'000 * scale, 5);
    if (name == "gromacs")
        return gromacsLike(1'000'000 * scale, 5);
    if (name == "llm")
        return llmInference(LlmConfig{});
    fatal("unknown workload '", name, "'");
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

/** Run one (product, workload) sweep job and serialize its report. */
void
runSweepJob(const std::string &product, const std::string &workload,
            const std::string &engine, std::uint64_t scale,
            bool with_stats, json::JsonWriter &jw)
{
    const auto w = workloadFor(workload, scale);

    jw.beginObject();
    jw.kv("product", product);
    jw.kv("workload", workload);
    jw.kv("engine", engine);

    RunReport report;
    std::unique_ptr<ApuSystem> sys;
    if (engine == "roofline") {
        const RooflineEngine eng(modelFor(product));
        report = eng.run(w);
    } else {
        sys = std::make_unique<ApuSystem>(productFor(product));
        report = sys->run(w);
    }

    jw.key("phases");
    jw.beginArray();
    for (const auto &p : report.phases) {
        jw.beginObject();
        jw.kv("name", p.name);
        jw.kv("total_s", p.total_s);
        jw.kv("gpu_s", p.gpu_s);
        jw.kv("cpu_s", p.cpu_s);
        jw.kv("transfer_s", p.transfer_s);
        jw.endObject();
    }
    jw.endArray();
    jw.kv("total_s", report.total_s);

    const double flops = static_cast<double>(w.totalGpuFlops());
    if (flops > 0 && report.total_s > 0) {
        jw.kv("achieved_tflops", flops / report.total_s / 1e12);
        jw.kv("achieved_tbps",
              static_cast<double>(w.totalGpuBytes()) /
                  report.total_s / 1e12);
    }
    if (with_stats && sys) {
        jw.key("stats");
        sys->dumpJsonStats(jw);
    }
    jw.endObject();
}

int
sweepMain(int argc, char **argv)
{
    std::vector<std::string> products = {"mi300a", "mi300x", "mi250x"};
    std::vector<std::string> workloads = {"triad"};
    std::string engine = "event";
    std::string json_path;
    unsigned jobs = 1;
    std::uint64_t scale = 1;
    bool with_stats = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--products")
            products = splitList(next());
        else if (arg == "--workloads")
            workloads = splitList(next());
        else if (arg == "--engine")
            engine = next();
        else if (arg == "--jobs")
            jobs = std::stoul(next());
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--scale")
            scale = std::stoull(next());
        else if (arg == "--stats")
            with_stats = true;
        else if (arg == "--pdes") {
            // Refused rather than silently ignored (it used to be
            // accepted for driver symmetry): sweep jobs are
            // independent single-partition sims with nothing for
            // the parallel core to overlap, so a user passing the
            // flag is expecting a speedup they will not get.
            std::fprintf(stderr,
                         "sweep: --pdes is not supported: sweep "
                         "jobs are independent single-partition "
                         "sims with no cross-partition traffic to "
                         "parallelize; use --jobs N to run points "
                         "concurrently (comm, fault, and serve do "
                         "accept --pdes)\n");
            return 2;
        } else
            usage(argv[0]);
    }
    if (products.empty() || workloads.empty() || jobs == 0)
        usage(argv[0]);

    sweep::SweepRunner runner(jobs);
    for (const auto &product : products) {
        for (const auto &workload : workloads) {
            runner.addJob(product + "/" + workload,
                          [=](json::JsonWriter &jw) {
                              runSweepJob(product, workload, engine,
                                          scale, with_stats, jw);
                          });
        }
    }

    const auto results = runner.run();

    std::fprintf(stderr,
                 "sweep: %zu jobs on %u workers, %.3f s of job time\n",
                 results.size(), runner.workers(),
                 sweep::SweepRunner::totalJobSeconds(results));
    int failures = 0;
    for (const auto &res : results) {
        if (!res.ok) {
            ++failures;
            std::fprintf(stderr, "sweep: job %zu (%s) failed: %s\n",
                         res.index, res.name.c_str(),
                         res.error.c_str());
        }
    }

    if (json_path.empty()) {
        sweep::SweepRunner::dumpJson(std::cout, "ehpsim_cli", results);
    } else {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "sweep: cannot open %s for writing\n",
                         json_path.c_str());
            return 1;
        }
        sweep::SweepRunner::dumpJson(out, "ehpsim_cli", results);
        if (!out.flush()) {
            std::fprintf(stderr, "sweep: error writing %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "sweep: JSON written to %s\n",
                     json_path.c_str());
    }
    return failures == 0 ? 0 : 1;
}

/** Parse "64", "4K", "16M", "1G" into bytes. */
std::uint64_t
parseSize(const std::string &s)
{
    if (s.empty())
        fatal("empty size");
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(s, &pos);
    std::uint64_t mult = 1;
    if (pos < s.size()) {
        const char suffix = s[pos];
        if (suffix == 'K' || suffix == 'k')
            mult = KiB;
        else if (suffix == 'M' || suffix == 'm')
            mult = MiB;
        else if (suffix == 'G' || suffix == 'g')
            mult = GiB;
        else
            fatal("bad size suffix in '", s, "'");
    }
    return value * mult;
}

comm::Collective
collectiveFor(const std::string &name)
{
    for (const auto c :
         {comm::Collective::allReduce, comm::Collective::allGather,
          comm::Collective::reduceScatter,
          comm::Collective::broadcast, comm::Collective::allToAll}) {
        if (name == comm::collectiveName(c))
            return c;
    }
    fatal("unknown collective '", name, "'");
}

comm::Algorithm
algorithmFor(const std::string &name)
{
    for (const auto a :
         {comm::Algorithm::automatic, comm::Algorithm::ring,
          comm::Algorithm::direct}) {
        if (name == comm::algorithmName(a))
            return a;
    }
    fatal("unknown algorithm '", name, "' (ring, direct, auto)");
}

/** The comm microbench world, built in one fixed order so a forked
 *  job can rebuild it identically around a warmup checkpoint. */
struct CommBenchWorld
{
    SimObject root{nullptr, "root"};
    std::unique_ptr<soc::NodeTopology> topo;
    EventQueue eq;
    std::unique_ptr<comm::CommGroup> group;

    explicit CommBenchWorld(const std::string &topology)
    {
        topo = topology == "quad"
                   ? soc::NodeTopology::mi300aQuadNode(&root)
                   : soc::NodeTopology::mi300xOctoNode(&root);
        comm::CommParams params;
        params.chunk_bytes = 1 * MiB;
        group = std::make_unique<comm::CommGroup>(
            topo.get(), "comm", topo->network(), topo->deviceRanks(),
            &eq, params);
    }

    /** @p n warmup ring all-reduces of @p bytes each, run to the op
     *  boundary (a legal checkpoint quiesce point). */
    void
    warmup(unsigned n, std::uint64_t bytes)
    {
        for (unsigned i = 0; i < n; ++i) {
            group->allReduce(0, bytes, comm::Algorithm::ring);
            group->waitAll();
        }
    }
};

/**
 * The shared warmup prefix of a forked comm sweep: load the blob
 * from @p checkpoint_path when the file exists, otherwise simulate
 * the warmup once (and save it there for the next run when a path
 * was given).
 */
std::string
commWarmupBlob(const std::string &topology, unsigned warmup,
               std::uint64_t warmup_bytes,
               const std::string &checkpoint_path)
{
    if (!checkpoint_path.empty()) {
        std::ifstream probe(checkpoint_path, std::ios::binary);
        if (probe.good()) {
            std::fprintf(stderr,
                         "comm: loading warmup checkpoint from %s\n",
                         checkpoint_path.c_str());
            return readSnapshotFile(checkpoint_path);
        }
    }
    CommBenchWorld w(topology);
    w.warmup(warmup, warmup_bytes);
    std::string blob = saveWorld(w.eq, w.root);
    if (!checkpoint_path.empty()) {
        writeSnapshotFile(checkpoint_path, blob);
        std::fprintf(stderr,
                     "comm: warmup checkpoint saved to %s\n",
                     checkpoint_path.c_str());
    }
    return blob;
}

/**
 * Run one collective microbenchmark point and serialize it. pdes >
 * 0 runs the simulation on that many conservative partitions. When
 * @p fork_blob is set the point resumes from the shared warmup
 * checkpoint instead of simulating the warmup itself; either way
 * the JSON below is byte-identical (the CI checkpoint-smoke job
 * cmp's the two documents).
 */
void
runCommJob(const std::string &topology, comm::Collective coll,
           comm::Algorithm algo, std::uint64_t bytes,
           unsigned warmup, std::uint64_t warmup_bytes, unsigned pdes,
           const std::string *fork_blob, json::JsonWriter &jw)
{
    CommBenchWorld w(topology);
    if (fork_blob)
        restoreWorld(*fork_blob, w.eq, w.root);
    comm::CommGroup &group = *w.group;

    std::unique_ptr<pdes::PdesEngine> engine;
    if (pdes > 0) {
        engine = std::make_unique<pdes::PdesEngine>(
            &w.eq, w.topo->network(), pdes);
        group.attachPdes(engine.get());
    }

    // Straight-through reference path for a warmed sweep: simulate
    // the warmup prefix inline. Forked jobs restored it instead.
    if (!fork_blob)
        w.warmup(warmup, warmup_bytes);

    comm::OpHandle op;
    switch (coll) {
      case comm::Collective::allReduce:
        op = group.allReduce(0, bytes, algo);
        break;
      case comm::Collective::allGather:
        op = group.allGather(0, bytes, algo);
        break;
      case comm::Collective::reduceScatter:
        op = group.reduceScatter(0, bytes, algo);
        break;
      case comm::Collective::broadcast:
        op = group.broadcast(0, 0, bytes, algo);
        break;
      default:
        op = group.allToAll(0, bytes, algo);
        break;
    }
    group.waitAll();
    if (engine)
        group.attachPdes(nullptr);

    jw.beginObject();
    jw.kv("topology", topology);
    jw.kv("collective", comm::collectiveName(coll));
    jw.kv("algorithm", comm::algorithmName(op->algorithm()));
    jw.kv("ranks", static_cast<double>(group.numRanks()));
    jw.kv("bytes", static_cast<double>(bytes));
    jw.kv("seconds", op->seconds());
    jw.kv("algbw_gbps", op->algoBandwidth() / 1e9);
    jw.kv("link_bytes", static_cast<double>(op->linkBytes()));
    jw.kv("max_link_busy", group.maxLinkUtilization());
    jw.kv("avg_link_busy", group.avgLinkUtilization());
    jw.endObject();
}

int
commMain(int argc, char **argv)
{
    std::string topology = "quad";
    std::string collective = "all_reduce";
    std::vector<std::string> algos = {"ring", "direct"};
    std::vector<std::string> sizes = {"1M", "16M", "64M"};
    std::string json_path;
    std::string checkpoint_path;
    unsigned jobs = 1;
    unsigned pdes = 0;
    unsigned warmup = 0;
    std::uint64_t warmup_bytes = 16 * MiB;
    bool fork = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--topology")
            topology = next();
        else if (arg == "--collective")
            collective = next();
        else if (arg == "--algos")
            algos = splitList(next());
        else if (arg == "--sizes")
            sizes = splitList(next());
        else if (arg == "--warmup")
            warmup = std::stoul(next());
        else if (arg == "--warmup-bytes")
            warmup_bytes = parseSize(next());
        else if (arg == "--fork")
            fork = true;
        else if (arg == "--checkpoint")
            checkpoint_path = next();
        else if (arg == "--pdes")
            pdes = std::stoul(next());
        else if (arg == "--jobs")
            jobs = std::stoul(next());
        else if (arg == "--json")
            json_path = next();
        else
            usage(argv[0]);
    }
    if (topology != "quad" && topology != "octo")
        fatal("unknown topology '", topology, "' (quad, octo)");
    if (algos.empty() || sizes.empty() || jobs == 0)
        usage(argv[0]);
    if (!checkpoint_path.empty() && !fork)
        fatal("comm: --checkpoint needs --fork (the file holds the "
              "forked warmup prefix)");
    if (fork && warmup == 0 && checkpoint_path.empty())
        fatal("comm: --fork needs a warmup prefix to share (set "
              "--warmup N, or --checkpoint F to load one)");
    const comm::Collective coll = collectiveFor(collective);

    // Every point of the sweep shares one warmup prefix: with
    // --fork it is simulated (or loaded) once and each point
    // restores the blob; without, each point re-simulates it — the
    // straight-through reference the byte-identity gate cmp's
    // against.
    sweep::WarmupSpec warm;
    warm.config = "comm|" + topology + "|w" + std::to_string(warmup) +
                  "|b" + std::to_string(warmup_bytes);
    warm.produce = [topology, warmup, warmup_bytes,
                    checkpoint_path] {
        return commWarmupBlob(topology, warmup, warmup_bytes,
                              checkpoint_path);
    };

    sweep::SweepRunner runner(jobs);
    for (const auto &algo_name : algos) {
        const comm::Algorithm algo = algorithmFor(algo_name);
        for (const auto &size : sizes) {
            const std::uint64_t bytes = parseSize(size);
            const std::string name = topology + "/" + collective +
                                     "/" + algo_name + "/" + size;
            if (fork) {
                runner.addForkedJob(
                    name, warm,
                    [=](const std::string &blob,
                        json::JsonWriter &jw) {
                        runCommJob(topology, coll, algo, bytes,
                                   warmup, warmup_bytes, pdes, &blob,
                                   jw);
                    });
            } else {
                runner.addJob(name, [=](json::JsonWriter &jw) {
                    runCommJob(topology, coll, algo, bytes, warmup,
                               warmup_bytes, pdes, nullptr, jw);
                });
            }
        }
    }

    const auto results = runner.run();

    std::fprintf(stderr,
                 "comm: %zu jobs on %u workers, %.3f s of job time\n",
                 results.size(), runner.workers(),
                 sweep::SweepRunner::totalJobSeconds(results));
    int failures = 0;
    for (const auto &res : results) {
        if (!res.ok) {
            ++failures;
            std::fprintf(stderr, "comm: job %zu (%s) failed: %s\n",
                         res.index, res.name.c_str(),
                         res.error.c_str());
        }
    }

    if (json_path.empty()) {
        sweep::SweepRunner::dumpJson(std::cout, "ehpsim_cli_comm",
                                     results);
    } else {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "comm: cannot open %s for writing\n",
                         json_path.c_str());
            return 1;
        }
        sweep::SweepRunner::dumpJson(out, "ehpsim_cli_comm", results);
        if (!out.flush()) {
            std::fprintf(stderr, "comm: error writing %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "comm: JSON written to %s\n",
                     json_path.c_str());
    }
    return failures == 0 ? 0 : 1;
}

/**
 * Run one collective under the fault injector and serialize the
 * degraded result plus the retry/reroute counters.
 */
void
runFaultJob(const std::string &topology, comm::Collective coll,
            comm::Algorithm algo, std::uint64_t bytes,
            const fault::FaultPlan &plan, const comm::CommParams &params,
            unsigned pdes, json::JsonWriter &jw)
{
    SimObject root(nullptr, "root");
    auto topo = topology == "quad"
                    ? soc::NodeTopology::mi300aQuadNode(&root)
                    : soc::NodeTopology::mi300xOctoNode(&root);
    EventQueue eq;
    comm::CommGroup group(topo.get(), "comm", topo->network(),
                          topo->deviceRanks(), &eq, params);

    fault::FaultInjector injector(topo.get(), "inj", plan, &eq);
    injector.attachNetwork(topo->network());
    injector.attachCommGroup(&group);
    injector.arm();

    // Scheduled link kills land on the coordinator queue and bump
    // the route epoch; the engine collapses partition groups at the
    // next window boundary, so the faulted schedule (and the JSON
    // below) is byte-identical to the serial run's.
    std::unique_ptr<pdes::PdesEngine> engine;
    if (pdes > 0) {
        engine = std::make_unique<pdes::PdesEngine>(
            &eq, topo->network(), pdes);
        group.attachPdes(engine.get());
    }

    comm::OpHandle op;
    switch (coll) {
      case comm::Collective::allReduce:
        op = group.allReduce(0, bytes, algo);
        break;
      case comm::Collective::allGather:
        op = group.allGather(0, bytes, algo);
        break;
      case comm::Collective::reduceScatter:
        op = group.reduceScatter(0, bytes, algo);
        break;
      case comm::Collective::broadcast:
        op = group.broadcast(0, 0, bytes, algo);
        break;
      default:
        op = group.allToAll(0, bytes, algo);
        break;
    }
    group.waitAll();
    if (engine)
        group.attachPdes(nullptr);

    jw.beginObject();
    jw.kv("topology", topology);
    jw.kv("collective", comm::collectiveName(coll));
    jw.kv("algorithm", comm::algorithmName(op->algorithm()));
    jw.kv("bytes", static_cast<double>(bytes));
    jw.kv("seed", static_cast<double>(plan.seed));
    jw.kv("chunk_error_rate", plan.chunk_error_rate);
    jw.kv("completed", op->done() ? 1.0 : 0.0);
    jw.kv("seconds", op->seconds());
    jw.kv("algbw_gbps", op->algoBandwidth() / 1e9);
    jw.kv("faults_injected", injector.faults_injected.value());
    jw.kv("chunk_retries", group.chunk_retries.value());
    jw.kv("retry_wait_ticks", group.retry_wait_ticks.value());
    jw.kv("links_killed",
          topo->network()->links_killed.value());
    jw.kv("links_derated",
          topo->network()->links_derated.value());
    jw.kv("reroutes", topo->network()->reroutes.value());
    jw.kv("max_link_busy", group.maxLinkUtilization());
    jw.endObject();
}

int
faultMain(int argc, char **argv)
{
    std::string topology = "octo";
    std::string collective = "all_reduce";
    std::vector<std::string> algos = {"ring", "direct"};
    std::vector<std::string> sizes = {"64M"};
    std::vector<std::string> rates = {"0", "0.005", "0.02"};
    std::vector<fault::LinkFault> kills;
    std::uint64_t seed = 1;
    std::string json_path;
    unsigned jobs = 1;
    unsigned pdes = 0;
    comm::CommParams params;
    params.chunk_bytes = 1 * MiB;
    // See ablation_resilience: a timeout-based retransmit has to
    // cover the per-link chunk backlog to detect loss at all.
    params.retry_timeout = 200'000'000;     // 200 us

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--topology")
            topology = next();
        else if (arg == "--collective")
            collective = next();
        else if (arg == "--algos")
            algos = splitList(next());
        else if (arg == "--sizes")
            sizes = splitList(next());
        else if (arg == "--rates")
            rates = splitList(next());
        else if (arg == "--seed")
            seed = std::stoull(next());
        else if (arg == "--kill")
            kills.push_back(fault::parseLinkFault(next()));
        else if (arg == "--max-retries")
            params.max_retries = std::stoul(next());
        else if (arg == "--retry-timeout")
            params.retry_timeout = std::stoull(next());
        else if (arg == "--pdes")
            pdes = std::stoul(next());
        else if (arg == "--jobs")
            jobs = std::stoul(next());
        else if (arg == "--json")
            json_path = next();
        else
            usage(argv[0]);
    }
    if (topology != "quad" && topology != "octo")
        fatal("unknown topology '", topology, "' (quad, octo)");
    if (algos.empty() || sizes.empty() || rates.empty() || jobs == 0)
        usage(argv[0]);
    const comm::Collective coll = collectiveFor(collective);

    sweep::SweepRunner runner(jobs);
    for (const auto &algo_name : algos) {
        const comm::Algorithm algo = algorithmFor(algo_name);
        for (const auto &size : sizes) {
            const std::uint64_t bytes = parseSize(size);
            for (const auto &rate : rates) {
                fault::FaultPlan plan;
                plan.seed = seed;
                plan.chunk_error_rate = std::stod(rate);
                plan.link_faults = kills;
                plan.validate();
                runner.addJob(topology + "/" + collective + "/" +
                                  algo_name + "/" + size + "/" + rate,
                              [=](json::JsonWriter &jw) {
                                  runFaultJob(topology, coll, algo,
                                              bytes, plan, params,
                                              pdes, jw);
                              });
            }
        }
    }

    const auto results = runner.run();

    std::fprintf(stderr,
                 "fault: %zu jobs on %u workers, %.3f s of job time\n",
                 results.size(), runner.workers(),
                 sweep::SweepRunner::totalJobSeconds(results));
    int failures = 0;
    for (const auto &res : results) {
        if (!res.ok) {
            ++failures;
            std::fprintf(stderr, "fault: job %zu (%s) failed: %s\n",
                         res.index, res.name.c_str(),
                         res.error.c_str());
        }
    }

    if (json_path.empty()) {
        sweep::SweepRunner::dumpJson(std::cout, "ehpsim_cli_fault",
                                     results);
    } else {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "fault: cannot open %s for writing\n",
                         json_path.c_str());
            return 1;
        }
        sweep::SweepRunner::dumpJson(out, "ehpsim_cli_fault", results);
        if (!out.flush()) {
            std::fprintf(stderr, "fault: error writing %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "fault: JSON written to %s\n",
                     json_path.c_str());
    }
    return failures == 0 ? 0 : 1;
}

/** Parse "ch@tick" into a scheduled HBM channel blackout. */
fault::ChannelFault
parseChannelFault(const std::string &spec)
{
    const auto at = spec.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= spec.size())
        fatal("bad blackout spec '", spec, "' (want ch@tick)");
    fault::ChannelFault f;
    f.channel = std::stoul(spec.substr(0, at));
    f.at = std::stoull(spec.substr(at + 1));
    return f;
}

int
serveMain(int argc, char **argv)
{
    std::vector<std::string> devices = {"mi300x", "baseline"};
    std::vector<std::string> loads = {"0.25", "1.0"};
    serve::ScenarioParams base;
    std::string json_path;
    unsigned jobs = 1;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--devices")
            devices = splitList(next());
        else if (arg == "--loads")
            loads = splitList(next());
        else if (arg == "--tp")
            base.tp = std::stoul(next());
        else if (arg == "--requests")
            base.num_requests = std::stoul(next());
        else if (arg == "--input-tokens")
            base.input_tokens = std::stoul(next());
        else if (arg == "--output-tokens")
            base.output_tokens = std::stoul(next());
        else if (arg == "--seed")
            base.seed = std::stoull(next());
        else if (arg == "--bursty")
            base.bursty = true;
        else if (arg == "--token-budget")
            base.token_budget = std::stoul(next());
        else if (arg == "--max-batch")
            base.max_batch = std::stoul(next());
        else if (arg == "--kv-blocks")
            base.kv_blocks_override = std::stoull(next());
        else if (arg == "--error-rate")
            base.faults.chunk_error_rate = std::stod(next());
        else if (arg == "--kill")
            base.faults.link_faults.push_back(
                fault::parseLinkFault(next()));
        else if (arg == "--blackout")
            base.faults.channel_faults.push_back(
                parseChannelFault(next()));
        else if (arg == "--pdes")
            base.pdes = std::stoul(next());
        else if (arg == "--checkpoint-at")
            base.checkpoint_at = std::stoull(next());
        else if (arg == "--jobs")
            jobs = std::stoul(next());
        else if (arg == "--json")
            json_path = next();
        else
            usage(argv[0]);
    }
    if (devices.empty() || loads.empty() || jobs == 0)
        usage(argv[0]);
    base.faults.seed = base.seed;
    base.faults.validate();

    sweep::SweepRunner runner(jobs);
    for (const auto &device : devices) {
        for (const auto &load : loads) {
            serve::ScenarioParams p = base;
            p.device = device;
            p.load_rps = std::stod(load);
            runner.addJob(device + "/load" + load,
                          [p](json::JsonWriter &jw) {
                              const auto r =
                                  serve::runServingScenario(p);
                              serve::dumpScenario(jw, p, r);
                          });
        }
    }

    const auto results = runner.run();

    std::fprintf(stderr,
                 "serve: %zu jobs on %u workers, %.3f s of job time\n",
                 results.size(), runner.workers(),
                 sweep::SweepRunner::totalJobSeconds(results));
    int failures = 0;
    for (const auto &res : results) {
        if (!res.ok) {
            ++failures;
            std::fprintf(stderr, "serve: job %zu (%s) failed: %s\n",
                         res.index, res.name.c_str(),
                         res.error.c_str());
        }
    }

    if (json_path.empty()) {
        sweep::SweepRunner::dumpJson(std::cout, "ehpsim_cli_serve",
                                     results);
    } else {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "serve: cannot open %s for writing\n",
                         json_path.c_str());
            return 1;
        }
        sweep::SweepRunner::dumpJson(out, "ehpsim_cli_serve", results);
        if (!out.flush()) {
            std::fprintf(stderr, "serve: error writing %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "serve: JSON written to %s\n",
                     json_path.c_str());
    }
    return failures == 0 ? 0 : 1;
}

#ifdef EHPSIM_RACE
/**
 * Per-scenario data the race jobs extract for the merged top-level
 * report. Slots are preallocated per job index and each written by
 * exactly one worker, so no synchronization is needed beyond the
 * runner's own join. Only compiled with the tracker hooks: in a
 * plain build raceMain exits early and these helpers would trip
 * -Wunused-function under the -Werror gate.
 */
struct RaceJobData
{
    std::map<std::pair<int, int>, Tick> lookahead;
    std::map<std::pair<int, int>, std::uint64_t> flows;
    std::uint64_t conflicts = 0;
    std::uint64_t waived = 0;
    std::uint64_t unwaived = 0;
    std::uint64_t events = 0;
    std::uint64_t accesses = 0;
};

/** Serialize one scenario's result: its name plus the full
 *  ehpsim-race-v1 tracker report. */
void
dumpRaceScenario(json::JsonWriter &jw, const std::string &name,
                 const race::AccessTracker &t)
{
    jw.beginObject();
    jw.kv("scenario", name);
    jw.key("report");
    t.dumpJson(jw);
    jw.endObject();
}

void
extractRaceData(const race::AccessTracker &t, RaceJobData &out)
{
    out.lookahead = t.lookahead();
    out.flows = t.flows();
    out.conflicts = t.conflictCount();
    out.waived = t.waivedCount();
    out.unwaived = t.unwaivedCount();
    out.events = t.eventCount();
    out.accesses = t.accessCount();
}

/** The octo-node ring all-reduce under the tracker: the collective
 *  hot path whose batched completions PR 5 made reorderable. */
void
runRaceCommJob(std::uint64_t bytes, json::JsonWriter &jw,
               RaceJobData &out)
{
    race::AccessTracker t;
    race::addStandardWaivers(t);
    {
        race::TrackerScope scope(&t);
        SimObject root(nullptr, "root");
        auto topo = soc::NodeTopology::mi300xOctoNode(&root);
        EventQueue eq;
        comm::CommParams params;
        params.chunk_bytes = 1 * MiB;
        comm::CommGroup group(topo.get(), "comm", topo->network(),
                              topo->deviceRanks(), &eq, params);
        group.allReduce(0, bytes, comm::Algorithm::ring);
        group.waitAll();
    }
    dumpRaceScenario(jw, "comm_allreduce_octo", t);
    extractRaceData(t, out);
}

/** A fixed-seed TP-decode serving run under the tracker (no fault
 *  plan: scheduled faults are exercised by race_test instead). */
void
runRaceServeJob(unsigned requests, std::uint64_t seed,
                json::JsonWriter &jw, RaceJobData &out)
{
    race::AccessTracker t;
    race::addStandardWaivers(t);
    {
        race::TrackerScope scope(&t);
        serve::ScenarioParams p;
        p.device = "mi300x";
        p.tp = 2;
        p.num_requests = requests;
        p.seed = seed;
        p.load_rps = 1.0;
        serve::runServingScenario(p);
    }
    dumpRaceScenario(jw, "serve_octo_tp2", t);
    extractRaceData(t, out);
}
#endif // EHPSIM_RACE

int
raceMain(int argc, char **argv)
{
    std::uint64_t bytes = 4 * MiB;
    unsigned requests = 8;
    std::uint64_t seed = 42;
    std::string json_path;
    unsigned jobs = 1;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--bytes")
            bytes = parseSize(next());
        else if (arg == "--requests")
            requests = std::stoul(next());
        else if (arg == "--seed")
            seed = std::stoull(next());
        else if (arg == "--jobs")
            jobs = std::stoul(next());
        else if (arg == "--json")
            json_path = next();
        else
            usage(argv[0]);
    }
    if (jobs == 0)
        usage(argv[0]);

#ifndef EHPSIM_RACE
    (void)bytes;
    (void)requests;
    (void)seed;
    std::fprintf(stderr,
                 "race: this binary was built without the tracker "
                 "hooks; reconfigure with -DEHPSIM_RACE=ON\n");
    return 2;
#else
    std::vector<RaceJobData> data(2);
    sweep::SweepRunner runner(jobs);
    runner.addJob("comm_allreduce_octo",
                  [bytes, &data](json::JsonWriter &jw) {
                      runRaceCommJob(bytes, jw, data[0]);
                  });
    runner.addJob("serve_octo_tp2",
                  [requests, seed, &data](json::JsonWriter &jw) {
                      runRaceServeJob(requests, seed, jw, data[1]);
                  });

    const auto results = runner.run();

    int failures = 0;
    for (const auto &res : results) {
        if (!res.ok) {
            ++failures;
            std::fprintf(stderr, "race: job %zu (%s) failed: %s\n",
                         res.index, res.name.c_str(),
                         res.error.c_str());
        }
    }

    RaceJobData total;
    for (const auto &d : data) {
        total.conflicts += d.conflicts;
        total.waived += d.waived;
        total.unwaived += d.unwaived;
        total.events += d.events;
        total.accesses += d.accesses;
        for (const auto &[pair, latency] : d.lookahead) {
            auto [it, inserted] = total.lookahead.emplace(pair, latency);
            if (!inserted)
                it->second = std::min(it->second, latency);
        }
        for (const auto &[pair, count] : d.flows)
            total.flows[pair] += count;
    }

    std::ostringstream doc;
    {
        json::JsonWriter jw(doc);
        jw.beginObject();
        jw.kv("schema", "ehpsim-race-v1");
        jw.key("summary");
        jw.beginObject();
        jw.kv("scenarios", std::uint64_t(results.size()));
        jw.kv("events", total.events);
        jw.kv("accesses", total.accesses);
        jw.kv("conflicts", total.conflicts);
        jw.kv("waived", total.waived);
        jw.kv("unwaived", total.unwaived);
        jw.endObject();
        jw.key("scenarios");
        jw.beginArray();
        for (const auto &res : results) {
            if (res.ok)
                jw.rawValue(res.output);
        }
        jw.endArray();
        // The merged PDES partition-dependency table: every domain
        // pair that exchanged messages, with the conservative
        // lookahead (minimum link latency) joining it.
        jw.key("partitions");
        jw.beginObject();
        jw.key("flows");
        jw.beginArray();
        for (const auto &[pair, count] : total.flows) {
            jw.beginObject();
            jw.kv("src", pair.first);
            jw.kv("dst", pair.second);
            jw.kv("count", count);
            jw.endObject();
        }
        jw.endArray();
        jw.key("lookahead");
        jw.beginArray();
        for (const auto &[pair, latency] : total.lookahead) {
            jw.beginObject();
            jw.kv("a", pair.first);
            jw.kv("b", pair.second);
            jw.kv("min_link_latency", latency);
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
        jw.endObject();
    }
    doc << "\n";

    if (json_path.empty()) {
        std::cout << doc.str();
        std::cout.flush();
    } else {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "race: cannot open %s for writing\n",
                         json_path.c_str());
            return 1;
        }
        out << doc.str();
        if (!out.flush()) {
            std::fprintf(stderr, "race: error writing %s\n",
                         json_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "race: JSON written to %s\n",
                     json_path.c_str());
    }

    std::fprintf(stderr,
                 "race: %zu scenarios, %llu events, %llu accesses, "
                 "%llu conflicts (%llu waived, %llu unwaived)\n",
                 results.size(),
                 static_cast<unsigned long long>(total.events),
                 static_cast<unsigned long long>(total.accesses),
                 static_cast<unsigned long long>(total.conflicts),
                 static_cast<unsigned long long>(total.waived),
                 static_cast<unsigned long long>(total.unwaived));
    return (failures == 0 && total.unwaived == 0) ? 0 : 1;
#endif // EHPSIM_RACE
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "race") == 0)
        return raceMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return sweepMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "comm") == 0)
        return commMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "fault") == 0)
        return faultMain(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
        return serveMain(argc, argv);

    const Options opt = parseArgs(argc, argv);
    const auto workload = workloadFor(opt.workload, opt.scale);
    std::printf("ehpsim: %s on %s via %s engine\n",
                workload.name.c_str(), opt.product.c_str(),
                opt.engine.c_str());

    RunReport report;
    if (opt.engine == "roofline") {
        const RooflineEngine eng(modelFor(opt.product));
        report = eng.run(workload);
    } else if (opt.engine == "event") {
        ApuSystem sys(productFor(opt.product),
                      opt.nps == 4 ? mem::NumaMode::nps4
                                   : mem::NumaMode::nps1);
        const auto policy = opt.policy == "blocked"
                                ? hsa::DistributionPolicy::blocked
                                : hsa::DistributionPolicy::roundRobin;
        report = sys.run(workload, opt.partitions, policy);
        if (opt.dump_stats)
            sys.dumpStats(std::cout);
    } else {
        usage(argv[0]);
    }

    std::printf("\n%-24s %12s %10s %10s %10s\n", "phase", "total",
                "gpu", "cpu", "copies");
    for (const auto &p : report.phases) {
        std::printf("%-24s %9.3f ms %7.3f ms %7.3f ms %7.3f ms\n",
                    p.name.c_str(), p.total_s * 1e3, p.gpu_s * 1e3,
                    p.cpu_s * 1e3, p.transfer_s * 1e3);
    }
    std::printf("%-24s %9.3f ms\n", "TOTAL", report.total_s * 1e3);
    const double flops =
        static_cast<double>(workload.totalGpuFlops());
    if (flops > 0 && report.total_s > 0) {
        std::printf("achieved: %.2f Tflops, %.2f TB/s\n",
                    flops / report.total_s / 1e12,
                    static_cast<double>(workload.totalGpuBytes()) /
                        report.total_s / 1e12);
    }
    if (!opt.trace_path.empty()) {
        writeChromeTrace(report, opt.trace_path);
        std::printf("trace written to %s\n", opt.trace_path.c_str());
    }
    return 0;
}
