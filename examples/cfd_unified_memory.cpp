/**
 * @file
 * The paper's OpenFOAM story (Sec. VI, Fig. 14/15/20): a coupled
 * CPU/GPU CFD solver on (a) a discrete CPU+GPU node that must copy
 * fields over the host link every step, and (b) the MI300A APU,
 * where unified memory removes the copies and coherent completion
 * flags let the CPU overlap post-processing with the GPU solve.
 *
 *   ./build/examples/cfd_unified_memory [cells] [steps]
 */

#include <cstdio>
#include <cstdlib>

#include "core/apu_system.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;

int
main(int argc, char **argv)
{
    const std::uint64_t cells =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000'000;
    const unsigned steps =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 10;

    const auto solver = workloads::cfdSolver(cells, steps);
    std::printf("CFD solver: %llu cells, %u steps, %s resident, "
                "%s coupled per run\n",
                static_cast<unsigned long long>(cells), steps,
                formatBytes(solver.footprint_bytes).c_str(),
                formatBytes(solver.totalTransferBytes()).c_str());

    // Discrete node: MI250X + EPYC over Infinity Fabric.
    const RooflineEngine discrete(mi250xNodeModel());
    const auto d = discrete.run(solver, CouplingMode::coarseSync);
    std::printf("\n%-28s %10.2f ms  (copies: %.2f ms = %.0f%%)\n",
                "MI250X node (discrete):", d.total_s * 1e3,
                d.transferSeconds() * 1e3,
                d.transferSeconds() / d.total_s * 100);

    // APU, kernel-level sync (Fig. 15c).
    const RooflineEngine apu(mi300aModel());
    const auto a = apu.run(solver, CouplingMode::coarseSync);
    std::printf("%-28s %10.2f ms  (copies: none)\n",
                "MI300A APU (kernel sync):", a.total_s * 1e3);

    // APU, fine-grained flag overlap (Fig. 15b).
    const auto f = apu.run(solver, CouplingMode::fineGrained);
    std::printf("%-28s %10.2f ms  (CPU overlapped with GPU)\n",
                "MI300A APU (fine-grained):", f.total_s * 1e3);

    std::printf("\nSpeedup over the discrete node: %.2fx "
                "(paper Fig. 20 reports 2.75x for OpenFOAM)\n",
                d.total_s / f.total_s);

    // Confirm the shape through the event engine on a scaled-down
    // problem (full size would take a while in the detailed model).
    auto small = workloads::cfdSolver(200'000, 2);
    for (auto &p : small.phases)
        p.grid_workgroups = 256;
    ApuSystem coarse_sys(soc::mi300aConfig());
    ApuSystem fine_sys(soc::mi300aConfig());
    const auto ec = coarse_sys.run(
        small, 1, hsa::DistributionPolicy::roundRobin, false);
    const auto ef = fine_sys.run(
        small, 1, hsa::DistributionPolicy::roundRobin, true);
    std::printf("\nEvent engine (200k cells): sync %.1f us, "
                "fine-grained %.1f us\n",
                ec.total_s * 1e6, ef.total_s * 1e6);

    // Per-phase breakdown of the APU run.
    std::printf("\nPer-phase (APU, fine-grained):\n");
    for (const auto &p : f.phases) {
        std::printf("  %-16s total %8.3f ms (gpu %7.3f, cpu %7.3f)\n",
                    p.name.c_str(), p.total_s * 1e3, p.gpu_s * 1e3,
                    p.cpu_s * 1e3);
    }
    return 0;
}
