/**
 * @file
 * Physical-design walkthrough (paper Secs. V.B-V.E): compose a
 * modular chiplet package the way MI300 does —
 *  1. define an IOD TSV plan with mirror-redundant signal banks;
 *  2. verify unmirrored chiplets land on all four IOD instances;
 *  3. check power delivery against the TSV/microbump ratings;
 *  4. build the floorplan, allocate power with the governor, and
 *     solve the thermal map for both Fig. 12 scenarios.
 *
 *   ./build/examples/package_designer
 */

#include <cstdio>

#include "geom/alignment.hh"
#include "geom/power_delivery.hh"
#include "power/governor.hh"
#include "power/thermal.hh"
#include "soc/floorplan_builder.hh"

using namespace ehpsim;
using namespace ehpsim::geom;

int
main()
{
    // --- 1. IOD TSV plan -------------------------------------------
    IodTsvPlan iod(11.5, 11.5);
    iod.addBank({"xcd_land_w", {2.8, 4.0, 1.5, 3.0}, 0.25});
    iod.addBank({"xcd_land_e", {6.8, 3.8, 1.5, 3.0}, 0.25});
    const auto before = iod.numSites();
    iod.addMirrorRedundancy();
    std::printf("IOD signal TSVs: %zu base + %zu redundant (Fig. 9 "
                "red circles)\n",
                before, iod.numSites() - before);

    // --- 2. Chiplet alignment across all IOD instances -------------
    ChipletFootprint xcd("xcd", 7.5, 5.5);
    xcd.addBank({"tsv_w", {0.8, 1.0, 1.5, 3.0}, 0.25});
    xcd.addBank({"tsv_e", {4.8, 0.8, 1.5, 3.0}, 0.25});
    for (Orient o : allOrients) {
        Orient chip_o = Orient::r0;
        double ox = 2.0, oy = 3.0;
        if (o == Orient::r180 || o == Orient::mirroredR180) {
            chip_o = Orient::r180;
            ox = iod.width() - 2.0 - xcd.width();
            oy = iod.height() - 3.0 - xcd.height();
        }
        const auto res =
            iod.checkStackAlignment(xcd, chip_o, ox, oy, o);
        std::printf("  IOD %-13s chiplet %-5s: %zu/%zu pads %s\n",
                    orientName(o), orientName(chip_o),
                    res.pads_aligned, res.pads_checked,
                    res.aligned ? "ALIGNED" : "MISALIGNED");
    }

    // --- 3. Power delivery (Sec. V.D) -------------------------------
    PowerDeliveryModel pdn(0.75);
    pdn.addPath({"tsv_grid", 6 * 72.0 + 3 * 71.0, 1.5, 0.02});
    pdn.addPath({"iod_ubump", 4 * 115.0, 0.5, 0.05});
    const auto tsv = pdn.check("tsv_grid", 360.0);
    const auto bump = pdn.check("iod_ubump", 140.0);
    std::printf("\nPower delivery at 0.75 V:\n");
    std::printf("  TSV grid:  %.0f A demand vs %.0f A capacity "
                "(margin %.2fx, I2R %.1f W) %s\n",
                tsv.demand_a, tsv.capacity_a, tsv.margin,
                tsv.i2r_loss_w, tsv.ok ? "OK" : "OVER");
    std::printf("  microbump: %.0f A demand vs %.0f A capacity "
                "(margin %.2fx) %s\n",
                bump.demand_a, bump.capacity_a, bump.margin,
                bump.ok ? "OK" : "OVER");

    // The Fig. 10 co-design: SRAM macros pitch-matched between TSV
    // power stripes.
    PowerTsvGrid grid({0, 0, 11.5, 11.5}, 0.12);
    std::printf("  P/G TSV grid: %zu sites, %.0f sites/mm^2, "
                "%.2f mm SRAM channel between stripes\n",
                grid.numSites(), grid.density(),
                grid.channelWidth(0.03));

    // --- 4. Floorplan + governor + thermal --------------------------
    const auto plan =
        soc::buildPackageFloorplan(soc::mi300aConfig());
    std::printf("\nFloorplan: %zu regions, %.0f%% utilization, "
                "overlap-free: %s\n",
                plan.regions().size(), plan.utilization() * 100,
                plan.overlapFree() ? "yes" : "NO");

    SimObject root(nullptr, "root", nullptr);
    auto *model = power::PowerModel::makeMi300a(&root);
    power::PowerGovernor gov(&root, "gov", model);
    power::ThermalGrid thermal(&root, "thermal", &plan);

    const struct
    {
        const char *name;
        power::PowerDistribution dist;
    } scenarios[] = {
        {"compute-intensive (Fig. 12b)",
         power::computeIntensiveDistribution()},
        {"memory-intensive (Fig. 12c)",
         power::memoryIntensiveDistribution()},
    };
    for (const auto &s : scenarios) {
        const auto alloc = gov.allocateForDistribution(s.dist);
        thermal.solve(
            soc::regionPowerVector(plan, alloc.perDomain(*model)));
        std::printf("\n%s: %.0f W allocated, hottest=%s "
                    "(%.1f C max)\n%s",
                    s.name, alloc.total,
                    thermal.hottestRegion().c_str(),
                    thermal.maxTemperature(),
                    thermal.asciiHeatMap(56, 18).c_str());
    }
    delete model;
    return 0;
}
