/**
 * @file
 * ehpsim quickstart: build an MI300A APU, run a bandwidth-bound
 * kernel through the event-driven engine, and inspect the results.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/apu_system.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "workloads/generators.hh"

using namespace ehpsim;

int
main()
{
    // 1. Every product in the paper is a ProductConfig; presets are
    //    provided for MI300A, MI300X, MI250X, and EHPv4.
    const soc::ProductConfig cfg = soc::mi300aConfig();
    std::printf("Building %s: %u XCDs (%u CUs), %u CCDs, %s HBM\n",
                cfg.name.c_str(), cfg.totalXcds(),
                cfg.totalXcds() * cfg.xcd.active_cus,
                cfg.totalCcds(),
                formatBytes(cfg.hbm.capacity_bytes).c_str());

    // 2. ApuSystem instantiates the package: chiplets, Infinity
    //    Fabric, Infinity Cache, HBM channels, coherence.
    core::ApuSystem sys(cfg);
    auto &pkg = sys.package();
    std::printf("Peak: %.1f Tflops FP32 vector, %s HBM, %s cache\n",
                pkg.peakGpuFlops(gpu::Pipe::vector,
                                 gpu::DataType::fp32) / 1e12,
                formatBandwidth(pkg.peakMemBandwidth()).c_str(),
                formatBandwidth(pkg.peakCacheBandwidth()).c_str());

    // 3. Workloads are phase lists; generators cover the paper's
    //    applications. This is a STREAM triad.
    auto triad = workloads::streamTriad(1 << 21);
    triad.phases[0].grid_workgroups = 1024;

    // 4. Run through the event engine: real AQL dispatch across the
    //    six XCDs, caches, fabric routing, HBM timing.
    const auto report = sys.run(triad);
    const double bytes =
        static_cast<double>(triad.totalGpuBytes());
    std::printf("\nEvent engine: %s finished in %.2f us "
                "(%.2f TB/s achieved)\n",
                triad.name.c_str(), report.total_s * 1e6,
                bytes / report.total_s / 1e12);
    std::printf("Infinity Cache hit rate: %.1f%%\n",
                pkg.cacheHitRate() * 100);

    // 5. Cross-check with the analytical roofline engine.
    const core::RooflineEngine roofline(core::mi300aModel());
    const auto analytic = roofline.run(triad);
    std::printf("Roofline engine: %.2f us (event/roofline = %.2fx)\n",
                analytic.total_s * 1e6,
                report.total_s / analytic.total_s);

    // 6. Every component exposes gem5-style statistics.
    std::printf("\nSelected statistics:\n");
    std::printf("  xcd0 workgroups dispatched: %.0f\n",
                pkg.xcd(0)->workgroups_dispatched.value());
    std::printf("  xcd0 L2 hit rate: %.1f%%\n",
                pkg.xcd(0)->l2()->hitRate() * 100);
    std::printf("  fabric messages: %.0f\n",
                pkg.network()->messages.value());
    std::printf("  fabric energy: %.2f mJ\n",
                pkg.network()->totalEnergyJoules() * 1e3);
    return 0;
}
