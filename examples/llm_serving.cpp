/**
 * @file
 * MI300X for LLM serving (paper Sec. VII, Figs. 16/17/21):
 *  - Llama-2 70B inference latency vs an 80 GB baseline GPU;
 *  - why capacity matters: FP16 weights fit in one MI300X;
 *  - multi-tenant serving with SR-IOV style partitions (Fig. 17b).
 *
 *   ./build/examples/llm_serving
 */

#include <cstdio>

#include "core/apu_system.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

double
latencyMs(const MachineModel &base, double efficiency,
          gpu::DataType dtype)
{
    MachineModel m = base;
    m.gpu_efficiency = efficiency;
    m.mem_efficiency = efficiency;
    LlmConfig cfg;
    cfg.dtype = dtype;
    return RooflineEngine(m).run(llmInference(cfg)).total_s * 1e3;
}

} // anonymous namespace

int
main()
{
    const auto mi300x = mi300xModel();
    const auto baseline = baselineGpuModel();

    std::printf("Llama-2 70B, batch 1, 2048 input + 128 output "
                "tokens (paper Fig. 21 setup)\n\n");
    std::printf("Weights: 140 GB FP16 -> fits MI300X (192 GB), "
                "exceeds the baseline (80 GB)\n\n");

    const double t_mx = latencyMs(mi300x, 0.82, gpu::DataType::fp16);
    const double t_bv =
        latencyMs(baseline, 0.42, gpu::DataType::fp16);
    const double t_bt =
        latencyMs(baseline, 0.65, gpu::DataType::fp16);
    const double t_b8 =
        latencyMs(baseline, 0.55, gpu::DataType::fp8);

    std::printf("%-34s %8.0f ms\n", "MI300X + vLLM (FP16):", t_mx);
    std::printf("%-34s %8.0f ms  (%.2fx slower)\n",
                "Baseline + vLLM (FP16):", t_bv, t_bv / t_mx);
    std::printf("%-34s %8.0f ms  (%.2fx slower)\n",
                "Baseline + TensorRT-LLM (FP16):", t_bt,
                t_bt / t_mx);
    std::printf("%-34s %8.0f ms  (%.2fx slower)\n",
                "Baseline + TensorRT-LLM (FP8):", t_b8,
                t_b8 / t_mx);

    // Phase anatomy: prefill is compute-bound, decode streams the
    // weights per token (paper Sec. VII).
    LlmConfig cfg;
    MachineModel m = mi300x;
    m.gpu_efficiency = m.mem_efficiency = 0.82;
    const RooflineEngine eng(m);
    const auto pre = eng.run(llmPrefill(cfg));
    const auto dec = eng.run(llmDecode(cfg));
    std::printf("\nPhase anatomy on MI300X:\n");
    std::printf("  prefill: %6.1f ms for 2048 tokens (compute)\n",
                pre.total_s * 1e3);
    std::printf("  decode:  %6.1f ms for 128 tokens "
                "(%.1f ms/token, bandwidth)\n",
                dec.total_s * 1e3, dec.total_s * 1e3 / 128);

    // Multi-tenant serving on one MI300X: 8 partitions (Fig. 17b),
    // each a one-XCD SR-IOV virtual function running a small model.
    std::printf("\nMulti-tenant: 8 small models on 8 partitions "
                "(NPS4)\n");
    ApuSystem sys(soc::mi300xConfig(), mem::NumaMode::nps4);
    auto parts = sys.package().partitionInto(8);
    Tick done = 0;
    for (unsigned t = 0; t < 8; ++t) {
        hsa::AqlPacket pkt;
        pkt.grid_workgroups = 128;
        pkt.work.flops = 2048 * 8192;
        pkt.work.dtype = gpu::DataType::fp16;
        pkt.work.pipe = gpu::Pipe::matrix;
        pkt.work.bytes_read = 32768;
        pkt.work.bytes_written = 4096;
        pkt.read_stride = 32768;
        pkt.write_stride = 4096;
        pkt.work.read_base = Addr(t) * (1u << 28);
        pkt.work.write_base = Addr(t) * (1u << 28) + (1u << 27);
        const auto res = parts[t]->dispatch(0, pkt);
        done = std::max(done, res.complete);
        std::printf("  tenant %u on partition %u: %.1f us "
                    "(38 CUs, %u sync msgs)\n",
                    t, t, secondsFromTicks(res.complete) * 1e6,
                    res.sync_messages);
    }
    std::printf("All eight tenants complete in %.1f us "
                "(spatially isolated)\n",
                secondsFromTicks(done) * 1e6);
    return 0;
}
