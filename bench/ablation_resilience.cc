/**
 * @file
 * Resilience ablation: how gracefully the modeled node degrades
 * under injected faults, the flip side of the paper's yield story
 * (Sec. III harvests 38 of 40 CUs per XCD so defective dies still
 * ship; the node designs of Fig. 18 keep extra fabric links).
 *
 * Four sweeps, all driven by the deterministic fault subsystem:
 *  - transient chunk-error rate x collective algorithm on the octo
 *    MI300X node: achieved all-reduce bandwidth with retry/backoff;
 *  - an x16 IF link killed mid-all-reduce: the fabric reroutes and
 *    the collective completes at measurably lower bandwidth;
 *  - CU harvesting swept 40 -> 28 per XCD: peak vector-fp32 flops;
 *  - HBM channel blackouts: surviving peak bandwidth after remap.
 *
 * Sweep-shaped: every configuration is an independent SweepCase
 * (--jobs N, --json FILE).
 */

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "comm/comm_group.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "gpu/xcd.hh"
#include "mem/hbm_subsystem.hh"
#include "soc/node_topology.hh"

using namespace ehpsim;
using namespace ehpsim::comm;
using namespace ehpsim::soc;

namespace
{

/** Flat backing store for the CU-harvest XCD sweep. */
class FlatMemory : public mem::MemDevice
{
  public:
    FlatMemory(SimObject *parent, Tick latency)
        : mem::MemDevice(parent, "flat"), latency_(latency)
    {}

    mem::AccessResult
    access(Tick when, Addr, std::uint64_t, bool) override
    {
        return {when + latency_, true, 0};
    }

  private:
    Tick latency_;
};

constexpr std::uint64_t kBytes = 64 * MiB;
constexpr std::uint64_t kSeed = 20240624;   // arbitrary, fixed

/**
 * One all-reduce on the octo node under a transient chunk-error
 * rate; reports achieved algorithmic bandwidth and retry count.
 */
void
faultRateCase(Algorithm algo, double rate, const std::string &label,
              bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto octo = NodeTopology::mi300xOctoNode(&root);
    EventQueue eq;
    CommParams params;
    params.chunk_bytes = 1 * MiB;
    // A timeout-based retransmit can only detect loss after the
    // chunk (and the queue ahead of it) would have drained, so the
    // timer has to cover the per-link backlog: ~130 us here.
    params.retry_timeout = 200'000'000;     // 200 us
    CommGroup group(octo.get(), "comm", octo->network(),
                    octo->deviceRanks(), &eq, params);

    fault::FaultPlan plan;
    plan.seed = kSeed;
    plan.chunk_error_rate = rate;
    fault::FaultInjector inj(octo.get(), "inj", plan, &eq);
    inj.attachCommGroup(&group);
    inj.arm();

    auto op = group.allReduce(0, kBytes, algo);
    group.waitAll();

    const std::string series =
        std::string("allreduce_octo_") + algorithmName(algo);
    sink.row(series, label, op->algoBandwidth() / 1e9, "GB/s");
    sink.row(series + "_retries", label, group.chunk_retries.value(),
             "chunks");
}

/**
 * Kill the mi300x0 <-> mi300x1 x16 a quarter of the way into a
 * direct all-reduce: traffic reroutes through a third socket and
 * the op completes, degraded.
 */
void
linkKillCase(bench::RowSink &sink)
{
    double base_bw = 0;
    Tick base_finish = 0;
    {
        SimObject root(nullptr, "root");
        auto octo = NodeTopology::mi300xOctoNode(&root);
        EventQueue eq;
        CommParams params;
        params.chunk_bytes = 1 * MiB;
        CommGroup group(octo.get(), "comm", octo->network(),
                        octo->deviceRanks(), &eq, params);
        auto op = group.allReduce(0, kBytes, Algorithm::direct);
        group.waitAll();
        base_bw = op->algoBandwidth();
        base_finish = op->finishTick();
    }

    SimObject root(nullptr, "root");
    auto octo = NodeTopology::mi300xOctoNode(&root);
    EventQueue eq;
    CommParams params;
    params.chunk_bytes = 1 * MiB;
    CommGroup group(octo.get(), "comm", octo->network(),
                    octo->deviceRanks(), &eq, params);

    fault::FaultPlan plan;
    plan.seed = kSeed;
    plan.link_faults.push_back(
        {"mi300x0", "mi300x1", base_finish / 4, 0.0});
    fault::FaultInjector inj(octo.get(), "inj", plan, &eq);
    inj.attachNetwork(octo->network());
    inj.attachCommGroup(&group);
    inj.arm();

    auto op = group.allReduce(0, kBytes, Algorithm::direct);
    group.waitAll();

    sink.row("link_kill", "healthy", base_bw / 1e9, "GB/s");
    sink.row("link_kill", "one_x16_down", op->algoBandwidth() / 1e9,
             "GB/s");
    sink.row("link_kill_reroutes", "one_x16_down",
             octo->network()->reroutes.value(), "recomputes");
    sink.row("link_kill_completed", "one_x16_down",
             op->done() ? 1 : 0, "bool");
}

/** Peak vector-fp32 flops of one XCD at a given harvest level. */
void
cuHarvestCase(unsigned active_cus, bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 1000);
    gpu::XcdParams p = gpu::cdna3XcdParams();
    fault::applyCuHarvest(p, active_cus);
    gpu::Xcd xcd(&root, "xcd", p, &memory);
    sink.row("cu_harvest", std::to_string(active_cus),
             xcd.peakFlops(gpu::Pipe::vector, gpu::DataType::fp32) /
                 1e12,
             "TFLOP/s");
}

/** Surviving peak HBM bandwidth after @p dark channel blackouts. */
void
hbmBlackoutCase(unsigned dark, bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    mem::HbmSubsystem hbm(&root, "hbm", mem::HbmSubsystemParams{});
    for (unsigned c = 0; c < dark; ++c)
        hbm.blackoutChannel(c);
    sink.row("hbm_blackout", std::to_string(dark),
             hbm.peakHbmBandwidth() / 1e9, "GB/s");
    sink.row("hbm_blackout_live", std::to_string(dark),
             hbm.liveChannels(), "channels");
}

void
report(const bench::SweepArgs &args)
{
    bench::printHeader("ablation_resilience",
                       "fault injection and graceful degradation");

    struct RatePoint
    {
        double rate;
        const char *label;
    };
    const RatePoint rates[] = {
        {0.0, "0"}, {0.005, "0.005"}, {0.02, "0.02"}};

    std::vector<bench::SweepCase> cases;
    for (const Algorithm algo : {Algorithm::ring, Algorithm::direct}) {
        for (const RatePoint &pt : rates) {
            const std::string name = std::string("rate_") +
                                     algorithmName(algo) + "_" +
                                     pt.label;
            const double rate = pt.rate;
            const std::string label = pt.label;
            cases.push_back(
                {name, [algo, rate, label](bench::RowSink &s) {
                     faultRateCase(algo, rate, label, s);
                 }});
        }
    }
    cases.push_back({"link_kill", linkKillCase});
    for (const unsigned cus : {40u, 38u, 36u, 32u, 28u}) {
        cases.push_back({"cu_harvest_" + std::to_string(cus),
                         [cus](bench::RowSink &s) {
                             cuHarvestCase(cus, s);
                         }});
    }
    for (const unsigned dark : {0u, 1u, 4u, 16u}) {
        cases.push_back({"hbm_blackout_" + std::to_string(dark),
                         [dark](bench::RowSink &s) {
                             hbmBlackoutCase(dark, s);
                         }});
    }

    const auto outcomes =
        bench::runCases("ablation_resilience", cases, args);

    // Shape checks: retries cost bandwidth, a dead link degrades but
    // never kills the collective, and compute/memory peaks scale
    // linearly with the surviving resources.
    const double ring_clean =
        bench::findRow(outcomes, "allreduce_octo_ring", "0");
    const double ring_faulty =
        bench::findRow(outcomes, "allreduce_octo_ring", "0.02");
    const double direct_clean =
        bench::findRow(outcomes, "allreduce_octo_direct", "0");
    const double direct_faulty =
        bench::findRow(outcomes, "allreduce_octo_direct", "0.02");
    const bool rate_ok = ring_faulty < ring_clean &&
                         direct_faulty < direct_clean &&
                         ring_faulty > 0 && direct_faulty > 0;

    const double kill_base =
        bench::findRow(outcomes, "link_kill", "healthy");
    const double kill_bw =
        bench::findRow(outcomes, "link_kill", "one_x16_down");
    const bool kill_ok =
        bench::findRow(outcomes, "link_kill_completed",
                       "one_x16_down") == 1 &&
        kill_bw > 0 && kill_bw < kill_base &&
        bench::findRow(outcomes, "link_kill_reroutes",
                       "one_x16_down") > 0;

    const double flops40 = bench::findRow(outcomes, "cu_harvest", "40");
    const double flops28 = bench::findRow(outcomes, "cu_harvest", "28");
    const bool harvest_ok =
        flops40 > 0 &&
        std::abs(flops28 / flops40 - 28.0 / 40.0) < 1e-9;

    const double hbm0 = bench::findRow(outcomes, "hbm_blackout", "0");
    const double hbm16 = bench::findRow(outcomes, "hbm_blackout", "16");
    const bool hbm_ok =
        hbm0 > 0 && std::abs(hbm16 / hbm0 - 112.0 / 128.0) < 1e-9;

    bench::shapeCheck(
        "ablation_resilience",
        rate_ok && kill_ok && harvest_ok && hbm_ok,
        "retried chunks cost bandwidth but never correctness; a "
        "killed x16 reroutes and the all-reduce completes degraded; "
        "peak flops scale 28/40 under harvest and peak HBM bandwidth "
        "112/128 with 16 channels dark");
}

void
BM_FaultedAllReduce(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    auto quad = NodeTopology::mi300aQuadNode(&root);
    EventQueue eq;
    CommParams params;
    params.chunk_bytes = 1 * MiB;
    CommGroup group(quad.get(), "comm", quad->network(),
                    quad->deviceRanks(), &eq, params);
    fault::FaultPlan plan;
    plan.seed = kSeed;
    plan.chunk_error_rate = 0.01;
    fault::FaultInjector inj(quad.get(), "inj", plan, &eq);
    inj.attachCommGroup(&group);
    inj.arm();
    for (auto _ : state) {
        auto op = group.allReduce(eq.curTick(), 4 * MiB,
                                  Algorithm::ring);
        group.waitAll();
        benchmark::DoNotOptimize(op->finishTick());
    }
}
BENCHMARK(BM_FaultedAllReduce);

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto sweep_args = bench::parseSweepArgs(argc, argv);
    report(sweep_args);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
