/**
 * @file
 * Reproduces paper Fig. 20: measured speedups of MI300A over the
 * MI250X (discrete, EPYC-hosted) node on four HPC workloads:
 * GROMACS and N-body (compute throughput), HPCG (HBM3 bandwidth),
 * and OpenFOAM (2.75x: compute + bandwidth + CPU-GPU data movement
 * eliminated by unified memory).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

void
report()
{
    bench::printHeader(
        "fig20", "HPC speedups: MI300A vs MI250X node");

    const RooflineEngine apu(mi300aModel());
    const RooflineEngine discrete(mi250xNodeModel());

    struct Entry
    {
        const char *name;
        Workload workload;
    };
    Entry entries[] = {
        {"GROMACS-like", gromacsLike(3'000'000, 10)},
        {"nbody", nbody(200'000, 10)},
        {"HPCG-like", hpcg(256, 256, 256, 20)},
        {"OpenFOAM-like", cfdSolver(30'000'000, 10)},
    };

    double speedups[4];
    int i = 0;
    for (auto &e : entries) {
        const auto a = apu.run(e.workload);
        const auto d = discrete.run(e.workload);
        const double s = d.total_s / a.total_s;
        speedups[i++] = s;
        bench::printRow("fig20", "mi300a_time", e.name,
                        a.total_s * 1e3, "ms");
        bench::printRow("fig20", "mi250x_time", e.name,
                        d.total_s * 1e3, "ms");
        bench::printRow("fig20", "speedup", e.name, s, "x");
        bench::printRow("fig20", "mi250x_copy_share", e.name,
                        d.transferSeconds() / d.total_s, "fraction");
    }

    // Shape: every workload speeds up; the coupled CFD case benefits
    // the most (paper: 2.75x) because the APU removes the data
    // movement entirely; the compute-bound cases land near the
    // compute-ratio (~2x), HPCG near the bandwidth ratio (~1.7x).
    const bool pass =
        speedups[0] > 1.4 && speedups[0] < 2.8 &&
        speedups[1] > 1.4 && speedups[1] < 2.8 &&
        speedups[2] > 1.3 && speedups[2] < 2.1 &&
        speedups[3] > speedups[0] && speedups[3] > speedups[2] &&
        speedups[3] > 2.0 && speedups[3] < 4.0;
    bench::shapeCheck(
        "fig20", pass,
        "all four workloads speed up; OpenFOAM-like coupled CFD "
        "gains the most (paper: 2.75x) from unified memory; HPCG "
        "tracks the 1.7x bandwidth uplift");
}

void
BM_CfdRoofline(benchmark::State &state)
{
    const RooflineEngine apu(mi300aModel());
    const auto w = cfdSolver(1'000'000, 5);
    for (auto _ : state) {
        auto rep = apu.run(w);
        benchmark::DoNotOptimize(rep.total_s);
    }
}
BENCHMARK(BM_CfdRoofline);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
