/**
 * @file
 * Reproduces paper Fig. 21: Llama-2 70B inference latency (median),
 * batch 1, 2048 input tokens, 128 output tokens:
 *   1. MI300X+vLLM vs baseline GPU+vLLM          (paper: >2x)
 *   2. MI300X+vLLM vs baseline GPU+TensorRT-LLM  (paper: ~1.3x)
 *   3. MI300X+vLLM FP16 vs baseline+TRT-LLM FP8  (paper: MI300X
 *      still ahead on absolute latency)
 *
 * Software stacks are modeled as sustained-efficiency factors on
 * the roofline (documented below); the hardware story — 192 GB @
 * 5.3 TB/s vs 80 GB @ 3.35 TB/s — comes from the machine models.
 *
 * On top of the single-device figure, a tensor-parallelism sweep
 * shards the model over 1/2/4/8 sockets of the Fig. 18b octo node:
 * every transformer layer ends in two all-reduces over the IF
 * links, simulated through the comm engine (not closed-form), with
 * the prefill-side all-reduce partially overlapped with compute.
 *
 * Sweep-shaped: each stack configuration and TP degree is an
 * independent SweepCase (--jobs N, --json FILE).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "comm/comm_group.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "soc/node_topology.hh"
#include "workloads/generators.hh"
#include "workloads/llm_stack.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

// The software-stack efficiency table lives in
// workloads/llm_stack.hh, shared with the serving subsystem
// (bench/serving_llm.cc) so both replay the same Fig. 21 stacks.
constexpr SoftwareStack vllmMi300x = vllmMi300xStack;
constexpr SoftwareStack vllmBase = vllmBaselineStack;
constexpr SoftwareStack trtBase = trtllmBaselineStack;
constexpr SoftwareStack trtFp8Base = trtllmFp8BaselineStack;

// Llama-2 70B shapes for the tensor-parallel communication model.
constexpr unsigned llamaLayers = 80;
constexpr unsigned llamaHidden = 8192;
constexpr unsigned llamaInputTokens = 2048;
constexpr unsigned llamaOutputTokens = 128;
/** Megatron-style sharding: two all-reduces per transformer layer. */
constexpr unsigned allReducesPerLayer = 2;
/** Fraction of the prefill all-reduce hidden under compute. */
constexpr double prefillOverlap = 0.5;

double
inferenceLatency(const MachineModel &machine, const SoftwareStack &stack)
{
    LlmConfig cfg;
    cfg.dtype = stack.dtype;

    MachineModel m = machine;
    m.gpu_efficiency = stack.efficiency;
    m.mem_efficiency = stack.efficiency;
    // Model weights beyond device capacity would page over the host
    // link; none of the Fig. 21 configs hit that (FP8 halves the
    // 140 GB to 70 GB on the 80 GB baseline).
    const RooflineEngine eng(m);
    const auto rep = eng.run(llmInference(cfg));
    return rep.total_s;
}

/** One single-device latency configuration. */
void
latencyCase(const MachineModel &machine, const SoftwareStack &stack,
            const std::string &label, bench::RowSink &sink)
{
    sink.row("latency", label, inferenceLatency(machine, stack) * 1e3,
             "ms");
}

/**
 * Tensor parallelism over @p tp sockets of the octo node. Compute
 * shards ~1/tp; each layer pays two all-reduces of the activations,
 * simulated on the IF fabric through the comm engine.
 */
void
tensorParallelCase(unsigned tp, bench::RowSink &sink)
{
    const double t_one = inferenceLatency(mi300xModel(), vllmMi300x);
    const std::string x = "tp" + std::to_string(tp);

    double comm_exposed_s = 0;
    double algbw_gbps = 0;
    if (tp > 1) {
        SimObject root(nullptr, "root");
        auto topo = soc::NodeTopology::mi300xOctoNode(&root);
        EventQueue eq;
        std::vector<fabric::NodeId> ranks;
        for (unsigned i = 0; i < tp; ++i)
            ranks.push_back(topo->nodeId(i));
        comm::CommParams params;
        params.chunk_bytes = 1 * MiB;
        comm::CommGroup group(topo.get(), "tp_comm", topo->network(),
                              std::move(ranks), &eq, params);

        // Prefill: activations are seq x hidden, fp16.
        const std::uint64_t prefill_bytes =
            std::uint64_t(llamaInputTokens) * llamaHidden * 2;
        // Decode: one token's activations per step.
        const std::uint64_t decode_bytes = llamaHidden * 2;

        const auto pre = group.allReduce(0, prefill_bytes);
        group.waitAll();
        // Measure the decode all-reduce after the prefill traffic
        // has fully drained off the links.
        const auto dec =
            group.allReduce(pre->finishTick(), decode_bytes);
        group.waitAll();

        const unsigned per_pass = llamaLayers * allReducesPerLayer;
        const double prefill_comm_s = pre->seconds() * per_pass;
        const double decode_comm_s =
            dec->seconds() * per_pass * llamaOutputTokens;
        // The big prefill all-reduces pipeline behind the next
        // layer's GEMMs; the tiny decode ones are latency-bound and
        // fully exposed.
        comm_exposed_s = (1.0 - prefillOverlap) * prefill_comm_s +
                         decode_comm_s;
        algbw_gbps = pre->algoBandwidth() / 1e9;
    }

    const double latency_s = t_one / tp + comm_exposed_s;
    sink.row("tp_latency", x, latency_s * 1e3, "ms");
    sink.row("tp_comm_exposed", x, comm_exposed_s * 1e3, "ms");
    sink.row("tp_comm_fraction", x, comm_exposed_s / latency_s,
             "fraction");
    if (tp > 1)
        sink.row("tp_allreduce_algbw", x, algbw_gbps, "GB/s");
}

void
report(const bench::SweepArgs &args)
{
    bench::printHeader(
        "fig21", "Llama-2 70B inference latency (batch 1, "
                 "2048 in / 128 out)");

    std::vector<bench::SweepCase> cases;
    cases.push_back({"mi300x_vllm_fp16", [](bench::RowSink &s) {
        latencyCase(mi300xModel(), vllmMi300x, "mi300x_vllm_fp16", s);
    }});
    cases.push_back({"baseline_vllm_fp16", [](bench::RowSink &s) {
        latencyCase(baselineGpuModel(), vllmBase,
                    "baseline_vllm_fp16", s);
    }});
    cases.push_back({"baseline_trtllm_fp16", [](bench::RowSink &s) {
        latencyCase(baselineGpuModel(), trtBase,
                    "baseline_trtllm_fp16", s);
    }});
    cases.push_back({"baseline_trtllm_fp8", [](bench::RowSink &s) {
        latencyCase(baselineGpuModel(), trtFp8Base,
                    "baseline_trtllm_fp8", s);
    }});
    for (const unsigned tp : {1u, 2u, 4u, 8u}) {
        cases.push_back({"tensor_parallel_tp" + std::to_string(tp),
                         [tp](bench::RowSink &s) {
                             tensorParallelCase(tp, s);
                         }});
    }

    const auto outcomes = bench::runCases("fig21", cases, args);

    const double t_mi300x =
        bench::findRow(outcomes, "latency", "mi300x_vllm_fp16");
    const double t_base_vllm =
        bench::findRow(outcomes, "latency", "baseline_vllm_fp16");
    const double t_base_trt =
        bench::findRow(outcomes, "latency", "baseline_trtllm_fp16");
    const double t_base_fp8 =
        bench::findRow(outcomes, "latency", "baseline_trtllm_fp8");

    const double vs_vllm = t_base_vllm / t_mi300x;
    const double vs_trt = t_base_trt / t_mi300x;
    const double vs_fp8 = t_base_fp8 / t_mi300x;
    bench::printRow("fig21", "speedup", "vs_baseline_vllm", vs_vllm,
                    "x");
    bench::printRow("fig21", "speedup", "vs_baseline_trtllm",
                    vs_trt, "x");
    bench::printRow("fig21", "speedup", "vs_baseline_trtllm_fp8",
                    vs_fp8, "x");

    // Capacity side of the story: FP16 weights fit MI300X only.
    const auto mi300x = mi300xModel();
    const auto baseline = baselineGpuModel();
    bench::printRow("fig21", "capacity", "weights_fp16_GB", 140.0,
                    "GB");
    bench::printRow("fig21", "capacity", "mi300x_GB",
                    static_cast<double>(mi300x.mem_capacity) / 1e9,
                    "GB");
    bench::printRow("fig21", "capacity", "baseline_GB",
                    static_cast<double>(baseline.mem_capacity) / 1e9,
                    "GB");

    const double tp1 = bench::findRow(outcomes, "tp_latency", "tp1");
    const double tp8 = bench::findRow(outcomes, "tp_latency", "tp8");
    const double frac2 =
        bench::findRow(outcomes, "tp_comm_fraction", "tp2");
    const double frac8 =
        bench::findRow(outcomes, "tp_comm_fraction", "tp8");
    // Sharding helps, but the all-reduces keep it sublinear and
    // communication's share of the latency grows with TP degree.
    const bool tp_ok = tp8 < tp1 && tp1 / tp8 < 8.0 &&
                       frac8 > frac2 && frac2 > 0.0;

    const bool pass = vs_vllm > 2.0 &&
                      vs_trt > 1.15 && vs_trt < 1.7 &&
                      vs_fp8 > 1.0 &&
                      140e9 > static_cast<double>(
                                  baseline.mem_capacity) &&
                      140e9 < static_cast<double>(
                                  mi300x.mem_capacity) &&
                      tp_ok;
    bench::shapeCheck(
        "fig21", pass,
        ">2x vs baseline vLLM, ~1.3x vs TensorRT-LLM, and still "
        "ahead in absolute latency when the baseline drops to FP8 "
        "(vLLM has no FP8 path); FP16 weights only fit MI300X; TP "
        "over the octo node speeds inference sublinearly with a "
        "growing all-reduce share");
}

void
BM_LlmRoofline(benchmark::State &state)
{
    const RooflineEngine eng(mi300xModel());
    LlmConfig cfg;
    const auto w = llmInference(cfg);
    for (auto _ : state) {
        auto rep = eng.run(w);
        benchmark::DoNotOptimize(rep.total_s);
    }
}
BENCHMARK(BM_LlmRoofline);

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto sweep_args = bench::parseSweepArgs(argc, argv);
    report(sweep_args);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
