/**
 * @file
 * Reproduces paper Fig. 21: Llama-2 70B inference latency (median),
 * batch 1, 2048 input tokens, 128 output tokens:
 *   1. MI300X+vLLM vs baseline GPU+vLLM          (paper: >2x)
 *   2. MI300X+vLLM vs baseline GPU+TensorRT-LLM  (paper: ~1.3x)
 *   3. MI300X+vLLM FP16 vs baseline+TRT-LLM FP8  (paper: MI300X
 *      still ahead on absolute latency)
 *
 * Software stacks are modeled as sustained-efficiency factors on
 * the roofline (documented below); the hardware story — 192 GB @
 * 5.3 TB/s vs 80 GB @ 3.35 TB/s — comes from the machine models.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

/**
 * Sustained fraction of peak (math and bandwidth) per software
 * stack. vLLM's kernels are well tuned for MI300X (AMD's launch
 * stack) but generic on the baseline; TensorRT-LLM is the
 * vendor-optimized stack for the baseline GPU; its FP8 path trades
 * some efficiency for the halved footprint.
 */
struct Stack
{
    const char *name;
    double efficiency;
    gpu::DataType dtype;
};

double
inferenceLatency(const MachineModel &machine, const Stack &stack)
{
    LlmConfig cfg;
    cfg.dtype = stack.dtype;

    MachineModel m = machine;
    m.gpu_efficiency = stack.efficiency;
    m.mem_efficiency = stack.efficiency;
    // Model weights beyond device capacity would page over the host
    // link; none of the Fig. 21 configs hit that (FP8 halves the
    // 140 GB to 70 GB on the 80 GB baseline).
    const RooflineEngine eng(m);
    const auto rep = eng.run(llmInference(cfg));
    return rep.total_s;
}

void
report()
{
    bench::printHeader(
        "fig21", "Llama-2 70B inference latency (batch 1, "
                 "2048 in / 128 out)");

    // Efficiencies: vLLM was AMD's launch stack on MI300X (well
    // tuned there, generic on the baseline); TensorRT-LLM is the
    // baseline vendor's heavily optimized stack; its FP8 path gives
    // up sustained efficiency for the halved footprint (quantize /
    // dequantize epilogues, less mature kernels).
    const Stack vllm_mi300x = {"vLLM", 0.70, gpu::DataType::fp16};
    const Stack vllm_base = {"vLLM", 0.40, gpu::DataType::fp16};
    const Stack trt_base = {"TensorRT-LLM", 0.80,
                            gpu::DataType::fp16};
    const Stack trt_fp8_base = {"TensorRT-LLM-FP8", 0.45,
                                gpu::DataType::fp8};

    const auto mi300x = mi300xModel();
    const auto baseline = baselineGpuModel();

    const double t_mi300x = inferenceLatency(mi300x, vllm_mi300x);
    const double t_base_vllm = inferenceLatency(baseline, vllm_base);
    const double t_base_trt = inferenceLatency(baseline, trt_base);
    const double t_base_fp8 =
        inferenceLatency(baseline, trt_fp8_base);

    bench::printRow("fig21", "latency", "mi300x_vllm_fp16",
                    t_mi300x * 1e3, "ms");
    bench::printRow("fig21", "latency", "baseline_vllm_fp16",
                    t_base_vllm * 1e3, "ms");
    bench::printRow("fig21", "latency", "baseline_trtllm_fp16",
                    t_base_trt * 1e3, "ms");
    bench::printRow("fig21", "latency", "baseline_trtllm_fp8",
                    t_base_fp8 * 1e3, "ms");

    const double vs_vllm = t_base_vllm / t_mi300x;
    const double vs_trt = t_base_trt / t_mi300x;
    const double vs_fp8 = t_base_fp8 / t_mi300x;
    bench::printRow("fig21", "speedup", "vs_baseline_vllm", vs_vllm,
                    "x");
    bench::printRow("fig21", "speedup", "vs_baseline_trtllm",
                    vs_trt, "x");
    bench::printRow("fig21", "speedup", "vs_baseline_trtllm_fp8",
                    vs_fp8, "x");

    // Capacity side of the story: FP16 weights fit MI300X only.
    bench::printRow("fig21", "capacity", "weights_fp16_GB", 140.0,
                    "GB");
    bench::printRow("fig21", "capacity", "mi300x_GB",
                    static_cast<double>(mi300x.mem_capacity) / 1e9,
                    "GB");
    bench::printRow("fig21", "capacity", "baseline_GB",
                    static_cast<double>(baseline.mem_capacity) / 1e9,
                    "GB");

    const bool pass = vs_vllm > 2.0 &&
                      vs_trt > 1.15 && vs_trt < 1.7 &&
                      vs_fp8 > 1.0 &&
                      140e9 > static_cast<double>(
                                  baseline.mem_capacity) &&
                      140e9 < static_cast<double>(
                                  mi300x.mem_capacity);
    bench::shapeCheck(
        "fig21", pass,
        ">2x vs baseline vLLM, ~1.3x vs TensorRT-LLM, and still "
        "ahead in absolute latency when the baseline drops to FP8 "
        "(vLLM has no FP8 path); FP16 weights only fit MI300X");
}

void
BM_LlmRoofline(benchmark::State &state)
{
    const RooflineEngine eng(mi300xModel());
    LlmConfig cfg;
    const auto w = llmInference(cfg);
    for (auto _ : state) {
        auto rep = eng.run(w);
        benchmark::DoNotOptimize(rep.total_s);
    }
}
BENCHMARK(BM_LlmRoofline);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
