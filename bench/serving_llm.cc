/**
 * @file
 * Cluster-scale LLM serving under load and faults (paper Sec. VII,
 * the Fig. 21 capacity story taken from batch-1 latency to a full
 * serving system).
 *
 * Every case replays a seeded open-loop arrival trace through the
 * src/serve engine: continuous batching, a paged KV cache sized by
 * device memory minus weights, and — for TP > 1 — real all-reduces
 * over the Fig. 18b octo node's IF links. Reported per case: TTFT
 * and TPOT p50/p95, tokens/s, SLO attainment, queue depth, KV
 * occupancy, and eviction counters.
 *
 * The headline shape: at an offered load where the 192 GB MI300X
 * still meets its SLOs with zero KV evictions, the 80 GB-class
 * baseline (serving FP8 to even fit the weights) runs out of KV
 * capacity — evictions, admission stalls, and collapsed SLO
 * attainment. A faulted TP-4 variant (chunk errors + a link kill +
 * HBM channel blackouts) degrades tail latency measurably but
 * completes every request.
 *
 * Sweep-shaped: each scenario is an independent SweepCase
 * (--jobs N, --json FILE).
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hh"
#include "fault/fault_plan.hh"
#include "serve/scenario.hh"

using namespace ehpsim;
using namespace ehpsim::serve;

namespace
{

constexpr std::uint64_t kSeed = 42;

/** Emit one scenario's summary metrics as rows keyed by @p label. */
void
servingCase(const ScenarioParams &p, const std::string &label,
            bench::RowSink &sink)
{
    const ScenarioResult r = runServingScenario(p);
    sink.row("ttft_p50", label, r.ttft_p50_s, "s");
    sink.row("ttft_p95", label, r.ttft_p95_s, "s");
    sink.row("tpot_p50", label, r.tpot_p50_s * 1e3, "ms");
    sink.row("tpot_p95", label, r.tpot_p95_s * 1e3, "ms");
    sink.row("tokens_per_s", label, r.tokens_per_s, "tokens/s");
    sink.row("slo_attainment", label, r.slo_attainment, "fraction");
    sink.row("mean_queue_depth", label, r.mean_queue_depth,
             "requests");
    sink.row("kv_peak_occupancy", label, r.kv_peak_occupancy,
             "fraction");
    sink.row("evictions", label, static_cast<double>(r.evictions),
             "sequences");
    sink.row("recompute_tokens", label,
             static_cast<double>(r.recompute_tokens), "tokens");
    sink.row("chunk_retries", label,
             static_cast<double>(r.chunk_retries), "retries");
    sink.row("channels_dark", label,
             static_cast<double>(r.channels_dark), "channels");
    sink.row("completed", label, static_cast<double>(r.completed),
             "requests");
}

/** The capacity sweep's shared request mix: RAG-style long prompts,
 *  so resident KV — not compute — is the binding resource. Each
 *  admission pins ~185 KV blocks of prompt context: the 80 GB
 *  baseline's ~4.4k-block pool seats only ~23 requests while the
 *  MI300X's ~10.7k blocks seat every one in flight. The 768-token
 *  iteration budget keeps prefill-full iterations short enough that
 *  concurrent decoders hold their TPOT SLO. */
ScenarioParams
capacityParams(const std::string &device, double load_rps)
{
    ScenarioParams p;
    p.device = device;
    p.tp = 1;
    p.load_rps = load_rps;
    p.num_requests = 48;
    p.input_tokens = 2944;
    p.output_tokens = 384;
    p.token_budget = 768;
    p.seed = kSeed;
    return p;
}

ScenarioParams
tpParams(unsigned tp)
{
    ScenarioParams p;
    p.tp = tp;
    p.load_rps = 2.0;
    p.num_requests = 24;
    p.input_tokens = 1024;
    p.output_tokens = 256;
    p.seed = kSeed;
    return p;
}

ScenarioParams
faultSweepParams(bool faulted)
{
    ScenarioParams p = tpParams(4);
    p.load_rps = 1.5;
    if (faulted) {
        p.faults.seed = kSeed;
        p.faults.chunk_error_rate = 0.02;
        p.faults.link_faults.push_back(
            fault::parseLinkFault("mi300x0:mi300x1@2000000000000"));
        p.faults.channel_faults.push_back(
            fault::ChannelFault{3, 3'000'000'000'000});
        p.faults.channel_faults.push_back(
            fault::ChannelFault{21, 3'000'000'000'000});
    }
    return p;
}

void
report(const bench::SweepArgs &args)
{
    bench::printHeader(
        "serving", "Llama-2 70B continuous-batching serving: "
                   "TTFT/TPOT vs offered load, capacity, TP, faults");

    std::vector<bench::SweepCase> cases;

    // Capacity story: 192 GB vs 80 GB under rising offered load.
    const std::vector<std::pair<const char *, double>> loads = {
        {"load0.15", 0.15}, {"load0.6", 0.6}, {"load1.2", 1.2}};
    for (const char *device : {"mi300x", "baseline"}) {
        for (const auto &[tag, rps] : loads) {
            const std::string label =
                std::string(device) + "_" + tag;
            const ScenarioParams p = capacityParams(device, rps);
            cases.push_back({label, [p, label](bench::RowSink &s) {
                                 servingCase(p, label, s);
                             }});
        }
    }

    // Tensor parallelism: decode all-reduces on the octo node.
    for (const unsigned tp : {2u, 4u, 8u}) {
        const std::string label = "mi300x_tp" + std::to_string(tp);
        const ScenarioParams p = tpParams(tp);
        cases.push_back({label, [p, label](bench::RowSink &s) {
                             servingCase(p, label, s);
                         }});
    }

    // Bursty (MMPP) arrivals vs the Poisson baseline at equal mean
    // load.
    {
        ScenarioParams p = capacityParams("mi300x", 1.5);
        p.bursty = true;
        cases.push_back({"mi300x_burst1.5",
                         [p](bench::RowSink &s) {
                             servingCase(p, "mi300x_burst1.5", s);
                         }});
    }

    // Fault-injected TP-4 serving vs its clean twin.
    for (const bool faulted : {false, true}) {
        const std::string label =
            faulted ? "mi300x_tp4_faults" : "mi300x_tp4_clean";
        const ScenarioParams p = faultSweepParams(faulted);
        cases.push_back({label, [p, label](bench::RowSink &s) {
                             servingCase(p, label, s);
                         }});
    }

    const auto outcomes = bench::runCases("serving", cases, args);

    const double mi_slo =
        bench::findRow(outcomes, "slo_attainment", "mi300x_load1.2");
    const double mi_evict =
        bench::findRow(outcomes, "evictions", "mi300x_load1.2", -1);
    const double base_slo = bench::findRow(
        outcomes, "slo_attainment", "baseline_load1.2", 1.0);
    const double base_evict =
        bench::findRow(outcomes, "evictions", "baseline_load1.2");
    const double base_light_slo = bench::findRow(
        outcomes, "slo_attainment", "baseline_load0.15");
    const double tp2_tput =
        bench::findRow(outcomes, "tokens_per_s", "mi300x_tp2");
    const double tp8_tput =
        bench::findRow(outcomes, "tokens_per_s", "mi300x_tp8");
    const double clean_p95 = bench::findRow(
        outcomes, "ttft_p95", "mi300x_tp4_clean", -1);
    const double fault_p95 =
        bench::findRow(outcomes, "ttft_p95", "mi300x_tp4_faults");
    const double fault_retries = bench::findRow(
        outcomes, "chunk_retries", "mi300x_tp4_faults");
    const double fault_dark = bench::findRow(
        outcomes, "channels_dark", "mi300x_tp4_faults");
    const double fault_done = bench::findRow(
        outcomes, "completed", "mi300x_tp4_faults");

    const bool capacity_ok =
        mi_slo > 0.9 && mi_evict == 0.0 && base_evict > 0.0 &&
        base_slo < 0.7 && base_light_slo > 0.9;
    const bool tp_ok = tp8_tput > tp2_tput;
    const bool fault_ok = fault_p95 > clean_p95 &&
                          fault_retries > 0.0 && fault_dark == 2.0 &&
                          fault_done == 24.0;

    bench::shapeCheck(
        "serving", capacity_ok && tp_ok && fault_ok,
        "at a load where 192 GB MI300X meets SLOs with zero KV "
        "evictions, the 80 GB baseline thrashes its KV cache and "
        "misses them (while fine at light load); TP raises "
        "throughput; injected faults stretch tail TTFT with nonzero "
        "retries and dark channels yet every request completes");
}

void
BM_ServingScenario(benchmark::State &state)
{
    for (auto _ : state) {
        ScenarioParams p;
        p.num_requests = 4;
        p.input_tokens = 128;
        p.output_tokens = 16;
        p.load_rps = 4.0;
        const auto r = runServingScenario(p);
        benchmark::DoNotOptimize(r.completed);
    }
}
BENCHMARK(BM_ServingScenario);

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto sweep_args = bench::parseSweepArgs(argc, argv);
    report(sweep_args);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
