/**
 * @file
 * Reproduces paper Fig. 17: compute and memory partitioning modes.
 * MI300A runs as one device or three partitions (NPS1 only);
 * MI300X partitions in powers of two down to one XCD each and also
 * supports NPS4. Measures multi-tenant throughput (independent
 * kernels per partition) against a single shared partition.
 *
 * Sweep-shaped: the mode table, each tenant-count spatial/timeshared
 * measurement, and the NPS4 confinement check are independent
 * SweepCases (--jobs N, --json FILE).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/apu_system.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;

namespace
{

workloads::Workload
tenantKernel()
{
    auto w = workloads::streamTriad(1 << 17);   // 1 MiB arrays
    w.phases[0].grid_workgroups = 128;
    return w;
}

/** Supported partition-mode tables for both products. */
void
modesCase(bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    soc::Package a(&root, "a", soc::mi300aConfig());
    soc::Package x(&root, "x", soc::mi300xConfig());
    for (unsigned n : a.supportedPartitionCounts())
        sink.row("mi300a_modes", std::to_string(n), n, "partitions");
    for (unsigned n : x.supportedPartitionCounts())
        sink.row("mi300x_modes", std::to_string(n), n, "partitions");
    const bool ok =
        a.supportedPartitionCounts() == std::vector<unsigned>({1, 3}) &&
        x.supportedPartitionCounts() ==
            std::vector<unsigned>({1, 2, 4, 8});
    sink.row("mode_table_ok", "both", ok ? 1 : 0, "bool");
}

/**
 * Multi-tenant throughput on MI300X: n tenants each running the
 * same kernel, spatially isolated on n partitions (each tenant's
 * memory in its own NUMA quadrant under NPS4, the SR-IOV deployment
 * of Fig. 17b).
 */
void
spatialCase(unsigned n, bench::RowSink &sink)
{
    ApuSystem spatial(soc::mi300xConfig(), mem::NumaMode::nps4);
    auto parts = spatial.package().partitionInto(n);
    const std::uint64_t domain_bytes =
        spatial.package().memCapacity() / 4;
    Tick done = 0;
    Tick first_done = 0;
    for (unsigned t = 0; t < n; ++t) {
        auto w = tenantKernel();
        hsa::AqlPacket pkt;
        pkt.grid_workgroups = w.phases[0].grid_workgroups;
        pkt.work.flops = w.phases[0].gpu_flops / pkt.grid_workgroups;
        pkt.work.dtype = w.phases[0].dtype;
        pkt.work.bytes_read =
            w.phases[0].gpu_bytes_read / pkt.grid_workgroups;
        pkt.work.bytes_written =
            w.phases[0].gpu_bytes_written / pkt.grid_workgroups;
        pkt.read_stride = pkt.work.bytes_read;
        pkt.write_stride = pkt.work.bytes_written;
        // Tenant buffers live in the tenant's NUMA quadrant.
        const Addr base = Addr(t % 4) * domain_bytes +
                          Addr(t / 4) * (256u << 20);
        pkt.work.read_base = base;
        pkt.work.write_base = base + (128u << 20);
        const auto res = parts[t]->dispatch(0, pkt);
        if (t == 0)
            first_done = res.complete;
        done = std::max(done, res.complete);
    }
    sink.row("spatial_n_tenants", std::to_string(n),
             secondsFromTicks(done) * 1e6, "us");
    if (n == 8) {
        sink.row("single_tenant_one_xcd", "8",
                 secondsFromTicks(first_done) * 1e6, "us");
    }
}

/** Time-shared baseline: n kernels serialized on one partition. */
void
timesharedCase(unsigned n, bench::RowSink &sink)
{
    ApuSystem shared(soc::mi300xConfig());
    double shared_s = 0;
    for (unsigned t = 0; t < n; ++t) {
        const auto rep = shared.run(tenantKernel());
        shared_s += rep.total_s;
    }
    sink.row("timeshared_n_tenants", std::to_string(n),
             shared_s * 1e6, "us");
}

/** NPS4 confines each quadrant's pages to its stack quadrant. */
void
nps4Case(bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    soc::Package pkg(&root, "nps4", soc::mi300xConfig(), nullptr,
                     mem::NumaMode::nps4);
    const auto &map = pkg.memMap();
    bool confined = true;
    const std::uint64_t domain = map.capacity() / 4;
    for (unsigned d = 0; d < 4 && confined; ++d) {
        for (Addr off = 0; off < (1u << 22); off += 4096) {
            const unsigned s = map.stackOf(d * domain + off);
            if (s / 2 != d) {
                confined = false;
                break;
            }
        }
    }
    sink.row("nps4_confinement", "ok", confined ? 1 : 0, "bool");
}

void
report(const bench::SweepArgs &args)
{
    bench::printHeader("fig17", "partitioning modes");

    std::vector<bench::SweepCase> cases;
    cases.push_back({"modes", modesCase});
    for (unsigned n : {2u, 4u, 8u}) {
        cases.push_back({"spatial_" + std::to_string(n),
                         [n](bench::RowSink &s) { spatialCase(n, s); }});
        cases.push_back(
            {"timeshared_" + std::to_string(n),
             [n](bench::RowSink &s) { timesharedCase(n, s); }});
    }
    cases.push_back({"nps4_confinement", nps4Case});

    const auto outcomes = bench::runCases("fig17", cases, args);

    bool pass =
        bench::findRow(outcomes, "mode_table_ok", "both") == 1 &&
        bench::findRow(outcomes, "nps4_confinement", "ok") == 1;
    // Spatial isolation means tenants run concurrently: the
    // eight-tenant completion must be close to a single tenant's
    // runtime on a one-XCD partition, not 8x it.
    const double spatial8 =
        bench::findRow(outcomes, "spatial_n_tenants", "8");
    const double single8 =
        bench::findRow(outcomes, "single_tenant_one_xcd", "8");
    if (spatial8 > 2.5 * single8)
        pass = false;

    bench::shapeCheck(
        "fig17", pass,
        "MI300A supports 1/3 partitions, MI300X 1/2/4/8 with NPS1/4; "
        "spatially isolated tenants run concurrently (8 tenants "
        "cost << 4x of 2), and NPS4 keeps domains on their stack "
        "quadrants");
}

void
BM_PartitionDispatch(benchmark::State &state)
{
    ApuSystem sys(soc::mi300xConfig());
    auto parts = sys.package().partitionInto(8);
    Tick t = 0;
    hsa::AqlPacket pkt;
    pkt.grid_workgroups = 38;
    pkt.work.flops = 256 * 1000;
    pkt.work.dtype = gpu::DataType::fp32;
    for (auto _ : state) {
        const auto res = parts[0]->dispatch(t, pkt);
        t = res.complete;
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_PartitionDispatch);

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto sweep_args = bench::parseSweepArgs(argc, argv);
    report(sweep_args);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
