/**
 * @file
 * Reproduces paper Fig. 18: scalable node topologies. (a) four
 * MI300A APUs fully connected with two x16 IF links per pair;
 * (b) eight MI300X accelerators fully connected with one x16 IF
 * link per pair plus PCIe host links. Reports p2p bandwidth and
 * latency, all-to-all exchange time, and bisection bandwidth.
 *
 * Sweep-shaped: each topology (and each all-to-all transfer size)
 * is an independent SweepCase (--jobs N, --json FILE).
 */

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "soc/node_topology.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

namespace
{

/** Fig. 18a: the quad-MI300A node. */
void
quadCase(bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto quad = NodeTopology::mi300aQuadNode(&root);
    const double p2p = quad->p2pBandwidth(0, 1);
    const Tick lat = quad->p2pLatency(0, 2);
    sink.row("p2p_bandwidth", "quad_pair", p2p / 1e9, "GB/s");
    sink.row("p2p_latency", "quad_pair",
             secondsFromTicks(lat) * 1e9, "ns");
    sink.row("bisection", "2v2", quad->bisectionBandwidth() / 1e9,
             "GB/s");
    sink.row("free_links_per_socket", "nic", quad->freeLinks(0),
             "x16");
    // Two x16 per pair = 128 GB/s per direction; 2 links spare.
    const bool ok =
        std::abs(p2p / 1e9 - 128.0) < 1.0 && quad->freeLinks(0) == 2;
    sink.row("quad_ok", "shape", ok ? 1 : 0, "bool");
}

/** Fig. 18b: the octo-MI300X node with PCIe host links. */
void
octoCase(bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto octo = NodeTopology::mi300xOctoNode(&root);
    const double p2p = octo->p2pBandwidth(2, 5);
    sink.row("p2p_bandwidth", "octo_pair", p2p / 1e9, "GB/s");
    sink.row("bisection", "4v4", octo->bisectionBandwidth() / 1e9,
             "GB/s");
    // Host reachability over PCIe.
    const double host_bw = octo->p2pBandwidth(0, 8);
    sink.row("host_link", "pcie", host_bw / 1e9, "GB/s");
    const bool ok = std::abs(p2p / 1e9 - 64.0) < 1.0 &&
                    octo->freeLinks(0) == 0 &&
                    std::abs(host_bw / 1e9 - 64.0) < 1.0;
    sink.row("octo_ok", "shape", ok ? 1 : 0, "bool");
}

/** All-to-all exchange time on one topology at one message size. */
void
allToAllCase(bool quad_node, std::uint64_t bytes,
             const std::string &label, bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto topo = quad_node ? NodeTopology::mi300aQuadNode(&root)
                          : NodeTopology::mi300xOctoNode(&root);
    const Tick a2a = topo->allToAll(0, bytes);
    sink.row(quad_node ? "all_to_all_quad" : "all_to_all_octo", label,
             secondsFromTicks(a2a) * 1e3, "ms");
}

void
report(const bench::SweepArgs &args)
{
    bench::printHeader("fig18", "MI300 node topologies");

    std::vector<bench::SweepCase> cases;
    cases.push_back({"quad_node", quadCase});
    cases.push_back({"octo_node", octoCase});
    cases.push_back({"a2a_quad_256MB", [](bench::RowSink &s) {
        allToAllCase(true, 256u << 20, "256MB", s);
    }});
    cases.push_back({"a2a_quad_64MB", [](bench::RowSink &s) {
        allToAllCase(true, 64u << 20, "64MB", s);
    }});
    cases.push_back({"a2a_octo_64MB", [](bench::RowSink &s) {
        allToAllCase(false, 64u << 20, "64MB", s);
    }});
    cases.push_back({"a2a_octo_16MB", [](bench::RowSink &s) {
        allToAllCase(false, 16u << 20, "16MB", s);
    }});

    const auto outcomes = bench::runCases("fig18", cases, args);

    const bool pass =
        bench::findRow(outcomes, "quad_ok", "shape") == 1 &&
        bench::findRow(outcomes, "octo_ok", "shape") == 1;

    bench::shapeCheck(
        "fig18", pass,
        "quad-APU node: 2x16 IF per pair (128 GB/s), 2 links spare "
        "per socket; octo-MI300X node: fully connected at 64 GB/s "
        "with the last link as PCIe to the host");
}

void
BM_AllToAll(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    auto quad = NodeTopology::mi300aQuadNode(&root);
    Tick t = 0;
    for (auto _ : state) {
        t = quad->allToAll(t, 1u << 20);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_AllToAll);

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto sweep_args = bench::parseSweepArgs(argc, argv);
    report(sweep_args);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
