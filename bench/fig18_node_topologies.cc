/**
 * @file
 * Reproduces paper Fig. 18: scalable node topologies. (a) four
 * MI300A APUs fully connected with two x16 IF links per pair;
 * (b) eight MI300X accelerators fully connected with one x16 IF
 * link per pair plus PCIe host links. Reports p2p bandwidth and
 * latency, all-to-all exchange time, and bisection bandwidth.
 *
 * Also runs RCCL-style collective microbenchmarks per topology:
 * all-reduce, all-gather, and broadcast through the comm engine
 * with the ring and direct algorithms, reporting achieved
 * algorithmic bandwidth and link busy fractions.
 *
 * Sweep-shaped: each topology, all-to-all transfer size, and
 * (collective, algorithm) pair is an independent SweepCase
 * (--jobs N, --json FILE).
 */

#include <cmath>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "comm/comm_group.hh"
#include "soc/node_topology.hh"

using namespace ehpsim;
using namespace ehpsim::comm;
using namespace ehpsim::soc;

namespace
{

/** Fig. 18a: the quad-MI300A node. */
void
quadCase(bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto quad = NodeTopology::mi300aQuadNode(&root);
    const double p2p = quad->p2pBandwidth(0, 1);
    const Tick lat = quad->p2pLatency(0, 2);
    sink.row("p2p_bandwidth", "quad_pair", p2p / 1e9, "GB/s");
    sink.row("p2p_latency", "quad_pair",
             secondsFromTicks(lat) * 1e9, "ns");
    sink.row("bisection", "2v2", quad->bisectionBandwidth() / 1e9,
             "GB/s");
    sink.row("free_links_per_socket", "nic", quad->freeLinks(0),
             "x16");
    // Two x16 per pair = 128 GB/s per direction; 2 links spare.
    const bool ok =
        std::abs(p2p / 1e9 - 128.0) < 1.0 && quad->freeLinks(0) == 2;
    sink.row("quad_ok", "shape", ok ? 1 : 0, "bool");
}

/** Fig. 18b: the octo-MI300X node with PCIe host links. */
void
octoCase(bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto octo = NodeTopology::mi300xOctoNode(&root);
    const double p2p = octo->p2pBandwidth(2, 5);
    sink.row("p2p_bandwidth", "octo_pair", p2p / 1e9, "GB/s");
    sink.row("bisection", "4v4", octo->bisectionBandwidth() / 1e9,
             "GB/s");
    // Host reachability over PCIe.
    const double host_bw = octo->p2pBandwidth(0, 8);
    sink.row("host_link", "pcie", host_bw / 1e9, "GB/s");
    const bool ok = std::abs(p2p / 1e9 - 64.0) < 1.0 &&
                    octo->freeLinks(0) == 0 &&
                    std::abs(host_bw / 1e9 - 64.0) < 1.0;
    sink.row("octo_ok", "shape", ok ? 1 : 0, "bool");
}

/** All-to-all exchange time on one topology at one message size. */
void
allToAllCase(bool quad_node, std::uint64_t bytes,
             const std::string &label, bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto topo = quad_node ? NodeTopology::mi300aQuadNode(&root)
                          : NodeTopology::mi300xOctoNode(&root);
    const Tick a2a = topo->allToAll(0, bytes);
    sink.row(quad_node ? "all_to_all_quad" : "all_to_all_octo", label,
             secondsFromTicks(a2a) * 1e3, "ms");
}

/**
 * One collective microbenchmark: @p coll with @p algo over all the
 * devices of one topology, reporting algbw and link busy fraction.
 */
void
collectiveCase(bool quad_node, Collective coll, Algorithm algo,
               std::uint64_t bytes, bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto topo = quad_node ? NodeTopology::mi300aQuadNode(&root)
                          : NodeTopology::mi300xOctoNode(&root);
    EventQueue eq;
    CommParams params;
    params.chunk_bytes = 1 * MiB;
    CommGroup group(topo.get(), "comm", topo->network(),
                    topo->deviceRanks(), &eq, params);

    OpHandle op;
    switch (coll) {
      case Collective::allReduce:
        op = group.allReduce(0, bytes, algo);
        break;
      case Collective::allGather:
        op = group.allGather(0, bytes, algo);
        break;
      case Collective::broadcast:
        op = group.broadcast(0, 0, bytes, algo);
        break;
      default:
        op = group.allToAll(0, bytes, algo);
        break;
    }
    group.waitAll();

    const std::string series = std::string(collectiveName(coll)) +
                               (quad_node ? "_quad" : "_octo");
    const std::string x = algorithmName(op->algorithm());
    sink.row(series, x, op->algoBandwidth() / 1e9, "GB/s");
    sink.row(series + "_busy", x, group.maxLinkUtilization(),
             "fraction");
}

void
report(const bench::SweepArgs &args)
{
    bench::printHeader("fig18", "MI300 node topologies");

    std::vector<bench::SweepCase> cases;
    cases.push_back({"quad_node", quadCase});
    cases.push_back({"octo_node", octoCase});
    // Collective microbenchmarks: 64 MiB per rank, both algorithms
    // on both topologies.
    for (const bool quad : {true, false}) {
        for (const Collective coll :
             {Collective::allReduce, Collective::allGather,
              Collective::broadcast}) {
            for (const Algorithm algo :
                 {Algorithm::ring, Algorithm::direct}) {
                const std::string name =
                    std::string("coll_") +
                    (quad ? "quad_" : "octo_") +
                    collectiveName(coll) + "_" +
                    algorithmName(algo);
                cases.push_back(
                    {name, [quad, coll, algo](bench::RowSink &s) {
                         collectiveCase(quad, coll, algo, 64 * MiB,
                                        s);
                     }});
            }
        }
    }
    cases.push_back({"a2a_quad_256MB", [](bench::RowSink &s) {
        allToAllCase(true, 256u << 20, "256MB", s);
    }});
    cases.push_back({"a2a_quad_64MB", [](bench::RowSink &s) {
        allToAllCase(true, 64u << 20, "64MB", s);
    }});
    cases.push_back({"a2a_octo_64MB", [](bench::RowSink &s) {
        allToAllCase(false, 64u << 20, "64MB", s);
    }});
    cases.push_back({"a2a_octo_16MB", [](bench::RowSink &s) {
        allToAllCase(false, 16u << 20, "16MB", s);
    }});

    const auto outcomes = bench::runCases("fig18", cases, args);

    // Analytic all-reduce bounds on the quad node (128 GB/s pair
    // links): ring <= bw*N/(2(N-1)), direct <= bw*N/2.
    const double ring_bw =
        bench::findRow(outcomes, "all_reduce_quad", "ring");
    const double direct_bw =
        bench::findRow(outcomes, "all_reduce_quad", "direct");
    const bool coll_ok = ring_bw > 0.7 * 128.0 * 4 / 6 &&
                         ring_bw < 1.02 * 128.0 * 4 / 6 &&
                         direct_bw > 2.0 * ring_bw;

    const bool pass =
        bench::findRow(outcomes, "quad_ok", "shape") == 1 &&
        bench::findRow(outcomes, "octo_ok", "shape") == 1 && coll_ok;

    bench::shapeCheck(
        "fig18", pass,
        "quad-APU node: 2x16 IF per pair (128 GB/s), 2 links spare "
        "per socket; octo-MI300X node: fully connected at 64 GB/s "
        "with the last link as PCIe to the host; all-reduce tracks "
        "the ring bound and direct wins on the dedicated links");
}

void
BM_AllToAll(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    auto quad = NodeTopology::mi300aQuadNode(&root);
    Tick t = 0;
    for (auto _ : state) {
        t = quad->allToAll(t, 1u << 20);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_AllToAll);

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto sweep_args = bench::parseSweepArgs(argc, argv);
    report(sweep_args);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
