/**
 * @file
 * Reproduces paper Fig. 18: scalable node topologies. (a) four
 * MI300A APUs fully connected with two x16 IF links per pair;
 * (b) eight MI300X accelerators fully connected with one x16 IF
 * link per pair plus PCIe host links. Reports p2p bandwidth and
 * latency, all-to-all exchange time, and bisection bandwidth.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "soc/node_topology.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

namespace
{

void
report()
{
    bench::printHeader("fig18", "MI300 node topologies");
    SimObject root(nullptr, "root");

    bool pass = true;
    {
        auto quad = NodeTopology::mi300aQuadNode(&root);
        const double p2p = quad->p2pBandwidth(0, 1);
        const Tick lat = quad->p2pLatency(0, 2);
        bench::printRow("fig18a", "p2p_bandwidth", "pair",
                        p2p / 1e9, "GB/s");
        bench::printRow("fig18a", "p2p_latency", "pair",
                        secondsFromTicks(lat) * 1e9, "ns");
        bench::printRow("fig18a", "bisection",
                        "2v2", quad->bisectionBandwidth() / 1e9,
                        "GB/s");
        bench::printRow("fig18a", "free_links_per_socket", "nic",
                        quad->freeLinks(0), "x16");
        const Tick a2a = quad->allToAll(0, 256u << 20);
        bench::printRow("fig18a", "all_to_all_256MB", "quad",
                        secondsFromTicks(a2a) * 1e3, "ms");
        // Two x16 per pair = 128 GB/s per direction; 2 links spare.
        pass = pass && std::abs(p2p / 1e9 - 128.0) < 1.0 &&
               quad->freeLinks(0) == 2;
    }

    {
        auto octo = NodeTopology::mi300xOctoNode(&root);
        const double p2p = octo->p2pBandwidth(2, 5);
        bench::printRow("fig18b", "p2p_bandwidth", "pair",
                        p2p / 1e9, "GB/s");
        bench::printRow("fig18b", "bisection", "4v4",
                        octo->bisectionBandwidth() / 1e9, "GB/s");
        const Tick a2a = octo->allToAll(0, 64u << 20);
        bench::printRow("fig18b", "all_to_all_64MB", "octo",
                        secondsFromTicks(a2a) * 1e3, "ms");
        // Host reachability over PCIe.
        const double host_bw = octo->p2pBandwidth(0, 8);
        bench::printRow("fig18b", "host_link", "pcie",
                        host_bw / 1e9, "GB/s");
        pass = pass && std::abs(p2p / 1e9 - 64.0) < 1.0 &&
               octo->freeLinks(0) == 0 &&
               std::abs(host_bw / 1e9 - 64.0) < 1.0;
    }

    bench::shapeCheck(
        "fig18", pass,
        "quad-APU node: 2x16 IF per pair (128 GB/s), 2 links spare "
        "per socket; octo-MI300X node: fully connected at 64 GB/s "
        "with the last link as PCIe to the host");
}

void
BM_AllToAll(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    auto quad = NodeTopology::mi300aQuadNode(&root);
    Tick t = 0;
    for (auto _ : state) {
        t = quad->allToAll(t, 1u << 20);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_AllToAll);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
