/**
 * @file
 * Reproduces paper Table 1: peak operations-per-clock-per-CU for
 * CDNA 2 (MI250X) versus CDNA 3 (MI300A), vector and Matrix Core
 * pipes, including FP8 and 4:2 sparsity.
 *
 * The modeled rate is *measured* by timing a compute-bound
 * workgroup on a simulated CU and converting back to ops/clk, so
 * this checks the executable model, not just the table constants.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "gpu/compute_unit.hh"

using namespace ehpsim;
using namespace ehpsim::gpu;

namespace
{

class FlatMemory : public mem::MemDevice
{
  public:
    explicit FlatMemory(SimObject *parent)
        : mem::MemDevice(parent, "flat")
    {}

    mem::AccessResult
    access(Tick when, Addr, std::uint64_t, bool) override
    {
        return {when + 1000, true, 0};
    }
};

/** Measure achieved ops/clk/CU for one pipe/type on a CU model. */
double
measuredOpsPerClock(CdnaGen gen, Pipe pipe, DataType dt, bool sparse)
{
    const std::uint64_t rate = opsPerClockPerCu(gen, pipe, dt, sparse);
    if (rate == 0)
        return 0.0;
    SimObject root(nullptr, "root");
    FlatMemory memory(&root);
    const CuParams params =
        gen == CdnaGen::cdna3 ? cdna3CuParams() : cdna2CuParams();
    ComputeUnit cu(&root, "cu", params, &memory, nullptr);

    WorkgroupWork work;
    work.flops = rate * 100000;     // 100k cycles of math
    work.dtype = dt;
    work.pipe = pipe;
    work.sparse = sparse;
    work.inst_bytes = 0;
    const Tick done = cu.runWorkgroup(0, work);
    const double cycles =
        static_cast<double>(done) /
        static_cast<double>(periodFromGHz(params.clock_ghz));
    return static_cast<double>(work.flops) / cycles;
}

struct Row
{
    const char *name;
    Pipe pipe;
    DataType dt;
    bool sparse;
    double paper_cdna2;
    double paper_cdna3;
};

const Row rows[] = {
    {"vector FP64", Pipe::vector, DataType::fp64, false, 128, 128},
    {"vector FP32", Pipe::vector, DataType::fp32, false, 128, 256},
    {"matrix FP64", Pipe::matrix, DataType::fp64, false, 256, 256},
    {"matrix FP32", Pipe::matrix, DataType::fp32, false, 256, 256},
    {"matrix TF32", Pipe::matrix, DataType::tf32, false, 0, 1024},
    {"matrix FP16", Pipe::matrix, DataType::fp16, false, 1024, 2048},
    {"matrix BF16", Pipe::matrix, DataType::bf16, false, 1024, 2048},
    {"matrix FP8", Pipe::matrix, DataType::fp8, false, 0, 4096},
    {"matrix INT8", Pipe::matrix, DataType::int8, false, 1024, 4096},
    {"matrix FP8 4:2", Pipe::matrix, DataType::fp8, true, 0, 8192},
    {"matrix INT8 4:2", Pipe::matrix, DataType::int8, true, 1024,
     8192},
};

void
report()
{
    bench::printHeader("table1",
                       "peak ops/clock/CU, CDNA2 vs CDNA3");
    bool pass = true;
    for (const auto &r : rows) {
        const double c2 =
            measuredOpsPerClock(CdnaGen::cdna2, r.pipe, r.dt,
                                r.sparse);
        const double c3 =
            measuredOpsPerClock(CdnaGen::cdna3, r.pipe, r.dt,
                                r.sparse);
        bench::printRow("table1", "CDNA2", r.name, c2, "ops/clk/CU");
        bench::printRow("table1", "CDNA3", r.name, c3, "ops/clk/CU");
        if (c2 < r.paper_cdna2 * 0.95 || c2 > r.paper_cdna2 * 1.0001)
            pass = false;
        if (c3 < r.paper_cdna3 * 0.95 || c3 > r.paper_cdna3 * 1.0001)
            pass = false;
    }
    bench::shapeCheck("table1", pass,
                      "measured CU rates match Table 1 within 5%; "
                      "FP8/TF32 absent on CDNA2; 4:2 sparsity "
                      "doubles FP8/INT8 to 8192");
}

void
BM_MatrixWorkgroup(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root);
    ComputeUnit cu(&root, "cu", cdna3CuParams(), &memory, nullptr);
    WorkgroupWork work;
    work.flops = 2048 * 1024;
    work.dtype = DataType::fp16;
    work.pipe = Pipe::matrix;
    work.inst_bytes = 0;
    Tick t = 0;
    for (auto _ : state) {
        t = cu.runWorkgroup(t, work);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_MatrixWorkgroup);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
