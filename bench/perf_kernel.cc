/**
 * @file
 * Event-kernel performance microbenchmark (the repo's tracked perf
 * baseline, DESIGN.md §11).
 *
 * Every figure-level sweep funnels through EventQueue, so kernel
 * throughput bounds how large a sweep the repo can run. This bench
 * measures the kernel hot paths directly and emits BENCH_kernel.json:
 *
 *   schedule_churn   schedule/deschedule/reschedule mix over a pool
 *                    of persistent events (the deschedule-heavy
 *                    pattern retry/timeout logic produces)
 *   oneshot_storm    chains of one-shot callback events through the
 *                    std::function compat path (scheduleLambda)
 *   oneshot_storm_pooled  the same chains through the
 *                    scheduleCallback() pool fast path
 *   comm_allreduce   ring + direct all-reduce on the Fig. 18 octo
 *                    MI300X node, driven through CommGroup
 *   comm_allreduce_octo_pdes  the same workload on the conservative
 *                    PDES core (8 partitions, DESIGN.md §15) — the
 *                    deterministic counters must equal the serial
 *                    bench's
 *   fault_storm      all-reduce under a transient chunk-error rate
 *                    plus mid-flight link derates (retry/backoff)
 *   checkpoint_fork  the sweep fast-forward cycle (DESIGN.md §16):
 *                    warm one world with ring all-reduces, save it,
 *                    then fork eight sweep points by restoring the
 *                    blob into fresh worlds — the per-point cost a
 *                    forked sweep pays instead of re-simulating the
 *                    shared warmup prefix
 *
 * JSON contract: everything under a benchmark's "deterministic" key
 * is byte-identical run-to-run (same build, any host); everything
 * host-dependent (WallTimer readings and rates derived from them)
 * lives under "wall" and is excluded from determinism checks, per
 * the sim/wall_timer.hh contract. perf_kernel_test asserts this.
 *
 * Flags: --quick (CI-sized inputs), --json FILE, --repeat N (take
 * the best wall time of N runs; deterministic fields are identical
 * across runs by construction).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "comm/comm_group.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/pdes/pdes_engine.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "sim/units.hh"
#include "sim/wall_timer.hh"
#include "soc/node_topology.hh"

using namespace ehpsim;

namespace
{

struct BenchResult
{
    std::string name;
    /** Deterministic payload: (key, integer value) pairs. */
    std::vector<std::pair<std::string, std::uint64_t>> det;
    double best_seconds = 0;
    /** Events fired per wall second (processed / best_seconds). */
    double events_per_sec = 0;
    /** All kernel ops (schedule+deschedule+reschedule+fire) per s. */
    double ops_per_sec = 0;
};

struct Sizes
{
    // schedule_churn
    std::size_t churn_events;
    unsigned churn_rounds;
    // oneshot_storm
    std::size_t storm_chains;
    std::uint64_t storm_depth;
    // comm / fault
    std::uint64_t comm_bytes;
    unsigned comm_iters;
    std::uint64_t fault_bytes;
};

Sizes
sizesFor(bool quick)
{
    if (quick)
        return {2'000, 20, 64, 1'000, 16 * MiB, 1, 16 * MiB};
    return {20'000, 100, 256, 5'000, 64 * MiB, 4, 64 * MiB};
}

class CountingEvent : public Event
{
  public:
    explicit CountingEvent(std::uint64_t *fired) : fired_(fired) {}

    void process() override { ++*fired_; }

  private:
    std::uint64_t *fired_;
};

/**
 * The deschedule-heavy pattern: every round schedules the whole
 * population, reschedules all of it once (retry/timeout idiom),
 * deschedules a quarter (cancelled timeouts), then drains. On the
 * tombstone kernel each reschedule/deschedule grows dead_seqs_ and
 * leaves a stale heap entry to skip; the indexed heap removes in
 * place.
 */
BenchResult
benchScheduleChurn(const Sizes &sz, unsigned repeat)
{
    BenchResult r;
    r.name = "schedule_churn";
    double best = -1;
    std::uint64_t fired = 0, ops = 0, final_tick = 0;
    std::uint64_t processed = 0, peak_live = 0, heap_capacity = 0;
    for (unsigned rep = 0; rep < repeat; ++rep) {
        fired = ops = 0;
        EventQueue eq;
        std::vector<CountingEvent> events(sz.churn_events,
                                          CountingEvent(&fired));
        Rng rng(12345);
        WallTimer wt;
        for (unsigned round = 0; round < sz.churn_rounds; ++round) {
            const Tick base = eq.curTick() + 1;
            for (auto &ev : events) {
                eq.schedule(&ev, base + rng.nextBounded(1024));
                ++ops;
            }
            for (auto &ev : events) {
                eq.reschedule(&ev, base + rng.nextBounded(1024));
                ++ops;
            }
            for (std::size_t i = 0; i < events.size(); i += 4) {
                eq.deschedule(&events[i]);
                ++ops;
            }
            eq.run();
            ops += fired;
        }
        final_tick = eq.curTick();
        processed = eq.numProcessed();
        peak_live = eq.peakLive();
        heap_capacity = eq.capacity();
        const double s = wt.seconds();
        if (best < 0 || s < best)
            best = s;
    }
    r.det = {{"events_fired", fired},
             {"events_processed", processed},
             {"kernel_ops", ops},
             {"final_tick", final_tick},
             {"peak_live", peak_live},
             {"heap_capacity", heap_capacity}};
    r.best_seconds = best;
    r.events_per_sec = static_cast<double>(processed) / best;
    r.ops_per_sec = static_cast<double>(ops) / best;
    return r;
}

/** Forward decl so the chain lambda can re-arm itself. */
void hop(EventQueue &eq, std::vector<std::uint64_t> &left,
         std::size_t i);

void
hop(EventQueue &eq, std::vector<std::uint64_t> &left, std::size_t i)
{
    // Intentionally the std::function compat path, so baseline and
    // pooled kernels run the same call site.
    // ehpsim-lint: allow(event-alloc)
    eq.scheduleLambda(eq.curTick() + 1 + (i % 7), [&eq, &left, i] {
        if (--left[i] > 0)
            hop(eq, left, i);
    });
}

/**
 * Independent chains of one-shot callbacks, each event scheduling
 * its successor: steady-state one-shot allocation, the pattern of
 * every chunk-completion and fault event in the tree.
 */
BenchResult
benchOneshotStorm(const Sizes &sz, unsigned repeat)
{
    BenchResult r;
    r.name = "oneshot_storm";
    double best = -1;
    std::uint64_t processed = 0, final_tick = 0, pool_capacity = 0;
    for (unsigned rep = 0; rep < repeat; ++rep) {
        EventQueue eq;
        std::vector<std::uint64_t> left(sz.storm_chains,
                                        sz.storm_depth);
        WallTimer wt;
        for (std::size_t i = 0; i < left.size(); ++i)
            hop(eq, left, i);
        eq.run();
        processed = eq.numProcessed();
        final_tick = eq.curTick();
        pool_capacity = eq.poolCapacity();
        const double s = wt.seconds();
        if (best < 0 || s < best)
            best = s;
    }
    r.det = {{"events_processed", processed},
             {"final_tick", final_tick},
             {"pool_capacity", pool_capacity}};
    r.best_seconds = best;
    r.events_per_sec = static_cast<double>(processed) / best;
    r.ops_per_sec = 2 * r.events_per_sec; // one schedule per fire
    return r;
}

void poolHop(EventQueue &eq, std::vector<std::uint64_t> &left,
             std::size_t i);

void
poolHop(EventQueue &eq, std::vector<std::uint64_t> &left,
        std::size_t i)
{
    eq.scheduleCallback(eq.curTick() + 1 + (i % 7), [&eq, &left, i] {
        if (--left[i] > 0)
            poolHop(eq, left, i);
    });
}

/** The same chains through the scheduleCallback() pool fast path:
 *  no std::function, no per-event allocation in steady state. */
BenchResult
benchOneshotStormPooled(const Sizes &sz, unsigned repeat)
{
    BenchResult r;
    r.name = "oneshot_storm_pooled";
    double best = -1;
    std::uint64_t processed = 0, final_tick = 0, pool_capacity = 0;
    for (unsigned rep = 0; rep < repeat; ++rep) {
        EventQueue eq;
        std::vector<std::uint64_t> left(sz.storm_chains,
                                        sz.storm_depth);
        WallTimer wt;
        for (std::size_t i = 0; i < left.size(); ++i)
            poolHop(eq, left, i);
        eq.run();
        processed = eq.numProcessed();
        final_tick = eq.curTick();
        pool_capacity = eq.poolCapacity();
        const double s = wt.seconds();
        if (best < 0 || s < best)
            best = s;
    }
    r.det = {{"events_processed", processed},
             {"final_tick", final_tick},
             {"pool_capacity", pool_capacity}};
    r.best_seconds = best;
    r.events_per_sec = static_cast<double>(processed) / best;
    r.ops_per_sec = 2 * r.events_per_sec;
    return r;
}

/** Ring + direct all-reduce on the octo node (Fig. 18b). */
BenchResult
benchCommAllReduce(const Sizes &sz, unsigned repeat)
{
    BenchResult r;
    r.name = "comm_allreduce_octo";
    double best = -1;
    std::uint64_t processed = 0, final_tick = 0, link_bytes = 0;
    std::uint64_t peak_live = 0, heap_capacity = 0;
    for (unsigned rep = 0; rep < repeat; ++rep) {
        SimObject root(nullptr, "root");
        auto octo = soc::NodeTopology::mi300xOctoNode(&root);
        EventQueue eq;
        comm::CommParams params;
        params.chunk_bytes = 1 * MiB;
        comm::CommGroup group(octo.get(), "comm", octo->network(),
                              octo->deviceRanks(), &eq, params);
        WallTimer wt;
        std::uint64_t lb = 0;
        for (unsigned it = 0; it < sz.comm_iters; ++it) {
            auto ring = group.allReduce(eq.curTick(), sz.comm_bytes,
                                        comm::Algorithm::ring);
            group.waitAll();
            auto direct = group.allReduce(eq.curTick(), sz.comm_bytes,
                                          comm::Algorithm::direct);
            group.waitAll();
            lb += ring->linkBytes() + direct->linkBytes();
        }
        processed = eq.numProcessed();
        final_tick = eq.curTick();
        link_bytes = lb;
        peak_live = eq.peakLive();
        heap_capacity = eq.capacity();
        const double s = wt.seconds();
        if (best < 0 || s < best)
            best = s;
    }
    r.det = {{"events_processed", processed},
             {"final_tick", final_tick},
             {"link_bytes", link_bytes},
             {"peak_live", peak_live},
             {"heap_capacity", heap_capacity}};
    r.best_seconds = best;
    r.events_per_sec = static_cast<double>(processed) / best;
    r.ops_per_sec = 2 * r.events_per_sec;
    return r;
}

/**
 * The comm_allreduce_octo workload on the conservative parallel
 * core: the eight socket domains become eight PDES partitions, each
 * with its own indexed-heap queue, windowed by the octo node's
 * min-link-latency lookahead. The deterministic counters must match
 * the serial bench exactly (same schedule, same ticks, same bytes) —
 * partitions/windows/lookahead are additionally pinned so placement
 * regressions show up as counter diffs, not just wall-time noise.
 */
BenchResult
benchCommAllReducePdes(const Sizes &sz, unsigned repeat)
{
    BenchResult r;
    r.name = "comm_allreduce_octo_pdes";
    double best = -1;
    std::uint64_t processed = 0, final_tick = 0, link_bytes = 0;
    std::uint64_t peak_live = 0, windows = 0, lookahead = 0;
    std::uint64_t partitions = 0;
    for (unsigned rep = 0; rep < repeat; ++rep) {
        SimObject root(nullptr, "root");
        auto octo = soc::NodeTopology::mi300xOctoNode(&root);
        EventQueue eq;
        comm::CommParams params;
        params.chunk_bytes = 1 * MiB;
        comm::CommGroup group(octo.get(), "comm", octo->network(),
                              octo->deviceRanks(), &eq, params);
        pdes::PdesEngine engine(&eq, octo->network(), 8);
        group.attachPdes(&engine);
        WallTimer wt;
        std::uint64_t lb = 0;
        for (unsigned it = 0; it < sz.comm_iters; ++it) {
            auto ring = group.allReduce(eq.curTick(), sz.comm_bytes,
                                        comm::Algorithm::ring);
            group.waitAll();
            auto direct = group.allReduce(eq.curTick(), sz.comm_bytes,
                                          comm::Algorithm::direct);
            group.waitAll();
            lb += ring->linkBytes() + direct->linkBytes();
        }
        processed = engine.totalProcessed();
        final_tick = eq.curTick();
        link_bytes = lb;
        peak_live = engine.peakLiveTotal();
        windows = engine.windows();
        lookahead = engine.lookahead();
        partitions = engine.partitions();
        const double s = wt.seconds();
        if (best < 0 || s < best)
            best = s;
    }
    r.det = {{"events_processed", processed},
             {"final_tick", final_tick},
             {"link_bytes", link_bytes},
             {"peak_live", peak_live},
             {"partitions", partitions},
             {"windows", windows},
             {"lookahead_ticks", lookahead}};
    r.best_seconds = best;
    r.events_per_sec = static_cast<double>(processed) / best;
    r.ops_per_sec = 2 * r.events_per_sec;
    return r;
}

/**
 * All-reduce under a 5% transient chunk-error rate plus two x16
 * derates mid-flight: the retry/backoff path reschedules heavily.
 */
BenchResult
benchFaultStorm(const Sizes &sz, unsigned repeat)
{
    BenchResult r;
    r.name = "fault_storm";
    double best = -1;
    std::uint64_t processed = 0, final_tick = 0, retries = 0;
    std::uint64_t faults = 0, peak_live = 0;
    for (unsigned rep = 0; rep < repeat; ++rep) {
        SimObject root(nullptr, "root");
        auto octo = soc::NodeTopology::mi300xOctoNode(&root);
        EventQueue eq;
        comm::CommParams params;
        params.chunk_bytes = 1 * MiB;
        params.retry_timeout = 200'000'000;     // 200 us
        params.max_retries = 16;
        comm::CommGroup group(octo.get(), "comm", octo->network(),
                              octo->deviceRanks(), &eq, params);
        fault::FaultPlan plan;
        plan.seed = 20240624;
        plan.chunk_error_rate = 0.05;
        plan.link_faults.push_back(
            {"mi300x0", "mi300x1", 5'000'000, 0.5});
        plan.link_faults.push_back(
            {"mi300x2", "mi300x3", 9'000'000, 0.5});
        fault::FaultInjector inj(octo.get(), "inj", plan, &eq);
        inj.attachNetwork(octo->network());
        inj.attachCommGroup(&group);
        inj.arm();
        WallTimer wt;
        group.allReduce(0, sz.fault_bytes, comm::Algorithm::ring);
        group.waitAll();
        eq.run();       // drain any faults scheduled past completion
        processed = eq.numProcessed();
        final_tick = eq.curTick();
        retries = static_cast<std::uint64_t>(
            group.chunk_retries.value());
        faults = static_cast<std::uint64_t>(
            inj.faults_injected.value());
        peak_live = eq.peakLive();
        const double s = wt.seconds();
        if (best < 0 || s < best)
            best = s;
    }
    r.det = {{"events_processed", processed},
             {"final_tick", final_tick},
             {"chunk_retries", retries},
             {"faults_injected", faults},
             {"peak_live", peak_live}};
    r.best_seconds = best;
    r.events_per_sec = static_cast<double>(processed) / best;
    r.ops_per_sec = 2 * r.events_per_sec;
    return r;
}

/**
 * The sweep fast-forward cycle (DESIGN.md §16): simulate a shared
 * warmup prefix of ring all-reduces once, saveWorld() the quiesced
 * world, then fork eight sweep points — each restores the blob into
 * a freshly built world and runs one measured collective. The wall
 * time is what a forked sweep pays end to end (warmup once + save +
 * eight restores + eight measured ops); a straight-through sweep
 * would re-simulate warmup_events_skipped extra kernel events to
 * reach the same eight results. Byte-identity of the forked results
 * is the snapshot_test/cli_test contract; this bench tracks the
 * cost side.
 */
BenchResult
benchCheckpointFork(const Sizes &sz, unsigned repeat)
{
    BenchResult r;
    r.name = "checkpoint_fork";
    constexpr std::uint64_t kPoints = 8;
    double best = -1;
    std::uint64_t warm_events = 0, snapshot_bytes = 0;
    std::uint64_t processed = 0, final_tick = 0, link_bytes = 0;
    for (unsigned rep = 0; rep < repeat; ++rep) {
        WallTimer wt;
        std::string blob;
        {
            SimObject root(nullptr, "root");
            auto octo = soc::NodeTopology::mi300xOctoNode(&root);
            EventQueue eq;
            comm::CommParams params;
            params.chunk_bytes = 1 * MiB;
            comm::CommGroup group(octo.get(), "comm",
                                  octo->network(),
                                  octo->deviceRanks(), &eq, params);
            for (unsigned it = 0; it < sz.comm_iters; ++it) {
                group.allReduce(eq.curTick(), sz.comm_bytes,
                                comm::Algorithm::ring);
                group.waitAll();
            }
            warm_events = eq.numProcessed();
            blob = saveWorld(eq, root);
            snapshot_bytes = blob.size();
        }
        std::uint64_t total = 0, lb = 0;
        for (std::uint64_t pt = 0; pt < kPoints; ++pt) {
            SimObject root(nullptr, "root");
            auto octo = soc::NodeTopology::mi300xOctoNode(&root);
            EventQueue eq;
            comm::CommParams params;
            params.chunk_bytes = 1 * MiB;
            comm::CommGroup group(octo.get(), "comm",
                                  octo->network(),
                                  octo->deviceRanks(), &eq, params);
            restoreWorld(blob, eq, root);
            auto op = group.allReduce(eq.curTick(), sz.comm_bytes,
                                      comm::Algorithm::direct);
            group.waitAll();
            total += eq.numProcessed() - warm_events;
            lb += op->linkBytes();
            final_tick = eq.curTick();
        }
        processed = total;
        link_bytes = lb;
        const double s = wt.seconds();
        if (best < 0 || s < best)
            best = s;
    }
    r.det = {{"fork_points", kPoints},
             {"warmup_events", warm_events},
             {"warmup_events_skipped", (kPoints - 1) * warm_events},
             {"snapshot_bytes", snapshot_bytes},
             {"events_processed", processed},
             {"final_tick", final_tick},
             {"link_bytes", link_bytes}};
    r.best_seconds = best;
    r.events_per_sec = static_cast<double>(processed) / best;
    r.ops_per_sec = 2 * r.events_per_sec;
    return r;
}

void
dumpJson(std::ostream &os, bool quick,
         const std::vector<BenchResult> &results)
{
    json::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("schema", "ehpsim-bench-kernel-v1");
    jw.kv("quick", quick);
    jw.key("benchmarks");
    jw.beginArray();
    for (const auto &r : results) {
        jw.beginObject();
        jw.kv("name", r.name);
        jw.key("deterministic");
        jw.beginObject();
        for (const auto &[k, v] : r.det)
            jw.kv(k, v);
        jw.endObject();
        jw.key("wall");
        jw.beginObject();
        jw.kv("best_seconds", r.best_seconds);
        jw.kv("events_per_sec", r.events_per_sec);
        jw.kv("ops_per_sec", r.ops_per_sec);
        jw.endObject();
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    os << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    unsigned repeat = 3;
    std::string json_path;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--only" && i + 1 < argc) {
            only = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: perf_kernel [--quick] [--json FILE] "
                         "[--repeat N] [--only NAME]\n");
            return 2;
        }
    }
    if (repeat == 0)
        repeat = 1;

    const Sizes sz = sizesFor(quick);
    using BenchFn = BenchResult (*)(const Sizes &, unsigned);
    const struct
    {
        const char *name;
        BenchFn fn;
    } benches[] = {
        {"schedule_churn", benchScheduleChurn},
        {"oneshot_storm", benchOneshotStorm},
        {"oneshot_storm_pooled", benchOneshotStormPooled},
        {"comm_allreduce_octo", benchCommAllReduce},
        {"comm_allreduce_octo_pdes", benchCommAllReducePdes},
        {"fault_storm", benchFaultStorm},
        {"checkpoint_fork", benchCheckpointFork},
    };
    std::vector<BenchResult> results;
    for (const auto &b : benches) {
        if (only.empty() || only == b.name)
            results.push_back(b.fn(sz, repeat));
    }
    if (results.empty()) {
        std::fprintf(stderr, "perf_kernel: no benchmark named '%s'\n",
                     only.c_str());
        return 2;
    }

    for (const auto &r : results) {
        std::printf("[kernel_bench] %s: %.3f s best, %.3g events/s, "
                    "%.3g ops/s\n",
                    r.name.c_str(), r.best_seconds, r.events_per_sec,
                    r.ops_per_sec);
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "perf_kernel: cannot open %s\n",
                         json_path.c_str());
            return 2;
        }
        dumpJson(out, quick, results);
        std::printf("[kernel_bench] JSON -> %s\n", json_path.c_str());
    }
    return 0;
}
