/**
 * @file
 * Reproduces paper Fig. 19: the generational uplift of MI300A and
 * MI300X over MI250X across peak compute rates (per data type),
 * memory bandwidth (+70%), memory capacity (+50% for MI300X), and
 * I/O bandwidth (2x).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "soc/package.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

namespace
{

void
report()
{
    bench::printHeader("fig19",
                       "generational uplift over MI250X");
    SimObject root(nullptr, "root");
    Package m250(&root, "mi250x", mi250xConfig());
    Package m300a(&root, "mi300a", mi300aConfig());
    Package m300x(&root, "mi300x", mi300xConfig());

    struct Metric
    {
        const char *name;
        gpu::Pipe pipe;
        gpu::DataType dt;
        bool sparse;
    };
    const Metric metrics[] = {
        {"vector_fp64", gpu::Pipe::vector, gpu::DataType::fp64,
         false},
        {"vector_fp32", gpu::Pipe::vector, gpu::DataType::fp32,
         false},
        {"matrix_fp64", gpu::Pipe::matrix, gpu::DataType::fp64,
         false},
        {"matrix_fp16", gpu::Pipe::matrix, gpu::DataType::fp16,
         false},
        {"matrix_bf16", gpu::Pipe::matrix, gpu::DataType::bf16,
         false},
        {"matrix_int8", gpu::Pipe::matrix, gpu::DataType::int8,
         false},
        {"matrix_fp8", gpu::Pipe::matrix, gpu::DataType::fp8, false},
        {"matrix_fp8_sparse", gpu::Pipe::matrix, gpu::DataType::fp8,
         true},
    };

    bool pass = true;
    for (const auto &m : metrics) {
        const double t250 =
            m250.peakGpuFlops(m.pipe, m.dt, m.sparse) / 1e12;
        const double t300a =
            m300a.peakGpuFlops(m.pipe, m.dt, m.sparse) / 1e12;
        const double t300x =
            m300x.peakGpuFlops(m.pipe, m.dt, m.sparse) / 1e12;
        bench::printRow("fig19", "mi250x", m.name, t250, "Tflops");
        bench::printRow("fig19", "mi300a", m.name, t300a, "Tflops");
        bench::printRow("fig19", "mi300x", m.name, t300x, "Tflops");
        if (t300a <= t250 || t300x <= t300a * 0.999)
            pass = false;
    }

    const double bw_uplift =
        m300a.peakMemBandwidth() / m250.peakMemBandwidth();
    bench::printRow("fig19", "uplift", "mem_bandwidth", bw_uplift,
                    "x");
    const double cap_uplift_x =
        static_cast<double>(m300x.memCapacity()) /
        static_cast<double>(m250.memCapacity());
    bench::printRow("fig19", "uplift", "mi300x_capacity",
                    cap_uplift_x, "x");
    const double io_uplift =
        m300a.ioBandwidthGBs() / m250.ioBandwidthGBs();
    bench::printRow("fig19", "uplift", "io_bandwidth", io_uplift,
                    "x");
    bench::printRow("fig19", "absolute", "mi300a_mem_bw_TBs",
                    m300a.peakMemBandwidth() / 1e12, "TB/s");
    bench::printRow("fig19", "absolute", "mi300a_cache_bw_TBs",
                    m300a.peakCacheBandwidth() / 1e12, "TB/s");
    bench::printRow("fig19", "absolute", "mi300a_cus",
                    m300a.totalCus(), "CUs");
    bench::printRow("fig19", "absolute", "mi300x_cus",
                    m300x.totalCus(), "CUs");

    // Paper: +70% bandwidth, +50% capacity (X), 2x I/O.
    pass = pass && std::abs(bw_uplift - 1.7) < 0.1 &&
           std::abs(cap_uplift_x - 1.5) < 0.05 &&
           std::abs(io_uplift - 2.0) < 0.1 &&
           m300x.totalCus() == 304 && m300a.totalCus() == 228;
    bench::shapeCheck(
        "fig19", pass,
        "compute rates rise across the board, memory bandwidth "
        "+70%, MI300X capacity +50%, I/O bandwidth 2x, 228/304 CUs");
}

void
BM_BuildPackage(benchmark::State &state)
{
    for (auto _ : state) {
        SimObject root(nullptr, "root");
        Package pkg(&root, "p", mi300aConfig());
        benchmark::DoNotOptimize(pkg.totalCus());
    }
}
BENCHMARK(BM_BuildPackage);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
