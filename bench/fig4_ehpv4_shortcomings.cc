/**
 * @file
 * Ablation bench for paper Fig. 4 / Sec. III.B: the EHPv4's
 * shortcomings with the reused server IOD, measured against MI300A:
 *   (1) GPU-to-remote-HBM bandwidth limited by the long 2D SerDes
 *       path between the GPU complexes;
 *   (2) IF links provisioned for DDR-class bandwidth bottleneck an
 *       HBM-class memory system;
 *   (3) the CPU reaches HBM only after two die-to-die hops;
 *   (4/5) wasted IOD interfaces and package area.
 */

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "geom/floorplan.hh"
#include "soc/floorplan_builder.hh"
#include "soc/package.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

namespace
{

/** Latency of a 64 B CPU load to HBM. */
double
cpuLoadLatencyNs(Package &pkg)
{
    const auto r =
        pkg.memAccessFrom(pkg.ccdNode(0), 0, 4096, 64, false);
    return secondsFromTicks(r.complete) * 1e9;
}

/** Achieved bandwidth of one GPU streaming from the remote half. */
double
gpuRemoteBandwidth(Package &pkg)
{
    // Stream addresses homed on the farthest stack from XCD 0.
    const unsigned cps = pkg.memMap().channelsPerStack();
    const unsigned far_stack = pkg.memMap().numStacks() - 1;
    Tick worst = 0;
    std::uint64_t moved = 0;
    for (Addr a = 0; a < (64u << 20) && moved < (8u << 20);
         a += 4096) {
        if (pkg.memMap().stackOf(a) != far_stack)
            continue;
        for (Addr o = 0; o < 4096; o += 256) {
            auto r = pkg.memAccessFrom(pkg.xcdNode(0), 0, a + o, 256,
                                       false);
            worst = std::max(worst, r.complete);
        }
        moved += 4096;
    }
    (void)cps;
    return static_cast<double>(moved) / secondsFromTicks(worst);
}

void
report()
{
    bench::printHeader("fig4",
                       "EHPv4 shortcomings vs the MI300A approach");
    SimObject root(nullptr, "root");
    Package ehp(&root, "ehpv4", ehpv4Config());
    Package m300(&root, "mi300a", mi300aConfig());

    // (3) CPU-to-HBM path length: hops to the *nearest* stack. In
    // EHPv4 the server IOD carries no HBM at all, so every CPU
    // access pays two die-to-die hops; MI300A's CCDs sit directly
    // on an IOD with local stacks.
    auto nearest_hops = [](Package &pkg) {
        unsigned best = ~0u;
        for (unsigned s = 0; s < pkg.config().totalStacks(); ++s) {
            best = std::min(best,
                            pkg.network()->hopCount(
                                pkg.ccdNode(0), pkg.stackNode(s)));
        }
        return best;
    };
    const unsigned ehp_hops = nearest_hops(ehp);
    const unsigned m300_hops = nearest_hops(m300);
    bench::printRow("fig4", "cpu_to_hbm_hops", "ehpv4", ehp_hops,
                    "hops");
    bench::printRow("fig4", "cpu_to_hbm_hops", "mi300a", m300_hops,
                    "hops");
    const double ehp_lat = cpuLoadLatencyNs(ehp);
    const double m300_lat = cpuLoadLatencyNs(m300);
    bench::printRow("fig4", "cpu_load_latency", "ehpv4", ehp_lat,
                    "ns");
    bench::printRow("fig4", "cpu_load_latency", "mi300a", m300_lat,
                    "ns");

    // (1)/(2) GPU bandwidth to the remote memory half.
    const double ehp_bw = gpuRemoteBandwidth(ehp);
    const double m300_bw = gpuRemoteBandwidth(m300);
    bench::printRow("fig4", "gpu_remote_bw", "ehpv4", ehp_bw / 1e9,
                    "GB/s");
    bench::printRow("fig4", "gpu_remote_bw", "mi300a",
                    m300_bw / 1e9, "GB/s");
    bench::printRow("fig4", "iod_link_capacity", "ehpv4_serdes",
                    ehpv4Config().iod_link.bandwidth / 1e9, "GB/s");
    bench::printRow("fig4", "iod_link_capacity", "mi300a_usr",
                    mi300aConfig().iod_link.bandwidth / 1e12, "TB/s");

    // (5) Package-area utilization (EHPv4 leaves regions empty).
    geom::Floorplan ehp_plan({0, 0, 75, 55});
    ehp_plan.add("gpu0", {2, 10, 20, 25}, geom::RegionKind::compute);
    ehp_plan.add("server_iod", {27, 15, 20, 15},
                 geom::RegionKind::fabric);
    ehp_plan.add("gpu1", {52, 10, 20, 25}, geom::RegionKind::compute);
    ehp_plan.add("ccd0", {27, 35, 9, 10}, geom::RegionKind::compute);
    ehp_plan.add("ccd1", {38, 35, 9, 10}, geom::RegionKind::compute);
    // Blocked DDR/IO escape routes become dead area (Fig. 4 (4)).
    ehp_plan.add("dead_ddr_phy", {27, 4, 20, 8},
                 geom::RegionKind::unused);
    ehp_plan.add("dead_corner_nw", {2, 40, 18, 12},
                 geom::RegionKind::unused);
    ehp_plan.add("dead_corner_ne", {55, 40, 18, 12},
                 geom::RegionKind::unused);
    bench::printRow("fig4", "package_utilization", "ehpv4",
                    ehp_plan.utilization(), "fraction");
    const auto m300_plan = buildPackageFloorplan(mi300aConfig());
    bench::printRow("fig4", "package_utilization", "mi300a",
                    m300_plan.utilization(), "fraction");

    const bool pass = ehp_hops > m300_hops && ehp_lat > m300_lat &&
                      m300_bw > 3.0 * ehp_bw &&
                      m300_plan.utilization() >
                          ehp_plan.utilization();
    bench::shapeCheck(
        "fig4", pass,
        "EHPv4: longer CPU->HBM path, SerDes-limited cross-package "
        "GPU bandwidth, and wasted package area; MI300A fixes all "
        "three with the purpose-built IOD + USR links");
}

void
BM_CpuLoad(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    Package ehp(&root, "ehpv4", ehpv4Config());
    Tick t = 0;
    for (auto _ : state) {
        auto r = ehp.memAccessFrom(ehp.ccdNode(0), t, 4096, 64,
                                   false);
        t = r.complete;
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_CpuLoad);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
