/**
 * @file
 * Shared helpers for the paper-reproduction benches.
 *
 * Every bench binary prints machine-readable rows of the form
 *   [row] <figure>; <series>; <x>; <value>; <unit>
 * followed by a
 *   [paper_shape_check] <figure>: PASS/FAIL - <explanation>
 * line stating whether the qualitative shape of the paper's result
 * holds, and then runs its google-benchmark microbenchmarks.
 */

#ifndef EHPSIM_BENCH_BENCH_UTIL_HH
#define EHPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

namespace ehpsim
{
namespace bench
{

inline void
printHeader(const std::string &figure, const std::string &title)
{
    std::printf("==== %s: %s ====\n", figure.c_str(), title.c_str());
}

inline void
printRow(const std::string &figure, const std::string &series,
         const std::string &x, double value, const std::string &unit)
{
    std::printf("[row] %s; %s; %s; %.4g; %s\n", figure.c_str(),
                series.c_str(), x.c_str(), value, unit.c_str());
}

inline void
shapeCheck(const std::string &figure, bool pass,
           const std::string &explanation)
{
    std::printf("[paper_shape_check] %s: %s - %s\n", figure.c_str(),
                pass ? "PASS" : "FAIL", explanation.c_str());
}

} // namespace bench
} // namespace ehpsim

#endif // EHPSIM_BENCH_BENCH_UTIL_HH
