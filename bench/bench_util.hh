/**
 * @file
 * Shared helpers for the paper-reproduction benches.
 *
 * Every bench binary prints machine-readable rows of the form
 *   [row] <figure>; <series>; <x>; <value>; <unit>
 * followed by a
 *   [paper_shape_check] <figure>: PASS/FAIL - <explanation>
 * line stating whether the qualitative shape of the paper's result
 * holds, and then runs its google-benchmark microbenchmarks.
 *
 * Sweep-shaped benches additionally split their configurations into
 * independent SweepCase jobs and run them through sweep::SweepRunner
 * (see runCases()). Such benches accept
 *   --jobs N       worker-pool size (default 1)
 *   --json FILE    write the ehpsim-sweep-v1 JSON document to FILE
 * before the google-benchmark flags; rows print in case order, so
 * text and JSON output are byte-identical for any --jobs value.
 */

#ifndef EHPSIM_BENCH_BENCH_UTIL_HH
#define EHPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sweep/sweep_runner.hh"

namespace ehpsim
{
namespace bench
{

inline void
printHeader(const std::string &figure, const std::string &title)
{
    std::printf("==== %s: %s ====\n", figure.c_str(), title.c_str());
}

inline void
printRow(const std::string &figure, const std::string &series,
         const std::string &x, double value, const std::string &unit)
{
    std::printf("[row] %s; %s; %s; %.4g; %s\n", figure.c_str(),
                series.c_str(), x.c_str(), value, unit.c_str());
}

inline void
shapeCheck(const std::string &figure, bool pass,
           const std::string &explanation)
{
    std::printf("[paper_shape_check] %s: %s - %s\n", figure.c_str(),
                pass ? "PASS" : "FAIL", explanation.c_str());
}

// ---------------------------------------------------------------------
// Sweep support
// ---------------------------------------------------------------------

/** One measured point: what printRow() prints, as data. */
struct Row
{
    std::string series;
    std::string x;
    double value = 0;
    std::string unit;
};

/** Collects a case's rows; the runner serializes and prints them. */
class RowSink
{
  public:
    void
    row(std::string series, std::string x, double value,
        std::string unit)
    {
        rows_.push_back(
            Row{std::move(series), std::move(x), value, std::move(unit)});
    }

    const std::vector<Row> &rows() const { return rows_; }

  private:
    std::vector<Row> rows_;
};

/** One independent configuration of a sweep-shaped bench. */
struct SweepCase
{
    std::string name;
    std::function<void(RowSink &)> fn;
};

/** A finished case, rows recovered from its JSON-side payload. */
struct CaseOutcome
{
    std::string name;
    bool ok = false;
    std::string error;
    std::vector<Row> rows;
};

/** Sweep flags shared by all ported benches. */
struct SweepArgs
{
    unsigned jobs = 1;
    std::string json_path;
};

/**
 * Strip --jobs/--json from argv (so google-benchmark never sees
 * them) and return them. Leaves all other arguments in place.
 */
inline SweepArgs
parseSweepArgs(int &argc, char **argv)
{
    SweepArgs args;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--jobs" || arg == "--json") && i + 1 < argc) {
            const std::string val = argv[++i];
            if (arg == "--jobs")
                args.jobs = static_cast<unsigned>(
                    std::strtoul(val.c_str(), nullptr, 10));
            else
                args.json_path = val;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    if (args.jobs == 0)
        args.jobs = 1;
    return args;
}

/**
 * Run @p cases through a SweepRunner with @p args.jobs workers.
 * Rows are printed in case order (never completion order), the
 * ehpsim-sweep-v1 JSON document is written when --json was given,
 * and the outcomes are returned for shape checks.
 */
inline std::vector<CaseOutcome>
runCases(const std::string &figure, std::vector<SweepCase> cases,
         const SweepArgs &args)
{
    sweep::SweepRunner runner(args.jobs);
    // Keep the sinks alive past run(): job fns serialize from them.
    auto sinks = std::make_shared<std::vector<RowSink>>(cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
        auto fn = cases[i].fn;
        runner.addJob(cases[i].name,
                      [fn, sinks, i](json::JsonWriter &jw) {
                          RowSink &sink = (*sinks)[i];
                          fn(sink);
                          jw.beginObject();
                          jw.key("rows");
                          jw.beginArray();
                          for (const auto &r : sink.rows()) {
                              jw.beginObject();
                              jw.kv("series", r.series);
                              jw.kv("x", r.x);
                              jw.kv("value", r.value);
                              jw.kv("unit", r.unit);
                              jw.endObject();
                          }
                          jw.endArray();
                          jw.endObject();
                      });
    }

    const auto results = runner.run();

    std::vector<CaseOutcome> outcomes(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        outcomes[i].name = results[i].name;
        outcomes[i].ok = results[i].ok;
        outcomes[i].error = results[i].error;
        if (results[i].ok)
            outcomes[i].rows = (*sinks)[i].rows();
        else
            std::printf("[job_error] %s; %s; %s\n", figure.c_str(),
                        results[i].name.c_str(),
                        results[i].error.c_str());
        for (const auto &r : outcomes[i].rows)
            printRow(figure, r.series, r.x, r.value, r.unit);
    }

    if (!args.json_path.empty()) {
        std::ofstream out(args.json_path);
        if (!out) {
            std::fprintf(stderr, "[sweep] %s: cannot open %s for "
                         "writing\n", figure.c_str(),
                         args.json_path.c_str());
            std::exit(1);
        }
        sweep::SweepRunner::dumpJson(out, figure, results);
        std::printf("[sweep] %s: %zu cases on %u workers, "
                    "%.3f s of job time; JSON -> %s\n",
                    figure.c_str(), results.size(), runner.workers(),
                    sweep::SweepRunner::totalJobSeconds(results),
                    args.json_path.c_str());
    }
    return outcomes;
}

/** Look up a row by (series, x); @return @p fallback when absent. */
inline double
findRow(const std::vector<CaseOutcome> &outcomes,
        const std::string &series, const std::string &x,
        double fallback = 0)
{
    for (const auto &o : outcomes) {
        for (const auto &r : o.rows) {
            if (r.series == series && r.x == x)
                return r.value;
        }
    }
    return fallback;
}

} // namespace bench
} // namespace ehpsim

#endif // EHPSIM_BENCH_BENCH_UTIL_HH
