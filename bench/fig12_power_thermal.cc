/**
 * @file
 * Reproduces paper Fig. 12: (a) socket power distributions for
 * compute-intensive vs memory-intensive scenarios under the dynamic
 * power-shifting governor, and (b)/(c) steady-state thermal maps
 * showing XCD hotspots in the compute case and visible HBM-PHY /
 * USR-PHY heating in the memory case. Also checks the Sec. V.D
 * power-delivery ratings (1.5 A/mm^2 TSV grid + 0.5 A/mm^2 bumps).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/apu_system.hh"
#include "geom/power_delivery.hh"
#include "power/governor.hh"
#include "power/thermal.hh"
#include "soc/floorplan_builder.hh"
#include "soc/utilization.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::power;

namespace
{

struct Scenario
{
    const char *name;
    PowerDistribution dist;
};

void
report()
{
    bench::printHeader("fig12",
                       "power shifting and thermal scenarios");
    SimObject root(nullptr, "root");
    PowerModel *model = PowerModel::makeMi300a(&root);
    PowerGovernor gov(&root, "gov", model);
    const auto plan =
        soc::buildPackageFloorplan(soc::mi300aConfig());

    const Scenario scenarios[] = {
        {"compute_intensive", computeIntensiveDistribution()},
        {"memory_intensive", memoryIntensiveDistribution()},
    };

    double xcd_watts[2] = {0, 0};
    double hbm_watts[2] = {0, 0};
    double usr_watts[2] = {0, 0};
    double xcd_temp[2] = {0, 0};
    double usr_temp[2] = {0, 0};
    std::string hottest[2];

    for (int s = 0; s < 2; ++s) {
        const auto alloc = gov.allocateForDistribution(
            scenarios[s].dist);
        const auto per_domain = alloc.perDomain(*model);
        for (unsigned d = 0; d < numDomains; ++d) {
            bench::printRow("fig12a", scenarios[s].name,
                            domainName(static_cast<Domain>(d)),
                            per_domain[d] / alloc.total, "fraction");
        }
        xcd_watts[s] =
            per_domain[static_cast<unsigned>(Domain::xcd)];
        hbm_watts[s] =
            per_domain[static_cast<unsigned>(Domain::hbm)];
        usr_watts[s] =
            per_domain[static_cast<unsigned>(Domain::usr)];

        // Thermal map from the allocation.
        ThermalGrid grid(&root,
                         std::string("thermal_") + scenarios[s].name,
                         &plan);
        const auto region_watts =
            soc::regionPowerVector(plan, per_domain);
        grid.solve(region_watts);
        hottest[s] = grid.hottestRegion();
        xcd_temp[s] = grid.regionTemperature("xcd0");
        usr_temp[s] = grid.regionTemperature("iod0.usr_e");
        bench::printRow("fig12bc", scenarios[s].name, "max_temp",
                        grid.maxTemperature(), "C");
        bench::printRow("fig12bc", scenarios[s].name, "xcd0_temp",
                        xcd_temp[s], "C");
        bench::printRow("fig12bc", scenarios[s].name, "usr_temp",
                        usr_temp[s], "C");
        bench::printRow("fig12bc", scenarios[s].name, "hbm0_temp",
                        grid.regionTemperature("hbm0"), "C");
        std::printf("-- %s heat map --\n%s", scenarios[s].name,
                    grid.asciiHeatMap(48, 20).c_str());
    }

    // Sec. V.D: check power delivery for the worst (compute) case.
    // The TSV grid feeds the stacked compute chiplets (XCDs + CCDs);
    // the bottom-side microbumps feed the IOD's own logic (fabric,
    // Infinity Cache, USR, I/O, misc).
    geom::PowerDeliveryModel pdn(0.75);
    pdn.addPath({"tsv_grid", 6 * 72.0 + 3 * 71.0, 1.5, 0.02});
    pdn.addPath({"iod_ubump", 4 * 115.0, 0.5, 0.05});
    const auto compute_alloc =
        gov.allocateForDistribution(computeIntensiveDistribution());
    const auto cd = compute_alloc.perDomain(*model);
    const double chiplet_w =
        cd[static_cast<unsigned>(Domain::xcd)] +
        cd[static_cast<unsigned>(Domain::ccd)];
    const double iod_w =
        cd[static_cast<unsigned>(Domain::fabric)] +
        cd[static_cast<unsigned>(Domain::infinityCache)] +
        cd[static_cast<unsigned>(Domain::usr)] +
        cd[static_cast<unsigned>(Domain::io)] +
        cd[static_cast<unsigned>(Domain::other)];
    const auto tsv = pdn.check("tsv_grid", chiplet_w);
    const auto ubump = pdn.check("iod_ubump", iod_w);
    bench::printRow("sec5d", "tsv_grid", "margin", tsv.margin, "x");
    bench::printRow("sec5d", "iod_ubump", "margin", ubump.margin,
                    "x");

    // Workload-measured scenarios: drive the governor from actual
    // event-engine runs instead of hand-written distributions. A
    // compute-heavy GEMM vs a memory-heavy triad must reproduce the
    // same power shift.
    double meas_xcd[2] = {0, 0}, meas_hbm[2] = {0, 0};
    {
        const char *mnames[2] = {"measured_compute",
                                 "measured_memory"};
        for (int s = 0; s < 2; ++s) {
            core::ApuSystem sys(soc::mi300aConfig());
            workloads::Workload w;
            if (s == 0) {
                w = workloads::gemm(3072, 3072, 3072,
                                    gpu::DataType::fp16,
                                    gpu::Pipe::matrix);
                w.phases[0].grid_workgroups = 512;
            } else {
                w = workloads::streamTriad(1 << 19);
                w.phases[0].grid_workgroups = 512;
            }
            const auto rep = sys.run(w);
            const Tick span = ticksFromSeconds(rep.total_s);
            auto *wm = soc::makePowerModelFor(&root, sys.package());
            PowerGovernor wgov(&root,
                               std::string("gov_") + mnames[s], wm);
            const auto alloc = wgov.allocate(
                soc::measuredUtilization(sys.package(), span));
            const auto pd = alloc.perDomain(*wm);
            meas_xcd[s] =
                pd[static_cast<unsigned>(Domain::xcd)] / alloc.total;
            meas_hbm[s] =
                (pd[static_cast<unsigned>(Domain::hbm)] +
                 pd[static_cast<unsigned>(Domain::infinityCache)]) /
                alloc.total;
            bench::printRow("fig12a", mnames[s], "xcd_fraction",
                            meas_xcd[s], "fraction");
            bench::printRow("fig12a", mnames[s], "mem_fraction",
                            meas_hbm[s], "fraction");
            delete wm;
        }
    }

    // Fig. 12c's signature is *relative*: the USR PHYs stand out
    // against the compute dies in the memory scenario, while the
    // XCDs dominate in the compute scenario.
    const bool pass =
        meas_xcd[0] > meas_xcd[1] &&            // measured shift too
        meas_hbm[1] > meas_hbm[0] &&
        xcd_watts[0] > xcd_watts[1] &&          // compute shifts to XCD
        hbm_watts[1] > hbm_watts[0] &&          // memory shifts to HBM
        usr_watts[1] > usr_watts[0] &&
        hottest[0].rfind("xcd", 0) == 0 &&      // Fig 12b: XCD hotspot
        xcd_temp[0] > usr_temp[0] &&            // compute: XCD >> USR
        usr_temp[1] > xcd_temp[1] &&            // memory: USR stands out
        tsv.ok && ubump.ok;
    bench::shapeCheck(
        "fig12", pass,
        "governor shifts power between compute chiplets and the "
        "memory/fabric system; hotspots sit on the XCDs in the "
        "compute scenario and USR/HBM PHYs heat in the memory "
        "scenario; delivery stays within the TSV/bump ratings");
    delete model;
}

void
BM_ThermalSolve(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    const auto plan =
        soc::buildPackageFloorplan(soc::mi300aConfig());
    PowerModel *model = PowerModel::makeMi300a(&root);
    PowerGovernor gov(&root, "gov", model);
    const auto alloc =
        gov.allocateForDistribution(computeIntensiveDistribution());
    const auto watts =
        soc::regionPowerVector(plan, alloc.perDomain(*model));
    ThermalGrid grid(&root, "thermal", &plan);
    for (auto _ : state) {
        unsigned iters = grid.solve(watts);
        benchmark::DoNotOptimize(iters);
    }
    delete model;
}
BENCHMARK(BM_ThermalSolve);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
