/**
 * @file
 * Reproduces paper Fig. 9: TSV replication (redundant signal TSVs)
 * lets unmirrored compute chiplets land on mirrored and rotated IOD
 * instances, and quantifies the redundancy overhead.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "geom/alignment.hh"

using namespace ehpsim;
using namespace ehpsim::geom;

namespace
{

ChipletFootprint
makeXcd()
{
    // XCD-scale die with two asymmetric 3D interface banks.
    ChipletFootprint fp("xcd", 7.5, 5.5);
    fp.addBank({"tsv_w", {0.8, 1.0, 1.5, 3.0}, 0.25});
    fp.addBank({"tsv_e", {4.8, 0.8, 1.5, 3.0}, 0.25});
    return fp;
}

IodTsvPlan
makeIod(bool redundant)
{
    IodTsvPlan plan(11.5, 11.5);
    // Landing banks for an XCD placed at (2.0, 3.0).
    plan.addBank({"land_w", {2.8, 4.0, 1.5, 3.0}, 0.25});
    plan.addBank({"land_e", {6.8, 3.8, 1.5, 3.0}, 0.25});
    if (redundant)
        plan.addMirrorRedundancy();
    return plan;
}

void
report()
{
    bench::printHeader("fig9",
                       "TSV redundancy vs mirrored/rotated IODs");
    const auto xcd = makeXcd();
    const auto base = makeIod(false);
    const auto redundant = makeIod(true);

    bench::printRow("fig9", "tsv_sites", "base",
                    static_cast<double>(base.numSites()), "sites");
    bench::printRow("fig9", "tsv_sites", "with_redundancy",
                    static_cast<double>(redundant.numSites()),
                    "sites");
    const double overhead =
        static_cast<double>(redundant.numSites()) / base.numSites();
    bench::printRow("fig9", "tsv_sites", "overhead_factor", overhead,
                    "x");

    bool pass = true;
    for (Orient iod_o : allOrients) {
        // Rotated IOD instances carry the rotated chiplet at the
        // rotated offset; mirroring is absorbed by redundancy.
        Orient chip_o = Orient::r0;
        double ox = 2.0, oy = 3.0;
        if (iod_o == Orient::r180 || iod_o == Orient::mirroredR180) {
            chip_o = Orient::r180;
            ox = redundant.width() - 2.0 - xcd.width();
            oy = redundant.height() - 3.0 - xcd.height();
        }
        const auto with =
            redundant.checkStackAlignment(xcd, chip_o, ox, oy, iod_o);
        const auto without =
            base.checkStackAlignment(xcd, chip_o, ox, oy, iod_o);
        bench::printRow("fig9", "aligned_pads_redundant",
                        orientName(iod_o),
                        static_cast<double>(with.pads_aligned),
                        "pads");
        bench::printRow("fig9", "aligned_pads_base",
                        orientName(iod_o),
                        static_cast<double>(without.pads_aligned),
                        "pads");
        if (!with.aligned)
            pass = false;
        if (isMirrored(iod_o) && without.aligned)
            pass = false;       // base plan must fail on mirrors
    }
    bench::shapeCheck(
        "fig9", pass,
        "unmirrored chiplets align on all four IOD instances only "
        "with mirror-redundant TSVs (overhead < 2x sites)");
}

void
BM_AlignmentCheck(benchmark::State &state)
{
    const auto xcd = makeXcd();
    const auto plan = makeIod(true);
    for (auto _ : state) {
        auto res = plan.checkStackAlignment(xcd, Orient::r0, 2.0, 3.0,
                                            Orient::mirrored);
        benchmark::DoNotOptimize(res.aligned);
    }
}
BENCHMARK(BM_AlignmentCheck);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
