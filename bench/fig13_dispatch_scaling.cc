/**
 * @file
 * Ablation bench for paper Fig. 13: the cooperative multi-XCD
 * dispatch protocol. Measures kernel completion versus the number
 * of XCDs cooperating in the partition, the high-priority ACE
 * synchronization traffic, and the round-robin vs blocked workgroup
 * distribution policies (L2 reuse vs bandwidth spread).
 *
 * Sweep-shaped: each partition size / policy is an independent
 * SweepCase (own ApuSystem, EventQueue, stats), so the whole figure
 * parallelizes with --jobs N and exports JSON with --json FILE.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/apu_system.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;

namespace
{

hsa::AqlPacket
makeKernel(std::uint64_t grid)
{
    hsa::AqlPacket pkt;
    pkt.grid_workgroups = grid;
    pkt.work.flops = 256 * 20000;
    pkt.work.dtype = gpu::DataType::fp32;
    pkt.work.pipe = gpu::Pipe::vector;
    pkt.work.bytes_read = 8192;
    pkt.work.bytes_written = 4096;
    pkt.read_stride = 8192;
    pkt.write_stride = 4096;
    return pkt;
}

/** One point of the scaling curve: a 456-workgroup kernel (2 waves
 *  on all 228 CUs) on an n-XCD partition built from one package. */
void
dispatchCase(unsigned n, bench::RowSink &sink)
{
    ApuSystem sys(soc::mi300aConfig());
    auto &pkg = sys.package();
    std::vector<gpu::Xcd *> xs;
    std::vector<fabric::NodeId> nodes;
    std::vector<unsigned> ids;
    for (unsigned i = 0; i < n; ++i) {
        xs.push_back(pkg.xcd(i));
        nodes.push_back(pkg.xcdNode(i));
        ids.push_back(i);
    }
    hsa::Partition part(&pkg, "bench_part", xs, pkg.scopes(),
                        pkg.network(), nodes, pkg.iodNode(0), ids);
    auto pkt = makeKernel(456);
    pkt.work.read_base = 0;
    pkt.work.write_base = 1u << 30;
    const auto res = part.dispatch(0, pkt);
    const double t = secondsFromTicks(res.complete);
    const std::string x = std::to_string(n) + "_xcds";
    sink.row("kernel_time", x, t * 1e6, "us");
    sink.row("sync_messages", x, res.sync_messages, "msgs");
}

/** Policy ablation: a streaming kernel under one distribution
 *  policy (reuse-heavy kernels favor blocked; streams round-robin). */
void
policyCase(hsa::DistributionPolicy policy, const std::string &label,
           bench::RowSink &sink)
{
    ApuSystem sys(soc::mi300aConfig());
    auto w = workloads::streamTriad(1 << 19);
    w.phases[0].grid_workgroups = 512;
    const auto rep = sys.run(w, 1, policy);
    sink.row("policy_stream", label, rep.total_s * 1e6, "us");
}

void
report(const bench::SweepArgs &args)
{
    bench::printHeader(
        "fig13", "multi-XCD cooperative dispatch scaling");

    std::vector<bench::SweepCase> cases;
    for (unsigned n : {1u, 2u, 3u, 6u}) {
        cases.push_back({"dispatch_" + std::to_string(n) + "xcd",
                         [n](bench::RowSink &s) { dispatchCase(n, s); }});
    }
    cases.push_back({"policy_round_robin", [](bench::RowSink &s) {
        policyCase(hsa::DistributionPolicy::roundRobin, "round_robin",
                   s);
    }});
    cases.push_back({"policy_blocked", [](bench::RowSink &s) {
        policyCase(hsa::DistributionPolicy::blocked, "blocked", s);
    }});

    const auto outcomes = bench::runCases("fig13", cases, args);

    bool pass = true;
    const double t1 =
        bench::findRow(outcomes, "kernel_time", "1_xcds");
    for (unsigned n : {1u, 2u, 3u, 6u}) {
        const double sync = bench::findRow(
            outcomes, "sync_messages", std::to_string(n) + "_xcds", -1);
        if (sync != n - 1)
            pass = false;
    }
    const double t6 = bench::findRow(outcomes, "kernel_time", "6_xcds");
    if (!(t6 < t1 / 3.0))
        pass = false;   // must scale well past 3x

    bench::shapeCheck(
        "fig13", pass,
        "one AQL packet spreads across the partition's ACEs; "
        "completion needs n-1 high-priority sync messages and the "
        "kernel scales with cooperating XCDs");
}

void
BM_Dispatch(benchmark::State &state)
{
    ApuSystem sys(soc::mi300aConfig());
    auto *part = sys.package().unifiedPartition();
    Tick t = 0;
    for (auto _ : state) {
        auto pkt = makeKernel(24);
        const auto res = part->dispatch(t, pkt);
        t = res.complete;
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_Dispatch);

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto sweep_args = bench::parseSweepArgs(argc, argv);
    report(sweep_args);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
