/**
 * @file
 * Ablation bench for paper Fig. 13: the cooperative multi-XCD
 * dispatch protocol. Measures kernel completion versus the number
 * of XCDs cooperating in the partition, the high-priority ACE
 * synchronization traffic, and the round-robin vs blocked workgroup
 * distribution policies (L2 reuse vs bandwidth spread).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/apu_system.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;

namespace
{

hsa::AqlPacket
makeKernel(std::uint64_t grid)
{
    hsa::AqlPacket pkt;
    pkt.grid_workgroups = grid;
    pkt.work.flops = 256 * 20000;
    pkt.work.dtype = gpu::DataType::fp32;
    pkt.work.pipe = gpu::Pipe::vector;
    pkt.work.bytes_read = 8192;
    pkt.work.bytes_written = 4096;
    pkt.read_stride = 8192;
    pkt.write_stride = 4096;
    return pkt;
}

void
report()
{
    bench::printHeader(
        "fig13", "multi-XCD cooperative dispatch scaling");

    // Scaling: the same 456-workgroup kernel on 1..6-XCD partitions
    // (456 = 2 waves on all 228 CUs).
    bool pass = true;
    double t1 = 0;
    // Build partitions of different sizes by hand from one package.
    for (unsigned n : {1u, 2u, 3u, 6u}) {
        ApuSystem sys(soc::mi300aConfig());
        auto &pkg = sys.package();
        std::vector<gpu::Xcd *> xs;
        std::vector<fabric::NodeId> nodes;
        std::vector<unsigned> ids;
        for (unsigned i = 0; i < n; ++i) {
            xs.push_back(pkg.xcd(i));
            nodes.push_back(pkg.xcdNode(i));
            ids.push_back(i);
        }
        hsa::Partition part(&pkg, "bench_part", xs, pkg.scopes(),
                            pkg.network(), nodes, pkg.iodNode(0),
                            ids);
        auto pkt = makeKernel(456);
        pkt.work.read_base = 0;
        pkt.work.write_base = 1u << 30;
        const auto res = part.dispatch(0, pkt);
        const double t = secondsFromTicks(res.complete);
        bench::printRow("fig13", "kernel_time",
                        std::to_string(n) + "_xcds", t * 1e6, "us");
        bench::printRow("fig13", "sync_messages",
                        std::to_string(n) + "_xcds",
                        res.sync_messages, "msgs");
        if (n == 1)
            t1 = t;
        if (res.sync_messages != n - 1)
            pass = false;
        if (n == 6 && !(t < t1 / 3.0))
            pass = false;   // must scale well past 3x
    }

    // Policy ablation: a reuse-heavy kernel (all workgroups share a
    // small read set) favors blocked; a streaming kernel favors
    // round-robin spreading.
    {
        ApuSystem rr(soc::mi300aConfig());
        ApuSystem blk(soc::mi300aConfig());
        auto w = workloads::streamTriad(1 << 19);
        w.phases[0].grid_workgroups = 512;
        const auto r1 =
            rr.run(w, 1, hsa::DistributionPolicy::roundRobin);
        const auto r2 =
            blk.run(w, 1, hsa::DistributionPolicy::blocked);
        bench::printRow("fig13", "policy_stream", "round_robin",
                        r1.total_s * 1e6, "us");
        bench::printRow("fig13", "policy_stream", "blocked",
                        r2.total_s * 1e6, "us");
    }

    bench::shapeCheck(
        "fig13", pass,
        "one AQL packet spreads across the partition's ACEs; "
        "completion needs n-1 high-priority sync messages and the "
        "kernel scales with cooperating XCDs");
}

void
BM_Dispatch(benchmark::State &state)
{
    ApuSystem sys(soc::mi300aConfig());
    auto *part = sys.package().unifiedPartition();
    Tick t = 0;
    for (auto _ : state) {
        auto pkt = makeKernel(24);
        const auto res = part->dispatch(t, pkt);
        t = res.complete;
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_Dispatch);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
