/**
 * @file
 * Reproduces paper Fig. 15: fine-grained decoupling of GPU and CPU
 * execution via per-element completion flags in coherent unified
 * memory. Compares the original kernel-level synchronization
 * timeline (Fig. 15c) against the overlapped timeline (Fig. 15b) on
 * both the roofline engine and the event engine (where the CPU
 * spin-waits on coherent flags).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/apu_system.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "cpu/zen_core.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

/** A producer/consumer phase where the CPU post-processes GPU data. */
Workload
producerConsumer(std::uint64_t elems)
{
    Workload w;
    w.name = "producer_consumer";
    w.footprint_bytes = elems * 16;

    Phase p;
    p.name = "gpu_produce_cpu_consume";
    p.device = PhaseDevice::gpuThenCpu;
    p.gpu_flops = elems * 64;
    p.dtype = gpu::DataType::fp64;
    p.pipe = gpu::Pipe::vector;
    p.gpu_bytes_read = elems * 8;
    p.gpu_bytes_written = elems * 8;
    p.to_cpu_bytes = elems * 8;
    p.cpu_flops = elems * 16;
    p.cpu_bytes_read = elems * 8;
    p.cpu_bytes_written = elems * 2;
    p.fine_grained_capable = true;
    p.grid_workgroups = 512;
    w.phases.push_back(p);
    return w;
}

void
report()
{
    bench::printHeader("fig15",
                       "flag-based CPU/GPU overlap vs kernel sync");

    bool pass = true;
    const RooflineEngine apu(mi300aModel());
    for (std::uint64_t m : {16ull, 64ull, 256ull}) {
        const auto w = producerConsumer(m << 20);
        const std::string x = std::to_string(m) + "M elems";
        const auto coarse = apu.run(w, CouplingMode::coarseSync);
        const auto fine = apu.run(w, CouplingMode::fineGrained);
        bench::printRow("fig15", "kernel_sync", x,
                        coarse.total_s * 1e3, "ms");
        bench::printRow("fig15", "fine_grained", x,
                        fine.total_s * 1e3, "ms");
        bench::printRow("fig15", "speedup", x,
                        coarse.total_s / fine.total_s, "x");
        if (fine.total_s >= coarse.total_s)
            pass = false;
    }

    // Event engine: the same comparison through real dispatches.
    auto w = producerConsumer(2ull << 20);
    ApuSystem coarse_sys(soc::mi300aConfig());
    ApuSystem fine_sys(soc::mi300aConfig());
    const auto ev_coarse = coarse_sys.run(
        w, 1, hsa::DistributionPolicy::roundRobin, false);
    const auto ev_fine = fine_sys.run(
        w, 1, hsa::DistributionPolicy::roundRobin, true);
    bench::printRow("fig15", "event_kernel_sync", "2M",
                    ev_coarse.total_s * 1e3, "ms");
    bench::printRow("fig15", "event_fine_grained", "2M",
                    ev_fine.total_s * 1e3, "ms");
    if (ev_fine.total_s > ev_coarse.total_s)
        pass = false;

    // The spin-wait primitive itself: the consumer observes the flag
    // within one poll interval of the producer's release.
    {
        SimObject root(nullptr, "root");
        class Flat : public mem::MemDevice
        {
          public:
            explicit Flat(SimObject *p) : mem::MemDevice(p, "m") {}
            mem::AccessResult
            access(Tick when, Addr, std::uint64_t, bool) override
            {
                return {when + 1000, true, 0};
            }
        } memory(&root);
        cpu::ZenCore core(&root, "core", cpu::zen4CoreParams(),
                          &memory);
        const Tick flag_at = ticksFromSeconds(1e-5);
        const Tick poll = 20'000;
        const Tick seen = core.spinWait(0, flag_at, poll, 60'000);
        bench::printRow("fig15", "spin_observe_delay", "10us_flag",
                        secondsFromTicks(seen - flag_at) * 1e9, "ns");
        if (seen < flag_at || seen > flag_at + poll + 60'000)
            pass = false;
    }

    bench::shapeCheck(
        "fig15", pass,
        "overlapping CPU consumption with GPU production (coherent "
        "completion flags) beats kernel-level synchronization in "
        "both engines");
}

void
BM_SpinWait(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    class Flat : public mem::MemDevice
    {
      public:
        explicit Flat(SimObject *p) : mem::MemDevice(p, "m") {}
        mem::AccessResult
        access(Tick when, Addr, std::uint64_t, bool) override
        {
            return {when + 1000, true, 0};
        }
    } memory(&root);
    cpu::ZenCore core(&root, "core", cpu::zen4CoreParams(), &memory);
    Tick t = 0;
    for (auto _ : state) {
        t = core.spinWait(t, t + 100'000, 10'000, 50'000);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_SpinWait);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
