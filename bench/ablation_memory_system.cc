/**
 * @file
 * Ablations of the MI300A memory-system design choices called out
 * in DESIGN.md:
 *  1. Infinity Cache on/off and prefetcher depth (Sec. IV.D:
 *     bandwidth amplification + latency reduction);
 *  2. stack-interleave granularity around the paper's 4 KB choice
 *     (Sec. IV.D), judged by channel load balance for sequential
 *     and strided streams;
 *  3. the EHP lineage: EHPv3 -> EHPv4 -> MI300A cross-package GPU
 *     bandwidth (Sec. V.F's comparison).
 *
 * Sweep-shaped: all twelve ablation points are independent
 * SweepCases, each with its own package and stats tree
 * (--jobs N, --json FILE).
 */

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "mem/hbm_subsystem.hh"
#include "soc/package.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

namespace
{

/** Reuse-heavy stream through a package; returns achieved TB/s. */
double
reuseBandwidth(Package &pkg)
{
    Tick when = 0;
    Tick last_start = 0;
    for (int p = 0; p < 3; ++p) {
        last_start = when;
        Tick worst = when;
        for (unsigned x = 0; x < pkg.numXcds(); ++x) {
            for (Addr a = 0; a < (8u << 20); a += 256) {
                worst = std::max(worst,
                                 pkg.memAccessFrom(pkg.xcdNode(x),
                                                   when, a, 256,
                                                   false)
                                     .complete);
            }
        }
        when = worst;
    }
    const double bytes = 8.0 * (1 << 20) * pkg.numXcds();
    return bytes / secondsFromTicks(when - last_start) / 1e12;
}

/** Channel-load imbalance (max/mean) for a strided address stream. */
double
imbalance(std::uint64_t page_bytes, std::uint64_t stride)
{
    const std::uint64_t stripe =
        std::min<std::uint64_t>(256, page_bytes / 16);
    mem::InterleaveMap map(8, 16, 1ull << 30, mem::NumaMode::nps1,
                           page_bytes, stripe);
    std::vector<std::uint64_t> load(map.numChannels(), 0);
    for (Addr a = 0; a < (64ull << 20); a += stride)
        load[map.locate(a).channel] += 1;
    const std::uint64_t mx =
        *std::max_element(load.begin(), load.end());
    double mean = 0;
    for (auto v : load)
        mean += static_cast<double>(v);
    mean /= static_cast<double>(load.size());
    return mean > 0 ? static_cast<double>(mx) / mean : 0.0;
}

/** Ablation 1a: reuse bandwidth with the Infinity Cache on or off. */
void
cacheCase(bool enabled, bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto cfg = mi300aConfig();
    cfg.hbm.enable_infinity_cache = enabled;
    Package pkg(&root, enabled ? "with_cache" : "no_cache", cfg);
    sink.row("reuse_bw",
             enabled ? "infinity_cache_on" : "infinity_cache_off",
             reuseBandwidth(pkg), "TB/s");
}

/** Ablation 1b: prefetcher depth vs cold-walk hit rate. */
void
prefetchCase(unsigned depth, bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    auto cfg = mi300aConfig();
    cfg.hbm.cache.prefetch_depth = depth;
    Package pkg(&root, "pf" + std::to_string(depth), cfg);
    // Latency of a cold sequential walk: the prefetcher should
    // convert most misses into hits.
    Tick t = 0;
    for (Addr a = 0; a < (1u << 20); a += 256)
        t = std::max(t,
                     pkg.memAccessFrom(pkg.xcdNode(0), 0, a, 256,
                                       false)
                         .complete);
    double hits = 0, misses = 0;
    for (unsigned ch = 0; ch < 128; ++ch) {
        hits += pkg.slice(ch)->hits.value();
        misses += pkg.slice(ch)->misses.value();
    }
    sink.row("prefetch_hit_rate", "depth" + std::to_string(depth),
             hits / (hits + misses), "fraction");
}

/** Ablation 2: interleave-page channel balance at one granularity. */
void
interleaveCase(std::uint64_t page, bench::RowSink &sink)
{
    const std::string x = std::to_string(page) + "B";
    sink.row("imbalance_seq", x, imbalance(page, 256), "max/mean");
    sink.row("imbalance_strided", x, imbalance(page, 4096 + 256),
             "max/mean");
}

/** Ablation 3: cross-package GPU bandwidth of one lineage member. */
void
lineageCase(const std::string &name, const ProductConfig &cfg,
            bench::RowSink &sink)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "lin_" + name, cfg);
    // One GPU streams from the farthest stack (cross-package).
    const unsigned far = pkg.config().totalStacks() - 1;
    Tick worst = 0;
    std::uint64_t moved = 0;
    for (Addr a = 0; a < (64u << 20) && moved < (4u << 20);
         a += 4096) {
        if (pkg.memMap().stackOf(a) != far)
            continue;
        for (Addr o = 0; o < 4096; o += 256) {
            worst = std::max(worst,
                             pkg.memAccessFrom(pkg.xcdNode(0), 0,
                                               a + o, 256, false)
                                 .complete);
        }
        moved += 4096;
    }
    sink.row("cross_package_gpu_bw", name,
             static_cast<double>(moved) / secondsFromTicks(worst) /
                 1e9,
             "GB/s");
}

void
report(const bench::SweepArgs &args)
{
    bench::printHeader("ablation",
                       "memory-system design-choice ablations");

    std::vector<bench::SweepCase> cases;
    for (const bool enabled : {true, false}) {
        cases.push_back({enabled ? "infinity_cache_on"
                                 : "infinity_cache_off",
                         [enabled](bench::RowSink &s) {
                             cacheCase(enabled, s);
                         }});
    }
    for (unsigned depth : {0u, 1u, 2u, 4u}) {
        cases.push_back({"prefetch_depth" + std::to_string(depth),
                         [depth](bench::RowSink &s) {
                             prefetchCase(depth, s);
                         }});
    }
    for (std::uint64_t page : {1024ull, 4096ull, 65536ull}) {
        cases.push_back({"interleave_" + std::to_string(page) + "B",
                         [page](bench::RowSink &s) {
                             interleaveCase(page, s);
                         }});
    }
    const char *lineage_names[3] = {"EHPv3", "EHPv4", "MI300A"};
    const ProductConfig lineage_cfgs[3] = {ehpv3Config(),
                                           ehpv4Config(),
                                           mi300aConfig()};
    for (int i = 0; i < 3; ++i) {
        const std::string name = lineage_names[i];
        const ProductConfig cfg = lineage_cfgs[i];
        cases.push_back({"lineage_" + name,
                         [name, cfg](bench::RowSink &s) {
                             lineageCase(name, cfg, s);
                         }});
    }

    const auto outcomes = bench::runCases("ablation", cases, args);

    bool pass = true;
    const double bw_with_cache =
        bench::findRow(outcomes, "reuse_bw", "infinity_cache_on");
    const double bw_without =
        bench::findRow(outcomes, "reuse_bw", "infinity_cache_off");
    if (bw_with_cache < 1.3 * bw_without)
        pass = false;
    if (bench::findRow(outcomes, "imbalance_seq", "4096B", 99) > 1.1 ||
        bench::findRow(outcomes, "imbalance_strided", "4096B", 99) >
            1.6) {
        pass = false;
    }
    const double bw_v3 =
        bench::findRow(outcomes, "cross_package_gpu_bw", "EHPv3");
    const double bw_v4 =
        bench::findRow(outcomes, "cross_package_gpu_bw", "EHPv4");
    const double bw_mi300a =
        bench::findRow(outcomes, "cross_package_gpu_bw", "MI300A");
    if (!(bw_mi300a > 3 * bw_v4 && bw_mi300a > 3 * bw_v3))
        pass = false;

    bench::shapeCheck(
        "ablation", pass,
        "the Infinity Cache amplifies reuse bandwidth; the 4 KB "
        "stack interleave balances channels for sequential and "
        "strided streams; cross-package GPU bandwidth improves "
        "dramatically across EHPv3 -> EHPv4 -> MI300A");
}

void
BM_ReuseStream(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "bm", mi300aConfig());
    Tick t = 0;
    Addr a = 0;
    for (auto _ : state) {
        t = pkg.memAccessFrom(pkg.xcdNode(0), t, a % (1u << 20), 256,
                              false)
                .complete;
        a += 256;
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_ReuseStream);

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto sweep_args = bench::parseSweepArgs(argc, argv);
    report(sweep_args);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
