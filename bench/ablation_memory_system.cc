/**
 * @file
 * Ablations of the MI300A memory-system design choices called out
 * in DESIGN.md:
 *  1. Infinity Cache on/off and prefetcher depth (Sec. IV.D:
 *     bandwidth amplification + latency reduction);
 *  2. stack-interleave granularity around the paper's 4 KB choice
 *     (Sec. IV.D), judged by channel load balance for sequential
 *     and strided streams;
 *  3. the EHP lineage: EHPv3 -> EHPv4 -> MI300A cross-package GPU
 *     bandwidth (Sec. V.F's comparison).
 */

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "mem/hbm_subsystem.hh"
#include "soc/package.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

namespace
{

/** Reuse-heavy stream through a package; returns achieved TB/s. */
double
reuseBandwidth(Package &pkg)
{
    Tick when = 0;
    Tick last_start = 0;
    for (int p = 0; p < 3; ++p) {
        last_start = when;
        Tick worst = when;
        for (unsigned x = 0; x < pkg.numXcds(); ++x) {
            for (Addr a = 0; a < (8u << 20); a += 256) {
                worst = std::max(worst,
                                 pkg.memAccessFrom(pkg.xcdNode(x),
                                                   when, a, 256,
                                                   false)
                                     .complete);
            }
        }
        when = worst;
    }
    const double bytes = 8.0 * (1 << 20) * pkg.numXcds();
    return bytes / secondsFromTicks(when - last_start) / 1e12;
}

/** Channel-load imbalance (max/mean) for a strided address stream. */
double
imbalance(std::uint64_t page_bytes, std::uint64_t stride)
{
    const std::uint64_t stripe =
        std::min<std::uint64_t>(256, page_bytes / 16);
    mem::InterleaveMap map(8, 16, 1ull << 30, mem::NumaMode::nps1,
                           page_bytes, stripe);
    std::vector<std::uint64_t> load(map.numChannels(), 0);
    for (Addr a = 0; a < (64ull << 20); a += stride)
        load[map.locate(a).channel] += 1;
    const std::uint64_t mx =
        *std::max_element(load.begin(), load.end());
    double mean = 0;
    for (auto v : load)
        mean += static_cast<double>(v);
    mean /= static_cast<double>(load.size());
    return mean > 0 ? static_cast<double>(mx) / mean : 0.0;
}

void
report()
{
    bench::printHeader("ablation",
                       "memory-system design-choice ablations");
    SimObject root(nullptr, "root");
    bool pass = true;

    // --- 1. Infinity Cache & prefetch depth -------------------------
    double bw_with_cache = 0, bw_without = 0;
    {
        auto cfg = mi300aConfig();
        Package pkg(&root, "with_cache", cfg);
        bw_with_cache = reuseBandwidth(pkg);
        bench::printRow("ablation", "reuse_bw", "infinity_cache_on",
                        bw_with_cache, "TB/s");

        cfg.hbm.enable_infinity_cache = false;
        Package bare(&root, "no_cache", cfg);
        bw_without = reuseBandwidth(bare);
        bench::printRow("ablation", "reuse_bw", "infinity_cache_off",
                        bw_without, "TB/s");
    }
    if (bw_with_cache < 1.3 * bw_without)
        pass = false;

    for (unsigned depth : {0u, 1u, 2u, 4u}) {
        auto cfg = mi300aConfig();
        cfg.hbm.cache.prefetch_depth = depth;
        Package pkg(&root, "pf" + std::to_string(depth), cfg);
        // Latency of a cold sequential walk: the prefetcher should
        // convert most misses into hits.
        Tick t = 0;
        for (Addr a = 0; a < (1u << 20); a += 256)
            t = std::max(t, pkg.memAccessFrom(pkg.xcdNode(0), 0, a,
                                              256, false)
                                .complete);
        double hits = 0, misses = 0;
        for (unsigned ch = 0; ch < 128; ++ch) {
            hits += pkg.slice(ch)->hits.value();
            misses += pkg.slice(ch)->misses.value();
        }
        bench::printRow("ablation", "prefetch_hit_rate",
                        "depth" + std::to_string(depth),
                        hits / (hits + misses), "fraction");
    }

    // --- 2. Interleave granularity ----------------------------------
    for (std::uint64_t page : {1024ull, 4096ull, 65536ull}) {
        const double seq = imbalance(page, 256);
        const double strided = imbalance(page, 4096 + 256);
        bench::printRow("ablation", "imbalance_seq",
                        std::to_string(page) + "B", seq, "max/mean");
        bench::printRow("ablation", "imbalance_strided",
                        std::to_string(page) + "B", strided,
                        "max/mean");
        if (page == 4096 && (seq > 1.1 || strided > 1.6))
            pass = false;
    }

    // --- 3. The EHP lineage ------------------------------------------
    double lineage_bw[3];
    const char *names[3] = {"EHPv3", "EHPv4", "MI300A"};
    ProductConfig cfgs[3] = {ehpv3Config(), ehpv4Config(),
                             mi300aConfig()};
    for (int i = 0; i < 3; ++i) {
        Package pkg(&root, std::string("lin_") + names[i], cfgs[i]);
        // One GPU streams from the farthest stack (cross-package).
        const unsigned far = pkg.config().totalStacks() - 1;
        Tick worst = 0;
        std::uint64_t moved = 0;
        for (Addr a = 0; a < (64u << 20) && moved < (4u << 20);
             a += 4096) {
            if (pkg.memMap().stackOf(a) != far)
                continue;
            for (Addr o = 0; o < 4096; o += 256) {
                worst = std::max(worst,
                                 pkg.memAccessFrom(pkg.xcdNode(0), 0,
                                                   a + o, 256, false)
                                     .complete);
            }
            moved += 4096;
        }
        lineage_bw[i] =
            static_cast<double>(moved) / secondsFromTicks(worst) /
            1e9;
        bench::printRow("ablation", "cross_package_gpu_bw", names[i],
                        lineage_bw[i], "GB/s");
    }
    if (!(lineage_bw[2] > 3 * lineage_bw[1] &&
          lineage_bw[2] > 3 * lineage_bw[0])) {
        pass = false;
    }

    bench::shapeCheck(
        "ablation", pass,
        "the Infinity Cache amplifies reuse bandwidth; the 4 KB "
        "stack interleave balances channels for sequential and "
        "strided streams; cross-package GPU bandwidth improves "
        "dramatically across EHPv3 -> EHPv4 -> MI300A");
}

void
BM_ReuseStream(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "bm", mi300aConfig());
    Tick t = 0;
    Addr a = 0;
    for (auto _ : state) {
        t = pkg.memAccessFrom(pkg.xcdNode(0), t, a % (1u << 20), 256,
                              false)
                .complete;
        a += 256;
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_ReuseStream);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
