/**
 * @file
 * Reproduces paper Fig. 7 (MI300A IOD bandwidths across interfaces)
 * and the Sec. IV.D headline numbers: ~5.3 TB/s HBM, up to 17 TB/s
 * from the Infinity Cache, multiple TB/s of USR bandwidth between
 * IODs, and 64 GB/s per direction per x16 link.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "soc/package.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

namespace
{

/**
 * Achieved bandwidth streaming @p bytes_per_xcd from all XCDs.
 * With @p reuse the same region is streamed repeatedly and only the
 * final (cache-resident) pass is measured.
 */
double
streamBandwidth(Package &pkg, std::uint64_t bytes_per_xcd, bool reuse)
{
    const int passes = reuse ? 3 : 1;
    Tick when = 0;
    Tick last_pass_start = 0;
    Tick worst = 0;
    for (int p = 0; p < passes; ++p) {
        last_pass_start = when;
        Tick pass_worst = when;
        for (unsigned x = 0; x < pkg.numXcds(); ++x) {
            for (Addr a = 0; a < bytes_per_xcd; a += 256) {
                const Addr addr =
                    (reuse ? 0 : Addr(x) * bytes_per_xcd) + a;
                auto r = pkg.memAccessFrom(pkg.xcdNode(x), when, addr,
                                           256, false);
                pass_worst = std::max(pass_worst, r.complete);
            }
        }
        when = pass_worst;
        worst = pass_worst;
    }
    const double pass_bytes =
        static_cast<double>(bytes_per_xcd) * pkg.numXcds();
    return pass_bytes / secondsFromTicks(worst - last_pass_start);
}

/** Achieved bandwidth of one USR edge under saturation. */
double
usrEdgeBandwidth(Package &pkg)
{
    auto *net = pkg.network();
    const auto a = pkg.iodNode(0);
    const auto b = pkg.iodNode(1);
    Tick worst = 0;
    const std::uint64_t msg = 4096;
    const int n = 2048;
    for (int i = 0; i < n; ++i)
        worst = std::max(worst, net->send(0, a, b, msg).arrival);
    return static_cast<double>(msg) * n / secondsFromTicks(worst);
}

double
x16Bandwidth(Package &pkg)
{
    auto *net = pkg.network();
    const auto io = pkg.ioNode(0);
    const auto iod = pkg.iodNode(0);
    Tick worst = 0;
    const std::uint64_t msg = 65536;
    const int n = 256;
    for (int i = 0; i < n; ++i)
        worst = std::max(worst, net->send(0, io, iod, msg).arrival);
    return static_cast<double>(msg) * n / secondsFromTicks(worst);
}

void
report()
{
    bench::printHeader(
        "fig7", "MI300A IOD interface bandwidths (achieved)");
    SimObject root(nullptr, "root");

    Package hbm_pkg(&root, "p1", mi300aConfig());
    const double hbm_bw =
        streamBandwidth(hbm_pkg, 2u << 20, /*reuse=*/false);
    bench::printRow("fig7", "achieved", "hbm_stream", hbm_bw / 1e12,
                    "TB/s");
    bench::printRow("fig7", "peak", "hbm",
                    hbm_pkg.peakMemBandwidth() / 1e12, "TB/s");

    Package cache_pkg(&root, "p2", mi300aConfig());
    const double cache_bw =
        streamBandwidth(cache_pkg, 16u << 20, /*reuse=*/true);
    bench::printRow("fig7", "achieved", "infinity_cache_resident",
                    cache_bw / 1e12, "TB/s");
    bench::printRow("fig7", "peak", "infinity_cache",
                    cache_pkg.peakCacheBandwidth() / 1e12, "TB/s");

    Package usr_pkg(&root, "p3", mi300aConfig());
    const double usr_bw = usrEdgeBandwidth(usr_pkg);
    bench::printRow("fig7", "achieved", "usr_edge_one_dir",
                    usr_bw / 1e12, "TB/s");
    // Aggregate USR: 4 edges x 2 directions.
    bench::printRow("fig7", "derived", "usr_aggregate",
                    usr_bw * 8 / 1e12, "TB/s");

    Package io_pkg(&root, "p4", mi300aConfig());
    const double io_bw = x16Bandwidth(io_pkg);
    bench::printRow("fig7", "achieved", "x16_one_dir", io_bw / 1e9,
                    "GB/s");
    bench::printRow("fig7", "peak", "x16_socket_total",
                    io_pkg.ioBandwidthGBs(), "GB/s");

    const bool pass = hbm_bw > 0.5 * hbm_pkg.peakMemBandwidth() &&
                      hbm_bw <= 1.05 * hbm_pkg.peakMemBandwidth() &&
                      cache_bw > 1.3 * hbm_bw &&
                      usr_bw * 8 > 1e12 &&
                      io_bw > 0.8 * 64e9 && io_bw <= 1.05 * 64e9;
    bench::shapeCheck(
        "fig7", pass,
        "HBM streams near 5.3 TB/s; cache-resident traffic exceeds "
        "HBM bandwidth (toward 17 TB/s); USR delivers multiple TB/s; "
        "x16 delivers ~64 GB/s per direction");
}

void
BM_PackageStream(benchmark::State &state)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "bm", mi300aConfig());
    Tick t = 0;
    Addr a = 0;
    for (auto _ : state) {
        auto r = pkg.memAccessFrom(pkg.xcdNode(0), t, a, 256, false);
        benchmark::DoNotOptimize(r.complete);
        a += 256;
    }
}
BENCHMARK(BM_PackageStream);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
