/**
 * @file
 * Reproduces paper Fig. 14: the same init -> kernel -> post-process
 * pipeline on (a) a CPU-only node, (b) a CPU plus discrete GPU with
 * separate memories (hipMalloc/hipMemcpy over the host link), and
 * (c) an APU with unified memory (zero copy). Sweeps the data size
 * to show the discrete node's copy overhead growing with footprint.
 *
 * Sweep-shaped: each data size is an independent SweepCase
 * (--jobs N, --json FILE).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

/** Fig. 14's pipeline: CPU init, GPU kernel, CPU post-process. */
Workload
initKernelPost(std::uint64_t bytes)
{
    Workload w;
    w.name = "init_kernel_post";
    w.footprint_bytes = 2 * bytes;

    Phase init;
    init.name = "cpu_init";
    init.device = PhaseDevice::cpu;
    init.cpu_scalar_ops = bytes / 4;
    init.cpu_bytes_written = bytes;
    init.to_gpu_bytes = bytes;          // copied on discrete systems
    w.phases.push_back(init);

    Phase kernel;
    kernel.name = "gpu_kernel";
    kernel.device = PhaseDevice::gpuThenCpu;
    // An iterative solver: 50 sweeps over the data between host
    // exchanges — the amortization that makes offload worthwhile on
    // a discrete GPU at all.
    const unsigned sweeps = 50;
    kernel.gpu_flops = bytes * 2 * sweeps;
    kernel.dtype = gpu::DataType::fp64;
    kernel.pipe = gpu::Pipe::vector;
    kernel.gpu_bytes_read = bytes * sweeps;
    kernel.gpu_bytes_written = bytes;
    kernel.to_cpu_bytes = bytes;        // results back to the host
    kernel.cpu_flops = bytes / 8;
    kernel.cpu_bytes_read = bytes;
    w.phases.push_back(kernel);
    return w;
}

/** Run the pipeline on all three machines at one data size. */
void
sizeCase(std::uint64_t mb, bench::RowSink &sink)
{
    const RooflineEngine cpu_only(epycCpuModel());
    const RooflineEngine discrete(mi250xNodeModel());
    const RooflineEngine apu(mi300aModel());

    const auto w = initKernelPost(mb << 20);
    const std::string x = std::to_string(mb) + "MB";

    const auto rc = cpu_only.run(w, CouplingMode::coarseSync);
    const auto rd = discrete.run(w, CouplingMode::coarseSync);
    const auto ra = apu.run(w, CouplingMode::coarseSync);
    sink.row("cpu_only", x, rc.total_s * 1e3, "ms");
    sink.row("discrete_gpu", x, rd.total_s * 1e3, "ms");
    sink.row("apu_unified", x, ra.total_s * 1e3, "ms");
    sink.row("discrete_copy_time", x, rd.transferSeconds() * 1e3,
             "ms");
    sink.row("apu_copy_time", x, ra.transferSeconds() * 1e3, "ms");
}

void
report(const bench::SweepArgs &args)
{
    bench::printHeader(
        "fig14", "CPU-only vs discrete GPU vs APU (unified memory)");

    const std::vector<std::uint64_t> sizes = {64, 256, 1024, 4096};
    std::vector<bench::SweepCase> cases;
    for (const std::uint64_t mb : sizes) {
        cases.push_back({"size_" + std::to_string(mb) + "MB",
                         [mb](bench::RowSink &s) { sizeCase(mb, s); }});
    }

    const auto outcomes = bench::runCases("fig14", cases, args);

    bool pass = true;
    for (const std::uint64_t mb : sizes) {
        const std::string x = std::to_string(mb) + "MB";
        const double rc = bench::findRow(outcomes, "cpu_only", x);
        const double rd = bench::findRow(outcomes, "discrete_gpu", x);
        const double ra = bench::findRow(outcomes, "apu_unified", x);
        // The APU always wins and never copies.
        if (ra <= 0 || ra >= rd || ra >= rc)
            pass = false;
        if (bench::findRow(outcomes, "apu_copy_time", x) != 0.0)
            pass = false;
    }
    // At the largest size the discrete GPU beats the CPU despite the
    // copy tax, copies remain a visible cost, and the APU keeps the
    // GPU win without that tax.
    const std::string last = std::to_string(sizes.back()) + "MB";
    const double rc_s = bench::findRow(outcomes, "cpu_only", last);
    const double rd_s = bench::findRow(outcomes, "discrete_gpu", last);
    const double ra_s = bench::findRow(outcomes, "apu_unified", last);
    const double copy_fraction =
        bench::findRow(outcomes, "discrete_copy_time", last) / rd_s;
    if (!(rd_s < rc_s) || copy_fraction < 0.2 ||
        ra_s > rd_s * (1.0 - copy_fraction) * 1.5) {
        pass = false;
    }

    bench::shapeCheck(
        "fig14", pass,
        "unified memory removes the hipMemcpy traffic entirely; the "
        "discrete node pays a growing copy tax over its host link "
        "(tens of GB/s) while the APU touches HBM directly");
}

void
BM_RooflineRun(benchmark::State &state)
{
    const RooflineEngine apu(mi300aModel());
    const auto w = initKernelPost(256u << 20);
    for (auto _ : state) {
        auto rep = apu.run(w);
        benchmark::DoNotOptimize(rep.total_s);
    }
}
BENCHMARK(BM_RooflineRun);

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto sweep_args = bench::parseSweepArgs(argc, argv);
    report(sweep_args);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
