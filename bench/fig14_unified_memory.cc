/**
 * @file
 * Reproduces paper Fig. 14: the same init -> kernel -> post-process
 * pipeline on (a) a CPU-only node, (b) a CPU plus discrete GPU with
 * separate memories (hipMalloc/hipMemcpy over the host link), and
 * (c) an APU with unified memory (zero copy). Sweeps the data size
 * to show the discrete node's copy overhead growing with footprint.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"

using namespace ehpsim;
using namespace ehpsim::core;
using namespace ehpsim::workloads;

namespace
{

/** Fig. 14's pipeline: CPU init, GPU kernel, CPU post-process. */
Workload
initKernelPost(std::uint64_t bytes)
{
    Workload w;
    w.name = "init_kernel_post";
    w.footprint_bytes = 2 * bytes;

    Phase init;
    init.name = "cpu_init";
    init.device = PhaseDevice::cpu;
    init.cpu_scalar_ops = bytes / 4;
    init.cpu_bytes_written = bytes;
    init.to_gpu_bytes = bytes;          // copied on discrete systems
    w.phases.push_back(init);

    Phase kernel;
    kernel.name = "gpu_kernel";
    kernel.device = PhaseDevice::gpuThenCpu;
    // An iterative solver: 50 sweeps over the data between host
    // exchanges — the amortization that makes offload worthwhile on
    // a discrete GPU at all.
    const unsigned sweeps = 50;
    kernel.gpu_flops = bytes * 2 * sweeps;
    kernel.dtype = gpu::DataType::fp64;
    kernel.pipe = gpu::Pipe::vector;
    kernel.gpu_bytes_read = bytes * sweeps;
    kernel.gpu_bytes_written = bytes;
    kernel.to_cpu_bytes = bytes;        // results back to the host
    kernel.cpu_flops = bytes / 8;
    kernel.cpu_bytes_read = bytes;
    w.phases.push_back(kernel);
    return w;
}

void
report()
{
    bench::printHeader(
        "fig14", "CPU-only vs discrete GPU vs APU (unified memory)");

    const RooflineEngine cpu_only(epycCpuModel());
    const RooflineEngine discrete(mi250xNodeModel());
    const RooflineEngine apu(mi300aModel());

    bool pass = true;
    double last_copy_fraction = 0;
    double rc_s = 0, rd_s = 0, ra_s = 0;
    for (std::uint64_t mb : {64ull, 256ull, 1024ull, 4096ull}) {
        const auto w = initKernelPost(mb << 20);
        const std::string x = std::to_string(mb) + "MB";

        const auto rc = cpu_only.run(w, CouplingMode::coarseSync);
        const auto rd = discrete.run(w, CouplingMode::coarseSync);
        const auto ra = apu.run(w, CouplingMode::coarseSync);
        bench::printRow("fig14", "cpu_only", x, rc.total_s * 1e3,
                        "ms");
        bench::printRow("fig14", "discrete_gpu", x, rd.total_s * 1e3,
                        "ms");
        bench::printRow("fig14", "apu_unified", x, ra.total_s * 1e3,
                        "ms");
        bench::printRow("fig14", "discrete_copy_time", x,
                        rd.transferSeconds() * 1e3, "ms");

        // The APU always wins and never copies.
        if (ra.total_s >= rd.total_s || ra.total_s >= rc.total_s)
            pass = false;
        if (ra.transferSeconds() != 0.0)
            pass = false;
        last_copy_fraction = rd.transferSeconds() / rd.total_s;
        rc_s = rc.total_s;
        rd_s = rd.total_s;
        ra_s = ra.total_s;
    }
    // At the largest size the discrete GPU beats the CPU despite the
    // copy tax, copies remain a visible cost, and the APU keeps the
    // GPU win without that tax.
    if (!(rd_s < rc_s) || last_copy_fraction < 0.2 ||
        ra_s > rd_s * (1.0 - last_copy_fraction) * 1.5) {
        pass = false;
    }

    bench::shapeCheck(
        "fig14", pass,
        "unified memory removes the hipMemcpy traffic entirely; the "
        "discrete node pays a growing copy tax over its host link "
        "(tens of GB/s) while the APU touches HBM directly");
}

void
BM_RooflineRun(benchmark::State &state)
{
    const RooflineEngine apu(mi300aModel());
    const auto w = initKernelPost(256u << 20);
    for (auto _ : state) {
        auto rep = apu.run(w);
        benchmark::DoNotOptimize(rep.total_s);
    }
}
BENCHMARK(BM_RooflineRun);

} // anonymous namespace

int
main(int argc, char **argv)
{
    report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
