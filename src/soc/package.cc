#include "soc/package.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace soc
{

Package::Package(SimObject *parent, const std::string &name,
                 const ProductConfig &cfg, EventQueue *eq,
                 mem::NumaMode numa)
    : SimObject(parent, name, eq), cfg_(cfg)
{
    if (cfg.totalStacks() != cfg.hbm.num_stacks)
        fatal("product '", cfg.name, "': IODs attach ",
              cfg.totalStacks(), " stacks but the memory config has ",
              cfg.hbm.num_stacks);

    net_ = std::make_unique<fabric::Network>(this, "fabric");

    // --- Fabric nodes ------------------------------------------------
    const unsigned n_iods = static_cast<unsigned>(cfg.iods.size());
    for (unsigned i = 0; i < n_iods; ++i) {
        iod_nodes_.push_back(net_->addNode(
            "iod" + std::to_string(i), fabric::NodeKind::iod));
    }
    unsigned xcd_id = 0, ccd_id = 0, stack_id = 0;
    std::vector<unsigned> xcd_iod, ccd_iod, stack_iod;
    for (unsigned i = 0; i < n_iods; ++i) {
        for (unsigned j = 0; j < cfg.iods[i].num_xcds; ++j) {
            xcd_nodes_.push_back(net_->addNode(
                "xcd" + std::to_string(xcd_id++),
                fabric::NodeKind::xcd));
            xcd_iod.push_back(i);
        }
        for (unsigned j = 0; j < cfg.iods[i].num_ccds; ++j) {
            ccd_nodes_.push_back(net_->addNode(
                "ccd" + std::to_string(ccd_id++),
                fabric::NodeKind::ccd));
            ccd_iod.push_back(i);
        }
        for (unsigned j = 0; j < cfg.iods[i].num_hbm_stacks; ++j) {
            stack_nodes_.push_back(net_->addNode(
                "hbm" + std::to_string(stack_id++),
                fabric::NodeKind::hbmStack));
            stack_iod.push_back(i);
        }
        for (unsigned k = 0; k < cfg.io_links_per_iod; ++k) {
            io_nodes_.push_back(net_->addNode(
                "io" + std::to_string(i) + "_" + std::to_string(k),
                fabric::NodeKind::ioPort));
        }
    }

    // --- Fabric links ------------------------------------------------
    for (std::size_t x = 0; x < xcd_nodes_.size(); ++x)
        net_->connect(xcd_nodes_[x], iod_nodes_[xcd_iod[x]],
                      cfg.compute_link);
    for (std::size_t c = 0; c < ccd_nodes_.size(); ++c)
        net_->connect(ccd_nodes_[c], iod_nodes_[ccd_iod[c]],
                      cfg.compute_link);
    for (std::size_t s = 0; s < stack_nodes_.size(); ++s)
        net_->connect(stack_nodes_[s], iod_nodes_[stack_iod[s]],
                      cfg.hbm_link);
    for (unsigned i = 0; i + 1 < n_iods; ++i)
        net_->connect(iod_nodes_[i], iod_nodes_[i + 1], cfg.iod_link);
    for (const auto &[a, b] : cfg.extra_iod_edges)
        net_->connect(iod_nodes_[a], iod_nodes_[b], cfg.iod_link);

    fabric::LinkParams io_link = fabric::serdesIfLinkParams();
    io_link.bandwidth = gbps(cfg.io_link_gbps);
    unsigned io_idx = 0;
    for (unsigned i = 0; i < n_iods; ++i) {
        for (unsigned k = 0; k < cfg.io_links_per_iod; ++k)
            net_->connect(io_nodes_[io_idx++], iod_nodes_[i], io_link);
    }

    // --- Memory ------------------------------------------------------
    stack_iod_ = stack_iod;
    mem::HbmSubsystemParams hp = cfg.hbm;
    hp.numa = numa;
    map_ = std::make_unique<mem::InterleaveMap>(
        hp.num_stacks, hp.channels_per_stack, hp.capacity_bytes,
        hp.numa);
    const unsigned n_channels = map_->numChannels();
    for (unsigned ch = 0; ch < n_channels; ++ch) {
        channels_.push_back(std::make_unique<mem::DramChannel>(
            this, "ch" + std::to_string(ch), hp.channel));
        if (hp.enable_infinity_cache) {
            // The Infinity Cache SRAM lives in the IOD (paper
            // Fig. 10); its misses cross the 2.5D interposer to the
            // stack's channel.
            const unsigned stack = ch / hp.channels_per_stack;
            channel_links_.push_back(
                std::make_unique<fabric::RemoteMemDevice>(
                    this, "ch" + std::to_string(ch) + "_phy",
                    net_.get(), iod_nodes_[stack_iod_[stack]],
                    stack_nodes_[stack], channels_.back().get()));
            slices_.push_back(std::make_unique<mem::InfinityCacheSlice>(
                this, "mall" + std::to_string(ch), hp.cache,
                channel_links_.back().get()));
        }
    }

    // --- Compute -----------------------------------------------------
    for (std::size_t x = 0; x < xcd_nodes_.size(); ++x) {
        xcd_ports_.push_back(std::make_unique<MemPort>(
            this, "xcd" + std::to_string(x) + "_memport",
            xcd_nodes_[x]));
        xcds_.push_back(std::make_unique<gpu::Xcd>(
            this, "xcd" + std::to_string(x), cfg.xcd,
            xcd_ports_.back().get()));
    }
    for (std::size_t c = 0; c < ccd_nodes_.size(); ++c) {
        ccd_ports_.push_back(std::make_unique<MemPort>(
            this, "ccd" + std::to_string(c) + "_memport",
            ccd_nodes_[c]));
        ccds_.push_back(std::make_unique<cpu::Ccd>(
            this, "ccd" + std::to_string(c), cfg.ccd,
            ccd_ports_.back().get()));
    }

    // --- Coherence ---------------------------------------------------
    scopes_ = std::make_unique<coherence::ScopeController>(this,
                                                           "scopes");
    for (auto &x : xcds_)
        scopes_->addXcdCaches(x->l1Caches(), x->l2());
    filter_ = std::make_unique<coherence::ProbeFilter>(
        this, "probe_filter", /*capacity=*/0, /*line=*/64);
}

mem::AccessResult
Package::memAccessFrom(fabric::NodeId src, Tick when, Addr addr,
                       std::uint64_t bytes, bool write)
{
    constexpr std::uint64_t stripe = 256;
    constexpr std::uint64_t control = 32;

    mem::AccessResult res;
    res.hit = true;
    Tick complete = when;
    Addr a = addr;
    std::uint64_t remaining = bytes;
    const unsigned cps = map_->channelsPerStack();
    while (remaining > 0) {
        const std::uint64_t chunk =
            std::min(remaining, stripe - (a % stripe));
        const auto loc = map_->locate(a);
        const unsigned stack = loc.channel / cps;
        // With an Infinity Cache the request targets the cache slice
        // in the stack's IOD; without one it goes to the stack
        // itself (MI250X-style).
        const fabric::NodeId dst =
            slices_.empty() ? stack_nodes_[stack]
                            : iod_nodes_[stack_iod_[stack]];

        // Request across the fabric (payload rides along for writes).
        Tick t = net_->send(when, src, dst,
                            control + (write ? chunk : 0)).arrival;
        mem::AccessResult r;
        if (!slices_.empty())
            r = slices_[loc.channel]->access(t, loc.local, chunk,
                                             write);
        else
            r = channels_[loc.channel]->access(t, loc.local, chunk,
                                               write);
        res.hit = res.hit && r.hit;
        res.bytes_below += r.bytes_below;
        // Response (payload for reads, ack for writes).
        t = net_->send(r.complete, dst, src,
                       control + (write ? 0 : chunk)).arrival;
        complete = std::max(complete, t);
        a += chunk;
        remaining -= chunk;
    }
    res.complete = complete;
    return res;
}

std::vector<unsigned>
Package::supportedPartitionCounts() const
{
    const unsigned n = numXcds();
    if (n == 6)
        return {1, 3};              // MI300A (paper Fig. 17a)
    if (n == 8)
        return {1, 2, 4, 8};        // MI300X (paper Fig. 17b)
    std::vector<unsigned> out = {1};
    if (n > 1)
        out.push_back(n);
    return out;
}

hsa::Partition *
Package::unifiedPartition()
{
    auto parts = partitionInto(1);
    return parts[0];
}

std::vector<hsa::Partition *>
Package::partitionInto(unsigned n)
{
    const auto legal = supportedPartitionCounts();
    if (std::find(legal.begin(), legal.end(), n) == legal.end())
        fatal(cfg_.name, " does not support ", n, " partitions");
    const unsigned per = numXcds() / n;

    std::vector<hsa::Partition *> out;
    for (unsigned p = 0; p < n; ++p) {
        std::vector<gpu::Xcd *> xs;
        std::vector<fabric::NodeId> nodes;
        std::vector<unsigned> scope_ids;
        for (unsigned j = 0; j < per; ++j) {
            const unsigned g = p * per + j;
            xs.push_back(xcds_[g].get());
            nodes.push_back(xcd_nodes_[g]);
            scope_ids.push_back(g);
        }
        partitions_.push_back(std::make_unique<hsa::Partition>(
            this,
            "part" + std::to_string(partitions_.size()),
            std::move(xs), scopes_.get(), net_.get(),
            std::move(nodes), iod_nodes_[0], std::move(scope_ids)));
        out.push_back(partitions_.back().get());
    }
    return out;
}

double
Package::peakGpuFlops(gpu::Pipe pipe, gpu::DataType dt,
                      bool sparse) const
{
    double f = 0;
    for (const auto &x : xcds_)
        f += x->peakFlops(pipe, dt, sparse);
    return f;
}

double
Package::peakCpuFlops(bool fp64) const
{
    double f = 0;
    for (const auto &c : ccds_)
        f += c->peakFlops(fp64);
    return f;
}

BytesPerSecond
Package::peakMemBandwidth() const
{
    return cfg_.hbm.channel.bandwidth *
           static_cast<double>(map_->numChannels());
}

BytesPerSecond
Package::peakCacheBandwidth() const
{
    if (slices_.empty())
        return peakMemBandwidth();
    return cfg_.hbm.cache.hit_bandwidth *
           static_cast<double>(map_->numChannels());
}

double
Package::ioBandwidthGBs() const
{
    const double links = static_cast<double>(cfg_.iods.size()) *
                         cfg_.io_links_per_iod;
    return links * cfg_.io_link_gbps * 2.0;
}

unsigned
Package::totalCus() const
{
    unsigned n = 0;
    for (const auto &x : xcds_)
        n += x->numActiveCus();
    return n;
}

double
Package::cacheHitRate() const
{
    if (slices_.empty())
        return 0.0;
    double h = 0, m = 0;
    for (const auto &s : slices_) {
        h += s->hits.value();
        m += s->misses.value();
    }
    const double a = h + m;
    return a > 0 ? h / a : 0.0;
}

} // namespace soc
} // namespace ehpsim
