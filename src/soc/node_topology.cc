#include "soc/node_topology.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace soc
{

NodeTopology::NodeTopology(SimObject *parent, const std::string &name)
    : SimObject(parent, name)
{
    net_ = std::make_unique<fabric::Network>(this, "node_fabric");
}

unsigned
NodeTopology::addEndpoint(const std::string &name, unsigned links,
                          double x16_gbps, bool is_host)
{
    checkMutable("addSocket/addHost");
    names_.push_back(name);
    nodes_.push_back(net_->addNode(name, fabric::NodeKind::device));
    // Every endpoint (socket or host) is its own partition domain:
    // the prospective PDES logical process. Declared before any
    // connect() so cross-domain links feed the lookahead table.
    net_->setNodeDomain(nodes_.back(),
                        static_cast<int>(names_.size() - 1));
    total_links_.push_back(links);
    used_links_.push_back(0);
    link_gbps_.push_back(x16_gbps);
    is_host_.push_back(is_host);
    return static_cast<unsigned>(names_.size() - 1);
}

unsigned
NodeTopology::addSocket(const std::string &name, unsigned num_x16_links,
                        double x16_gbps)
{
    // Each MI300 socket physically exposes eight x16 links (four
    // IF-only plus four IF-or-PCIe, paper Sec. VIII); anything else
    // is a configuration bug, not a modeling choice.
    if (num_x16_links == 0 || num_x16_links > mi300LinksPerSocket) {
        fatal("socket '", name, "': ", num_x16_links,
              " x16 links requested, but an MI300 socket exposes 1..",
              mi300LinksPerSocket);
    }
    return addEndpoint(name, num_x16_links, x16_gbps, false);
}

unsigned
NodeTopology::addHost(const std::string &name)
{
    // Hosts hang off PCIe; give them ample lanes.
    return addEndpoint(name, 16, 64.0, true);
}

void
NodeTopology::connect(unsigned a, unsigned b, unsigned num_x16,
                      bool pcie)
{
    checkMutable("connect");
    if (a >= numEndpoints() || b >= numEndpoints())
        fatal("bad socket indices ", a, ", ", b, " (",
              numEndpoints(), " endpoints)");
    if (a == b)
        fatal("cannot connect '", names_[a], "' to itself");
    if (num_x16 == 0)
        fatal("connect('", names_[a], "', '", names_[b],
              "'): zero x16 links");
    for (unsigned e : {a, b}) {
        if (used_links_[e] + num_x16 > total_links_[e]) {
            fatal("socket '", names_[e], "' out of x16 links: "
                  "connecting '", names_[a], "' <-> '", names_[b],
                  "' needs ", num_x16, " but only ",
                  total_links_[e] - used_links_[e], " of ",
                  total_links_[e], " remain");
        }
    }
    used_links_[a] += num_x16;
    used_links_[b] += num_x16;

    fabric::LinkParams p =
        pcie ? fabric::pcieLinkParams() : fabric::serdesIfLinkParams();
    const double per_dir =
        std::min(link_gbps_[a], link_gbps_[b]) * num_x16;
    p.bandwidth = gbps(per_dir);
    net_->connect(nodes_[a], nodes_[b], p);
    connections_.push_back(SocketLink{a, b, num_x16, pcie});
}

unsigned
NodeTopology::freeLinks(unsigned socket) const
{
    return total_links_[socket] - used_links_[socket];
}

void
NodeTopology::checkMutable(const char *what) const
{
    if (comm_) {
        fatal(name(), ": ", what, " after commGroup(): the "
              "communicator caches routes, so the topology is "
              "frozen once it exists");
    }
}

fabric::NodeId
NodeTopology::nodeId(unsigned endpoint) const
{
    if (endpoint >= numEndpoints())
        fatal("bad endpoint index ", endpoint);
    return nodes_[endpoint];
}

bool
NodeTopology::isHost(unsigned endpoint) const
{
    if (endpoint >= numEndpoints())
        fatal("bad endpoint index ", endpoint);
    return is_host_[endpoint];
}

std::vector<fabric::NodeId>
NodeTopology::deviceRanks() const
{
    std::vector<fabric::NodeId> ranks;
    for (unsigned i = 0; i < numEndpoints(); ++i) {
        if (!is_host_[i])
            ranks.push_back(nodes_[i]);
    }
    return ranks;
}

comm::CommGroup *
NodeTopology::commGroup()
{
    if (!comm_) {
        comm_eq_ = std::make_unique<EventQueue>();
        comm_ = std::make_unique<comm::CommGroup>(
            this, "comm", net_.get(), deviceRanks(), comm_eq_.get());
    }
    return comm_.get();
}

double
NodeTopology::p2pBandwidth(unsigned a, unsigned b) const
{
    // Bottleneck link along the route.
    const auto &path = net_->path(nodes_[a], nodes_[b]);
    double bw = 1e30;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        auto *l = const_cast<fabric::Network *>(net_.get())
                      ->link(path[i], path[i + 1]);
        bw = std::min(bw, l->params().bandwidth);
    }
    return bw;
}

Tick
NodeTopology::p2pLatency(unsigned a, unsigned b)
{
    const auto &path = net_->path(nodes_[a], nodes_[b]);
    Tick t = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        t += net_->link(path[i], path[i + 1])->params().latency;
    return t;
}

Tick
NodeTopology::allToAll(Tick when, std::uint64_t bytes)
{
    // Every device socket streams its per-peer blocks directly;
    // chunked transfers on the event queue contend per link rather
    // than being summed in closed form.
    comm::CommGroup *cg = commGroup();
    const auto op = cg->allToAll(when, bytes, comm::Algorithm::direct);
    cg->waitAll();
    return op->finishTick();
}

double
NodeTopology::bisectionBandwidth() const
{
    // Split endpoints into two halves by index; sum direct-link
    // bandwidth crossing the cut (a standard estimate for the
    // fully-connected topologies of Fig. 18).
    const unsigned half = numEndpoints() / 2;
    double bw = 0;
    for (const auto &c : connections_) {
        const bool a_low = c.a < half;
        const bool b_low = c.b < half;
        if (a_low != b_low) {
            const double per_dir =
                std::min(link_gbps_[c.a], link_gbps_[c.b]) * c.num_x16;
            bw += per_dir * 1e9;
        }
    }
    return bw;
}

std::unique_ptr<NodeTopology>
NodeTopology::mi300aQuadNode(SimObject *parent)
{
    auto node = std::make_unique<NodeTopology>(parent,
                                               "mi300a_quad_node");
    for (unsigned i = 0; i < 4; ++i)
        node->addSocket("mi300a" + std::to_string(i), 8);
    // Fully connected, two x16 IF links per pair: uses 6 of the 8
    // links per socket, leaving two for NIC/storage (paper Fig. 18a).
    for (unsigned a = 0; a < 4; ++a) {
        for (unsigned b = a + 1; b < 4; ++b)
            node->connect(a, b, 2, false);
    }
    return node;
}

std::unique_ptr<NodeTopology>
NodeTopology::mi300xOctoNode(SimObject *parent)
{
    auto node = std::make_unique<NodeTopology>(parent,
                                               "mi300x_octo_node");
    for (unsigned i = 0; i < 8; ++i)
        node->addSocket("mi300x" + std::to_string(i), 8);
    const unsigned host0 = node->addHost("epyc0");
    const unsigned host1 = node->addHost("epyc1");
    // Fully connected among the accelerators: one x16 IF link per
    // pair consumes 7 links per socket (paper Fig. 18b).
    for (unsigned a = 0; a < 8; ++a) {
        for (unsigned b = a + 1; b < 8; ++b)
            node->connect(a, b, 1, false);
    }
    // The last link of each accelerator is PCIe back to a host.
    for (unsigned a = 0; a < 8; ++a)
        node->connect(a, a < 4 ? host0 : host1, 1, true);
    return node;
}

} // namespace soc
} // namespace ehpsim
