#include "soc/node_topology.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace soc
{

NodeTopology::NodeTopology(SimObject *parent, const std::string &name)
    : SimObject(parent, name)
{
    net_ = std::make_unique<fabric::Network>(this, "node_fabric");
}

unsigned
NodeTopology::addSocket(const std::string &name, unsigned num_x16_links,
                        double x16_gbps)
{
    names_.push_back(name);
    nodes_.push_back(net_->addNode(name, fabric::NodeKind::device));
    total_links_.push_back(num_x16_links);
    used_links_.push_back(0);
    link_gbps_.push_back(x16_gbps);
    return static_cast<unsigned>(names_.size() - 1);
}

unsigned
NodeTopology::addHost(const std::string &name)
{
    // Hosts hang off PCIe; give them ample lanes.
    return addSocket(name, 16, 64.0);
}

void
NodeTopology::connect(unsigned a, unsigned b, unsigned num_x16,
                      bool pcie)
{
    if (a >= numEndpoints() || b >= numEndpoints())
        fatal("bad socket indices ", a, ", ", b);
    if (used_links_[a] + num_x16 > total_links_[a] ||
        used_links_[b] + num_x16 > total_links_[b]) {
        fatal("socket out of x16 links: ", names_[a], " or ",
              names_[b]);
    }
    used_links_[a] += num_x16;
    used_links_[b] += num_x16;

    fabric::LinkParams p =
        pcie ? fabric::pcieLinkParams() : fabric::serdesIfLinkParams();
    const double per_dir =
        std::min(link_gbps_[a], link_gbps_[b]) * num_x16;
    p.bandwidth = gbps(per_dir);
    net_->connect(nodes_[a], nodes_[b], p);
    connections_.push_back(SocketLink{a, b, num_x16, pcie});
}

unsigned
NodeTopology::freeLinks(unsigned socket) const
{
    return total_links_[socket] - used_links_[socket];
}

double
NodeTopology::p2pBandwidth(unsigned a, unsigned b) const
{
    // Bottleneck link along the route.
    const auto &path = net_->path(nodes_[a], nodes_[b]);
    double bw = 1e30;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        auto *l = const_cast<fabric::Network *>(net_.get())
                      ->link(path[i], path[i + 1]);
        bw = std::min(bw, l->params().bandwidth);
    }
    return bw;
}

Tick
NodeTopology::p2pLatency(unsigned a, unsigned b)
{
    const auto &path = net_->path(nodes_[a], nodes_[b]);
    Tick t = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        t += net_->link(path[i], path[i + 1])->params().latency;
    return t;
}

Tick
NodeTopology::allToAll(Tick when, std::uint64_t bytes)
{
    Tick done = when;
    for (unsigned a = 0; a < numEndpoints(); ++a) {
        for (unsigned b = 0; b < numEndpoints(); ++b) {
            if (a == b)
                continue;
            const auto r = net_->send(when, nodes_[a], nodes_[b],
                                      bytes);
            done = std::max(done, r.arrival);
        }
    }
    return done;
}

double
NodeTopology::bisectionBandwidth() const
{
    // Split endpoints into two halves by index; sum direct-link
    // bandwidth crossing the cut (a standard estimate for the
    // fully-connected topologies of Fig. 18).
    const unsigned half = numEndpoints() / 2;
    double bw = 0;
    for (const auto &c : connections_) {
        const bool a_low = c.a < half;
        const bool b_low = c.b < half;
        if (a_low != b_low) {
            const double per_dir =
                std::min(link_gbps_[c.a], link_gbps_[c.b]) * c.num_x16;
            bw += per_dir * 1e9;
        }
    }
    return bw;
}

std::unique_ptr<NodeTopology>
NodeTopology::mi300aQuadNode(SimObject *parent)
{
    auto node = std::make_unique<NodeTopology>(parent,
                                               "mi300a_quad_node");
    for (unsigned i = 0; i < 4; ++i)
        node->addSocket("mi300a" + std::to_string(i), 8);
    // Fully connected, two x16 IF links per pair: uses 6 of the 8
    // links per socket, leaving two for NIC/storage (paper Fig. 18a).
    for (unsigned a = 0; a < 4; ++a) {
        for (unsigned b = a + 1; b < 4; ++b)
            node->connect(a, b, 2, false);
    }
    return node;
}

std::unique_ptr<NodeTopology>
NodeTopology::mi300xOctoNode(SimObject *parent)
{
    auto node = std::make_unique<NodeTopology>(parent,
                                               "mi300x_octo_node");
    for (unsigned i = 0; i < 8; ++i)
        node->addSocket("mi300x" + std::to_string(i), 8);
    const unsigned host0 = node->addHost("epyc0");
    const unsigned host1 = node->addHost("epyc1");
    // Fully connected among the accelerators: one x16 IF link per
    // pair consumes 7 links per socket (paper Fig. 18b).
    for (unsigned a = 0; a < 8; ++a) {
        for (unsigned b = a + 1; b < 8; ++b)
            node->connect(a, b, 1, false);
    }
    // The last link of each accelerator is PCIe back to a host.
    for (unsigned a = 0; a < 8; ++a)
        node->connect(a, a < 4 ? host0 : host1, 1, true);
    return node;
}

} // namespace soc
} // namespace ehpsim
