#include "soc/multi_socket.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace soc
{

MultiSocketNode::MultiSocketNode(SimObject *parent,
                                 const std::string &name,
                                 const ProductConfig &cfg,
                                 unsigned num_sockets,
                                 unsigned x16_per_pair)
    : SimObject(parent, name),
      local_accesses(this, "local_accesses",
                     "flat accesses served by the local socket"),
      remote_accesses(this, "remote_accesses",
                      "flat accesses crossing IF links"),
      remote_bytes(this, "remote_bytes",
                   "bytes moved between sockets"),
      socket_capacity_(cfg.hbm.capacity_bytes)
{
    if (num_sockets < 2)
        fatal("a multi-socket node needs at least two sockets");
    topo_ = std::make_unique<NodeTopology>(this, "topology");
    for (unsigned s = 0; s < num_sockets; ++s) {
        sockets_.push_back(std::make_unique<Package>(
            this, "socket" + std::to_string(s), cfg));
        topo_->addSocket("s" + std::to_string(s),
                         cfg.iods.size() * cfg.io_links_per_iod,
                         cfg.io_link_gbps);
    }
    for (unsigned a = 0; a < num_sockets; ++a) {
        for (unsigned b = a + 1; b < num_sockets; ++b)
            topo_->connect(a, b, x16_per_pair, false);
    }
}

std::uint64_t
MultiSocketNode::totalCapacity() const
{
    return socket_capacity_ * sockets_.size();
}

unsigned
MultiSocketNode::socketOf(Addr addr) const
{
    const auto s = static_cast<unsigned>(addr / socket_capacity_);
    if (s >= sockets_.size())
        fatal("flat address 0x", std::hex, addr,
              " beyond node capacity");
    return s;
}

mem::AccessResult
MultiSocketNode::accessFlat(unsigned from_socket, unsigned xcd_index,
                            Tick when, Addr addr,
                            std::uint64_t bytes, bool write)
{
    const unsigned home = socketOf(addr);
    const Addr local = addr % socket_capacity_;
    Package &from = *sockets_[from_socket];

    if (home == from_socket) {
        ++local_accesses;
        return from.memAccessFrom(from.xcdNode(xcd_index), when,
                                  local, bytes, write);
    }

    ++remote_accesses;
    remote_bytes += static_cast<double>(bytes);
    auto *net = topo_->network();
    const auto a = net->nodeByName("s" + std::to_string(from_socket));
    const auto b = net->nodeByName("s" + std::to_string(home));

    // Request (payload rides along for writes).
    constexpr std::uint64_t control = 32;
    Tick t = net->send(when, a, b, control + (write ? bytes : 0))
                 .arrival;
    // The remote package serves it from its own fabric entry (the
    // IF link lands on an IOD's I/O port).
    Package &target = *sockets_[home];
    auto r = target.memAccessFrom(target.ioNode(0), t, local, bytes,
                                  write);
    // Response.
    t = net->send(r.complete, b, a, control + (write ? 0 : bytes))
            .arrival;
    r.complete = t;
    return r;
}

Tick
MultiSocketNode::crossSocketHandoff(Tick when, unsigned producer,
                                    unsigned consumer)
{
    if (producer >= numSockets() || consumer >= numSockets())
        fatal("bad socket indices");
    // Producer releases at system scope: every XCD flushes to the
    // visibility point (software coherence, Sec. IV.D).
    Package &prod = *sockets_[producer];
    Tick released = when;
    for (unsigned x = 0; x < prod.numXcds(); ++x) {
        const auto op = prod.scopes()->release(
            when, x, coherence::Scope::system);
        released = std::max(released, op.complete);
    }
    // Flag crosses the inter-socket link.
    auto *net = topo_->network();
    const auto a = net->nodeByName("s" + std::to_string(producer));
    const auto b = net->nodeByName("s" + std::to_string(consumer));
    const Tick flag = net->send(released, a, b, 64, true).arrival;
    // Consumer acquires at system scope.
    Package &cons = *sockets_[consumer];
    Tick acquired = flag;
    for (unsigned x = 0; x < cons.numXcds(); ++x) {
        const auto op = cons.scopes()->acquire(
            flag, x, coherence::Scope::system);
        acquired = std::max(acquired, op.complete);
    }
    return acquired;
}

} // namespace soc
} // namespace ehpsim
