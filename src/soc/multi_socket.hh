/**
 * @file
 * Multi-socket shared-memory nodes (paper Sec. VIII, Fig. 18a).
 *
 * "Each MI300A has direct load-store access to all HBM across all
 * four modules (i.e., flat physical address space)." A
 * MultiSocketNode owns several Packages plus a node-level
 * NodeTopology; the flat physical address space is split into one
 * contiguous range per socket, and accesses to a remote socket's
 * range cross the inter-socket Infinity Fabric links before entering
 * the remote package's memory system. GPUs across sockets are
 * software coherent (Sec. IV.D), which shows up as release/acquire
 * costs at the system scope rather than hardware probes.
 */

#ifndef EHPSIM_SOC_MULTI_SOCKET_HH
#define EHPSIM_SOC_MULTI_SOCKET_HH

#include <memory>
#include <vector>

#include "soc/node_topology.hh"
#include "soc/package.hh"

namespace ehpsim
{
namespace soc
{

class MultiSocketNode : public SimObject
{
  public:
    /**
     * Build @p num_sockets packages of @p cfg, fully connected with
     * @p x16_per_pair IF links per socket pair.
     */
    MultiSocketNode(SimObject *parent, const std::string &name,
                    const ProductConfig &cfg, unsigned num_sockets,
                    unsigned x16_per_pair);

    unsigned numSockets() const
    {
        return static_cast<unsigned>(sockets_.size());
    }

    Package &socket(unsigned i) { return *sockets_[i]; }

    NodeTopology &topology() { return *topo_; }

    /** Total flat address space across all sockets. */
    std::uint64_t totalCapacity() const;

    /** Socket owning flat address @p addr. */
    unsigned socketOf(Addr addr) const;

    /**
     * Flat load-store access from a compute die on @p from_socket:
     * local addresses enter the local package directly; remote ones
     * pay the inter-socket IF links in both directions.
     * @param xcd_index Requester XCD on the originating socket.
     */
    mem::AccessResult accessFlat(unsigned from_socket,
                                 unsigned xcd_index, Tick when,
                                 Addr addr, std::uint64_t bytes,
                                 bool write);

    /**
     * Cross-socket GPU synchronization (software coherence): the
     * producing socket releases at system scope, a flag message
     * crosses the IF link, the consumer acquires. @return the tick
     * at which the consumer may proceed.
     */
    Tick crossSocketHandoff(Tick when, unsigned producer,
                            unsigned consumer);

    /** @{ statistics */
    stats::Scalar local_accesses;
    stats::Scalar remote_accesses;
    stats::Scalar remote_bytes;
    /** @} */

  private:
    std::vector<std::unique_ptr<Package>> sockets_;
    std::unique_ptr<NodeTopology> topo_;
    std::uint64_t socket_capacity_;
};

} // namespace soc
} // namespace ehpsim

#endif // EHPSIM_SOC_MULTI_SOCKET_HH
