/**
 * @file
 * A full processor package: chiplets + fabric + memory, built from a
 * ProductConfig.
 *
 * The Package instantiates the Infinity Fabric graph (IOD nodes,
 * compute-die nodes, HBM-stack nodes, I/O nodes), the HBM channels
 * and Infinity Cache slices grouped under their stacks, the XCDs and
 * CCDs whose cache hierarchies bottom out in fabric-routed memory
 * ports, the GPU scope controller, the CPU probe filter, and the
 * HSA partitions (paper Figs. 5, 16, 17).
 */

#ifndef EHPSIM_SOC_PACKAGE_HH
#define EHPSIM_SOC_PACKAGE_HH

#include <memory>
#include <vector>

#include "coherence/gpu_scope.hh"
#include "coherence/probe_filter.hh"
#include "cpu/ccd.hh"
#include "fabric/network.hh"
#include "fabric/remote_device.hh"
#include "gpu/xcd.hh"
#include "hsa/partition.hh"
#include "mem/dram.hh"
#include "mem/infinity_cache.hh"
#include "mem/interleave.hh"
#include "soc/product_config.hh"

namespace ehpsim
{
namespace soc
{

class Package : public SimObject
{
  public:
    Package(SimObject *parent, const std::string &name,
            const ProductConfig &cfg, EventQueue *eq = nullptr,
            mem::NumaMode numa = mem::NumaMode::nps1);

    const ProductConfig &config() const { return cfg_; }

    fabric::Network *network() { return net_.get(); }

    const mem::InterleaveMap &memMap() const { return *map_; }

    unsigned numXcds() const
    {
        return static_cast<unsigned>(xcds_.size());
    }

    unsigned numCcds() const
    {
        return static_cast<unsigned>(ccds_.size());
    }

    gpu::Xcd *xcd(unsigned i) { return xcds_[i].get(); }

    cpu::Ccd *ccd(unsigned i) { return ccds_[i].get(); }

    coherence::ScopeController *scopes() { return scopes_.get(); }

    coherence::ProbeFilter *probeFilter() { return filter_.get(); }

    /** @{ fabric node ids */
    fabric::NodeId iodNode(unsigned i) const { return iod_nodes_[i]; }

    fabric::NodeId xcdNode(unsigned i) const { return xcd_nodes_[i]; }

    fabric::NodeId ccdNode(unsigned i) const { return ccd_nodes_[i]; }

    fabric::NodeId stackNode(unsigned s) const
    {
        return stack_nodes_[s];
    }

    unsigned numIoPorts() const
    {
        return static_cast<unsigned>(io_nodes_.size());
    }

    fabric::NodeId ioNode(unsigned k) const { return io_nodes_[k]; }
    /** @} */

    /**
     * A fabric-routed memory access originating at node @p src
     * (the package's load/store path: interleave, route, Infinity
     * Cache, HBM).
     */
    mem::AccessResult memAccessFrom(fabric::NodeId src, Tick when,
                                    Addr addr, std::uint64_t bytes,
                                    bool write);

    /** Memory port used by XCD @p i's L2 misses. */
    mem::MemDevice *xcdMemPort(unsigned i)
    {
        return xcd_ports_[i].get();
    }

    /** Memory port used by CCD @p i's L3 misses. */
    mem::MemDevice *ccdMemPort(unsigned i)
    {
        return ccd_ports_[i].get();
    }

    /** @{ partitioning (paper Fig. 17) */

    /** Legal partition counts for this product. */
    std::vector<unsigned> supportedPartitionCounts() const;

    /** The single unified partition over every XCD. */
    hsa::Partition *unifiedPartition();

    /**
     * Split the XCDs into @p n equal partitions (fatal if not a
     * legal count). Partition objects are owned by the package.
     */
    std::vector<hsa::Partition *> partitionInto(unsigned n);
    /** @} */

    /** @{ headline metrics (paper Fig. 19) */
    double peakGpuFlops(gpu::Pipe pipe, gpu::DataType dt,
                        bool sparse = false) const;

    double peakCpuFlops(bool fp64 = true) const;

    BytesPerSecond peakMemBandwidth() const;

    BytesPerSecond peakCacheBandwidth() const;

    std::uint64_t memCapacity() const
    {
        return cfg_.hbm.capacity_bytes;
    }

    /** Aggregate x16 I/O bandwidth, both directions (GB/s). */
    double ioBandwidthGBs() const;

    unsigned totalCus() const;
    /** @} */

    mem::InfinityCacheSlice *slice(unsigned ch)
    {
        return ch < slices_.size() ? slices_[ch].get() : nullptr;
    }

    mem::DramChannel *channel(unsigned ch)
    {
        return channels_[ch].get();
    }

    /** Aggregate Infinity-Cache hit rate (0 when absent). */
    double cacheHitRate() const;

  private:
    /** Memory port: a MemDevice bound to an originating node. */
    class MemPort : public mem::MemDevice
    {
      public:
        MemPort(Package *pkg, const std::string &name,
                fabric::NodeId src)
            : mem::MemDevice(pkg, name), pkg_(pkg), src_(src)
        {}

        mem::AccessResult
        access(Tick when, Addr addr, std::uint64_t bytes,
               bool write) override
        {
            return pkg_->memAccessFrom(src_, when, addr, bytes,
                                       write);
        }

      private:
        Package *pkg_;
        fabric::NodeId src_;
    };

    ProductConfig cfg_;
    std::unique_ptr<fabric::Network> net_;
    std::unique_ptr<mem::InterleaveMap> map_;

    std::vector<fabric::NodeId> iod_nodes_;
    std::vector<fabric::NodeId> xcd_nodes_;
    std::vector<fabric::NodeId> ccd_nodes_;
    std::vector<fabric::NodeId> stack_nodes_;
    std::vector<fabric::NodeId> io_nodes_;

    std::vector<unsigned> stack_iod_;   ///< owning IOD per stack
    std::vector<std::unique_ptr<mem::DramChannel>> channels_;
    /** Cache-miss path: IOD -> interposer -> stack's channel. */
    std::vector<std::unique_ptr<fabric::RemoteMemDevice>>
        channel_links_;
    std::vector<std::unique_ptr<mem::InfinityCacheSlice>> slices_;

    std::vector<std::unique_ptr<MemPort>> xcd_ports_;
    std::vector<std::unique_ptr<MemPort>> ccd_ports_;

    std::vector<std::unique_ptr<gpu::Xcd>> xcds_;
    std::vector<std::unique_ptr<cpu::Ccd>> ccds_;

    std::unique_ptr<coherence::ScopeController> scopes_;
    std::unique_ptr<coherence::ProbeFilter> filter_;

    std::vector<std::unique_ptr<hsa::Partition>> partitions_;
};

} // namespace soc
} // namespace ehpsim

#endif // EHPSIM_SOC_PACKAGE_HH
