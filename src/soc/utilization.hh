/**
 * @file
 * Bridging the event engine and the power model: build a PowerModel
 * whose components mirror a Package's composition, and extract
 * measured per-component utilizations from a run so the Fig. 12
 * power-shifting behaviour can be driven by simulated workloads
 * instead of hand-written distributions.
 */

#ifndef EHPSIM_SOC_UTILIZATION_HH
#define EHPSIM_SOC_UTILIZATION_HH

#include <vector>

#include "power/power_model.hh"
#include "soc/package.hh"

namespace ehpsim
{
namespace soc
{

/**
 * A PowerModel with one component per XCD and CCD of @p pkg plus
 * the shared memory/fabric/IO components, at the product's TDP.
 * Caller owns the returned object.
 */
power::PowerModel *makePowerModelFor(SimObject *parent, Package &pkg);

/**
 * Measured utilization per component of makePowerModelFor()'s model,
 * over the window [0, span]:
 *  - XCDs: CU busy fraction;
 *  - CCDs: core busy fraction (drain time over the span);
 *  - Infinity Cache / HBM: achieved vs peak bandwidth;
 *  - fabric / USR / IO: mean link utilization by kind.
 */
std::vector<double> measuredUtilization(Package &pkg, Tick span);

} // namespace soc
} // namespace ehpsim

#endif // EHPSIM_SOC_UTILIZATION_HH
