/**
 * @file
 * Package floorplan construction (top view) for the thermal model.
 *
 * Produces a labeled, overlap-free floorplan for any ProductConfig:
 * four-IOD products get the MI300 2x2 quad with USR-PHY strips on
 * the inner edges and HBM-PHY strips on the outer edges (paper
 * Figs. 6 and 12); other products get a row layout. Region names
 * map onto power domains so governor allocations can be rasterized
 * into the thermal grid.
 */

#ifndef EHPSIM_SOC_FLOORPLAN_BUILDER_HH
#define EHPSIM_SOC_FLOORPLAN_BUILDER_HH

#include <vector>

#include "geom/floorplan.hh"
#include "power/power_model.hh"
#include "soc/product_config.hh"

namespace ehpsim
{
namespace soc
{

/** Build the top-view floorplan for a product. */
geom::Floorplan buildPackageFloorplan(const ProductConfig &cfg);

/** Power domain a floorplan region belongs to. */
power::Domain domainForRegion(const geom::Region &region);

/**
 * Spread per-domain watts uniformly over each domain's regions.
 * @return watts per region, parallel to plan.regions().
 */
std::vector<double>
regionPowerVector(const geom::Floorplan &plan,
                  const std::vector<double> &domain_watts);

} // namespace soc
} // namespace ehpsim

#endif // EHPSIM_SOC_FLOORPLAN_BUILDER_HH
