/**
 * @file
 * Multi-socket node topologies (paper Sec. VIII, Fig. 18).
 *
 * Each MI300 socket exposes eight x16 links (four IF-only, four
 * IF-or-PCIe). The NodeTopology builds a node-level fabric over
 * whole sockets:
 *  - mi300aQuadNode(): four MI300A APUs, fully connected with two
 *    x16 IF links per socket pair (6 links used per socket), flat
 *    cache-coherent address space across all HBM;
 *  - mi300xOctoNode(): eight MI300X accelerators fully connected
 *    with one x16 IF link per pair (7 per socket) plus one PCIe
 *    link per socket back to an EPYC host.
 */

#ifndef EHPSIM_SOC_NODE_TOPOLOGY_HH
#define EHPSIM_SOC_NODE_TOPOLOGY_HH

#include <memory>
#include <string>
#include <vector>

#include "comm/comm_group.hh"
#include "fabric/network.hh"
#include "sim/sim_object.hh"

namespace ehpsim
{
namespace soc
{

/** x16 links (IF or IF/PCIe capable) an MI300 socket exposes. */
constexpr unsigned mi300LinksPerSocket = 8;

/** How a socket-to-socket connection is realized. */
struct SocketLink
{
    unsigned a;
    unsigned b;
    unsigned num_x16;       ///< x16 links ganged between the pair
    bool pcie;              ///< PCIe (to a host) instead of IF
};

class NodeTopology : public SimObject
{
  public:
    NodeTopology(SimObject *parent, const std::string &name);

    /**
     * Add a socket (accelerator or APU). @return its index.
     * Fatal unless 1 <= @p num_x16_links <= mi300LinksPerSocket.
     */
    unsigned addSocket(const std::string &name, unsigned num_x16_links,
                       double x16_gbps = 64.0);

    /** Add a host CPU (not subject to the socket link cap). */
    unsigned addHost(const std::string &name);

    /**
     * Connect two endpoints with @p num_x16 ganged x16 links.
     * Fatal when either endpoint's link budget is exceeded.
     */
    void connect(unsigned a, unsigned b, unsigned num_x16,
                 bool pcie = false);

    unsigned numEndpoints() const
    {
        return static_cast<unsigned>(names_.size());
    }

    /**
     * Partition domains this topology declares on its fabric —
     * every endpoint (socket or host) is its own domain, so this is
     * the natural upper bound on useful PDES partitions
     * (pdes::PdesEngine folds domains onto partitions modulo the
     * partition count).
     */
    unsigned numDomains() const { return numEndpoints(); }

    fabric::Network *network() { return net_.get(); }

    /** Fabric node of endpoint @p endpoint. */
    fabric::NodeId nodeId(unsigned endpoint) const;

    /** True when @p endpoint was added with addHost(). */
    bool isHost(unsigned endpoint) const;

    /** Fabric nodes of the non-host endpoints, in index order. */
    std::vector<fabric::NodeId> deviceRanks() const;

    /**
     * The communicator over the node's device sockets (hosts are
     * not ranks). Built on first use and driven by a topology-owned
     * event queue; the topology is frozen from then on.
     */
    comm::CommGroup *commGroup();

    /** x16 links still unused on an endpoint. */
    unsigned freeLinks(unsigned socket) const;

    /**
     * Peer-to-peer bandwidth between two endpoints (bytes/s, one
     * direction), including multi-hop routing.
     */
    double p2pBandwidth(unsigned a, unsigned b) const;

    /** One-way latency between endpoints, ticks. */
    Tick p2pLatency(unsigned a, unsigned b);

    /**
     * Simulate an all-to-all exchange where every device socket
     * sends @p bytes to every other. Backed by the comm engine
     * (direct algorithm over the event queue), so repeated or
     * overlapping exchanges contend for links. @return completion
     * ticks.
     */
    Tick allToAll(Tick when, std::uint64_t bytes);

    /** Aggregate node bisection bandwidth estimate (bytes/s). */
    double bisectionBandwidth() const;

    /** Build the Fig. 18(a) quad-APU node. */
    static std::unique_ptr<NodeTopology>
    mi300aQuadNode(SimObject *parent);

    /** Build the Fig. 18(b) 8x MI300X + host node. */
    static std::unique_ptr<NodeTopology>
    mi300xOctoNode(SimObject *parent);

  private:
    unsigned addEndpoint(const std::string &name, unsigned links,
                         double x16_gbps, bool is_host);

    /** Fatal when the comm group already froze the topology. */
    void checkMutable(const char *what) const;

    std::unique_ptr<fabric::Network> net_;
    std::vector<std::string> names_;
    std::vector<fabric::NodeId> nodes_;
    std::vector<unsigned> total_links_;
    std::vector<unsigned> used_links_;
    std::vector<double> link_gbps_;
    std::vector<bool> is_host_;
    std::vector<SocketLink> connections_;
    std::unique_ptr<EventQueue> comm_eq_;
    std::unique_ptr<comm::CommGroup> comm_;
};

} // namespace soc
} // namespace ehpsim

#endif // EHPSIM_SOC_NODE_TOPOLOGY_HH
