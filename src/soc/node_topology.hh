/**
 * @file
 * Multi-socket node topologies (paper Sec. VIII, Fig. 18).
 *
 * Each MI300 socket exposes eight x16 links (four IF-only, four
 * IF-or-PCIe). The NodeTopology builds a node-level fabric over
 * whole sockets:
 *  - mi300aQuadNode(): four MI300A APUs, fully connected with two
 *    x16 IF links per socket pair (6 links used per socket), flat
 *    cache-coherent address space across all HBM;
 *  - mi300xOctoNode(): eight MI300X accelerators fully connected
 *    with one x16 IF link per pair (7 per socket) plus one PCIe
 *    link per socket back to an EPYC host.
 */

#ifndef EHPSIM_SOC_NODE_TOPOLOGY_HH
#define EHPSIM_SOC_NODE_TOPOLOGY_HH

#include <memory>
#include <string>
#include <vector>

#include "fabric/network.hh"
#include "sim/sim_object.hh"

namespace ehpsim
{
namespace soc
{

/** How a socket-to-socket connection is realized. */
struct SocketLink
{
    unsigned a;
    unsigned b;
    unsigned num_x16;       ///< x16 links ganged between the pair
    bool pcie;              ///< PCIe (to a host) instead of IF
};

class NodeTopology : public SimObject
{
  public:
    NodeTopology(SimObject *parent, const std::string &name);

    /** Add a socket (accelerator or APU). @return its index. */
    unsigned addSocket(const std::string &name, unsigned num_x16_links,
                       double x16_gbps = 64.0);

    /** Add a host CPU. @return its index. */
    unsigned addHost(const std::string &name);

    /** Connect two endpoints with @p num_x16 ganged x16 links. */
    void connect(unsigned a, unsigned b, unsigned num_x16,
                 bool pcie = false);

    unsigned numEndpoints() const
    {
        return static_cast<unsigned>(names_.size());
    }

    fabric::Network *network() { return net_.get(); }

    /** x16 links still unused on an endpoint. */
    unsigned freeLinks(unsigned socket) const;

    /**
     * Peer-to-peer bandwidth between two endpoints (bytes/s, one
     * direction), including multi-hop routing.
     */
    double p2pBandwidth(unsigned a, unsigned b) const;

    /** One-way latency between endpoints, ticks. */
    Tick p2pLatency(unsigned a, unsigned b);

    /**
     * Simulate an all-to-all exchange where every socket sends
     * @p bytes to every other socket. @return completion ticks.
     */
    Tick allToAll(Tick when, std::uint64_t bytes);

    /** Aggregate node bisection bandwidth estimate (bytes/s). */
    double bisectionBandwidth() const;

    /** Build the Fig. 18(a) quad-APU node. */
    static std::unique_ptr<NodeTopology>
    mi300aQuadNode(SimObject *parent);

    /** Build the Fig. 18(b) 8x MI300X + host node. */
    static std::unique_ptr<NodeTopology>
    mi300xOctoNode(SimObject *parent);

  private:
    std::unique_ptr<fabric::Network> net_;
    std::vector<std::string> names_;
    std::vector<fabric::NodeId> nodes_;
    std::vector<unsigned> total_links_;
    std::vector<unsigned> used_links_;
    std::vector<double> link_gbps_;
    std::vector<SocketLink> connections_;
};

} // namespace soc
} // namespace ehpsim

#endif // EHPSIM_SOC_NODE_TOPOLOGY_HH
