#include "soc/utilization.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace soc
{

power::PowerModel *
makePowerModelFor(SimObject *parent, Package &pkg)
{
    using power::Domain;
    auto *pm = new power::PowerModel(parent, "power",
                                     pkg.config().tdp_w);
    for (unsigned i = 0; i < pkg.numXcds(); ++i) {
        pm->addComponent({"xcd" + std::to_string(i), Domain::xcd,
                          8.0, 75.0});
    }
    for (unsigned i = 0; i < pkg.numCcds(); ++i) {
        pm->addComponent({"ccd" + std::to_string(i), Domain::ccd,
                          5.0, 40.0});
    }
    pm->addComponent({"infinity_cache", Domain::infinityCache, 8.0,
                      45.0});
    pm->addComponent({"fabric", Domain::fabric, 12.0, 60.0});
    pm->addComponent({"usr", Domain::usr, 6.0, 50.0});
    pm->addComponent({"hbm", Domain::hbm, 20.0, 110.0});
    pm->addComponent({"io", Domain::io, 4.0, 18.0});
    pm->addComponent({"soc_other", Domain::other, 10.0, 25.0});
    return pm;
}

namespace
{

double
clamp01(double v)
{
    return std::clamp(v, 0.0, 1.0);
}

double
meanLinkUtil(Package &pkg, fabric::LinkKind kind)
{
    double sum = 0;
    unsigned n = 0;
    for (auto *l : pkg.network()->allLinks()) {
        if (l->params().kind != kind)
            continue;
        sum += l->utilization();
        ++n;
    }
    return n ? sum / n : 0.0;
}

} // anonymous namespace

std::vector<double>
measuredUtilization(Package &pkg, Tick span)
{
    if (span == 0)
        fatal("utilization window must be nonzero");
    std::vector<double> util;

    for (unsigned i = 0; i < pkg.numXcds(); ++i)
        util.push_back(clamp01(pkg.xcd(i)->averageCuUtilization(span)));
    for (unsigned i = 0; i < pkg.numCcds(); ++i) {
        util.push_back(clamp01(
            static_cast<double>(pkg.ccd(i)->drainTime()) /
            static_cast<double>(span)));
    }

    // Infinity Cache: bytes served vs what the slices could serve.
    double cache_bytes = 0;
    double hbm_bytes = 0;
    for (unsigned c = 0; c < pkg.memMap().numChannels(); ++c) {
        if (pkg.slice(c))
            cache_bytes += pkg.slice(c)->bytes_served.value();
        hbm_bytes += pkg.channel(c)->bytes_served.value();
    }
    const double seconds = secondsFromTicks(span);
    util.push_back(clamp01(
        cache_bytes / (pkg.peakCacheBandwidth() * seconds)));

    util.push_back(clamp01(
        meanLinkUtil(pkg, fabric::LinkKind::onDie)));
    util.push_back(clamp01(meanLinkUtil(pkg, fabric::LinkKind::usr)));
    util.push_back(clamp01(
        hbm_bytes / (pkg.peakMemBandwidth() * seconds)));
    util.push_back(clamp01(
        meanLinkUtil(pkg, fabric::LinkKind::serdesIf)));
    util.push_back(0.5);    // misc SoC overhead
    return util;
}

} // namespace soc
} // namespace ehpsim
