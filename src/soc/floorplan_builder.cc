#include "soc/floorplan_builder.hh"

#include <cstring>

#include "sim/logging.hh"

namespace ehpsim
{
namespace soc
{

namespace
{

constexpr double iodW = 11.5;
constexpr double iodH = 11.5;
constexpr double gap = 0.5;
constexpr double stackW = 9.5;
constexpr double stackH = 5.0;
constexpr double stripW = 0.45;     ///< USR / PHY strip width

struct DieCounters
{
    unsigned xcd = 0;
    unsigned ccd = 0;
    unsigned stack = 0;
};

/**
 * Tile one IOD at (x0, y0). @p inner_left/right/top/bottom flag
 * which edges face another IOD (USR strips); outer x edges get
 * HBM-PHY strips.
 */
void
tileIod(geom::Floorplan &fp, const ProductConfig &cfg, unsigned i,
        double x0, double y0, bool inner_left, bool inner_right,
        bool inner_top, bool inner_bottom, DieCounters &ctr)
{
    const std::string iod = "iod" + std::to_string(i);
    using geom::RegionKind;

    // Horizontal bands.
    const double band_h = 2.9;
    if (inner_bottom) {
        fp.add(iod + ".usr_s", {x0, y0, iodW, stripW},
               RegionKind::phy);
        fp.add(iod + ".cache",
               {x0, y0 + stripW, iodW, band_h - stripW},
               RegionKind::cache);
    } else {
        fp.add(iod + ".cache", {x0, y0, iodW, band_h},
               RegionKind::cache);
    }
    const double top_y = y0 + iodH - 2.4;
    if (inner_top) {
        fp.add(iod + ".usr_n",
               {x0, y0 + iodH - stripW, iodW, stripW},
               RegionKind::phy);
        fp.add(iod + ".fabric",
               {x0, top_y, iodW, 2.4 - stripW}, RegionKind::fabric);
    } else {
        fp.add(iod + ".fabric", {x0, top_y, iodW, 2.4},
               RegionKind::fabric);
    }

    // Middle band edge strips.
    const double mid_y = y0 + band_h;
    const double mid_h = iodH - band_h - 2.4;
    fp.add(inner_left ? iod + ".usr_w" : iod + ".hbmphy_w",
           {x0, mid_y, stripW, mid_h}, RegionKind::phy);
    fp.add(inner_right ? iod + ".usr_e" : iod + ".hbmphy_e",
           {x0 + iodW - stripW, mid_y, stripW, mid_h},
           RegionKind::phy);

    // Compute dies in the middle band.
    const IodConfig &ic = cfg.iods[i];
    const double area_x = x0 + stripW + 0.25;
    const double area_w = iodW - 2 * stripW - 0.5;
    const unsigned dies = ic.num_xcds + ic.num_ccds;
    if (dies > 0) {
        const double pitch = area_w / dies;
        const double die_w = pitch - 0.2;
        const double die_h = mid_h - 0.2;
        for (unsigned d = 0; d < dies; ++d) {
            const bool is_xcd = d < ic.num_xcds;
            const std::string name =
                is_xcd ? "xcd" + std::to_string(ctr.xcd++)
                       : "ccd" + std::to_string(ctr.ccd++);
            fp.add(name,
                   {area_x + d * pitch + 0.1, mid_y + 0.1, die_w,
                    die_h},
                   RegionKind::compute);
        }
    }
}

} // anonymous namespace

geom::Floorplan
buildPackageFloorplan(const ProductConfig &cfg)
{
    const unsigned n = static_cast<unsigned>(cfg.iods.size());
    const bool quad = n == 4;
    const unsigned cols = quad ? 2 : n;
    const unsigned rows = quad ? 2 : 1;

    // Stack columns flank the IOD grid on the left/right (quad) or
    // bands above/below (row layout).
    const double grid_w = cols * iodW + (cols - 1) * gap;
    const double grid_h = rows * iodH + (rows - 1) * gap;
    double bounds_w, bounds_h, grid_x, grid_y;
    if (quad) {
        bounds_w = grid_w + 2 * (stackW + 2 * gap);
        bounds_h = grid_h + 2 * gap;
        grid_x = stackW + 2 * gap;
        grid_y = gap;
    } else {
        bounds_w = grid_w + 2 * gap;
        bounds_h = grid_h + 2 * (stackH + 2 * gap);
        grid_x = gap;
        grid_y = stackH + 2 * gap;
    }

    geom::Floorplan fp({0, 0, bounds_w, bounds_h});
    DieCounters ctr;

    for (unsigned i = 0; i < n; ++i) {
        const unsigned gx = quad ? i % 2 : i;
        const unsigned gy = quad ? i / 2 : 0;
        const double x0 = grid_x + gx * (iodW + gap);
        const double y0 = grid_y + gy * (iodH + gap);
        const bool inner_left = quad ? gx == 1 : i > 0;
        const bool inner_right = quad ? gx == 0 : i + 1 < n;
        const bool inner_top = quad && gy == 0;
        const bool inner_bottom = quad && gy == 1;
        tileIod(fp, cfg, i, x0, y0, inner_left, inner_right,
                inner_top, inner_bottom, ctr);

        // HBM stacks beside (quad) or above/below (row) their IOD.
        for (unsigned k = 0; k < cfg.iods[i].num_hbm_stacks; ++k) {
            const std::string name = "hbm" + std::to_string(ctr.stack++);
            geom::Rect r;
            if (quad) {
                const double sx =
                    gx == 0 ? gap : grid_x + grid_w + gap;
                const double sy = y0 + 0.5 + k * (stackH + 0.5);
                r = {sx, sy, stackW, stackH};
            } else {
                const bool below = k % 2 == 0;
                const double sx =
                    x0 + 0.2 + (k / 2) * (stackW / 2 + 0.4);
                const double sy =
                    below ? gap : grid_y + grid_h + gap;
                r = {sx, sy, stackW / 2, stackH};
            }
            fp.add(name, r, geom::RegionKind::memory);
        }
    }
    return fp;
}

power::Domain
domainForRegion(const geom::Region &region)
{
    const std::string &n = region.name;
    if (n.rfind("xcd", 0) == 0)
        return power::Domain::xcd;
    if (n.rfind("ccd", 0) == 0)
        return power::Domain::ccd;
    if (n.rfind("hbm", 0) == 0)
        return power::Domain::hbm;
    if (n.find(".usr") != std::string::npos)
        return power::Domain::usr;
    if (n.find(".hbmphy") != std::string::npos)
        return power::Domain::hbm;
    if (n.find(".cache") != std::string::npos)
        return power::Domain::infinityCache;
    if (n.find(".fabric") != std::string::npos)
        return power::Domain::fabric;
    if (n.rfind("io", 0) == 0)
        return power::Domain::io;
    return power::Domain::other;
}

std::vector<double>
regionPowerVector(const geom::Floorplan &plan,
                  const std::vector<double> &domain_watts)
{
    if (domain_watts.size() != power::numDomains)
        fatal("domain_watts must have one entry per power domain");

    const auto &regions = plan.regions();
    // Count regions per domain.
    std::vector<unsigned> counts(power::numDomains, 0);
    for (const auto &r : regions)
        ++counts[static_cast<unsigned>(domainForRegion(r))];

    std::vector<double> out(regions.size(), 0.0);
    for (std::size_t i = 0; i < regions.size(); ++i) {
        const auto d =
            static_cast<unsigned>(domainForRegion(regions[i]));
        if (counts[d] > 0)
            out[i] = domain_watts[d] / counts[d];
    }
    return out;
}

} // namespace soc
} // namespace ehpsim
