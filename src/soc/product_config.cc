#include "soc/product_config.hh"

namespace ehpsim
{
namespace soc
{

unsigned
ProductConfig::totalXcds() const
{
    unsigned n = 0;
    for (const auto &i : iods)
        n += i.num_xcds;
    return n;
}

unsigned
ProductConfig::totalCcds() const
{
    unsigned n = 0;
    for (const auto &i : iods)
        n += i.num_ccds;
    return n;
}

unsigned
ProductConfig::totalStacks() const
{
    unsigned n = 0;
    for (const auto &i : iods)
        n += i.num_hbm_stacks;
    return n;
}

namespace
{

fabric::LinkParams
hybridBondLinkParams()
{
    // 3D hybrid-bonded TSV interface between a compute die and the
    // IOD below: 9 um pitch gives enormous density; effectively the
    // compute die sits on the fabric.
    fabric::LinkParams p;
    p.kind = fabric::LinkKind::onDie;
    p.bandwidth = tbps(3.0);
    p.latency = 1'000;          // 1 ns
    p.energy_pj_per_byte = 0.2;
    return p;
}

} // anonymous namespace

ProductConfig
mi300aConfig()
{
    ProductConfig c;
    c.name = "MI300A";
    // Three IODs carry 2 XCDs each; one carries the 3 CCDs. Each
    // IOD interfaces two HBM stacks (8 total).
    c.iods = {
        {2, 0, 2},
        {2, 0, 2},
        {2, 0, 2},
        {0, 3, 2},
    };
    c.xcd = gpu::cdna3XcdParams();
    c.ccd = cpu::zen4CcdParams();

    c.hbm.num_stacks = 8;
    c.hbm.channels_per_stack = 16;
    c.hbm.capacity_bytes = 128ull * 1024 * 1024 * 1024;
    c.hbm.channel = mem::hbm3ChannelParams();
    c.hbm.enable_infinity_cache = true;

    c.compute_link = hybridBondLinkParams();
    c.iod_link = fabric::usrLinkParams();
    c.hbm_link = fabric::interposerLinkParams();
    // 2x2 mesh: chain edges 0-1, 1-2, 2-3 plus the closing edge.
    c.extra_iod_edges = {{0, 3}};

    c.io_links_per_iod = 2;
    c.io_link_gbps = 64.0;
    c.tdp_w = 550.0;
    return c;
}

ProductConfig
mi300xConfig()
{
    ProductConfig c = mi300aConfig();
    c.name = "MI300X";
    // Modular swap (paper Sec. VII): the CCD IOD takes 2 XCDs.
    c.iods = {
        {2, 0, 2},
        {2, 0, 2},
        {2, 0, 2},
        {2, 0, 2},
    };
    // 12-high stacks: 24 GB per stack, 192 GB total.
    c.hbm.capacity_bytes = 192ull * 1024 * 1024 * 1024;
    c.tdp_w = 750.0;
    return c;
}

ProductConfig
mi250xConfig()
{
    ProductConfig c;
    c.name = "MI250X";
    // Two GCDs, each with 4 HBM2e stacks; the GCD is monolithic so
    // there is one "compute die" per "IOD" slot and the compute link
    // is on-die.
    c.iods = {
        {1, 0, 4},
        {1, 0, 4},
    };
    c.xcd = gpu::cdna2GcdParams();

    c.hbm.num_stacks = 8;
    c.hbm.channels_per_stack = 8;
    c.hbm.capacity_bytes = 128ull * 1024 * 1024 * 1024;
    c.hbm.channel = mem::hbm2eChannelParams();
    c.hbm.enable_infinity_cache = false;

    c.compute_link = fabric::onDieLinkParams();
    // In-package GCD-to-GCD Infinity Fabric: four links of 50 GB/s
    // per direction (aggregate 200 GB/s each way), far below HBM.
    c.iod_link = fabric::serdesIfLinkParams();
    c.iod_link.bandwidth = gbps(200.0);
    c.hbm_link = fabric::interposerLinkParams();
    c.hbm_link.bandwidth = gbps(400.0);     // 1.6 TB/s over 4 stacks

    c.io_links_per_iod = 4;
    c.io_link_gbps = 32.0;      // MI250X-era IF links
    c.tdp_w = 560.0;
    return c;
}

ProductConfig
ehpv4Config()
{
    ProductConfig c;
    c.name = "EHPv4";
    // Two GPU complexes at the package ends, the reused server IOD
    // in the middle carrying both CCDs. HBM attaches to the GPU
    // dies; the CPU reaches memory only through two SerDes hops
    // (paper Fig. 4 challenge 3).
    c.iods = {
        {1, 0, 4},
        {0, 2, 0},
        {1, 0, 4},
    };
    c.xcd = gpu::cdna2GcdParams();
    c.ccd = cpu::zen3CcdParams();

    c.hbm.num_stacks = 8;
    c.hbm.channels_per_stack = 8;
    c.hbm.capacity_bytes = 128ull * 1024 * 1024 * 1024;
    c.hbm.channel = mem::hbm2eChannelParams();
    c.hbm.enable_infinity_cache = false;

    c.compute_link = fabric::onDieLinkParams();
    // Server-IOD SerDes IF links provisioned for DDR-class
    // bandwidth: the EHPv4 bottleneck (paper Fig. 4 challenge 2).
    c.iod_link = fabric::serdesIfLinkParams();
    c.hbm_link = fabric::interposerLinkParams();
    c.hbm_link.bandwidth = gbps(400.0);

    c.io_links_per_iod = 2;
    c.io_link_gbps = 32.0;
    c.tdp_w = 500.0;
    return c;
}

ProductConfig
ehpv3Config()
{
    ProductConfig c;
    c.name = "EHPv3";
    // Two GPU active-interposer complexes (four small GPU chiplets
    // + four HBM stacks stacked on each) around a CPU complex with
    // four CCDs — the 2:1 GPU:CPU chiplet ratio of Sec. V.F.
    c.iods = {
        {4, 0, 4},
        {0, 4, 0},
        {4, 0, 4},
    };
    // EHP-era GPU chiplets: HBM-stack-sized dies (~100 mm^2) with
    // 32 CUs each (Fig. 3b).
    c.xcd = gpu::cdna2GcdParams();
    c.xcd.physical_cus = 32;
    c.xcd.active_cus = 32;
    c.xcd.l2.size_bytes = 2 * 1024 * 1024;
    c.ccd = cpu::zen3CcdParams();

    c.hbm.num_stacks = 8;
    c.hbm.channels_per_stack = 8;
    c.hbm.capacity_bytes = 128ull * 1024 * 1024 * 1024;
    c.hbm.channel = mem::hbm2eChannelParams();
    c.hbm.enable_infinity_cache = false;

    // On an active interposer the compute chiplets enjoy 3D-density
    // connections; HBM stacks sit directly on the GPU chiplets.
    c.compute_link = fabric::onDieLinkParams();
    c.hbm_link = fabric::interposerLinkParams();
    c.hbm_link.bandwidth = gbps(400.0);
    // ...but the interposer complexes talk over organic-substrate
    // SerDes: the EHPv3 bandwidth/power challenge (Sec. V.F).
    c.iod_link = fabric::serdesIfLinkParams();
    c.iod_link.bandwidth = gbps(100.0);

    c.io_links_per_iod = 2;
    c.io_link_gbps = 25.0;
    c.tdp_w = 500.0;
    return c;
}

} // namespace soc
} // namespace ehpsim
