/**
 * @file
 * Product configurations: every processor the paper discusses is a
 * configuration of the same component library.
 *
 *  - MI300A: 4 IODs; three carry 2 XCDs, one carries 3 CCDs; 8 HBM3
 *    stacks (128 GB, ~5.3 TB/s); 256 MB Infinity Cache; USR links.
 *  - MI300X: the 3 CCDs swapped for 2 more XCDs (8 XCDs / 304 CUs);
 *    12-high HBM stacks for 192 GB.
 *  - MI250X: two CDNA2 GCDs, each a standalone accelerator with its
 *    own 4 HBM2e stacks; GCDs joined by in-package SerDes IF links;
 *    no Infinity Cache.
 *  - EHPv4: two GPU chiplets and two CCDs around a reused server
 *    IOD; all chiplet links are 2D organic-substrate SerDes, which
 *    is the configuration's central shortcoming (paper Sec. III.B).
 */

#ifndef EHPSIM_SOC_PRODUCT_CONFIG_HH
#define EHPSIM_SOC_PRODUCT_CONFIG_HH

#include <string>
#include <vector>

#include "cpu/ccd.hh"
#include "fabric/link.hh"
#include "gpu/xcd.hh"
#include "mem/hbm_subsystem.hh"

namespace ehpsim
{
namespace soc
{

/** What sits on (or around) one IOD. */
struct IodConfig
{
    unsigned num_xcds = 0;
    unsigned num_ccds = 0;
    unsigned num_hbm_stacks = 2;    ///< stacks attached to this IOD
};

struct ProductConfig
{
    std::string name;
    std::vector<IodConfig> iods;

    gpu::XcdParams xcd = gpu::cdna3XcdParams();
    cpu::CcdParams ccd = cpu::zen4CcdParams();

    /** Global memory view (stacks/channels must match the IODs). */
    mem::HbmSubsystemParams hbm;

    /** Compute die to IOD (3D hybrid bond, or SerDes in EHPv4). */
    fabric::LinkParams compute_link;
    /** IOD to IOD (USR, or SerDes in MI250X/EHPv4). */
    fabric::LinkParams iod_link;
    /** IOD to an HBM stack (2.5D interposer). */
    fabric::LinkParams hbm_link;

    /** Extra IOD adjacencies beyond the chain 0-1, 1-2, ... e.g.
     *  the 2x2 mesh's vertical edges. Pairs are (i, j), i < j. */
    std::vector<std::pair<unsigned, unsigned>> extra_iod_edges;

    unsigned io_links_per_iod = 2;  ///< x16 interfaces per IOD
    double io_link_gbps = 64.0;     ///< per direction per x16

    double tdp_w = 550.0;

    unsigned totalXcds() const;
    unsigned totalCcds() const;
    unsigned totalStacks() const;
};

/** The MI300A APU (paper Sec. IV). */
ProductConfig mi300aConfig();

/** The MI300X accelerator (paper Sec. VII). */
ProductConfig mi300xConfig();

/** The MI250X accelerator (CDNA2, two GCDs). */
ProductConfig mi250xConfig();

/** The EHPv4 concept with the reused server IOD (paper Sec. III.B). */
ProductConfig ehpv4Config();

/**
 * The EHPv3 concept (paper Sec. II.A/III.A, Fig. 1a): compute
 * chiplets 3D-stacked on active interposers with HBM on top, but
 * the interposer complexes joined only by organic-substrate SerDes
 * links — the bandwidth/power challenge Sec. V.F cites.
 */
ProductConfig ehpv3Config();

} // namespace soc
} // namespace ehpsim

#endif // EHPSIM_SOC_PRODUCT_CONFIG_HH
