#include "cpu/ccd.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace cpu
{

CcdParams
zen4CcdParams()
{
    CcdParams p;
    p.core = zen4CoreParams();
    p.num_cores = 8;
    p.l3.size_bytes = 32ull * 1024 * 1024;
    p.l3.assoc = 16;
    p.l3.line_bytes = 64;
    p.l3.latency_cycles = 50;
    p.l3.clock_ghz = p.core.clock_ghz;
    p.l3.bytes_per_cycle = 256;
    return p;
}

CcdParams
zen3CcdParams()
{
    CcdParams p = zen4CcdParams();
    p.core = zen3CoreParams();
    p.l3.clock_ghz = p.core.clock_ghz;
    return p;
}

Ccd::Ccd(SimObject *parent, const std::string &name,
         const CcdParams &params, mem::MemDevice *below)
    : SimObject(parent, name), params_(params)
{
    l3_ = std::make_unique<mem::Cache>(this, "l3", params.l3, below);
    for (unsigned i = 0; i < params.num_cores; ++i) {
        cores_.push_back(std::make_unique<ZenCore>(
            this, "core" + std::to_string(i), params.core, l3_.get()));
    }
}

double
Ccd::peakFlops(bool fp64) const
{
    if (cores_.empty())
        return 0.0;
    return cores_[0]->peakFlops(fp64) *
           static_cast<double>(params_.num_cores);
}

Tick
Ccd::runParallel(Tick start, const CpuWork &work, unsigned n_cores)
{
    if (n_cores == 0 || n_cores > params_.num_cores)
        n_cores = params_.num_cores;

    Tick done = start;
    for (unsigned i = 0; i < n_cores; ++i) {
        CpuWork shard = work;
        shard.scalar_ops = work.scalar_ops / n_cores;
        shard.flops = work.flops / n_cores;
        shard.bytes_read = work.bytes_read / n_cores;
        shard.bytes_written = work.bytes_written / n_cores;
        shard.read_base =
            work.read_base + static_cast<Addr>(i) * shard.bytes_read;
        shard.write_base =
            work.write_base +
            static_cast<Addr>(i) * shard.bytes_written;
        done = std::max(done, cores_[i]->run(start, shard));
    }
    return done;
}

Tick
Ccd::drainTime() const
{
    Tick t = 0;
    for (const auto &c : cores_)
        t = std::max(t, c->busyUntil());
    return t;
}

} // namespace cpu
} // namespace ehpsim
