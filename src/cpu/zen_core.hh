/**
 * @file
 * An abstract "Zen"-class CPU core (paper Sec. IV.C).
 *
 * MI300A's CCDs carry eight "Zen 4" cores. ehpsim does not execute
 * x86; a ZenCore consumes abstract work descriptors (scalar ops,
 * vector flops, memory footprint) and models time with a sustained
 * IPC, the AVX-512 vector rate, and its L1/L2 caches in front of the
 * CCD's shared L3. Zen 3 parameters are provided for generational
 * comparisons (the paper lists the Zen 4 upgrades: 1 MB L2, AVX-512,
 * higher clocks and IPC).
 */

#ifndef EHPSIM_CPU_ZEN_CORE_HH
#define EHPSIM_CPU_ZEN_CORE_HH

#include <memory>

#include "mem/cache.hh"

namespace ehpsim
{
namespace cpu
{

enum class ZenGen
{
    zen3,
    zen4,
};

const char *zenGenName(ZenGen g);

struct ZenCoreParams
{
    ZenGen gen = ZenGen::zen4;
    double clock_ghz = 3.7;
    double sustained_ipc = 4.0;
    double fp64_flops_per_cycle = 16.0;  ///< AVX-512 double-pumped
    double fp32_flops_per_cycle = 32.0;
    mem::CacheParams l1d;   ///< 32 KB
    mem::CacheParams l2;    ///< 1 MB (Zen 4), 512 KB (Zen 3)
};

ZenCoreParams zen4CoreParams();
ZenCoreParams zen3CoreParams();

/** Abstract work executed by a core. */
struct CpuWork
{
    std::uint64_t scalar_ops = 0;
    std::uint64_t flops = 0;
    bool fp64 = true;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    Addr read_base = 0;
    Addr write_base = 0;
};

class ZenCore : public SimObject
{
  public:
    /** @param l3 The CCD's shared L3 (next level below core L2). */
    ZenCore(SimObject *parent, const std::string &name,
            const ZenCoreParams &params, mem::MemDevice *l3);

    const ZenCoreParams &params() const { return params_; }

    mem::Cache *l1d() { return l1d_.get(); }

    mem::Cache *l2() { return l2_.get(); }

    Tick busyUntil() const { return busy_until_; }

    /** Peak vector flops/s. */
    double peakFlops(bool fp64) const;

    /** Run @p work; @return completion tick. */
    Tick run(Tick start, const CpuWork &work);

    /**
     * Spin-wait on a coherent flag (paper Fig. 15): the core polls
     * every @p poll_interval until @p flag_set_at, then pays one
     * cache-miss latency to observe the flag.
     * @return the tick at which the core proceeds.
     */
    Tick spinWait(Tick start, Tick flag_set_at, Tick poll_interval,
                  Tick observe_latency);

    /** @{ statistics */
    stats::Scalar instructions;
    stats::Scalar total_flops;
    stats::Scalar spin_polls;
    /** @} */

  private:
    ZenCoreParams params_;
    std::unique_ptr<mem::Cache> l1d_;
    std::unique_ptr<mem::Cache> l2_;
    Tick busy_until_ = 0;
    Tick period_;
};

} // namespace cpu
} // namespace ehpsim

#endif // EHPSIM_CPU_ZEN_CORE_HH
