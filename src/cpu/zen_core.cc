#include "cpu/zen_core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace cpu
{

const char *
zenGenName(ZenGen g)
{
    switch (g) {
      case ZenGen::zen3:
        return "Zen3";
      case ZenGen::zen4:
        return "Zen4";
    }
    panic("bad zen generation");
}

ZenCoreParams
zen4CoreParams()
{
    ZenCoreParams p;
    p.gen = ZenGen::zen4;
    p.clock_ghz = 3.7;
    p.sustained_ipc = 4.0;
    p.fp64_flops_per_cycle = 16.0;
    p.fp32_flops_per_cycle = 32.0;
    p.l1d.size_bytes = 32 * 1024;
    p.l1d.assoc = 8;
    p.l1d.line_bytes = 64;
    p.l1d.latency_cycles = 4;
    p.l1d.clock_ghz = p.clock_ghz;
    p.l1d.bytes_per_cycle = 64;
    // Zen 4 doubled the per-core L2 to 1 MB (paper Sec. IV.C).
    p.l2.size_bytes = 1024 * 1024;
    p.l2.assoc = 8;
    p.l2.line_bytes = 64;
    p.l2.latency_cycles = 14;
    p.l2.clock_ghz = p.clock_ghz;
    p.l2.bytes_per_cycle = 64;
    return p;
}

ZenCoreParams
zen3CoreParams()
{
    ZenCoreParams p = zen4CoreParams();
    p.gen = ZenGen::zen3;
    p.clock_ghz = 3.4;
    p.sustained_ipc = 3.6;
    // No AVX-512: half the vector rate.
    p.fp64_flops_per_cycle = 8.0;
    p.fp32_flops_per_cycle = 16.0;
    p.l2.size_bytes = 512 * 1024;
    p.l1d.clock_ghz = p.clock_ghz;
    p.l2.clock_ghz = p.clock_ghz;
    return p;
}

ZenCore::ZenCore(SimObject *parent, const std::string &name,
                 const ZenCoreParams &params, mem::MemDevice *l3)
    : SimObject(parent, name),
      instructions(this, "instructions", "scalar instructions retired"),
      total_flops(this, "total_flops", "vector flops executed"),
      spin_polls(this, "spin_polls", "spin-wait poll iterations"),
      params_(params),
      period_(periodFromGHz(params.clock_ghz))
{
    l2_ = std::make_unique<mem::Cache>(this, "l2", params.l2, l3);
    l1d_ = std::make_unique<mem::Cache>(this, "l1d", params.l1d,
                                        l2_.get());
}

double
ZenCore::peakFlops(bool fp64) const
{
    const double per_cycle = fp64 ? params_.fp64_flops_per_cycle
                                  : params_.fp32_flops_per_cycle;
    return per_cycle * params_.clock_ghz * 1e9;
}

Tick
ZenCore::run(Tick start, const CpuWork &work)
{
    const Tick begin = std::max(start, busy_until_);
    instructions += static_cast<double>(work.scalar_ops);
    total_flops += static_cast<double>(work.flops);

    const double scalar_cycles =
        static_cast<double>(work.scalar_ops) / params_.sustained_ipc;
    const double flop_rate = work.fp64 ? params_.fp64_flops_per_cycle
                                       : params_.fp32_flops_per_cycle;
    const double vector_cycles =
        static_cast<double>(work.flops) / flop_rate;
    const Tick compute = static_cast<Tick>(
        (scalar_cycles + vector_cycles) *
        static_cast<double>(period_));

    Tick mem_done = begin;
    if (work.bytes_read > 0) {
        mem_done = l1d_->access(begin, work.read_base, work.bytes_read,
                                false).complete;
    }
    if (work.bytes_written > 0) {
        mem_done = std::max(
            mem_done, l1d_->access(begin, work.write_base,
                                   work.bytes_written, true).complete);
    }
    const Tick mem_time = mem_done > begin ? mem_done - begin : 0;
    const Tick busy = std::max({compute, mem_time, Tick(1)});
    busy_until_ = begin + busy;
    return busy_until_;
}

Tick
ZenCore::spinWait(Tick start, Tick flag_set_at, Tick poll_interval,
                  Tick observe_latency)
{
    const Tick begin = std::max(start, busy_until_);
    if (poll_interval == 0)
        poll_interval = period_ * 16;
    Tick t = begin;
    std::uint64_t polls = 1;
    if (flag_set_at > t) {
        const Tick wait = flag_set_at - t;
        polls += wait / poll_interval + 1;
        // The poll that observes the flag starts at the first
        // interval boundary after the flag is set.
        const Tick rounded =
            ((wait + poll_interval - 1) / poll_interval) *
            poll_interval;
        t = begin + rounded;
    }
    spin_polls += static_cast<double>(polls);
    busy_until_ = t + observe_latency;
    return busy_until_;
}

} // namespace cpu
} // namespace ehpsim
