/**
 * @file
 * The CPU complex die (CCD): eight Zen cores sharing a 32 MB L3
 * (paper Sec. IV.C). The MI300A carries three CCDs for 24 cores;
 * CCDs run the OS and all host-side code, and in EPYC products the
 * same die connects over a 2D SerDes interface instead of the 3D
 * hybrid-bonded interface (modeled in soc/).
 */

#ifndef EHPSIM_CPU_CCD_HH
#define EHPSIM_CPU_CCD_HH

#include <memory>
#include <vector>

#include "cpu/zen_core.hh"

namespace ehpsim
{
namespace cpu
{

struct CcdParams
{
    ZenCoreParams core = zen4CoreParams();
    unsigned num_cores = 8;
    mem::CacheParams l3;    ///< 32 MB shared
};

CcdParams zen4CcdParams();
CcdParams zen3CcdParams();

class Ccd : public SimObject
{
  public:
    /** @param below Where L3 misses go (fabric adapter or memory). */
    Ccd(SimObject *parent, const std::string &name,
        const CcdParams &params, mem::MemDevice *below);

    const CcdParams &params() const { return params_; }

    unsigned numCores() const { return params_.num_cores; }

    ZenCore *core(unsigned i) { return cores_[i].get(); }

    mem::Cache *l3() { return l3_.get(); }

    /** Aggregate peak vector flops/s over all cores. */
    double peakFlops(bool fp64) const;

    /**
     * Split @p work evenly over @p n_cores cores (all when 0) and run
     * the shards concurrently. @return the last completion tick.
     */
    Tick runParallel(Tick start, const CpuWork &work,
                     unsigned n_cores = 0);

    /** Completion tick of everything issued so far. */
    Tick drainTime() const;

  private:
    CcdParams params_;
    std::unique_ptr<mem::Cache> l3_;
    std::vector<std::unique_ptr<ZenCore>> cores_;
};

} // namespace cpu
} // namespace ehpsim

#endif // EHPSIM_CPU_CCD_HH
