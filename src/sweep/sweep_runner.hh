/**
 * @file
 * The parallel sweep engine.
 *
 * The paper's evaluation (Figs. 7-21) is a pile of *sweeps*: the
 * same experiment repeated across product configs, partition modes,
 * NPS interleave settings, or power policies. Each point is an
 * independent simulation — its own EventQueue, its own Package, its
 * own StatGroup tree — so the sweep is embarrassingly parallel.
 *
 * SweepRunner fans a vector of jobs across a fixed-size pool of
 * std::jthread workers pulling from a mutex-protected work queue.
 * Each job serializes its result into a JSON value via its own
 * json::JsonWriter; exceptions (fatal() throws std::runtime_error)
 * are captured into the job's result instead of aborting the sweep.
 *
 * Determinism contract: results are keyed and ordered by job index,
 * never by completion order, and job outputs are formatted with the
 * deterministic JsonWriter — so `workers == 1` and `workers == N`
 * produce byte-identical dumpJson() output.
 */

#ifndef EHPSIM_SWEEP_SWEEP_RUNNER_HH
#define EHPSIM_SWEEP_SWEEP_RUNNER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace ehpsim
{
namespace sweep
{

/** The outcome of one sweep job. */
struct JobResult
{
    std::size_t index = 0;
    std::string name;
    bool ok = false;
    /** Exception message when !ok; empty otherwise. */
    std::string error;
    /** The job's serialized JSON value; empty when !ok. */
    std::string output;
    /** Wall-clock seconds spent running the job. Measured for
     *  operator feedback; deliberately NOT serialized by dumpJson()
     *  so serial and parallel sweeps stay byte-identical. */
    double wall_s = 0;
};

/** One independent simulation job. The callable must write exactly
 *  one JSON value (normally an object) to the supplied writer. */
struct SweepJob
{
    std::string name;
    std::function<void(json::JsonWriter &)> fn;
};

/**
 * A shared warmup prefix for forked jobs (DESIGN.md §16). Jobs
 * registered with an equal @c config string share one produce()
 * call: whichever worker reaches the prefix first runs it (and pays
 * its wall time); everyone else blocks on the result and forks from
 * the cached blob. @c config is the serialized pre-knob
 * configuration — everything that shapes the simulation up to the
 * checkpoint — and is hashed (fnv1a) for the dedup lookup, with a
 * full string compare guarding against collisions.
 */
struct WarmupSpec
{
    std::string config;
    /** Run the warmup and return the checkpoint blob
     *  (saveWorld()). Called at most once per unique config. */
    std::function<std::string()> produce;
};

class SweepRunner
{
  public:
    /** @param workers Pool size; 0 means hardware_concurrency. */
    explicit SweepRunner(unsigned workers = 0);

    unsigned workers() const { return workers_; }

    /** Append a job; @return its index (result ordering key). */
    std::size_t addJob(std::string name,
                       std::function<void(json::JsonWriter &)> fn);

    /**
     * Append a job that forks from a shared warmup checkpoint:
     * @p fn receives the blob @p warmup's produce() returned and
     * must restore it into a fresh world before running its knob
     * point. Jobs whose WarmupSpec::config strings are equal share
     * one produce() call across the pool, so a sweep of N points
     * over one prefix simulates the prefix once instead of N times.
     * A produce() failure is replayed to every job of that prefix
     * (each fails with the same error). @return the job's index.
     */
    std::size_t
    addForkedJob(std::string name, const WarmupSpec &warmup,
                 std::function<void(const std::string &blob,
                                    json::JsonWriter &)>
                     fn);

    std::size_t numJobs() const { return jobs_.size(); }

    /** Distinct warmup prefixes registered via addForkedJob(). */
    std::size_t numWarmups() const { return warmups_.size(); }

    /**
     * Run every job across the worker pool and block until all
     * complete. Per-job exceptions land in JobResult::error; the
     * sweep itself always finishes. May be called repeatedly (jobs
     * accumulate; all run again).
     */
    std::vector<JobResult> run();

    /**
     * Serialize results as the ehpsim-sweep-v1 JSON document.
     * Deterministic: depends only on job indices, names, and
     * outputs — not on timing or completion order.
     */
    static void dumpJson(std::ostream &os, const std::string &sweep,
                         const std::vector<JobResult> &results);

    /** Total wall-clock seconds across all jobs in @p results. */
    static double totalJobSeconds(const std::vector<JobResult> &results);

  private:
    /** One shared warmup prefix: the blob is produced under the
     *  once_flag by the first job to need it and read-only after,
     *  so forked jobs need no further synchronization. */
    struct WarmupEntry
    {
        std::uint64_t hash = 0;
        std::string config;
        std::function<std::string()> produce;
        std::once_flag once;
        std::string blob;
        std::exception_ptr error;
    };

    unsigned workers_;
    std::vector<SweepJob> jobs_;
    /** unique_ptr for address stability: jobs capture raw entry
     *  pointers, and entries are never erased. */
    std::vector<std::unique_ptr<WarmupEntry>> warmups_;
};

} // namespace sweep
} // namespace ehpsim

#endif // EHPSIM_SWEEP_SWEEP_RUNNER_HH
