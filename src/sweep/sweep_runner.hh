/**
 * @file
 * The parallel sweep engine.
 *
 * The paper's evaluation (Figs. 7-21) is a pile of *sweeps*: the
 * same experiment repeated across product configs, partition modes,
 * NPS interleave settings, or power policies. Each point is an
 * independent simulation — its own EventQueue, its own Package, its
 * own StatGroup tree — so the sweep is embarrassingly parallel.
 *
 * SweepRunner fans a vector of jobs across a fixed-size pool of
 * std::jthread workers pulling from a mutex-protected work queue.
 * Each job serializes its result into a JSON value via its own
 * json::JsonWriter; exceptions (fatal() throws std::runtime_error)
 * are captured into the job's result instead of aborting the sweep.
 *
 * Determinism contract: results are keyed and ordered by job index,
 * never by completion order, and job outputs are formatted with the
 * deterministic JsonWriter — so `workers == 1` and `workers == N`
 * produce byte-identical dumpJson() output.
 */

#ifndef EHPSIM_SWEEP_SWEEP_RUNNER_HH
#define EHPSIM_SWEEP_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace ehpsim
{
namespace sweep
{

/** The outcome of one sweep job. */
struct JobResult
{
    std::size_t index = 0;
    std::string name;
    bool ok = false;
    /** Exception message when !ok; empty otherwise. */
    std::string error;
    /** The job's serialized JSON value; empty when !ok. */
    std::string output;
    /** Wall-clock seconds spent running the job. Measured for
     *  operator feedback; deliberately NOT serialized by dumpJson()
     *  so serial and parallel sweeps stay byte-identical. */
    double wall_s = 0;
};

/** One independent simulation job. The callable must write exactly
 *  one JSON value (normally an object) to the supplied writer. */
struct SweepJob
{
    std::string name;
    std::function<void(json::JsonWriter &)> fn;
};

class SweepRunner
{
  public:
    /** @param workers Pool size; 0 means hardware_concurrency. */
    explicit SweepRunner(unsigned workers = 0);

    unsigned workers() const { return workers_; }

    /** Append a job; @return its index (result ordering key). */
    std::size_t addJob(std::string name,
                       std::function<void(json::JsonWriter &)> fn);

    std::size_t numJobs() const { return jobs_.size(); }

    /**
     * Run every job across the worker pool and block until all
     * complete. Per-job exceptions land in JobResult::error; the
     * sweep itself always finishes. May be called repeatedly (jobs
     * accumulate; all run again).
     */
    std::vector<JobResult> run();

    /**
     * Serialize results as the ehpsim-sweep-v1 JSON document.
     * Deterministic: depends only on job indices, names, and
     * outputs — not on timing or completion order.
     */
    static void dumpJson(std::ostream &os, const std::string &sweep,
                         const std::vector<JobResult> &results);

    /** Total wall-clock seconds across all jobs in @p results. */
    static double totalJobSeconds(const std::vector<JobResult> &results);

  private:
    unsigned workers_;
    std::vector<SweepJob> jobs_;
};

} // namespace sweep
} // namespace ehpsim

#endif // EHPSIM_SWEEP_SWEEP_RUNNER_HH
