#include "sweep/sweep_runner.hh"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "sim/wall_timer.hh"

namespace ehpsim
{
namespace sweep
{

namespace
{

/** Indent every line of a pre-serialized JSON value by @p pad spaces
 *  (except the first, which lands after the parent's own padding). */
std::string
reindent(const std::string &raw, unsigned pad)
{
    std::string out;
    out.reserve(raw.size());
    const std::string padding(pad, ' ');
    for (const char c : raw) {
        out += c;
        if (c == '\n')
            out += padding;
    }
    return out;
}

} // anonymous namespace

SweepRunner::SweepRunner(unsigned workers)
    : workers_(workers ? workers
                       : std::max(1u, std::thread::hardware_concurrency()))
{
}

std::size_t
SweepRunner::addJob(std::string name,
                    std::function<void(json::JsonWriter &)> fn)
{
    jobs_.push_back(SweepJob{std::move(name), std::move(fn)});
    return jobs_.size() - 1;
}

std::size_t
SweepRunner::addForkedJob(std::string name, const WarmupSpec &warmup,
                          std::function<void(const std::string &,
                                             json::JsonWriter &)>
                              fn)
{
    if (!warmup.produce)
        fatal("sweep: forked job '", name,
              "' has no warmup producer");

    const std::uint64_t hash = fnv1a(warmup.config);
    WarmupEntry *entry = nullptr;
    for (const auto &e : warmups_) {
        if (e->hash == hash && e->config == warmup.config) {
            entry = e.get();
            break;
        }
    }
    if (!entry) {
        auto fresh = std::make_unique<WarmupEntry>();
        fresh->hash = hash;
        fresh->config = warmup.config;
        fresh->produce = warmup.produce;
        entry = fresh.get();
        warmups_.push_back(std::move(fresh));
    }

    return addJob(
        std::move(name),
        [entry, fn = std::move(fn)](json::JsonWriter &jw) {
            // First arrival runs the warmup; the once_flag both
            // serializes that and publishes blob/error to everyone
            // who forks after.
            std::call_once(entry->once, [entry] {
                try {
                    entry->blob = entry->produce();
                } catch (...) {
                    entry->error = std::current_exception();
                }
            });
            if (entry->error)
                std::rethrow_exception(entry->error);
            fn(entry->blob, jw);
        });
}

std::vector<JobResult>
SweepRunner::run()
{
    const std::size_t n = jobs_.size();
    std::vector<JobResult> results(n);

    // The work queue: a cursor over the job vector. Workers pull the
    // next un-started index under the mutex and run the job outside
    // it. Each worker writes only to its own result slot, so result
    // storage needs no further synchronization.
    std::mutex mtx;
    std::size_t next = 0;

    auto worker = [&]() {
        for (;;) {
            std::size_t idx;
            {
                std::lock_guard<std::mutex> lock(mtx);
                if (next >= n)
                    return;
                idx = next++;
            }
            JobResult &res = results[idx];
            res.index = idx;
            res.name = jobs_[idx].name;
            // Host-side timing for operator feedback only; wall_s
            // never enters the deterministic dumpJson() payload.
            const WallTimer timer;
            std::ostringstream payload;
            try {
                json::JsonWriter jw(payload);
                jobs_[idx].fn(jw);
                res.output = payload.str();
                res.ok = true;
            } catch (const std::exception &e) {
                res.ok = false;
                res.error = e.what();
                res.output.clear();
            } catch (...) {
                res.ok = false;
                res.error = "unknown exception";
                res.output.clear();
            }
            res.wall_s = timer.seconds();
        }
    };

    const unsigned pool =
        static_cast<unsigned>(std::min<std::size_t>(workers_, n));
    if (pool <= 1) {
        // Serial reference path: same code, calling thread.
        worker();
    } else {
        std::vector<std::jthread> threads;
        threads.reserve(pool);
        for (unsigned i = 0; i < pool; ++i)
            threads.emplace_back(worker);
        // jthread joins on destruction.
    }
    return results;
}

void
SweepRunner::dumpJson(std::ostream &os, const std::string &sweep,
                      const std::vector<JobResult> &results)
{
    json::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("schema", "ehpsim-sweep-v1");
    jw.kv("sweep", sweep);
    jw.kv("num_jobs", std::uint64_t(results.size()));
    jw.key("jobs");
    jw.beginArray();
    for (const auto &res : results) {
        jw.beginObject();
        jw.kv("index", std::uint64_t(res.index));
        jw.kv("name", res.name);
        jw.kv("status", res.ok ? "ok" : "error");
        if (!res.ok)
            jw.kv("error", res.error);
        jw.key("output");
        if (res.output.empty()) {
            jw.nullValue();
        } else {
            // Job payloads were serialized at depth 0 on the worker;
            // re-indent to sit at our current nesting depth (jobs[]
            // object member = 3 levels of 2 spaces).
            jw.rawValue(reindent(res.output, 6));
        }
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    os << "\n";
}

double
SweepRunner::totalJobSeconds(const std::vector<JobResult> &results)
{
    double s = 0;
    for (const auto &res : results)
        s += res.wall_s;
    return s;
}

} // namespace sweep
} // namespace ehpsim
