#include "fabric/link.hh"

#include <algorithm>

#include "sim/access_tracker.hh"
#include "sim/logging.hh"

namespace ehpsim
{
namespace fabric
{

const char *
linkKindName(LinkKind k)
{
    switch (k) {
      case LinkKind::onDie:
        return "on_die";
      case LinkKind::usr:
        return "usr";
      case LinkKind::interposer:
        return "interposer";
      case LinkKind::serdesIf:
        return "serdes_if";
      case LinkKind::pcie:
        return "pcie";
    }
    panic("bad link kind");
}

LinkParams
onDieLinkParams()
{
    // Data-fabric segment within one IOD.
    return {LinkKind::onDie, tbps(2.0), 2'000, 0.4};
}

LinkParams
usrLinkParams()
{
    // One IOD-to-IOD USR edge. The USR interfaces are sized so HBM
    // and Infinity Cache "can be accessed as if the Infinity Fabric
    // were implemented on a single monolithic IOD" (Sec. V.A), i.e.
    // they do not bottleneck the 17 TB/s cache: ~3 TB/s per edge
    // per direction. 0.4 mW/Gbps == 3.2 pJ/byte.
    return {LinkKind::usr, tbps(3.0), 5'000, 3.2};
}

LinkParams
interposerLinkParams()
{
    // IOD to one HBM stack over the 2.5D interposer: the stack's
    // 16 channels x ~41.4 GB/s.
    return {LinkKind::interposer, gbps(663.0), 3'000, 1.2};
}

LinkParams
serdesIfLinkParams()
{
    // One x16 IF link: 64 GB/s per direction (paper Sec. VIII).
    return {LinkKind::serdesIf, gbps(64.0), 30'000, 11.0};
}

LinkParams
pcieLinkParams()
{
    // One x16 PCIe Gen5 link: 64 GB/s per direction.
    return {LinkKind::pcie, gbps(64.0), 150'000, 14.0};
}

Link::Link(SimObject *parent, const std::string &name,
           const LinkParams &params)
    : SimObject(parent, name),
      transfers(this, "transfers", "payload transfers"),
      bytes_moved(this, "bytes_moved", "total bytes moved"),
      hp_transfers(this, "hp_transfers",
                   "high-priority (reserved VC) transfers"),
      busy_frac(this, "busy_frac",
                "busy ticks / observed wall ticks",
                [this] { return utilization(); }),
      hp_busy_frac(this, "hp_busy_frac",
                   "reserved-VC serialization ticks / observed "
                   "wall ticks",
                   [this] { return hpUtilization(); }),
      achieved_gbps(this, "achieved_gbps",
                    "achieved bandwidth first-to-last transfer, GB/s",
                    [this] { return achievedBandwidth() / 1e9; }),
      params_(params),
      occupancy_(params.bandwidth / static_cast<double>(ticksPerSecond))
{
}

Tick
Link::transfer(Tick when, std::uint64_t bytes, bool high_priority)
{
    if (killed_)
        panic(name(), ": transfer on a killed link (routing should "
              "have gone around it)");
    // Same-tick transfers from different events contend for the
    // occupancy queue; the tracker decides whether that order can
    // matter. The rate/liveness read pairs with the kill()/derate()
    // writes so a same-tick fault-vs-transfer collision is flagged.
    EHPSIM_TRACK_READ(this, "state");
    EHPSIM_TRACK_WRITE(this, "occupancy");
    // Serialization at the current (possibly derated) rate: the
    // occupancy charge for bulk traffic, the whole delay for
    // reserved-VC traffic, and the busy-accounting increment for
    // both classes.
    const Tick ser =
        serializationTicks(bytes, effectiveBandwidth());
    Tick done;
    if (high_priority) {
        ++hp_transfers;
        // Reserved VC: pays serialization at link rate but does not
        // queue behind bulk data. Still accounted as busy time —
        // a link carrying only HP traffic used to report
        // busy_frac == 0 (see hp_busy_frac).
        hp_busy_ticks_ += ser;
        done = when + ser;
    } else {
        done = occupancy_.occupy(when, bytes);
        busy_ticks_ += ser;
    }
    // One batched bookkeeping touch per hop: counters and the
    // first/last activity window update together, after the timing
    // math, so a multi-hop send writes each link's state once.
    ++transfers;
    bytes_moved += static_cast<double>(bytes);
    if (when < first_use_)
        first_use_ = when;
    const Tick arrival = done + params_.latency;
    if (arrival > last_done_)
        last_done_ = arrival;
    return arrival;
}

void
Link::kill()
{
    if (killed_)
        fatal(name(), ": already killed");
    EHPSIM_TRACK_WRITE(this, "state");
    killed_ = true;
}

void
Link::derate(double factor)
{
    if (killed_)
        fatal(name(), ": cannot derate a killed link");
    if (!(factor > 0.0) || factor > 1.0)
        fatal(name(), ": derate factor ", factor,
              " out of range (0, 1]");
    // Rate change races with any same-tick transfer over this link.
    EHPSIM_TRACK_WRITE(this, "state");
    derate_ *= factor;
    occupancy_.setBandwidth(effectiveBandwidth() /
                            static_cast<double>(ticksPerSecond));
}

void
Link::snapshot(SnapshotWriter &w) const
{
    StatGroup::snapshot(w);
    occupancy_.snapshot(w);
    w.putU64(first_use_);
    w.putU64(last_done_);
    w.putU64(busy_ticks_);
    w.putU64(hp_busy_ticks_);
    w.putF64(derate_);
    w.putBool(killed_);
}

void
Link::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    // The tracker restore sets bytes_per_tick_ and window_ directly;
    // going through derate()/setBandwidth() here would recompute the
    // window and double-apply the derating.
    occupancy_.restore(r);
    first_use_ = r.getU64();
    last_done_ = r.getU64();
    busy_ticks_ = r.getU64();
    hp_busy_ticks_ = r.getU64();
    derate_ = r.getF64();
    killed_ = r.getBool();
}

double
Link::energyJoules() const
{
    return bytes_moved.value() * params_.energy_pj_per_byte * 1e-12;
}

double
Link::achievedBandwidth() const
{
    if (last_done_ <= first_use_ || first_use_ == maxTick)
        return 0.0;
    return bytes_moved.value() / secondsFromTicks(last_done_ -
                                                  first_use_);
}

double
Link::utilization() const
{
    if (last_done_ <= first_use_ || first_use_ == maxTick)
        return 0.0;
    return static_cast<double>(busy_ticks_) /
           static_cast<double>(last_done_ - first_use_);
}

double
Link::hpUtilization() const
{
    if (last_done_ <= first_use_ || first_use_ == maxTick)
        return 0.0;
    return static_cast<double>(hp_busy_ticks_) /
           static_cast<double>(last_done_ - first_use_);
}

} // namespace fabric
} // namespace ehpsim
