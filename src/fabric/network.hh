/**
 * @file
 * The Infinity Fabric network: named nodes joined by Link pairs,
 * with shortest-path routing.
 *
 * The "NoC" of MI300 spans multiple chips (paper Sec. IV.A): XCDs and
 * CCDs attach to their IOD's data fabric, the four IODs connect over
 * USR PHYs, HBM stacks hang off each IOD over the 2.5D interposer,
 * and x16 links leave the package. A Network models all of these as
 * one graph; messages traverse the minimum-hop path, paying each
 * link's serialization + latency, and cut-through is approximated by
 * charging serialization on every hop but overlapping propagation.
 */

#ifndef EHPSIM_FABRIC_NETWORK_HH
#define EHPSIM_FABRIC_NETWORK_HH

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fabric/link.hh"

namespace ehpsim
{
namespace fabric
{

using NodeId = unsigned;

/** What a node represents; used for diagnostics and power mapping. */
enum class NodeKind
{
    iod,
    xcd,
    ccd,
    hbmStack,
    ioPort,
    device,     ///< external host, NIC, switch...
};

struct MessageResult
{
    Tick arrival = 0;
    unsigned hops = 0;
    double energy_pj = 0;
};

/**
 * A minimum-hop path resolved all the way to its Link objects, in
 * hop order. This is the fabric fast-path currency (DESIGN.md §12):
 * resolving a route once and replaying transfers over the cached
 * Link pointers skips the per-hop link-table lookup that used to run
 * per chunk. References are valid until the next topology mutation
 * (addNode/connect/killLink); cache them only alongside
 * routeEpoch().
 */
struct LinkRoute
{
    std::vector<Link *> links;
    /** Partition domains of the route's endpoints (-1 when the
     *  node declares none); lets sendOnRoute() record the
     *  cross-partition flow without a per-send node lookup. */
    int src_domain = -1;
    int dst_domain = -1;
};

class Network : public SimObject
{
  public:
    Network(SimObject *parent, const std::string &name);

    /** Add a node; names must be unique. */
    NodeId addNode(const std::string &name, NodeKind kind);

    /** Connect two nodes with a pair of opposing links. */
    void connect(NodeId a, NodeId b, const LinkParams &params);

    std::size_t numNodes() const { return node_names_.size(); }

    NodeId nodeByName(const std::string &name) const;

    const std::string &nodeName(NodeId id) const;

    NodeKind nodeKind(NodeId id) const { return node_kinds_[id]; }

    /**
     * Declare the partition domain (socket / IOD id — the
     * prospective PDES logical process) of node @p id. Declare
     * domains before connect(): links and the race lookahead table
     * pick them up as connections are made. -1 clears.
     */
    void setNodeDomain(NodeId id, int domain);

    /** Partition domain of @p id; -1 when undeclared. */
    int nodeDomain(NodeId id) const;

    /** The unidirectional link from @p a to @p b (fatal if absent). */
    Link *link(NodeId a, NodeId b);

    /**
     * Fail both directions of the a <-> b link pair at once (fault
     * injection). Routes are invalidated and recomputed around the
     * dead link on next use; sending to a node the failure cut off
     * fatals with both node names. Fatal when no live link joins
     * the pair.
     */
    void killLink(NodeId a, NodeId b);

    /**
     * Degrade both directions of the a <-> b link pair to
     * @p factor of their current rate (cumulative; 0 < factor <= 1).
     * Routing is unchanged: min-hop paths ignore bandwidth.
     */
    void derateLink(NodeId a, NodeId b, double factor);

    /** True while a live link joins @p a directly to @p b. */
    bool linkAlive(NodeId a, NodeId b) const;

    /** True when @p dst can still be reached from @p src. */
    bool reachable(NodeId src, NodeId dst) const;

    /** All links (both directions), for stats sweeps. */
    std::vector<Link *> allLinks();

    /** Minimum-hop path as a node sequence (fatal if unreachable). */
    const std::vector<NodeId> &path(NodeId src, NodeId dst) const;

    /**
     * The minimum-hop path resolved to Link pointers, cached per
     * (src, dst) and rebuilt lazily after invalidation (fatal if
     * unreachable). The reference is stable until the next topology
     * mutation; revalidate with routeEpoch() before reuse across
     * events.
     */
    const LinkRoute &linkRoute(NodeId src, NodeId dst) const;

    /**
     * Monotonic counter bumped by every route invalidation
     * (addNode, connect, killLink). A cached LinkRoute reference is
     * valid only while this value is unchanged from when it was
     * resolved.
     */
    std::uint64_t routeEpoch() const { return route_epoch_; }

    /** Hop count of the minimum path (0 when src == dst). */
    unsigned hopCount(NodeId src, NodeId dst) const;

    /**
     * Send @p bytes from @p src to @p dst starting at @p when.
     * Charges serialization+occupancy on every hop; propagation
     * latencies accumulate.
     */
    MessageResult send(Tick when, NodeId src, NodeId dst,
                       std::uint64_t bytes,
                       bool high_priority = false);

    /**
     * Plain tallies mirroring the Network-level messages/total_hops
     * Scalars. A PDES worker passes one per partition shard to
     * sendOnRoute() so concurrent partitions never touch the shared
     * stat objects; shards are merged back into the Scalars at a
     * synchronization barrier (comm::CommGroup::attachPdes).
     */
    struct SendCounters
    {
        std::uint64_t messages = 0;
        std::uint64_t hops = 0;
    };

    /**
     * Send @p bytes over an already-resolved route: identical
     * timing, energy, and stats to send(), minus the route lookup.
     * @p route must come from linkRoute() at the current
     * routeEpoch(); a stale reference is a use-after-invalidate.
     * When @p counters is non-null the network-level message/hop
     * tallies go there instead of the messages/total_hops Scalars
     * (per-link stats are still updated; under PDES each link is
     * owned by exactly one worker group).
     */
    MessageResult sendOnRoute(Tick when, const LinkRoute &route,
                              std::uint64_t bytes,
                              bool high_priority = false,
                              SendCounters *counters = nullptr);

    /** Sum of transfer energy over all links, joules. */
    double totalEnergyJoules() const;

    /** @{ statistics */
    stats::Scalar messages;
    stats::Scalar total_hops;
    stats::Scalar links_killed;
    stats::Scalar links_derated;
    stats::Formula reroutes;
    /** @} */

    /**
     * @{ checkpoint (DESIGN.md §16). The base walk serializes every
     * Link child (liveness included); the Network appends its fault
     * flag, route epoch, recompute counter, and the set of sources
     * whose route tables were valid. restore() erases dead edges
     * from the rebuilt adjacency (std::erase preserves the order of
     * the survivors, matching the straight-through kill sequence)
     * and recomputes the saved sources' routes *before* re-arming
     * the fault flag, so the prewarm never double-counts reroutes.
     */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    void invalidateRoutes();

    void computeRoutesFrom(NodeId src) const;

    std::vector<std::string> node_names_;
    std::vector<NodeKind> node_kinds_;
    std::vector<int> node_domains_;
    std::map<std::string, NodeId> id_by_name_;
    std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
    std::vector<std::vector<NodeId>> adjacency_;

    /**
     * Route cache: routes_[src][dst] = node path. All three caches
     * (routes_, routes_valid_, link_routes_) fill lazily per
     * SOURCE, which is what makes them safe under PDES: a source's
     * slots are only ever touched by the worker group owning its
     * partition domain. routes_valid_ is vector<char>, not
     * vector<bool> — the packed-bit specialization would let two
     * groups' flags share a word.
     */
    mutable std::vector<std::vector<std::vector<NodeId>>> routes_;
    mutable std::vector<char> routes_valid_;

    /** Link-resolved route cache, filled lazily per (src, dst);
     *  cleared (with routes_) on every topology mutation. */
    mutable std::vector<std::vector<LinkRoute>> link_routes_;
    std::uint64_t route_epoch_ = 0;

    /** Per-source route recomputes forced by link faults. Atomic
     *  (relaxed): concurrent PDES workers recompute for distinct
     *  sources, and a sum is order-independent. */
    mutable std::atomic<std::uint64_t> route_recomputes_{0};
    bool faulted_ = false;
};

} // namespace fabric
} // namespace ehpsim

#endif // EHPSIM_FABRIC_NETWORK_HH
