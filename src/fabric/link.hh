/**
 * @file
 * Point-to-point fabric links.
 *
 * The paper contrasts several physical link classes:
 *  - USR PHYs between adjacent IODs: >10x the area bandwidth density
 *    of SerDes, 0.4 pJ/bit, multiple TB/s (Sec. V.A, Fig. 7);
 *  - 2D organic-substrate SerDes IF links (MI250X GCD-GCD, EHPv4,
 *    socket-to-socket): ~64 GB/s per direction per x16;
 *  - PCIe Gen5 x16 to hosts/NICs;
 *  - on-die data-fabric segments and 2.5D interposer links to HBM.
 *
 * A Link is unidirectional: bandwidth with an occupancy queue, a
 * propagation latency, and a transfer energy. High-priority traffic
 * (the ACE-to-ACE synchronization channel of Sec. VI.A) bypasses the
 * occupancy queue, modeling a reserved virtual channel.
 */

#ifndef EHPSIM_FABRIC_LINK_HH
#define EHPSIM_FABRIC_LINK_HH

#include <string>

#include "mem/mem_device.hh"
#include "sim/units.hh"

namespace ehpsim
{
namespace fabric
{

enum class LinkKind
{
    onDie,          ///< data fabric within one IOD
    usr,            ///< ultra-short-reach IOD-to-IOD PHY
    interposer,     ///< 2.5D link from IOD to an HBM stack
    serdesIf,       ///< x16 Infinity Fabric SerDes (2D/off-package)
    pcie,           ///< x16 PCIe Gen5
};

const char *linkKindName(LinkKind k);

struct LinkParams
{
    LinkKind kind = LinkKind::onDie;
    BytesPerSecond bandwidth = tbps(2.0);   ///< per direction
    Tick latency = 2'000;                   ///< ps propagation
    double energy_pj_per_byte = 0.5;        ///< transfer energy
};

/** Published defaults for each link class. */
LinkParams onDieLinkParams();
LinkParams usrLinkParams();
LinkParams interposerLinkParams();
LinkParams serdesIfLinkParams();
LinkParams pcieLinkParams();

class Link : public SimObject
{
  public:
    Link(SimObject *parent, const std::string &name,
         const LinkParams &params);

    const LinkParams &params() const { return params_; }

    /**
     * Move @p bytes across the link starting at @p when.
     * @param high_priority Reserved-VC traffic (bypasses queueing).
     * @return arrival tick of the last byte.
     */
    Tick transfer(Tick when, std::uint64_t bytes,
                  bool high_priority = false);

    /**
     * Permanently fail this link (fault injection). The Network
     * stops routing over dead links, so a transfer on one is a
     * simulator bug and panics.
     */
    void kill();

    bool alive() const { return !killed_; }

    /**
     * Degrade the link to @p factor of its current rate
     * (cumulative; 0 < factor <= 1), modeling lane retirement or a
     * retrain to a lower speed.
     */
    void derate(double factor);

    /** Remaining fraction of the nominal bandwidth. */
    double derateFactor() const { return derate_; }

    /** Nominal bandwidth scaled by the accumulated derating. */
    BytesPerSecond effectiveBandwidth() const
    {
        return params_.bandwidth * derate_;
    }

    /** Total energy spent on this link, in joules. */
    double energyJoules() const;

    /** Achieved bandwidth between the first and last transfer. */
    double achievedBandwidth() const;

    /** Utilization = busy time / wall time observed (bulk VC). */
    double utilization() const;

    /**
     * Reserved-VC utilization: high-priority serialization time /
     * wall time observed. Kept separate from utilization() so bulk
     * busy_frac keeps its meaning (occupancy-queue pressure) while
     * HP-only links no longer report zero busy time.
     */
    double hpUtilization() const;

    /** @{ statistics */
    stats::Scalar transfers;
    stats::Scalar bytes_moved;
    stats::Scalar hp_transfers;
    stats::Formula busy_frac;
    stats::Formula hp_busy_frac;
    stats::Formula achieved_gbps;
    /** @} */

    /** @{ checkpoint: stats (base) + occupancy windows, timing
     *  watermarks, derate, and liveness (DESIGN.md §16) */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    LinkParams params_;
    mem::OccupancyTracker occupancy_;
    Tick first_use_ = maxTick;
    Tick last_done_ = 0;
    Tick busy_ticks_ = 0;
    Tick hp_busy_ticks_ = 0;
    double derate_ = 1.0;
    bool killed_ = false;
};

} // namespace fabric
} // namespace ehpsim

#endif // EHPSIM_FABRIC_LINK_HH
