/**
 * @file
 * Adapter exposing a MemDevice across the fabric.
 *
 * A RemoteMemDevice makes "memory behind the network" composable: an
 * access issued at node @p src travels to @p dst (command packet, or
 * payload for writes), performs the target access, and returns
 * (payload for reads, ack for writes). This models, e.g., a CCD
 * reaching HBM channels on a remote IOD over USR links, or a host
 * CPU reaching a discrete GPU's HBM over PCIe.
 */

#ifndef EHPSIM_FABRIC_REMOTE_DEVICE_HH
#define EHPSIM_FABRIC_REMOTE_DEVICE_HH

#include "fabric/network.hh"
#include "mem/mem_device.hh"

namespace ehpsim
{
namespace fabric
{

class RemoteMemDevice : public mem::MemDevice
{
  public:
    /** Command/ack packet overhead in bytes. */
    static constexpr std::uint64_t controlBytes = 32;

    RemoteMemDevice(SimObject *parent, const std::string &name,
                    Network *net, NodeId src, NodeId dst,
                    mem::MemDevice *target)
        : mem::MemDevice(parent, name),
          net_(net), src_(src), dst_(dst), target_(target)
    {}

    mem::AccessResult
    access(Tick when, Addr addr, std::uint64_t bytes,
           bool write) override
    {
        // Request: command packet, plus payload when writing.
        const std::uint64_t req_bytes =
            controlBytes + (write ? bytes : 0);
        const auto req = net_->send(when, src_, dst_, req_bytes);
        auto r = target_->access(req.arrival, addr, bytes, write);
        // Response: payload when reading, ack when writing.
        const std::uint64_t resp_bytes =
            controlBytes + (write ? 0 : bytes);
        const auto resp = net_->send(r.complete, dst_, src_,
                                     resp_bytes);
        r.complete = resp.arrival;
        return r;
    }

    NodeId srcNode() const { return src_; }

    NodeId dstNode() const { return dst_; }

  private:
    Network *net_;
    NodeId src_;
    NodeId dst_;
    mem::MemDevice *target_;
};

} // namespace fabric
} // namespace ehpsim

#endif // EHPSIM_FABRIC_REMOTE_DEVICE_HH
