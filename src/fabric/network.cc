#include "fabric/network.hh"

#include <algorithm>
#include <deque>

#include "sim/access_tracker.hh"
#include "sim/logging.hh"

namespace ehpsim
{
namespace fabric
{

Network::Network(SimObject *parent, const std::string &name)
    : SimObject(parent, name),
      messages(this, "messages", "messages sent"),
      total_hops(this, "total_hops", "sum of hops over all messages"),
      links_killed(this, "links_killed",
                   "link pairs failed by fault injection"),
      links_derated(this, "links_derated",
                    "link-pair derating events"),
      reroutes(this, "reroutes",
               "route-table recomputes forced by link faults",
               [this] {
                   return static_cast<double>(route_recomputes_.load(
                       std::memory_order_relaxed));
               })
{
}

NodeId
Network::addNode(const std::string &name, NodeKind kind)
{
    const auto id = static_cast<NodeId>(node_names_.size());
    if (!id_by_name_.emplace(name, id).second)
        fatal("duplicate fabric node name '", name, "'");
    node_names_.push_back(name);
    node_kinds_.push_back(kind);
    node_domains_.push_back(-1);
    adjacency_.emplace_back();
    invalidateRoutes();
    return id;
}

void
Network::setNodeDomain(NodeId id, int domain)
{
    if (id >= numNodes())
        fatal("bad node id ", id);
    node_domains_[id] = domain;
}

int
Network::nodeDomain(NodeId id) const
{
    if (id >= numNodes())
        fatal("bad node id ", id);
    return node_domains_[id];
}

void
Network::connect(NodeId a, NodeId b, const LinkParams &params)
{
    if (a >= numNodes() || b >= numNodes() || a == b)
        fatal("bad fabric connection ", a, " <-> ", b);
    const auto key_ab = std::make_pair(a, b);
    const auto key_ba = std::make_pair(b, a);
    if (links_.count(key_ab))
        fatal("duplicate link ", nodeName(a), " -> ", nodeName(b));
    links_[key_ab] = std::make_unique<Link>(
        this, nodeName(a) + "_to_" + nodeName(b), params);
    links_[key_ba] = std::make_unique<Link>(
        this, nodeName(b) + "_to_" + nodeName(a), params);
    // Each directed link belongs to its source node's partition;
    // a cross-partition link feeds the PDES lookahead table with
    // its propagation latency (the conservative sync horizon).
    links_[key_ab]->setRaceDomain(node_domains_[a]);
    links_[key_ba]->setRaceDomain(node_domains_[b]);
    EHPSIM_RACE_PARTITION_LINK(node_domains_[a], node_domains_[b],
                               params.latency);
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    invalidateRoutes();
}

NodeId
Network::nodeByName(const std::string &name) const
{
    const auto it = id_by_name_.find(name);
    if (it == id_by_name_.end())
        fatal("unknown fabric node '", name, "'");
    return it->second;
}

const std::string &
Network::nodeName(NodeId id) const
{
    if (id >= node_names_.size())
        fatal("bad node id ", id);
    return node_names_[id];
}

Link *
Network::link(NodeId a, NodeId b)
{
    auto it = links_.find(std::make_pair(a, b));
    if (it == links_.end())
        fatal("no link ", nodeName(a), " -> ", nodeName(b));
    return it->second.get();
}

void
Network::killLink(NodeId a, NodeId b)
{
    Link *ab = link(a, b);
    Link *ba = link(b, a);
    if (!ab->alive())
        fatal("link ", nodeName(a), " <-> ", nodeName(b),
              " already killed");
    ab->kill();
    ba->kill();
    // Structural mutation: any event sending over the fabric at the
    // same tick races with the route invalidation below.
    EHPSIM_TRACK_WRITE(this, "topology");
    std::erase(adjacency_[a], b);
    std::erase(adjacency_[b], a);
    faulted_ = true;
    ++links_killed;
    invalidateRoutes();
}

void
Network::derateLink(NodeId a, NodeId b, double factor)
{
    Link *ab = link(a, b);
    Link *ba = link(b, a);
    if (!ab->alive())
        fatal("cannot derate killed link ", nodeName(a), " <-> ",
              nodeName(b));
    ab->derate(factor);
    ba->derate(factor);
    ++links_derated;
}

bool
Network::linkAlive(NodeId a, NodeId b) const
{
    const auto it = links_.find(std::make_pair(a, b));
    return it != links_.end() && it->second->alive();
}

bool
Network::reachable(NodeId src, NodeId dst) const
{
    if (src >= numNodes() || dst >= numNodes())
        fatal("bad route endpoints ", src, " -> ", dst);
    if (src == dst)
        return true;
    if (!routes_valid_[src])
        computeRoutesFrom(src);
    return !routes_[src][dst].empty();
}

std::vector<Link *>
Network::allLinks()
{
    std::vector<Link *> out;
    out.reserve(links_.size());
    for (auto &kv : links_)
        out.push_back(kv.second.get());
    return out;
}

void
Network::invalidateRoutes()
{
    routes_.assign(numNodes(), {});
    routes_valid_.assign(numNodes(), false);
    link_routes_.assign(numNodes(), {});
    ++route_epoch_;
}

void
Network::computeRoutesFrom(NodeId src) const
{
    if (faulted_)
        route_recomputes_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t n = numNodes();
    std::vector<NodeId> prev(n, src);
    std::vector<int> dist(n, -1);
    std::deque<NodeId> frontier;
    dist[src] = 0;
    frontier.push_back(src);
    while (!frontier.empty()) {
        const NodeId u = frontier.front();
        frontier.pop_front();
        for (NodeId v : adjacency_[u]) {
            if (dist[v] < 0) {
                dist[v] = dist[u] + 1;
                prev[v] = u;
                frontier.push_back(v);
            }
        }
    }
    routes_[src].assign(n, {});
    for (NodeId dst = 0; dst < n; ++dst) {
        if (dist[dst] < 0)
            continue;           // unreachable: path() fatals on use
        std::vector<NodeId> rev;
        for (NodeId v = dst; v != src; v = prev[v])
            rev.push_back(v);
        rev.push_back(src);
        std::reverse(rev.begin(), rev.end());
        routes_[src][dst] = std::move(rev);
    }
    routes_valid_[src] = true;
}

const std::vector<NodeId> &
Network::path(NodeId src, NodeId dst) const
{
    if (src >= numNodes() || dst >= numNodes())
        fatal("bad route endpoints ", src, " -> ", dst);
    if (!routes_valid_[src])
        computeRoutesFrom(src);
    const auto &p = routes_[src][dst];
    if (p.empty()) {
        fatal("fabric node '", nodeName(dst),
              "' unreachable from '", nodeName(src), "'",
              links_killed.value() > 0
                  ? " (link failures partitioned the fabric)"
                  : "");
    }
    return p;
}

const LinkRoute &
Network::linkRoute(NodeId src, NodeId dst) const
{
    const auto &p = path(src, dst);
    auto &per_src = link_routes_[src];
    if (per_src.empty())
        per_src.resize(numNodes());
    LinkRoute &r = per_src[dst];
    if (r.links.empty() && p.size() > 1) {
        r.links.reserve(p.size() - 1);
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
            const auto it =
                links_.find(std::make_pair(p[i], p[i + 1]));
            r.links.push_back(it->second.get());
        }
        r.src_domain = node_domains_[src];
        r.dst_domain = node_domains_[dst];
    }
    return r;
}

unsigned
Network::hopCount(NodeId src, NodeId dst) const
{
    if (src == dst)
        return 0;
    return static_cast<unsigned>(path(src, dst).size() - 1);
}

MessageResult
Network::send(Tick when, NodeId src, NodeId dst, std::uint64_t bytes,
              bool high_priority)
{
    if (src == dst) {
        ++messages;
        MessageResult res;
        res.arrival = when;
        return res;
    }
    return sendOnRoute(when, linkRoute(src, dst), bytes,
                       high_priority);
}

MessageResult
Network::sendOnRoute(Tick when, const LinkRoute &route,
                     std::uint64_t bytes, bool high_priority,
                     SendCounters *counters)
{
    // Sends consult the route tables killLink() mutates, and feed
    // the partition dependency graph when the route crosses
    // domains.
    EHPSIM_TRACK_READ(this, "topology");
    EHPSIM_TRACK_WRITE(this, "stats.messages");
    EHPSIM_RACE_PARTITION_FLOW(route.src_domain, route.dst_domain);
    MessageResult res;
    Tick t = when;
    for (Link *l : route.links) {
        t = l->transfer(t, bytes, high_priority);
        res.energy_pj += static_cast<double>(bytes) *
                         l->params().energy_pj_per_byte;
        ++res.hops;
    }
    if (counters) {
        ++counters->messages;
        counters->hops += res.hops;
    } else {
        ++messages;
        total_hops += res.hops;
    }
    res.arrival = t;
    return res;
}

void
Network::snapshot(SnapshotWriter &w) const
{
    StatGroup::snapshot(w);
    w.putBool(faulted_);
    w.putU64(route_epoch_);
    w.putU64(route_recomputes_.load(std::memory_order_relaxed));
    std::uint64_t valid = 0;
    for (std::size_t src = 0; src < routes_valid_.size(); ++src) {
        if (routes_valid_[src])
            ++valid;
    }
    w.putU64(valid);
    for (std::size_t src = 0; src < routes_valid_.size(); ++src) {
        if (routes_valid_[src])
            w.putU32(static_cast<std::uint32_t>(src));
    }
}

void
Network::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    // The base walk restored each Link's killed_ flag; mirror the
    // kills structurally by erasing dead edges from the adjacency
    // lists (order-preserving, so the BFS visits neighbors in the
    // same order the straight-through run would).
    for (const auto &kv : links_) {
        if (!kv.second->alive())
            std::erase(adjacency_[kv.first.first], kv.first.second);
    }
    invalidateRoutes();
    const bool faulted = r.getBool();
    const std::uint64_t epoch = r.getU64();
    const std::uint64_t recomputes = r.getU64();
    // Prewarm the sources that had valid route tables at save time
    // while faulted_ is still false: the checkpointed run computed
    // these before the save, so the replay must not count them as
    // post-fault recomputes.
    const std::uint64_t valid = r.getU64();
    for (std::uint64_t i = 0; i < valid; ++i) {
        const NodeId src = r.getU32();
        if (src >= numNodes())
            fatal("snapshot: route source ", src,
                  " out of range for a ", numNodes(),
                  "-node fabric — checkpoint/topology mismatch");
        computeRoutesFrom(src);
    }
    faulted_ = faulted;
    route_epoch_ = epoch;
    route_recomputes_.store(recomputes, std::memory_order_relaxed);
}

double
Network::totalEnergyJoules() const
{
    double e = 0;
    for (const auto &kv : links_)
        e += kv.second->energyJoules();
    return e;
}

} // namespace fabric
} // namespace ehpsim
