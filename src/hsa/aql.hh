/**
 * @file
 * HSA Architected Queueing Language structures (paper Sec. VI.A).
 *
 * AQL packets describe a high-level goal — "launch kernel X with Y
 * workgroups of Z threads" — rather than register-level commands.
 * That abstraction is what lets an ACE on *each* XCD of a partition
 * independently read the same packet and launch its own subset of
 * the workgroups.
 */

#ifndef EHPSIM_HSA_AQL_HH
#define EHPSIM_HSA_AQL_HH

#include <cstdint>
#include <vector>

#include "coherence/gpu_scope.hh"
#include "gpu/compute_unit.hh"

namespace ehpsim
{
namespace hsa
{

/** Completion signal: decremented when the kernel finishes. */
struct Signal
{
    std::int64_t value = 1;
    Tick completed_at = 0;

    bool done() const { return value <= 0; }
};

/** Packet types (subset of the HSA AQL formats). */
enum class PacketType
{
    kernelDispatch,
    barrierAnd,     ///< wait for signals, then proceed
};

/** A kernel-dispatch AQL packet. */
struct AqlPacket
{
    PacketType type = PacketType::kernelDispatch;

    /** Grid: total workgroups and threads per workgroup. */
    std::uint64_t grid_workgroups = 1;
    std::uint32_t workgroup_size = 256;

    /** Per-workgroup execution requirements (uniform grid). */
    gpu::WorkgroupWork work;

    /** Stride between consecutive workgroups' memory footprints. */
    std::uint64_t read_stride = 0;
    std::uint64_t write_stride = 0;

    /** Memory ordering scopes applied at kernel begin/end. */
    coherence::Scope acquire_scope = coherence::Scope::device;
    coherence::Scope release_scope = coherence::Scope::device;

    /** Barrier bit: later packets wait for this one. */
    bool barrier = true;

    /** For barrierAnd packets: proceed once all of these are done. */
    std::vector<const Signal *> wait_signals;

    Signal *completion = nullptr;
};

} // namespace hsa
} // namespace ehpsim

#endif // EHPSIM_HSA_AQL_HH
