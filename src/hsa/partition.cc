#include "hsa/partition.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace hsa
{

namespace
{
/** AQL packet size: one 64 B cache line. */
constexpr std::uint64_t aqlPacketBytes = 64;
/** ACE-to-ACE synchronization message payload. */
constexpr std::uint64_t syncMessageBytes = 32;
} // anonymous namespace

const char *
distributionPolicyName(DistributionPolicy p)
{
    switch (p) {
      case DistributionPolicy::roundRobin:
        return "round_robin";
      case DistributionPolicy::blocked:
        return "blocked";
    }
    panic("bad distribution policy");
}

Partition::Partition(SimObject *parent, const std::string &name,
                     std::vector<gpu::Xcd *> xcds,
                     coherence::ScopeController *scopes,
                     fabric::Network *net,
                     std::vector<fabric::NodeId> xcd_nodes,
                     fabric::NodeId queue_node,
                     std::vector<unsigned> scope_ids)
    : SimObject(parent, name),
      dispatches(this, "dispatches", "kernel dispatches"),
      workgroups_launched(this, "workgroups_launched",
                          "workgroups launched across all XCDs"),
      sync_messages(this, "sync_messages",
                    "high-priority ACE synchronization messages"),
      xcds_(std::move(xcds)),
      scopes_(scopes),
      net_(net),
      xcd_nodes_(std::move(xcd_nodes)),
      queue_node_(queue_node),
      scope_ids_(std::move(scope_ids))
{
    if (xcds_.empty())
        fatal("a partition needs at least one XCD");
    if (net_ && xcd_nodes_.size() != xcds_.size())
        fatal("xcd_nodes must parallel xcds when a fabric is given");
    if (scope_ids_.empty()) {
        for (unsigned i = 0; i < xcds_.size(); ++i)
            scope_ids_.push_back(i);
    }
    if (scope_ids_.size() != xcds_.size())
        fatal("scope_ids must parallel xcds");
}

unsigned
Partition::totalCus() const
{
    unsigned n = 0;
    for (const auto *x : xcds_)
        n += x->numActiveCus();
    return n;
}

double
Partition::peakFlops(gpu::Pipe pipe, gpu::DataType dt,
                     bool sparse) const
{
    double f = 0;
    for (const auto *x : xcds_)
        f += x->peakFlops(pipe, dt, sparse);
    return f;
}

unsigned
Partition::xcdFor(std::uint64_t wg_index, std::uint64_t grid_size) const
{
    const auto n = static_cast<std::uint64_t>(xcds_.size());
    switch (policy_) {
      case DistributionPolicy::roundRobin:
        return static_cast<unsigned>(wg_index % n);
      case DistributionPolicy::blocked: {
        const std::uint64_t block = (grid_size + n - 1) / n;
        return static_cast<unsigned>(
            std::min(wg_index / block, n - 1));
      }
    }
    panic("bad distribution policy");
}

DispatchResult
Partition::dispatch(Tick when, const AqlPacket &pkt)
{
    ++dispatches;

    if (pkt.type == PacketType::barrierAnd) {
        // HSA barrier-AND packet: complete once every listed signal
        // has completed; no workgroups launch.
        DispatchResult res;
        res.complete = when;
        for (const auto *sig : pkt.wait_signals) {
            if (!sig)
                continue;
            if (!sig->done())
                fatal("barrierAnd waits on a signal that never "
                      "completes (deadlock)");
            res.complete = std::max(res.complete,
                                    sig->completed_at);
        }
        if (pkt.completion) {
            pkt.completion->value -= 1;
            pkt.completion->completed_at = res.complete;
        }
        return res;
    }

    const unsigned n = numXcds();
    DispatchResult res;
    res.workgroups = pkt.grid_workgroups;
    res.per_xcd_workgroups.assign(n, 0);

    // Step 1 (Fig. 13 (1)): an ACE in each XCD reads the AQL packet
    // from the user-mode queue in memory.
    std::vector<Tick> ready(n, when);
    for (unsigned i = 0; i < n; ++i) {
        if (net_) {
            ready[i] = net_->send(when, queue_node_, xcd_nodes_[i],
                                  aqlPacketBytes).arrival;
        }
        // Kernel-begin acquire at the packet's scope.
        if (scopes_) {
            auto op = scopes_->acquire(ready[i], scope_ids_[i],
                                       pkt.acquire_scope);
            ready[i] = std::max(ready[i], op.complete);
        }
    }

    // Step 2 (Fig. 13 (2)): each ACE launches its subset of the
    // grid; the assignment policy is configurable (L2 reuse vs
    // bandwidth spread).
    std::vector<Tick> xcd_done = ready;
    for (std::uint64_t wg = 0; wg < pkt.grid_workgroups; ++wg) {
        const unsigned i = xcdFor(wg, pkt.grid_workgroups);
        gpu::WorkgroupWork work = pkt.work;
        work.read_base = pkt.work.read_base + wg * pkt.read_stride;
        work.write_base = pkt.work.write_base + wg * pkt.write_stride;
        const Tick done = xcds_[i]->dispatchWorkgroup(ready[i], work);
        xcd_done[i] = std::max(xcd_done[i], done);
        ++res.per_xcd_workgroups[i];
        ++workgroups_launched;
    }

    // Step 3 (Fig. 13 (3)): the ACEs synchronize; every XCD reports
    // completion to the nominated XCD 0 over the high-priority
    // fabric channel.
    Tick all_done = xcd_done[0];
    for (unsigned i = 1; i < n; ++i) {
        Tick arrive = xcd_done[i];
        if (net_) {
            arrive = net_->send(xcd_done[i], xcd_nodes_[i],
                                xcd_nodes_[0], syncMessageBytes,
                                true).arrival;
        }
        ++res.sync_messages;
        ++sync_messages;
        all_done = std::max(all_done, arrive);
    }

    // Step 4 (Fig. 13 (4)): the nominated XCD ensures release-scope
    // visibility of every XCD's writes, then signals completion.
    Tick release_done = all_done;
    if (scopes_) {
        for (unsigned i = 0; i < n; ++i) {
            auto op = scopes_->release(all_done, scope_ids_[i],
                                       pkt.release_scope);
            release_done = std::max(release_done, op.complete);
        }
    }
    if (pkt.completion) {
        pkt.completion->value -= 1;
        pkt.completion->completed_at = release_done;
    }
    res.complete = release_done;
    return res;
}

Tick
Partition::processQueues(Tick when,
                         const std::vector<UserQueue *> &queues)
{
    std::vector<Tick> frontier(queues.size(), when);
    Tick last = when;
    bool any = true;
    while (any) {
        any = false;
        for (std::size_t q = 0; q < queues.size(); ++q) {
            auto pkt = queues[q]->pop();
            if (!pkt)
                continue;
            any = true;
            const auto res = dispatch(frontier[q], *pkt);
            last = std::max(last, res.complete);
            if (pkt->barrier)
                frontier[q] = res.complete;
        }
    }
    return last;
}

Tick
Partition::processQueue(Tick when, UserQueue &queue)
{
    Tick frontier = when;   // next packet's earliest start
    Tick last = when;
    while (auto pkt = queue.pop()) {
        const auto res = dispatch(frontier, *pkt);
        last = std::max(last, res.complete);
        if (pkt->barrier)
            frontier = res.complete;
    }
    return last;
}

} // namespace hsa
} // namespace ehpsim
