/**
 * @file
 * The CPU/GPU dispatch shim (paper Sec. VI.B, last paragraph).
 *
 * With unified memory, generic library calls (BLAS-style) can be
 * routed to either the CPU cores or the GPU CUs by a thin shim using
 * simple heuristics such as problem size — no explicit refactoring
 * or data movement. LibraryShim models that decision: given a
 * problem's flops and bytes it predicts CPU and GPU execution time
 * from peak rates and picks the faster side (with a configurable
 * launch-overhead penalty for the GPU path).
 */

#ifndef EHPSIM_HSA_SHIM_HH
#define EHPSIM_HSA_SHIM_HH

#include <cstdint>

#include "sim/types.hh"

namespace ehpsim
{
namespace hsa
{

/** Where the shim decided to run a call. */
enum class ShimTarget
{
    cpu,
    gpu,
};

struct ShimDecision
{
    ShimTarget target = ShimTarget::cpu;
    double cpu_time_s = 0;
    double gpu_time_s = 0;
};

class LibraryShim
{
  public:
    /**
     * @param cpu_flops Peak CPU flops/s available to the caller.
     * @param cpu_bw CPU-visible memory bandwidth (bytes/s).
     * @param gpu_flops Peak GPU flops/s.
     * @param gpu_bw GPU-visible memory bandwidth (bytes/s).
     * @param gpu_launch_overhead_s Kernel-launch cost.
     */
    LibraryShim(double cpu_flops, double cpu_bw, double gpu_flops,
                double gpu_bw, double gpu_launch_overhead_s = 5e-6)
        : cpu_flops_(cpu_flops), cpu_bw_(cpu_bw),
          gpu_flops_(gpu_flops), gpu_bw_(gpu_bw),
          launch_s_(gpu_launch_overhead_s)
    {}

    /** Roofline time estimate on either side, then pick the faster. */
    ShimDecision
    decide(std::uint64_t flops, std::uint64_t bytes) const
    {
        ShimDecision d;
        d.cpu_time_s = rooflineTime(flops, bytes, cpu_flops_, cpu_bw_);
        d.gpu_time_s =
            launch_s_ + rooflineTime(flops, bytes, gpu_flops_, gpu_bw_);
        d.target = d.gpu_time_s < d.cpu_time_s ? ShimTarget::gpu
                                               : ShimTarget::cpu;
        return d;
    }

    /**
     * Smallest problem (in flops, at arithmetic intensity
     * @p flops_per_byte) for which the shim offloads to the GPU.
     */
    std::uint64_t
    crossoverFlops(double flops_per_byte) const
    {
        std::uint64_t lo = 1, hi = 1ull << 62;
        while (lo < hi) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            const auto bytes = static_cast<std::uint64_t>(
                static_cast<double>(mid) / flops_per_byte);
            if (decide(mid, bytes).target == ShimTarget::gpu)
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    }

  private:
    static double
    rooflineTime(std::uint64_t flops, std::uint64_t bytes,
                 double peak_flops, double peak_bw)
    {
        const double tc = peak_flops > 0
                              ? static_cast<double>(flops) / peak_flops
                              : 0.0;
        const double tm = peak_bw > 0
                              ? static_cast<double>(bytes) / peak_bw
                              : 0.0;
        return tc > tm ? tc : tm;
    }

    double cpu_flops_;
    double cpu_bw_;
    double gpu_flops_;
    double gpu_bw_;
    double launch_s_;
};

} // namespace hsa
} // namespace ehpsim

#endif // EHPSIM_HSA_SHIM_HH
