#include "hsa/queue.hh"

namespace ehpsim
{
namespace hsa
{

UserQueue::UserQueue(SimObject *parent, const std::string &name,
                     std::size_t capacity)
    : SimObject(parent, name),
      packets_submitted(this, "packets_submitted",
                        "AQL packets accepted"),
      packets_dropped(this, "packets_dropped",
                      "submissions rejected on a full queue"),
      ring_(capacity)
{
}

bool
UserQueue::submit(const AqlPacket &pkt)
{
    if (full()) {
        ++packets_dropped;
        return false;
    }
    ring_[write_index_ % ring_.size()] = pkt;
    ++write_index_;
    doorbell_ = write_index_;
    ++packets_submitted;
    return true;
}

std::optional<AqlPacket>
UserQueue::pop()
{
    if (empty())
        return std::nullopt;
    AqlPacket pkt = ring_[read_index_ % ring_.size()];
    ++read_index_;
    return pkt;
}

} // namespace hsa
} // namespace ehpsim
