/**
 * @file
 * User-mode HSA queues (paper Sec. VI.A).
 *
 * The kernel-launch interface is a ring of AQL packets in user-mode
 * visible memory plus a doorbell. ehpsim models the ring indices and
 * capacity faithfully (software can overrun a full queue and must
 * check) while the packet payloads are C++ structs.
 */

#ifndef EHPSIM_HSA_QUEUE_HH
#define EHPSIM_HSA_QUEUE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "hsa/aql.hh"
#include "sim/sim_object.hh"

namespace ehpsim
{
namespace hsa
{

class UserQueue : public SimObject
{
  public:
    UserQueue(SimObject *parent, const std::string &name,
              std::size_t capacity = 256);

    std::size_t capacity() const { return ring_.size(); }

    std::size_t pending() const
    {
        return static_cast<std::size_t>(write_index_ - read_index_);
    }

    bool full() const { return pending() == ring_.size(); }

    bool empty() const { return pending() == 0; }

    std::uint64_t writeIndex() const { return write_index_; }

    std::uint64_t readIndex() const { return read_index_; }

    /**
     * Software enqueues a packet and rings the doorbell.
     * @return false when the queue is full (packet dropped).
     */
    bool submit(const AqlPacket &pkt);

    /** Hardware (the ACEs) reads the next packet. */
    std::optional<AqlPacket> pop();

    /** Doorbell value: last write index signalled to hardware. */
    std::uint64_t doorbell() const { return doorbell_; }

    /** @{ statistics */
    stats::Scalar packets_submitted;
    stats::Scalar packets_dropped;
    /** @} */

  private:
    std::vector<AqlPacket> ring_;
    std::uint64_t write_index_ = 0;
    std::uint64_t read_index_ = 0;
    std::uint64_t doorbell_ = 0;
};

} // namespace hsa
} // namespace ehpsim

#endif // EHPSIM_HSA_QUEUE_HH
