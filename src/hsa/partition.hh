/**
 * @file
 * Multi-XCD partitions and the cooperative dispatch protocol
 * (paper Sec. VI.A and Fig. 13).
 *
 * A Partition groups one or more XCDs into a single logical GPU.
 * When a dispatch packet arrives:
 *  1. an ACE in *each* XCD reads the AQL packet from the queue;
 *  2. each ACE launches only its subset of the grid's workgroups
 *     (the subset choice is a configurable policy trading L2 reuse
 *     against memory-bandwidth spread);
 *  3. the ACEs synchronize over the Infinity Fabric's high-priority
 *     channel as workgroups complete;
 *  4. a nominated XCD performs the release-scope operation and
 *     signals the completion signal.
 */

#ifndef EHPSIM_HSA_PARTITION_HH
#define EHPSIM_HSA_PARTITION_HH

#include <vector>

#include "coherence/gpu_scope.hh"
#include "fabric/network.hh"
#include "gpu/xcd.hh"
#include "hsa/queue.hh"

namespace ehpsim
{
namespace hsa
{

/** How workgroups are distributed across the partition's XCDs. */
enum class DistributionPolicy
{
    roundRobin,     ///< spread consecutive workgroups (max bandwidth)
    blocked,        ///< contiguous blocks per XCD (max L2 reuse)
};

const char *distributionPolicyName(DistributionPolicy p);

/** Outcome of one kernel dispatch. */
struct DispatchResult
{
    Tick complete = 0;              ///< completion signal time
    std::uint64_t workgroups = 0;
    unsigned sync_messages = 0;     ///< ACE-to-ACE HP messages
    std::vector<std::uint64_t> per_xcd_workgroups;
};

class Partition : public SimObject
{
  public:
    /**
     * @param net Fabric for packet reads and ACE sync (may be null
     *        for fabric-less unit tests).
     * @param xcd_nodes Fabric node of each XCD (parallel to xcds).
     * @param queue_node Fabric node where queue memory lives.
     * @param scope_ids Index of each XCD within @p scopes (defaults
     *        to 0..n-1 when the controller holds only these XCDs).
     */
    Partition(SimObject *parent, const std::string &name,
              std::vector<gpu::Xcd *> xcds,
              coherence::ScopeController *scopes,
              fabric::Network *net = nullptr,
              std::vector<fabric::NodeId> xcd_nodes = {},
              fabric::NodeId queue_node = 0,
              std::vector<unsigned> scope_ids = {});

    unsigned numXcds() const
    {
        return static_cast<unsigned>(xcds_.size());
    }

    gpu::Xcd *xcd(unsigned i) { return xcds_[i]; }

    void setPolicy(DistributionPolicy p) { policy_ = p; }

    DistributionPolicy policy() const { return policy_; }

    /** Scope-controller index of each XCD (parallel to xcds). */
    const std::vector<unsigned> &scopeIds() const
    {
        return scope_ids_;
    }

    /** Total active CUs across the partition. */
    unsigned totalCus() const;

    /** Aggregate peak flops/s. */
    double peakFlops(gpu::Pipe pipe, gpu::DataType dt,
                     bool sparse = false) const;

    /** Dispatch one packet (Fig. 13 flow). */
    DispatchResult dispatch(Tick when, const AqlPacket &pkt);

    /**
     * Drain a user queue: pop every pending packet and dispatch,
     * honouring barrier bits. @return last completion tick.
     */
    Tick processQueue(Tick when, UserQueue &queue);

    /**
     * Drain several user queues round-robin, the way the hardware
     * queue scheduler multiplexes the ACEs across processes: packet
     * order (and barrier bits) are honoured within each queue but
     * queues are independent of each other.
     * @return last completion tick across all queues.
     */
    Tick processQueues(Tick when,
                       const std::vector<UserQueue *> &queues);

    /** @{ statistics */
    stats::Scalar dispatches;
    stats::Scalar workgroups_launched;
    stats::Scalar sync_messages;
    /** @} */

  private:
    /** Workgroup index -> XCD assignment under the current policy. */
    unsigned xcdFor(std::uint64_t wg_index,
                    std::uint64_t grid_size) const;

    std::vector<gpu::Xcd *> xcds_;
    coherence::ScopeController *scopes_;
    fabric::Network *net_;
    std::vector<fabric::NodeId> xcd_nodes_;
    fabric::NodeId queue_node_;
    std::vector<unsigned> scope_ids_;
    DistributionPolicy policy_ = DistributionPolicy::roundRobin;
};

} // namespace hsa
} // namespace ehpsim

#endif // EHPSIM_HSA_PARTITION_HH
