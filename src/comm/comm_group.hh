/**
 * @file
 * RCCL-style collective communication over the node fabric.
 *
 * Paper Sec. VIII builds multi-socket nodes from the eight x16 IF
 * links each MI300 socket exposes (Fig. 18). A CommGroup is the
 * communicator a training/inference stack would create over such a
 * node: a set of ranks (fabric nodes, normally whole sockets) that
 * execute collectives — all-reduce, all-gather, reduce-scatter,
 * broadcast, all-to-all, and point-to-point send/recv.
 *
 * Collectives are not closed-form formulas: each one is decomposed
 * into chunked link transfers with explicit data dependencies and
 * executed as events on the group's EventQueue. Transfers go through
 * fabric::Network::send(), so they pay real per-hop serialization and
 * occupancy — two collectives sharing an x16 link slow each other
 * down, exactly the effect that dominates achieved inter-APU
 * bandwidth on real MI300 systems.
 *
 * Two algorithms per collective, plus auto-selection:
 *  - ring: ranks form a logical ring; payloads are sharded and
 *    pipelined around it. Uses only neighbor links; the classic
 *    bandwidth-optimal choice on sparse topologies. All-reduce moves
 *    2(N-1)/N of the buffer over every ring link.
 *  - direct: every transfer goes point-to-point over the (possibly
 *    multi-hop) shortest path. On the fully-connected Fig. 18 nodes
 *    each rank drives its N-1 dedicated links in parallel, and the
 *    step count is minimal, so direct wins both the latency- and the
 *    bandwidth-bound regimes there.
 *  - automatic: direct for small payloads (fewest serialized steps)
 *    or when every rank pair is one hop apart; ring otherwise.
 */

#ifndef EHPSIM_COMM_COMM_GROUP_HH
#define EHPSIM_COMM_COMM_GROUP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fabric/network.hh"
#include "sim/sim_object.hh"
#include "sim/units.hh"

namespace ehpsim
{
namespace pdes
{
class PdesEngine;
} // namespace pdes

namespace comm
{

enum class Collective
{
    allReduce,
    allGather,
    reduceScatter,
    broadcast,
    allToAll,
    sendRecv,
};

const char *collectiveName(Collective c);

enum class Algorithm
{
    automatic,      ///< pick by payload size and topology
    ring,
    direct,
};

const char *algorithmName(Algorithm a);

/** Tuning knobs of a CommGroup. */
struct CommParams
{
    /** Max bytes per scheduled link transfer (pipelining grain). */
    std::uint64_t chunk_bytes = 4 * MiB;
    /** Auto-selection: payloads at or below this go direct. */
    std::uint64_t direct_threshold = 1 * MiB;
    /**
     * @{
     * Transient-fault policy (DESIGN.md §10): a chunk transfer
     * attempt failed by the fault hook retries after
     * retry_timeout * backoff_base^(attempt-1) ticks; a chunk that
     * fails more than max_retries attempts fatals the run.
     */
    unsigned max_retries = 4;
    Tick retry_timeout = 1'000'000;     ///< 1 us base backoff
    double backoff_base = 2.0;
    /** @} */
};

/**
 * One in-flight (or finished) collective. Handles are shared between
 * the caller and the scheduled events; inspect after waitAll().
 */
class CollectiveOp
{
  public:
    Collective kind() const { return kind_; }

    /** The resolved algorithm (never Algorithm::automatic). */
    Algorithm algorithm() const { return algo_; }

    /** 1-based start order within the owning group (0 before
     *  start). Names the op deterministically in race reports. */
    unsigned id() const { return id_; }

    /** The payload size the caller asked to move (per rank). */
    std::uint64_t dataBytes() const { return data_bytes_; }

    /** Bytes x hops actually placed on fabric links. */
    std::uint64_t
    linkBytes() const
    {
        return link_bytes_.load(std::memory_order_relaxed);
    }

    bool
    done() const
    {
        return started_ &&
               pending_.load(std::memory_order_relaxed) == 0;
    }

    Tick startTick() const { return start_; }

    /** Completion tick; valid once done(). */
    Tick
    finishTick() const
    {
        return finish_.load(std::memory_order_relaxed);
    }

    double
    seconds() const
    {
        return secondsFromTicks(finishTick() - start_);
    }

    /**
     * Algorithmic ("algbw") bandwidth: dataBytes / wall time, the
     * figure of merit RCCL reports. For ring all-reduce this is
     * bounded by link_bw * N / (2(N-1)).
     */
    double algoBandwidth() const;

    /**
     * Invoke @p fn with the finish tick exactly once when the op
     * completes. Fires immediately (from this call) if the op is
     * already done; otherwise it fires from within event processing
     * when the last chunk lands, so event-driven callers (the
     * serving engine) can chain work off a collective without
     * blocking in waitAll(). At most one callback per op.
     */
    void setOnComplete(std::function<void(Tick)> fn);

  private:
    friend class CommGroup;

    /** One chunk moving src -> dst once @c deps transfers finished. */
    struct Task
    {
        fabric::NodeId src;
        fabric::NodeId dst;
        std::uint64_t bytes;
        unsigned deps = 0;
        unsigned attempt = 0;   ///< transfer attempts failed so far
        Tick ready = 0;
        std::uint32_t dep_off = 0;  ///< first dependent, index into dag_
        std::uint32_t dep_cnt = 0;  ///< number of dependents in dag_
        std::uint32_t route_slot = 0; ///< src_rank * numRanks + dst_rank
    };

    Collective kind_ = Collective::allReduce;
    Algorithm algo_ = Algorithm::direct;
    unsigned id_ = 0;
    std::uint64_t data_bytes_ = 0;
    /**
     * link_bytes_/finish_/pending_ are atomics because under PDES
     * tasks of one op execute concurrently on several partition
     * workers. All updates are commutative (add, max, countdown), so
     * relaxed ordering suffices; the final pending_ decrement is
     * acq_rel, which makes every earlier task's writes visible to
     * whoever observes the op complete.
     */
    std::atomic<std::uint64_t> link_bytes_{0};
    bool started_ = false;
    Tick start_ = 0;
    std::atomic<Tick> finish_{0};
    std::atomic<std::size_t> pending_{0};
    /** Set by completeOp(): the op has fully retired (stats sampled,
     *  on_complete fired) — under PDES this lags pending_ == 0 by a
     *  deferred coordinator event. */
    bool retired_ = false;
    std::function<void(Tick)> on_complete_;
    std::vector<Task> tasks_;
    /**
     * Dependent edges in CSR form: task i's dependents occupy
     * dag_[tasks_[i].dep_off .. dep_off + dep_cnt). One arena per op
     * instead of one vector per task, so building a collective does
     * no per-chunk heap allocation (DESIGN.md §12).
     */
    std::vector<std::uint32_t> dag_;
};

using OpHandle = std::shared_ptr<CollectiveOp>;

class CommGroup : public SimObject
{
  public:
    /**
     * @param net Fabric carrying the traffic (not owned).
     * @param ranks Fabric node of each rank; rank i == ranks[i].
     * @param eq Event queue the collectives are scheduled on.
     */
    CommGroup(SimObject *parent, const std::string &name,
              fabric::Network *net, std::vector<fabric::NodeId> ranks,
              EventQueue *eq, const CommParams &params = CommParams{});

    unsigned numRanks() const
    {
        return static_cast<unsigned>(ranks_.size());
    }

    const CommParams &params() const { return params_; }

    /** True when every rank pair is a single fabric hop apart. */
    bool fullyConnected() const;

    /** The algorithm automatic resolves to for @p bytes. */
    Algorithm choose(Collective coll, std::uint64_t bytes) const;

    /**
     * @{
     * Start a collective no earlier than @p when (clamped to the
     * queue's current tick). Non-blocking: transfers are scheduled
     * as events; drive the queue (waitAll()) to make progress.
     * @p bytes is the per-rank buffer size: all-gather gathers
     * @p bytes in total (each rank contributes bytes/N), all-to-all
     * sends @p bytes from every rank to every other rank.
     */
    OpHandle allReduce(Tick when, std::uint64_t bytes,
                       Algorithm algo = Algorithm::automatic);
    OpHandle allGather(Tick when, std::uint64_t bytes,
                       Algorithm algo = Algorithm::automatic);
    OpHandle reduceScatter(Tick when, std::uint64_t bytes,
                           Algorithm algo = Algorithm::automatic);
    OpHandle broadcast(Tick when, unsigned root, std::uint64_t bytes,
                       Algorithm algo = Algorithm::automatic);
    OpHandle allToAll(Tick when, std::uint64_t bytes,
                      Algorithm algo = Algorithm::automatic);
    /** @} */

    /** Point-to-point: @p bytes from rank @p src to rank @p dst. */
    OpHandle sendRecv(Tick when, unsigned src, unsigned dst,
                      std::uint64_t bytes);

    /**
     * One chunk-transfer attempt, as seen by the fault hook.
     * (op_id, task_index, attempt) uniquely and deterministically
     * names the attempt — op ids are assigned in start order and
     * task indices in DAG construction order — so a stateless
     * counter-based fault model draws the same verdict for the same
     * attempt no matter which thread, queue, or window executes it.
     */
    struct ChunkAttempt
    {
        Tick when;              ///< executing queue's current tick
        fabric::NodeId src;
        fabric::NodeId dst;
        std::uint64_t bytes;
        unsigned attempt;       ///< 1-based
        std::uint64_t op_id;    ///< CollectiveOp::id()
        std::uint32_t task_index;
    };

    /**
     * Transient-fault model for chunk transfers. Called once per
     * attempt; returning true fails the attempt, which is retried
     * with exponential backoff per CommParams. nullptr (the default)
     * means transfers are reliable. Under PDES the hook runs on
     * partition workers concurrently: it must be pure in the
     * ChunkAttempt fields (no mutable state) — do accounting in the
     * fault sink instead.
     */
    using ChunkFaultHook = std::function<bool(const ChunkAttempt &)>;

    void setChunkFaultHook(ChunkFaultHook hook);

    /**
     * Accounting sink for hook-failed attempts: invoked with a count
     * of newly failed attempts, always on the main thread (inline in
     * serial mode; batched per partition at PDES stat flush).
     */
    void setChunkFaultSink(std::function<void(std::uint64_t)> sink);

    /**
     * Backoff delay before retry number @p attempt (1-based),
     * saturated at maxBackoff so deep retries can't overflow Tick
     * (the unsaturated double -> Tick cast was UB past 2^63).
     */
    Tick backoffTicks(unsigned attempt) const;

    /** Saturation bound of backoffTicks(): far beyond any simulated
     *  horizon, yet small enough that curTick() + backoff and summed
     *  retry-wait stats stay overflow-free. */
    static constexpr Tick maxBackoff = maxTick / 4;

    /**
     * Run this group's collectives on a conservative parallel core
     * (DESIGN.md §15) instead of the serial queue. Must be called
     * while no op is outstanding and before further ops start; the
     * group declares every ordered rank pair as traffic (feeding the
     * engine's lookahead table), shards its hot-path stats per
     * partition, and routes chunk events to the engine's partition
     * queues by each chunk's source domain. Pass nullptr to detach
     * (events return to the serial queue).
     */
    void attachPdes(pdes::PdesEngine *engine);

    /**
     * Drive the event queue until every outstanding collective of
     * this group completes. @return the latest finish tick seen.
     */
    Tick waitAll();

    /** Busy fraction of the busiest link any rank pair routes over. */
    double maxLinkUtilization() const;

    /** Mean busy fraction over the group's links. */
    double avgLinkUtilization() const;

    /** @{ statistics */
    stats::Scalar ops_started;
    stats::Scalar ops_completed;
    stats::Scalar allreduce_bytes;
    stats::Scalar allgather_bytes;
    stats::Scalar reduce_scatter_bytes;
    stats::Scalar broadcast_bytes;
    stats::Scalar all_to_all_bytes;
    stats::Scalar sendrecv_bytes;
    stats::Scalar link_bytes;
    stats::Scalar chunk_retries;
    stats::Scalar retry_wait_ticks;
    stats::Distribution retry_latency;
    stats::Average algo_bw_gbps;
    stats::Formula avg_link_busy;
    stats::Formula max_link_busy;
    /** @} */

    /**
     * @{ checkpoint (DESIGN.md §16). The group may only be saved at
     * an op boundary — the EventQueue save refuses unkeyed pending
     * events, and every chunk/retry event is unkeyed, so a legal
     * checkpoint implies no collective in flight. That leaves the
     * stats (base walk) plus last_finish_. restore() additionally
     * drops the per-pair route cache: Network::restore() destroyed
     * the LinkRoute storage those pointers aliased, and routeFor()
     * lazily re-resolves against the restored route tables.
     */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    /**
     * Closed-form chunking of a buffer into params_.chunk_bytes
     * pieces: @c count chunks, every one full-sized except the last.
     * Replaces materializing a vector of chunk sizes per shard; the
     * k-th chunk is chunk_bytes for k < count-1 and @c last for the
     * final one, identical to the old chunksOf() sequence.
     */
    struct ChunkSpan
    {
        std::uint64_t count = 0;
        std::uint64_t last = 0;     ///< bytes in the final chunk
    };

    ChunkSpan chunkSpanOf(std::uint64_t bytes) const;

    /** Number of chunk transfers @p bytes decomposes into. */
    std::uint64_t chunkCount(std::uint64_t bytes) const;

    /**
     * Total chunks over the N near-equal shards of @p bytes
     * (bytes % N shards of size bytes/N + 1, the rest bytes/N —
     * the closed form of the old splitEven()).
     */
    std::uint64_t shardedChunkCount(std::uint64_t bytes) const;

    /**
     * Exact number of chunk transfers a collective over @p bytes
     * schedules (identical for ring and direct), used to pre-size
     * the task DAG and the event queue's scheduling heap.
     */
    std::uint64_t taskCount(Collective kind, std::uint64_t bytes) const;

    /**
     * Append a task. Dependency edges are staged in edge_scratch_
     * until finalizeDag() packs them into the op's CSR arena.
     * @return the new task's index.
     */
    std::uint32_t addTask(CollectiveOp &op, unsigned src_rank,
                          unsigned dst_rank, std::uint64_t bytes,
                          const std::uint32_t *deps,
                          std::uint32_t ndeps);

    /**
     * Pack edge_scratch_ into op.dag_ with a stable counting sort:
     * each task's dependents keep edge-insertion order, which is the
     * order the old per-Task dependent vectors produced, so event
     * scheduling order — and therefore every simulated tick — is
     * unchanged.
     */
    void finalizeDag(CollectiveOp &op);

    /**
     * The cached link-resolved route for @p slot
     * (src_rank * numRanks + dst_rank), revalidated per slot against
     * the network's routeEpoch() so fault-driven rerouting
     * invalidates it exactly when the node-path cache is
     * invalidated. Per-slot epochs (rather than one group-wide
     * epoch dropping the whole cache) keep revalidation local to
     * the slot's owning PDES worker group.
     */
    const fabric::LinkRoute &routeFor(std::uint32_t slot);

    /** Queue the chunk events of task @p t execute on: the engine's
     *  queue for t.src's partition domain under PDES, else the
     *  group's serial queue. */
    EventQueue *execQueue(const CollectiveOp::Task &t);

    /** Merge per-partition stat shards into the shared Scalars, in
     *  partition order (PDES flush hook; workers parked). */
    void flushShards();

    void buildRing(CollectiveOp &op, std::uint64_t bytes,
                   unsigned root);
    void buildDirect(CollectiveOp &op, std::uint64_t bytes,
                     unsigned root);

    /** Record stats, clamp the start tick, schedule ready tasks. */
    OpHandle start(Tick when, OpHandle op);

    void scheduleTask(const OpHandle &op, std::uint32_t idx);
    void runTask(const OpHandle &op, std::uint32_t idx);
    void completeOp(CollectiveOp &op);

    stats::Scalar &bytesCounter(Collective c);

    /**
     * Per-partition shard of the hot-path statistics. Under PDES,
     * chunk events on different partition workers cannot touch the
     * shared Scalars; each worker accumulates into its own shard
     * (single writer), and flushShards() folds them back in
     * partition order with all workers parked. The merged totals are
     * order-independent — sums of integer-valued doubles and
     * bucketed Distribution samples — so JSON output is byte-equal
     * to the serial run's.
     */
    struct PdesShard
    {
        std::uint64_t chunk_retries = 0;
        std::uint64_t retry_wait_ticks = 0;
        std::uint64_t link_bytes = 0;
        std::uint64_t fault_hits = 0;
        std::vector<double> retry_samples;
        fabric::Network::SendCounters send;
    };

    fabric::Network *net_;
    std::vector<fabric::NodeId> ranks_;
    CommParams params_;
    ChunkFaultHook fault_hook_;
    std::function<void(std::uint64_t)> fault_sink_;
    pdes::PdesEngine *engine_ = nullptr;
    std::vector<PdesShard> shards_;
    /** Every directed link some rank pair routes over. */
    std::vector<fabric::Link *> links_;
    /**
     * Per rank-pair LinkRoute cache, slot = src_rank * N + dst_rank.
     * Entries point into the network's own route cache; a slot is
     * re-resolved lazily when its epoch trails routeEpoch() (a link
     * fault or topology change) — the per-chunk hot path
     * dereferences one pointer instead of re-walking the route
     * table per hop. Each slot is touched only by its source rank's
     * owning worker group, so no locking is needed under PDES.
     */
    std::vector<const fabric::LinkRoute *> pair_routes_;
    std::vector<std::uint64_t> pair_epochs_;
    /** @{ construction scratch, reused across ops so steady-state
     *  collective construction never allocates per chunk */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_scratch_;
    std::vector<std::uint32_t> prev_scratch_;
    std::vector<std::uint32_t> id_scratch_;
    /** @} */
    std::vector<OpHandle> outstanding_;
    Tick last_finish_ = 0;
};

} // namespace comm
} // namespace ehpsim

#endif // EHPSIM_COMM_COMM_GROUP_HH
