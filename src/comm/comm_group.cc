#include "comm/comm_group.hh"

#include <algorithm>

#include "sim/access_tracker.hh"
#include "sim/logging.hh"
#include "sim/pdes/pdes_engine.hh"
#include "sim/snapshot.hh"

namespace ehpsim
{
namespace comm
{

const char *
collectiveName(Collective c)
{
    switch (c) {
      case Collective::allReduce:
        return "all_reduce";
      case Collective::allGather:
        return "all_gather";
      case Collective::reduceScatter:
        return "reduce_scatter";
      case Collective::broadcast:
        return "broadcast";
      case Collective::allToAll:
        return "all_to_all";
      case Collective::sendRecv:
        return "send_recv";
    }
    panic("bad collective kind");
}

const char *
algorithmName(Algorithm a)
{
    switch (a) {
      case Algorithm::automatic:
        return "auto";
      case Algorithm::ring:
        return "ring";
      case Algorithm::direct:
        return "direct";
    }
    panic("bad algorithm");
}

double
CollectiveOp::algoBandwidth() const
{
    const Tick fin = finishTick();
    if (fin <= start_)
        return 0.0;
    return static_cast<double>(data_bytes_) /
           secondsFromTicks(fin - start_);
}

CommGroup::CommGroup(SimObject *parent, const std::string &name,
                     fabric::Network *net,
                     std::vector<fabric::NodeId> ranks, EventQueue *eq,
                     const CommParams &params)
    : SimObject(parent, name, eq),
      ops_started(this, "ops_started", "collectives launched"),
      ops_completed(this, "ops_completed", "collectives finished"),
      allreduce_bytes(this, "allreduce_bytes",
                      "payload bytes all-reduced"),
      allgather_bytes(this, "allgather_bytes",
                      "payload bytes all-gathered"),
      reduce_scatter_bytes(this, "reduce_scatter_bytes",
                           "payload bytes reduce-scattered"),
      broadcast_bytes(this, "broadcast_bytes",
                      "payload bytes broadcast"),
      all_to_all_bytes(this, "all_to_all_bytes",
                       "payload bytes exchanged all-to-all"),
      sendrecv_bytes(this, "sendrecv_bytes",
                     "payload bytes sent point-to-point"),
      link_bytes(this, "link_bytes",
                 "bytes x hops placed on fabric links"),
      chunk_retries(this, "chunk_retries",
                    "chunk transfers retried after transient faults"),
      retry_wait_ticks(this, "retry_wait_ticks",
                       "total backoff ticks spent before retries"),
      retry_latency(this, "retry_latency",
                    "backoff ticks per chunk retry"),
      algo_bw_gbps(this, "algo_bw_gbps",
                   "achieved algorithmic bandwidth per op, GB/s"),
      avg_link_busy(this, "avg_link_busy",
                    "mean busy fraction over the group's links",
                    [this] { return avgLinkUtilization(); }),
      max_link_busy(this, "max_link_busy",
                    "busy fraction of the group's busiest link",
                    [this] { return maxLinkUtilization(); }),
      net_(net),
      ranks_(std::move(ranks)),
      params_(params)
{
    if (!net_)
        fatal("CommGroup '", name, "': null fabric network");
    if (!eventq())
        fatal("CommGroup '", name, "': no event queue (pass one "
              "explicitly; collectives are event-driven)");
    if (ranks_.empty())
        fatal("CommGroup '", name, "': no ranks");
    if (params_.chunk_bytes == 0)
        fatal("CommGroup '", name, "': chunk_bytes must be nonzero");
    if (params_.retry_timeout == 0)
        fatal("CommGroup '", name, "': retry_timeout must be nonzero");
    if (params_.backoff_base < 1.0)
        fatal("CommGroup '", name, "': backoff_base ",
              params_.backoff_base, " must be >= 1");
    // Bucket the retry-latency histogram over the full backoff
    // range: [first delay, delay after the last permitted retry).
    retry_latency.init(0.0,
                       static_cast<double>(
                           backoffTicks(params_.max_retries + 1)),
                       8);
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
        if (ranks_[i] >= net_->numNodes())
            fatal("CommGroup '", name, "': rank ", i,
                  " maps to unknown fabric node ", ranks_[i]);
        for (std::size_t j = i + 1; j < ranks_.size(); ++j) {
            if (ranks_[i] == ranks_[j])
                fatal("CommGroup '", name, "': ranks ", i, " and ", j,
                      " share fabric node '",
                      net_->nodeName(ranks_[i]), "'");
        }
    }
    // Resolve every rank pair's route to Link pointers once, up
    // front, and collect every directed link any pair routes over in
    // a deterministic first-encounter order. Fully-connected groups
    // use exactly one link per ordered pair; multi-hop routes can
    // only share links, so this is an upper bound. The cached
    // LinkRoute pointers are what runTask() replays per chunk;
    // routeFor() re-resolves them if the fabric reroutes.
    pair_routes_.assign(ranks_.size() * ranks_.size(), nullptr);
    pair_epochs_.assign(ranks_.size() * ranks_.size(),
                        net_->routeEpoch());
    links_.reserve(ranks_.size() * (ranks_.size() - 1));
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
        for (std::size_t j = 0; j < ranks_.size(); ++j) {
            if (i == j)
                continue;
            const fabric::LinkRoute &r =
                net_->linkRoute(ranks_[i], ranks_[j]);
            pair_routes_[i * ranks_.size() + j] = &r;
            for (fabric::Link *l : r.links) {
                if (std::find(links_.begin(), links_.end(), l) ==
                    links_.end()) {
                    links_.push_back(l);
                }
            }
        }
    }
}

bool
CommGroup::fullyConnected() const
{
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
        for (std::size_t j = i + 1; j < ranks_.size(); ++j) {
            if (net_->hopCount(ranks_[i], ranks_[j]) != 1)
                return false;
        }
    }
    return true;
}

Algorithm
CommGroup::choose(Collective coll, std::uint64_t bytes) const
{
    // With one or two ranks ring and direct coincide; point-to-point
    // is always a direct route.
    if (numRanks() <= 2 || coll == Collective::sendRecv)
        return Algorithm::direct;
    // Small payloads are latency-bound: direct has the fewest
    // serialized steps (2 for all-reduce vs 2(N-1) for ring).
    if (bytes <= params_.direct_threshold)
        return Algorithm::direct;
    // Large payloads: with a dedicated link per pair (Fig. 18),
    // direct drives N-1 links per rank in parallel and beats the
    // ring's single-neighbor stream. On sparser topologies direct
    // routes collide on shared links, so pipeline around the ring.
    return fullyConnected() ? Algorithm::direct : Algorithm::ring;
}

CommGroup::ChunkSpan
CommGroup::chunkSpanOf(std::uint64_t bytes) const
{
    if (bytes == 0)
        return {};
    const std::uint64_t cb = params_.chunk_bytes;
    const std::uint64_t count = (bytes + cb - 1) / cb;
    return {count, bytes - (count - 1) * cb};
}

std::uint64_t
CommGroup::chunkCount(std::uint64_t bytes) const
{
    return bytes == 0 ? std::uint64_t{0}
                      : (bytes + params_.chunk_bytes - 1) /
                            params_.chunk_bytes;
}

std::uint64_t
CommGroup::shardedChunkCount(std::uint64_t bytes) const
{
    const unsigned n = numRanks();
    const std::uint64_t q = bytes / n;
    const std::uint64_t rem = bytes % n;
    return rem * chunkCount(q + 1) + (n - rem) * chunkCount(q);
}

std::uint64_t
CommGroup::taskCount(Collective kind, std::uint64_t bytes) const
{
    const unsigned n = numRanks();
    if (n < 2 || bytes == 0)
        return 0;
    switch (kind) {
      case Collective::allReduce:
      case Collective::allGather:
      case Collective::reduceScatter: {
        // Ring and direct schedules place the same number of
        // transfers: steps (2(N-1) for all-reduce, N-1 otherwise)
        // per chunk of each shard.
        const std::uint64_t steps =
            kind == Collective::allReduce ? 2 * (n - 1) : n - 1;
        return steps * shardedChunkCount(bytes);
      }
      case Collective::broadcast:
        return static_cast<std::uint64_t>(n - 1) * chunkCount(bytes);
      case Collective::allToAll:
        return static_cast<std::uint64_t>(n) * (n - 1) *
               chunkCount(bytes);
      case Collective::sendRecv:
        return chunkCount(bytes);
    }
    panic("bad collective kind");
}

std::uint32_t
CommGroup::addTask(CollectiveOp &op, unsigned src_rank,
                   unsigned dst_rank, std::uint64_t bytes,
                   const std::uint32_t *deps, std::uint32_t ndeps)
{
    const auto idx = static_cast<std::uint32_t>(op.tasks_.size());
    CollectiveOp::Task t;
    t.src = ranks_[src_rank];
    t.dst = ranks_[dst_rank];
    t.bytes = bytes;
    t.deps = ndeps;
    t.route_slot = src_rank * numRanks() + dst_rank;
    op.tasks_.push_back(t);
    for (std::uint32_t k = 0; k < ndeps; ++k)
        edge_scratch_.emplace_back(deps[k], idx);
    return idx;
}

void
CommGroup::finalizeDag(CollectiveOp &op)
{
    op.dag_.clear();
    op.dag_.resize(edge_scratch_.size());
    for (const auto &e : edge_scratch_)
        ++op.tasks_[e.first].dep_cnt;
    std::uint32_t off = 0;
    for (auto &t : op.tasks_) {
        t.dep_off = off;
        off += t.dep_cnt;
        t.dep_cnt = 0;      // becomes the fill cursor below
    }
    // Stable fill: edges were recorded in addTask order, so each
    // task's dependents land in the same order the old per-Task
    // vectors held them.
    for (const auto &[from, to] : edge_scratch_) {
        CollectiveOp::Task &src = op.tasks_[from];
        op.dag_[src.dep_off + src.dep_cnt++] = to;
    }
    edge_scratch_.clear();
}

const fabric::LinkRoute &
CommGroup::routeFor(std::uint32_t slot)
{
    // A topology mutation (killLink and friends) destroys the
    // network's LinkRoute storage, so a cached pointer is stale the
    // moment the epoch moves — re-resolve on demand, which also
    // recomputes paths around dead links. Staleness is tracked per
    // slot (not one group-wide epoch flushing every slot at once):
    // under PDES each slot belongs to its source rank's worker
    // group, and a group may only touch its own slots.
    const std::uint64_t epoch = net_->routeEpoch();
    const fabric::LinkRoute *&r = pair_routes_[slot];
    if (!r || pair_epochs_[slot] != epoch) {
        const unsigned n = numRanks();
        r = &net_->linkRoute(ranks_[slot / n], ranks_[slot % n]);
        pair_epochs_[slot] = epoch;
    }
    return *r;
}

void
CommGroup::buildRing(CollectiveOp &op, std::uint64_t bytes,
                     unsigned root)
{
    const unsigned n = numRanks();
    if (n < 2 || bytes == 0)
        return;
    op.tasks_.reserve(op.tasks_.size() + taskCount(op.kind_, bytes));
    const std::uint64_t cb = params_.chunk_bytes;

    switch (op.kind_) {
      case Collective::allReduce:
      case Collective::allGather:
      case Collective::reduceScatter: {
        // Shard the buffer; shard s starts on rank s and travels the
        // ring. All-reduce = reduce-scatter pass plus all-gather
        // pass: 2(N-1) hops; the single-pass collectives take N-1.
        const unsigned steps = op.kind_ == Collective::allReduce
                                   ? 2 * (n - 1)
                                   : n - 1;
        // Each chunk is a chain of `steps` tasks: steps - 1 edges.
        edge_scratch_.reserve(
            (steps - 1) * shardedChunkCount(bytes));
        const std::uint64_t q = bytes / n;
        const std::uint64_t rem = bytes % n;
        for (unsigned s = 0; s < n; ++s) {
            const std::uint64_t shard = q + (s < rem ? 1 : 0);
            const ChunkSpan span = chunkSpanOf(shard);
            for (std::uint64_t k = 0; k < span.count; ++k) {
                const std::uint64_t c =
                    k + 1 == span.count ? span.last : cb;
                std::uint32_t prev = 0;
                for (unsigned i = 0; i < steps; ++i) {
                    const unsigned src = (s + i) % n;
                    const unsigned dst = (s + i + 1) % n;
                    prev = addTask(op, src, dst, c,
                                   i == 0 ? nullptr : &prev,
                                   i == 0 ? 0 : 1);
                }
            }
        }
        break;
      }
      case Collective::broadcast: {
        // Chunks pipeline from the root around the ring.
        const ChunkSpan span = chunkSpanOf(bytes);
        if (n > 2)
            edge_scratch_.reserve((n - 2) * span.count);
        for (std::uint64_t k = 0; k < span.count; ++k) {
            const std::uint64_t c =
                k + 1 == span.count ? span.last : cb;
            std::uint32_t prev = 0;
            for (unsigned i = 0; i + 1 < n; ++i) {
                const unsigned src = (root + i) % n;
                const unsigned dst = (root + i + 1) % n;
                prev = addTask(op, src, dst, c,
                               i == 0 ? nullptr : &prev,
                               i == 0 ? 0 : 1);
            }
        }
        break;
      }
      case Collective::allToAll: {
        // Pairwise-exchange rounds: in round i every rank sends its
        // block for rank r+i. Rounds are chained per sender, so the
        // schedule keeps the round structure of the ring variant.
        const ChunkSpan span = chunkSpanOf(bytes);
        if (n > 2)
            edge_scratch_.reserve(n * span.count * (n - 2));
        for (unsigned r = 0; r < n; ++r) {
            prev_scratch_.assign(span.count, 0);
            for (unsigned i = 1; i < n; ++i) {
                for (std::uint64_t k = 0; k < span.count; ++k) {
                    const std::uint64_t c =
                        k + 1 == span.count ? span.last : cb;
                    prev_scratch_[k] =
                        addTask(op, r, (r + i) % n, c,
                                i == 1 ? nullptr : &prev_scratch_[k],
                                i == 1 ? 0 : 1);
                }
            }
        }
        break;
      }
      case Collective::sendRecv:
        panic("sendRecv has no ring schedule");
    }
}

void
CommGroup::buildDirect(CollectiveOp &op, std::uint64_t bytes,
                       unsigned root)
{
    const unsigned n = numRanks();
    if (n < 2 || bytes == 0)
        return;
    op.tasks_.reserve(op.tasks_.size() + taskCount(op.kind_, bytes));
    const std::uint64_t cb = params_.chunk_bytes;
    const std::uint64_t q = bytes / n;
    const std::uint64_t rem = bytes % n;

    switch (op.kind_) {
      case Collective::allReduce: {
        // Phase 1 (reduce-scatter): every rank sends its piece of
        // shard s straight to rank s. Phase 2 (all-gather): rank s
        // returns the reduced shard to everyone; per chunk, phase 2
        // waits on all of that chunk's phase-1 arrivals.
        edge_scratch_.reserve(shardedChunkCount(bytes) *
                              (n - 1) * (n - 1));
        for (unsigned s = 0; s < n; ++s) {
            const std::uint64_t shard = q + (s < rem ? 1 : 0);
            const ChunkSpan span = chunkSpanOf(shard);
            for (std::uint64_t k = 0; k < span.count; ++k) {
                const std::uint64_t c =
                    k + 1 == span.count ? span.last : cb;
                id_scratch_.clear();
                for (unsigned r = 0; r < n; ++r) {
                    if (r != s) {
                        id_scratch_.push_back(
                            addTask(op, r, s, c, nullptr, 0));
                    }
                }
                for (unsigned d = 0; d < n; ++d) {
                    if (d != s) {
                        addTask(op, s, d, c, id_scratch_.data(),
                                static_cast<std::uint32_t>(
                                    id_scratch_.size()));
                    }
                }
            }
        }
        break;
      }
      case Collective::allGather: {
        for (unsigned s = 0; s < n; ++s) {
            const std::uint64_t shard = q + (s < rem ? 1 : 0);
            const ChunkSpan span = chunkSpanOf(shard);
            for (std::uint64_t k = 0; k < span.count; ++k) {
                const std::uint64_t c =
                    k + 1 == span.count ? span.last : cb;
                for (unsigned d = 0; d < n; ++d) {
                    if (d != s)
                        addTask(op, s, d, c, nullptr, 0);
                }
            }
        }
        break;
      }
      case Collective::reduceScatter: {
        for (unsigned s = 0; s < n; ++s) {
            const std::uint64_t shard = q + (s < rem ? 1 : 0);
            const ChunkSpan span = chunkSpanOf(shard);
            for (std::uint64_t k = 0; k < span.count; ++k) {
                const std::uint64_t c =
                    k + 1 == span.count ? span.last : cb;
                for (unsigned r = 0; r < n; ++r) {
                    if (r != s)
                        addTask(op, r, s, c, nullptr, 0);
                }
            }
        }
        break;
      }
      case Collective::broadcast: {
        const ChunkSpan span = chunkSpanOf(bytes);
        for (std::uint64_t k = 0; k < span.count; ++k) {
            const std::uint64_t c =
                k + 1 == span.count ? span.last : cb;
            for (unsigned d = 0; d < n; ++d) {
                if (d != root)
                    addTask(op, root, d, c, nullptr, 0);
            }
        }
        break;
      }
      case Collective::allToAll: {
        const ChunkSpan span = chunkSpanOf(bytes);
        for (unsigned r = 0; r < n; ++r) {
            for (unsigned d = 0; d < n; ++d) {
                if (d == r)
                    continue;
                for (std::uint64_t k = 0; k < span.count; ++k) {
                    const std::uint64_t c =
                        k + 1 == span.count ? span.last : cb;
                    addTask(op, r, d, c, nullptr, 0);
                }
            }
        }
        break;
      }
      case Collective::sendRecv:
        panic("sendRecv is built by sendRecv()");
    }
}

stats::Scalar &
CommGroup::bytesCounter(Collective c)
{
    switch (c) {
      case Collective::allReduce:
        return allreduce_bytes;
      case Collective::allGather:
        return allgather_bytes;
      case Collective::reduceScatter:
        return reduce_scatter_bytes;
      case Collective::broadcast:
        return broadcast_bytes;
      case Collective::allToAll:
        return all_to_all_bytes;
      case Collective::sendRecv:
        return sendrecv_bytes;
    }
    panic("bad collective kind");
}

OpHandle
CommGroup::start(Tick when, OpHandle op)
{
    finalizeDag(*op);
    op->start_ = std::max(when, eventq()->curTick());
    op->finish_ = op->start_;
    op->pending_ = op->tasks_.size();
    op->started_ = true;

    ++ops_started;
    op->id_ = static_cast<unsigned>(ops_started.value());
    bytesCounter(op->kind_) += static_cast<double>(op->data_bytes_);

    if (op->tasks_.empty()) {
        completeOp(*op);
        return op;
    }
    for (auto &t : op->tasks_)
        t.ready = op->start_;
    // Pre-size the scheduling heap for the op's worst-case fan-out
    // (every task scheduled at once, e.g. a dependency-free direct
    // schedule) so the burst below never grows it incrementally.
    eventq()->reserve(eventq()->size() + op->tasks_.size());
    // Retire finished handles here as well as in waitAll(), so
    // event-driven callers that never block (the serving engine)
    // keep outstanding_ bounded by the ops actually in flight.
    // retired_ rather than done(): under PDES completeOp() runs as
    // a deferred coordinator event after pending_ hits zero, and an
    // op isn't finished until its stats are sampled and its
    // completion callback has fired.
    std::erase_if(outstanding_,
                  [](const OpHandle &o) { return o->retired_; });
    outstanding_.push_back(op);
    for (std::uint32_t i = 0; i < op->tasks_.size(); ++i) {
        if (op->tasks_[i].deps == 0)
            scheduleTask(op, i);
    }
    return op;
}

EventQueue *
CommGroup::execQueue(const CollectiveOp::Task &t)
{
    if (!engine_)
        return eventq();
    return engine_->queueForDomain(net_->nodeDomain(t.src));
}

void
CommGroup::scheduleTask(const OpHandle &op, std::uint32_t idx)
{
    // Pool fast path: the capture (this, OpHandle, idx) fits a
    // recycled slot, so per-chunk scheduling allocates nothing in
    // steady state. Under PDES the event goes to the partition
    // queue of the chunk's source domain; callers only reach here
    // from contexts allowed to touch that queue (the coordinator
    // with workers parked, the owning group's worker, or a mailbox
    // drain).
    execQueue(op->tasks_[idx])
        ->scheduleCallback(op->tasks_[idx].ready,
                           [this, op, idx] { runTask(op, idx); });
}

void
CommGroup::setChunkFaultHook(ChunkFaultHook hook)
{
    fault_hook_ = std::move(hook);
}

void
CommGroup::setChunkFaultSink(std::function<void(std::uint64_t)> sink)
{
    fault_sink_ = std::move(sink);
}

void
CommGroup::attachPdes(pdes::PdesEngine *engine)
{
    std::erase_if(outstanding_,
                  [](const OpHandle &o) { return o->retired_; });
    if (!outstanding_.empty()) {
        fatal("CommGroup '", name(), "': attachPdes with ",
              outstanding_.size(), " collectives in flight");
    }
    engine_ = engine;
    shards_.clear();
    if (!engine_)
        return;
    shards_.resize(engine_->partitions());
    // Declare every ordered rank pair: the engine derives the
    // lookahead table and the direct-link ownership check from them.
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
        for (std::size_t j = 0; j < ranks_.size(); ++j) {
            if (i != j)
                engine_->declareTraffic(ranks_[i], ranks_[j]);
        }
    }
    engine_->addFlushHook([this] { flushShards(); });
}

void
CommGroup::flushShards()
{
    for (PdesShard &s : shards_) {
        chunk_retries += static_cast<double>(s.chunk_retries);
        retry_wait_ticks += static_cast<double>(s.retry_wait_ticks);
        for (const double v : s.retry_samples)
            retry_latency.sample(v);
        link_bytes += static_cast<double>(s.link_bytes);
        if (s.send.messages != 0) {
            net_->messages += static_cast<double>(s.send.messages);
            net_->total_hops += static_cast<double>(s.send.hops);
        }
        if (fault_sink_ && s.fault_hits != 0)
            fault_sink_(s.fault_hits);
        s.chunk_retries = 0;
        s.retry_wait_ticks = 0;
        s.link_bytes = 0;
        s.fault_hits = 0;
        s.retry_samples.clear();
        s.send = fabric::Network::SendCounters{};
    }
}

Tick
CommGroup::backoffTicks(unsigned attempt) const
{
    // Saturating: retry policies with a large max_retries or a steep
    // backoff_base push retry_timeout * base^(attempt-1) past the
    // Tick range, and the unchecked double -> Tick cast of such a
    // value is undefined behavior. Any backoff at or beyond
    // maxBackoff already outlives every simulation, so clamp there.
    double d = static_cast<double>(params_.retry_timeout);
    for (unsigned i = 1; i < attempt; ++i) {
        d *= params_.backoff_base;
        if (d >= static_cast<double>(maxBackoff))
            return maxBackoff;
    }
    if (d >= static_cast<double>(maxBackoff))
        return maxBackoff;
    return static_cast<Tick>(d);
}

void
CommGroup::runTask(const OpHandle &op, std::uint32_t idx)
{
    CollectiveOp::Task &t = op->tasks_[idx];
    // The executing queue: the partition queue owning t.src's domain
    // under PDES, the group's serial queue otherwise. my_dom < 0
    // means coordinator context (workers parked), where everything
    // may be touched directly.
    EventQueue *q = execQueue(t);
    const int my_dom = engine_ ? net_->nodeDomain(t.src) : -1;
    PdesShard *shard =
        engine_ && my_dom >= 0
            ? &shards_[engine_->partitionOfDomain(my_dom)]
            : nullptr;
    if (fault_hook_ &&
        fault_hook_({q->curTick(), t.src, t.dst, t.bytes,
                     t.attempt + 1, op->id_, idx})) {
        ++t.attempt;
        if (t.attempt > params_.max_retries) {
            fatal("CommGroup '", name(), "': chunk ",
                  net_->nodeName(t.src), " -> ",
                  net_->nodeName(t.dst), " (", t.bytes, " B) failed ",
                  t.attempt, " attempts; max_retries=",
                  params_.max_retries, " exhausted");
        }
        // Exponential backoff, then try the same chunk again. The
        // op's pending count is untouched, so waitAll() keeps
        // driving the queue until the retry lands.
        EHPSIM_TRACK_WRITE(
            this,
            ("op" + std::to_string(op->id_) + ".state").c_str());
        const Tick backoff = backoffTicks(t.attempt);
        if (shard) {
            ++shard->chunk_retries;
            shard->retry_wait_ticks += backoff;
            shard->retry_samples.push_back(
                static_cast<double>(backoff));
            if (fault_sink_)
                ++shard->fault_hits;
        } else {
            ++chunk_retries;
            retry_wait_ticks += static_cast<double>(backoff);
            retry_latency.sample(static_cast<double>(backoff));
            if (fault_sink_)
                fault_sink_(1);
        }
        q->scheduleCallback(q->curTick() + backoff,
                            [this, op, idx] { runTask(op, idx); });
        return;
    }
    // Replay the cached route: no per-chunk route-table walk. Tasks
    // always join distinct ranks, so this is exactly send() minus
    // the lookup.
    const auto res =
        net_->sendOnRoute(q->curTick(), routeFor(t.route_slot),
                          t.bytes, false, shard ? &shard->send
                                                : nullptr);
    // Chunk completion mutates shared per-op state (link_bytes_,
    // finish_ max-merge, dependent ready/deps, pending_); same-tick
    // completions of one op are the canonical batch-reorder case.
    EHPSIM_TRACK_WRITE(
        this, ("op" + std::to_string(op->id_) + ".state").c_str());
    const auto moved =
        t.bytes * static_cast<std::uint64_t>(res.hops);
    op->link_bytes_.fetch_add(moved, std::memory_order_relaxed);
    if (shard)
        shard->link_bytes += moved;
    else
        link_bytes += static_cast<double>(moved);
    // Max-merge the finish tick. Relaxed is enough: the final
    // pending_ decrement below is acq_rel, so the completing
    // context sees every task's contribution.
    Tick prev = op->finish_.load(std::memory_order_relaxed);
    while (prev < res.arrival &&
           !op->finish_.compare_exchange_weak(
               prev, res.arrival, std::memory_order_relaxed)) {
    }

    const std::uint32_t *dep = op->dag_.data() + t.dep_off;
    for (std::uint32_t k = 0; k < t.dep_cnt; ++k) {
        const std::uint32_t di = dep[k];
        // A dependent in this task's own worker group (or any
        // dependent, when executing on the coordinator with workers
        // parked) is notified directly: its Task fields and queue
        // are exclusively ours right now. A cross-group dependent
        // goes through the mailbox — its arrival is >= one link
        // latency past this window's bound, so draining at the
        // boundary never reorders anything.
        if (!shard ||
            engine_->sameGroup(my_dom,
                               net_->nodeDomain(
                                   op->tasks_[di].src))) {
            CollectiveOp::Task &dt = op->tasks_[di];
            dt.ready = std::max(dt.ready, res.arrival);
            if (--dt.deps == 0)
                scheduleTask(op, di);
        } else {
            const Tick arrival = res.arrival;
            engine_->postCross(
                engine_->partitionOfDomain(my_dom),
                [this, op, di, arrival] {
                    CollectiveOp::Task &dt = op->tasks_[di];
                    dt.ready = std::max(dt.ready, arrival);
                    if (--dt.deps == 0)
                        scheduleTask(op, di);
                });
        }
    }
    if (op->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (!shard) {
            completeOp(*op);
        } else {
            // Retire on the coordinator via the mailbox: completeOp
            // samples shared stats and may invoke a user callback
            // that schedules coordinator events (the serving engine
            // does), neither of which a partition worker may do.
            // The deferred event is pinned to THIS tick — serially
            // the op completes inline inside its last chunk event,
            // so the coordinator's clock after waitAll() must read
            // the chunk's execution tick, not the (later) arrival
            // tick. The coordinator cannot have passed this tick:
            // it only steps while its head is <= every partition
            // head.
            const Tick done_at = q->curTick();
            engine_->postCross(
                engine_->partitionOfDomain(my_dom),
                [this, op, done_at] {
                    engine_->coordinator()->scheduleCallback(
                        done_at, [this, op] { completeOp(*op); });
                });
        }
    }
}

void
CommGroup::completeOp(CollectiveOp &op)
{
    EHPSIM_TRACK_WRITE(this, "stats.ops");
    const Tick fin = op.finishTick();
    ++ops_completed;
    op.retired_ = true;
    last_finish_ = std::max(last_finish_, fin);
    if (fin > op.start_)
        algo_bw_gbps.sample(op.algoBandwidth() / 1e9);
    if (op.on_complete_) {
        // Clear before invoking: the callback may retire the handle.
        auto fn = std::move(op.on_complete_);
        op.on_complete_ = nullptr;
        fn(fin);
    }
}

void
CollectiveOp::setOnComplete(std::function<void(Tick)> fn)
{
    if (on_complete_)
        panic("CollectiveOp already has a completion callback");
    if (done()) {
        fn(finishTick());
        return;
    }
    on_complete_ = std::move(fn);
}

OpHandle
CommGroup::allReduce(Tick when, std::uint64_t bytes, Algorithm algo)
{
    auto op = std::make_shared<CollectiveOp>();
    op->kind_ = Collective::allReduce;
    op->algo_ = algo == Algorithm::automatic
                    ? choose(op->kind_, bytes)
                    : algo;
    op->data_bytes_ = bytes;
    if (op->algo_ == Algorithm::ring)
        buildRing(*op, bytes, 0);
    else
        buildDirect(*op, bytes, 0);
    return start(when, op);
}

OpHandle
CommGroup::allGather(Tick when, std::uint64_t bytes, Algorithm algo)
{
    auto op = std::make_shared<CollectiveOp>();
    op->kind_ = Collective::allGather;
    op->algo_ = algo == Algorithm::automatic
                    ? choose(op->kind_, bytes)
                    : algo;
    op->data_bytes_ = bytes;
    if (op->algo_ == Algorithm::ring)
        buildRing(*op, bytes, 0);
    else
        buildDirect(*op, bytes, 0);
    return start(when, op);
}

OpHandle
CommGroup::reduceScatter(Tick when, std::uint64_t bytes,
                         Algorithm algo)
{
    auto op = std::make_shared<CollectiveOp>();
    op->kind_ = Collective::reduceScatter;
    op->algo_ = algo == Algorithm::automatic
                    ? choose(op->kind_, bytes)
                    : algo;
    op->data_bytes_ = bytes;
    if (op->algo_ == Algorithm::ring)
        buildRing(*op, bytes, 0);
    else
        buildDirect(*op, bytes, 0);
    return start(when, op);
}

OpHandle
CommGroup::broadcast(Tick when, unsigned root, std::uint64_t bytes,
                     Algorithm algo)
{
    if (root >= numRanks())
        fatal("broadcast root ", root, " out of range (", numRanks(),
              " ranks)");
    auto op = std::make_shared<CollectiveOp>();
    op->kind_ = Collective::broadcast;
    op->algo_ = algo == Algorithm::automatic
                    ? choose(op->kind_, bytes)
                    : algo;
    op->data_bytes_ = bytes;
    if (op->algo_ == Algorithm::ring)
        buildRing(*op, bytes, root);
    else
        buildDirect(*op, bytes, root);
    return start(when, op);
}

OpHandle
CommGroup::allToAll(Tick when, std::uint64_t bytes, Algorithm algo)
{
    auto op = std::make_shared<CollectiveOp>();
    op->kind_ = Collective::allToAll;
    op->algo_ = algo == Algorithm::automatic
                    ? choose(op->kind_, bytes)
                    : algo;
    const unsigned n = numRanks();
    op->data_bytes_ =
        n < 2 ? 0 : bytes * n * static_cast<std::uint64_t>(n - 1);
    if (op->algo_ == Algorithm::ring)
        buildRing(*op, bytes, 0);
    else
        buildDirect(*op, bytes, 0);
    return start(when, op);
}

OpHandle
CommGroup::sendRecv(Tick when, unsigned src, unsigned dst,
                    std::uint64_t bytes)
{
    if (src >= numRanks() || dst >= numRanks())
        fatal("sendRecv ranks ", src, " -> ", dst, " out of range (",
              numRanks(), " ranks)");
    auto op = std::make_shared<CollectiveOp>();
    op->kind_ = Collective::sendRecv;
    op->algo_ = Algorithm::direct;
    op->data_bytes_ = src == dst ? 0 : bytes;
    if (src != dst) {
        // Chunks are independent: per-link occupancy serializes them
        // at the bottleneck while they pipeline across hops.
        const ChunkSpan span = chunkSpanOf(bytes);
        op->tasks_.reserve(span.count);
        for (std::uint64_t k = 0; k < span.count; ++k) {
            const std::uint64_t c = k + 1 == span.count
                                        ? span.last
                                        : params_.chunk_bytes;
            addTask(*op, src, dst, c, nullptr, 0);
        }
    }
    return start(when, op);
}

Tick
CommGroup::waitAll()
{
    // Wait for retirement (completeOp ran), not just pending_ == 0:
    // under PDES the two are separated by a deferred coordinator
    // event, and waitAll() must not return before stats are sampled
    // and completion callbacks have fired.
    const auto retired = [](const OpHandle &op) {
        return op->retired_;
    };
    std::erase_if(outstanding_, retired);
    if (engine_) {
        // Drive the parallel core only until this group's ops have
        // retired — exactly as far as the serial loop below steps
        // the queue. Events past that point (a later fault arm, the
        // next op's work) stay pending, as they would serially.
        engine_->runUntil([this, &retired] {
            std::erase_if(outstanding_, retired);
            return outstanding_.empty();
        });
        return last_finish_;
    }
    while (!outstanding_.empty()) {
        if (!eventq()->step()) {
            panic("CommGroup '", name(), "': event queue drained "
                  "with ", outstanding_.size(),
                  " collectives pending");
        }
        std::erase_if(outstanding_, retired);
    }
    return last_finish_;
}

void
CommGroup::snapshot(SnapshotWriter &w) const
{
    if (!outstanding_.empty() &&
        std::any_of(outstanding_.begin(), outstanding_.end(),
                    [](const OpHandle &o) { return !o->retired_; })) {
        fatal("CommGroup '", name(), "': checkpoint with a "
              "collective in flight — quiesce to an op boundary "
              "first");
    }
    StatGroup::snapshot(w);
    w.putU64(last_finish_);
}

void
CommGroup::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    last_finish_ = r.getU64();
    outstanding_.clear();
    // Network::restore() rebuilt the route tables and destroyed the
    // LinkRoute objects the per-pair cache aliased; drop every slot
    // so routeFor() re-resolves lazily (no stat side effects — the
    // network prewarmed its saved-valid sources).
    pair_routes_.assign(ranks_.size() * ranks_.size(), nullptr);
    pair_epochs_.assign(ranks_.size() * ranks_.size(),
                        net_->routeEpoch());
}

double
CommGroup::maxLinkUtilization() const
{
    double u = 0;
    for (const fabric::Link *l : links_)
        u = std::max(u, l->utilization());
    return u;
}

double
CommGroup::avgLinkUtilization() const
{
    if (links_.empty())
        return 0.0;
    double u = 0;
    for (const fabric::Link *l : links_)
        u += l->utilization();
    return u / static_cast<double>(links_.size());
}

} // namespace comm
} // namespace ehpsim
