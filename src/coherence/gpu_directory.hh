/**
 * @file
 * The GPU's intra-socket directory protocol (paper Sec. IV.D).
 *
 * "The GPUs are ... directory-based hardware coherent within a
 * socket using a slightly simpler protocol than the CPUs use."
 *
 * GpuDirectory implements that simpler protocol: MSI only. There is
 * no Exclusive state (a cold read is installed Shared) and no Owned
 * state (losing the Modified copy always writes back to memory
 * rather than forwarding dirty data cache-to-cache). The trade is
 * exactly the one the paper implies: less protocol state and fewer
 * transition edges, at the cost of extra memory writebacks and
 * memory fetches that the CPU-side MOESI probe filter avoids.
 * coherence tests compare the two protocols' traffic on identical
 * access traces.
 */

#ifndef EHPSIM_COHERENCE_GPU_DIRECTORY_HH
#define EHPSIM_COHERENCE_GPU_DIRECTORY_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "coherence/probe_filter.hh"

namespace ehpsim
{
namespace coherence
{

class GpuDirectory : public SimObject
{
  public:
    GpuDirectory(SimObject *parent, const std::string &name,
                 unsigned line_bytes = 128);

    /** A read by XCD @p agent. */
    CoherenceOutcome read(AgentId agent, Addr addr);

    /** A write by XCD @p agent. */
    CoherenceOutcome write(AgentId agent, Addr addr);

    /** @p agent drops its copy (writes back if Modified). */
    CoherenceOutcome evict(AgentId agent, Addr addr);

    /** MSI state of a line (invalid/shared/modified only). */
    State lineState(Addr addr) const;

    std::vector<AgentId> holders(Addr addr) const;

    std::size_t trackedLines() const { return dir_.size(); }

    /** MSI invariants: M has exactly one holder; no E/O states. */
    bool invariantsHold() const;

    /** @{ statistics */
    stats::Scalar lookups;
    stats::Scalar probes_sent;
    stats::Scalar memory_fetches;
    stats::Scalar writebacks;
    /** @} */

  private:
    struct Entry
    {
        bool modified = false;
        AgentId owner = 0;          ///< valid when modified
        std::uint64_t sharers = 0;
    };

    Addr align(Addr addr) const { return addr & ~line_mask_; }

    Addr line_mask_;
    std::unordered_map<Addr, Entry> dir_;
};

} // namespace coherence
} // namespace ehpsim

#endif // EHPSIM_COHERENCE_GPU_DIRECTORY_HH
