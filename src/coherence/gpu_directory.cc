#include "coherence/gpu_directory.hh"

#include "sim/logging.hh"
#include "sim/ordered.hh"

namespace ehpsim
{
namespace coherence
{

GpuDirectory::GpuDirectory(SimObject *parent, const std::string &name,
                           unsigned line_bytes)
    : SimObject(parent, name),
      lookups(this, "lookups", "directory lookups"),
      probes_sent(this, "probes_sent", "probes sent to XCD caches"),
      memory_fetches(this, "memory_fetches", "fills from memory"),
      writebacks(this, "writebacks", "dirty data pushed to memory"),
      line_mask_(line_bytes - 1)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)))
        fatal("GPU directory line size must be a power of two");
}

CoherenceOutcome
GpuDirectory::read(AgentId agent, Addr addr)
{
    if (agent >= maxAgents)
        fatal("agent id out of range");
    ++lookups;
    const Addr line = align(addr);
    CoherenceOutcome out;
    auto &e = dir_[line];
    const std::uint64_t self = 1ull << agent;

    if (e.sharers & self) {
        if (e.modified && e.owner == agent)
            return out;         // already the writer
        if (!e.modified)
            return out;         // already a sharer
    }

    if (e.modified) {
        // Simpler protocol: the Modified copy is written back to
        // memory and downgraded; the reader then fetches from
        // memory. (MOESI would forward cache-to-cache into Owned.)
        out.probes = 1;
        ++probes_sent;
        out.writeback = true;
        ++writebacks;
        e.modified = false;
    }
    out.data_from_memory = true;
    ++memory_fetches;
    e.sharers |= self;          // cold reads install Shared (no E)
    return out;
}

CoherenceOutcome
GpuDirectory::write(AgentId agent, Addr addr)
{
    if (agent >= maxAgents)
        fatal("agent id out of range");
    ++lookups;
    const Addr line = align(addr);
    CoherenceOutcome out;
    auto &e = dir_[line];
    const std::uint64_t self = 1ull << agent;

    if (e.modified && e.owner == agent)
        return out;             // silent upgrade of own M line

    if (e.modified) {
        // Writeback-then-fetch, as in read(): no dirty forwarding.
        out.probes = 1;
        ++probes_sent;
        out.invalidations = 1;
        out.writeback = true;
        ++writebacks;
        e.sharers &= ~(1ull << e.owner);
    }
    const std::uint64_t others = e.sharers & ~self;
    const unsigned n =
        static_cast<unsigned>(__builtin_popcountll(others));
    out.probes += n;
    probes_sent += n;
    out.invalidations += n;

    out.data_from_memory = true;
    ++memory_fetches;
    e.modified = true;
    e.owner = agent;
    e.sharers = self;
    return out;
}

CoherenceOutcome
GpuDirectory::evict(AgentId agent, Addr addr)
{
    ++lookups;
    const Addr line = align(addr);
    CoherenceOutcome out;
    auto it = dir_.find(line);
    if (it == dir_.end())
        return out;
    Entry &e = it->second;
    const std::uint64_t self = 1ull << agent;
    if (!(e.sharers & self))
        return out;
    if (e.modified && e.owner == agent) {
        out.writeback = true;
        ++writebacks;
        e.modified = false;
    }
    e.sharers &= ~self;
    if (e.sharers == 0)
        dir_.erase(it);
    return out;
}

State
GpuDirectory::lineState(Addr addr) const
{
    auto it = dir_.find(align(addr));
    if (it == dir_.end() || it->second.sharers == 0)
        return State::invalid;
    return it->second.modified ? State::modified : State::shared;
}

std::vector<AgentId>
GpuDirectory::holders(Addr addr) const
{
    std::vector<AgentId> out;
    auto it = dir_.find(align(addr));
    if (it == dir_.end())
        return out;
    std::uint64_t s = it->second.sharers;
    while (s) {
        out.push_back(__builtin_ctzll(s));
        s &= s - 1;
    }
    return out;
}

bool
GpuDirectory::invariantsHold() const
{
    // Sorted traversal so any diagnostic built on this walk stays
    // deterministic (dir_ itself iterates in hash order).
    for (const Addr line : sortedKeys(dir_)) {
        const Entry &e = dir_.at(line);
        if (e.sharers == 0)
            return false;
        if (e.modified) {
            if (__builtin_popcountll(e.sharers) != 1)
                return false;
            if (!(e.sharers & (1ull << e.owner)))
                return false;
        }
    }
    return true;
}

} // namespace coherence
} // namespace ehpsim
