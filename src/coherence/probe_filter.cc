#include "coherence/probe_filter.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/ordered.hh"

namespace ehpsim
{
namespace coherence
{

const char *
stateName(State s)
{
    switch (s) {
      case State::invalid:
        return "I";
      case State::shared:
        return "S";
      case State::exclusive:
        return "E";
      case State::owned:
        return "O";
      case State::modified:
        return "M";
    }
    panic("bad coherence state");
}

ProbeFilter::ProbeFilter(SimObject *parent, const std::string &name,
                         std::size_t capacity_lines,
                         unsigned line_bytes)
    : SimObject(parent, name),
      lookups(this, "lookups", "directory lookups"),
      probes_sent(this, "probes_sent", "probes sent to caches"),
      cache_transfers(this, "cache_transfers",
                      "cache-to-cache data transfers"),
      memory_fetches(this, "memory_fetches", "fills from memory"),
      writebacks(this, "writebacks", "dirty data written to memory"),
      recalls(this, "recalls", "directory-eviction recalls"),
      capacity_(capacity_lines),
      line_mask_(line_bytes - 1)
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)))
        fatal("probe filter line size must be a power of two");
}

void
ProbeFilter::makeRoom(CoherenceOutcome &out)
{
    if (capacity_ == 0 || dir_.size() < capacity_)
        return;
    // Recall the oldest tracked line: probe and invalidate every
    // holder, writing back dirty data.
    while (!insertion_order_.empty()) {
        const Addr victim = insertion_order_.front();
        insertion_order_.erase(insertion_order_.begin());
        auto it = dir_.find(victim);
        if (it == dir_.end())
            continue;
        const DirEntry &e = it->second;
        out.recall = true;
        ++recalls;
        const unsigned n = e.numSharers();
        out.probes += n;
        probes_sent += n;
        out.invalidations += n;
        if (e.state == State::modified || e.state == State::owned) {
            out.writeback = true;
            ++writebacks;
        }
        dir_.erase(it);
        return;
    }
}

CoherenceOutcome
ProbeFilter::read(AgentId agent, Addr addr)
{
    if (agent >= maxAgents)
        fatal("agent id ", agent, " out of range");
    ++lookups;
    const Addr line = align(addr);
    CoherenceOutcome out;

    auto it = dir_.find(line);
    if (it == dir_.end()) {
        makeRoom(out);
        DirEntry e;
        e.state = State::exclusive;
        e.owner = agent;
        e.sharers = 1ull << agent;
        dir_[line] = e;
        insertion_order_.push_back(line);
        out.data_from_memory = true;
        ++memory_fetches;
        return out;
    }

    DirEntry &e = it->second;
    if (e.sharers & (1ull << agent)) {
        // Requester already holds the line; local hit, no traffic.
        return out;
    }

    switch (e.state) {
      case State::exclusive:
      case State::modified:
        // Probe the owner; it supplies data and downgrades.
        out.probes = 1;
        ++probes_sent;
        out.data_from_cache = true;
        ++cache_transfers;
        e.state = e.state == State::modified ? State::owned
                                             : State::shared;
        e.sharers |= 1ull << agent;
        break;
      case State::owned:
        // Owner supplies data; requester joins the sharers.
        out.probes = 1;
        ++probes_sent;
        out.data_from_cache = true;
        ++cache_transfers;
        e.sharers |= 1ull << agent;
        break;
      case State::shared:
        // Clean sharers; fetch from memory (no forwarding state).
        out.data_from_memory = true;
        ++memory_fetches;
        e.sharers |= 1ull << agent;
        break;
      case State::invalid:
        panic("invalid directory entry present");
    }
    return out;
}

CoherenceOutcome
ProbeFilter::write(AgentId agent, Addr addr)
{
    if (agent >= maxAgents)
        fatal("agent id ", agent, " out of range");
    ++lookups;
    const Addr line = align(addr);
    CoherenceOutcome out;

    auto it = dir_.find(line);
    if (it == dir_.end()) {
        makeRoom(out);
        DirEntry e;
        e.state = State::modified;
        e.owner = agent;
        e.sharers = 1ull << agent;
        dir_[line] = e;
        insertion_order_.push_back(line);
        out.data_from_memory = true;
        ++memory_fetches;
        return out;
    }

    DirEntry &e = it->second;
    const std::uint64_t self = 1ull << agent;
    const bool had_copy = e.sharers & self;

    // Invalidate every other holder.
    const std::uint64_t others = e.sharers & ~self;
    const unsigned n_others =
        static_cast<unsigned>(__builtin_popcountll(others));
    out.probes += n_others;
    probes_sent += n_others;
    out.invalidations += n_others;

    const bool dirty_elsewhere =
        (e.state == State::modified || e.state == State::owned) &&
        e.owner != agent;
    if (dirty_elsewhere) {
        out.data_from_cache = true;
        ++cache_transfers;
    } else if (!had_copy) {
        out.data_from_memory = true;
        ++memory_fetches;
    }

    e.state = State::modified;
    e.owner = agent;
    e.sharers = self;
    return out;
}

CoherenceOutcome
ProbeFilter::evict(AgentId agent, Addr addr)
{
    ++lookups;
    const Addr line = align(addr);
    CoherenceOutcome out;
    auto it = dir_.find(line);
    if (it == dir_.end())
        return out;
    DirEntry &e = it->second;
    const std::uint64_t self = 1ull << agent;
    if (!(e.sharers & self))
        return out;

    const bool was_dirty_owner =
        (e.state == State::modified || e.state == State::owned) &&
        e.owner == agent;
    if (was_dirty_owner) {
        out.writeback = true;
        ++writebacks;
    }

    e.sharers &= ~self;
    if (e.sharers == 0) {
        dir_.erase(it);
        insertion_order_.erase(
            std::remove(insertion_order_.begin(),
                        insertion_order_.end(), line),
            insertion_order_.end());
        return out;
    }
    if (was_dirty_owner || e.state == State::exclusive ||
        (e.owner == agent)) {
        // Remaining copies are read-only and memory is now current
        // (after the writeback, if any).
        e.state = State::shared;
        e.owner = static_cast<AgentId>(__builtin_ctzll(e.sharers));
    }
    return out;
}

State
ProbeFilter::lineState(Addr addr) const
{
    auto it = dir_.find(align(addr));
    return it == dir_.end() ? State::invalid : it->second.state;
}

std::vector<AgentId>
ProbeFilter::holders(Addr addr) const
{
    std::vector<AgentId> out;
    auto it = dir_.find(align(addr));
    if (it == dir_.end())
        return out;
    std::uint64_t s = it->second.sharers;
    while (s) {
        const unsigned b = __builtin_ctzll(s);
        out.push_back(b);
        s &= s - 1;
    }
    return out;
}

std::optional<AgentId>
ProbeFilter::owner(Addr addr) const
{
    auto it = dir_.find(align(addr));
    if (it == dir_.end())
        return std::nullopt;
    const DirEntry &e = it->second;
    if (e.state == State::shared)
        return std::nullopt;
    return e.owner;
}

bool
ProbeFilter::invariantsHold() const
{
    // Sorted traversal: the check is order-insensitive today, but
    // any future diagnostic (first failing line, JSON dump) must not
    // inherit hash order.
    for (const Addr line : sortedKeys(dir_)) {
        const DirEntry &e = dir_.at(line);
        if (e.state == State::invalid)
            return false;
        if (e.sharers == 0)
            return false;
        const unsigned n = e.numSharers();
        switch (e.state) {
          case State::modified:
          case State::exclusive:
            if (n != 1)
                return false;
            if (!(e.sharers & (1ull << e.owner)))
                return false;
            break;
          case State::owned:
            if (!(e.sharers & (1ull << e.owner)))
                return false;
            break;
          case State::shared:
            break;
          case State::invalid:
            return false;
        }
    }
    return true;
}

} // namespace coherence
} // namespace ehpsim
