/**
 * @file
 * GPU scoped (acquire/release) coherence (paper Sec. IV.D, VI.A).
 *
 * Within a socket the XCDs are hardware coherent through a simpler
 * directory; across sockets the GPUs are *software* coherent: kernels
 * bracket their memory with acquire (invalidate stale local copies)
 * and release (make writes visible) operations at a chosen scope.
 * The ScopeController turns acquire/release at each scope into cache
 * maintenance on the registered cache levels and accounts the
 * resulting traffic, which is what the "coherence scope" step of the
 * multi-XCD dispatch flow (Fig. 13) costs.
 */

#ifndef EHPSIM_COHERENCE_GPU_SCOPE_HH
#define EHPSIM_COHERENCE_GPU_SCOPE_HH

#include <vector>

#include "mem/cache.hh"
#include "sim/sim_object.hh"

namespace ehpsim
{
namespace coherence
{

/** HSA-style memory scopes, from narrowest to widest. */
enum class Scope
{
    workgroup,  ///< visible within one CU's workgroup (LDS/L1)
    agent,      ///< visible across one XCD (flush L1s to L2)
    device,     ///< visible across the socket (flush L2 to fabric)
    system,     ///< visible across sockets (software coherence)
};

const char *scopeName(Scope s);

/** Cache maintenance cost of one acquire or release. */
struct ScopeOp
{
    std::uint64_t lines_invalidated = 0;
    std::uint64_t bytes_written_back = 0;
    Tick complete = 0;
};

class ScopeController : public SimObject
{
  public:
    ScopeController(SimObject *parent, const std::string &name);

    /** Register an XCD's L1 caches and its L2. */
    void addXcdCaches(std::vector<mem::Cache *> l1s, mem::Cache *l2);

    unsigned numXcds() const
    {
        return static_cast<unsigned>(l2s_.size());
    }

    /**
     * Acquire at @p scope for XCD @p xcd: invalidate caches that may
     * hold stale data.
     */
    ScopeOp acquire(Tick when, unsigned xcd, Scope scope);

    /**
     * Release at @p scope for XCD @p xcd: write dirty data out to the
     * visibility point.
     */
    ScopeOp release(Tick when, unsigned xcd, Scope scope);

    /** @{ statistics */
    stats::Scalar acquires;
    stats::Scalar releases;
    stats::Scalar l1_invalidations;
    stats::Scalar l2_flush_bytes;
    /** @} */

  private:
    std::vector<std::vector<mem::Cache *>> l1s_;  ///< per XCD
    std::vector<mem::Cache *> l2s_;               ///< per XCD
};

} // namespace coherence
} // namespace ehpsim

#endif // EHPSIM_COHERENCE_GPU_SCOPE_HH
