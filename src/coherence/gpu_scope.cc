#include "coherence/gpu_scope.hh"

#include "sim/logging.hh"

namespace ehpsim
{
namespace coherence
{

const char *
scopeName(Scope s)
{
    switch (s) {
      case Scope::workgroup:
        return "workgroup";
      case Scope::agent:
        return "agent";
      case Scope::device:
        return "device";
      case Scope::system:
        return "system";
    }
    panic("bad scope");
}

ScopeController::ScopeController(SimObject *parent,
                                 const std::string &name)
    : SimObject(parent, name),
      acquires(this, "acquires", "acquire operations"),
      releases(this, "releases", "release operations"),
      l1_invalidations(this, "l1_invalidations",
                       "L1 lines invalidated by acquires"),
      l2_flush_bytes(this, "l2_flush_bytes",
                     "bytes flushed from L2s by releases")
{
}

void
ScopeController::addXcdCaches(std::vector<mem::Cache *> l1s,
                              mem::Cache *l2)
{
    l1s_.push_back(std::move(l1s));
    l2s_.push_back(l2);
}

ScopeOp
ScopeController::acquire(Tick when, unsigned xcd, Scope scope)
{
    if (xcd >= l2s_.size())
        fatal("acquire on unknown XCD ", xcd);
    ++acquires;
    ScopeOp op;
    op.complete = when;
    if (scope == Scope::workgroup)
        return op;      // L1 already sees the workgroup's writes

    // agent and wider: invalidate the XCD's (non-coherent) L1s so
    // subsequent loads observe other agents' writes via L2/fabric.
    for (auto *l1 : l1s_[xcd]) {
        const std::uint64_t valid = l1->array().numValid();
        auto dirty = const_cast<mem::Cache *>(l1)->flush(when);
        (void)dirty;
        op.lines_invalidated += valid;
    }
    l1_invalidations += static_cast<double>(op.lines_invalidated);

    if (scope == Scope::device || scope == Scope::system) {
        // The L2 may also hold lines homed on other agents; acquire
        // at device scope invalidates them. Modeled as a full flush.
        const std::uint64_t flushed = l2s_[xcd]->flush(when);
        op.bytes_written_back += flushed;
    }
    return op;
}

ScopeOp
ScopeController::release(Tick when, unsigned xcd, Scope scope)
{
    if (xcd >= l2s_.size())
        fatal("release on unknown XCD ", xcd);
    ++releases;
    ScopeOp op;
    op.complete = when;
    if (scope == Scope::workgroup)
        return op;

    // Push dirty L1 data into L2.
    for (auto *l1 : l1s_[xcd])
        op.bytes_written_back += l1->flush(when);

    if (scope == Scope::device || scope == Scope::system) {
        // Make writes visible beyond the XCD: flush L2 toward memory.
        op.bytes_written_back += l2s_[xcd]->flush(when);
    }
    l2_flush_bytes += static_cast<double>(op.bytes_written_back);
    return op;
}

} // namespace coherence
} // namespace ehpsim
