#include "sim/rng.hh"

#include "sim/snapshot.hh"

namespace ehpsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

void
Rng::snapshot(SnapshotWriter &w) const
{
    for (const auto s : s_)
        w.putU64(s);
}

void
Rng::restore(SnapshotReader &r)
{
    for (auto &s : s_)
        s = r.getU64();
}

double
counterHashUnit(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                std::uint64_t c)
{
    // Feed each word through the same finalizer splitmix64 uses so
    // nearby counters (op ids, task indices, attempt numbers) land
    // far apart.
    std::uint64_t x = seed;
    std::uint64_t h = splitmix64(x);
    x ^= a;
    h ^= splitmix64(x);
    x ^= b;
    h ^= splitmix64(x);
    x ^= c;
    h ^= splitmix64(x);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace ehpsim
