#include "sim/access_tracker.hh"

#include <algorithm>

#include "sim/json.hh"
#include "sim/sim_object.hh"

namespace ehpsim
{
namespace race
{

namespace
{

/** Per-thread tracker binding (TrackerScope). Thread-local, not a
 *  shared global: every SweepRunner worker drives its own scenario
 *  under its own tracker, so no cross-thread state exists. */
thread_local AccessTracker *tl_current = nullptr;

/** Accesses kept per cell within one (tick, priority) window. A
 *  window bigger than this (a pathological batch) drops the
 *  overflow and reports it in summary.window_drops. */
constexpr std::size_t windowCap = 128;

/** Shorten an absolute __FILE__ to its repo-relative tail so
 *  reports are byte-identical regardless of the build directory. */
std::string
trimFile(const char *file)
{
    const std::string f = file ? file : "";
    for (const char *root : {"src/", "tests/", "examples/", "bench/"}) {
        const std::size_t p = f.rfind(root);
        if (p != std::string::npos)
            return f.substr(p);
    }
    const std::size_t slash = f.rfind('/');
    return slash == std::string::npos ? f : f.substr(slash + 1);
}

std::string
siteOf(const char *file, int line)
{
    return trimFile(file) + ":" + std::to_string(line);
}

} // anonymous namespace

AccessTracker *
AccessTracker::current()
{
    return tl_current;
}

void
AccessTracker::beginEvent(Tick when, int priority, std::uint64_t seq)
{
    if (when != window_tick_ || priority != window_priority_) {
        window_.clear();
        window_tick_ = when;
        window_priority_ = priority;
    }
    in_event_ = true;
    cur_tick_ = when;
    cur_priority_ = priority;
    cur_seq_ = seq;
    cur_domain_ = -1;
    ++events_;
}

void
AccessTracker::endEvent()
{
    in_event_ = false;
}

void
AccessTracker::record(const SimObject *obj, const char *cell,
                      bool is_write, const char *file, int line)
{
    // Construction-time and topology-building accesses happen before
    // the event loop and cannot race; only dispatch-time mutations
    // are recorded.
    if (!in_event_)
        return;
    ++accesses_;

    const std::string path =
        obj ? obj->statPath() + "." + cell : std::string(cell);
    const std::string site = siteOf(file, line);

    // Cross-partition detection: the first domain-bearing object an
    // event touches fixes the event's domain; touching a second
    // domain in the same dispatch is a PDES blocker.
    const int dom = obj ? obj->raceDomain() : -1;
    if (dom >= 0) {
        if (cur_domain_ < 0) {
            cur_domain_ = dom;
        } else if (dom != cur_domain_) {
            recordPartitionFlow(cur_domain_, dom);
            noteConflict("partition", path,
                         "domain " + std::to_string(cur_domain_) +
                             "->" + std::to_string(dom),
                         site);
        }
    }

    auto &window = window_[path];
    for (const Access &prev : window) {
        if (prev.seq != cur_seq_ && (prev.write || is_write)) {
            noteConflict("order", path,
                         prev.site + (prev.write ? "[w]" : "[r]"),
                         site + (is_write ? "[w]" : "[r]"));
        }
    }
    // Re-recording the identical access adds no information; cap the
    // window so one hot cell cannot grow memory unboundedly.
    const bool dup = std::any_of(
        window.begin(), window.end(), [&](const Access &a) {
            return a.seq == cur_seq_ && a.write == is_write &&
                   a.site == site;
        });
    if (dup)
        return;
    if (window.size() >= windowCap) {
        ++window_drops_;
        return;
    }
    window.push_back(Access{cur_seq_, is_write, site});
}

void
AccessTracker::recordPartitionLink(int a, int b, Tick latency)
{
    if (a < 0 || b < 0 || a == b)
        return;
    const auto key = std::minmax(a, b);
    auto [it, inserted] =
        lookahead_.emplace(std::pair<int, int>(key), latency);
    if (!inserted)
        it->second = std::min(it->second, latency);
}

void
AccessTracker::recordPartitionFlow(int src, int dst)
{
    if (src < 0 || dst < 0 || src == dst)
        return;
    ++flows_[{src, dst}];
}

void
AccessTracker::waive(std::string pattern, std::string rationale)
{
    waivers_[std::move(pattern)] =
        Waiver{std::move(rationale), 0};
}

void
AccessTracker::noteConflict(const std::string &kind,
                            const std::string &cell, std::string a,
                            std::string b)
{
    // An order hazard between two sites is symmetric — which event
    // the batch happened to dispatch first carries no information —
    // so canonicalize the endpoint order to deduplicate the pair.
    // (Partition findings keep their fixed (transition, site) slots.)
    if (kind == "order" && b < a)
        std::swap(a, b);
    auto [it, inserted] = conflicts_.try_emplace(
        ConflictKey{kind, cell, std::move(a), std::move(b)});
    if (inserted)
        it->second.first_tick = cur_tick_;
    ++it->second.count;
}

const AccessTracker::Waiver *
AccessTracker::waiverFor(const std::string &cell) const
{
    for (const auto &[pattern, waiver] : waivers_) {
        if (cell.find(pattern) != std::string::npos)
            return &waiver;
    }
    return nullptr;
}

std::size_t
AccessTracker::unwaivedCount() const
{
    std::size_t n = 0;
    for (const auto &[key, info] : conflicts_) {
        if (!waiverFor(std::get<1>(key)))
            ++n;
    }
    return n;
}

void
AccessTracker::dumpJson(json::JsonWriter &jw) const
{
    for (auto &[pattern, waiver] : waivers_)
        waiver.uses = 0;

    jw.beginObject();
    jw.kv("schema", "ehpsim-race-v1");

    jw.key("summary");
    jw.beginObject();
    jw.kv("events", events_);
    jw.kv("accesses", accesses_);
    jw.kv("conflicts", std::uint64_t(conflicts_.size()));
    jw.kv("waived", std::uint64_t(waivedCount()));
    jw.kv("unwaived", std::uint64_t(unwaivedCount()));
    jw.kv("window_drops", window_drops_);
    jw.endObject();

    jw.key("conflicts");
    jw.beginArray();
    for (const auto &[key, info] : conflicts_) {
        const auto &[kind, cell, a, b] = key;
        const Waiver *w = waiverFor(cell);
        if (w)
            ++w->uses;
        jw.beginObject();
        jw.kv("kind", kind);
        jw.kv("cell", cell);
        jw.kv("a", a);
        jw.kv("b", b);
        jw.kv("count", info.count);
        jw.kv("first_tick", info.first_tick);
        jw.kv("waived", w != nullptr);
        if (w)
            jw.kv("rationale", w->rationale);
        jw.endObject();
    }
    jw.endArray();

    jw.key("waivers");
    jw.beginArray();
    for (const auto &[pattern, waiver] : waivers_) {
        jw.beginObject();
        jw.kv("pattern", pattern);
        jw.kv("rationale", waiver.rationale);
        jw.kv("uses", waiver.uses);
        jw.endObject();
    }
    jw.endArray();

    jw.key("partitions");
    jw.beginObject();
    jw.key("flows");
    jw.beginArray();
    for (const auto &[pair, count] : flows_) {
        jw.beginObject();
        jw.kv("src", pair.first);
        jw.kv("dst", pair.second);
        jw.kv("count", count);
        jw.endObject();
    }
    jw.endArray();
    jw.key("lookahead");
    jw.beginArray();
    for (const auto &[pair, latency] : lookahead_) {
        jw.beginObject();
        jw.kv("a", pair.first);
        jw.kv("b", pair.second);
        jw.kv("min_link_latency", latency);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();

    jw.endObject();
}

TrackerScope::TrackerScope(AccessTracker *t) : prev_(tl_current)
{
    tl_current = t;
}

TrackerScope::~TrackerScope()
{
    tl_current = prev_;
}

EventDispatchScope::EventDispatchScope(Tick when, int priority,
                                       std::uint64_t seq)
    : t_(tl_current)
{
    if (t_)
        t_->beginEvent(when, priority, seq);
}

EventDispatchScope::~EventDispatchScope()
{
    if (t_)
        t_->endEvent();
}

void
trackRead(const SimObject *obj, const char *cell, const char *file,
          int line)
{
    if (AccessTracker *t = tl_current)
        t->record(obj, cell, false, file, line);
}

void
trackWrite(const SimObject *obj, const char *cell, const char *file,
           int line)
{
    if (AccessTracker *t = tl_current)
        t->record(obj, cell, true, file, line);
}

void
notePartitionLink(int a, int b, Tick latency)
{
    if (AccessTracker *t = tl_current)
        t->recordPartitionLink(a, b, latency);
}

void
notePartitionFlow(int src, int dst)
{
    if (AccessTracker *t = tl_current)
        t->recordPartitionFlow(src, dst);
}

void
addStandardWaivers(AccessTracker &t)
{
    // Each entry was reviewed against the dispatch code it covers;
    // the bar for adding one is a proof of order-independence, not
    // convenience (DESIGN.md §14).
    t.waive(".op", "per-op chunk-completion bookkeeping is "
                   "commutative: pending_ is a pure decrement, "
                   "finish_/ready are max-merges, and "
                   "link_bytes_ is a sum — any same-tick "
                   "completion order yields identical op state");
    t.waive(".occupancy", "link occupancy is a serialization "
                          "queue: same-tick transfers drain in "
                          "seq order, and the queue's final "
                          "free-tick and busy-time sums are "
                          "independent of that order");
    t.waive(".stats", "scalar stat accumulation (+=, ++, "
                      "max-merge) commutes across same-tick "
                      "events by construction");
}

} // namespace race
} // namespace ehpsim
