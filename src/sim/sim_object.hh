/**
 * @file
 * Base class for simulated hardware components.
 *
 * A SimObject couples a name, a StatGroup node, and a pointer to the
 * owning EventQueue, mirroring gem5's SimObject in miniature.
 */

#ifndef EHPSIM_SIM_SIM_OBJECT_HH
#define EHPSIM_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ehpsim
{

class SimObject : public stats::StatGroup
{
  public:
    /**
     * @param parent Enclosing component (may be nullptr for roots).
     * @param name Short name; the stat path prepends the parents'.
     * @param eq Event queue driving this component; roots must supply
     *        one, children default to their parent's.
     */
    SimObject(SimObject *parent, std::string name,
              EventQueue *eq = nullptr)
        : stats::StatGroup(parent, name),
          name_(std::move(name)),
          parent_(parent),
          eventq_(eq ? eq : (parent ? parent->eventq_ : nullptr))
    {
    }

    const std::string &name() const { return name_; }

    SimObject *parent() const { return parent_; }

    EventQueue *eventq() const { return eventq_; }

    Tick curTick() const { return eventq_ ? eventq_->curTick() : 0; }

    /**
     * Declare which partition (socket / IOD id — the prospective
     * PDES logical process) owns this object's state. Children
     * inherit their nearest ancestor's domain; -1 (the default)
     * means "unpartitioned". Read by the ehpsim-race AccessTracker
     * to classify cross-partition accesses.
     */
    void setRaceDomain(int domain) { race_domain_ = domain; }

    /** This object's partition domain, inherited from the nearest
     *  domain-bearing ancestor; -1 when no ancestor declares one. */
    int
    raceDomain() const
    {
        for (const SimObject *o = this; o; o = o->parent_) {
            if (o->race_domain_ >= 0)
                return o->race_domain_;
        }
        return -1;
    }

  private:
    std::string name_;
    SimObject *parent_;
    EventQueue *eventq_;
    int race_domain_ = -1;
};

} // namespace ehpsim

#endif // EHPSIM_SIM_SIM_OBJECT_HH
