/**
 * @file
 * Base class for simulated hardware components.
 *
 * A SimObject couples a name, a StatGroup node, and a pointer to the
 * owning EventQueue, mirroring gem5's SimObject in miniature.
 *
 * Checkpointing: SimObject inherits the snapshot(SnapshotWriter&) /
 * restore(SnapshotReader&) virtual pair from stats::StatGroup
 * (DESIGN.md §16). The inherited base walk serializes the object's
 * registered stats and recurses into its children; state-bearing
 * components override both, calling the base first and then
 * appending their extra dynamic state. saveWorld()/restoreWorld()
 * below bundle the object tree with its EventQueue into one blob.
 */

#ifndef EHPSIM_SIM_SIM_OBJECT_HH
#define EHPSIM_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ehpsim
{

class SimObject : public stats::StatGroup
{
  public:
    /**
     * @param parent Enclosing component (may be nullptr for roots).
     * @param name Short name; the stat path prepends the parents'.
     * @param eq Event queue driving this component; roots must supply
     *        one, children default to their parent's.
     */
    SimObject(SimObject *parent, std::string name,
              EventQueue *eq = nullptr)
        : stats::StatGroup(parent, name),
          name_(std::move(name)),
          parent_(parent),
          eventq_(eq ? eq : (parent ? parent->eventq_ : nullptr))
    {
    }

    const std::string &name() const { return name_; }

    SimObject *parent() const { return parent_; }

    EventQueue *eventq() const { return eventq_; }

    Tick curTick() const { return eventq_ ? eventq_->curTick() : 0; }

    /**
     * Declare which partition (socket / IOD id — the prospective
     * PDES logical process) owns this object's state. Children
     * inherit their nearest ancestor's domain; -1 (the default)
     * means "unpartitioned". Read by the ehpsim-race AccessTracker
     * to classify cross-partition accesses.
     */
    void setRaceDomain(int domain) { race_domain_ = domain; }

    /** This object's partition domain, inherited from the nearest
     *  domain-bearing ancestor; -1 when no ancestor declares one. */
    int
    raceDomain() const
    {
        for (const SimObject *o = this; o; o = o->parent_) {
            if (o->race_domain_ >= 0)
                return o->race_domain_;
        }
        return -1;
    }

  private:
    std::string name_;
    SimObject *parent_;
    EventQueue *eventq_;
    int race_domain_ = -1;
};

/**
 * Checkpoint a whole simulation — queue first (counters + pending
 * keyed events), then the object tree rooted at @p root — into one
 * versioned blob. The simulation must be quiesced: every pending
 * event keyed, no collective op in flight.
 */
std::string saveWorld(const EventQueue &eq,
                      const stats::StatGroup &root);

/**
 * Restore a blob produced by saveWorld() into a freshly constructed
 * world: the same components, built in the same order, with nothing
 * scheduled and nothing run (in particular: do not start engines or
 * arm injectors — their pending events replay from the blob).
 * Fatal on a corrupt, truncated, or mismatched checkpoint.
 */
void restoreWorld(const std::string &blob, EventQueue &eq,
                  stats::StatGroup &root);

} // namespace ehpsim

#endif // EHPSIM_SIM_SIM_OBJECT_HH
