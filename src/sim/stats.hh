/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Statistics register themselves with a StatGroup; groups nest so the
 * whole system forms a tree that can be dumped as "path.name value"
 * lines. Supported kinds: Scalar (counter), Average (mean of
 * samples), Distribution (bucketed histogram with min/max/mean), and
 * Formula (derived value evaluated at dump time).
 */

#ifndef EHPSIM_SIM_STATS_HH
#define EHPSIM_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace ehpsim
{

namespace json
{
class JsonWriter;
} // namespace json

class SnapshotWriter;
class SnapshotReader;

namespace stats
{

class StatGroup;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }

    const std::string &desc() const { return desc_; }

    /** Emit "path value # desc" lines. */
    virtual void dump(std::ostream &os,
                      const std::string &path) const = 0;

    /**
     * Emit this stat as a JSON object member: the writer is inside
     * an open object; implementations write key(name()) plus one
     * value (scalars a number, compound kinds a nested object).
     */
    virtual void dumpJson(json::JsonWriter &jw) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /**
     * @{ Checkpoint this stat's accumulated value(s) (DESIGN.md
     * §16). The defaults serialize nothing, which is correct only
     * for stats with no mutable state (Formula); every accumulating
     * kind overrides both. Restore must consume exactly the bytes
     * snapshot produced.
     */
    virtual void snapshot(SnapshotWriter &) const {}
    virtual void restore(SnapshotReader &) {}
    /** @} */

  private:
    std::string name_;
    std::string desc_;
};

/** A monotonically adjustable counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { value_ += v; return *this; }

    Scalar &operator++() { value_ += 1; return *this; }

    void set(double v) { value_ = v; }

    double value() const { return value_; }

    void dump(std::ostream &os, const std::string &path) const override;

    void dumpJson(json::JsonWriter &jw) const override;

    void reset() override { value_ = 0; }

    void snapshot(SnapshotWriter &w) const override;

    void restore(SnapshotReader &r) override;

  private:
    double value_ = 0;
};

/** Mean/min/max over individually recorded samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v);

    std::uint64_t count() const { return count_; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    double min() const { return count_ ? min_ : 0.0; }

    double max() const { return count_ ? max_ : 0.0; }

    void dump(std::ostream &os, const std::string &path) const override;

    void dumpJson(json::JsonWriter &jw) const override;

    void reset() override;

    void snapshot(SnapshotWriter &w) const override;

    void restore(SnapshotReader &r) override;

  private:
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-width bucketed histogram. */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc);

    /** Configure bucket range [lo, hi) with @p nbuckets buckets. */
    Distribution &init(double lo, double hi, unsigned nbuckets);

    void sample(double v, std::uint64_t n = 1);

    std::uint64_t count() const { return count_; }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    std::uint64_t bucketCount(unsigned i) const { return buckets_[i]; }

    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }

    std::uint64_t underflows() const { return underflow_; }

    std::uint64_t overflows() const { return overflow_; }

    void dump(std::ostream &os, const std::string &path) const override;

    void dumpJson(json::JsonWriter &jw) const override;

    void reset() override;

    void snapshot(SnapshotWriter &w) const override;

    void restore(SnapshotReader &r) override;

  private:
    double lo_ = 0;
    double hi_ = 1;
    double bucket_width_ = 1;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0;
};

/**
 * Exact percentiles over individually recorded samples.
 *
 * Samples are retained (sorted lazily on demand), so any percentile
 * is exact — no bucket-resolution error — and the result is a pure
 * function of the sample multiset: deterministic across runs,
 * worker counts, and insertion orders. Intended for latency
 * populations of bounded size (one sample per request, not per
 * event); dump() and dumpJson() report p50/p95/p99 plus mean/count.
 */
class Percentile : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v);

    std::uint64_t count() const { return samples_.size(); }

    double mean() const;

    /**
     * Nearest-rank percentile for @p p in [0, 100]: the
     * ceil(p/100 * N)-th smallest sample (the smallest for p = 0).
     * Panics on out-of-range @p p (validated before the empty-stat
     * check). Returns 0 when no samples were recorded — consumers
     * that must distinguish "no data" from a genuine 0 should check
     * count() (serve JSON emits it as *_samples).
     */
    double percentile(double p) const;

    void dump(std::ostream &os, const std::string &path) const override;

    void dumpJson(json::JsonWriter &jw) const override;

    void reset() override;

    void snapshot(SnapshotWriter &w) const override;

    void restore(SnapshotReader &r) override;

  private:
    /** Sort samples_ unless already sorted since the last sample. */
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0;
};

/** A derived statistic evaluated lazily at dump time. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    void dump(std::ostream &os, const std::string &path) const override;

    void dumpJson(json::JsonWriter &jw) const override;

    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * A named node in the statistics tree. Components own a StatGroup
 * (usually via inheritance) and declare stats as members.
 */
class StatGroup
{
  public:
    StatGroup(StatGroup *parent, std::string name);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &statName() const { return name_; }

    /** Full dotted path from the root group. */
    std::string statPath() const;

    /** Dump this group's subtree. */
    void dumpStats(std::ostream &os) const;

    /**
     * Emit this group's subtree as one JSON object value: stats
     * become members keyed by stat name (compound kinds nest an
     * object), child groups become nested objects keyed by group
     * name. The writer must be positioned where a value is legal.
     */
    void dumpJsonStats(json::JsonWriter &jw) const;

    /** Reset this group's subtree. */
    void resetStats();

    const std::vector<StatBase *> &statList() const { return stats_; }

    const std::vector<StatGroup *> &groupList() const { return groups_; }

    /**
     * @{ Checkpoint this group's subtree (DESIGN.md §16). The base
     * walk serializes every registered stat and recurses into child
     * groups virtually, both in registration order, validating
     * group and stat names on restore — so a checkpoint taken from
     * a differently-shaped simulation fails loudly. State-bearing
     * subclasses override both, call the base FIRST, then append
     * their extra (non-stat) dynamic state; restore must mirror the
     * exact write order.
     */
    virtual void snapshot(SnapshotWriter &w) const;
    virtual void restore(SnapshotReader &r);
    /** @} */

    /** Find a stat by name in this group only; nullptr if absent. */
    StatBase *findStat(const std::string &name) const;

  private:
    friend class StatBase;

    /** Register @p stat; panics if the name is already taken in
     *  this group (the runtime twin of ehpsim-lint's dup-stat). */
    void addStat(StatBase *stat);

    StatGroup *parent_;
    std::string name_;
    std::vector<StatBase *> stats_;
    std::vector<StatGroup *> groups_;
};

/**
 * Serialize @p root's subtree as a complete JSON document:
 * {"name": <group name>, "stats": { ...dumpJsonStats()... }}.
 */
void dumpJson(const StatGroup &root, std::ostream &os);

} // namespace stats
} // namespace ehpsim

#endif // EHPSIM_SIM_STATS_HH
