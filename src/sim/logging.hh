/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for simulator bugs (aborts); fatal() is for user/config
 * errors (clean exit); warn()/inform() report conditions without
 * stopping the simulation.
 */

#ifndef EHPSIM_SIM_LOGGING_HH
#define EHPSIM_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace ehpsim
{

namespace logging_detail
{

/** Concatenate a parameter pack into one message string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Number of warn() calls so far (used by tests). */
std::uint64_t warnCount();

/** Suppress or re-enable warn/inform console output (used by tests). */
void setQuiet(bool quiet);

} // namespace logging_detail

/** Abort: something happened that indicates an ehpsim bug. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    logging_detail::panicImpl(
        logging_detail::concat(std::forward<Args>(args)...),
        __builtin_FILE(), __builtin_LINE());
}

/** Exit cleanly: the user supplied an invalid configuration. */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    logging_detail::fatalImpl(
        logging_detail::concat(std::forward<Args>(args)...),
        __builtin_FILE(), __builtin_LINE());
}

/** Report a suspicious but non-fatal condition. */
template <typename... Args>
void
warn(Args&&... args)
{
    logging_detail::warnImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args&&... args)
{
    logging_detail::informImpl(
        logging_detail::concat(std::forward<Args>(args)...));
}

} // namespace ehpsim

#endif // EHPSIM_SIM_LOGGING_HH
