#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ehpsim
{
namespace stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &path) const
{
    os << path << name() << " " << value_ << " # " << desc() << "\n";
}

void
Scalar::dumpJson(json::JsonWriter &jw) const
{
    jw.kv(name(), value_);
}

void
Scalar::snapshot(SnapshotWriter &w) const
{
    w.putF64(value_);
}

void
Scalar::restore(SnapshotReader &r)
{
    value_ = r.getF64();
}

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::dump(std::ostream &os, const std::string &path) const
{
    os << path << name() << "::mean " << mean() << " # " << desc()
       << "\n";
    os << path << name() << "::min " << min() << " # " << desc() << "\n";
    os << path << name() << "::max " << max() << " # " << desc() << "\n";
    os << path << name() << "::count " << count_ << " # " << desc()
       << "\n";
}

void
Average::dumpJson(json::JsonWriter &jw) const
{
    jw.key(name());
    jw.beginObject();
    jw.kv("mean", mean());
    jw.kv("min", min());
    jw.kv("max", max());
    jw.kv("count", count_);
    jw.endObject();
}

void
Average::reset()
{
    sum_ = 0;
    min_ = 0;
    max_ = 0;
    count_ = 0;
}

void
Average::snapshot(SnapshotWriter &w) const
{
    w.putF64(sum_);
    w.putF64(min_);
    w.putF64(max_);
    w.putU64(count_);
}

void
Average::restore(SnapshotReader &r)
{
    sum_ = r.getF64();
    min_ = r.getF64();
    max_ = r.getF64();
    count_ = r.getU64();
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc)
    : StatBase(parent, std::move(name), std::move(desc))
{
    init(0, 1, 1);
}

Distribution &
Distribution::init(double lo, double hi, unsigned nbuckets)
{
    if (hi <= lo || nbuckets == 0)
        panic("bad distribution bounds: [", lo, ", ", hi, ") x ",
              nbuckets);
    lo_ = lo;
    hi_ = hi;
    bucket_width_ = (hi - lo) / nbuckets;
    buckets_.assign(nbuckets, 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0;
    return *this;
}

void
Distribution::sample(double v, std::uint64_t n)
{
    if (v < lo_) {
        underflow_ += n;
    } else if (v >= hi_) {
        overflow_ += n;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / bucket_width_);
        idx = std::min(idx, buckets_.size() - 1);
        buckets_[idx] += n;
    }
    count_ += n;
    sum_ += v * static_cast<double>(n);
}

void
Distribution::dump(std::ostream &os, const std::string &path) const
{
    os << path << name() << "::mean " << mean() << " # " << desc()
       << "\n";
    os << path << name() << "::count " << count_ << " # " << desc()
       << "\n";
    os << path << name() << "::underflows " << underflow_ << " # "
       << desc() << "\n";
    os << path << name() << "::overflows " << overflow_ << " # "
       << desc() << "\n";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double b_lo = lo_ + bucket_width_ * static_cast<double>(i);
        os << path << name() << "::bucket[" << b_lo << "] "
           << buckets_[i] << " # " << desc() << "\n";
    }
}

void
Distribution::dumpJson(json::JsonWriter &jw) const
{
    jw.key(name());
    jw.beginObject();
    jw.kv("mean", mean());
    jw.kv("count", count_);
    jw.kv("underflows", underflow_);
    jw.kv("overflows", overflow_);
    jw.kv("lo", lo_);
    jw.kv("bucket_width", bucket_width_);
    jw.key("buckets");
    jw.beginArray();
    for (const auto b : buckets_)
        jw.value(b);
    jw.endArray();
    jw.endObject();
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = 0;
}

void
Distribution::snapshot(SnapshotWriter &w) const
{
    w.putF64(lo_);
    w.putF64(hi_);
    w.putU32(static_cast<std::uint32_t>(buckets_.size()));
    for (const auto b : buckets_)
        w.putU64(b);
    w.putU64(underflow_);
    w.putU64(overflow_);
    w.putU64(count_);
    w.putF64(sum_);
}

void
Distribution::restore(SnapshotReader &r)
{
    // The bucket layout is configuration, not history: the restored
    // world must already be init()ed to the saved shape.
    const double lo = r.getF64();
    const double hi = r.getF64();
    const auto nbuckets = r.getU32();
    if (lo != lo_ || hi != hi_ || nbuckets != buckets_.size())
        fatal("snapshot: distribution '", name(), "' saved as [", lo,
              ", ", hi, ") x ", nbuckets, " but configured as [", lo_,
              ", ", hi_, ") x ", buckets_.size());
    for (auto &b : buckets_)
        b = r.getU64();
    underflow_ = r.getU64();
    overflow_ = r.getU64();
    count_ = r.getU64();
    sum_ = r.getF64();
}

void
Percentile::sample(double v)
{
    samples_.push_back(v);
    sum_ += v;
    sorted_ = samples_.size() <= 1;
}

double
Percentile::mean() const
{
    return samples_.empty()
               ? 0.0
               : sum_ / static_cast<double>(samples_.size());
}

void
Percentile::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
Percentile::percentile(double p) const
{
    // Validate the argument before the empty-samples early return:
    // an out-of-range p is a caller bug whether or not any samples
    // were recorded, and the old order silently returned 0 for it
    // on an empty stat.
    if (p < 0.0 || p > 100.0)
        panic("percentile out of range: ", p);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const double n = static_cast<double>(samples_.size());
    // Nearest-rank: the ceil(p/100 * N)-th smallest sample.
    const double rank = std::ceil(p / 100.0 * n);
    const auto idx = static_cast<std::size_t>(
        std::max(rank - 1.0, 0.0));
    return samples_[std::min(idx, samples_.size() - 1)];
}

void
Percentile::dump(std::ostream &os, const std::string &path) const
{
    os << path << name() << "::p50 " << percentile(50) << " # "
       << desc() << "\n";
    os << path << name() << "::p95 " << percentile(95) << " # "
       << desc() << "\n";
    os << path << name() << "::p99 " << percentile(99) << " # "
       << desc() << "\n";
    os << path << name() << "::mean " << mean() << " # " << desc()
       << "\n";
    os << path << name() << "::count " << count() << " # " << desc()
       << "\n";
}

void
Percentile::dumpJson(json::JsonWriter &jw) const
{
    jw.key(name());
    jw.beginObject();
    jw.kv("p50", percentile(50));
    jw.kv("p95", percentile(95));
    jw.kv("p99", percentile(99));
    jw.kv("mean", mean());
    jw.kv("count", count());
    jw.endObject();
}

void
Percentile::reset()
{
    samples_.clear();
    sorted_ = true;
    sum_ = 0;
}

void
Percentile::snapshot(SnapshotWriter &w) const
{
    // Physical sample order never reaches the output (percentiles
    // sort, mean uses the pre-accumulated sum_), so saving whatever
    // order the vector is in preserves byte-identity.
    w.putU64(samples_.size());
    for (const auto s : samples_)
        w.putF64(s);
    w.putF64(sum_);
}

void
Percentile::restore(SnapshotReader &r)
{
    const auto n = r.getU64();
    samples_.clear();
    samples_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        samples_.push_back(r.getF64());
    sum_ = r.getF64();
    sorted_ = samples_.size() <= 1;
}

Formula::Formula(StatGroup *parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(parent, std::move(name), std::move(desc)),
      fn_(std::move(fn))
{
}

void
Formula::dump(std::ostream &os, const std::string &path) const
{
    os << path << name() << " " << value() << " # " << desc() << "\n";
}

void
Formula::dumpJson(json::JsonWriter &jw) const
{
    jw.kv(name(), value());
}

StatGroup::StatGroup(StatGroup *parent, std::string name)
    : parent_(parent), name_(std::move(name))
{
    if (parent_)
        parent_->groups_.push_back(this);
}

StatGroup::~StatGroup()
{
    if (parent_) {
        auto &siblings = parent_->groups_;
        siblings.erase(std::remove(siblings.begin(), siblings.end(),
                                   this),
                       siblings.end());
    }
}

std::string
StatGroup::statPath() const
{
    if (!parent_)
        return name_;
    std::string p = parent_->statPath();
    if (p.empty())
        return name_;
    return p + "." + name_;
}

void
StatGroup::dumpStats(std::ostream &os) const
{
    std::string path = statPath();
    if (!path.empty())
        path += ".";
    for (const auto *stat : stats_)
        stat->dump(os, path);
    for (const auto *group : groups_)
        group->dumpStats(os);
}

void
StatGroup::resetStats()
{
    for (auto *stat : stats_)
        stat->reset();
    for (auto *group : groups_)
        group->resetStats();
}

void
StatGroup::dumpJsonStats(json::JsonWriter &jw) const
{
    jw.beginObject();
    for (const auto *stat : stats_)
        stat->dumpJson(jw);
    for (const auto *group : groups_) {
        jw.key(group->statName());
        group->dumpJsonStats(jw);
    }
    jw.endObject();
}

void
dumpJson(const StatGroup &root, std::ostream &os)
{
    json::JsonWriter jw(os);
    jw.beginObject();
    jw.kv("name", root.statName());
    jw.key("stats");
    root.dumpJsonStats(jw);
    jw.endObject();
    os << "\n";
}

void
StatGroup::snapshot(SnapshotWriter &w) const
{
    w.section("group");
    w.putString(name_);
    w.putU32(static_cast<std::uint32_t>(stats_.size()));
    for (const auto *stat : stats_) {
        w.putString(stat->name());
        stat->snapshot(w);
    }
    w.putU32(static_cast<std::uint32_t>(groups_.size()));
    for (const auto *group : groups_)
        group->snapshot(w);
}

void
StatGroup::restore(SnapshotReader &r)
{
    r.section("group");
    const std::string saved_name = r.getString();
    if (saved_name != name_)
        fatal("snapshot: expected stat group '", statPath(),
              "', checkpoint holds '", saved_name,
              "' — simulation shape mismatch");
    const auto nstats = r.getU32();
    if (nstats != stats_.size())
        fatal("snapshot: group '", statPath(), "' has ",
              stats_.size(), " stats, checkpoint holds ", nstats);
    for (auto *stat : stats_) {
        const std::string sname = r.getString();
        if (sname != stat->name())
            fatal("snapshot: group '", statPath(), "' expected stat '",
                  stat->name(), "', checkpoint holds '", sname, "'");
        stat->restore(r);
    }
    const auto ngroups = r.getU32();
    if (ngroups != groups_.size())
        fatal("snapshot: group '", statPath(), "' has ",
              groups_.size(), " children, checkpoint holds ", ngroups);
    for (auto *group : groups_)
        group->restore(r);
}

StatBase *
StatGroup::findStat(const std::string &name) const
{
    for (auto *stat : stats_) {
        if (stat->name() == name)
            return stat;
    }
    return nullptr;
}

void
StatGroup::addStat(StatBase *stat)
{
    if (findStat(stat->name())) {
        panic("stat '", stat->name(), "' registered twice in group '",
              statPath(), "' — stat paths must be unique");
    }
    stats_.push_back(stat);
}

} // namespace stats
} // namespace ehpsim
