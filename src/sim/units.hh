/**
 * @file
 * Unit helpers: byte sizes, bandwidths, and formatting.
 */

#ifndef EHPSIM_SIM_UNITS_HH
#define EHPSIM_SIM_UNITS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace ehpsim
{

constexpr std::uint64_t KiB = 1024ull;
constexpr std::uint64_t MiB = 1024ull * KiB;
constexpr std::uint64_t GiB = 1024ull * MiB;

/** Bandwidth expressed in bytes per second. */
using BytesPerSecond = double;

constexpr BytesPerSecond
gbps(double gb)
{
    return gb * 1e9;
}

constexpr BytesPerSecond
tbps(double tb)
{
    return tb * 1e12;
}

/** Serialization time of @p bytes at @p bw bytes/second, in ticks. */
constexpr Tick
serializationTicks(std::uint64_t bytes, BytesPerSecond bw)
{
    if (bw <= 0.0)
        return 0;
    return static_cast<Tick>(
        static_cast<double>(bytes) / bw
        * static_cast<double>(ticksPerSecond));
}

/** Achieved bandwidth (bytes/s) from a byte count and a tick span. */
constexpr BytesPerSecond
achievedBandwidth(std::uint64_t bytes, Tick span)
{
    if (span == 0)
        return 0.0;
    return static_cast<double>(bytes) / secondsFromTicks(span);
}

/** Render a byte count as a human-readable string ("128 GiB"). */
std::string formatBytes(std::uint64_t bytes);

/** Render a bandwidth as a human-readable string ("5.3 TB/s"). */
std::string formatBandwidth(BytesPerSecond bw);

} // namespace ehpsim

#endif // EHPSIM_SIM_UNITS_HH
