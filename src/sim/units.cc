#include "sim/units.hh"

#include <cstdio>

namespace ehpsim
{

std::string
formatBytes(std::uint64_t bytes)
{
    char buf[64];
    if (bytes >= GiB && bytes % GiB == 0) {
        std::snprintf(buf, sizeof(buf), "%llu GiB",
                      static_cast<unsigned long long>(bytes / GiB));
    } else if (bytes >= MiB && bytes % MiB == 0) {
        std::snprintf(buf, sizeof(buf), "%llu MiB",
                      static_cast<unsigned long long>(bytes / MiB));
    } else if (bytes >= KiB && bytes % KiB == 0) {
        std::snprintf(buf, sizeof(buf), "%llu KiB",
                      static_cast<unsigned long long>(bytes / KiB));
    } else {
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
formatBandwidth(BytesPerSecond bw)
{
    char buf[64];
    if (bw >= 1e12) {
        std::snprintf(buf, sizeof(buf), "%.2f TB/s", bw / 1e12);
    } else if (bw >= 1e9) {
        std::snprintf(buf, sizeof(buf), "%.2f GB/s", bw / 1e9);
    } else if (bw >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.2f MB/s", bw / 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f B/s", bw);
    }
    return buf;
}

} // namespace ehpsim
