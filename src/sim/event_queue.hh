/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue orders Event objects by (tick, priority, insertion
 * sequence) so simulations are fully deterministic. Events are owned
 * by their creators; the queue never deletes them. Callback-style
 * one-shot events are provided for fire-and-forget work and are
 * reclaimed by the queue after they fire, when their process()
 * throws, or — if they never fire — when the queue itself is
 * destroyed.
 *
 * Hot-path design (DESIGN.md §11):
 *  - an indexed binary heap: each scheduled Event carries its heap
 *    slot, so deschedule()/reschedule() remove the entry in O(log n)
 *    with no tombstones and no dead-entry skip loop;
 *  - a slab/free-list EventPool for one-shot callbacks: the
 *    scheduleCallback() fast path constructs the callable inline in
 *    a recycled fixed-size slot, so steady-state one-shot scheduling
 *    performs no heap allocation (scheduleLambda() routes its
 *    std::function through the same pool);
 *  - batched dispatch: run() pops a run of same-(tick, priority)
 *    events at once and fires them back-to-back, splicing the rest
 *    back if an event schedules ahead of the batch (so the
 *    (tick, priority, seq) total order is preserved exactly).
 */

#ifndef EHPSIM_SIM_EVENT_QUEUE_HH
#define EHPSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace ehpsim
{

class EventQueue;
class EventPool;
class SnapshotWriter;
class SnapshotReader;

/**
 * Base class for anything schedulable on an EventQueue.
 */
class Event
{
  public:
    /** Lower values run first among events at the same tick. */
    enum Priority : int
    {
        maximumPriority = 0,
        defaultPriority = 50,
        minimumPriority = 100,
    };

    explicit Event(int priority = defaultPriority)
        : priority_(priority)
    {}

    virtual ~Event() = default;

    /** Invoked by the queue when the event's tick arrives. */
    virtual void process() = 0;

    /**
     * If true, the queue reclaims the event after process() returns
     * (only valid for queue-owned events: heap-allocated or pooled).
     */
    virtual bool selfDeleting() const { return false; }

    int priority() const { return priority_; }

    bool scheduled() const { return scheduled_; }

    Tick when() const { return when_; }

  private:
    friend class EventQueue;
    friend class EventPool;
    friend class PoolEvent;

    /** heap_index_ value for an event that is not queued. */
    static constexpr std::size_t notQueued =
        static_cast<std::size_t>(-1);
    /** High bit marks "in the dispatch batch, at slot (idx & ~flag)". */
    static constexpr std::size_t batchFlag =
        ~(~static_cast<std::size_t>(0) >> 1);

    int priority_;
    bool scheduled_ = false;
    /** True for pool-backed one-shots: reclaim to the pool, never
     *  delete. */
    bool pooled_ = false;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    /** Slot in the queue's heap (or batch) while scheduled. */
    std::size_t heap_index_ = notQueued;
};

/** One-shot heap-allocated event wrapping a callable. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         int priority = defaultPriority)
        : Event(priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

    bool selfDeleting() const override { return true; }

  private:
    std::function<void()> fn_;
};

/** Bytes of inline callable storage in a pooled one-shot event. */
constexpr std::size_t inlineCallbackBytes = 48;

/**
 * A pooled one-shot callback event. The callable lives inline in
 * store_; invoke_/destroy_ are the type-erased entry points the
 * scheduleCallback() fast path installs. Only the EventQueue and its
 * pool create, fire, and recycle these.
 */
class PoolEvent final : public Event
{
  public:
    PoolEvent() { pooled_ = true; }

    void process() override { invoke_(store_); }

    bool selfDeleting() const override { return true; }

  private:
    friend class EventQueue;
    friend class EventPool;

    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
    PoolEvent *next_free_ = nullptr;
    /** Checkpoint identity (scheduleKeyed): nullptr for plain
     *  one-shots. Points at stable storage (a string literal), so
     *  it stays valid for as long as the event is pending. */
    const char *key_ = nullptr;
    /** Opaque replay payload saved alongside key_. */
    std::uint64_t a0_ = 0;
    std::uint64_t a1_ = 0;
    alignas(std::max_align_t) unsigned char store_[inlineCallbackBytes];
};

/**
 * Slab allocator + free list for PoolEvents. Slabs are allocated in
 * fixed-size blocks, never returned to the OS until the pool dies,
 * so steady-state acquire/release touches no allocator.
 */
class EventPool
{
  public:
    EventPool() = default;

    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;

    /** A recycled (or freshly slab-allocated) event. The callable
     *  slots (invoke_/destroy_) are unset; the caller installs them. */
    PoolEvent *acquire();

    /** Destroy the inline callable and return the slot to the free
     *  list. The event must not be scheduled. */
    void release(PoolEvent *ev);

    /** Total one-shot slots backed by slabs (free or in flight). */
    std::size_t capacity() const { return slabs_.size() * slabSize; }

  private:
    static constexpr std::size_t slabSize = 256;

    std::vector<std::unique_ptr<PoolEvent[]>> slabs_;
    PoolEvent *free_ = nullptr;
};

/**
 * A deterministic discrete-event queue.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Reclaims any still-pending self-deleting events. */
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /** Schedule @p ev to fire at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /**
     * Fast path for one-shot callbacks: when the callable fits the
     * pool's inline storage it is constructed in a recycled slot and
     * the schedule performs no heap allocation; oversized callables
     * fall back to a heap-allocated LambdaEvent. Either way the
     * event is queue-owned and reclaimed after it fires.
     */
    template <typename F>
    void
    scheduleCallback(Tick when, F &&fn,
                     int priority = Event::defaultPriority)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineCallbackBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_constructible_v<Fn, F &&>) {
            PoolEvent *ev = pool_.acquire();
            ::new (static_cast<void *>(ev->store_))
                Fn(std::forward<F>(fn));
            ev->invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
            ev->destroy_ = [](void *p) {
                static_cast<Fn *>(p)->~Fn();
            };
            ev->priority_ = priority;
            schedule(ev, when);
        } else {
            schedule(new LambdaEvent(
                         std::function<void()>(std::forward<F>(fn)),
                         priority),
                     when);
        }
    }

    /**
     * Convenience: schedule a one-shot callback at @p when. The
     * std::function is moved into the pool, so this shares the
     * allocation-free steady state of scheduleCallback(); prefer
     * scheduleCallback() in hot paths to also skip the function's
     * own capture allocation.
     */
    void scheduleLambda(Tick when, std::function<void()> fn,
                        int priority = Event::defaultPriority);

    /**
     * Schedule a checkpoint-aware one-shot (DESIGN.md §16): exactly
     * scheduleCallback(), except the pooled event also records
     * (@p key, @p a0, @p a1) so save() can serialize it while
     * pending and restore() can replay it through the factory
     * registered under @p key. @p key must point at storage that
     * outlives the event (a string literal). The callable must fit
     * the pool's inline slot — keyed events always take the pooled
     * path, never the heap LambdaEvent fallback.
     */
    template <typename F>
    void
    scheduleKeyed(Tick when, const char *key, std::uint64_t a0,
                  std::uint64_t a1, F &&fn,
                  int priority = Event::defaultPriority)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= inlineCallbackBytes &&
                          alignof(Fn) <= alignof(std::max_align_t) &&
                          std::is_nothrow_constructible_v<Fn, F &&>,
                      "keyed one-shot callable must fit the pool's "
                      "inline slot");
        PoolEvent *ev = pool_.acquire();
        ::new (static_cast<void *>(ev->store_)) Fn(std::forward<F>(fn));
        ev->invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
        ev->destroy_ = [](void *p) { static_cast<Fn *>(p)->~Fn(); };
        ev->priority_ = priority;
        ev->key_ = key;
        ev->a0_ = a0;
        ev->a1_ = a1;
        schedule(ev, when);
    }

    /**
     * A pending-event replayer: restore() invokes the factory
     * registered under a saved event's key with the saved
     * (tick, a0, a1). The factory must issue exactly one
     * scheduleKeyed() with the same key, tick, and priority as the
     * original — the queue force-assigns the saved sequence number
     * and validates tick and priority, so the replayed event slots
     * into the exact total-order position it held when saved.
     */
    using KeyedFactory =
        std::function<void(Tick, std::uint64_t, std::uint64_t)>;

    /**
     * Register the replayer for @p key (panics on a duplicate).
     * Components register their factories at construction time —
     * harmless when no restore ever happens — so any freshly built
     * world can absorb a checkpoint.
     */
    void registerKeyedFactory(const char *key, KeyedFactory fn);

    /**
     * True when every pending event is keyed (checkpoint-aware),
     * i.e. the queue is at a quiesce point where save() succeeds.
     * Callers fast-forward to one with: while (!allPendingKeyed()
     * && !empty()) step();
     */
    bool allPendingKeyed() const;

    /**
     * Serialize the tick/sequence counters and every pending event,
     * in (tick, priority, seq) order. Fatal if any pending event is
     * unkeyed — quiesce first. Must not be called from inside a
     * dispatch.
     */
    void save(SnapshotWriter &w) const;

    /**
     * Rebuild counters and pending events from a checkpoint into
     * this queue, which must be freshly built (nothing scheduled,
     * nothing processed). Each saved event replays through its
     * registered KeyedFactory; a missing factory is fatal.
     */
    void restore(SnapshotReader &r);

    /**
     * Remove a scheduled event from the queue. Self-deleting events
     * are rejected: the queue only reclaims events it processes, so
     * descheduling one would leak it (use reschedule(), or let it
     * fire). After descheduling, the owner may immediately delete
     * the event; the queue never touches its memory again.
     */
    void deschedule(Event *ev);

    /**
     * Re-schedule an already-scheduled event to a new tick. Unlike
     * deschedule(), this is legal for self-deleting events: the
     * event still fires exactly once, just at the new time.
     */
    void reschedule(Event *ev, Tick when);

    /** True when no events remain. */
    bool empty() const { return live_count_ == 0; }

    /** Number of pending (non-descheduled) events. */
    std::size_t size() const { return live_count_; }

    /**
     * Pre-size the scheduling heap for a known fan-out (e.g. ring
     * size x chunk count) so bursts of schedule() calls never grow
     * it incrementally.
     */
    void reserve(std::size_t n) { heap_.reserve(n); }

    /** Scheduling-heap slots currently allocated. */
    std::size_t capacity() const { return heap_.capacity(); }

    /** One-shot pool slots currently allocated (slab-backed). */
    std::size_t poolCapacity() const { return pool_.capacity(); }

    /** High-water mark of simultaneously scheduled events. */
    std::size_t peakLive() const { return peak_live_; }

    /**
     * Run events until the queue drains or @p limit is reached.
     * @return the tick at which execution stopped.
     */
    Tick run(Tick limit = maxTick);

    /** Run a single event; @return false if the queue was empty. */
    bool step();

    /**
     * Report the (tick, priority) of the earliest pending event
     * without dispatching it; @return false when the queue is empty.
     * Only meaningful between dispatches (the PDES merge loop drives
     * the queue with step(), which never leaves a batch in flight).
     */
    bool
    peekHead(Tick &when, int &priority) const
    {
        if (heap_.empty())
            return false;
        when = heap_.front().when;
        priority = heap_.front().priority;
        return true;
    }

    /** Total events processed over the queue's lifetime. */
    std::uint64_t numProcessed() const { return num_processed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *ev;
    };

    /** The (tick, priority, seq) total order. */
    static bool
    entryLess(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    /** @{ indexed-heap primitives; every move updates the owning
     *  event's heap_index_. Sifts return the entry's final slot. */
    std::size_t siftUp(std::size_t i);
    std::size_t siftDown(std::size_t i);
    void pushEntry(Entry e);
    Entry popTop();
    void removeAt(std::size_t i);
    /** @} */

    /** Remove @p ev's queue (or batch) entry; never touches the
     *  event afterwards. */
    void killEntry(Event *ev);

    /** Process one event, reclaiming queue-owned ones — also on the
     *  throwing-process() path. */
    void fire(Event *ev);

    /** Reclaim a queue-owned (self-deleting) event. */
    void releaseOneShot(Event *ev);

    /** Pop and fire the run of events sharing the head's
     *  (tick, priority); splices the tail back if a fired event
     *  schedules ahead of it. */
    void dispatchBatch();

    std::vector<Entry> heap_;
    /** Same-(tick, priority) run currently being dispatched. A
     *  descheduled member's slot is nulled via Event::batchFlag. */
    std::vector<Entry> batch_;
    EventPool pool_;

    Tick cur_tick_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t num_processed_ = 0;
    std::size_t live_count_ = 0;
    std::size_t peak_live_ = 0;

    /** Keyed-event replayers, looked up by name during restore().
     *  A plain vector: registries hold a handful of entries and a
     *  linear scan keeps iteration order deterministic. */
    std::vector<std::pair<std::string, KeyedFactory>> factories_;

    /** @{ restore() replay state: while restoring_, schedule()
     *  force-assigns forced_seq_ and validates (tick, priority)
     *  against what the checkpoint recorded. */
    bool restoring_ = false;
    bool factory_scheduled_ = false;
    std::uint64_t forced_seq_ = 0;
    Tick expect_when_ = 0;
    int expect_prio_ = 0;
    /** @} */
};

} // namespace ehpsim

#endif // EHPSIM_SIM_EVENT_QUEUE_HH
