/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue orders Event objects by (tick, priority, insertion
 * sequence) so simulations are fully deterministic. Events are owned
 * by their creators; the queue never deletes them. Callback-style
 * events (LambdaEvent) are provided for one-shot work and can be
 * self-deleting: those the queue frees after they fire, when their
 * process() throws, or — if they never fire — when the queue itself
 * is destroyed.
 */

#ifndef EHPSIM_SIM_EVENT_QUEUE_HH
#define EHPSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace ehpsim
{

class EventQueue;

/**
 * Base class for anything schedulable on an EventQueue.
 */
class Event
{
  public:
    /** Lower values run first among events at the same tick. */
    enum Priority : int
    {
        maximumPriority = 0,
        defaultPriority = 50,
        minimumPriority = 100,
    };

    explicit Event(int priority = defaultPriority)
        : priority_(priority)
    {}

    virtual ~Event() = default;

    /** Invoked by the queue when the event's tick arrives. */
    virtual void process() = 0;

    /**
     * If true, the queue deletes the event after process() returns
     * (only valid for heap-allocated events).
     */
    virtual bool selfDeleting() const { return false; }

    int priority() const { return priority_; }

    bool scheduled() const { return scheduled_; }

    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    int priority_;
    bool scheduled_ = false;
    Tick when_ = 0;
    std::uint64_t seq_ = 0;
};

/** One-shot heap-allocated event wrapping a callable. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         int priority = defaultPriority)
        : Event(priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

    bool selfDeleting() const override { return true; }

  private:
    std::function<void()> fn_;
};

/**
 * A deterministic discrete-event queue.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Frees any still-pending self-deleting events. */
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return cur_tick_; }

    /** Schedule @p ev to fire at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Convenience: schedule a one-shot callback at @p when. */
    void scheduleLambda(Tick when, std::function<void()> fn,
                        int priority = Event::defaultPriority);

    /**
     * Remove a scheduled event from the queue. Self-deleting events
     * are rejected: the queue only deletes events it processes, so
     * descheduling one would leak it (use reschedule(), or let it
     * fire). After descheduling, the owner may immediately delete
     * the event; the queue never touches its memory again.
     */
    void deschedule(Event *ev);

    /**
     * Re-schedule an already-scheduled event to a new tick. Unlike
     * deschedule(), this is legal for self-deleting events: the
     * event still fires exactly once, just at the new time.
     */
    void reschedule(Event *ev, Tick when);

    /** True when no events remain. */
    bool empty() const;

    /** Number of pending (non-descheduled) events. */
    std::size_t size() const { return live_count_; }

    /**
     * Run events until the queue drains or @p limit is reached.
     * @return the tick at which execution stopped.
     */
    Tick run(Tick limit = maxTick);

    /** Run a single event; @return false if the queue was empty. */
    bool step();

    /** Total events processed over the queue's lifetime. */
    std::uint64_t numProcessed() const { return num_processed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    /** Mark @p ev's current queue entry dead without touching it. */
    void killEntry(Event *ev);

    /** Pop entries until the head is a live (still-scheduled) event. */
    void skipDead();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        queue_;

    /**
     * Sequence numbers of entries whose events were descheduled or
     * rescheduled. skipDead()/step() consult only this set, never
     * the (possibly already freed) Event, so owners may delete an
     * event as soon as it is descheduled.
     */
    std::unordered_set<std::uint64_t> dead_seqs_;

    Tick cur_tick_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t num_processed_ = 0;
    std::size_t live_count_ = 0;
};

} // namespace ehpsim

#endif // EHPSIM_SIM_EVENT_QUEUE_HH
