#include "sim/logging.hh"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ehpsim
{
namespace logging_detail
{

namespace
{
// Atomic so warn()/inform() are safe from concurrent sweep workers.
std::atomic<std::uint64_t> warn_count{0};
std::atomic<bool> quiet{false};
} // anonymous namespace

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Throw instead of exit(1) so that library users (and tests) can
    // intercept configuration errors; uncaught it still terminates.
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    warn_count.fetch_add(1, std::memory_order_relaxed);
    if (!quiet.load(std::memory_order_relaxed))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::uint64_t
warnCount()
{
    return warn_count;
}

void
setQuiet(bool q)
{
    quiet = q;
}

} // namespace logging_detail
} // namespace ehpsim
