/**
 * @file
 * Deterministic checkpoint serialization (DESIGN.md §16).
 *
 * A snapshot captures the complete dynamic state of a warmed
 * simulation — event-queue contents, stat values, and every
 * state-bearing SimObject — so a sweep can run a shared warmup
 * prefix once and fork N knob points from the in-memory blob
 * instead of re-simulating the prefix per point. The contract the
 * whole layer serves: checkpoint -> restore -> run produces JSON
 * byte-identical to the straight-through run, serially and under
 * --pdes N.
 *
 * Format (version 1): an 8-byte magic ("EHPSNAP1"), a little-endian
 * u32 format version, then a flat stream of tagged values. Every
 * value carries a one-byte type tag and every logical record starts
 * with a named section marker, so a truncated, bit-flipped, or
 * mis-ordered blob fails loudly (fatal(), which throws) at the
 * first wrong byte instead of silently restoring garbage. There is
 * no random access: writers and readers must walk the object tree
 * in the exact same order, which the StatGroup tree walk guarantees
 * by construction (registration order).
 *
 * Callables cannot be serialized, so pending one-shot events round
 * trip through the EventQueue's keyed-factory registry instead: the
 * writer records (tick, priority, seq, key, payload) and the reader
 * replays each through the factory registered under the key (see
 * EventQueue::registerKeyedFactory).
 */

#ifndef EHPSIM_SIM_SNAPSHOT_HH
#define EHPSIM_SIM_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ehpsim
{

/**
 * Serializes typed values into an in-memory blob. The header is
 * written on construction; blob() is valid at any point after the
 * last put (there is no explicit finish step — the format is a
 * self-delimiting stream).
 */
class SnapshotWriter
{
  public:
    SnapshotWriter();

    SnapshotWriter(const SnapshotWriter &) = delete;
    SnapshotWriter &operator=(const SnapshotWriter &) = delete;

    /** Begin a named record; the reader must expect the same name. */
    void section(std::string_view name);

    /**
     * The save tick, set by saveWorld() before the object walk.
     * History-pruning serializers (OccupancyTracker) may drop state
     * that can no longer affect any event at or after this tick;
     * the default 0 keeps everything.
     */
    void setHorizon(std::uint64_t tick) { horizon_ = tick; }
    std::uint64_t horizon() const { return horizon_; }

    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v);
    void putF64(double v);
    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putString(std::string_view v);

    const std::string &blob() const { return buf_; }

  private:
    void raw(const void *p, std::size_t n);
    void tagged(std::uint8_t tag, const void *p, std::size_t n);

    std::string buf_;
    std::uint64_t horizon_ = 0;
};

/**
 * Reads a blob produced by SnapshotWriter. Construction validates
 * the magic and version; every get validates its type tag and
 * bounds. All failures are fatal() — a corrupt checkpoint is a user
 * input error, and fatal throws so callers (tests, the sweep
 * runner) can intercept it.
 */
class SnapshotReader
{
  public:
    /** @p blob must outlive the reader (it is viewed, not copied). */
    explicit SnapshotReader(std::string_view blob);

    /** Consume a section marker; fatal unless it names @p name. */
    void section(std::string_view name);

    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    std::int64_t getI64();
    double getF64();
    bool getBool() { return getU8() != 0; }
    std::string getString();

    /** True once every byte has been consumed. */
    bool atEnd() const { return pos_ == blob_.size(); }

  private:
    void need(std::size_t n, const char *what);
    void tag(std::uint8_t expect, const char *what);

    std::string_view blob_;
    std::size_t pos_ = 0;
};

/** FNV-1a 64-bit hash; the sweep fork API keys shared warmup
 *  prefixes by the hash of their pre-knob configuration string. */
std::uint64_t fnv1a(std::string_view s);

/** Write @p blob to @p path (fatal on any I/O error). */
void writeSnapshotFile(const std::string &path,
                       const std::string &blob);

/** Read an entire snapshot file (fatal if absent or unreadable);
 *  header validation happens when a SnapshotReader is built on the
 *  returned bytes. */
std::string readSnapshotFile(const std::string &path);

} // namespace ehpsim

#endif // EHPSIM_SIM_SNAPSHOT_HH
