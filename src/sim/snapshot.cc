#include "sim/snapshot.hh"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace ehpsim
{

namespace
{

constexpr char kMagic[8] = {'E', 'H', 'P', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kVersion = 1;

/** Value type tags; a mismatch means the stream is corrupt or the
 *  writer/reader walks diverged. */
enum Tag : std::uint8_t
{
    tagU8 = 0x01,
    tagU32 = 0x02,
    tagU64 = 0x03,
    tagI64 = 0x04,
    tagF64 = 0x05,
    tagString = 0x06,
    tagSection = 0x07,
};

const char *
tagName(std::uint8_t t)
{
    switch (t) {
      case tagU8: return "u8";
      case tagU32: return "u32";
      case tagU64: return "u64";
      case tagI64: return "i64";
      case tagF64: return "f64";
      case tagString: return "string";
      case tagSection: return "section";
      default: return "unknown";
    }
}

/** Fixed-width little-endian encode, independent of host order. */
template <typename T>
void
encodeLe(unsigned char *out, T v)
{
    auto u = static_cast<std::uint64_t>(v);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out[i] = static_cast<unsigned char>((u >> (8 * i)) & 0xff);
}

template <typename T>
T
decodeLe(const unsigned char *in)
{
    std::uint64_t u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        u |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return static_cast<T>(u);
}

} // anonymous namespace

SnapshotWriter::SnapshotWriter()
{
    buf_.append(kMagic, sizeof(kMagic));
    unsigned char ver[4];
    encodeLe<std::uint32_t>(ver, kVersion);
    buf_.append(reinterpret_cast<const char *>(ver), sizeof(ver));
}

void
SnapshotWriter::raw(const void *p, std::size_t n)
{
    buf_.append(static_cast<const char *>(p), n);
}

void
SnapshotWriter::tagged(std::uint8_t tag, const void *p, std::size_t n)
{
    buf_.push_back(static_cast<char>(tag));
    raw(p, n);
}

void
SnapshotWriter::section(std::string_view name)
{
    buf_.push_back(static_cast<char>(tagSection));
    unsigned char len[4];
    encodeLe<std::uint32_t>(len,
                            static_cast<std::uint32_t>(name.size()));
    raw(len, sizeof(len));
    raw(name.data(), name.size());
}

void
SnapshotWriter::putU8(std::uint8_t v)
{
    tagged(tagU8, &v, 1);
}

void
SnapshotWriter::putU32(std::uint32_t v)
{
    unsigned char b[4];
    encodeLe(b, v);
    tagged(tagU32, b, sizeof(b));
}

void
SnapshotWriter::putU64(std::uint64_t v)
{
    unsigned char b[8];
    encodeLe(b, v);
    tagged(tagU64, b, sizeof(b));
}

void
SnapshotWriter::putI64(std::int64_t v)
{
    unsigned char b[8];
    encodeLe<std::uint64_t>(b, static_cast<std::uint64_t>(v));
    tagged(tagI64, b, sizeof(b));
}

void
SnapshotWriter::putF64(double v)
{
    unsigned char b[8];
    encodeLe<std::uint64_t>(b, std::bit_cast<std::uint64_t>(v));
    tagged(tagF64, b, sizeof(b));
}

void
SnapshotWriter::putString(std::string_view v)
{
    buf_.push_back(static_cast<char>(tagString));
    unsigned char len[4];
    encodeLe<std::uint32_t>(len, static_cast<std::uint32_t>(v.size()));
    raw(len, sizeof(len));
    raw(v.data(), v.size());
}

SnapshotReader::SnapshotReader(std::string_view blob) : blob_(blob)
{
    if (blob_.size() < sizeof(kMagic) + 4)
        fatal("snapshot: blob of ", blob_.size(),
              " bytes is too short to hold a header");
    if (std::memcmp(blob_.data(), kMagic, sizeof(kMagic)) != 0)
        fatal("snapshot: bad magic (not an ehpsim checkpoint)");
    pos_ = sizeof(kMagic);
    const auto ver = decodeLe<std::uint32_t>(
        reinterpret_cast<const unsigned char *>(blob_.data() + pos_));
    pos_ += 4;
    if (ver != kVersion)
        fatal("snapshot: format version ", ver, " (this build reads ",
              kVersion, ")");
}

void
SnapshotReader::need(std::size_t n, const char *what)
{
    if (blob_.size() - pos_ < n)
        fatal("snapshot: truncated while reading ", what, " at offset ",
              pos_, " (", blob_.size(), " bytes total)");
}

void
SnapshotReader::tag(std::uint8_t expect, const char *what)
{
    need(1, what);
    const auto got =
        static_cast<std::uint8_t>(blob_[pos_]);
    if (got != expect)
        fatal("snapshot: expected ", tagName(expect), " for ", what,
              " at offset ", pos_, ", found ", tagName(got),
              " — corrupt or mis-ordered checkpoint");
    ++pos_;
}

void
SnapshotReader::section(std::string_view name)
{
    tag(tagSection, "section marker");
    need(4, "section name length");
    const auto len = decodeLe<std::uint32_t>(
        reinterpret_cast<const unsigned char *>(blob_.data() + pos_));
    pos_ += 4;
    need(len, "section name");
    const std::string_view got = blob_.substr(pos_, len);
    pos_ += len;
    if (got != name)
        fatal("snapshot: expected section '", name, "', found '", got,
              "' — checkpoint does not match this simulation's shape");
}

std::uint8_t
SnapshotReader::getU8()
{
    tag(tagU8, "u8");
    need(1, "u8");
    return static_cast<std::uint8_t>(blob_[pos_++]);
}

std::uint32_t
SnapshotReader::getU32()
{
    tag(tagU32, "u32");
    need(4, "u32");
    const auto v = decodeLe<std::uint32_t>(
        reinterpret_cast<const unsigned char *>(blob_.data() + pos_));
    pos_ += 4;
    return v;
}

std::uint64_t
SnapshotReader::getU64()
{
    tag(tagU64, "u64");
    need(8, "u64");
    const auto v = decodeLe<std::uint64_t>(
        reinterpret_cast<const unsigned char *>(blob_.data() + pos_));
    pos_ += 8;
    return v;
}

std::int64_t
SnapshotReader::getI64()
{
    tag(tagI64, "i64");
    need(8, "i64");
    const auto v = decodeLe<std::uint64_t>(
        reinterpret_cast<const unsigned char *>(blob_.data() + pos_));
    pos_ += 8;
    return static_cast<std::int64_t>(v);
}

double
SnapshotReader::getF64()
{
    tag(tagF64, "f64");
    need(8, "f64");
    const auto v = decodeLe<std::uint64_t>(
        reinterpret_cast<const unsigned char *>(blob_.data() + pos_));
    pos_ += 8;
    return std::bit_cast<double>(v);
}

std::string
SnapshotReader::getString()
{
    tag(tagString, "string");
    need(4, "string length");
    const auto len = decodeLe<std::uint32_t>(
        reinterpret_cast<const unsigned char *>(blob_.data() + pos_));
    pos_ += 4;
    need(len, "string payload");
    std::string v(blob_.substr(pos_, len));
    pos_ += len;
    return v;
}

std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
writeSnapshotFile(const std::string &path, const std::string &blob)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("snapshot: cannot open '", path, "' for writing");
    out.write(blob.data(),
              static_cast<std::streamsize>(blob.size()));
    if (!out.flush())
        fatal("snapshot: error writing '", path, "'");
}

std::string
readSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("snapshot: cannot open '", path, "' for reading");
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        fatal("snapshot: error reading '", path, "'");
    return ss.str();
}

} // namespace ehpsim
