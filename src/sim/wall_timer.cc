#include "sim/wall_timer.hh"

#include <chrono>

namespace ehpsim
{

namespace
{

long long
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // anonymous namespace

WallTimer::WallTimer()
    : start_ns_(nowNs())
{
}

void
WallTimer::restart()
{
    start_ns_ = nowNs();
}

double
WallTimer::seconds() const
{
    return static_cast<double>(nowNs() - start_ns_) * 1e-9;
}

} // namespace ehpsim
