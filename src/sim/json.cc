#include "sim/json.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace ehpsim
{
namespace json
{

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Doubles represent integers exactly up to 2^53; print those
    // without an exponent or fraction so counters look like counters.
    constexpr double exact = 9007199254740992.0;    // 2^53
    if (v == std::floor(v) && std::fabs(v) < exact) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
JsonWriter::newline()
{
    os_ << "\n";
    const std::size_t depth = stack_.size();
    for (std::size_t i = 0; i < depth * indent_; ++i)
        os_ << ' ';
}

void
JsonWriter::preValue()
{
    if (done_)
        panic("JsonWriter: value after the document completed");
    if (stack_.empty())
        return;
    if (stack_.back() == Frame::object) {
        if (!key_pending_)
            panic("JsonWriter: object value without a key");
        key_pending_ = false;
        return;
    }
    // Array element.
    if (counts_.back() > 0)
        os_ << ",";
    newline();
}

void
JsonWriter::postValue()
{
    if (stack_.empty())
        done_ = true;
    else
        ++counts_.back();
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (done_)
        panic("JsonWriter: key after the document completed");
    if (stack_.empty() || stack_.back() != Frame::object)
        panic("JsonWriter: key outside an object");
    if (key_pending_)
        panic("JsonWriter: two keys in a row (missing value)");
    if (counts_.back() > 0)
        os_ << ",";
    newline();
    os_ << '"' << escape(k) << "\": ";
    key_pending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    preValue();
    os_ << "{";
    stack_.push_back(Frame::object);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::object)
        panic("JsonWriter: endObject with no open object");
    if (key_pending_)
        panic("JsonWriter: endObject with a dangling key");
    const bool empty = counts_.back() == 0;
    stack_.pop_back();
    counts_.pop_back();
    if (!empty) {
        newline();
    }
    os_ << "}";
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    preValue();
    os_ << "[";
    stack_.push_back(Frame::array);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::array)
        panic("JsonWriter: endArray with no open array");
    const bool empty = counts_.back() == 0;
    stack_.pop_back();
    counts_.pop_back();
    if (!empty) {
        newline();
    }
    os_ << "]";
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    preValue();
    os_ << formatNumber(v);
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    preValue();
    os_ << v;
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    preValue();
    os_ << v;
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    os_ << (v ? "true" : "false");
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    preValue();
    os_ << '"' << escape(v) << '"';
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::nullValue()
{
    preValue();
    os_ << "null";
    postValue();
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view raw)
{
    preValue();
    os_ << raw;
    postValue();
    return *this;
}

} // namespace json
} // namespace ehpsim
