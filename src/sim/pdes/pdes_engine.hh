/**
 * @file
 * Conservative parallel discrete-event core (PDES, DESIGN.md §15).
 *
 * One big simulation (the octo-node all-reduce, the TP serving
 * scenario) still ran on a single core after PR 1's sweep engine:
 * that engine parallelizes across sweep points, not within one sim.
 * The PdesEngine partitions the simulated node graph into logical
 * processes — one EventQueue per NodeTopology partition domain, as
 * emitted by the `ehpsim_cli race` report — and runs each on the
 * existing indexed-heap kernel, synchronized conservatively:
 *
 *  - Windows. Execution alternates between coordinator-exclusive
 *    phases (the original queue, running topology mutations, op
 *    starts/completions, fault arms, and the serving engine) and
 *    parallel partition phases. A partition phase executes events
 *    with tick strictly below B = min(T_coord, T_parts + L), where
 *    T_coord / T_parts are the earliest pending coordinator /
 *    partition ticks and L is the lookahead.
 *
 *  - Lookahead. L is the minimum propagation latency over the
 *    declared traffic pairs whose endpoints land in different worker
 *    groups (the per-pair min-link-latency table the race report
 *    certifies). Any cross-group effect of an event executed at tick
 *    t materializes at >= t + L >= B, so it can be exchanged through
 *    a mailbox drained at the window boundary without ever being
 *    visible inside the window that produced it.
 *
 *  - Deterministic merge. Within a worker group, member queues are
 *    merged by stepping the head with the least (tick, priority,
 *    partition index); each queue itself preserves the serial
 *    kernel's (tick, priority, seq) order. Mailboxes drain in
 *    ascending source-partition order, FIFO within a partition, on
 *    the main thread with all workers parked — so a run's output is
 *    a pure function of the initial schedule, never of thread
 *    timing, and sweep/comm/fault/serve JSON stays byte-identical
 *    to the serial kernel (gated by the golden-trace test and the
 *    serial-vs---pdes cmp checks in CI).
 *
 *  - Safety fallback. Partitions are valid worker groups only while
 *    every declared pair rides its own direct link (each fabric
 *    Link then belongs to exactly one group). When a declared pair
 *    loses its direct link — a killLink() detour could thread one
 *    link through several partitions' transfers — the engine
 *    collapses all partitions into a single merged group at the
 *    next window boundary. Conservative, still deterministic, and
 *    derate keeps its routeEpoch() exemption: it changes neither
 *    routes nor link ownership, only rates.
 */

#ifndef EHPSIM_SIM_PDES_PDES_ENGINE_HH
#define EHPSIM_SIM_PDES_PDES_ENGINE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "fabric/network.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace ehpsim
{
namespace pdes
{

class PdesEngine
{
  public:
    /**
     * @param coordinator The original serial queue; keeps every
     *        event whose owner declared no partition domain.
     * @param net The fabric the partitioned traffic rides (nullable
     *        for purely synthetic partition workloads; without it
     *        all partitions run as one merged group).
     * @param partitions Number of logical processes; domains map to
     *        partition (domain % partitions).
     */
    PdesEngine(EventQueue *coordinator, fabric::Network *net,
               unsigned partitions);

    ~PdesEngine();

    PdesEngine(const PdesEngine &) = delete;
    PdesEngine &operator=(const PdesEngine &) = delete;

    unsigned partitions() const { return nparts_; }

    EventQueue *coordinator() { return coord_; }

    /** The queue events of partition-domain @p domain belong on
     *  (domain < 0 -> the coordinator). */
    EventQueue *
    queueForDomain(int domain)
    {
        if (domain < 0)
            return coord_;
        return queues_[static_cast<unsigned>(domain) % nparts_].get();
    }

    /** Logical process of a declared domain (@p domain >= 0). */
    unsigned
    partitionOfDomain(int domain) const
    {
        return static_cast<unsigned>(domain) % nparts_;
    }

    /**
     * True when events of the two domains execute under the same
     * lock-free owner (same worker group, or both coordinator), so
     * one may schedule into the other's queue directly instead of
     * through a mailbox.
     */
    bool
    sameGroup(int domain_a, int domain_b) const
    {
        return groupOfDomain(domain_a) == groupOfDomain(domain_b);
    }

    /**
     * Declare a (src, dst) traffic pair (a collective's rank pair).
     * Feeds the lookahead table and the link-ownership check; call
     * before run(). Undeclared cross-partition traffic is not
     * allowed — declare every pair the workload can send on.
     */
    void declareTraffic(fabric::NodeId src, fabric::NodeId dst);

    /**
     * Register a hook run after every run()/runUntil() drains, with
     * workers parked: merge per-partition stat shards back into the
     * shared Scalars here, in partition order.
     */
    void addFlushHook(std::function<void()> fn);

    /**
     * Post a cross-group effect from @p src_partition's executing
     * worker. The closure runs on the main thread at the next
     * window boundary; drains are ordered by source partition, then
     * FIFO. Only the worker currently executing @p src_partition
     * may post to it (single-writer mailboxes).
     */
    void
    postCross(unsigned src_partition, std::function<void()> fn)
    {
        outbox_[src_partition].push_back(std::move(fn));
    }

    /** Drive all queues until everything drains; @return the
     *  coordinator's final tick. */
    Tick run();

    /**
     * Like run(), but stop as soon as @p done() turns true (checked
     * with workers parked). Panics if every queue and mailbox
     * drains while @p done() is still false.
     */
    Tick runUntil(const std::function<bool()> &done);

    /** @{ deterministic observability (bench counters) */
    /** Current inter-group lookahead in ticks (0 = no cross-group
     *  traffic; windows then extend to the coordinator head). */
    Tick lookahead() const { return lookahead_; }

    /** Worker groups under the current placement. */
    std::size_t numGroups() const { return groups_.size(); }

    /** Parallel windows executed so far. */
    std::uint64_t windows() const { return windows_; }

    /** Events processed across the coordinator and every
     *  partition queue. */
    std::uint64_t totalProcessed() const;

    /** Sum of per-queue peak live event counts. */
    std::size_t peakLiveTotal() const;
    /** @} */

  private:
    static constexpr std::size_t coordGroup =
        static_cast<std::size_t>(-1);

    std::size_t
    groupOfDomain(int domain) const
    {
        if (domain < 0)
            return coordGroup;
        return group_of_[partitionOfDomain(domain)];
    }

    /** Rebuild groups + lookahead when the route epoch moved (a
     *  killLink() may have re-threaded routes across partitions).
     *  Runs with workers parked. */
    void refreshPlacement();

    /** Execute one parallel window bounded by @p bound, then drain
     *  the mailboxes. */
    void runWindow(Tick bound);

    /** Merged-step every member queue of @p gi below the published
     *  window bound. */
    void runGroup(std::size_t gi);

    void workerMain(unsigned tid);

    void drainOutboxes();

    EventQueue *coord_;
    fabric::Network *net_;
    unsigned nparts_;
    std::vector<std::unique_ptr<EventQueue>> queues_;

    std::vector<std::pair<fabric::NodeId, fabric::NodeId>> traffic_;
    std::vector<std::function<void()>> flush_hooks_;
    /** Mailboxes, indexed by source partition. */
    std::vector<std::vector<std::function<void()>>> outbox_;

    /** @{ placement (rebuilt by refreshPlacement, workers parked) */
    std::vector<std::vector<unsigned>> groups_;
    std::vector<std::size_t> group_of_;
    Tick lookahead_ = 0;
    std::uint64_t seen_epoch_ = 0;
    bool placement_valid_ = false;
    /** @} */

    std::uint64_t windows_ = 0;

    /** @{ worker pool: round_ publishes window_bound_ and the
     *  placement (release); workers acquire it, run their group
     *  stripe, and retire through done_. */
    unsigned nworkers_ = 1;
    Tick window_bound_ = 0;
    std::atomic<std::uint64_t> round_{0};
    std::atomic<std::uint64_t> done_{0};
    std::uint64_t expected_done_ = 0;
    std::atomic<bool> stop_{false};
    std::vector<std::jthread> workers_;
    /** @} */
};

} // namespace pdes
} // namespace ehpsim

#endif // EHPSIM_SIM_PDES_PDES_ENGINE_HH
