#include "sim/pdes/pdes_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace pdes
{

PdesEngine::PdesEngine(EventQueue *coordinator, fabric::Network *net,
                       unsigned partitions)
    : coord_(coordinator), net_(net), nparts_(partitions)
{
    if (!coord_)
        fatal("PdesEngine needs a coordinator queue");
    if (nparts_ == 0)
        fatal("PdesEngine needs at least one partition");
    queues_.reserve(nparts_);
    for (unsigned p = 0; p < nparts_; ++p)
        queues_.push_back(std::make_unique<EventQueue>());
    outbox_.resize(nparts_);
    group_of_.assign(nparts_, 0);

    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    nworkers_ = std::min(nparts_, hw);
    for (unsigned t = 1; t < nworkers_; ++t)
        workers_.emplace_back([this, t] { workerMain(t); });
}

PdesEngine::~PdesEngine()
{
    stop_.store(true, std::memory_order_release);
    // jthreads join on destruction; the spin loops observe stop_.
}

void
PdesEngine::declareTraffic(fabric::NodeId src, fabric::NodeId dst)
{
    if (src == dst)
        return;
    const auto pair = std::make_pair(src, dst);
    if (std::find(traffic_.begin(), traffic_.end(), pair) ==
        traffic_.end()) {
        traffic_.push_back(pair);
        placement_valid_ = false;
    }
}

void
PdesEngine::addFlushHook(std::function<void()> fn)
{
    flush_hooks_.push_back(std::move(fn));
}

void
PdesEngine::refreshPlacement()
{
    const std::uint64_t epoch = net_ ? net_->routeEpoch() : 0;
    if (placement_valid_ && epoch == seen_epoch_)
        return;
    seen_epoch_ = epoch;
    placement_valid_ = true;

    // Partitions may run as independent groups only while every
    // declared pair rides its own direct link: each Link is then
    // transferred on by exactly one group, and a cross-group effect
    // is always at least one link latency away. A pair without a
    // live direct link routes multi-hop (PCIe host hops, or a
    // killLink() detour) — its transfers could touch links other
    // groups also transfer on, so everything collapses into one
    // merged group (still windowed against the coordinator, still
    // deterministic).
    bool merged = !net_ || traffic_.empty();
    for (const auto &[src, dst] : traffic_) {
        if (merged)
            break;
        if (!net_->linkAlive(src, dst))
            merged = true;
    }

    groups_.clear();
    if (merged) {
        std::vector<unsigned> all(nparts_);
        for (unsigned p = 0; p < nparts_; ++p)
            all[p] = p;
        groups_.push_back(std::move(all));
        group_of_.assign(nparts_, 0);
    } else {
        groups_.reserve(nparts_);
        for (unsigned p = 0; p < nparts_; ++p) {
            groups_.push_back({p});
            group_of_[p] = p;
        }
    }

    // Lookahead: the minimum propagation latency over pairs whose
    // endpoints now live in different groups. 0 means no declared
    // cross-group traffic at all, so windows are bounded only by
    // the coordinator head.
    lookahead_ = 0;
    if (net_ && !merged) {
        for (const auto &[src, dst] : traffic_) {
            const int sd = net_->nodeDomain(src);
            const int dd = net_->nodeDomain(dst);
            if (groupOfDomain(sd) == groupOfDomain(dd))
                continue;
            const Tick lat =
                std::max<Tick>(net_->link(src, dst)->params().latency,
                               1);
            if (lookahead_ == 0 || lat < lookahead_)
                lookahead_ = lat;
        }
    }
}

void
PdesEngine::runGroup(std::size_t gi)
{
    const std::vector<unsigned> &members = groups_[gi];
    const Tick bound = window_bound_;
    for (;;) {
        // Merge member heads deterministically: least (tick,
        // priority, partition index) below the window bound steps
        // first; within a queue, step() preserves the serial
        // (tick, priority, seq) order.
        EventQueue *best = nullptr;
        Tick best_when = 0;
        int best_prio = 0;
        for (const unsigned p : members) {
            EventQueue *q = queues_[p].get();
            Tick when = 0;
            int prio = 0;
            if (!q->peekHead(when, prio) || when >= bound)
                continue;
            if (!best || when < best_when ||
                (when == best_when && prio < best_prio)) {
                best = q;
                best_when = when;
                best_prio = prio;
            }
        }
        if (!best)
            return;
        best->step();
    }
}

void
PdesEngine::workerMain(unsigned tid)
{
    std::uint64_t seen = 0;
    for (;;) {
        while (round_.load(std::memory_order_acquire) == seen) {
            if (stop_.load(std::memory_order_acquire))
                return;
            std::this_thread::yield();
        }
        ++seen;
        for (std::size_t gi = tid; gi < groups_.size();
             gi += nworkers_)
            runGroup(gi);
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
PdesEngine::drainOutboxes()
{
    for (auto &box : outbox_) {
        for (auto &fn : box)
            fn();
        box.clear();
    }
}

void
PdesEngine::runWindow(Tick bound)
{
    window_bound_ = bound;
    round_.fetch_add(1, std::memory_order_release);
    for (std::size_t gi = 0; gi < groups_.size(); gi += nworkers_)
        runGroup(gi);
    expected_done_ += nworkers_ - 1;
    while (done_.load(std::memory_order_acquire) < expected_done_)
        std::this_thread::yield();
    drainOutboxes();
    ++windows_;
}

Tick
PdesEngine::run()
{
    return runUntil(nullptr);
}

Tick
PdesEngine::runUntil(const std::function<bool()> &done)
{
    for (;;) {
        if (done && done())
            break;
        refreshPlacement();

        Tick t_coord = maxTick;
        int coord_prio = 0;
        const bool has_coord = coord_->peekHead(t_coord, coord_prio);
        if (!has_coord)
            t_coord = maxTick;
        Tick t_parts = maxTick;
        for (const auto &q : queues_) {
            Tick when = 0;
            int prio = 0;
            if (q->peekHead(when, prio) && when < t_parts)
                t_parts = when;
        }

        if (!has_coord && t_parts == maxTick) {
            if (done)
                panic("PDES queues drained before runUntil() "
                      "condition was met");
            break;
        }

        // Coordinator-exclusive phase: the earliest pending event
        // is the coordinator's, so step it serially. Ties go to the
        // coordinator — its events were scheduled first in the
        // serial order (op starts precede the tasks they fan out).
        if (has_coord && t_coord <= t_parts) {
            coord_->step();
            continue;
        }

        Tick bound;
        if (lookahead_ == 0 || t_parts > maxTick - lookahead_)
            bound = t_coord;
        else
            bound = std::min(t_coord, t_parts + lookahead_);
        runWindow(bound);
    }
    for (const auto &fn : flush_hooks_)
        fn();
    return coord_->curTick();
}

std::uint64_t
PdesEngine::totalProcessed() const
{
    std::uint64_t total = coord_->numProcessed();
    for (const auto &q : queues_)
        total += q->numProcessed();
    return total;
}

std::size_t
PdesEngine::peakLiveTotal() const
{
    std::size_t total = coord_->peakLive();
    for (const auto &q : queues_)
        total += q->peakLive();
    return total;
}

} // namespace pdes
} // namespace ehpsim
