#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace ehpsim
{

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        panic("event scheduled twice; use reschedule()");
    if (when < cur_tick_)
        panic("scheduling event in the past: when=", when,
              " cur=", cur_tick_);
    ev->scheduled_ = true;
    ev->when_ = when;
    ev->seq_ = next_seq_++;
    queue_.push(Entry{when, ev->priority(), ev->seq_, ev});
    ++live_count_;
}

void
EventQueue::scheduleLambda(Tick when, std::function<void()> fn,
                           int priority)
{
    schedule(new LambdaEvent(std::move(fn), priority), when);
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled_)
        panic("descheduling an event that is not scheduled");
    if (ev->selfDeleting())
        panic("cannot deschedule a self-deleting event");
    // Lazy removal: mark dead; the stale queue entry is skipped later.
    ev->scheduled_ = false;
    --live_count_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::skipDead()
{
    while (!queue_.empty()) {
        const Entry &head = queue_.top();
        // An entry is stale if its event was descheduled (scheduled_
        // false) or rescheduled (seq mismatch).
        if (head.ev->scheduled_ && head.ev->seq_ == head.seq)
            return;
        queue_.pop();
    }
}

bool
EventQueue::empty() const
{
    return live_count_ == 0;
}

bool
EventQueue::step()
{
    skipDead();
    if (queue_.empty())
        return false;
    Entry entry = queue_.top();
    queue_.pop();
    --live_count_;
    cur_tick_ = entry.when;
    Event *ev = entry.ev;
    ev->scheduled_ = false;
    ++num_processed_;
    ev->process();
    if (ev->selfDeleting())
        delete ev;
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        skipDead();
        if (queue_.empty())
            return cur_tick_;
        if (queue_.top().when > limit) {
            cur_tick_ = limit;
            return cur_tick_;
        }
        step();
    }
}

} // namespace ehpsim
