#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace ehpsim
{

EventQueue::~EventQueue()
{
    // Pending self-deleting events would otherwise leak: once
    // scheduled, the queue is the only owner a fire-and-forget
    // LambdaEvent has (e.g. a fault or retry scheduled past the
    // point the simulation stopped caring).
    while (!queue_.empty()) {
        const Entry entry = queue_.top();
        queue_.pop();
        const auto it = dead_seqs_.find(entry.seq);
        if (it != dead_seqs_.end()) {
            dead_seqs_.erase(it);
            continue;       // descheduled; the owner reclaims it
        }
        if (entry.ev->selfDeleting())
            delete entry.ev;
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        panic("event scheduled twice; use reschedule()");
    if (when < cur_tick_)
        panic("scheduling event in the past: when=", when,
              " cur=", cur_tick_);
    ev->scheduled_ = true;
    ev->when_ = when;
    ev->seq_ = next_seq_++;
    queue_.push(Entry{when, ev->priority(), ev->seq_, ev});
    ++live_count_;
}

void
EventQueue::scheduleLambda(Tick when, std::function<void()> fn,
                           int priority)
{
    schedule(new LambdaEvent(std::move(fn), priority), when);
}

void
EventQueue::killEntry(Event *ev)
{
    // Lazy removal: tombstone the entry's sequence number; the stale
    // queue entry is skipped later by seq alone, so the event object
    // may be freed in the meantime.
    dead_seqs_.insert(ev->seq_);
    ev->scheduled_ = false;
    --live_count_;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled_)
        panic("descheduling an event that is not scheduled");
    if (ev->selfDeleting()) {
        panic("descheduling a self-deleting event would leak it: the "
              "queue only deletes events it processes; use "
              "reschedule() or let it fire");
    }
    killEntry(ev);
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    // Deliberately not routed through deschedule(): rescheduling a
    // self-deleting event is safe (it still fires exactly once).
    if (ev->scheduled_)
        killEntry(ev);
    schedule(ev, when);
}

void
EventQueue::skipDead()
{
    while (!queue_.empty()) {
        const auto it = dead_seqs_.find(queue_.top().seq);
        if (it == dead_seqs_.end())
            return;
        dead_seqs_.erase(it);
        queue_.pop();
    }
}

bool
EventQueue::empty() const
{
    return live_count_ == 0;
}

bool
EventQueue::step()
{
    skipDead();
    if (queue_.empty())
        return false;
    Entry entry = queue_.top();
    queue_.pop();
    --live_count_;
    cur_tick_ = entry.when;
    Event *ev = entry.ev;
    ev->scheduled_ = false;
    ++num_processed_;
    if (ev->selfDeleting()) {
        // Free the event even when process() throws (a fatal() on an
        // error path propagates through here).
        try {
            ev->process();
        } catch (...) {
            if (!ev->scheduled_)
                delete ev;
            throw;
        }
        if (!ev->scheduled_)
            delete ev;
    } else {
        ev->process();
    }
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        skipDead();
        if (queue_.empty())
            return cur_tick_;
        if (queue_.top().when > limit) {
            cur_tick_ = limit;
            return cur_tick_;
        }
        step();
    }
}

} // namespace ehpsim
