#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/access_tracker.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ehpsim
{

// ---------------------------------------------------------------------
// EventPool
// ---------------------------------------------------------------------

PoolEvent *
EventPool::acquire()
{
    if (!free_) {
        auto slab = std::make_unique<PoolEvent[]>(slabSize);
        for (std::size_t i = 0; i < slabSize; ++i) {
            slab[i].next_free_ = free_;
            free_ = &slab[i];
        }
        slabs_.push_back(std::move(slab));
    }
    PoolEvent *ev = free_;
    free_ = ev->next_free_;
    ev->next_free_ = nullptr;
    return ev;
}

void
EventPool::release(PoolEvent *ev)
{
    // Destroy the inline callable eagerly — captured resources
    // (shared_ptrs, buffers) must not outlive the firing, exactly as
    // deleting a LambdaEvent would release them.
    ev->destroy_(ev->store_);
    ev->invoke_ = nullptr;
    ev->destroy_ = nullptr;
    // Clear the checkpoint identity so a recycled slot reused by a
    // plain scheduleCallback() never masquerades as keyed.
    ev->key_ = nullptr;
    ev->a0_ = 0;
    ev->a1_ = 0;
    ev->next_free_ = free_;
    free_ = ev;
}

// ---------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------

EventQueue::~EventQueue()
{
    // Pending queue-owned events would otherwise leak: once
    // scheduled, the queue is the only owner a fire-and-forget
    // one-shot has (e.g. a fault or retry scheduled past the point
    // the simulation stopped caring). Pool storage is reclaimed by
    // the pool's slabs, but the inline callables still need their
    // destructors run.
    for (const Entry &e : heap_) {
        if (e.ev->selfDeleting())
            releaseOneShot(e.ev);
    }
}

std::size_t
EventQueue::siftUp(std::size_t i)
{
    Entry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!entryLess(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heap_[i].ev->heap_index_ = i;
        i = parent;
    }
    heap_[i] = e;
    e.ev->heap_index_ = i;
    return i;
}

std::size_t
EventQueue::siftDown(std::size_t i)
{
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && entryLess(heap_[child + 1], heap_[child]))
            ++child;
        if (!entryLess(heap_[child], e))
            break;
        heap_[i] = heap_[child];
        heap_[i].ev->heap_index_ = i;
        i = child;
    }
    heap_[i] = e;
    e.ev->heap_index_ = i;
    return i;
}

void
EventQueue::pushEntry(Entry e)
{
    heap_.push_back(e);
    e.ev->heap_index_ = heap_.size() - 1;
    siftUp(heap_.size() - 1);
}

EventQueue::Entry
EventQueue::popTop()
{
    Entry top = heap_.front();
    top.ev->heap_index_ = Event::notQueued;
    const std::size_t last = heap_.size() - 1;
    if (last > 0) {
        heap_[0] = heap_[last];
        heap_[0].ev->heap_index_ = 0;
        heap_.pop_back();
        siftDown(0);
    } else {
        heap_.pop_back();
    }
    return top;
}

void
EventQueue::removeAt(std::size_t i)
{
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
        heap_[i] = heap_[last];
        heap_[i].ev->heap_index_ = i;
        heap_.pop_back();
        // The replacement may need to move either way.
        if (siftUp(i) == i)
            siftDown(i);
    } else {
        heap_.pop_back();
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        panic("event scheduled twice; use reschedule()");
    if (when < cur_tick_)
        panic("scheduling event in the past: when=", when,
              " cur=", cur_tick_);
    ev->scheduled_ = true;
    ev->when_ = when;
    if (restoring_) {
        // A keyed factory is replaying a checkpointed event: pin the
        // saved sequence number so the replay lands in the exact
        // total-order slot it held when saved, and validate that the
        // factory reproduced the original (tick, priority).
        if (factory_scheduled_)
            panic("keyed factory scheduled more than one event");
        if (when != expect_when_ || ev->priority_ != expect_prio_)
            panic("keyed factory replayed an event at tick ", when,
                  " priority ", ev->priority_,
                  "; the checkpoint recorded tick ", expect_when_,
                  " priority ", expect_prio_);
        factory_scheduled_ = true;
        ev->seq_ = forced_seq_;
    } else {
        ev->seq_ = next_seq_++;
    }
    pushEntry(Entry{when, ev->priority_, ev->seq_, ev});
    if (++live_count_ > peak_live_)
        peak_live_ = live_count_;
}

void
EventQueue::scheduleLambda(Tick when, std::function<void()> fn,
                           int priority)
{
    scheduleCallback(when, std::move(fn), priority);
}

void
EventQueue::killEntry(Event *ev)
{
    // True removal: the entry leaves the heap (or the in-flight
    // dispatch batch) right now, while @p ev is still live, so the
    // owner may free the event the moment this returns.
    const std::size_t idx = ev->heap_index_;
    if (idx & Event::batchFlag)
        batch_[idx & ~Event::batchFlag].ev = nullptr;
    else
        removeAt(idx);
    ev->heap_index_ = Event::notQueued;
    ev->scheduled_ = false;
    --live_count_;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled_)
        panic("descheduling an event that is not scheduled");
    if (ev->selfDeleting()) {
        panic("descheduling a self-deleting event would leak it: the "
              "queue only deletes events it processes; use "
              "reschedule() or let it fire");
    }
    killEntry(ev);
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    // Deliberately not routed through deschedule(): rescheduling a
    // self-deleting event is safe (it still fires exactly once).
    if (ev->scheduled_)
        killEntry(ev);
    schedule(ev, when);
}

void
EventQueue::releaseOneShot(Event *ev)
{
    if (ev->pooled_)
        pool_.release(static_cast<PoolEvent *>(ev));
    else
        delete ev;
}

void
EventQueue::fire(Event *ev)
{
#ifdef EHPSIM_RACE
    // Attribute every access made by process() to this dispatch.
    // RAII so the binding unwinds with the throwing fatal() path.
    race::EventDispatchScope race_scope(cur_tick_, ev->priority_,
                                        ev->seq_);
#endif
    ev->scheduled_ = false;
    --live_count_;
    ++num_processed_;
    if (ev->selfDeleting()) {
        // Reclaim the event even when process() throws (a fatal() on
        // an error path propagates through here).
        try {
            ev->process();
        } catch (...) {
            if (!ev->scheduled_)
                releaseOneShot(ev);
            throw;
        }
        if (!ev->scheduled_)
            releaseOneShot(ev);
    } else {
        ev->process();
    }
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    const Entry entry = popTop();
    cur_tick_ = entry.when;
    fire(entry.ev);
    return true;
}

void
EventQueue::dispatchBatch()
{
    // Pop the whole run of events sharing the head's (tick,
    // priority): the common "N chunk completions at one tick" case
    // pays one head examination per event instead of a full
    // pop/push cycle interleaved with other keys.
    const Tick when = heap_.front().when;
    const int priority = heap_.front().priority;
    cur_tick_ = when;
    batch_.clear();
    do {
        Entry e = popTop();
        e.ev->heap_index_ = Event::batchFlag | batch_.size();
        batch_.push_back(e);
    } while (!heap_.empty() && heap_.front().when == when &&
             heap_.front().priority == priority);

    std::size_t i = 0;
    try {
        for (; i < batch_.size(); ++i) {
            Event *ev = batch_[i].ev;
            if (!ev)
                continue;       // descheduled by an earlier batch member
            ev->heap_index_ = Event::notQueued;
            fire(ev);
            // A fired event may have scheduled something that orders
            // before the rest of the batch (same tick, stricter
            // priority). Splice the unfired tail back so the global
            // (tick, priority, seq) order is preserved exactly.
            if (i + 1 < batch_.size() && !heap_.empty() &&
                entryLess(heap_.front(), batch_[i + 1])) {
                for (std::size_t j = i + 1; j < batch_.size(); ++j) {
                    if (batch_[j].ev)
                        pushEntry(batch_[j]);
                }
                batch_.clear();
                return;
            }
        }
    } catch (...) {
        // Restore the unfired tail so destructor semantics (reclaim
        // pending one-shots) and any continued use see a consistent
        // queue.
        for (std::size_t j = i + 1; j < batch_.size(); ++j) {
            if (batch_[j].ev)
                pushEntry(batch_[j]);
        }
        batch_.clear();
        throw;
    }
    batch_.clear();
}

void
EventQueue::registerKeyedFactory(const char *key, KeyedFactory fn)
{
    // Latest registrant owns the key: tests (and tooling) may build
    // several short-lived components against one queue, and only the
    // component alive at restore time can replay its events.
    for (auto &[name, factory] : factories_) {
        if (name == key) {
            factory = std::move(fn);
            return;
        }
    }
    factories_.emplace_back(key, std::move(fn));
}

bool
EventQueue::allPendingKeyed() const
{
    for (const Entry &e : heap_) {
        if (!e.ev->pooled_ ||
            !static_cast<const PoolEvent *>(e.ev)->key_)
            return false;
    }
    return true;
}

void
EventQueue::save(SnapshotWriter &w) const
{
    if (!batch_.empty())
        panic("EventQueue::save from inside a dispatch");
    w.section("eventq");
    w.putU64(cur_tick_);
    w.putU64(next_seq_);
    w.putU64(num_processed_);
    w.putU64(peak_live_);
    // The heap is only partially ordered; serialize in the total
    // (tick, priority, seq) order so identical queue states always
    // produce identical bytes.
    std::vector<Entry> pending(heap_);
    std::sort(pending.begin(), pending.end(), entryLess);
    w.putU32(static_cast<std::uint32_t>(pending.size()));
    for (const Entry &e : pending) {
        const auto *pe = e.ev->pooled_
                             ? static_cast<const PoolEvent *>(e.ev)
                             : nullptr;
        if (!pe || !pe->key_)
            fatal("snapshot: pending event at tick ", e.when,
                  " (priority ", e.priority,
                  ") is not checkpoint-aware; quiesce the simulation "
                  "to an op boundary before saving");
        w.putU64(e.when);
        w.putI64(e.priority);
        w.putU64(e.seq);
        w.putString(pe->key_);
        w.putU64(pe->a0_);
        w.putU64(pe->a1_);
    }
}

void
EventQueue::restore(SnapshotReader &r)
{
    if (live_count_ != 0 || num_processed_ != 0)
        panic("EventQueue::restore needs a freshly built queue");
    r.section("eventq");
    cur_tick_ = r.getU64();
    const std::uint64_t saved_seq = r.getU64();
    const std::uint64_t saved_processed = r.getU64();
    const std::uint64_t saved_peak = r.getU64();
    const auto npending = r.getU32();
    restoring_ = true;
    for (std::uint32_t i = 0; i < npending; ++i) {
        const Tick when = r.getU64();
        const auto priority = static_cast<int>(r.getI64());
        const std::uint64_t seq = r.getU64();
        const std::string key = r.getString();
        const std::uint64_t a0 = r.getU64();
        const std::uint64_t a1 = r.getU64();
        const KeyedFactory *factory = nullptr;
        for (const auto &[name, f] : factories_) {
            if (name == key) {
                factory = &f;
                break;
            }
        }
        if (!factory) {
            restoring_ = false;
            fatal("snapshot: no keyed-event factory registered for '",
                  key, "' — the restored world must construct the "
                  "same components as the saved one");
        }
        expect_when_ = when;
        expect_prio_ = priority;
        forced_seq_ = seq;
        factory_scheduled_ = false;
        (*factory)(when, a0, a1);
        if (!factory_scheduled_)
            panic("keyed factory '", key, "' scheduled no event");
    }
    restoring_ = false;
    next_seq_ = saved_seq;
    num_processed_ = saved_processed;
    // The saved peak covers the whole warmup; replaying only the
    // still-pending subset can never exceed it.
    peak_live_ = saved_peak;
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        if (heap_.empty())
            return cur_tick_;
        if (heap_.front().when > limit) {
            cur_tick_ = limit;
            return cur_tick_;
        }
        dispatchBatch();
    }
}

} // namespace ehpsim
