#include "sim/event_queue.hh"

#include "sim/access_tracker.hh"
#include "sim/logging.hh"

namespace ehpsim
{

// ---------------------------------------------------------------------
// EventPool
// ---------------------------------------------------------------------

PoolEvent *
EventPool::acquire()
{
    if (!free_) {
        auto slab = std::make_unique<PoolEvent[]>(slabSize);
        for (std::size_t i = 0; i < slabSize; ++i) {
            slab[i].next_free_ = free_;
            free_ = &slab[i];
        }
        slabs_.push_back(std::move(slab));
    }
    PoolEvent *ev = free_;
    free_ = ev->next_free_;
    ev->next_free_ = nullptr;
    return ev;
}

void
EventPool::release(PoolEvent *ev)
{
    // Destroy the inline callable eagerly — captured resources
    // (shared_ptrs, buffers) must not outlive the firing, exactly as
    // deleting a LambdaEvent would release them.
    ev->destroy_(ev->store_);
    ev->invoke_ = nullptr;
    ev->destroy_ = nullptr;
    ev->next_free_ = free_;
    free_ = ev;
}

// ---------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------

EventQueue::~EventQueue()
{
    // Pending queue-owned events would otherwise leak: once
    // scheduled, the queue is the only owner a fire-and-forget
    // one-shot has (e.g. a fault or retry scheduled past the point
    // the simulation stopped caring). Pool storage is reclaimed by
    // the pool's slabs, but the inline callables still need their
    // destructors run.
    for (const Entry &e : heap_) {
        if (e.ev->selfDeleting())
            releaseOneShot(e.ev);
    }
}

std::size_t
EventQueue::siftUp(std::size_t i)
{
    Entry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!entryLess(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heap_[i].ev->heap_index_ = i;
        i = parent;
    }
    heap_[i] = e;
    e.ev->heap_index_ = i;
    return i;
}

std::size_t
EventQueue::siftDown(std::size_t i)
{
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && entryLess(heap_[child + 1], heap_[child]))
            ++child;
        if (!entryLess(heap_[child], e))
            break;
        heap_[i] = heap_[child];
        heap_[i].ev->heap_index_ = i;
        i = child;
    }
    heap_[i] = e;
    e.ev->heap_index_ = i;
    return i;
}

void
EventQueue::pushEntry(Entry e)
{
    heap_.push_back(e);
    e.ev->heap_index_ = heap_.size() - 1;
    siftUp(heap_.size() - 1);
}

EventQueue::Entry
EventQueue::popTop()
{
    Entry top = heap_.front();
    top.ev->heap_index_ = Event::notQueued;
    const std::size_t last = heap_.size() - 1;
    if (last > 0) {
        heap_[0] = heap_[last];
        heap_[0].ev->heap_index_ = 0;
        heap_.pop_back();
        siftDown(0);
    } else {
        heap_.pop_back();
    }
    return top;
}

void
EventQueue::removeAt(std::size_t i)
{
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
        heap_[i] = heap_[last];
        heap_[i].ev->heap_index_ = i;
        heap_.pop_back();
        // The replacement may need to move either way.
        if (siftUp(i) == i)
            siftDown(i);
    } else {
        heap_.pop_back();
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        panic("event scheduled twice; use reschedule()");
    if (when < cur_tick_)
        panic("scheduling event in the past: when=", when,
              " cur=", cur_tick_);
    ev->scheduled_ = true;
    ev->when_ = when;
    ev->seq_ = next_seq_++;
    pushEntry(Entry{when, ev->priority_, ev->seq_, ev});
    if (++live_count_ > peak_live_)
        peak_live_ = live_count_;
}

void
EventQueue::scheduleLambda(Tick when, std::function<void()> fn,
                           int priority)
{
    scheduleCallback(when, std::move(fn), priority);
}

void
EventQueue::killEntry(Event *ev)
{
    // True removal: the entry leaves the heap (or the in-flight
    // dispatch batch) right now, while @p ev is still live, so the
    // owner may free the event the moment this returns.
    const std::size_t idx = ev->heap_index_;
    if (idx & Event::batchFlag)
        batch_[idx & ~Event::batchFlag].ev = nullptr;
    else
        removeAt(idx);
    ev->heap_index_ = Event::notQueued;
    ev->scheduled_ = false;
    --live_count_;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled_)
        panic("descheduling an event that is not scheduled");
    if (ev->selfDeleting()) {
        panic("descheduling a self-deleting event would leak it: the "
              "queue only deletes events it processes; use "
              "reschedule() or let it fire");
    }
    killEntry(ev);
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    // Deliberately not routed through deschedule(): rescheduling a
    // self-deleting event is safe (it still fires exactly once).
    if (ev->scheduled_)
        killEntry(ev);
    schedule(ev, when);
}

void
EventQueue::releaseOneShot(Event *ev)
{
    if (ev->pooled_)
        pool_.release(static_cast<PoolEvent *>(ev));
    else
        delete ev;
}

void
EventQueue::fire(Event *ev)
{
#ifdef EHPSIM_RACE
    // Attribute every access made by process() to this dispatch.
    // RAII so the binding unwinds with the throwing fatal() path.
    race::EventDispatchScope race_scope(cur_tick_, ev->priority_,
                                        ev->seq_);
#endif
    ev->scheduled_ = false;
    --live_count_;
    ++num_processed_;
    if (ev->selfDeleting()) {
        // Reclaim the event even when process() throws (a fatal() on
        // an error path propagates through here).
        try {
            ev->process();
        } catch (...) {
            if (!ev->scheduled_)
                releaseOneShot(ev);
            throw;
        }
        if (!ev->scheduled_)
            releaseOneShot(ev);
    } else {
        ev->process();
    }
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    const Entry entry = popTop();
    cur_tick_ = entry.when;
    fire(entry.ev);
    return true;
}

void
EventQueue::dispatchBatch()
{
    // Pop the whole run of events sharing the head's (tick,
    // priority): the common "N chunk completions at one tick" case
    // pays one head examination per event instead of a full
    // pop/push cycle interleaved with other keys.
    const Tick when = heap_.front().when;
    const int priority = heap_.front().priority;
    cur_tick_ = when;
    batch_.clear();
    do {
        Entry e = popTop();
        e.ev->heap_index_ = Event::batchFlag | batch_.size();
        batch_.push_back(e);
    } while (!heap_.empty() && heap_.front().when == when &&
             heap_.front().priority == priority);

    std::size_t i = 0;
    try {
        for (; i < batch_.size(); ++i) {
            Event *ev = batch_[i].ev;
            if (!ev)
                continue;       // descheduled by an earlier batch member
            ev->heap_index_ = Event::notQueued;
            fire(ev);
            // A fired event may have scheduled something that orders
            // before the rest of the batch (same tick, stricter
            // priority). Splice the unfired tail back so the global
            // (tick, priority, seq) order is preserved exactly.
            if (i + 1 < batch_.size() && !heap_.empty() &&
                entryLess(heap_.front(), batch_[i + 1])) {
                for (std::size_t j = i + 1; j < batch_.size(); ++j) {
                    if (batch_[j].ev)
                        pushEntry(batch_[j]);
                }
                batch_.clear();
                return;
            }
        }
    } catch (...) {
        // Restore the unfired tail so destructor semantics (reclaim
        // pending one-shots) and any continued use see a consistent
        // queue.
        for (std::size_t j = i + 1; j < batch_.size(); ++j) {
            if (batch_[j].ev)
                pushEntry(batch_[j]);
        }
        batch_.clear();
        throw;
    }
    batch_.clear();
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        if (heap_.empty())
            return cur_tick_;
        if (heap_.front().when > limit) {
            cur_tick_ = limit;
            return cur_tick_;
        }
        dispatchBatch();
    }
}

} // namespace ehpsim
