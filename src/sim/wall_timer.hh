/**
 * @file
 * The one sanctioned wall-clock in ehpsim.
 *
 * Simulated time (EventQueue ticks) is the only clock simulation
 * logic may read; ehpsim-lint's wall-clock rule enforces that
 * tree-wide. Operator-facing progress reporting — "how long did this
 * sweep take on the host" — still needs real time, so it goes
 * through WallTimer, the single whitelisted wrapper. Anything a
 * WallTimer measures is host-dependent by construction and therefore
 * must never be serialized into a deterministic payload (the
 * ehpsim-sweep-v1 contract excludes it; sweep_test asserts that).
 */

#ifndef EHPSIM_SIM_WALL_TIMER_HH
#define EHPSIM_SIM_WALL_TIMER_HH

namespace ehpsim
{

class WallTimer
{
  public:
    /** Starts timing at construction. */
    WallTimer();

    /** Restart the epoch. */
    void restart();

    /** Host seconds elapsed since construction or restart(). */
    double seconds() const;

  private:
    /** steady_clock::time_point, stored opaquely so no caller ever
     *  includes <chrono> (which would re-open the wall-clock door). */
    long long start_ns_;
};

} // namespace ehpsim

#endif // EHPSIM_SIM_WALL_TIMER_HH
