/**
 * @file
 * Deterministic traversal of unordered containers.
 *
 * std::unordered_map/_set iterate in hash order, which varies with
 * insertion history, libstdc++ version, and (via pointer hashing)
 * ASLR — so hash-order traversal must never feed stats, JSON, or
 * event scheduling. ehpsim-lint's unordered-iter rule flags every
 * such loop; this header is the sanctioned fix: collect the keys,
 * sort them, and traverse in key order. The collection loop below is
 * order-insensitive (it only gathers keys), which is exactly why it
 * carries the one allow() in the tree for this rule.
 */

#ifndef EHPSIM_SIM_ORDERED_HH
#define EHPSIM_SIM_ORDERED_HH

#include <algorithm>
#include <vector>

namespace ehpsim
{

/**
 * The keys of any map-like container, sorted ascending. Use this to
 * drive deterministic traversal:
 *
 *     for (const auto &k : sortedKeys(dir_)) { ... dir_.at(k) ... }
 */
template <typename Map>
std::vector<typename Map::key_type>
sortedKeys(const Map &map)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(map.size());
    // ehpsim-lint: allow(unordered-iter)
    for (const auto &kv : map)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

/**
 * The elements of any set-like container, sorted ascending.
 */
template <typename Set>
std::vector<typename Set::key_type>
sortedValues(const Set &set)
{
    std::vector<typename Set::key_type> vals;
    vals.reserve(set.size());
    // ehpsim-lint: allow(unordered-iter)
    for (const auto &v : set)
        vals.push_back(v);
    std::sort(vals.begin(), vals.end());
    return vals;
}

} // namespace ehpsim

#endif // EHPSIM_SIM_ORDERED_HH
