/**
 * @file
 * A minimal deterministic JSON emitter.
 *
 * JsonWriter produces pretty-printed JSON with fully deterministic
 * byte output: the same sequence of calls always yields the same
 * bytes, regardless of locale, platform, or which thread produced
 * the values. That property is what lets the sweep engine promise
 * byte-identical output between serial and parallel runs.
 *
 * The writer is a state machine over an std::ostream; it does not
 * build an in-memory document. Misuse (e.g. a value with no pending
 * key inside an object) panics, since it indicates an ehpsim bug.
 */

#ifndef EHPSIM_SIM_JSON_HH
#define EHPSIM_SIM_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ehpsim
{
namespace json
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string escape(std::string_view s);

/**
 * Format @p v the way JsonWriter would: integral doubles within the
 * exactly-representable range print without a fraction ("3", not
 * "3.0"); everything else uses "%.12g"; NaN/inf become null.
 */
std::string formatNumber(double v);

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, unsigned indent = 2)
        : os_(os), indent_(indent)
    {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by exactly one value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    JsonWriter &value(unsigned v) { return value(std::uint64_t(v)); }
    JsonWriter &value(bool v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &nullValue();

    /** Splice pre-serialized JSON in as a value. Caller guarantees
     *  @p raw is itself valid JSON. */
    JsonWriter &rawValue(std::string_view raw);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** True once the top-level value is complete. */
    bool done() const { return done_; }

  private:
    enum class Frame { object, array };

    void preValue();
    void postValue();
    void newline();

    std::ostream &os_;
    unsigned indent_;
    std::vector<Frame> stack_;
    /** Number of entries emitted at each open level. */
    std::vector<std::size_t> counts_;
    bool key_pending_ = false;
    bool done_ = false;
};

} // namespace json
} // namespace ehpsim

#endif // EHPSIM_SIM_JSON_HH
