/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64 seeded
 * xoshiro256**). Every stochastic component takes an explicit Rng so
 * whole-system runs are reproducible from a single seed.
 */

#ifndef EHPSIM_SIM_RNG_HH
#define EHPSIM_SIM_RNG_HH

#include <cstdint>

namespace ehpsim
{

class SnapshotWriter;
class SnapshotReader;

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

    /** Derive an independent child stream (for per-component RNGs). */
    Rng fork();

    /** @{ checkpoint the stream position (DESIGN.md §16) */
    void snapshot(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);
    /** @} */

  private:
    std::uint64_t s_[4];
};

/**
 * Stateless counter-based uniform draw in [0, 1): hashes
 * (seed, a, b, c) through splitmix64-style mixing. Unlike a
 * stateful Rng, the result depends only on the arguments, never on
 * draw order — so concurrent PDES partitions evaluating the same
 * (op, task, attempt) tuple get the same answer as the serial
 * kernel regardless of execution interleaving.
 */
double counterHashUnit(std::uint64_t seed, std::uint64_t a,
                       std::uint64_t b, std::uint64_t c);

} // namespace ehpsim

#endif // EHPSIM_SIM_RNG_HH
