/**
 * @file
 * Fundamental simulator types shared by every ehpsim module.
 */

#ifndef EHPSIM_SIM_TYPES_HH
#define EHPSIM_SIM_TYPES_HH

#include <cstdint>

namespace ehpsim
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles (clock domain dependent). */
using Cycles = std::uint64_t;

/** A physical (simulated) memory address. */
using Addr = std::uint64_t;

/** Largest representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per second: 1 tick == 1 ps. */
constexpr Tick ticksPerSecond = 1000ull * 1000 * 1000 * 1000;

/** Convert a frequency in GHz to the tick period of one cycle. */
constexpr Tick
periodFromGHz(double ghz)
{
    return static_cast<Tick>(1000.0 / ghz);
}

/** Convert seconds (double) to ticks. */
constexpr Tick
ticksFromSeconds(double s)
{
    return static_cast<Tick>(s * static_cast<double>(ticksPerSecond));
}

/** Convert ticks to seconds (double). */
constexpr double
secondsFromTicks(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSecond);
}

} // namespace ehpsim

#endif // EHPSIM_SIM_TYPES_HH
