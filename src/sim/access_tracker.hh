/**
 * @file
 * ehpsim-race: the dynamic half of the determinism race detector.
 *
 * The event kernel guarantees a total order over (tick, priority,
 * seq), but batched dispatch (DESIGN.md §11) and the planned PDES
 * core (ROADMAP) are only *allowed* to exploit that order if no two
 * events at the same (tick, priority) touch the same state — seq is
 * an implementation tiebreak, not a scheduling contract. The
 * AccessTracker checks exactly that property at runtime:
 *
 *  - every SimObject may declare a partition domain (the socket /
 *    IOD id that would become a PDES logical process);
 *  - instrumented state mutations pass through EHPSIM_TRACK_READ /
 *    EHPSIM_TRACK_WRITE, which attribute the access to the event
 *    the EventQueue is currently dispatching;
 *  - two accesses to the same cell from *different* events at the
 *    same (tick, priority), at least one a write, are an order
 *    hazard: reordering the batch would change simulation results;
 *  - an event that touches objects in two different domains within
 *    one dispatch is a cross-partition access: a PDES blocker,
 *    because the domains could not run on separate logical
 *    processes without a synchronized channel.
 *
 * The tracker also collects the partition dependency data PDES
 * needs: which domain pairs exchange messages (flows) and the
 * minimum link latency joining each pair — the conservative
 * lookahead table.
 *
 * Reports are emitted as the byte-deterministic `ehpsim-race-v1`
 * JSON object (all aggregation is in sorted std::map keyed by
 * strings and ints; no pointers, no wall time). Findings that are
 * understood and provably order-independent (commutative counter
 * updates, max-merges) are *waived* with a recorded rationale; CI
 * asserts the unwaived count is zero.
 *
 * Build gating: this class always compiles (unit tests drive it
 * directly), but the hooks — the EventQueue attribution calls and
 * every EHPSIM_TRACK_* macro — are real code only when the
 * EHPSIM_RACE CMake option defines EHPSIM_RACE=1. Release builds
 * compile the macros to ((void)0), so instrumented hot paths are
 * bit-identical to uninstrumented ones.
 */

#ifndef EHPSIM_SIM_ACCESS_TRACKER_HH
#define EHPSIM_SIM_ACCESS_TRACKER_HH

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace ehpsim
{

class SimObject;

namespace json
{
class JsonWriter;
}

namespace race
{

class AccessTracker
{
  public:
    AccessTracker() = default;

    AccessTracker(const AccessTracker &) = delete;
    AccessTracker &operator=(const AccessTracker &) = delete;

    /** @{
     * Event attribution. The EventQueue brackets every dispatch
     * with beginEvent/endEvent (under EHPSIM_RACE); unit tests call
     * them directly. Accesses recorded outside an event (object
     * construction, topology building) are ignored — only
     * event-driven mutations can race.
     */
    void beginEvent(Tick when, int priority, std::uint64_t seq);
    void endEvent();
    /** @} */

    /**
     * Record one access to @p cell of @p obj. The cell name is the
     * object's stat path plus the cell suffix, so reports carry
     * full provenance ("root.topo.net.s0_s1.occupancy"). @p obj may
     * be null for free-standing state (cell is used verbatim).
     */
    void record(const SimObject *obj, const char *cell, bool is_write,
                const char *file, int line);

    /** @{
     * Partition dependency data. recordPartitionLink() feeds the
     * lookahead table (called from Network::connect when both
     * endpoints carry domains); recordPartitionFlow() counts
     * messages crossing a domain pair (called from
     * Network::sendOnRoute). Both also fire implicitly when an
     * event touches two domains.
     */
    void recordPartitionLink(int a, int b, Tick latency);
    void recordPartitionFlow(int src, int dst);
    /** @} */

    /**
     * Waive findings whose cell path contains @p pattern
     * (substring match). Waived findings stay in the report with
     * the rationale attached; they no longer count as unwaived.
     * The rationale must say *why* the access order cannot change
     * results (e.g. "commutative decrement").
     */
    void waive(std::string pattern, std::string rationale);

    /** Distinct (deduplicated) findings. */
    std::size_t conflictCount() const { return conflicts_.size(); }

    std::size_t unwaivedCount() const;

    std::size_t waivedCount() const
    {
        return conflicts_.size() - unwaivedCount();
    }

    std::uint64_t eventCount() const { return events_; }

    std::uint64_t accessCount() const { return accesses_; }

    /** Min link latency per ordered domain pair (a < b). */
    const std::map<std::pair<int, int>, Tick> &
    lookahead() const
    {
        return lookahead_;
    }

    /** Message count per ordered (src, dst) domain pair. */
    const std::map<std::pair<int, int>, std::uint64_t> &
    flows() const
    {
        return flows_;
    }

    /** Write the full ehpsim-race-v1 report as one JSON object. */
    void dumpJson(json::JsonWriter &jw) const;

    /**
     * The tracker bound to this thread by TrackerScope, or null.
     * Thread-local so every SweepRunner worker can drive its own
     * scenario under its own tracker.
     */
    static AccessTracker *current();

  private:
    friend class TrackerScope;

    struct Access
    {
        std::uint64_t seq;
        bool write;
        std::string site;   ///< "file.cc:123"
    };

    /** kind, cell, endpoint a, endpoint b. */
    using ConflictKey =
        std::tuple<std::string, std::string, std::string, std::string>;

    struct ConflictInfo
    {
        std::uint64_t count = 0;
        Tick first_tick = 0;
    };

    struct Waiver
    {
        std::string rationale;
        mutable std::uint64_t uses = 0;
    };

    void noteConflict(const std::string &kind, const std::string &cell,
                      std::string a, std::string b);

    /** The waiver matching @p cell, or null. */
    const Waiver *waiverFor(const std::string &cell) const;

    bool in_event_ = false;
    Tick cur_tick_ = 0;
    int cur_priority_ = 0;
    std::uint64_t cur_seq_ = 0;
    int cur_domain_ = -1;

    /** Accesses in the current (tick, priority) batch window,
     *  per cell. Cleared when the window key changes, so memory is
     *  bounded by the busiest single batch. */
    Tick window_tick_ = 0;
    int window_priority_ = 0;
    std::map<std::string, std::vector<Access>> window_;
    std::uint64_t window_drops_ = 0;

    std::map<ConflictKey, ConflictInfo> conflicts_;
    /** pattern -> waiver, iterated in sorted order. */
    std::map<std::string, Waiver> waivers_;
    std::map<std::pair<int, int>, Tick> lookahead_;
    std::map<std::pair<int, int>, std::uint64_t> flows_;
    std::uint64_t events_ = 0;
    std::uint64_t accesses_ = 0;
};

/**
 * Bind @p t as the calling thread's current tracker for the scope's
 * lifetime (restores the previous binding on exit). All EHPSIM_TRACK
 * macros and EventQueue hooks on this thread route to it.
 */
class TrackerScope
{
  public:
    explicit TrackerScope(AccessTracker *t);
    ~TrackerScope();

    TrackerScope(const TrackerScope &) = delete;
    TrackerScope &operator=(const TrackerScope &) = delete;

  private:
    AccessTracker *prev_;
};

/**
 * RAII bracket around one event dispatch. No-op when the thread has
 * no current tracker; safe on the EventQueue's exception path.
 */
class EventDispatchScope
{
  public:
    EventDispatchScope(Tick when, int priority, std::uint64_t seq);
    ~EventDispatchScope();

    EventDispatchScope(const EventDispatchScope &) = delete;
    EventDispatchScope &operator=(const EventDispatchScope &) = delete;

  private:
    AccessTracker *t_;
};

/** @{ Free helpers the macros expand to; no-ops without a current
 *  tracker, so instrumented code needs no tracker plumbing. */
void trackRead(const SimObject *obj, const char *cell,
               const char *file, int line);
void trackWrite(const SimObject *obj, const char *cell,
                const char *file, int line);
void notePartitionLink(int a, int b, Tick latency);
void notePartitionFlow(int src, int dst);
/** @} */

/**
 * The project's standing waivers: access patterns reviewed and
 * proven order-independent, applied by every race run (CLI, CI,
 * tests). Each carries its rationale into the report. See
 * DESIGN.md §14 for the policy on adding one.
 */
void addStandardWaivers(AccessTracker &t);

} // namespace race
} // namespace ehpsim

/**
 * Instrumentation macros. Real under -DEHPSIM_RACE=1 (the
 * EHPSIM_RACE CMake option); ((void)0) otherwise, so release hot
 * paths carry zero overhead and identical codegen.
 */
#ifdef EHPSIM_RACE
#define EHPSIM_TRACK_READ(obj, cell) \
    ::ehpsim::race::trackRead((obj), (cell), __FILE__, __LINE__)
#define EHPSIM_TRACK_WRITE(obj, cell) \
    ::ehpsim::race::trackWrite((obj), (cell), __FILE__, __LINE__)
#define EHPSIM_RACE_PARTITION_LINK(a, b, latency) \
    ::ehpsim::race::notePartitionLink((a), (b), (latency))
#define EHPSIM_RACE_PARTITION_FLOW(src, dst) \
    ::ehpsim::race::notePartitionFlow((src), (dst))
#else
#define EHPSIM_TRACK_READ(obj, cell) ((void)0)
#define EHPSIM_TRACK_WRITE(obj, cell) ((void)0)
#define EHPSIM_RACE_PARTITION_LINK(a, b, latency) ((void)0)
#define EHPSIM_RACE_PARTITION_FLOW(src, dst) ((void)0)
#endif

#endif // EHPSIM_SIM_ACCESS_TRACKER_HH
