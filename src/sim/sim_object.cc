#include "sim/sim_object.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ehpsim
{

std::string
saveWorld(const EventQueue &eq, const stats::StatGroup &root)
{
    SnapshotWriter w;
    w.setHorizon(eq.curTick());
    eq.save(w);
    w.section("objects");
    root.snapshot(w);
    w.section("end");
    return w.blob();
}

void
restoreWorld(const std::string &blob, EventQueue &eq,
             stats::StatGroup &root)
{
    SnapshotReader r(blob);
    eq.restore(r);
    r.section("objects");
    root.restore(r);
    r.section("end");
    if (!r.atEnd())
        fatal("snapshot: trailing bytes after the end marker — "
              "corrupt checkpoint");
}

} // namespace ehpsim
