#include "mem/cache_array.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ehpsim
{
namespace mem
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

CacheArray::CacheArray(std::uint64_t size_bytes, unsigned assoc,
                       unsigned line_bytes, ReplPolicy policy,
                       std::uint64_t seed)
    : size_bytes_(size_bytes),
      assoc_(assoc),
      line_bytes_(line_bytes),
      policy_(policy),
      rng_(seed)
{
    if (assoc == 0 || line_bytes == 0 || size_bytes == 0)
        fatal("cache geometry must be nonzero");
    if (!isPow2(line_bytes))
        fatal("cache line size must be a power of two");
    if (size_bytes % (static_cast<std::uint64_t>(assoc) * line_bytes))
        fatal("cache size not divisible by assoc * line size");
    const std::uint64_t sets =
        size_bytes / (static_cast<std::uint64_t>(assoc) * line_bytes);
    if (!isPow2(sets))
        fatal("cache set count must be a power of two");
    num_sets_ = static_cast<unsigned>(sets);
    line_mask_ = line_bytes_ - 1;
    lines_.resize(static_cast<std::size_t>(num_sets_) * assoc_);
    plru_bits_.assign(num_sets_, 0);
}

unsigned
CacheArray::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / line_bytes_) % num_sets_);
}

std::optional<unsigned>
CacheArray::lookup(Addr addr)
{
    const Addr tag = lineAlign(addr);
    const unsigned set = setIndex(addr);
    for (unsigned way = 0; way < assoc_; ++way) {
        CacheLine &l =
            lines_[static_cast<std::size_t>(set) * assoc_ + way];
        if (l.valid && l.tag == tag) {
            touch(l);
            if (policy_ == ReplPolicy::plru) {
                // Mark the path to this way as recently used.
                unsigned node = 1;
                unsigned lo = 0, hi = assoc_;
                while (hi - lo > 1) {
                    const unsigned mid = (lo + hi) / 2;
                    if (way < mid) {
                        plru_bits_[set] |= (1u << node);
                        node = node * 2;
                        hi = mid;
                    } else {
                        plru_bits_[set] &= ~(1u << node);
                        node = node * 2 + 1;
                        lo = mid;
                    }
                }
            }
            return way;
        }
    }
    return std::nullopt;
}

std::optional<unsigned>
CacheArray::peek(Addr addr) const
{
    const Addr tag = lineAlign(addr);
    const unsigned set = setIndex(addr);
    for (unsigned way = 0; way < assoc_; ++way) {
        const CacheLine &l =
            lines_[static_cast<std::size_t>(set) * assoc_ + way];
        if (l.valid && l.tag == tag)
            return way;
    }
    return std::nullopt;
}

CacheLine &
CacheArray::line(Addr addr, unsigned way)
{
    const unsigned set = setIndex(addr);
    return lines_[static_cast<std::size_t>(set) * assoc_ + way];
}

const CacheLine &
CacheArray::line(Addr addr, unsigned way) const
{
    const unsigned set = setIndex(addr);
    return lines_[static_cast<std::size_t>(set) * assoc_ + way];
}

void
CacheArray::touch(CacheLine &line)
{
    line.last_use = ++use_counter_;
}

unsigned
CacheArray::victimWay(unsigned set)
{
    CacheLine *base = &lines_[static_cast<std::size_t>(set) * assoc_];
    // Prefer an invalid way.
    for (unsigned way = 0; way < assoc_; ++way) {
        if (!base[way].valid)
            return way;
    }
    switch (policy_) {
      case ReplPolicy::lru: {
        unsigned victim = 0;
        for (unsigned way = 1; way < assoc_; ++way) {
            if (base[way].last_use < base[victim].last_use)
                victim = way;
        }
        return victim;
      }
      case ReplPolicy::plru: {
        // Walk the tree away from recently-used halves.
        unsigned node = 1;
        unsigned lo = 0, hi = assoc_;
        while (hi - lo > 1) {
            const unsigned mid = (lo + hi) / 2;
            const bool left_recent = plru_bits_[set] & (1u << node);
            if (left_recent) {
                node = node * 2 + 1;
                lo = mid;
            } else {
                node = node * 2;
                hi = mid;
            }
        }
        return lo;
      }
      case ReplPolicy::random:
        return static_cast<unsigned>(rng_.nextBounded(assoc_));
    }
    panic("bad replacement policy");
}

std::optional<CacheLine>
CacheArray::insert(Addr addr, bool dirty, bool prefetched)
{
    const Addr tag = lineAlign(addr);
    const unsigned set = setIndex(addr);

    if (auto way = lookup(addr)) {
        CacheLine &l = line(addr, *way);
        l.dirty = l.dirty || dirty;
        l.prefetched = l.prefetched && prefetched;
        return std::nullopt;
    }

    const unsigned way = victimWay(set);
    CacheLine &l = lines_[static_cast<std::size_t>(set) * assoc_ + way];
    std::optional<CacheLine> victim;
    if (l.valid)
        victim = l;
    l.tag = tag;
    l.valid = true;
    l.dirty = dirty;
    l.state = 0;
    l.prefetched = prefetched;
    touch(l);
    return victim;
}

std::optional<CacheLine>
CacheArray::invalidate(Addr addr)
{
    if (auto way = peek(addr)) {
        CacheLine &l = line(addr, *way);
        CacheLine old = l;
        l.valid = false;
        l.dirty = false;
        return old;
    }
    return std::nullopt;
}

std::vector<CacheLine>
CacheArray::flushAll()
{
    std::vector<CacheLine> dirty;
    for (auto &l : lines_) {
        if (l.valid && l.dirty)
            dirty.push_back(l);
        l.valid = false;
        l.dirty = false;
    }
    return dirty;
}

std::uint64_t
CacheArray::numValid() const
{
    std::uint64_t n = 0;
    for (const auto &l : lines_) {
        if (l.valid)
            ++n;
    }
    return n;
}

void
CacheArray::snapshot(SnapshotWriter &w) const
{
    w.putU64(size_bytes_);
    w.putU32(assoc_);
    w.putU32(line_bytes_);
    rng_.snapshot(w);
    w.putU64(use_counter_);
    w.putU64(numValid());
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const CacheLine &l = lines_[i];
        if (!l.valid)
            continue;
        w.putU64(i);
        w.putU64(l.tag);
        w.putBool(l.dirty);
        w.putU8(l.state);
        w.putU64(l.last_use);
        w.putBool(l.prefetched);
    }
    std::uint64_t nonzero = 0;
    for (std::uint32_t bits : plru_bits_) {
        if (bits)
            ++nonzero;
    }
    w.putU64(nonzero);
    for (std::size_t s = 0; s < plru_bits_.size(); ++s) {
        if (plru_bits_[s]) {
            w.putU32(static_cast<std::uint32_t>(s));
            w.putU32(plru_bits_[s]);
        }
    }
}

void
CacheArray::restore(SnapshotReader &r)
{
    const std::uint64_t size = r.getU64();
    const std::uint32_t assoc = r.getU32();
    const std::uint32_t line = r.getU32();
    if (size != size_bytes_ || assoc != assoc_ || line != line_bytes_) {
        fatal("cache snapshot saved as ", size, " B x", assoc,
              "-way x", line, " B lines but configured as ",
              size_bytes_, " B x", assoc_, "-way x", line_bytes_,
              " B lines — checkpoint/config mismatch");
    }
    rng_.restore(r);
    use_counter_ = r.getU64();
    lines_.assign(lines_.size(), CacheLine{});
    const std::uint64_t valid = r.getU64();
    for (std::uint64_t i = 0; i < valid; ++i) {
        const std::uint64_t idx = r.getU64();
        if (idx >= lines_.size())
            fatal("cache snapshot line index ", idx,
                  " out of range — corrupt checkpoint");
        CacheLine &l = lines_[idx];
        l.valid = true;
        l.tag = r.getU64();
        l.dirty = r.getBool();
        l.state = r.getU8();
        l.last_use = r.getU64();
        l.prefetched = r.getBool();
    }
    plru_bits_.assign(num_sets_, 0);
    const std::uint64_t nonzero = r.getU64();
    for (std::uint64_t i = 0; i < nonzero; ++i) {
        const std::uint32_t s = r.getU32();
        if (s >= plru_bits_.size())
            fatal("cache snapshot PLRU set ", s,
                  " out of range — corrupt checkpoint");
        plru_bits_[s] = r.getU32();
    }
}

bool
CacheArray::tagsUnique() const
{
    for (unsigned set = 0; set < num_sets_; ++set) {
        const CacheLine *base =
            &lines_[static_cast<std::size_t>(set) * assoc_];
        for (unsigned i = 0; i < assoc_; ++i) {
            if (!base[i].valid)
                continue;
            for (unsigned j = i + 1; j < assoc_; ++j) {
                if (base[j].valid && base[j].tag == base[i].tag)
                    return false;
            }
        }
    }
    return true;
}

} // namespace mem
} // namespace ehpsim
