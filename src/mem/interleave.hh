/**
 * @file
 * Physical-address interleaving across HBM stacks and channels.
 *
 * Paper Sec. IV.D: "Every 4KB of sequential physical addresses map to
 * the same HBM stack before moving on to another HBM stack chosen
 * based on a physical address hashing scheme." Within a stack, the
 * page is striped across the stack's channels at a finer granularity.
 *
 * The stack hash is a per-group permutation (XOR of folded upper page
 * bits into the low page bits), which keeps the full mapping
 * address -> (channel, channel-local address) bijective; property
 * tests rely on this.
 *
 * NUMA modes (paper Fig. 17): NPS1 interleaves every page across all
 * stacks; NPS4 splits the address space into four equal ranges, each
 * interleaved across its quadrant's stacks only.
 */

#ifndef EHPSIM_MEM_INTERLEAVE_HH
#define EHPSIM_MEM_INTERLEAVE_HH

#include <cstdint>

#include "sim/types.hh"

namespace ehpsim
{
namespace mem
{

/** NUMA-per-socket mode. */
enum class NumaMode
{
    nps1,   ///< one domain: interleave across all stacks
    nps4,   ///< four domains: quarter address ranges x stack quadrants
};

/** Result of translating a physical address. */
struct ChannelLocation
{
    unsigned stack;         ///< HBM stack index
    unsigned channel;       ///< global channel index
    Addr local;             ///< channel-local byte address
};

class InterleaveMap
{
  public:
    /**
     * @param num_stacks Number of HBM stacks (power of two).
     * @param channels_per_stack Channels per stack (power of two).
     * @param capacity_bytes Total capacity across all stacks.
     * @param mode NUMA interleave mode.
     * @param page_bytes Stack-interleave granularity (default 4 KB).
     * @param stripe_bytes In-page channel stripe (default 256 B).
     */
    InterleaveMap(unsigned num_stacks, unsigned channels_per_stack,
                  std::uint64_t capacity_bytes,
                  NumaMode mode = NumaMode::nps1,
                  std::uint64_t page_bytes = 4096,
                  std::uint64_t stripe_bytes = 256);

    unsigned numStacks() const { return num_stacks_; }

    unsigned channelsPerStack() const { return channels_per_stack_; }

    unsigned numChannels() const
    {
        return num_stacks_ * channels_per_stack_;
    }

    std::uint64_t capacity() const { return capacity_; }

    std::uint64_t pageBytes() const { return page_bytes_; }

    NumaMode mode() const { return mode_; }

    /** Number of NUMA domains implied by the mode. */
    unsigned numDomains() const
    {
        return mode_ == NumaMode::nps1 ? 1 : 4;
    }

    /** NUMA domain owning @p addr. */
    unsigned domainOf(Addr addr) const;

    /** Stack owning the 4 KB page containing @p addr. */
    unsigned stackOf(Addr addr) const;

    /** Full translation of @p addr. */
    ChannelLocation locate(Addr addr) const;

    /** Inverse of locate(); used by bijectivity tests. */
    Addr
    addressOf(unsigned channel, Addr local) const;

  private:
    unsigned num_stacks_;
    unsigned channels_per_stack_;
    std::uint64_t capacity_;
    NumaMode mode_;
    std::uint64_t page_bytes_;
    std::uint64_t stripe_bytes_;
    unsigned stacks_per_domain_;

    /** Fold upper bits of the page group index into a small hash. */
    static unsigned foldHash(std::uint64_t q, unsigned mask);
};

} // namespace mem
} // namespace ehpsim

#endif // EHPSIM_MEM_INTERLEAVE_HH
