/**
 * @file
 * A generic set-associative tag array with pluggable replacement.
 *
 * CacheArray is purely structural (tags + per-line metadata); timing
 * and statistics live in the wrapping cache models. It underpins the
 * GPU L1/L2, CPU L1/L2/L3, and the memory-side Infinity Cache.
 */

#ifndef EHPSIM_MEM_CACHE_ARRAY_HH
#define EHPSIM_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace ehpsim
{

class SnapshotWriter;
class SnapshotReader;

namespace mem
{

/** Replacement policy selection. */
enum class ReplPolicy
{
    lru,        ///< true LRU via access timestamps
    plru,       ///< tree pseudo-LRU
    random,     ///< uniform random victim
};

/** Per-line metadata. */
struct CacheLine
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint8_t state = 0;     ///< coherence state (module-defined)
    std::uint64_t last_use = 0; ///< LRU timestamp
    bool prefetched = false;    ///< filled by a prefetcher
};

class CacheArray
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param assoc Ways per set.
     * @param line_bytes Cache line size.
     * @param policy Replacement policy.
     * @param seed RNG seed (random policy only).
     */
    CacheArray(std::uint64_t size_bytes, unsigned assoc,
               unsigned line_bytes, ReplPolicy policy = ReplPolicy::lru,
               std::uint64_t seed = 1);

    std::uint64_t sizeBytes() const { return size_bytes_; }

    unsigned assoc() const { return assoc_; }

    unsigned lineBytes() const { return line_bytes_; }

    unsigned numSets() const { return num_sets_; }

    /** Line-aligned base address of @p addr. */
    Addr lineAlign(Addr addr) const { return addr & ~line_mask_; }

    /** Set index of @p addr. */
    unsigned setIndex(Addr addr) const;

    /**
     * Look up @p addr; on hit returns the way and updates recency.
     */
    std::optional<unsigned> lookup(Addr addr);

    /** Look up without updating replacement state. */
    std::optional<unsigned> peek(Addr addr) const;

    /** Access a line found by lookup()/insert(). */
    CacheLine &line(Addr addr, unsigned way);

    const CacheLine &line(Addr addr, unsigned way) const;

    /**
     * Insert @p addr, evicting if needed.
     * @return the victim line's previous contents when a valid dirty
     *         or clean line was displaced (for writeback decisions).
     */
    std::optional<CacheLine> insert(Addr addr, bool dirty,
                                    bool prefetched = false);

    /** Invalidate @p addr if present; @return the old line. */
    std::optional<CacheLine> invalidate(Addr addr);

    /** Invalidate everything, returning dirty lines. */
    std::vector<CacheLine> flushAll();

    /** Number of currently valid lines. */
    std::uint64_t numValid() const;

    /** True if no set holds two valid lines with the same tag. */
    bool tagsUnique() const;

    /**
     * @{ Checkpoint the replacement state and the valid lines
     * (DESIGN.md §16). Sparse: only valid lines and nonzero PLRU
     * words are written — a residual field on an invalidated line
     * is never observed (lookup/victimWay gate on valid, insert
     * overwrites every field), so dropping them is behaviorally
     * identical and keeps an untouched multi-MiB array to a few
     * bytes. restore() fatals when the saved geometry disagrees
     * with the configured one.
     */
    void snapshot(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);
    /** @} */

  private:
    unsigned victimWay(unsigned set);

    void touch(CacheLine &line);

    std::uint64_t size_bytes_;
    unsigned assoc_;
    unsigned line_bytes_;
    unsigned num_sets_;
    Addr line_mask_;
    ReplPolicy policy_;
    Rng rng_;
    std::uint64_t use_counter_ = 0;
    std::vector<CacheLine> lines_;          ///< sets * assoc, row-major
    std::vector<std::uint32_t> plru_bits_;  ///< per-set PLRU tree
};

} // namespace mem
} // namespace ehpsim

#endif // EHPSIM_MEM_CACHE_ARRAY_HH
