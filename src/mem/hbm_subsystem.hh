/**
 * @file
 * The full in-package memory system: interleave map + per-channel
 * Infinity Cache slice + HBM channel (paper Sec. IV.D).
 *
 * MI300A: 8 stacks x 16 channels = 128 channels, 128 GB, ~5.3 TB/s
 * HBM peak and up to 17 TB/s from the Infinity Cache. The subsystem
 * is itself a MemDevice: the fabric (or a test) throws addresses at
 * it and the interleave map picks the slice.
 */

#ifndef EHPSIM_MEM_HBM_SUBSYSTEM_HH
#define EHPSIM_MEM_HBM_SUBSYSTEM_HH

#include <memory>
#include <vector>

#include "mem/dram.hh"
#include "mem/infinity_cache.hh"
#include "mem/interleave.hh"
#include "mem/mem_device.hh"

namespace ehpsim
{
namespace mem
{

struct HbmSubsystemParams
{
    unsigned num_stacks = 8;
    unsigned channels_per_stack = 16;
    std::uint64_t capacity_bytes = 128ull * 1024 * 1024 * 1024;
    NumaMode numa = NumaMode::nps1;
    DramParams channel = hbm3ChannelParams();
    InfinityCacheParams cache;          ///< per-channel slice
    bool enable_infinity_cache = true;  ///< MI250X has none
};

class HbmSubsystem : public MemDevice
{
  public:
    HbmSubsystem(SimObject *parent, const std::string &name,
                 const HbmSubsystemParams &params);

    AccessResult access(Tick when, Addr addr, std::uint64_t bytes,
                        bool write) override;

    const InterleaveMap &interleave() const { return map_; }

    const HbmSubsystemParams &params() const { return params_; }

    unsigned numChannels() const { return map_.numChannels(); }

    DramChannel *channel(unsigned i) { return channels_[i].get(); }

    InfinityCacheSlice *slice(unsigned i)
    {
        return params_.enable_infinity_cache ? slices_[i].get()
                                             : nullptr;
    }

    /**
     * Map out @p channel (HBM fault): its traffic re-interleaves
     * onto a surviving stand-in channel — same stack preferred —
     * and peak bandwidth drops accordingly. Fatal on a bad index,
     * a channel that is already dark, or the last live channel.
     */
    void blackoutChannel(unsigned channel);

    bool channelAlive(unsigned channel) const;

    /** Channels still in service. */
    unsigned liveChannels() const { return live_channels_; }

    /** Peak HBM bandwidth across the live channels (bytes/s). */
    BytesPerSecond peakHbmBandwidth() const;

    /** Peak Infinity-Cache bandwidth across the live slices
     *  (bytes/s). */
    BytesPerSecond peakCacheBandwidth() const;

    /** Aggregate achieved bandwidth since construction. */
    double achievedBandwidth(Tick now) const;

    /** Aggregate Infinity-Cache hit rate (0 when disabled). */
    double cacheHitRate() const;

    /** @{ statistics */
    stats::Scalar accesses;
    stats::Scalar total_bytes;
    stats::Scalar channels_dark;
    stats::Scalar remapped_accesses;
    stats::Formula degraded_peak_gbps;
    /** @} */

    /** @{ checkpoint: stats + channel/slice children (base walk),
     *  then the blackout remap table, liveness, and watermarks
     *  (DESIGN.md §16) */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    HbmSubsystemParams params_;
    InterleaveMap map_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    std::vector<std::unique_ptr<InfinityCacheSlice>> slices_;
    /** channel_remap_[c] = live stand-in for channel c (identity
     *  while c is alive). */
    std::vector<unsigned> channel_remap_;
    std::vector<bool> channel_dead_;
    unsigned live_channels_ = 0;
    Tick first_access_ = maxTick;
    Tick last_complete_ = 0;
};

} // namespace mem
} // namespace ehpsim

#endif // EHPSIM_MEM_HBM_SUBSYSTEM_HH
