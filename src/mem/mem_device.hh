/**
 * @file
 * The common timing interface for memory-hierarchy components.
 *
 * ehpsim's memory system uses an atomic-with-occupancy timing model
 * (comparable to gem5's atomic mode plus bandwidth contention): an
 * access is a synchronous call that returns its completion tick, and
 * each device tracks per-resource next-free times so that back-to-back
 * traffic serializes at the device's bandwidth.
 */

#ifndef EHPSIM_MEM_MEM_DEVICE_HH
#define EHPSIM_MEM_MEM_DEVICE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace ehpsim
{
namespace mem
{

/** Outcome of a timed access. */
struct AccessResult
{
    Tick complete = 0;          ///< when the data is available
    bool hit = true;            ///< serviced without the next level
    std::uint64_t bytes_below = 0; ///< bytes moved to/from next level
};

class MemDevice : public SimObject
{
  public:
    using SimObject::SimObject;

    /**
     * Perform a timed access.
     * @param when Earliest tick the request can start.
     * @param addr Physical byte address.
     * @param bytes Request size.
     * @param write True for stores/writebacks.
     */
    virtual AccessResult access(Tick when, Addr addr,
                                std::uint64_t bytes, bool write) = 0;
};

/**
 * A bandwidth-limited resource with backfill.
 *
 * Time is divided into fixed windows, each with a byte budget of
 * bandwidth x window. A transfer starting at @p when consumes budget
 * from its window onward and completes when its last byte fits.
 * Unlike a strict next-free FIFO, a transfer arriving *earlier* than
 * previously-reserved traffic can use leftover budget in earlier
 * windows (backfill), so out-of-order completions upstream do not
 * artificially serialize independent requests — they only contend
 * for bandwidth.
 *
 * Window state lives in dense fixed-size pages indexed from the
 * first window ever touched, not in hash maps: a saturating
 * transfer walks its windows in order, so per-window bookkeeping is
 * two array writes instead of two hash probes, untouched gaps cost
 * one null page pointer, and teardown frees whole pages. This is
 * the fabric hot path (DESIGN.md §12) — a multi-MiB chunk crossing
 * an x16 link consumes ~1k windows per hop, and the old
 * unordered_map storage spent most of comm_allreduce_octo's wall
 * time rehashing. The arithmetic (window budgets, the 1e-6 fullness
 * epsilon, completion rounding) is unchanged, so completion ticks
 * and windowLoads() output are byte-identical to the map-backed
 * tracker.
 */
class OccupancyTracker
{
  public:
    /** @param bytes_per_tick Bandwidth (may be fractional). */
    explicit OccupancyTracker(double bytes_per_tick = 0.0)
    {
        setBandwidth(bytes_per_tick);
    }

    void
    setBandwidth(double bytes_per_tick)
    {
        bytes_per_tick_ = bytes_per_tick;
        if (bytes_per_tick_ > 0.0) {
            // Window sized to carry ~1 KiB, clamped to [1 ns, 1 us].
            double w = 1024.0 / bytes_per_tick_;
            if (w < 1000.0)
                w = 1000.0;
            if (w > 1'000'000.0)
                w = 1'000'000.0;
            window_ = static_cast<Tick>(w);
        } else {
            window_ = 1000;
        }
    }

    double bandwidth() const { return bytes_per_tick_; }

    /**
     * Consume @p bytes of budget starting no earlier than @p when.
     * @return the tick at which the transfer finishes.
     */
    Tick
    occupy(Tick when, std::uint64_t bytes)
    {
        if (bytes_per_tick_ <= 0.0 || bytes == 0)
            return when;
        const double budget =
            bytes_per_tick_ * static_cast<double>(window_);
        std::uint64_t w = when / window_;
        double remaining = static_cast<double>(bytes);

        // The first window only offers the budget left after 'when'.
        {
            const Tick w_end = (w + 1) * window_;
            const double time_avail = static_cast<double>(w_end - when);
            double avail = std::min(time_avail * bytes_per_tick_,
                                    budget - usedAt(w));
            if (avail > 0) {
                const double take = std::min(avail, remaining);
                consume(w, take, budget);
                remaining -= take;
            }
            if (remaining <= 0) {
                const Tick done =
                    when + static_cast<Tick>(
                               static_cast<double>(bytes) /
                               bytes_per_tick_ + 0.5);
                last_done_ = std::max(last_done_, done);
                return done;
            }
            w = findFree(w + 1, budget);
        }
        for (;;) {
            const double avail = budget - usedAt(w);
            const double take = std::min(avail, remaining);
            consume(w, take, budget);
            remaining -= take;
            if (remaining <= 0) {
                const Tick done =
                    w * window_ +
                    static_cast<Tick>(usedAt(w) / bytes_per_tick_);
                last_done_ = std::max(last_done_, done);
                return done;
            }
            w = findFree(w + 1, budget);
        }
    }

    /** Latest completion handed out (diagnostic only). */
    Tick nextFree() const { return last_done_; }

    /**
     * (window start tick, bytes consumed) pairs in ascending window
     * order — the deterministic way to inspect the tracker. Pages
     * are stored in window order, so this is a forward scan that
     * skips windows no transfer ever consumed from.
     */
    std::vector<std::pair<Tick, double>>
    windowLoads() const
    {
        std::vector<std::pair<Tick, double>> out;
        for (std::size_t p = 0; p < pages_.size(); ++p) {
            if (!pages_[p])
                continue;
            const std::uint64_t first =
                (base_page_ + p) << kPageBits;
            for (std::uint64_t k = 0; k < kPageWindows; ++k) {
                const double u = pages_[p]->used[k];
                if (u > 0.0)
                    out.emplace_back((first + k) * window_, u);
            }
        }
        return out;
    }

    /** Bytes consumed across all windows. Sums in window order so
     *  the floating-point total is byte-stable run to run. */
    double
    totalBytes() const
    {
        double sum = 0;
        for (const auto &[start, bytes] : windowLoads())
            sum += bytes;
        return sum;
    }

    void
    reset()
    {
        pages_.clear();
        base_page_ = 0;
        touched_ = false;
        last_done_ = 0;
    }

    /**
     * @{ Checkpoint the consumed-budget windows (DESIGN.md §16).
     * Skip chains are a pure accelerator over full windows and are
     * deliberately not saved: findFree() answers identically from
     * the used values alone and rebuilds the chains as it walks.
     * window_ is saved explicitly (not recomputed) because a
     * derated link re-derives it through setBandwidth().
     */
    void
    snapshot(SnapshotWriter &w) const
    {
        w.putF64(bytes_per_tick_);
        w.putU64(window_);
        w.putU64(last_done_);
        w.putBool(touched_);
        w.putU64(base_page_);
        // occupy(when) only ever scans forward from when/window_,
        // and no event scheduled at or after the save tick can pass
        // when < horizon, so windows that end at or before the
        // horizon can never be read again — drop them. A warmed
        // link's history otherwise dominates the checkpoint (the
        // sweep fast-forward blob shrank ~100x, DESIGN.md §16);
        // post-restore behavior is byte-identical either way since
        // nothing downstream reads retired windows.
        const std::uint64_t keep_from = w.horizon() / window_;
        auto loads = windowLoads();
        std::erase_if(loads, [&](const auto &e) {
            return e.first / window_ < keep_from;
        });
        w.putU64(loads.size());
        for (const auto &[start, used] : loads) {
            w.putU64(start / window_);
            w.putF64(used);
        }
    }

    void
    restore(SnapshotReader &r)
    {
        pages_.clear();
        bytes_per_tick_ = r.getF64();
        window_ = r.getU64();
        last_done_ = r.getU64();
        touched_ = r.getBool();
        base_page_ = r.getU64();
        const auto n = r.getU64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t win = r.getU64();
            const double used = r.getF64();
            pageFor(win).used[win & kPageMask] = used;
        }
    }
    /** @} */

  private:
    /** Windows per page; pages are the allocation grain. */
    static constexpr std::uint64_t kPageBits = 9;
    static constexpr std::uint64_t kPageWindows = 1ull << kPageBits;
    static constexpr std::uint64_t kPageMask = kPageWindows - 1;

    /**
     * One page of window state. @c skip holds the path-compressed
     * chain over full windows: 0 means "no entry" (stored targets
     * are always > their window index, so 0 is never a live value).
     */
    struct Page
    {
        std::array<double, kPageWindows> used{};
        std::array<std::uint64_t, kPageWindows> skip{};
    };

    /** The page holding window @p w, allocating it (and any page
     *  table growth, including in front of the first touch) on
     *  demand. */
    Page &
    pageFor(std::uint64_t w)
    {
        const std::uint64_t p = w >> kPageBits;
        if (!touched_) {
            base_page_ = p;
            touched_ = true;
        }
        if (p < base_page_) {
            const std::uint64_t add = base_page_ - p;
            std::vector<std::unique_ptr<Page>> grown(pages_.size() +
                                                     add);
            std::move(pages_.begin(), pages_.end(),
                      grown.begin() + add);
            pages_ = std::move(grown);
            base_page_ = p;
        }
        const std::uint64_t idx = p - base_page_;
        if (idx >= pages_.size())
            pages_.resize(idx + 1);
        if (!pages_[idx])
            pages_[idx] = std::make_unique<Page>();
        return *pages_[idx];
    }

    /** The page holding window @p w, or nullptr if never touched. */
    const Page *
    peekPage(std::uint64_t w) const
    {
        const std::uint64_t p = w >> kPageBits;
        if (!touched_ || p < base_page_ ||
            p - base_page_ >= pages_.size()) {
            return nullptr;
        }
        return pages_[p - base_page_].get();
    }

    double
    usedAt(std::uint64_t w) const
    {
        const Page *p = peekPage(w);
        return p ? p->used[w & kPageMask] : 0.0;
    }

    std::uint64_t
    skipAt(std::uint64_t w) const
    {
        const Page *p = peekPage(w);
        return p ? p->skip[w & kPageMask] : 0;
    }

    /**
     * First window at or after @p w with free budget, following the
     * path-compressed skip chain over full windows.
     */
    std::uint64_t
    findFree(std::uint64_t w, double budget)
    {
        // Walk the chain.
        std::uint64_t cur = w;
        for (;;) {
            const std::uint64_t s = skipAt(cur);
            std::uint64_t next = s == 0 ? cur : s;
            if (next == cur) {
                if (usedAt(cur) < budget - 1e-6)
                    break;
                next = cur + 1;
            }
            cur = next;
        }
        // Path-compress: point every visited window at the answer.
        // Every compressed window was full, so its page exists.
        std::uint64_t walk = w;
        while (walk < cur) {
            const std::uint64_t s = skipAt(walk);
            const std::uint64_t next = s == 0 ? walk + 1 : s;
            pageFor(walk).skip[walk & kPageMask] = cur;
            walk = next;
        }
        return cur;
    }

    /** Record usage; mark the window full in the skip chain. */
    void
    consume(std::uint64_t w, double take, double budget)
    {
        Page &p = pageFor(w);
        double &u = p.used[w & kPageMask];
        u += take;
        if (u >= budget - 1e-6)
            p.skip[w & kPageMask] = w + 1;
    }

    double bytes_per_tick_ = 0.0;
    Tick window_ = 1000;
    /** Page table; index 0 is @c base_page_ (first page touched). */
    std::vector<std::unique_ptr<Page>> pages_;
    std::uint64_t base_page_ = 0;
    bool touched_ = false;
    Tick last_done_ = 0;
};

} // namespace mem
} // namespace ehpsim

#endif // EHPSIM_MEM_MEM_DEVICE_HH
