/**
 * @file
 * The common timing interface for memory-hierarchy components.
 *
 * ehpsim's memory system uses an atomic-with-occupancy timing model
 * (comparable to gem5's atomic mode plus bandwidth contention): an
 * access is a synchronous call that returns its completion tick, and
 * each device tracks per-resource next-free times so that back-to-back
 * traffic serializes at the device's bandwidth.
 */

#ifndef EHPSIM_MEM_MEM_DEVICE_HH
#define EHPSIM_MEM_MEM_DEVICE_HH

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/ordered.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace ehpsim
{
namespace mem
{

/** Outcome of a timed access. */
struct AccessResult
{
    Tick complete = 0;          ///< when the data is available
    bool hit = true;            ///< serviced without the next level
    std::uint64_t bytes_below = 0; ///< bytes moved to/from next level
};

class MemDevice : public SimObject
{
  public:
    using SimObject::SimObject;

    /**
     * Perform a timed access.
     * @param when Earliest tick the request can start.
     * @param addr Physical byte address.
     * @param bytes Request size.
     * @param write True for stores/writebacks.
     */
    virtual AccessResult access(Tick when, Addr addr,
                                std::uint64_t bytes, bool write) = 0;
};

/**
 * A bandwidth-limited resource with backfill.
 *
 * Time is divided into fixed windows, each with a byte budget of
 * bandwidth x window. A transfer starting at @p when consumes budget
 * from its window onward and completes when its last byte fits.
 * Unlike a strict next-free FIFO, a transfer arriving *earlier* than
 * previously-reserved traffic can use leftover budget in earlier
 * windows (backfill), so out-of-order completions upstream do not
 * artificially serialize independent requests — they only contend
 * for bandwidth.
 */
class OccupancyTracker
{
  public:
    /** @param bytes_per_tick Bandwidth (may be fractional). */
    explicit OccupancyTracker(double bytes_per_tick = 0.0)
    {
        setBandwidth(bytes_per_tick);
    }

    void
    setBandwidth(double bytes_per_tick)
    {
        bytes_per_tick_ = bytes_per_tick;
        if (bytes_per_tick_ > 0.0) {
            // Window sized to carry ~1 KiB, clamped to [1 ns, 1 us].
            double w = 1024.0 / bytes_per_tick_;
            if (w < 1000.0)
                w = 1000.0;
            if (w > 1'000'000.0)
                w = 1'000'000.0;
            window_ = static_cast<Tick>(w);
        } else {
            window_ = 1000;
        }
    }

    double bandwidth() const { return bytes_per_tick_; }

    /**
     * Consume @p bytes of budget starting no earlier than @p when.
     * @return the tick at which the transfer finishes.
     */
    Tick
    occupy(Tick when, std::uint64_t bytes)
    {
        if (bytes_per_tick_ <= 0.0 || bytes == 0)
            return when;
        const double budget =
            bytes_per_tick_ * static_cast<double>(window_);
        std::uint64_t w = when / window_;
        double remaining = static_cast<double>(bytes);

        // The first window only offers the budget left after 'when'.
        {
            const Tick w_end = (w + 1) * window_;
            const double time_avail = static_cast<double>(w_end - when);
            double avail = std::min(time_avail * bytes_per_tick_,
                                    budget - used_[w]);
            if (avail > 0) {
                const double take = std::min(avail, remaining);
                consume(w, take, budget);
                remaining -= take;
            }
            if (remaining <= 0) {
                const Tick done =
                    when + static_cast<Tick>(
                               static_cast<double>(bytes) /
                               bytes_per_tick_ + 0.5);
                last_done_ = std::max(last_done_, done);
                return done;
            }
            w = findFree(w + 1, budget);
        }
        for (;;) {
            const double avail = budget - used_[w];
            const double take = std::min(avail, remaining);
            consume(w, take, budget);
            remaining -= take;
            if (remaining <= 0) {
                const Tick done =
                    w * window_ +
                    static_cast<Tick>(used_[w] / bytes_per_tick_);
                last_done_ = std::max(last_done_, done);
                return done;
            }
            w = findFree(w + 1, budget);
        }
    }

    /** Latest completion handed out (diagnostic only). */
    Tick nextFree() const { return last_done_; }

    /**
     * (window start tick, bytes consumed) pairs in ascending window
     * order — the deterministic way to inspect the tracker. The
     * backing maps are unordered and must never be iterated
     * directly by anything that feeds stats or JSON output.
     */
    std::vector<std::pair<Tick, double>>
    windowLoads() const
    {
        std::vector<std::pair<Tick, double>> out;
        out.reserve(used_.size());
        for (const std::uint64_t w : sortedKeys(used_))
            out.emplace_back(w * window_, used_.at(w));
        return out;
    }

    /** Bytes consumed across all windows. Sums in window order so
     *  the floating-point total is byte-stable run to run. */
    double
    totalBytes() const
    {
        double sum = 0;
        for (const auto &[start, bytes] : windowLoads())
            sum += bytes;
        return sum;
    }

    void
    reset()
    {
        used_.clear();
        skip_.clear();
        last_done_ = 0;
    }

  private:
    /**
     * First window at or after @p w with free budget, following the
     * path-compressed skip chain over full windows.
     */
    std::uint64_t
    findFree(std::uint64_t w, double budget)
    {
        // Walk the chain.
        std::uint64_t cur = w;
        for (;;) {
            auto it = skip_.find(cur);
            std::uint64_t next = it == skip_.end() ? cur : it->second;
            if (next == cur) {
                auto used_it = used_.find(cur);
                if (used_it == used_.end() ||
                    used_it->second < budget - 1e-6) {
                    break;
                }
                next = cur + 1;
            }
            cur = next;
        }
        // Path-compress: point every visited window at the answer.
        std::uint64_t walk = w;
        while (walk < cur) {
            auto it = skip_.find(walk);
            const std::uint64_t next =
                it == skip_.end() ? walk + 1 : it->second;
            skip_[walk] = cur;
            walk = next;
        }
        return cur;
    }

    /** Record usage; mark the window full in the skip chain. */
    void
    consume(std::uint64_t w, double take, double budget)
    {
        double &u = used_[w];
        u += take;
        if (u >= budget - 1e-6)
            skip_[w] = w + 1;
    }

    double bytes_per_tick_ = 0.0;
    Tick window_ = 1000;
    std::unordered_map<std::uint64_t, double> used_;
    std::unordered_map<std::uint64_t, std::uint64_t> skip_;
    Tick last_done_ = 0;
};

} // namespace mem
} // namespace ehpsim

#endif // EHPSIM_MEM_MEM_DEVICE_HH
