#include "mem/dram.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace mem
{

DramParams
hbm3ChannelParams()
{
    DramParams p;
    p.bandwidth = gbps(41.4);   // 5.3 TB/s over 128 channels
    p.access_latency = 120'000;
    p.num_banks = 16;
    p.t_rc = 45'000;
    p.row_bytes = 1024;
    return p;
}

DramParams
hbm2eChannelParams()
{
    DramParams p;
    p.bandwidth = gbps(50.3);   // 3.2 TB/s over 64 channels
    p.access_latency = 130'000;
    p.num_banks = 16;
    p.t_rc = 45'000;
    p.row_bytes = 1024;
    return p;
}

DramParams
ddr5ChannelParams()
{
    DramParams p;
    p.bandwidth = gbps(38.4);   // DDR5-4800 channel
    p.access_latency = 90'000;
    p.num_banks = 32;
    p.t_rc = 46'000;
    p.row_bytes = 8192;
    return p;
}

DramChannel::DramChannel(SimObject *parent, const std::string &name,
                         const DramParams &params)
    : MemDevice(parent, name),
      reads(this, "reads", "read requests"),
      writes(this, "writes", "write requests"),
      bytes_served(this, "bytes_served", "total bytes transferred"),
      bank_conflicts(this, "bank_conflicts",
                     "requests delayed by a busy bank"),
      params_(params),
      bus_(params.bandwidth / static_cast<double>(ticksPerSecond)),
      bank_free_(params.num_banks, 0),
      bank_open_(params.num_banks, false),
      open_row_(params.num_banks, 0)
{
}

AccessResult
DramChannel::access(Tick when, Addr addr, std::uint64_t bytes,
                    bool write)
{
    if (write)
        ++writes;
    else
        ++reads;
    bytes_served += static_cast<double>(bytes);
    first_access_ = std::min(first_access_, when);

    // Bank model with open-row awareness: a row hit proceeds
    // immediately; activating a new row waits for the bank's
    // row-cycle time from its previous activation.
    const std::uint64_t row = addr / params_.row_bytes;
    const unsigned bank =
        static_cast<unsigned>(row % params_.num_banks);
    Tick start = when;
    const bool row_hit = bank_open_[bank] && open_row_[bank] == row;
    if (!row_hit) {
        if (bank_free_[bank] > start) {
            ++bank_conflicts;
            start = bank_free_[bank];
        }
        bank_free_[bank] = start + params_.t_rc;
        bank_open_[bank] = true;
        open_row_[bank] = row;
    }

    // The data bus serializes the payload.
    const Tick bus_done = bus_.occupy(start, bytes);
    const Tick complete = bus_done + params_.access_latency;
    last_complete_ = std::max(last_complete_, complete);

    AccessResult res;
    res.complete = complete;
    res.hit = true;
    res.bytes_below = 0;
    return res;
}

void
DramChannel::snapshot(SnapshotWriter &w) const
{
    StatGroup::snapshot(w);
    bus_.snapshot(w);
    w.putU32(params_.num_banks);
    for (unsigned b = 0; b < params_.num_banks; ++b) {
        w.putU64(bank_free_[b]);
        w.putBool(bank_open_[b]);
        w.putU64(open_row_[b]);
    }
    w.putU64(first_access_);
    w.putU64(last_complete_);
}

void
DramChannel::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    bus_.restore(r);
    const std::uint32_t banks = r.getU32();
    if (banks != params_.num_banks) {
        fatal(name(), ": snapshot saved with ", banks,
              " banks but channel configured with ",
              params_.num_banks, " — checkpoint/config mismatch");
    }
    for (unsigned b = 0; b < params_.num_banks; ++b) {
        bank_free_[b] = r.getU64();
        bank_open_[b] = r.getBool();
        open_row_[b] = r.getU64();
    }
    first_access_ = r.getU64();
    last_complete_ = r.getU64();
}

double
DramChannel::achievedBandwidth(Tick now) const
{
    const Tick start = first_access_ == maxTick ? 0 : first_access_;
    const Tick end = std::max(now, last_complete_);
    if (end <= start)
        return 0.0;
    return bytes_served.value() / secondsFromTicks(end - start);
}

} // namespace mem
} // namespace ehpsim
