/**
 * @file
 * Memory-side Infinity Cache slice (paper Sec. IV.D).
 *
 * Each of the 128 HBM channels pairs with a 2 MB slice. Because the
 * cache is memory-side it is non-coherent (it never receives probes):
 * every request to the channel flows through its slice, so the slice
 * always holds the latest data. The slice adds a next-line hardware
 * prefetcher and provides bandwidth amplification: hits are served at
 * the cache's higher bandwidth (up to 17 TB/s aggregate vs 5.3 TB/s
 * HBM).
 */

#ifndef EHPSIM_MEM_INFINITY_CACHE_HH
#define EHPSIM_MEM_INFINITY_CACHE_HH

#include "mem/cache_array.hh"
#include "mem/mem_device.hh"
#include "sim/units.hh"

namespace ehpsim
{
namespace mem
{

struct InfinityCacheParams
{
    std::uint64_t size_bytes = 2 * 1024 * 1024;  ///< 2 MB per slice
    unsigned assoc = 16;
    unsigned line_bytes = 128;
    Tick hit_latency = 25'000;              ///< ps
    BytesPerSecond hit_bandwidth = gbps(132.8); ///< 17 TB/s / 128
    unsigned prefetch_depth = 2;            ///< next-line prefetches
};

class InfinityCacheSlice : public MemDevice
{
  public:
    InfinityCacheSlice(SimObject *parent, const std::string &name,
                       const InfinityCacheParams &params,
                       MemDevice *channel);

    AccessResult access(Tick when, Addr addr, std::uint64_t bytes,
                        bool write) override;

    const InfinityCacheParams &params() const { return params_; }

    const CacheArray &array() const { return array_; }

    double
    hitRate() const
    {
        const double a = hits.value() + misses.value();
        return a > 0 ? hits.value() / a : 0.0;
    }

    /**
     * Bandwidth amplification factor: bytes served to requestors per
     * byte fetched from the HBM channel.
     */
    double amplification() const;

    /** @{ statistics */
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar prefetch_issued;
    stats::Scalar prefetch_hits;   ///< demand hits on prefetched lines
    stats::Scalar writebacks;
    stats::Scalar bytes_served;
    stats::Scalar bytes_from_hbm;
    /** @} */

    /** @{ checkpoint: stats (base) + tag array contents and the
     *  port occupancy windows (DESIGN.md §16) */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    InfinityCacheParams params_;
    CacheArray array_;
    MemDevice *channel_;
    OccupancyTracker port_;
};

} // namespace mem
} // namespace ehpsim

#endif // EHPSIM_MEM_INFINITY_CACHE_HH
