#include "mem/infinity_cache.hh"

#include <algorithm>

namespace ehpsim
{
namespace mem
{

InfinityCacheSlice::InfinityCacheSlice(SimObject *parent,
                                       const std::string &name,
                                       const InfinityCacheParams &params,
                                       MemDevice *channel)
    : MemDevice(parent, name),
      hits(this, "hits", "demand hits"),
      misses(this, "misses", "demand misses"),
      prefetch_issued(this, "prefetch_issued", "prefetches issued"),
      prefetch_hits(this, "prefetch_hits",
                    "demand hits on prefetched lines"),
      writebacks(this, "writebacks", "dirty victim writebacks to HBM"),
      bytes_served(this, "bytes_served", "bytes served to requestors"),
      bytes_from_hbm(this, "bytes_from_hbm",
                     "bytes moved between slice and HBM channel"),
      params_(params),
      array_(params.size_bytes, params.assoc, params.line_bytes,
             ReplPolicy::lru),
      channel_(channel),
      port_(params.hit_bandwidth / static_cast<double>(ticksPerSecond))
{
}

AccessResult
InfinityCacheSlice::access(Tick when, Addr addr, std::uint64_t bytes,
                           bool write)
{
    bytes_served += static_cast<double>(bytes);

    const unsigned line = params_.line_bytes;
    const Addr first = array_.lineAlign(addr);
    const Addr last = array_.lineAlign(addr + bytes - 1);

    AccessResult res;
    res.hit = true;
    Tick complete = when;

    for (Addr la = first;; la += line) {
        const Tick issue =
            port_.occupy(when, line) + params_.hit_latency;
        Tick line_done = issue;
        if (auto way = array_.lookup(la)) {
            ++hits;
            CacheLine &l = array_.line(la, *way);
            if (l.prefetched) {
                ++prefetch_hits;
                l.prefetched = false;
            }
            if (write)
                l.dirty = true;
        } else {
            ++misses;
            res.hit = false;
            // Fetch the line from HBM (even writes fill: memory-side
            // caches absorb partial-line writes by read-modify-write).
            auto r = channel_->access(issue, la, line, false);
            bytes_from_hbm += line;
            res.bytes_below += line;
            line_done = r.complete;
            auto victim = array_.insert(la, write);
            if (victim && victim->dirty) {
                // The writeback enters the channel queue right behind
                // the fetch; issuing it at the (later) response time
                // would reserve the bus in the future and stall
                // earlier-arriving demands.
                ++writebacks;
                channel_->access(issue, victim->tag, line, true);
                bytes_from_hbm += line;
                res.bytes_below += line;
            }
            // Next-line hardware prefetch (paper Sec. IV.D): queued
            // behind the demand fetch, off the critical path.
            Addr pf = la + line;
            for (unsigned d = 0; d < params_.prefetch_depth; ++d) {
                if (!array_.peek(pf)) {
                    ++prefetch_issued;
                    channel_->access(issue, pf, line, false);
                    bytes_from_hbm += line;
                    auto pf_victim = array_.insert(pf, false, true);
                    if (pf_victim && pf_victim->dirty) {
                        ++writebacks;
                        channel_->access(issue, pf_victim->tag,
                                         line, true);
                        bytes_from_hbm += line;
                    }
                }
                pf += line;
            }
        }
        complete = std::max(complete, line_done);
        if (la == last)
            break;
    }
    res.complete = complete;
    return res;
}

void
InfinityCacheSlice::snapshot(SnapshotWriter &w) const
{
    StatGroup::snapshot(w);
    array_.snapshot(w);
    port_.snapshot(w);
}

void
InfinityCacheSlice::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    array_.restore(r);
    port_.restore(r);
}

double
InfinityCacheSlice::amplification() const
{
    const double below = bytes_from_hbm.value();
    return below > 0 ? bytes_served.value() / below : 1.0;
}

} // namespace mem
} // namespace ehpsim
