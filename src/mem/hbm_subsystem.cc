#include "mem/hbm_subsystem.hh"

#include <algorithm>

#include "sim/access_tracker.hh"
#include "sim/logging.hh"

namespace ehpsim
{
namespace mem
{

HbmSubsystem::HbmSubsystem(SimObject *parent, const std::string &name,
                           const HbmSubsystemParams &params)
    : MemDevice(parent, name),
      accesses(this, "accesses", "requests routed"),
      total_bytes(this, "total_bytes", "bytes routed"),
      channels_dark(this, "channels_dark",
                    "HBM channels mapped out by faults"),
      remapped_accesses(this, "remapped_accesses",
                        "accesses redirected off dark channels"),
      degraded_peak_gbps(this, "degraded_peak_gbps",
                         "surviving peak HBM bandwidth, GB/s",
                         [this] { return peakHbmBandwidth() / 1e9; }),
      params_(params),
      map_(params.num_stacks, params.channels_per_stack,
           params.capacity_bytes, params.numa)
{
    const unsigned n = map_.numChannels();
    channels_.reserve(n);
    slices_.reserve(n);
    channel_remap_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        channels_.push_back(std::make_unique<DramChannel>(
            this, "ch" + std::to_string(i), params.channel));
        if (params.enable_infinity_cache) {
            slices_.push_back(std::make_unique<InfinityCacheSlice>(
                this, "mall" + std::to_string(i), params.cache,
                channels_.back().get()));
        }
        channel_remap_.push_back(i);
    }
    channel_dead_.assign(n, false);
    live_channels_ = n;
}

void
HbmSubsystem::blackoutChannel(unsigned channel)
{
    if (channel >= numChannels())
        fatal(name(), ": no HBM channel ", channel, " (",
              numChannels(), " channels)");
    if (channel_dead_[channel])
        fatal(name(), ": HBM channel ", channel, " already dark");
    if (live_channels_ == 1)
        fatal(name(), ": cannot blackout the last live HBM channel");
    // The interleave remap below redirects every subsequent access;
    // a same-tick accessor would see remap-order-dependent timing.
    EHPSIM_TRACK_WRITE(this, "channels");
    channel_dead_[channel] = true;
    --live_channels_;
    ++channels_dark;

    // Re-point every dark channel at a live stand-in: the next live
    // channel in the same stack if one survives, otherwise the next
    // live channel overall. Deterministic, so the remap (and every
    // access it redirects) is identical across runs.
    const unsigned n = numChannels();
    const unsigned cps = map_.channelsPerStack();
    for (unsigned c = 0; c < n; ++c) {
        if (!channel_dead_[c]) {
            channel_remap_[c] = c;
            continue;
        }
        unsigned target = c;
        const unsigned stack = c / cps;
        const unsigned local = c % cps;
        for (unsigned off = 1; off < cps; ++off) {
            const unsigned cand = stack * cps + (local + off) % cps;
            if (!channel_dead_[cand]) {
                target = cand;
                break;
            }
        }
        if (channel_dead_[target]) {
            for (unsigned off = 1; off < n; ++off) {
                const unsigned cand = (c + off) % n;
                if (!channel_dead_[cand]) {
                    target = cand;
                    break;
                }
            }
        }
        channel_remap_[c] = target;
    }
}

bool
HbmSubsystem::channelAlive(unsigned channel) const
{
    return channel < numChannels() && !channel_dead_[channel];
}

AccessResult
HbmSubsystem::access(Tick when, Addr addr, std::uint64_t bytes,
                     bool write)
{
    ++accesses;
    total_bytes += static_cast<double>(bytes);
    first_access_ = std::min(first_access_, when);

    // Split the request at stripe boundaries so each piece lands on
    // one channel. For cache-line traffic (<= stripe) this is one
    // piece; larger requests fan out across channels.
    AccessResult res;
    res.hit = true;
    Tick complete = when;
    Addr a = addr;
    std::uint64_t remaining = bytes;
    const std::uint64_t stripe = 256;
    while (remaining > 0) {
        const std::uint64_t in_stripe = stripe - (a % stripe);
        const std::uint64_t chunk = std::min(remaining, in_stripe);
        const ChannelLocation loc = map_.locate(a);
        const unsigned ch = channel_remap_[loc.channel];
        if (ch != loc.channel)
            ++remapped_accesses;
        AccessResult r;
        if (params_.enable_infinity_cache) {
            r = slices_[ch]->access(when, loc.local, chunk, write);
        } else {
            r = channels_[ch]->access(when, loc.local, chunk, write);
        }
        res.hit = res.hit && r.hit;
        res.bytes_below += r.bytes_below;
        complete = std::max(complete, r.complete);
        a += chunk;
        remaining -= chunk;
    }
    res.complete = complete;
    last_complete_ = std::max(last_complete_, complete);
    return res;
}

void
HbmSubsystem::snapshot(SnapshotWriter &w) const
{
    StatGroup::snapshot(w);
    const unsigned n = numChannels();
    w.putU32(n);
    for (unsigned c = 0; c < n; ++c) {
        w.putU32(channel_remap_[c]);
        w.putBool(channel_dead_[c]);
    }
    w.putU32(live_channels_);
    w.putU64(first_access_);
    w.putU64(last_complete_);
}

void
HbmSubsystem::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    const std::uint32_t n = r.getU32();
    if (n != numChannels()) {
        fatal(name(), ": snapshot saved with ", n,
              " HBM channels but configured with ", numChannels(),
              " — checkpoint/config mismatch");
    }
    for (unsigned c = 0; c < n; ++c) {
        channel_remap_[c] = r.getU32();
        channel_dead_[c] = r.getBool();
    }
    live_channels_ = r.getU32();
    first_access_ = r.getU64();
    last_complete_ = r.getU64();
}

BytesPerSecond
HbmSubsystem::peakHbmBandwidth() const
{
    return params_.channel.bandwidth * live_channels_;
}

BytesPerSecond
HbmSubsystem::peakCacheBandwidth() const
{
    if (!params_.enable_infinity_cache)
        return peakHbmBandwidth();
    return params_.cache.hit_bandwidth * live_channels_;
}

double
HbmSubsystem::achievedBandwidth(Tick now) const
{
    const Tick start = first_access_ == maxTick ? 0 : first_access_;
    const Tick end = std::max(now, last_complete_);
    if (end <= start)
        return 0.0;
    return total_bytes.value() / secondsFromTicks(end - start);
}

double
HbmSubsystem::cacheHitRate() const
{
    if (!params_.enable_infinity_cache)
        return 0.0;
    double h = 0, m = 0;
    for (const auto &s : slices_) {
        h += s->hits.value();
        m += s->misses.value();
    }
    const double a = h + m;
    return a > 0 ? h / a : 0.0;
}

} // namespace mem
} // namespace ehpsim
