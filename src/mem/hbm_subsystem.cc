#include "mem/hbm_subsystem.hh"

#include <algorithm>

namespace ehpsim
{
namespace mem
{

HbmSubsystem::HbmSubsystem(SimObject *parent, const std::string &name,
                           const HbmSubsystemParams &params)
    : MemDevice(parent, name),
      accesses(this, "accesses", "requests routed"),
      total_bytes(this, "total_bytes", "bytes routed"),
      params_(params),
      map_(params.num_stacks, params.channels_per_stack,
           params.capacity_bytes, params.numa)
{
    const unsigned n = map_.numChannels();
    channels_.reserve(n);
    slices_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        channels_.push_back(std::make_unique<DramChannel>(
            this, "ch" + std::to_string(i), params.channel));
        if (params.enable_infinity_cache) {
            slices_.push_back(std::make_unique<InfinityCacheSlice>(
                this, "mall" + std::to_string(i), params.cache,
                channels_.back().get()));
        }
    }
}

AccessResult
HbmSubsystem::access(Tick when, Addr addr, std::uint64_t bytes,
                     bool write)
{
    ++accesses;
    total_bytes += static_cast<double>(bytes);
    first_access_ = std::min(first_access_, when);

    // Split the request at stripe boundaries so each piece lands on
    // one channel. For cache-line traffic (<= stripe) this is one
    // piece; larger requests fan out across channels.
    AccessResult res;
    res.hit = true;
    Tick complete = when;
    Addr a = addr;
    std::uint64_t remaining = bytes;
    const std::uint64_t stripe = 256;
    while (remaining > 0) {
        const std::uint64_t in_stripe = stripe - (a % stripe);
        const std::uint64_t chunk = std::min(remaining, in_stripe);
        const ChannelLocation loc = map_.locate(a);
        AccessResult r;
        if (params_.enable_infinity_cache) {
            r = slices_[loc.channel]->access(when, loc.local, chunk,
                                             write);
        } else {
            r = channels_[loc.channel]->access(when, loc.local, chunk,
                                               write);
        }
        res.hit = res.hit && r.hit;
        res.bytes_below += r.bytes_below;
        complete = std::max(complete, r.complete);
        a += chunk;
        remaining -= chunk;
    }
    res.complete = complete;
    last_complete_ = std::max(last_complete_, complete);
    return res;
}

BytesPerSecond
HbmSubsystem::peakHbmBandwidth() const
{
    return params_.channel.bandwidth * map_.numChannels();
}

BytesPerSecond
HbmSubsystem::peakCacheBandwidth() const
{
    if (!params_.enable_infinity_cache)
        return peakHbmBandwidth();
    return params_.cache.hit_bandwidth * map_.numChannels();
}

double
HbmSubsystem::achievedBandwidth(Tick now) const
{
    const Tick start = first_access_ == maxTick ? 0 : first_access_;
    const Tick end = std::max(now, last_complete_);
    if (end <= start)
        return 0.0;
    return total_bytes.value() / secondsFromTicks(end - start);
}

double
HbmSubsystem::cacheHitRate() const
{
    if (!params_.enable_infinity_cache)
        return 0.0;
    double h = 0, m = 0;
    for (const auto &s : slices_) {
        h += s->hits.value();
        m += s->misses.value();
    }
    const double a = h + m;
    return a > 0 ? h / a : 0.0;
}

} // namespace mem
} // namespace ehpsim
