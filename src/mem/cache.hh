/**
 * @file
 * A timed set-associative cache level built on CacheArray.
 *
 * Used for the GPU L1D (32 KB, 128 B lines), shared instruction
 * caches, XCD L2 (4 MB), CPU L1/L2/L3, and as the base of the
 * Infinity Cache slices. Misses recurse into the next level
 * (another MemDevice), writebacks of dirty victims are issued as
 * writes below, and all traffic is accounted in stats.
 */

#ifndef EHPSIM_MEM_CACHE_HH
#define EHPSIM_MEM_CACHE_HH

#include "mem/cache_array.hh"
#include "mem/mem_device.hh"

namespace ehpsim
{
namespace mem
{

/** Static configuration for a Cache. */
struct CacheParams
{
    std::uint64_t size_bytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned line_bytes = 128;
    Cycles latency_cycles = 4;          ///< hit latency
    double clock_ghz = 2.0;             ///< clock for latency/bandwidth
    double bytes_per_cycle = 64;        ///< port bandwidth
    ReplPolicy policy = ReplPolicy::lru;
    bool write_through = false;         ///< else write-back
    bool write_allocate = true;
};

class Cache : public MemDevice
{
  public:
    Cache(SimObject *parent, const std::string &name,
          const CacheParams &params, MemDevice *below);

    AccessResult access(Tick when, Addr addr, std::uint64_t bytes,
                        bool write) override;

    /** Invalidate a single line (coherence probe). */
    void probeInvalidate(Addr addr);

    /** Writeback+invalidate everything (GPU release at device scope). */
    std::uint64_t flush(Tick when);

    const CacheArray &array() const { return array_; }

    const CacheParams &params() const { return params_; }

    double
    hitRate() const
    {
        const double a = hits.value() + misses.value();
        return a > 0 ? hits.value() / a : 0.0;
    }

    MemDevice *below() const { return below_; }

    /** @{ statistics */
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar writebacks;
    stats::Scalar bytes_read;
    stats::Scalar bytes_written;
    stats::Scalar probe_invalidations;
    /** @} */

  protected:
    Tick latencyTicks() const { return latency_ticks_; }

    CacheParams params_;
    CacheArray array_;
    MemDevice *below_;
    OccupancyTracker port_;
    Tick latency_ticks_;
};

} // namespace mem
} // namespace ehpsim

#endif // EHPSIM_MEM_CACHE_HH
