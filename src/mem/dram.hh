/**
 * @file
 * Coarse DRAM channel timing models: HBM and DDR.
 *
 * A DramChannel serves line-granular requests with a fixed access
 * latency, a serializing data bus (channel bandwidth), and a small
 * bank model: each bank is busy for tRC after being activated, so
 * pathological same-bank streams degrade below peak bandwidth while
 * well-interleaved streams reach it.
 */

#ifndef EHPSIM_MEM_DRAM_HH
#define EHPSIM_MEM_DRAM_HH

#include <vector>

#include "mem/mem_device.hh"
#include "sim/units.hh"

namespace ehpsim
{
namespace mem
{

struct DramParams
{
    BytesPerSecond bandwidth = gbps(41.4); ///< per-channel peak
    Tick access_latency = 120'000;         ///< ps; ~120 ns loaded
    unsigned num_banks = 16;
    Tick t_rc = 45'000;                    ///< ps; row-cycle time
    std::uint64_t row_bytes = 1024;        ///< bank row granularity
};

/** HBM3-class channel defaults (MI300A: 5.3 TB/s / 128 channels). */
DramParams hbm3ChannelParams();

/** HBM2e-class channel defaults (MI250X: 3.2 TB/s / 64 channels). */
DramParams hbm2eChannelParams();

/** DDR5-class channel defaults (EPYC host memory). */
DramParams ddr5ChannelParams();

class DramChannel : public MemDevice
{
  public:
    DramChannel(SimObject *parent, const std::string &name,
                const DramParams &params);

    AccessResult access(Tick when, Addr addr, std::uint64_t bytes,
                        bool write) override;

    const DramParams &params() const { return params_; }

    /** Achieved bandwidth over the channel's lifetime. */
    double achievedBandwidth(Tick now) const;

    /** @{ statistics */
    stats::Scalar reads;
    stats::Scalar writes;
    stats::Scalar bytes_served;
    stats::Scalar bank_conflicts;
    /** @} */

    /** @{ checkpoint: stats (base) + bus windows, per-bank timing
     *  and open-row state, and the lifetime watermarks
     *  (DESIGN.md §16) */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    DramParams params_;
    OccupancyTracker bus_;
    std::vector<Tick> bank_free_;
    std::vector<bool> bank_open_;
    std::vector<std::uint64_t> open_row_;
    Tick first_access_ = maxTick;
    Tick last_complete_ = 0;
};

} // namespace mem
} // namespace ehpsim

#endif // EHPSIM_MEM_DRAM_HH
