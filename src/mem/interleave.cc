#include "mem/interleave.hh"

#include "sim/logging.hh"

namespace ehpsim
{
namespace mem
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

InterleaveMap::InterleaveMap(unsigned num_stacks,
                             unsigned channels_per_stack,
                             std::uint64_t capacity_bytes, NumaMode mode,
                             std::uint64_t page_bytes,
                             std::uint64_t stripe_bytes)
    : num_stacks_(num_stacks),
      channels_per_stack_(channels_per_stack),
      capacity_(capacity_bytes),
      mode_(mode),
      page_bytes_(page_bytes),
      stripe_bytes_(stripe_bytes)
{
    if (!isPow2(num_stacks) || !isPow2(channels_per_stack))
        fatal("stack and channel counts must be powers of two");
    if (!isPow2(page_bytes) || !isPow2(stripe_bytes) ||
        stripe_bytes * channels_per_stack > page_bytes) {
        fatal("bad interleave granularities");
    }
    if (mode == NumaMode::nps4 && num_stacks % 4 != 0)
        fatal("NPS4 requires a multiple of four stacks");
    stacks_per_domain_ =
        mode == NumaMode::nps4 ? num_stacks / 4 : num_stacks;
    if (capacity_ % (page_bytes_ * num_stacks_) != 0)
        fatal("capacity must be a whole number of interleave groups");
}

unsigned
InterleaveMap::foldHash(std::uint64_t q, unsigned mask)
{
    // XOR-fold the group index down to log2(mask+1) bits. Any
    // fold is legal: for a fixed q the stack assignment is a
    // permutation of the in-group page offsets, so the overall
    // address mapping stays bijective.
    std::uint64_t h = q;
    h ^= h >> 17;
    h ^= h >> 9;
    h ^= h >> 4;
    return static_cast<unsigned>(h) & mask;
}

unsigned
InterleaveMap::domainOf(Addr addr) const
{
    if (mode_ == NumaMode::nps1)
        return 0;
    const std::uint64_t domain_size = capacity_ / 4;
    const unsigned d = static_cast<unsigned>(addr / domain_size);
    if (d >= 4)
        fatal("address 0x", std::hex, addr, " beyond capacity");
    return d;
}

unsigned
InterleaveMap::stackOf(Addr addr) const
{
    const unsigned domain = domainOf(addr);
    const std::uint64_t domain_size = capacity_ / numDomains();
    const Addr local_addr = addr % domain_size;
    const std::uint64_t page = local_addr / page_bytes_;
    const std::uint64_t q = page / stacks_per_domain_;
    const unsigned r =
        static_cast<unsigned>(page % stacks_per_domain_);
    const unsigned spd_mask = stacks_per_domain_ - 1;
    const unsigned stack_local = r ^ foldHash(q, spd_mask);
    return domain * stacks_per_domain_ + stack_local;
}

ChannelLocation
InterleaveMap::locate(Addr addr) const
{
    if (addr >= capacity_)
        fatal("address 0x", std::hex, addr, " beyond capacity");
    const unsigned domain = domainOf(addr);
    const std::uint64_t domain_size = capacity_ / numDomains();
    const Addr local_addr = addr % domain_size;
    const std::uint64_t page = local_addr / page_bytes_;
    const std::uint64_t offset = local_addr % page_bytes_;
    const std::uint64_t q = page / stacks_per_domain_;
    const unsigned r =
        static_cast<unsigned>(page % stacks_per_domain_);
    const unsigned spd_mask = stacks_per_domain_ - 1;
    const unsigned stack_local = r ^ foldHash(q, spd_mask);
    const unsigned stack = domain * stacks_per_domain_ + stack_local;

    // Stripe the page across the stack's channels.
    const std::uint64_t s = offset / stripe_bytes_;
    const std::uint64_t rem = offset % stripe_bytes_;
    const unsigned cis =
        static_cast<unsigned>(s % channels_per_stack_);
    const std::uint64_t page_share = page_bytes_ / channels_per_stack_;
    const Addr local = q * page_share +
                       (s / channels_per_stack_) * stripe_bytes_ + rem;

    ChannelLocation loc;
    loc.stack = stack;
    loc.channel = stack * channels_per_stack_ + cis;
    loc.local = local;
    return loc;
}

Addr
InterleaveMap::addressOf(unsigned channel, Addr local) const
{
    const unsigned stack = channel / channels_per_stack_;
    const unsigned cis = channel % channels_per_stack_;
    const unsigned domain = stack / stacks_per_domain_;
    const unsigned stack_local = stack % stacks_per_domain_;

    const std::uint64_t page_share = page_bytes_ / channels_per_stack_;
    const std::uint64_t q = local / page_share;
    const std::uint64_t within = local % page_share;
    const std::uint64_t stripe_round = within / stripe_bytes_;
    const std::uint64_t rem = within % stripe_bytes_;
    const std::uint64_t s = stripe_round * channels_per_stack_ + cis;
    const std::uint64_t offset = s * stripe_bytes_ + rem;

    const unsigned spd_mask = stacks_per_domain_ - 1;
    const unsigned r = stack_local ^ foldHash(q, spd_mask);
    const std::uint64_t page = q * stacks_per_domain_ + r;

    const std::uint64_t domain_size = capacity_ / numDomains();
    return static_cast<Addr>(domain) * domain_size +
           page * page_bytes_ + offset;
}

} // namespace mem
} // namespace ehpsim
