#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace mem
{

Cache::Cache(SimObject *parent, const std::string &name,
             const CacheParams &params, MemDevice *below)
    : MemDevice(parent, name),
      hits(this, "hits", "demand hits"),
      misses(this, "misses", "demand misses"),
      writebacks(this, "writebacks", "dirty victim writebacks"),
      bytes_read(this, "bytes_read", "bytes read by requestors"),
      bytes_written(this, "bytes_written", "bytes written by requestors"),
      probe_invalidations(this, "probe_invalidations",
                          "lines invalidated by coherence probes"),
      params_(params),
      array_(params.size_bytes, params.assoc, params.line_bytes,
             params.policy),
      below_(below)
{
    const Tick period = periodFromGHz(params.clock_ghz);
    latency_ticks_ = params.latency_cycles * period;
    port_.setBandwidth(params.bytes_per_cycle /
                       static_cast<double>(period));
}

AccessResult
Cache::access(Tick when, Addr addr, std::uint64_t bytes, bool write)
{
    if (bytes == 0)
        return {when, true, 0};

    if (write)
        bytes_written += static_cast<double>(bytes);
    else
        bytes_read += static_cast<double>(bytes);

    // Split the request into lines; the completion is the last line's.
    const unsigned line = params_.line_bytes;
    const Addr first = array_.lineAlign(addr);
    const Addr last = array_.lineAlign(addr + bytes - 1);

    AccessResult res;
    res.hit = true;
    Tick complete = when;

    for (Addr la = first;; la += line) {
        const Tick issue = port_.occupy(when, line) + latency_ticks_;
        Tick line_done = issue;
        if (array_.lookup(la)) {
            ++hits;
            if (write) {
                auto way = array_.peek(la);
                array_.line(la, *way).dirty = !params_.write_through;
                if (params_.write_through && below_) {
                    auto r = below_->access(issue, la, line, true);
                    res.bytes_below += line;
                    line_done = r.complete;
                }
            }
        } else {
            ++misses;
            res.hit = false;
            const bool allocate = !write || params_.write_allocate;
            if (below_) {
                // Fetch (or write through) the line below.
                auto r = below_->access(issue, la, line,
                                        write && !allocate);
                res.bytes_below += line;
                line_done = r.complete;
            }
            if (allocate) {
                auto victim = array_.insert(
                    la, write && !params_.write_through);
                if (victim && victim->dirty) {
                    // Issued at miss time, behind the fetch: issuing
                    // at the response time would reserve downstream
                    // bandwidth in the future and stall other
                    // requestors (no-backfill occupancy model).
                    ++writebacks;
                    if (below_) {
                        below_->access(issue, victim->tag, line,
                                       true);
                        res.bytes_below += line;
                    }
                }
            }
        }
        complete = std::max(complete, line_done);
        if (la == last)
            break;
    }
    res.complete = complete;
    return res;
}

void
Cache::probeInvalidate(Addr addr)
{
    if (array_.invalidate(addr))
        ++probe_invalidations;
}

std::uint64_t
Cache::flush(Tick when)
{
    auto dirty = array_.flushAll();
    std::uint64_t bytes = 0;
    for (const auto &l : dirty) {
        // Writebacks pipeline at the downstream bandwidth; the
        // occupancy trackers below serialize them naturally.
        if (below_)
            below_->access(when, l.tag, params_.line_bytes, true);
        ++writebacks;
        bytes += params_.line_bytes;
    }
    return bytes;
}

} // namespace mem
} // namespace ehpsim
