#include "gpu/cdna.hh"

#include "sim/logging.hh"

namespace ehpsim
{
namespace gpu
{

const char *
cdnaGenName(CdnaGen g)
{
    switch (g) {
      case CdnaGen::cdna2:
        return "CDNA2";
      case CdnaGen::cdna3:
        return "CDNA3";
    }
    panic("bad CDNA generation");
}

const char *
dataTypeName(DataType dt)
{
    switch (dt) {
      case DataType::fp64:
        return "FP64";
      case DataType::fp32:
        return "FP32";
      case DataType::tf32:
        return "TF32";
      case DataType::fp16:
        return "FP16";
      case DataType::bf16:
        return "BF16";
      case DataType::fp8:
        return "FP8";
      case DataType::int8:
        return "INT8";
    }
    panic("bad data type");
}

unsigned
dataTypeBytes(DataType dt)
{
    switch (dt) {
      case DataType::fp64:
        return 8;
      case DataType::fp32:
      case DataType::tf32:
        return 4;
      case DataType::fp16:
      case DataType::bf16:
        return 2;
      case DataType::fp8:
      case DataType::int8:
        return 1;
    }
    panic("bad data type");
}

std::uint64_t
opsPerClockPerCu(CdnaGen gen, Pipe pipe, DataType dt, bool sparse)
{
    // Paper Table 1 (ops/clock/CU). "n/a" entries return 0.
    std::uint64_t dense = 0;
    if (pipe == Pipe::vector) {
        switch (dt) {
          case DataType::fp64:
            dense = 128;
            break;
          case DataType::fp32:
            dense = gen == CdnaGen::cdna2 ? 128 : 256;
            break;
          default:
            dense = 0;      // vector pipes serve FP64/FP32 only
            break;
        }
        return dense;       // sparsity is a Matrix Core feature
    }

    switch (dt) {
      case DataType::fp64:
      case DataType::fp32:
        dense = 256;
        break;
      case DataType::tf32:
        dense = gen == CdnaGen::cdna2 ? 0 : 1024;
        break;
      case DataType::fp16:
      case DataType::bf16:
        dense = gen == CdnaGen::cdna2 ? 1024 : 2048;
        break;
      case DataType::fp8:
        dense = gen == CdnaGen::cdna2 ? 0 : 4096;
        break;
      case DataType::int8:
        dense = gen == CdnaGen::cdna2 ? 1024 : 4096;
        break;
    }
    if (sparse && gen == CdnaGen::cdna3 && dense >= 1024) {
        // 4:2 structured sparsity doubles matrix throughput
        // (8192 ops/clk/CU for FP8 and INT8).
        return dense * 2;
    }
    return dense;
}

} // namespace gpu
} // namespace ehpsim
