/**
 * @file
 * CDNA architecture generations and per-CU throughput rates.
 *
 * Encodes the paper's Table 1: peak operations-per-clock-per-CU for
 * the CDNA 2 CUs in MI250X versus the CDNA 3 CUs in MI300A/X, for
 * vector and Matrix Core pipelines across data types, including
 * CDNA 3's FP8 support and 4:2 structured sparsity (which doubles
 * Matrix FP8/INT8 peak to 8192 ops/clk/CU).
 */

#ifndef EHPSIM_GPU_CDNA_HH
#define EHPSIM_GPU_CDNA_HH

#include <cstdint>
#include <string>

namespace ehpsim
{
namespace gpu
{

enum class CdnaGen
{
    cdna2,  ///< MI250X
    cdna3,  ///< MI300A / MI300X
};

const char *cdnaGenName(CdnaGen g);

enum class DataType
{
    fp64,
    fp32,
    tf32,
    fp16,
    bf16,
    fp8,
    int8,
};

const char *dataTypeName(DataType dt);

/** Element size in bytes (tf32 is stored as 4 bytes). */
unsigned dataTypeBytes(DataType dt);

/** Which execution pipe a kernel's math uses. */
enum class Pipe
{
    vector,
    matrix,
};

/**
 * Peak operations per clock per CU (paper Table 1).
 * @param sparse 4:2 structured sparsity (CDNA 3 matrix FP8/INT8/FP16/
 *        BF16; the paper highlights 8192 for FP8/INT8).
 * @return 0 when the generation does not support the combination
 *         (e.g., TF32 or FP8 on CDNA 2).
 */
std::uint64_t opsPerClockPerCu(CdnaGen gen, Pipe pipe, DataType dt,
                               bool sparse = false);

} // namespace gpu
} // namespace ehpsim

#endif // EHPSIM_GPU_CDNA_HH
