/**
 * @file
 * The accelerator complex die (XCD), paper Sec. IV.B.
 *
 * Each XCD physically implements 40 CUs but exposes 38 for yield
 * harvesting. Shared global resources include the scheduler, the
 * hardware queues, and four Asynchronous Compute Engines (ACEs) that
 * send compute workgroups to the CUs. The CUs share a 4 MB L2 that
 * coalesces all memory traffic leaving the die, and each pair of CUs
 * shares a 64 KB instruction cache.
 */

#ifndef EHPSIM_GPU_XCD_HH
#define EHPSIM_GPU_XCD_HH

#include <memory>
#include <vector>

#include "gpu/compute_unit.hh"

namespace ehpsim
{
namespace gpu
{

struct XcdParams
{
    CuParams cu = cdna3CuParams();
    unsigned physical_cus = 40;
    unsigned active_cus = 38;       ///< harvested for yield
    unsigned num_aces = 4;
    Cycles dispatch_cycles = 16;    ///< ACE cycles per workgroup launch
    mem::CacheParams l2;            ///< 4 MB shared L2
    mem::CacheParams icache;        ///< 64 KB per CU pair
};

/** MI300-class XCD defaults (CDNA 3). */
XcdParams cdna3XcdParams();

/** MI250X GCD expressed in the same terms (CDNA 2, 110 CUs). */
XcdParams cdna2GcdParams();

class Xcd : public SimObject
{
  public:
    /**
     * @param below Where L2 misses go (fabric adapter or memory).
     */
    Xcd(SimObject *parent, const std::string &name,
        const XcdParams &params, mem::MemDevice *below);

    const XcdParams &params() const { return params_; }

    unsigned numActiveCus() const { return params_.active_cus; }

    mem::Cache *l2() { return l2_.get(); }

    ComputeUnit *cu(unsigned i) { return cus_[i].get(); }

    std::vector<mem::Cache *> l1Caches();

    /** Aggregate peak flops/s over the active CUs. */
    double peakFlops(Pipe pipe, DataType dt, bool sparse = false) const;

    /**
     * Launch one workgroup through an ACE onto the least-loaded CU.
     * @return the workgroup's completion tick.
     */
    Tick dispatchWorkgroup(Tick when, const WorkgroupWork &work);

    /** Completion tick of all work dispatched so far. */
    Tick drainTime() const;

    /** Fraction of CU busy-time among dispatched workgroups. */
    double averageCuUtilization(Tick now) const;

    /** @{ statistics */
    stats::Scalar workgroups_dispatched;
    stats::Scalar ace_stall_ticks;
    /** @} */

  private:
    XcdParams params_;
    std::unique_ptr<mem::Cache> l2_;
    std::vector<std::unique_ptr<mem::Cache>> icaches_;
    std::vector<std::unique_ptr<ComputeUnit>> cus_;
    std::vector<Tick> ace_free_;
    unsigned next_ace_ = 0;
    Tick dispatch_period_;
};

} // namespace gpu
} // namespace ehpsim

#endif // EHPSIM_GPU_XCD_HH
