#include "gpu/xcd.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace gpu
{

XcdParams
cdna3XcdParams()
{
    XcdParams p;
    p.cu = cdna3CuParams();
    p.physical_cus = 40;
    p.active_cus = 38;
    p.num_aces = 4;
    p.l2.size_bytes = 4 * 1024 * 1024;
    p.l2.assoc = 16;
    p.l2.line_bytes = 128;
    p.l2.latency_cycles = 40;
    p.l2.clock_ghz = p.cu.clock_ghz;
    p.l2.bytes_per_cycle = 2048;    // coalesces the whole die
    p.icache.size_bytes = 64 * 1024;
    p.icache.assoc = 8;
    p.icache.line_bytes = 128;
    p.icache.latency_cycles = 4;
    p.icache.clock_ghz = p.cu.clock_ghz;
    p.icache.bytes_per_cycle = 64;
    return p;
}

XcdParams
cdna2GcdParams()
{
    XcdParams p;
    p.cu = cdna2CuParams();
    p.physical_cus = 112;
    p.active_cus = 110;
    p.num_aces = 4;
    p.l2.size_bytes = 8 * 1024 * 1024;
    p.l2.assoc = 16;
    p.l2.line_bytes = 64;
    p.l2.latency_cycles = 40;
    p.l2.clock_ghz = p.cu.clock_ghz;
    p.l2.bytes_per_cycle = 2048;
    p.icache.size_bytes = 32 * 1024;
    p.icache.assoc = 8;
    p.icache.line_bytes = 64;
    p.icache.latency_cycles = 4;
    p.icache.clock_ghz = p.cu.clock_ghz;
    p.icache.bytes_per_cycle = 64;
    return p;
}

Xcd::Xcd(SimObject *parent, const std::string &name,
         const XcdParams &params, mem::MemDevice *below)
    : SimObject(parent, name),
      workgroups_dispatched(this, "workgroups_dispatched",
                            "workgroups launched by the ACEs"),
      ace_stall_ticks(this, "ace_stall_ticks",
                      "ticks dispatches waited for a free ACE"),
      params_(params)
{
    if (params.active_cus == 0)
        fatal(name, ": an XCD needs at least one active CU");
    if (params.active_cus > params.physical_cus)
        fatal("cannot enable ", params.active_cus, " of ",
              params.physical_cus, " CUs");
    l2_ = std::make_unique<mem::Cache>(this, "l2", params.l2, below);

    // One instruction cache per CU pair (paper Sec. IV.B).
    const unsigned n_icaches = (params.active_cus + 1) / 2;
    for (unsigned i = 0; i < n_icaches; ++i) {
        icaches_.push_back(std::make_unique<mem::Cache>(
            this, "ic" + std::to_string(i), params.icache, l2_.get()));
    }
    for (unsigned i = 0; i < params.active_cus; ++i) {
        cus_.push_back(std::make_unique<ComputeUnit>(
            this, "cu" + std::to_string(i), params.cu, l2_.get(),
            icaches_[i / 2].get()));
    }
    ace_free_.assign(params.num_aces, 0);
    dispatch_period_ =
        params.dispatch_cycles * periodFromGHz(params.cu.clock_ghz);
}

std::vector<mem::Cache *>
Xcd::l1Caches()
{
    std::vector<mem::Cache *> out;
    out.reserve(cus_.size());
    for (auto &cu : cus_)
        out.push_back(cu->l1());
    return out;
}

double
Xcd::peakFlops(Pipe pipe, DataType dt, bool sparse) const
{
    if (cus_.empty())
        return 0.0;
    return cus_[0]->peakFlops(pipe, dt, sparse) *
           static_cast<double>(params_.active_cus);
}

Tick
Xcd::dispatchWorkgroup(Tick when, const WorkgroupWork &work)
{
    // Round-robin over the four ACEs; each launch occupies the ACE
    // for dispatch_cycles, bounding workgroup launch throughput.
    unsigned ace = next_ace_;
    next_ace_ = (next_ace_ + 1) % params_.num_aces;
    const Tick ready = std::max(when, ace_free_[ace]);
    if (ready > when)
        ace_stall_ticks += static_cast<double>(ready - when);
    ace_free_[ace] = ready + dispatch_period_;

    // Least-loaded CU receives the workgroup.
    ComputeUnit *best = cus_[0].get();
    for (auto &cu : cus_) {
        if (cu->busyUntil() < best->busyUntil())
            best = cu.get();
    }
    ++workgroups_dispatched;
    return best->runWorkgroup(ready + dispatch_period_, work);
}

Tick
Xcd::drainTime() const
{
    Tick t = 0;
    for (const auto &cu : cus_)
        t = std::max(t, cu->busyUntil());
    return t;
}

double
Xcd::averageCuUtilization(Tick now) const
{
    if (now == 0 || cus_.empty())
        return 0.0;
    double busy = 0;
    for (const auto &cu : cus_) {
        busy += static_cast<double>(
                    cu->compute_ticks.value() +
                    cu->memory_ticks.value());
    }
    return busy /
           (static_cast<double>(now) * static_cast<double>(cus_.size()));
}

} // namespace gpu
} // namespace ehpsim
