/**
 * @file
 * The CDNA compute unit (paper Sec. IV.B).
 *
 * Each CU is a highly threaded processor with scalar/vector/matrix
 * execution units, a 32 KB L1 data cache with 128 B lines, and a
 * 64 KB Local Data Share. Pairs of CUs share a 64 KB instruction
 * cache. The model executes workgroup-granular work items: compute
 * time comes from the Table-1 rates, memory time from walking the
 * workgroup's footprint through L1 (then L2/fabric below), LDS and
 * instruction traffic are charged locally, and the workgroup
 * completes at max(compute, memory).
 */

#ifndef EHPSIM_GPU_COMPUTE_UNIT_HH
#define EHPSIM_GPU_COMPUTE_UNIT_HH

#include <memory>

#include "gpu/cdna.hh"
#include "mem/cache.hh"
#include "sim/units.hh"

namespace ehpsim
{
namespace gpu
{

/** Static CU configuration. */
struct CuParams
{
    CdnaGen gen = CdnaGen::cdna3;
    double clock_ghz = 1.7;
    std::uint64_t lds_bytes = 64 * 1024;
    BytesPerSecond lds_bandwidth = tbps(2.6);   ///< per CU, generous
    mem::CacheParams l1;    ///< 32 KB, 128 B lines (CDNA 3 default)
};

/** CDNA3-flavoured CU defaults. */
CuParams cdna3CuParams();

/** CDNA2-flavoured CU defaults (64 B lines, half L1 bandwidth). */
CuParams cdna2CuParams();

/** One workgroup's execution requirements. */
struct WorkgroupWork
{
    std::uint64_t flops = 0;        ///< math operations
    DataType dtype = DataType::fp32;
    Pipe pipe = Pipe::vector;
    bool sparse = false;            ///< 4:2 sparsity (matrix only)
    std::uint64_t bytes_read = 0;   ///< global memory reads
    std::uint64_t bytes_written = 0;
    std::uint64_t lds_bytes = 0;    ///< LDS traffic
    std::uint64_t inst_bytes = 512; ///< icache footprint
    Addr read_base = 0;             ///< workgroup-relative addressing
    Addr write_base = 0;
};

class ComputeUnit : public SimObject
{
  public:
    /**
     * @param l2 The XCD's shared L2 (next level below this CU's L1).
     * @param icache Instruction cache shared with the paired CU.
     */
    ComputeUnit(SimObject *parent, const std::string &name,
                const CuParams &params, mem::MemDevice *l2,
                mem::Cache *icache);

    const CuParams &params() const { return params_; }

    mem::Cache *l1() { return l1_.get(); }

    /** Tick at which this CU finishes its last accepted workgroup. */
    Tick busyUntil() const { return busy_until_; }

    /** Peak flops/s for a pipe/type on this CU. */
    double peakFlops(Pipe pipe, DataType dt, bool sparse = false) const;

    /**
     * Execute one workgroup, starting no earlier than @p start and
     * after the CU's previous work. @return completion tick.
     */
    Tick runWorkgroup(Tick start, const WorkgroupWork &work);

    /** @{ statistics */
    stats::Scalar workgroups;
    stats::Scalar total_flops;
    stats::Scalar compute_ticks;
    stats::Scalar memory_ticks;
    /** @} */

  private:
    CuParams params_;
    std::unique_ptr<mem::Cache> l1_;
    mem::Cache *icache_;
    Tick busy_until_ = 0;
    Tick period_;
};

} // namespace gpu
} // namespace ehpsim

#endif // EHPSIM_GPU_COMPUTE_UNIT_HH
