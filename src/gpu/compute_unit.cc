#include "gpu/compute_unit.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace gpu
{

CuParams
cdna3CuParams()
{
    CuParams p;
    p.gen = CdnaGen::cdna3;
    p.clock_ghz = 1.7;
    p.l1.size_bytes = 32 * 1024;
    p.l1.assoc = 8;
    // CDNA 3 widened the L1 line to 128 B and doubled the cache
    // bandwidth relative to CDNA 2 (paper Sec. IV.B).
    p.l1.line_bytes = 128;
    p.l1.latency_cycles = 16;
    p.l1.clock_ghz = p.clock_ghz;
    p.l1.bytes_per_cycle = 128;
    return p;
}

CuParams
cdna2CuParams()
{
    CuParams p;
    p.gen = CdnaGen::cdna2;
    p.clock_ghz = 1.7;
    p.l1.size_bytes = 16 * 1024;
    p.l1.assoc = 8;
    p.l1.line_bytes = 64;
    p.l1.latency_cycles = 16;
    p.l1.clock_ghz = p.clock_ghz;
    p.l1.bytes_per_cycle = 64;
    return p;
}

ComputeUnit::ComputeUnit(SimObject *parent, const std::string &name,
                         const CuParams &params, mem::MemDevice *l2,
                         mem::Cache *icache)
    : SimObject(parent, name),
      workgroups(this, "workgroups", "workgroups executed"),
      total_flops(this, "total_flops", "math operations executed"),
      compute_ticks(this, "compute_ticks",
                    "ticks spent compute-bound"),
      memory_ticks(this, "memory_ticks", "ticks spent memory-bound"),
      params_(params),
      icache_(icache),
      period_(periodFromGHz(params.clock_ghz))
{
    l1_ = std::make_unique<mem::Cache>(this, "l1d", params.l1, l2);
}

double
ComputeUnit::peakFlops(Pipe pipe, DataType dt, bool sparse) const
{
    const std::uint64_t rate =
        opsPerClockPerCu(params_.gen, pipe, dt, sparse);
    return static_cast<double>(rate) * params_.clock_ghz * 1e9;
}

Tick
ComputeUnit::runWorkgroup(Tick start, const WorkgroupWork &work)
{
    const Tick begin = std::max(start, busy_until_);
    ++workgroups;
    total_flops += static_cast<double>(work.flops);

    // Compute time from the Table-1 rate for this pipe/type.
    const std::uint64_t rate =
        opsPerClockPerCu(params_.gen, work.pipe, work.dtype,
                         work.sparse);
    if (rate == 0 && work.flops > 0) {
        fatal(cdnaGenName(params_.gen), " cannot execute ",
              dataTypeName(work.dtype), " on the ",
              work.pipe == Pipe::matrix ? "matrix" : "vector",
              " pipe");
    }
    Tick compute = 0;
    if (work.flops > 0)
        compute = ((work.flops + rate - 1) / rate) * period_;

    // LDS traffic at LDS bandwidth.
    const Tick lds = serializationTicks(work.lds_bytes,
                                        params_.lds_bandwidth);

    // Instruction fetch through the shared instruction cache. The
    // common case is that neighbouring CUs run the same kernel, so
    // these mostly hit (paper Sec. IV.B).
    Tick inst_done = begin;
    if (icache_ && work.inst_bytes > 0) {
        inst_done =
            icache_->access(begin, 0, work.inst_bytes, false).complete;
    }

    // Global memory traffic through L1 (and L2/fabric below).
    Tick mem_done = begin;
    if (work.bytes_read > 0) {
        mem_done = l1_->access(begin, work.read_base, work.bytes_read,
                               false).complete;
    }
    if (work.bytes_written > 0) {
        mem_done = std::max(
            mem_done, l1_->access(begin, work.write_base,
                                  work.bytes_written, true).complete);
    }

    const Tick mem_time =
        std::max(mem_done, inst_done) > begin
            ? std::max(mem_done, inst_done) - begin
            : 0;
    const Tick busy = std::max({compute + lds, mem_time, Tick(1)});
    if (compute + lds >= mem_time)
        compute_ticks += static_cast<double>(busy);
    else
        memory_ticks += static_cast<double>(busy);

    busy_until_ = begin + busy;
    return busy_until_;
}

} // namespace gpu
} // namespace ehpsim
