#include "power/governor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace power
{

std::vector<double>
Allocation::perDomain(const PowerModel &model) const
{
    std::vector<double> out(numDomains, 0.0);
    const auto &comps = model.components();
    for (std::size_t i = 0; i < comps.size(); ++i)
        out[static_cast<unsigned>(comps[i].domain)] += watts[i];
    return out;
}

PowerGovernor::PowerGovernor(SimObject *parent, const std::string &name,
                             PowerModel *model)
    : SimObject(parent, name),
      allocations(this, "allocations", "allocation rounds"),
      throttle_events(this, "throttle_events",
                      "rounds where demand exceeded the TDP"),
      model_(model)
{
}

Allocation
PowerGovernor::allocate(const std::vector<double> &utilization)
{
    const auto &comps = model_->components();
    if (utilization.size() != comps.size())
        fatal("utilization vector must parallel components");
    std::vector<double> demand(comps.size());
    for (std::size_t i = 0; i < comps.size(); ++i)
        demand[i] = comps[i].powerAt(utilization[i]);
    return solve(demand);
}

Allocation
PowerGovernor::allocateForDistribution(const PowerDistribution &dist)
{
    const auto &comps = model_->components();
    // Count components per domain.
    unsigned counts[numDomains] = {};
    for (const auto &c : comps)
        ++counts[static_cast<unsigned>(c.domain)];

    std::vector<double> demand(comps.size());
    for (std::size_t i = 0; i < comps.size(); ++i) {
        const unsigned d = static_cast<unsigned>(comps[i].domain);
        const double domain_w = dist.share[d] * model_->tdp();
        demand[i] = counts[d] ? domain_w / counts[d] : 0.0;
        // Demand cannot be below idle or above peak.
        demand[i] = std::clamp(demand[i], comps[i].idle_w,
                               comps[i].peak_w);
    }
    return solve(demand);
}

Allocation
PowerGovernor::solve(const std::vector<double> &demand)
{
    ++allocations;
    const auto &comps = model_->components();
    const double budget = model_->tdp();

    Allocation alloc;
    alloc.watts.resize(comps.size());

    // Floors first: everything gets idle power.
    double committed = 0;
    for (std::size_t i = 0; i < comps.size(); ++i) {
        alloc.watts[i] = comps[i].idle_w;
        committed += comps[i].idle_w;
    }
    if (committed > budget)
        fatal("idle power ", committed, " W exceeds TDP ", budget,
              " W");

    // Water-fill the remaining budget proportional to unmet demand,
    // capped at each component's demand (and peak).
    double remaining = budget - committed;
    std::vector<double> want(comps.size());
    double total_want = 0;
    for (std::size_t i = 0; i < comps.size(); ++i) {
        const double cap = std::min(demand[i], comps[i].peak_w);
        want[i] = std::max(0.0, cap - alloc.watts[i]);
        total_want += want[i];
    }

    if (total_want <= remaining) {
        // No contention: everyone gets their demand.
        for (std::size_t i = 0; i < comps.size(); ++i)
            alloc.watts[i] += want[i];
    } else {
        alloc.throttled = true;
        ++throttle_events;
        // Iterative water-fill: grant proportionally, re-running as
        // components saturate at their caps.
        std::vector<bool> saturated(comps.size(), false);
        for (int round = 0; round < 32 && remaining > 1e-9; ++round) {
            double open_want = 0;
            for (std::size_t i = 0; i < comps.size(); ++i) {
                if (!saturated[i])
                    open_want += want[i];
            }
            if (open_want <= 1e-12)
                break;
            const double frac = std::min(1.0, remaining / open_want);
            double granted = 0;
            for (std::size_t i = 0; i < comps.size(); ++i) {
                if (saturated[i] || want[i] <= 0)
                    continue;
                const double g = want[i] * frac;
                alloc.watts[i] += g;
                want[i] -= g;
                granted += g;
                if (want[i] <= 1e-12)
                    saturated[i] = true;
            }
            remaining -= granted;
            if (frac >= 1.0)
                break;
        }
    }

    alloc.total = 0;
    for (double w : alloc.watts)
        alloc.total += w;
    return alloc;
}

} // namespace power
} // namespace ehpsim
