/**
 * @file
 * Socket power modeling (paper Sec. V.E, Fig. 12a).
 *
 * MI300A can dynamically reallocate power between physical
 * components: compute-intensive phases direct most of the budget to
 * the XCD/CCD chiplets, while memory-intensive phases shift power to
 * HBM, the Infinity Cache and data fabric, and the USR links. The
 * PowerModel tracks per-component idle/peak envelopes and converts
 * utilizations into demands; the PowerGovernor (governor.hh)
 * allocates a TDP among them.
 */

#ifndef EHPSIM_POWER_POWER_MODEL_HH
#define EHPSIM_POWER_POWER_MODEL_HH

#include <string>
#include <vector>

#include "sim/sim_object.hh"

namespace ehpsim
{
namespace power
{

/** Power-consuming component classes (Fig. 12a's stack bars). */
enum class Domain
{
    xcd,            ///< GPU compute chiplets
    ccd,            ///< CPU compute chiplets
    infinityCache,  ///< memory-side cache SRAM
    fabric,         ///< data fabric within the IODs
    usr,            ///< USR PHYs between IODs
    hbm,            ///< HBM stacks and PHYs
    io,             ///< x16 I/O
    other,          ///< misc/SoC overhead
};

constexpr unsigned numDomains = 8;

const char *domainName(Domain d);

/** One modelled component. */
struct Component
{
    std::string name;
    Domain domain = Domain::other;
    double idle_w = 0;
    double peak_w = 0;

    /** Power at a utilization in [0, 1]. */
    double
    powerAt(double utilization) const
    {
        if (utilization < 0)
            utilization = 0;
        if (utilization > 1)
            utilization = 1;
        return idle_w + (peak_w - idle_w) * utilization;
    }
};

/** A normalized power split across domains (sums to 1). */
struct PowerDistribution
{
    double share[numDomains] = {};

    double total() const;

    void normalize();
};

/**
 * Representative distributions from Fig. 12(a): where the socket
 * power goes in compute-intensive vs memory-intensive phases.
 */
PowerDistribution computeIntensiveDistribution();
PowerDistribution memoryIntensiveDistribution();

class PowerModel : public SimObject
{
  public:
    PowerModel(SimObject *parent, const std::string &name,
               double tdp_w);

    double tdp() const { return tdp_w_; }

    void addComponent(const Component &c) { components_.push_back(c); }

    const std::vector<Component> &components() const
    {
        return components_;
    }

    /** Sum of idle power — the floor the governor cannot go below. */
    double idlePower() const;

    /** Sum of peak power — the unconstrained maximum. */
    double maxPower() const;

    /**
     * Power demand per domain for given per-component utilizations
     * (parallel to components()).
     */
    std::vector<double>
    domainDemand(const std::vector<double> &utilization) const;

    /** MI300A-flavoured component set at a 550 W TDP. */
    static PowerModel *makeMi300a(SimObject *parent);

  private:
    double tdp_w_;
    std::vector<Component> components_;
};

} // namespace power
} // namespace ehpsim

#endif // EHPSIM_POWER_POWER_MODEL_HH
