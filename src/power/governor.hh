/**
 * @file
 * The dynamic power-shifting governor (paper Sec. V.D/V.E).
 *
 * "As workloads transition between compute-dominated and
 * memory-intensive phases, power can be vertically
 * shifted/reallocated between the IOD and the compute chiplets."
 *
 * Given per-component demands, the governor allocates the socket TDP:
 * every component receives at least idle power, no component exceeds
 * its peak or its demand, and any remaining budget is distributed by
 * water-filling proportional to unmet demand. Property tests check
 * budget, floor/ceiling, and conservation invariants.
 */

#ifndef EHPSIM_POWER_GOVERNOR_HH
#define EHPSIM_POWER_GOVERNOR_HH

#include <vector>

#include "power/power_model.hh"

namespace ehpsim
{
namespace power
{

/** Result of one allocation round. */
struct Allocation
{
    std::vector<double> watts;      ///< per component
    double total = 0;
    bool throttled = false;         ///< demand exceeded the budget

    /** Sum of allocated power per domain. */
    std::vector<double>
    perDomain(const PowerModel &model) const;
};

class PowerGovernor : public SimObject
{
  public:
    PowerGovernor(SimObject *parent, const std::string &name,
                  PowerModel *model);

    /**
     * Allocate the TDP given per-component utilizations in [0, 1]
     * (parallel to the model's component list).
     */
    Allocation allocate(const std::vector<double> &utilization);

    /**
     * Convenience: allocate for a target distribution (Fig. 12a) —
     * demand per domain is the distribution's share of the TDP,
     * spread evenly over the domain's components.
     */
    Allocation allocateForDistribution(const PowerDistribution &dist);

    /** @{ statistics */
    stats::Scalar allocations;
    stats::Scalar throttle_events;
    /** @} */

  private:
    Allocation solve(const std::vector<double> &demand);

    PowerModel *model_;
};

} // namespace power
} // namespace ehpsim

#endif // EHPSIM_POWER_GOVERNOR_HH
