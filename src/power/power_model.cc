#include "power/power_model.hh"

#include "sim/logging.hh"

namespace ehpsim
{
namespace power
{

const char *
domainName(Domain d)
{
    switch (d) {
      case Domain::xcd:
        return "xcd";
      case Domain::ccd:
        return "ccd";
      case Domain::infinityCache:
        return "infinity_cache";
      case Domain::fabric:
        return "fabric";
      case Domain::usr:
        return "usr";
      case Domain::hbm:
        return "hbm";
      case Domain::io:
        return "io";
      case Domain::other:
        return "other";
    }
    panic("bad power domain");
}

double
PowerDistribution::total() const
{
    double t = 0;
    for (double s : share)
        t += s;
    return t;
}

void
PowerDistribution::normalize()
{
    const double t = total();
    if (t <= 0)
        return;
    for (double &s : share)
        s /= t;
}

PowerDistribution
computeIntensiveDistribution()
{
    // Fig. 12(a), compute-intensive (GPU) scenario: the majority of
    // socket power goes to the compute chiplets.
    PowerDistribution d;
    d.share[static_cast<unsigned>(Domain::xcd)] = 0.58;
    d.share[static_cast<unsigned>(Domain::ccd)] = 0.08;
    d.share[static_cast<unsigned>(Domain::infinityCache)] = 0.05;
    d.share[static_cast<unsigned>(Domain::fabric)] = 0.07;
    d.share[static_cast<unsigned>(Domain::usr)] = 0.04;
    d.share[static_cast<unsigned>(Domain::hbm)] = 0.12;
    d.share[static_cast<unsigned>(Domain::io)] = 0.02;
    d.share[static_cast<unsigned>(Domain::other)] = 0.04;
    d.normalize();
    return d;
}

PowerDistribution
memoryIntensiveDistribution()
{
    // Fig. 12(a), memory-intensive scenario: power shifts to the
    // memory system, data fabric, and USR links.
    PowerDistribution d;
    d.share[static_cast<unsigned>(Domain::xcd)] = 0.30;
    d.share[static_cast<unsigned>(Domain::ccd)] = 0.06;
    d.share[static_cast<unsigned>(Domain::infinityCache)] = 0.10;
    d.share[static_cast<unsigned>(Domain::fabric)] = 0.13;
    d.share[static_cast<unsigned>(Domain::usr)] = 0.11;
    d.share[static_cast<unsigned>(Domain::hbm)] = 0.24;
    d.share[static_cast<unsigned>(Domain::io)] = 0.02;
    d.share[static_cast<unsigned>(Domain::other)] = 0.04;
    d.normalize();
    return d;
}

PowerModel::PowerModel(SimObject *parent, const std::string &name,
                       double tdp_w)
    : SimObject(parent, name), tdp_w_(tdp_w)
{
    if (tdp_w <= 0)
        fatal("TDP must be positive");
}

double
PowerModel::idlePower() const
{
    double p = 0;
    for (const auto &c : components_)
        p += c.idle_w;
    return p;
}

double
PowerModel::maxPower() const
{
    double p = 0;
    for (const auto &c : components_)
        p += c.peak_w;
    return p;
}

std::vector<double>
PowerModel::domainDemand(const std::vector<double> &utilization) const
{
    if (utilization.size() != components_.size())
        fatal("utilization vector must parallel components");
    std::vector<double> demand(numDomains, 0.0);
    for (std::size_t i = 0; i < components_.size(); ++i) {
        demand[static_cast<unsigned>(components_[i].domain)] +=
            components_[i].powerAt(utilization[i]);
    }
    return demand;
}

PowerModel *
PowerModel::makeMi300a(SimObject *parent)
{
    // 550 W TDP (paper Sec. IX). Peak numbers sum well above TDP:
    // the whole point of the governor is that not everything can be
    // at peak simultaneously.
    auto *pm = new PowerModel(parent, "power", 550.0);
    for (unsigned i = 0; i < 6; ++i) {
        pm->addComponent({"xcd" + std::to_string(i), Domain::xcd,
                          8.0, 75.0});
    }
    for (unsigned i = 0; i < 3; ++i) {
        pm->addComponent({"ccd" + std::to_string(i), Domain::ccd,
                          5.0, 40.0});
    }
    pm->addComponent({"infinity_cache", Domain::infinityCache,
                      8.0, 45.0});
    pm->addComponent({"fabric", Domain::fabric, 12.0, 60.0});
    pm->addComponent({"usr", Domain::usr, 6.0, 50.0});
    pm->addComponent({"hbm", Domain::hbm, 20.0, 110.0});
    pm->addComponent({"io", Domain::io, 4.0, 18.0});
    pm->addComponent({"soc_other", Domain::other, 10.0, 25.0});
    return pm;
}

} // namespace power
} // namespace ehpsim
