#include "power/thermal.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace ehpsim
{
namespace power
{

ThermalGrid::ThermalGrid(SimObject *parent, const std::string &name,
                         const geom::Floorplan *plan,
                         const ThermalParams &params)
    : SimObject(parent, name), plan_(plan), params_(params)
{
    if (!plan)
        fatal("thermal grid needs a floorplan");
    const auto &b = plan->bounds();
    cell_w_ = b.w / params_.nx;
    cell_h_ = b.h / params_.ny;
    power_.assign(static_cast<std::size_t>(params_.nx) * params_.ny,
                  0.0);
    temp_.assign(power_.size(), params_.ambient_c);
}

unsigned
ThermalGrid::solve(const std::vector<double> &region_watts)
{
    const auto &regions = plan_->regions();
    if (region_watts.size() != regions.size())
        fatal("region_watts must parallel the floorplan regions");

    // Rasterize power onto the grid: each region's watts are spread
    // uniformly over the cells whose centres it covers.
    std::fill(power_.begin(), power_.end(), 0.0);
    total_power_ = 0;
    const auto &b = plan_->bounds();
    for (std::size_t r = 0; r < regions.size(); ++r) {
        if (region_watts[r] <= 0)
            continue;
        total_power_ += region_watts[r];
        // Count covered cells first.
        std::vector<unsigned> covered;
        for (unsigned iy = 0; iy < params_.ny; ++iy) {
            for (unsigned ix = 0; ix < params_.nx; ++ix) {
                const geom::Point c{
                    b.x + (ix + 0.5) * cell_w_,
                    b.y + (iy + 0.5) * cell_h_};
                if (regions[r].rect.contains(c))
                    covered.push_back(cellIndex(ix, iy));
            }
        }
        if (covered.empty()) {
            warn("region '", regions[r].name,
                 "' covers no thermal cells; power dropped");
            total_power_ -= region_watts[r];
            continue;
        }
        const double per_cell =
            region_watts[r] / static_cast<double>(covered.size());
        for (unsigned idx : covered)
            power_[idx] += per_cell;
    }

    // Jacobi iteration: T_i = (P_i + k_l * sum(T_nbr) +
    // k_v * T_amb) / (k_l * n_nbr + k_v).
    std::vector<double> next(temp_.size());
    unsigned iter = 0;
    for (; iter < params_.max_iters; ++iter) {
        double max_delta = 0;
        for (unsigned iy = 0; iy < params_.ny; ++iy) {
            for (unsigned ix = 0; ix < params_.nx; ++ix) {
                const unsigned idx = cellIndex(ix, iy);
                double nbr_sum = 0;
                unsigned nbrs = 0;
                if (ix > 0) {
                    nbr_sum += temp_[idx - 1];
                    ++nbrs;
                }
                if (ix + 1 < params_.nx) {
                    nbr_sum += temp_[idx + 1];
                    ++nbrs;
                }
                if (iy > 0) {
                    nbr_sum += temp_[idx - params_.nx];
                    ++nbrs;
                }
                if (iy + 1 < params_.ny) {
                    nbr_sum += temp_[idx + params_.nx];
                    ++nbrs;
                }
                const double denom =
                    params_.k_lateral * nbrs + params_.k_vertical;
                const double t =
                    (power_[idx] + params_.k_lateral * nbr_sum +
                     params_.k_vertical * params_.ambient_c) /
                    denom;
                max_delta = std::max(max_delta,
                                     std::fabs(t - temp_[idx]));
                next[idx] = t;
            }
        }
        temp_.swap(next);
        if (max_delta < params_.tolerance)
            break;
    }
    return iter;
}

double
ThermalGrid::temperatureAt(double x_mm, double y_mm) const
{
    const auto &b = plan_->bounds();
    const double fx = (x_mm - b.x) / cell_w_;
    const double fy = (y_mm - b.y) / cell_h_;
    const unsigned ix = std::min(
        params_.nx - 1,
        static_cast<unsigned>(std::max(0.0, fx)));
    const unsigned iy = std::min(
        params_.ny - 1,
        static_cast<unsigned>(std::max(0.0, fy)));
    return temp_[cellIndex(ix, iy)];
}

double
ThermalGrid::regionTemperature(const std::string &region_name) const
{
    const auto *r = plan_->find(region_name);
    if (!r)
        fatal("unknown floorplan region '", region_name, "'");
    const auto &b = plan_->bounds();
    double sum = 0;
    unsigned n = 0;
    for (unsigned iy = 0; iy < params_.ny; ++iy) {
        for (unsigned ix = 0; ix < params_.nx; ++ix) {
            const geom::Point c{b.x + (ix + 0.5) * cell_w_,
                                b.y + (iy + 0.5) * cell_h_};
            if (r->rect.contains(c)) {
                sum += temp_[cellIndex(ix, iy)];
                ++n;
            }
        }
    }
    return n ? sum / n : params_.ambient_c;
}

double
ThermalGrid::maxTemperature() const
{
    return *std::max_element(temp_.begin(), temp_.end());
}

std::string
ThermalGrid::hottestRegion() const
{
    const auto it = std::max_element(temp_.begin(), temp_.end());
    const auto idx = static_cast<unsigned>(it - temp_.begin());
    const unsigned ix = idx % params_.nx;
    const unsigned iy = idx / params_.nx;
    const auto &b = plan_->bounds();
    const geom::Point c{b.x + (ix + 0.5) * cell_w_,
                        b.y + (iy + 0.5) * cell_h_};
    for (const auto &r : plan_->regions()) {
        if (r.rect.contains(c))
            return r.name;
    }
    return "";
}

double
ThermalGrid::conservationError() const
{
    if (total_power_ <= 0)
        return 0.0;
    double shed = 0;
    for (double t : temp_)
        shed += params_.k_vertical * (t - params_.ambient_c);
    return std::fabs(total_power_ - shed) / total_power_;
}

std::string
ThermalGrid::asciiHeatMap(unsigned cols, unsigned rows) const
{
    static const char ramp[] = " .:-=+*#%@";
    const double t_min = params_.ambient_c;
    const double t_max = std::max(maxTemperature(), t_min + 1e-9);
    const auto &b = plan_->bounds();
    std::string out;
    for (unsigned r = 0; r < rows; ++r) {
        // Row 0 at the top of the floorplan.
        const double y =
            b.y + b.h * (rows - 0.5 - r) / static_cast<double>(rows);
        for (unsigned c = 0; c < cols; ++c) {
            const double x =
                b.x + b.w * (c + 0.5) / static_cast<double>(cols);
            const double t = temperatureAt(x, y);
            const double f = (t - t_min) / (t_max - t_min);
            const int level = std::clamp(
                static_cast<int>(f * 9.0), 0, 9);
            out += ramp[level];
        }
        out += '\n';
    }
    return out;
}

} // namespace power
} // namespace ehpsim
