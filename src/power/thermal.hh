/**
 * @file
 * A 2-D steady-state thermal grid solver (paper Sec. V.E,
 * Fig. 12b/c).
 *
 * The package floorplan is rasterized onto a uniform grid; each cell
 * receives a power density from the floorplan regions' allocated
 * power, conducts laterally to its four neighbours, and sheds heat
 * vertically through the cold plate. Jacobi iteration to steady
 * state reproduces the paper's qualitative result: XCD hotspots in
 * compute-intensive scenarios, and visible HBM-PHY/USR-PHY heating
 * in memory-intensive scenarios.
 */

#ifndef EHPSIM_POWER_THERMAL_HH
#define EHPSIM_POWER_THERMAL_HH

#include <string>
#include <vector>

#include "geom/floorplan.hh"
#include "sim/sim_object.hh"

namespace ehpsim
{
namespace power
{

struct ThermalParams
{
    unsigned nx = 64;
    unsigned ny = 64;
    double ambient_c = 35.0;        ///< coolant temperature
    double k_lateral = 0.05;         ///< lateral conductance (W/K)
    double k_vertical = 0.006;       ///< per-cell to coldplate (W/K)
    unsigned max_iters = 20000;
    double tolerance = 1e-5;        ///< max per-cell delta (K)
};

class ThermalGrid : public SimObject
{
  public:
    ThermalGrid(SimObject *parent, const std::string &name,
                const geom::Floorplan *plan,
                const ThermalParams &params = {});

    const ThermalParams &params() const { return params_; }

    /**
     * Solve steady state given power (W) per floorplan region
     * (parallel to plan->regions()). Unlisted area gets zero power.
     * @return number of iterations used.
     */
    unsigned solve(const std::vector<double> &region_watts);

    /** Temperature at a point (after solve()). */
    double temperatureAt(double x_mm, double y_mm) const;

    /** Mean temperature over a region's cells. */
    double regionTemperature(const std::string &region_name) const;

    double maxTemperature() const;

    /** Floorplan region containing the hottest cell ("" if none). */
    std::string hottestRegion() const;

    /** Total power injected in the last solve. */
    double totalPower() const { return total_power_; }

    /**
     * Energy balance residual of the solution: |P_in - P_out| / P_in
     * where P_out is the vertical heat shed to the cold plate.
     */
    double conservationError() const;

    /** Raw temperature field (ny rows of nx), for rendering. */
    const std::vector<double> &field() const { return temp_; }

    /** ASCII heat map (rows top to bottom) for reports. */
    std::string asciiHeatMap(unsigned cols = 48,
                             unsigned rows = 24) const;

  private:
    unsigned cellIndex(unsigned ix, unsigned iy) const
    {
        return iy * params_.nx + ix;
    }

    const geom::Floorplan *plan_;
    ThermalParams params_;
    std::vector<double> power_;     ///< per-cell injected watts
    std::vector<double> temp_;      ///< per-cell temperature (C)
    double cell_w_ = 1;
    double cell_h_ = 1;
    double total_power_ = 0;
};

} // namespace power
} // namespace ehpsim

#endif // EHPSIM_POWER_THERMAL_HH
