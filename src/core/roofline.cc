#include "core/roofline.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace core
{

bool
RooflineEngine::hasGpu() const
{
    return model_.num_cus > 0 || !model_.explicit_flops.empty();
}

double
RooflineEngine::gpuPhaseSeconds(const workloads::Phase &p,
                                std::uint64_t footprint) const
{
    if (p.gpu_flops == 0 &&
        p.gpu_bytes_read + p.gpu_bytes_written == 0) {
        return 0.0;
    }
    if (!hasGpu()) {
        // CPU-only machine (Fig. 14a): the kernel runs on the cores.
        const double tc =
            model_.cpu_flops > 0
                ? static_cast<double>(p.gpu_flops) / model_.cpu_flops
                : 0.0;
        const std::uint64_t bytes =
            p.gpu_bytes_read + p.gpu_bytes_written;
        const double tm =
            model_.cpu_mem_bw > 0
                ? static_cast<double>(bytes) / model_.cpu_mem_bw
                : 0.0;
        return std::max(tc, tm);
    }
    const double peak =
        model_.gpuPeakFlops(p.pipe, p.dtype, p.sparse) *
        model_.gpu_efficiency;
    if (peak <= 0 && p.gpu_flops > 0)
        fatal(model_.name, " cannot execute ",
              gpu::dataTypeName(p.dtype), " GPU work");
    const double tc =
        peak > 0 ? static_cast<double>(p.gpu_flops) / peak : 0.0;
    const std::uint64_t bytes = p.gpu_bytes_read + p.gpu_bytes_written;
    const double bw = model_.effectiveMemBandwidth(
        footprint ? footprint : bytes);
    const double tm =
        bw > 0 ? static_cast<double>(bytes) / bw : 0.0;
    return std::max(tc, tm);
}

double
RooflineEngine::cpuPhaseSeconds(const workloads::Phase &p) const
{
    const double tc =
        model_.cpu_flops > 0
            ? static_cast<double>(p.cpu_flops) / model_.cpu_flops
            : 0.0;
    // Scalar ops at ~4 IPC on 24-96 cores fold into the flop term at
    // this altitude; memory is the usual second roof.
    const std::uint64_t bytes =
        p.cpu_bytes_read + p.cpu_bytes_written;
    const double tm =
        model_.cpu_mem_bw > 0
            ? static_cast<double>(bytes) / model_.cpu_mem_bw
            : 0.0;
    return std::max(tc, tm);
}

RunReport
RooflineEngine::run(const workloads::Workload &w,
                    CouplingMode mode) const
{
    RunReport rep;
    rep.machine = model_.name;
    rep.workload = w.name;

    if (w.footprint_bytes > model_.mem_capacity) {
        warn(model_.name, ": workload '", w.name, "' footprint ",
             w.footprint_bytes, " exceeds device memory");
    }

    const bool unified = model_.unified;
    bool first_gpu_phase = true;

    for (const auto &p : w.phases) {
        PhaseTiming t;
        t.name = p.name;

        // Host-to-device coupling.
        if (!unified && p.to_gpu_bytes > 0) {
            t.transfer_s +=
                static_cast<double>(p.to_gpu_bytes) /
                    model_.host_link_bw +
                secondsFromTicks(model_.host_link_latency);
        }
        if (!unified && first_gpu_phase &&
            (p.device != workloads::PhaseDevice::cpu)) {
            // One-time device allocations (hipMalloc, Fig. 14b).
            t.overhead_s += model_.alloc_overhead_s;
        }

        switch (p.device) {
          case workloads::PhaseDevice::cpu:
            t.cpu_s = cpuPhaseSeconds(p);
            t.total_s = t.cpu_s + t.transfer_s + t.overhead_s;
            break;

          case workloads::PhaseDevice::gpu:
            t.gpu_s = gpuPhaseSeconds(p, w.footprint_bytes);
            t.overhead_s += model_.kernel_launch_s +
                            model_.sync_overhead_s;
            t.total_s =
                t.gpu_s + t.transfer_s + t.overhead_s;
            first_gpu_phase = false;
            break;

          case workloads::PhaseDevice::gpuThenCpu: {
            t.gpu_s = gpuPhaseSeconds(p, w.footprint_bytes);
            t.cpu_s = cpuPhaseSeconds(p);
            t.overhead_s += model_.kernel_launch_s +
                            model_.sync_overhead_s;
            double d2h = 0;
            if (!unified && p.to_cpu_bytes > 0) {
                d2h = static_cast<double>(p.to_cpu_bytes) /
                          model_.host_link_bw +
                      secondsFromTicks(model_.host_link_latency);
            }
            t.transfer_s += d2h;

            const bool overlap =
                p.fine_grained_capable && unified &&
                (mode == CouplingMode::fineGrained ||
                 mode == CouplingMode::automatic);
            if (overlap) {
                // Fig. 15(b): the CPU consumes elements as the GPU
                // produces them; the tail is one pipeline stage.
                const double fill = t.gpu_s * 0.02;
                t.total_s = std::max(t.gpu_s, t.cpu_s + fill) +
                            t.overhead_s;
            } else {
                // Fig. 15(c): kernel-level synchronization.
                t.total_s = t.gpu_s + t.transfer_s + t.cpu_s +
                            t.overhead_s;
            }
            first_gpu_phase = false;
            break;
          }
        }
        rep.total_s += t.total_s;
        rep.phases.push_back(t);
    }
    return rep;
}

} // namespace core
} // namespace ehpsim
