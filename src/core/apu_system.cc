#include "core/apu_system.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ehpsim
{
namespace core
{

ApuSystem::ApuSystem(const soc::ProductConfig &cfg, mem::NumaMode numa)
    : SimObject(nullptr, "system", &eq_)
{
    pkg_ = std::make_unique<soc::Package>(this, "package", cfg, &eq_,
                                          numa);
}

Addr
ApuSystem::allocate(std::uint64_t bytes)
{
    const std::uint64_t cap = pkg_->memCapacity();
    const std::uint64_t aligned = (bytes + 4095) & ~std::uint64_t(4095);
    if (alloc_cursor_ + aligned >= cap)
        alloc_cursor_ = 0;              // wrap (simulation only)
    const Addr base = alloc_cursor_;
    alloc_cursor_ += aligned;
    return base;
}

namespace
{
/** Lines sampled per phase for coherence accounting. */
constexpr unsigned coherenceSamples = 64;
} // anonymous namespace

void
ApuSystem::sampleGpuWrites(const workloads::Phase &p, Addr write_base)
{
    if (p.gpu_bytes_written == 0 || pkg_->numCcds() == 0)
        return;
    last_shared_base_ = write_base;
    last_shared_bytes_ = p.gpu_bytes_written;
    auto *pf = pkg_->probeFilter();
    const std::uint64_t stride = std::max<std::uint64_t>(
        64, p.gpu_bytes_written / coherenceSamples);
    unsigned agent = 0;
    for (unsigned i = 0; i < coherenceSamples; ++i) {
        pf->write(agent, write_base + i * stride);
        agent = (agent + 1) % pkg_->numXcds();
    }
}

void
ApuSystem::sampleCpuReads()
{
    if (last_shared_bytes_ == 0 || pkg_->numCcds() == 0)
        return;
    auto *pf = pkg_->probeFilter();
    const std::uint64_t stride = std::max<std::uint64_t>(
        64, last_shared_bytes_ / coherenceSamples);
    for (unsigned i = 0; i < coherenceSamples; ++i) {
        // CCD agents live above the XCD ids in the filter's space.
        const unsigned agent =
            pkg_->numXcds() + i % pkg_->numCcds();
        pf->read(agent, last_shared_base_ + i * stride);
    }
    last_shared_bytes_ = 0;
}

Tick
ApuSystem::runGpuPhase(Tick start, const workloads::Phase &p,
                       std::vector<hsa::Partition *> &parts)
{
    const std::uint64_t grid = std::max<std::uint64_t>(
        p.grid_workgroups, parts.size());
    const std::uint64_t per_wg_read = p.gpu_bytes_read / grid;
    const std::uint64_t per_wg_write = p.gpu_bytes_written / grid;

    hsa::AqlPacket pkt;
    pkt.grid_workgroups = grid;         // split below per partition
    pkt.work.flops = p.gpu_flops / grid;
    pkt.work.dtype = p.dtype;
    pkt.work.pipe = p.pipe;
    pkt.work.sparse = p.sparse;
    pkt.work.bytes_read = per_wg_read;
    pkt.work.bytes_written = per_wg_write;
    pkt.work.lds_bytes = 4096;
    pkt.read_stride = per_wg_read;
    pkt.write_stride = per_wg_write;
    pkt.work.read_base = allocate(p.gpu_bytes_read);
    pkt.work.write_base = allocate(p.gpu_bytes_written);
    sampleGpuWrites(p, pkt.work.write_base);

    // A multi-partition device behaves like independent GPUs, each
    // taking an equal slice of the grid (SR-IOV style, Fig. 17).
    Tick done = start;
    const std::uint64_t per_part = grid / parts.size();
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        hsa::AqlPacket sub = pkt;
        sub.grid_workgroups =
            i + 1 == parts.size() ? grid - assigned : per_part;
        sub.work.read_base += assigned * pkt.read_stride;
        sub.work.write_base += assigned * pkt.write_stride;
        assigned += sub.grid_workgroups;
        if (sub.grid_workgroups == 0)
            continue;
        const auto res = parts[i]->dispatch(start, sub);
        done = std::max(done, res.complete);
    }
    return done;
}

Tick
ApuSystem::runCpuPhase(Tick start, const workloads::Phase &p)
{
    const unsigned n = pkg_->numCcds();
    if (n == 0) {
        if (p.cpu_flops || p.cpu_scalar_ops) {
            warn(pkg_->config().name,
                 " has no CCDs; CPU work in phase '", p.name,
                 "' runs on an unmodeled host (charged as zero)");
        }
        return start;
    }
    cpu::CpuWork work;
    work.flops = p.cpu_flops / n;
    work.scalar_ops = p.cpu_scalar_ops / n;
    work.bytes_read = p.cpu_bytes_read / n;
    work.bytes_written = p.cpu_bytes_written / n;
    work.read_base = allocate(p.cpu_bytes_read);
    work.write_base = allocate(p.cpu_bytes_written);

    Tick done = start;
    for (unsigned i = 0; i < n; ++i) {
        cpu::CpuWork shard = work;
        shard.read_base += i * work.bytes_read;
        shard.write_base += i * work.bytes_written;
        done = std::max(done,
                        pkg_->ccd(i)->runParallel(start, shard));
    }
    return done;
}

RunReport
ApuSystem::run(const workloads::Workload &w, unsigned num_partitions,
               hsa::DistributionPolicy policy, bool fine_grained)
{
    auto it = partition_sets_.find(num_partitions);
    if (it == partition_sets_.end()) {
        it = partition_sets_
                 .emplace(num_partitions,
                          pkg_->partitionInto(num_partitions))
                 .first;
    }
    auto &parts = it->second;
    for (auto *p : parts)
        p->setPolicy(policy);

    RunReport rep;
    rep.machine = pkg_->config().name;
    rep.workload = w.name;

    // Energy accounting: snapshot counters around the run.
    const double fabric_before =
        pkg_->network()->totalEnergyJoules();
    double hbm_bytes_before = 0;
    for (unsigned c = 0; c < pkg_->memMap().numChannels(); ++c)
        hbm_bytes_before += pkg_->channel(c)->bytes_served.value();

    Tick t = now_;
    for (const auto &p : w.phases) {
        PhaseTiming pt;
        pt.name = p.name;
        const Tick phase_start = t;

        switch (p.device) {
          case workloads::PhaseDevice::cpu: {
            const Tick done = runCpuPhase(t, p);
            pt.cpu_s = secondsFromTicks(done - t);
            t = done;
            break;
          }
          case workloads::PhaseDevice::gpu: {
            const Tick done = runGpuPhase(t, p, parts);
            pt.gpu_s = secondsFromTicks(done - t);
            t = done;
            break;
          }
          case workloads::PhaseDevice::gpuThenCpu: {
            const Tick gpu_done = runGpuPhase(t, p, parts);
            sampleCpuReads();
            pt.gpu_s = secondsFromTicks(gpu_done - t);
            Tick cpu_start = gpu_done;
            if (fine_grained && p.fine_grained_capable) {
                // Fig. 15(b): the CPU spins on completion flags and
                // starts consuming after a short pipeline fill.
                cpu_start =
                    t + (gpu_done - t) / 50;    // 2% fill
            }
            const Tick cpu_done = runCpuPhase(cpu_start, p);
            pt.cpu_s = secondsFromTicks(cpu_done - cpu_start);
            t = std::max(gpu_done, cpu_done);
            break;
          }
        }
        pt.total_s = secondsFromTicks(t - phase_start);
        rep.total_s += pt.total_s;
        rep.phases.push_back(pt);
    }
    rep.fabric_energy_j =
        pkg_->network()->totalEnergyJoules() - fabric_before;
    double hbm_bytes_after = 0;
    for (unsigned c = 0; c < pkg_->memMap().numChannels(); ++c)
        hbm_bytes_after += pkg_->channel(c)->bytes_served.value();
    // ~5 pJ/bit HBM access energy == 40 pJ/byte.
    rep.hbm_energy_j = (hbm_bytes_after - hbm_bytes_before) * 40e-12;
    // ~15 pJ per math op at the socket level (coarse, type-blind).
    rep.compute_energy_j =
        static_cast<double>(w.totalGpuFlops()) * 15e-12;

    now_ = t;
    return rep;
}

} // namespace core
} // namespace ehpsim
