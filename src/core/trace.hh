/**
 * @file
 * Chrome-tracing export of RunReports.
 *
 * writeChromeTrace() renders a report's phase timeline as a
 * chrome://tracing / Perfetto JSON file with one track per device
 * (GPU, CPU, host link), so the Fig. 15-style overlap structure of
 * a run can be inspected visually.
 */

#ifndef EHPSIM_CORE_TRACE_HH
#define EHPSIM_CORE_TRACE_HH

#include <ostream>
#include <string>

#include "core/report.hh"

namespace ehpsim
{
namespace core
{

/** Write the trace JSON to @p os. */
void writeChromeTrace(const RunReport &report, std::ostream &os);

/** Write the trace JSON to @p path (fatal on I/O failure). */
void writeChromeTrace(const RunReport &report,
                      const std::string &path);

} // namespace core
} // namespace ehpsim

#endif // EHPSIM_CORE_TRACE_HH
