#include "core/machine_model.hh"

namespace ehpsim
{
namespace core
{

double
MachineModel::gpuPeakFlops(gpu::Pipe pipe, gpu::DataType dt,
                           bool sparse) const
{
    auto it = explicit_flops.find({pipe, dt});
    if (it != explicit_flops.end())
        return sparse ? it->second * 2 : it->second;
    const std::uint64_t rate =
        gpu::opsPerClockPerCu(gen, pipe, dt, sparse);
    return static_cast<double>(rate) * num_cus * gpu_clock_ghz * 1e9;
}

BytesPerSecond
MachineModel::effectiveMemBandwidth(std::uint64_t footprint) const
{
    // Footprints that fit in the memory-side cache stream at cache
    // bandwidth; larger ones blend toward HBM bandwidth.
    const double hbm = mem_bw * mem_efficiency;
    if (cache_capacity == 0 || cache_bw <= hbm)
        return hbm;
    if (footprint <= cache_capacity)
        return cache_bw * mem_efficiency;
    const double hit = static_cast<double>(cache_capacity) /
                       static_cast<double>(footprint);
    // Bandwidth of a stream with hit fraction 'hit' served by the
    // cache and the rest by HBM (parallel service).
    const double cache_eff = cache_bw * mem_efficiency;
    return 1.0 / ((1.0 - hit) / hbm + hit / cache_eff);
}

MachineModel
modelFromPackage(soc::Package &pkg)
{
    MachineModel m;
    m.name = pkg.config().name;
    m.gen = pkg.config().xcd.cu.gen;
    m.num_cus = pkg.totalCus();
    m.gpu_clock_ghz = pkg.config().xcd.cu.clock_ghz;
    m.mem_bw = pkg.peakMemBandwidth();
    m.cache_bw = pkg.peakCacheBandwidth();
    m.cache_capacity =
        pkg.config().hbm.enable_infinity_cache
            ? pkg.config().hbm.cache.size_bytes *
                  pkg.memMap().numChannels()
            : 0;
    m.mem_capacity = pkg.memCapacity();
    m.cpu_flops = pkg.peakCpuFlops(true);
    m.cpu_mem_bw = pkg.numCcds() > 0 ? m.mem_bw : gbps(0.0);
    m.unified = pkg.numCcds() > 0;
    return m;
}

MachineModel
mi300aModel()
{
    MachineModel m;
    m.name = "MI300A";
    m.gen = gpu::CdnaGen::cdna3;
    m.num_cus = 228;
    m.gpu_clock_ghz = 1.7;
    m.mem_bw = tbps(5.3);
    m.cache_bw = tbps(17.0);
    m.cache_capacity = 256ull * 1024 * 1024;
    m.mem_capacity = 128ull * 1024 * 1024 * 1024;
    m.cpu_flops = 24 * 16 * 3.7e9;      // 24 Zen4 cores
    // The CPU side addresses HBM directly but 24 cores sustain only
    // a few hundred GB/s of demand themselves.
    m.cpu_mem_bw = gbps(400.0);
    m.unified = true;
    return m;
}

MachineModel
mi300xModel()
{
    MachineModel m = mi300aModel();
    m.name = "MI300X";
    m.num_cus = 304;
    m.mem_capacity = 192ull * 1024 * 1024 * 1024;
    // Discrete accelerator: host attaches over PCIe Gen5 x16.
    m.unified = false;
    m.cpu_flops = 96 * 16 * 3.7e9;      // full EPYC host
    m.cpu_mem_bw = gbps(460.0);         // 12ch DDR5 host memory
    m.host_link_bw = gbps(64.0);
    return m;
}

MachineModel
mi250xNodeModel()
{
    MachineModel m;
    m.name = "MI250X+EPYC";
    m.gen = gpu::CdnaGen::cdna2;
    m.num_cus = 220;                    // both GCDs
    m.gpu_clock_ghz = 1.7;
    m.mem_bw = tbps(3.2);               // HBM2e
    m.cache_bw = tbps(3.2);             // no Infinity Cache
    m.cache_capacity = 0;
    m.mem_capacity = 128ull * 1024 * 1024 * 1024;
    m.cpu_flops = 64 * 8 * 3.5e9;       // "optimized 3rd Gen EPYC"
    m.cpu_mem_bw = gbps(205.0);         // 8ch DDR4
    m.unified = false;
    // Frontier's coherent CPU-GPU Infinity Fabric: 36 GB/s per
    // direction per GCD, two GCDs per module.
    m.host_link_bw = gbps(72.0);
    return m;
}

MachineModel
epycCpuModel()
{
    MachineModel m;
    m.name = "EPYC-CPU";
    m.num_cus = 0;
    m.mem_bw = gbps(460.0);
    m.cache_bw = m.mem_bw;
    m.cache_capacity = 0;
    m.mem_capacity = 768ull * 1024 * 1024 * 1024;
    m.cpu_flops = 96 * 16 * 3.7e9;
    m.cpu_mem_bw = gbps(460.0);
    m.unified = true;                   // no GPU to copy to
    return m;
}

MachineModel
baselineGpuModel()
{
    MachineModel m;
    m.name = "BaselineGPU";
    m.num_cus = 0;
    // H100-class published peaks (dense): FP16 ~989 Tflops,
    // FP8 ~1979 Tflops, FP64 matrix ~67 Tflops.
    m.explicit_flops[{gpu::Pipe::matrix, gpu::DataType::fp16}] =
        989e12;
    m.explicit_flops[{gpu::Pipe::matrix, gpu::DataType::bf16}] =
        989e12;
    m.explicit_flops[{gpu::Pipe::matrix, gpu::DataType::fp8}] =
        1979e12;
    m.explicit_flops[{gpu::Pipe::matrix, gpu::DataType::fp64}] =
        67e12;
    m.explicit_flops[{gpu::Pipe::matrix, gpu::DataType::fp32}] =
        495e12;
    m.explicit_flops[{gpu::Pipe::vector, gpu::DataType::fp64}] =
        34e12;
    m.explicit_flops[{gpu::Pipe::vector, gpu::DataType::fp32}] =
        67e12;
    m.mem_bw = tbps(3.35);
    m.cache_bw = tbps(3.35);
    m.cache_capacity = 50ull * 1024 * 1024;
    m.mem_capacity = 80ull * 1024 * 1024 * 1024;
    m.cpu_flops = 64 * 16 * 3.0e9;
    m.cpu_mem_bw = gbps(300.0);
    m.unified = false;
    m.host_link_bw = gbps(64.0);
    return m;
}

} // namespace core
} // namespace ehpsim
