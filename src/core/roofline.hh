/**
 * @file
 * The analytical roofline execution engine.
 *
 * Phase time on the GPU is max(flops / effective-peak, bytes /
 * effective-bandwidth) plus launch overhead; CPU phases likewise.
 * The engine's real subject is the *coupling*: on a unified-memory
 * APU the CPU<->GPU transfers vanish and producer/consumer phases
 * can overlap at fine grain (paper Figs. 14 and 15); on a discrete
 * node every coupling byte crosses the host link and adds
 * allocation/synchronization overheads.
 */

#ifndef EHPSIM_CORE_ROOFLINE_HH
#define EHPSIM_CORE_ROOFLINE_HH

#include "core/machine_model.hh"
#include "core/report.hh"
#include "workloads/workload.hh"

namespace ehpsim
{
namespace core
{

/** How CPU/GPU coupling executes. */
enum class CouplingMode
{
    automatic,      ///< unified machines skip copies, discrete copy
    coarseSync,     ///< unified, but kernel-level sync only (Fig 15c)
    fineGrained,    ///< unified + flag-based overlap (Fig 15b)
};

class RooflineEngine
{
  public:
    explicit RooflineEngine(MachineModel model)
        : model_(std::move(model))
    {}

    const MachineModel &model() const { return model_; }

    RunReport run(const workloads::Workload &w,
                  CouplingMode mode = CouplingMode::automatic) const;

    /** True when the machine has any GPU math capability. */
    bool hasGpu() const;

    /** Time of one phase's GPU part, seconds (no overheads). On a
     *  CPU-only machine the "GPU" work runs on the cores
     *  (Fig. 14a's baseline). */
    double gpuPhaseSeconds(const workloads::Phase &p,
                           std::uint64_t footprint) const;

    /** Time of one phase's CPU part, seconds. */
    double cpuPhaseSeconds(const workloads::Phase &p) const;

  private:
    MachineModel model_;
};

} // namespace core
} // namespace ehpsim

#endif // EHPSIM_CORE_ROOFLINE_HH
