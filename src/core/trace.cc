#include "core/trace.hh"

#include <fstream>

#include "sim/logging.hh"

namespace ehpsim
{
namespace core
{

namespace
{

/** Escape a string for JSON. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
emitEvent(std::ostream &os, bool &first, const std::string &name,
          int tid, double start_us, double dur_us)
{
    if (dur_us <= 0)
        return;
    if (!first)
        os << ",\n";
    first = false;
    os << "  {\"name\": \"" << jsonEscape(name)
       << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
       << ", \"ts\": " << start_us << ", \"dur\": " << dur_us << "}";
}

} // anonymous namespace

void
writeChromeTrace(const RunReport &report, std::ostream &os)
{
    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;

    // Track names.
    const struct
    {
        int tid;
        const char *name;
    } tracks[] = {{1, "GPU"}, {2, "CPU"}, {3, "host link"},
                  {4, "overheads"}};
    for (const auto &t : tracks) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"name\": \"thread_name\", \"ph\": \"M\", "
              "\"pid\": 1, \"tid\": "
           << t.tid << ", \"args\": {\"name\": \"" << t.name
           << "\"}}";
    }

    double cursor_us = 0;
    for (const auto &p : report.phases) {
        const double start = cursor_us;
        double t = start;
        // Transfers precede the device work; overlap (total <
        // sum of parts) is rendered by overlapping the CPU slice
        // with the tail of the GPU slice.
        emitEvent(os, first, p.name + " (copy)", 3, t,
                  p.transfer_s * 1e6);
        t += p.transfer_s * 1e6;
        emitEvent(os, first, p.name, 1, t, p.gpu_s * 1e6);
        const double serial = p.gpu_s + p.cpu_s + p.transfer_s +
                              p.overhead_s;
        const double overlap_us =
            serial > p.total_s ? (serial - p.total_s) * 1e6 : 0;
        const double cpu_start =
            t + p.gpu_s * 1e6 - overlap_us;
        emitEvent(os, first, p.name, 2,
                  cpu_start < t ? t : cpu_start, p.cpu_s * 1e6);
        emitEvent(os, first, p.name + " (launch/sync)", 4, start,
                  p.overhead_s * 1e6);
        cursor_us = start + p.total_s * 1e6;
    }
    os << "\n]\n}\n";
}

void
writeChromeTrace(const RunReport &report, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file '", path, "'");
    writeChromeTrace(report, out);
}

} // namespace core
} // namespace ehpsim
