/**
 * @file
 * The event-driven execution engine: a constructed Package plus the
 * machinery to run Workloads on it through real AQL dispatches, the
 * cache hierarchy, the Infinity Fabric, and the HBM subsystem.
 *
 * This is the "coarse gem5-style simulation" counterpart to the
 * RooflineEngine: slower, but it exercises dispatch (Fig. 13),
 * partitioning (Fig. 17), interleaving, Infinity Cache behaviour,
 * and fabric contention for real.
 */

#ifndef EHPSIM_CORE_APU_SYSTEM_HH
#define EHPSIM_CORE_APU_SYSTEM_HH

#include <map>
#include <memory>

#include "core/report.hh"
#include "soc/package.hh"
#include "workloads/workload.hh"

namespace ehpsim
{
namespace core
{

class ApuSystem : public SimObject
{
  public:
    explicit ApuSystem(const soc::ProductConfig &cfg,
                       mem::NumaMode numa = mem::NumaMode::nps1);

    soc::Package &package() { return *pkg_; }

    EventQueue &eventQueue() { return eq_; }

    /**
     * Run a workload end to end.
     * @param num_partitions Partition count (Fig. 17 modes).
     * @param policy Workgroup distribution across XCDs.
     * @param fine_grained Allow flag-based CPU/GPU overlap on
     *        capable phases (Fig. 15).
     */
    RunReport run(const workloads::Workload &w,
                  unsigned num_partitions = 1,
                  hsa::DistributionPolicy policy =
                      hsa::DistributionPolicy::roundRobin,
                  bool fine_grained = true);

    /** Simulated seconds elapsed so far. */
    double elapsedSeconds() const
    {
        return secondsFromTicks(now_);
    }

  private:
    /** Bump allocator over the package's physical address space. */
    Addr allocate(std::uint64_t bytes);

    /** Run one phase's GPU part; @return completion tick. */
    Tick runGpuPhase(Tick start, const workloads::Phase &p,
                     std::vector<hsa::Partition *> &parts);

    /** Run one phase's CPU part; @return completion tick. */
    Tick runCpuPhase(Tick start, const workloads::Phase &p);

    /**
     * Account a sample of the phase's shared lines in the package's
     * probe filter (paper Sec. IV.D): GPU writes take ownership,
     * the consuming CPU cores' reads generate the probes.
     */
    void sampleGpuWrites(const workloads::Phase &p, Addr write_base);

    void sampleCpuReads();

    EventQueue eq_;
    std::unique_ptr<soc::Package> pkg_;
    std::map<unsigned, std::vector<hsa::Partition *>> partition_sets_;
    Tick now_ = 0;
    Addr alloc_cursor_ = 0;
    Addr last_shared_base_ = 0;
    std::uint64_t last_shared_bytes_ = 0;
};

} // namespace core
} // namespace ehpsim

#endif // EHPSIM_CORE_APU_SYSTEM_HH
