/**
 * @file
 * Analytical machine models for the roofline engine.
 *
 * A MachineModel captures the handful of aggregate rates that decide
 * the paper's product-level comparisons: peak math per data type,
 * memory and cache bandwidth, capacities, CPU rates, and — the crux
 * of the APU story — whether CPU and GPU share one memory (unified)
 * or are coupled by an external link (discrete). Presets cover every
 * system the paper evaluates, including the Fig. 21 baseline GPU.
 */

#ifndef EHPSIM_CORE_MACHINE_MODEL_HH
#define EHPSIM_CORE_MACHINE_MODEL_HH

#include <map>
#include <string>

#include "gpu/cdna.hh"
#include "sim/units.hh"
#include "soc/package.hh"

namespace ehpsim
{
namespace core
{

struct MachineModel
{
    std::string name;

    /** @{ GPU math: derived from gen/CUs/clock unless overridden */
    gpu::CdnaGen gen = gpu::CdnaGen::cdna3;
    unsigned num_cus = 228;
    double gpu_clock_ghz = 1.7;
    /** Explicit overrides in flops/s, keyed by (pipe, dtype). */
    std::map<std::pair<gpu::Pipe, gpu::DataType>, double>
        explicit_flops;
    /** Fraction of peak math an optimized kernel sustains. */
    double gpu_efficiency = 0.75;
    /** @} */

    /** @{ memory system */
    BytesPerSecond mem_bw = tbps(5.3);
    double mem_efficiency = 0.85;
    BytesPerSecond cache_bw = tbps(17.0);
    std::uint64_t cache_capacity = 256ull * 1024 * 1024;
    std::uint64_t mem_capacity = 128ull * 1024 * 1024 * 1024;
    /** @} */

    /** @{ CPU */
    double cpu_flops = 1.4e12;      ///< 24 Zen4 cores AVX-512
    BytesPerSecond cpu_mem_bw = tbps(5.3);  ///< what the CPU sees
    /** @} */

    /** @{ CPU/GPU coupling */
    bool unified = true;
    BytesPerSecond host_link_bw = gbps(36.0);   ///< per direction
    Tick host_link_latency = 1'500'000;         ///< 1.5 us
    double kernel_launch_s = 8e-6;
    double sync_overhead_s = 4e-6;
    double alloc_overhead_s = 10e-6;            ///< per device alloc
    /** @} */

    /** Peak flops/s for a pipe/type, honoring overrides. */
    double gpuPeakFlops(gpu::Pipe pipe, gpu::DataType dt,
                        bool sparse = false) const;

    /** Effective bandwidth for a streaming footprint of @p bytes. */
    BytesPerSecond effectiveMemBandwidth(std::uint64_t footprint) const;
};

/** Model extracted from a constructed package (keeps them in sync). */
MachineModel modelFromPackage(soc::Package &pkg);

/** MI300A APU (unified memory). */
MachineModel mi300aModel();

/** MI300X accelerator attached to a host over PCIe. */
MachineModel mi300xModel();

/**
 * Frontier-style discrete node slice: one MI250X (both GCDs) plus
 * EPYC host over Infinity Fabric; separate memories.
 */
MachineModel mi250xNodeModel();

/** CPU-only EPYC node (Fig. 14a's baseline). */
MachineModel epycCpuModel();

/** The Fig. 21 baseline GPU (H100-class, 80 GB @ 3.35 TB/s). */
MachineModel baselineGpuModel();

} // namespace core
} // namespace ehpsim

#endif // EHPSIM_CORE_MACHINE_MODEL_HH
