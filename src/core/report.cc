#include "core/report.hh"

namespace ehpsim
{
namespace core
{

double
RunReport::gpuSeconds() const
{
    double t = 0;
    for (const auto &p : phases)
        t += p.gpu_s;
    return t;
}

double
RunReport::cpuSeconds() const
{
    double t = 0;
    for (const auto &p : phases)
        t += p.cpu_s;
    return t;
}

double
RunReport::transferSeconds() const
{
    double t = 0;
    for (const auto &p : phases)
        t += p.transfer_s;
    return t;
}

double
RunReport::overheadSeconds() const
{
    double t = 0;
    for (const auto &p : phases)
        t += p.overhead_s;
    return t;
}

} // namespace core
} // namespace ehpsim
