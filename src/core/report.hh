/**
 * @file
 * Run reports shared by the roofline and event engines.
 */

#ifndef EHPSIM_CORE_REPORT_HH
#define EHPSIM_CORE_REPORT_HH

#include <string>
#include <vector>

namespace ehpsim
{
namespace core
{

/** Timing breakdown of one workload phase. */
struct PhaseTiming
{
    std::string name;
    double gpu_s = 0;
    double cpu_s = 0;
    double transfer_s = 0;      ///< hipMemcpy-style copies
    double overhead_s = 0;      ///< launch/sync/alloc
    double total_s = 0;         ///< wall contribution (may overlap)
};

struct RunReport
{
    std::string machine;
    std::string workload;
    std::vector<PhaseTiming> phases;
    double total_s = 0;

    /** @{ energy breakdown (event engine only; joules) */
    double fabric_energy_j = 0;     ///< link transfer energy
    double hbm_energy_j = 0;        ///< DRAM access energy
    double compute_energy_j = 0;    ///< math energy
    /** @} */

    double
    totalEnergyJoules() const
    {
        return fabric_energy_j + hbm_energy_j + compute_energy_j;
    }

    /** Average power over the run, watts. */
    double
    averagePowerWatts() const
    {
        return total_s > 0 ? totalEnergyJoules() / total_s : 0.0;
    }

    double gpuSeconds() const;
    double cpuSeconds() const;
    double transferSeconds() const;
    double overheadSeconds() const;

    /** Achieved flops/s given the workload's GPU flops. */
    double
    achievedGpuFlops(double total_flops) const
    {
        return total_s > 0 ? total_flops / total_s : 0.0;
    }
};

} // namespace core
} // namespace ehpsim

#endif // EHPSIM_CORE_REPORT_HH
