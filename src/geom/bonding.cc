#include "geom/bonding.hh"

#include "sim/logging.hh"

namespace ehpsim
{
namespace geom
{

const char *
bondKindName(BondKind k)
{
    switch (k) {
      case BondKind::hybridBond:
        return "hybrid_bond";
      case BondKind::microbump:
        return "microbump";
      case BondKind::c4Bump:
        return "c4_bump";
    }
    panic("bad bond kind");
}

double
BondInterface::connectionsPerMm2() const
{
    const double pitch_mm = pitch_um * 1e-3;
    return 1.0 / (pitch_mm * pitch_mm);
}

double
BondInterface::bandwidthDensityTbpsMm2() const
{
    return connectionsPerMm2() * gbps_per_connection / 1000.0;
}

double
BondInterface::thermalResistance(double area_mm2) const
{
    if (area_mm2 <= 0)
        fatal("bond interface area must be positive");
    return 1.0 / (thermal_w_per_k_mm2 * area_mm2);
}

double
BondInterface::powerResistanceMohm(double area_mm2,
                                   double pg_fraction) const
{
    const double n = connectionsPerMm2() * area_mm2 * pg_fraction;
    if (n <= 0)
        fatal("no power/ground connections in bond field");
    return resistance_mohm / n;
}

BondInterface
hybridBond9um()
{
    BondInterface b;
    b.kind = BondKind::hybridBond;
    b.pitch_um = 9.0;           // V-Cache and MI300A (Sec. V.A)
    b.gbps_per_connection = 2.0;
    b.thermal_w_per_k_mm2 = 5.0;    // fused Cu: superior conduction
    b.resistance_mohm = 20.0;
    return b;
}

BondInterface
microbump35um()
{
    BondInterface b;
    b.kind = BondKind::microbump;
    b.pitch_um = 35.0;          // USR minimum pitch (Sec. V.A)
    b.gbps_per_connection = 8.0;
    b.thermal_w_per_k_mm2 = 0.8;
    b.resistance_mohm = 80.0;
    return b;
}

BondInterface
c4Bump130um()
{
    BondInterface b;
    b.kind = BondKind::c4Bump;
    b.pitch_um = 130.0;
    b.gbps_per_connection = 16.0;
    b.thermal_w_per_k_mm2 = 0.15;
    b.resistance_mohm = 300.0;
    return b;
}

double
bpvResistanceMohm(bool lands_on_rdl)
{
    // Fig. 11: (a) V-Cache-era BPV lands on the SRAM die's top-level
    // metal; (b) MI300A lands the BPV directly on the aluminum RDL,
    // a lower-resistance path sized for compute-chiplet current.
    return lands_on_rdl ? 6.0 : 18.0;
}

} // namespace geom
} // namespace ehpsim
