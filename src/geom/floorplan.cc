#include "geom/floorplan.hh"

#include "sim/logging.hh"

namespace ehpsim
{
namespace geom
{

const char *
regionKindName(RegionKind k)
{
    switch (k) {
      case RegionKind::compute:
        return "compute";
      case RegionKind::cache:
        return "cache";
      case RegionKind::memory:
        return "memory";
      case RegionKind::phy:
        return "phy";
      case RegionKind::io:
        return "io";
      case RegionKind::fabric:
        return "fabric";
      case RegionKind::substrate:
        return "substrate";
      case RegionKind::unused:
        return "unused";
    }
    panic("bad region kind");
}

void
Floorplan::add(const std::string &name, const Rect &r, RegionKind kind)
{
    if (!bounds_.contains(r))
        fatal("floorplan region '", name, "' outside bounds");
    regions_.push_back(Region{name, r, kind});
}

const Region *
Floorplan::find(const std::string &name) const
{
    for (const auto &r : regions_) {
        if (r.name == name)
            return &r;
    }
    return nullptr;
}

std::vector<const Region *>
Floorplan::byKind(RegionKind kind) const
{
    std::vector<const Region *> out;
    for (const auto &r : regions_) {
        if (r.kind == kind)
            out.push_back(&r);
    }
    return out;
}

bool
Floorplan::overlapFree() const
{
    return overlaps().empty();
}

std::vector<std::string>
Floorplan::overlaps() const
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        for (std::size_t j = i + 1; j < regions_.size(); ++j) {
            if (regions_[i].rect.intersects(regions_[j].rect)) {
                out.push_back(regions_[i].name + "/" +
                              regions_[j].name);
            }
        }
    }
    return out;
}

double
Floorplan::usedArea() const
{
    double a = 0;
    for (const auto &r : regions_) {
        if (r.kind != RegionKind::unused)
            a += r.rect.area();
    }
    return a;
}

double
Floorplan::utilization() const
{
    const double b = bounds_.area();
    return b > 0 ? usedArea() / b : 0.0;
}

} // namespace geom
} // namespace ehpsim
