#include "geom/transform.hh"

#include "sim/logging.hh"

namespace ehpsim
{
namespace geom
{

const char *
orientName(Orient o)
{
    switch (o) {
      case Orient::r0:
        return "r0";
      case Orient::r180:
        return "r180";
      case Orient::mirrored:
        return "mirrored";
      case Orient::mirroredR180:
        return "mirroredR180";
    }
    panic("bad orientation");
}

Orient
compose(Orient inner, Orient outer)
{
    // The group {r0, r180, mirrored, mirroredR180} is the Klein
    // four-group: every element is its own inverse, and composing two
    // distinct non-identity elements yields the third.
    if (inner == Orient::r0)
        return outer;
    if (outer == Orient::r0)
        return inner;
    if (inner == outer)
        return Orient::r0;
    // Distinct non-identity elements: result is the remaining one.
    int mask = 0;
    auto bits = [](Orient o) {
        switch (o) {
          case Orient::r0:
            return 0;
          case Orient::r180:
            return 1;
          case Orient::mirrored:
            return 2;
          case Orient::mirroredR180:
            return 3;
        }
        return 0;
    };
    mask = bits(inner) ^ bits(outer);
    switch (mask) {
      case 1:
        return Orient::r180;
      case 2:
        return Orient::mirrored;
      case 3:
        return Orient::mirroredR180;
      default:
        return Orient::r0;
    }
}

Point
Transform::apply(const Point &p) const
{
    Point q = p;
    switch (orient_) {
      case Orient::r0:
        break;
      case Orient::r180:
        q = {w_ - p.x, h_ - p.y};
        break;
      case Orient::mirrored:
        q = {w_ - p.x, p.y};
        break;
      case Orient::mirroredR180:
        // mirror about vertical axis, then rotate 180:
        // (x,y) -> (w-x, y) -> (w-(w-x), h-y) = (x, h-y)
        q = {p.x, h_ - p.y};
        break;
    }
    return {q.x + dx_, q.y + dy_};
}

Rect
Transform::apply(const Rect &r) const
{
    const Point a = apply(Point{r.x, r.y});
    const Point b = apply(Point{r.right(), r.top()});
    const double nx = std::min(a.x, b.x);
    const double ny = std::min(a.y, b.y);
    return {nx, ny, std::fabs(b.x - a.x), std::fabs(b.y - a.y)};
}

std::vector<Point>
Transform::apply(const std::vector<Point> &pts) const
{
    std::vector<Point> out;
    out.reserve(pts.size());
    for (const auto &p : pts)
        out.push_back(apply(p));
    return out;
}

} // namespace geom
} // namespace ehpsim
