#include "geom/footprint.hh"

#include <cmath>

#include "sim/logging.hh"

namespace ehpsim
{
namespace geom
{

std::vector<Point>
InterfaceBank::pads() const
{
    PowerTsvGrid grid(region, pitch_mm);
    return grid.sites();
}

std::size_t
InterfaceBank::numPads() const
{
    PowerTsvGrid grid(region, pitch_mm);
    return grid.numSites();
}

void
ChipletFootprint::addBank(const InterfaceBank &bank)
{
    if (!outline().contains(bank.region))
        fatal("interface bank '", bank.name, "' outside die '", name_,
              "'");
    banks_.push_back(bank);
}

const InterfaceBank *
ChipletFootprint::findBank(const std::string &name) const
{
    for (const auto &b : banks_) {
        if (b.name == name)
            return &b;
    }
    return nullptr;
}

std::vector<Point>
ChipletFootprint::allPads() const
{
    std::vector<Point> out;
    for (const auto &b : banks_) {
        auto pads = b.pads();
        out.insert(out.end(), pads.begin(), pads.end());
    }
    return out;
}

Rect
PlacedChiplet::placedOutline() const
{
    return transform.apply(footprint->outline());
}

std::vector<Point>
PlacedChiplet::placedPads() const
{
    return transform.apply(footprint->allPads());
}

} // namespace geom
} // namespace ehpsim
