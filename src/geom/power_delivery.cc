#include "geom/power_delivery.hh"

#include "sim/logging.hh"

namespace ehpsim
{
namespace geom
{

double
PowerDeliveryModel::currentForPower(double watts) const
{
    if (supply_v_ <= 0)
        fatal("supply voltage must be positive");
    return watts / supply_v_;
}

DeliveryCheck
PowerDeliveryModel::check(const std::string &path_name,
                          double watts) const
{
    for (const auto &p : paths_) {
        if (p.name == path_name) {
            DeliveryCheck c;
            c.name = p.name;
            c.demand_a = currentForPower(watts);
            c.capacity_a = p.maxCurrent();
            c.margin = c.demand_a > 0 ? c.capacity_a / c.demand_a : 1e9;
            c.i2r_loss_w =
                c.demand_a * c.demand_a * p.resistance_mohm * 1e-3;
            c.ok = c.capacity_a >= c.demand_a;
            return c;
        }
    }
    fatal("unknown power delivery path '", path_name, "'");
}

std::vector<DeliveryCheck>
PowerDeliveryModel::checkAll(
    const std::vector<double> &watts_per_path) const
{
    if (watts_per_path.size() != paths_.size())
        fatal("checkAll: demand count ", watts_per_path.size(),
              " != path count ", paths_.size());
    std::vector<DeliveryCheck> out;
    for (std::size_t i = 0; i < paths_.size(); ++i)
        out.push_back(check(paths_[i].name, watts_per_path[i]));
    return out;
}

} // namespace geom
} // namespace ehpsim
