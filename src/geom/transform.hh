/**
 * @file
 * Chiplet placement transforms: rotation by 180 degrees and mirroring.
 *
 * MI300's IODs are instantiated in four flavours: normal, rotated
 * 180deg, mirrored, and mirrored+rotated (paper Fig. 9). A Transform
 * maps points in a die's local coordinate frame (origin at the
 * lower-left of a w x h die) to the transformed local frame, plus an
 * optional placement offset into package coordinates.
 */

#ifndef EHPSIM_GEOM_TRANSFORM_HH
#define EHPSIM_GEOM_TRANSFORM_HH

#include <array>
#include <string>
#include <vector>

#include "geom/rect.hh"

namespace ehpsim
{
namespace geom
{

/** The four orientations arising from mirror and 180-deg rotation. */
enum class Orient
{
    r0,             ///< as drawn
    r180,           ///< rotated 180 degrees
    mirrored,       ///< mirrored about the vertical axis
    mirroredR180,   ///< mirrored then rotated 180 degrees
};

/** All four orientations, for exhaustive sweeps. */
constexpr std::array<Orient, 4> allOrients = {
    Orient::r0, Orient::r180, Orient::mirrored, Orient::mirroredR180,
};

/** Human-readable orientation name. */
const char *orientName(Orient o);

/** Orientation resulting from applying @p outer after @p inner. */
Orient compose(Orient inner, Orient outer);

/** True when the orientation includes a mirror. */
inline bool
isMirrored(Orient o)
{
    return o == Orient::mirrored || o == Orient::mirroredR180;
}

/**
 * Placement of a w x h die: orientation about the die's own bounding
 * box, then translation by (dx, dy).
 */
class Transform
{
  public:
    Transform(double die_w, double die_h, Orient orient,
              double dx = 0, double dy = 0)
        : w_(die_w), h_(die_h), orient_(orient), dx_(dx), dy_(dy)
    {}

    Orient orient() const { return orient_; }

    /** Map a local point into the placed frame. */
    Point apply(const Point &p) const;

    /** Map a local rectangle (axis-aligned in, axis-aligned out). */
    Rect apply(const Rect &r) const;

    /** Map a whole set of points. */
    std::vector<Point> apply(const std::vector<Point> &pts) const;

  private:
    double w_;
    double h_;
    Orient orient_;
    double dx_;
    double dy_;
};

} // namespace geom
} // namespace ehpsim

#endif // EHPSIM_GEOM_TRANSFORM_HH
