/**
 * @file
 * Named-region floorplans used by the package model and the thermal
 * solver. A Floorplan maps component names (e.g., "iod0.xcd1",
 * "hbm3", "iod2.usr_phy_e") to rectangles in package coordinates and
 * supports overlap/fit validation plus utilization accounting
 * (the paper criticizes EHPv4 for leaving package area unused).
 */

#ifndef EHPSIM_GEOM_FLOORPLAN_HH
#define EHPSIM_GEOM_FLOORPLAN_HH

#include <string>
#include <vector>

#include "geom/rect.hh"

namespace ehpsim
{
namespace geom
{

/** Coarse component classes used for power/thermal attribution. */
enum class RegionKind
{
    compute,    ///< XCD/CCD compute silicon
    cache,      ///< Infinity Cache / SRAM regions
    memory,     ///< HBM stacks
    phy,        ///< HBM PHYs, USR PHYs, SerDes
    io,         ///< x16 I/O interfaces
    fabric,     ///< data-fabric / NoC silicon
    substrate,  ///< interposer/substrate or structural silicon
    unused,     ///< explicitly wasted area (EHPv4 critique)
};

const char *regionKindName(RegionKind k);

struct Region
{
    std::string name;
    Rect rect;
    RegionKind kind = RegionKind::substrate;
};

class Floorplan
{
  public:
    /** @param bounds The package (or die) outline. */
    explicit Floorplan(Rect bounds) : bounds_(bounds) {}

    const Rect &bounds() const { return bounds_; }

    /** Add a region; fatal() if it exceeds the bounds. */
    void add(const std::string &name, const Rect &r, RegionKind kind);

    const std::vector<Region> &regions() const { return regions_; }

    const Region *find(const std::string &name) const;

    /** Regions of a given kind. */
    std::vector<const Region *> byKind(RegionKind kind) const;

    /** True when no two regions overlap. */
    bool overlapFree() const;

    /** Names of overlapping region pairs (for diagnostics). */
    std::vector<std::string> overlaps() const;

    /** Sum of region areas (mm^2), excluding 'unused' regions. */
    double usedArea() const;

    /** Fraction of the bounds covered by non-unused regions. */
    double utilization() const;

  private:
    Rect bounds_;
    std::vector<Region> regions_;
};

} // namespace geom
} // namespace ehpsim

#endif // EHPSIM_GEOM_FLOORPLAN_HH
