/**
 * @file
 * TSV site sets: uniform power/ground grids and signal-TSV banks.
 *
 * The paper (Sec. V.C/V.D, Figs. 9-10) describes two alignment
 * problems solved in MI300A:
 *  1. Signal TSV banks must line up with unmirrored chiplets for every
 *     mirrored/rotated IOD instance; the fix is replicating the banks
 *     at their mirrored positions ("redundant TSVs", Fig. 9).
 *  2. Power/ground TSVs form a uniform grid that is symmetric under
 *     mirroring and 180-deg rotation by construction (Fig. 10).
 */

#ifndef EHPSIM_GEOM_TSV_GRID_HH
#define EHPSIM_GEOM_TSV_GRID_HH

#include <string>
#include <vector>

#include "geom/rect.hh"
#include "geom/transform.hh"

namespace ehpsim
{
namespace geom
{

/** An unordered set of TSV landing sites with point-membership. */
class TsvSiteSet
{
  public:
    TsvSiteSet() = default;

    explicit TsvSiteSet(std::vector<Point> sites)
        : sites_(std::move(sites))
    {}

    void add(const Point &p) { sites_.push_back(p); }

    void add(const std::vector<Point> &pts);

    std::size_t size() const { return sites_.size(); }

    const std::vector<Point> &sites() const { return sites_; }

    /** True if a site exists at @p p (within tolerance). */
    bool containsSite(const Point &p) const;

    /** True if every point in @p pts lands on some site. */
    bool containsAll(const std::vector<Point> &pts) const;

    /** Number of points in @p pts that land on some site. */
    std::size_t countAligned(const std::vector<Point> &pts) const;

    /** This set transformed die-locally by @p t. */
    TsvSiteSet transformed(const Transform &t) const;

    /** Union of this set and the same set mirrored within a die. */
    TsvSiteSet withMirrorRedundancy(double die_w, double die_h) const;

    /**
     * True when this set is invariant under die-local transform @p o
     * of a die_w x die_h die.
     */
    bool symmetricUnder(Orient o, double die_w, double die_h) const;

  private:
    std::vector<Point> sites_;
};

/**
 * A uniform power/ground TSV grid covering a region at a fixed pitch.
 * The grid is centred in the region so that it is symmetric under
 * both mirroring and 180-deg rotation of the die.
 */
class PowerTsvGrid
{
  public:
    /**
     * @param region Die-local region to fill.
     * @param pitch_mm Site pitch (e.g., 0.025 for a 25 um grid).
     */
    PowerTsvGrid(const Rect &region, double pitch_mm);

    const Rect &region() const { return region_; }

    double pitch() const { return pitch_; }

    std::size_t numSites() const { return nx_ * ny_; }

    /** All sites, materialized. */
    std::vector<Point> sites() const;

    /** TSV site density in sites per mm^2. */
    double density() const;

    /**
     * Deliverable current in amps given a per-area rating
     * (paper: >1.5 A/mm^2 through the stacked-die TSV grid).
     */
    double currentCapacity(double amps_per_mm2) const;

    /**
     * Rectangular channels between TSV stripes available for SRAM
     * macros (Fig. 10): the free width between adjacent columns.
     */
    double channelWidth(double tsv_keepout_mm) const;

  private:
    Rect region_;
    double pitch_;
    std::size_t nx_;
    std::size_t ny_;
    double x0_;
    double y0_;
};

} // namespace geom
} // namespace ehpsim

#endif // EHPSIM_GEOM_TSV_GRID_HH
