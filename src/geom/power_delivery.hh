/**
 * @file
 * Package power-delivery model (paper Sec. V.D).
 *
 * MI300A delivers >1.5 A/mm^2 through the IOD's P/G TSV grid to the
 * stacked compute chiplets, plus 0.5 A/mm^2 through the IOD's bottom
 * microbump interface for the IOD itself. This model checks current
 * demand against those ratings and estimates resistive (I^2 R) loss.
 */

#ifndef EHPSIM_GEOM_POWER_DELIVERY_HH
#define EHPSIM_GEOM_POWER_DELIVERY_HH

#include <string>
#include <vector>

#include "geom/rect.hh"

namespace ehpsim
{
namespace geom
{

/** One vertical power-delivery path (TSV grid or microbump field). */
struct DeliveryPath
{
    std::string name;
    double area_mm2 = 0;            ///< area of the delivery region
    double rating_a_per_mm2 = 0;    ///< current rating
    double resistance_mohm = 0;     ///< effective path resistance

    double maxCurrent() const { return area_mm2 * rating_a_per_mm2; }
};

/** Demand/capacity result for one path. */
struct DeliveryCheck
{
    std::string name;
    double demand_a = 0;
    double capacity_a = 0;
    double margin = 0;          ///< capacity/demand (>= 1 is ok)
    double i2r_loss_w = 0;      ///< resistive loss at this demand
    bool ok = false;
};

/** Power-delivery network: a set of paths plus supply voltage. */
class PowerDeliveryModel
{
  public:
    explicit PowerDeliveryModel(double supply_v) : supply_v_(supply_v) {}

    void addPath(const DeliveryPath &p) { paths_.push_back(p); }

    const std::vector<DeliveryPath> &paths() const { return paths_; }

    double supplyVoltage() const { return supply_v_; }

    /** Current (A) required to deliver @p watts at the supply rail. */
    double currentForPower(double watts) const;

    /** Check one named path against a power demand in watts. */
    DeliveryCheck check(const std::string &path_name,
                        double watts) const;

    /** Check every path against per-path power demands (by index). */
    std::vector<DeliveryCheck>
    checkAll(const std::vector<double> &watts_per_path) const;

  private:
    double supply_v_;
    std::vector<DeliveryPath> paths_;
};

} // namespace geom
} // namespace ehpsim

#endif // EHPSIM_GEOM_POWER_DELIVERY_HH
