/**
 * @file
 * 2-D points and axis-aligned rectangles in millimetres.
 *
 * All package/floorplan geometry in ehpsim is expressed in mm with a
 * small comparison tolerance, matching the granularity of published
 * die dimensions.
 */

#ifndef EHPSIM_GEOM_RECT_HH
#define EHPSIM_GEOM_RECT_HH

#include <algorithm>
#include <cmath>

namespace ehpsim
{
namespace geom
{

/** Comparison tolerance in mm (1 micron). */
constexpr double tolMm = 1e-3;

/** True when two coordinates are equal within tolerance. */
inline bool
nearEq(double a, double b)
{
    return std::fabs(a - b) <= tolMm;
}

struct Point
{
    double x = 0;
    double y = 0;

    bool
    operator==(const Point &o) const
    {
        return nearEq(x, o.x) && nearEq(y, o.y);
    }
};

/** Axis-aligned rectangle defined by its lower-left corner and size. */
struct Rect
{
    double x = 0;       ///< lower-left x (mm)
    double y = 0;       ///< lower-left y (mm)
    double w = 0;       ///< width (mm)
    double h = 0;       ///< height (mm)

    double area() const { return w * h; }

    double right() const { return x + w; }

    double top() const { return y + h; }

    Point center() const { return {x + w / 2, y + h / 2}; }

    bool
    contains(const Point &p) const
    {
        return p.x >= x - tolMm && p.x <= right() + tolMm &&
               p.y >= y - tolMm && p.y <= top() + tolMm;
    }

    bool
    contains(const Rect &o) const
    {
        return o.x >= x - tolMm && o.right() <= right() + tolMm &&
               o.y >= y - tolMm && o.top() <= top() + tolMm;
    }

    bool
    intersects(const Rect &o) const
    {
        return o.x < right() - tolMm && o.right() > x + tolMm &&
               o.y < top() - tolMm && o.top() > y + tolMm;
    }

    /** The overlapping region (zero-size when disjoint). */
    Rect
    intersection(const Rect &o) const
    {
        const double nx = std::max(x, o.x);
        const double ny = std::max(y, o.y);
        const double nr = std::min(right(), o.right());
        const double nt = std::min(top(), o.top());
        if (nr <= nx || nt <= ny)
            return {nx, ny, 0, 0};
        return {nx, ny, nr - nx, nt - ny};
    }

    /** Smallest rectangle containing both. */
    Rect
    bbox(const Rect &o) const
    {
        const double nx = std::min(x, o.x);
        const double ny = std::min(y, o.y);
        const double nr = std::max(right(), o.right());
        const double nt = std::max(top(), o.top());
        return {nx, ny, nr - nx, nt - ny};
    }

    /** Rectangle translated by (dx, dy). */
    Rect
    translated(double dx, double dy) const
    {
        return {x + dx, y + dy, w, h};
    }
};

} // namespace geom
} // namespace ehpsim

#endif // EHPSIM_GEOM_RECT_HH
