/**
 * @file
 * 3D-stacking alignment checks (paper Fig. 9).
 *
 * An IodTsvPlan holds an IOD's signal TSV landing sites. The plan is
 * built from base banks and may add mirror-redundant copies so that
 * *unmirrored* compute chiplets align on both normal and mirrored IOD
 * instances. checkStackAlignment() verifies that every bond pad of a
 * placed chiplet lands on a TSV site of the (possibly transformed)
 * IOD below.
 */

#ifndef EHPSIM_GEOM_ALIGNMENT_HH
#define EHPSIM_GEOM_ALIGNMENT_HH

#include <string>
#include <vector>

#include "geom/footprint.hh"
#include "geom/tsv_grid.hh"

namespace ehpsim
{
namespace geom
{

/** Result of an alignment check. */
struct AlignmentResult
{
    bool aligned = false;
    std::size_t pads_checked = 0;
    std::size_t pads_aligned = 0;
};

/** Signal-TSV plan of one IOD design. */
class IodTsvPlan
{
  public:
    /**
     * @param iod_w IOD die width (mm).
     * @param iod_h IOD die height (mm).
     */
    IodTsvPlan(double iod_w, double iod_h)
        : width_(iod_w), height_(iod_h)
    {}

    double width() const { return width_; }

    double height() const { return height_; }

    /** Add a bank of TSV sites (IOD-local coordinates). */
    void addBank(const InterfaceBank &bank);

    /**
     * Add the mirror-redundant copies of every bank added so far
     * (the red-circled TSVs of Fig. 9).
     */
    void addMirrorRedundancy();

    /** Total TSV site count, including redundant sites. */
    std::size_t numSites() const { return sites_.size(); }

    /** Sites the IOD presents when instantiated with orientation o. */
    TsvSiteSet sitesWhenPlaced(Orient o) const;

    /**
     * Check a chiplet stacked on this IOD.
     * @param chiplet The compute die (its pads, die-local).
     * @param chiplet_orient Chiplet orientation on the IOD.
     * @param offset_x,offset_y Chiplet origin in IOD coordinates.
     * @param iod_orient How this IOD instance is placed.
     */
    AlignmentResult
    checkStackAlignment(const ChipletFootprint &chiplet,
                        Orient chiplet_orient, double offset_x,
                        double offset_y, Orient iod_orient) const;

  private:
    double width_;
    double height_;
    TsvSiteSet sites_;
};

} // namespace geom
} // namespace ehpsim

#endif // EHPSIM_GEOM_ALIGNMENT_HH
