/**
 * @file
 * Die-attach interface models (paper Secs. V.A, V.D, Figs. 3, 6, 11).
 *
 * MI300 mixes three vertical interconnect classes:
 *  - hybrid bonding (direct Cu-Cu fusion): 9 um pad pitch for both
 *    V-Cache and MI300A, superior thermal conduction, used to stack
 *    CCDs/XCDs on the IODs;
 *  - microbumps: 35 um minimum pitch (the USR interface), used
 *    between the IODs and the 2.5D interposer and for HBM stacks;
 *  - conventional C4/organic-substrate bumps (~130 um), the EHPv4-
 *    era 2D interconnect.
 *
 * The BondInterface model exposes the figure-of-merit comparisons
 * the paper makes: connection density, areal bandwidth density, and
 * thermal conduction. Fig. 11's BPV change (landing the bond-pad via
 * on the aluminum RDL instead of top-level metal) is modeled as a
 * power-delivery resistance difference.
 */

#ifndef EHPSIM_GEOM_BONDING_HH
#define EHPSIM_GEOM_BONDING_HH

#include <string>

namespace ehpsim
{
namespace geom
{

enum class BondKind
{
    hybridBond,     ///< Cu-Cu direct bond (V-Cache, MI300 3D)
    microbump,      ///< solder microbumps (2.5D, HBM, USR)
    c4Bump,         ///< conventional flip-chip bumps (2D substrate)
};

const char *bondKindName(BondKind k);

struct BondInterface
{
    BondKind kind = BondKind::hybridBond;
    double pitch_um = 9.0;
    /** Signal bandwidth per connection (Gbit/s). */
    double gbps_per_connection = 4.0;
    /** Thermal conductance per mm^2 of interface (W/(K*mm^2)). */
    double thermal_w_per_k_mm2 = 2.0;
    /** Series resistance per connection (mOhm). */
    double resistance_mohm = 50.0;

    /** Connections per mm^2 (square grid at the pitch). */
    double connectionsPerMm2() const;

    /** Areal bandwidth density in Tbps/mm^2. */
    double bandwidthDensityTbpsMm2() const;

    /**
     * Vertical thermal resistance (K/W) of an @p area_mm2 interface.
     */
    double thermalResistance(double area_mm2) const;

    /**
     * Effective power-delivery resistance (mOhm) of an @p area_mm2
     * field with a @p pg_fraction share of power/ground connections.
     */
    double powerResistanceMohm(double area_mm2,
                               double pg_fraction) const;
};

/** The 9 um hybrid-bond interface of V-Cache and MI300A. */
BondInterface hybridBond9um();

/** The 35 um microbump interface (USR minimum pitch). */
BondInterface microbump35um();

/** Conventional ~130 um flip-chip bumps (2D packaging). */
BondInterface c4Bump130um();

/**
 * Fig. 11 contrast: effective bond-pad-via resistance when landing
 * on top-level metal (V-Cache-era SRAM die) vs directly on the
 * aluminum RDL (MI300A compute die), in mOhm per connection. The
 * RDL path is lower resistance, which is what lets the same hybrid
 * bond process feed high-power compute chiplets.
 */
double bpvResistanceMohm(bool lands_on_rdl);

} // namespace geom
} // namespace ehpsim

#endif // EHPSIM_GEOM_BONDING_HH
