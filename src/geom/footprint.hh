/**
 * @file
 * Chiplet footprints and die-to-die interface banks.
 *
 * A ChipletFootprint is a die outline plus named banks of bond-pad
 * (BPM) sites in die-local coordinates. An InterfaceBank models one
 * signal interface (e.g., one CCD's GMI-style 3D interface, or one
 * XCD TSV field) as a rectangular array of pads.
 */

#ifndef EHPSIM_GEOM_FOOTPRINT_HH
#define EHPSIM_GEOM_FOOTPRINT_HH

#include <string>
#include <vector>

#include "geom/rect.hh"
#include "geom/transform.hh"
#include "geom/tsv_grid.hh"

namespace ehpsim
{
namespace geom
{

/** A rectangular array of bond pads forming one signal interface. */
struct InterfaceBank
{
    std::string name;
    Rect region;        ///< die-local bounding box
    double pitch_mm;    ///< pad pitch (9 um hybrid bond, 35 um ubump)

    /** Materialize the pad sites (centred grid, like PowerTsvGrid). */
    std::vector<Point> pads() const;

    /** Number of pads in the bank. */
    std::size_t numPads() const;
};

/** A die outline plus its signal interface banks. */
class ChipletFootprint
{
  public:
    ChipletFootprint(std::string name, double w_mm, double h_mm)
        : name_(std::move(name)), width_(w_mm), height_(h_mm)
    {}

    const std::string &name() const { return name_; }

    double width() const { return width_; }

    double height() const { return height_; }

    double area() const { return width_ * height_; }

    Rect outline() const { return {0, 0, width_, height_}; }

    /** Add a signal interface bank; must lie within the outline. */
    void addBank(const InterfaceBank &bank);

    const std::vector<InterfaceBank> &banks() const { return banks_; }

    const InterfaceBank *findBank(const std::string &name) const;

    /** All pads from all banks, in die-local coordinates. */
    std::vector<Point> allPads() const;

  private:
    std::string name_;
    double width_;
    double height_;
    std::vector<InterfaceBank> banks_;
};

/** A placed chiplet: footprint + placement transform. */
struct PlacedChiplet
{
    const ChipletFootprint *footprint;
    Transform transform;

    /** Placed outline in package coordinates. */
    Rect placedOutline() const;

    /** All pads in package coordinates. */
    std::vector<Point> placedPads() const;
};

} // namespace geom
} // namespace ehpsim

#endif // EHPSIM_GEOM_FOOTPRINT_HH
