#include "geom/tsv_grid.hh"

#include <cmath>

#include "sim/logging.hh"

namespace ehpsim
{
namespace geom
{

void
TsvSiteSet::add(const std::vector<Point> &pts)
{
    sites_.insert(sites_.end(), pts.begin(), pts.end());
}

bool
TsvSiteSet::containsSite(const Point &p) const
{
    for (const auto &s : sites_) {
        if (s == p)
            return true;
    }
    return false;
}

bool
TsvSiteSet::containsAll(const std::vector<Point> &pts) const
{
    for (const auto &p : pts) {
        if (!containsSite(p))
            return false;
    }
    return true;
}

std::size_t
TsvSiteSet::countAligned(const std::vector<Point> &pts) const
{
    std::size_t n = 0;
    for (const auto &p : pts) {
        if (containsSite(p))
            ++n;
    }
    return n;
}

TsvSiteSet
TsvSiteSet::transformed(const Transform &t) const
{
    return TsvSiteSet(t.apply(sites_));
}

TsvSiteSet
TsvSiteSet::withMirrorRedundancy(double die_w, double die_h) const
{
    Transform mirror(die_w, die_h, Orient::mirrored);
    TsvSiteSet out = *this;
    for (const auto &p : sites_) {
        const Point q = mirror.apply(p);
        if (!out.containsSite(q))
            out.add(q);
    }
    return out;
}

bool
TsvSiteSet::symmetricUnder(Orient o, double die_w, double die_h) const
{
    Transform t(die_w, die_h, o);
    for (const auto &p : sites_) {
        if (!containsSite(t.apply(p)))
            return false;
    }
    return true;
}

PowerTsvGrid::PowerTsvGrid(const Rect &region, double pitch_mm)
    : region_(region), pitch_(pitch_mm)
{
    if (pitch_mm <= 0)
        fatal("power TSV grid pitch must be positive");
    nx_ = static_cast<std::size_t>(std::floor(region.w / pitch_mm)) + 1;
    ny_ = static_cast<std::size_t>(std::floor(region.h / pitch_mm)) + 1;
    // Centre the grid inside the region so the site set is symmetric
    // under mirror and r180 about the region centre.
    const double span_x = static_cast<double>(nx_ - 1) * pitch_mm;
    const double span_y = static_cast<double>(ny_ - 1) * pitch_mm;
    x0_ = region.x + (region.w - span_x) / 2;
    y0_ = region.y + (region.h - span_y) / 2;
}

std::vector<Point>
PowerTsvGrid::sites() const
{
    std::vector<Point> out;
    out.reserve(nx_ * ny_);
    for (std::size_t i = 0; i < nx_; ++i) {
        for (std::size_t j = 0; j < ny_; ++j) {
            out.push_back({x0_ + static_cast<double>(i) * pitch_,
                           y0_ + static_cast<double>(j) * pitch_});
        }
    }
    return out;
}

double
PowerTsvGrid::density() const
{
    const double a = region_.area();
    return a > 0 ? static_cast<double>(numSites()) / a : 0.0;
}

double
PowerTsvGrid::currentCapacity(double amps_per_mm2) const
{
    return amps_per_mm2 * region_.area();
}

double
PowerTsvGrid::channelWidth(double tsv_keepout_mm) const
{
    const double free = pitch_ - tsv_keepout_mm;
    return free > 0 ? free : 0.0;
}

} // namespace geom
} // namespace ehpsim
