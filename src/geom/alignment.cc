#include "geom/alignment.hh"

namespace ehpsim
{
namespace geom
{

void
IodTsvPlan::addBank(const InterfaceBank &bank)
{
    for (const auto &p : bank.pads()) {
        if (!sites_.containsSite(p))
            sites_.add(p);
    }
}

void
IodTsvPlan::addMirrorRedundancy()
{
    sites_ = sites_.withMirrorRedundancy(width_, height_);
}

TsvSiteSet
IodTsvPlan::sitesWhenPlaced(Orient o) const
{
    Transform t(width_, height_, o);
    return sites_.transformed(t);
}

AlignmentResult
IodTsvPlan::checkStackAlignment(const ChipletFootprint &chiplet,
                                Orient chiplet_orient, double offset_x,
                                double offset_y,
                                Orient iod_orient) const
{
    // Chiplet pads in IOD-instance coordinates. The chiplet is placed
    // in the *package* frame; the IOD instance below is itself
    // transformed, so the effective site set is the plan transformed
    // by iod_orient.
    Transform chip_t(chiplet.width(), chiplet.height(), chiplet_orient,
                     offset_x, offset_y);
    const auto pads = chip_t.apply(chiplet.allPads());
    const TsvSiteSet sites = sitesWhenPlaced(iod_orient);

    AlignmentResult res;
    res.pads_checked = pads.size();
    res.pads_aligned = sites.countAligned(pads);
    res.aligned = res.pads_aligned == res.pads_checked &&
                  res.pads_checked > 0;
    return res;
}

} // namespace geom
} // namespace ehpsim
