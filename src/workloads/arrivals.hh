/**
 * @file
 * Open-loop request-arrival traces for the serving subsystem
 * (src/serve).
 *
 * A serving simulation is only as honest as its arrival process:
 * closed-loop "next request when the last one finishes" benchmarks
 * hide every queueing effect the paper's millions-of-users story is
 * about. These generators produce the whole trace up front from one
 * seed, so a serving sweep point is a pure function of its
 * parameters:
 *
 *  - poissonArrivals(): memoryless arrivals at a fixed offered load,
 *    the classic open-loop model;
 *  - mmppArrivals(): a two-state Markov-modulated Poisson process
 *    (calm / burst) whose bursts exercise admission control and
 *    KV-cache pressure far harder than the same mean load spread
 *    evenly.
 *
 * Prompt and output lengths are jittered uniformly around their
 * means from the same seeded Rng.
 */

#ifndef EHPSIM_WORKLOADS_ARRIVALS_HH
#define EHPSIM_WORKLOADS_ARRIVALS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace ehpsim
{
namespace workloads
{

/** One serving request: when it arrives and how big it is. */
struct ServingRequestSpec
{
    Tick arrival = 0;
    unsigned input_tokens = 0;
    unsigned output_tokens = 0;
};

/** Knobs shared by every arrival process. */
struct ArrivalParams
{
    std::uint64_t seed = 1;
    unsigned num_requests = 32;
    /** Mean offered load, requests per simulated second. */
    double rate_per_s = 1.0;
    unsigned mean_input_tokens = 1024;
    unsigned mean_output_tokens = 256;
    /** Lengths are uniform in mean * [1 - jitter, 1 + jitter]. */
    double token_jitter = 0.25;

    /** Fatal on nonpositive rate, zero tokens, or jitter >= 1. */
    void validate() const;
};

/** Two-state MMPP shape: calm / burst dwell times and intensity. */
struct MmppParams
{
    /** Burst-state rate as a multiple of the calm-state rate. */
    double burst_rate_multiplier = 8.0;
    double mean_calm_s = 2.0;
    double mean_burst_s = 0.5;

    /** Fatal on nonpositive dwell times or multiplier < 1. */
    void validate() const;
};

/**
 * Seeded Poisson arrivals: exponential inter-arrival times at
 * @p p.rate_per_s. Arrival ticks are strictly increasing.
 */
std::vector<ServingRequestSpec> poissonArrivals(const ArrivalParams &p);

/**
 * Seeded two-state MMPP arrivals. The calm-state rate is derived so
 * the stationary mean equals @p p.rate_per_s; the burst state runs
 * at @p m.burst_rate_multiplier times that. State dwell times are
 * exponential with the given means.
 */
std::vector<ServingRequestSpec> mmppArrivals(const ArrivalParams &p,
                                             const MmppParams &m);

} // namespace workloads
} // namespace ehpsim

#endif // EHPSIM_WORKLOADS_ARRIVALS_HH
