/**
 * @file
 * Synthetic workload generators standing in for the paper's
 * applications (see DESIGN.md's substitution table).
 *
 *  - streamTriad: pure bandwidth (fabric/memory benches);
 *  - gemm: dense matrix multiply, compute-bound at large sizes;
 *  - nbody: the mini-nbody kernel, O(N^2) compute-bound (Fig. 20);
 *  - hpcg: memory-bound sparse CG iterations (Fig. 20);
 *  - cfdSolver: OpenFOAM-like coupled solver — compute-intense,
 *    bandwidth-hungry, with per-iteration CPU<->GPU exchange, the
 *    case where the APU shines (Fig. 20's 2.75x);
 *  - llmPrefill / llmDecode: LLM inference phases (Fig. 21);
 *  - gromacsLike: mixed short-range force kernel (Fig. 20).
 */

#ifndef EHPSIM_WORKLOADS_GENERATORS_HH
#define EHPSIM_WORKLOADS_GENERATORS_HH

#include "workloads/workload.hh"

namespace ehpsim
{
namespace workloads
{

/** STREAM triad over @p n doubles: a[i] = b[i] + s*c[i]. */
Workload streamTriad(std::uint64_t n, unsigned iterations = 1);

/** Dense C = A*B, m x k x n. */
Workload gemm(std::uint64_t m, std::uint64_t n, std::uint64_t k,
              gpu::DataType dt = gpu::DataType::fp32,
              gpu::Pipe pipe = gpu::Pipe::matrix, bool sparse = false);

/** mini-nbody: @p bodies bodies, @p steps steps, FP32 vector. */
Workload nbody(std::uint64_t bodies, unsigned steps = 1);

/** HPCG-like CG: nx*ny*nz grid, 27-point stencil, @p iters. */
Workload hpcg(std::uint64_t nx, std::uint64_t ny, std::uint64_t nz,
              unsigned iters = 10);

/**
 * OpenFOAM-like coupled CFD solver on @p cells cells for @p steps:
 * each step is GPU linear algebra plus CPU-side setup/reduction that
 * exchanges fields with the GPU.
 */
Workload cfdSolver(std::uint64_t cells, unsigned steps = 5);

/** GROMACS-like MD step: force kernel + neighbor bookkeeping. */
Workload gromacsLike(std::uint64_t atoms, unsigned steps = 5);

/** LLM inference configuration (paper Fig. 21's setup). */
struct LlmConfig
{
    std::uint64_t params = 70ull * 1000 * 1000 * 1000;  ///< 70 B
    unsigned batch = 1;
    unsigned input_tokens = 2048;
    unsigned output_tokens = 128;
    gpu::DataType dtype = gpu::DataType::fp16;
};

/** The prompt phase: one big compute-bound pass over the context. */
Workload llmPrefill(const LlmConfig &cfg);

/** Token generation: weight-streaming, bandwidth-bound. */
Workload llmDecode(const LlmConfig &cfg);

/** Full inference: prefill then decode. */
Workload llmInference(const LlmConfig &cfg);

} // namespace workloads
} // namespace ehpsim

#endif // EHPSIM_WORKLOADS_GENERATORS_HH
