#include "workloads/generators.hh"

namespace ehpsim
{
namespace workloads
{

Workload
streamTriad(std::uint64_t n, unsigned iterations)
{
    Workload w;
    w.name = "stream_triad";
    w.footprint_bytes = 3 * n * 8;
    for (unsigned it = 0; it < iterations; ++it) {
        Phase p;
        p.name = "triad" + std::to_string(it);
        p.device = PhaseDevice::gpu;
        p.gpu_flops = 2 * n;            // mul + add per element
        p.dtype = gpu::DataType::fp64;
        p.pipe = gpu::Pipe::vector;
        p.gpu_bytes_read = 2 * n * 8;   // b and c
        p.gpu_bytes_written = n * 8;    // a
        p.grid_workgroups = 1024;
        w.phases.push_back(p);
    }
    return w;
}

Workload
gemm(std::uint64_t m, std::uint64_t n, std::uint64_t k,
     gpu::DataType dt, gpu::Pipe pipe, bool sparse)
{
    Workload w;
    w.name = "gemm";
    const unsigned eb = gpu::dataTypeBytes(dt);
    w.footprint_bytes = (m * k + k * n + m * n) * eb;

    Phase p;
    p.name = "gemm";
    p.device = PhaseDevice::gpu;
    p.gpu_flops = 2 * m * n * k;
    p.dtype = dt;
    p.pipe = pipe;
    p.sparse = sparse;
    // Tiled GEMM touches each operand a modest number of times; a
    // well-blocked kernel approaches the compulsory traffic.
    p.gpu_bytes_read = (m * k + k * n) * eb * 2;
    p.gpu_bytes_written = m * n * eb;
    p.grid_workgroups = 2048;
    w.phases.push_back(p);
    return w;
}

Workload
nbody(std::uint64_t bodies, unsigned steps)
{
    Workload w;
    w.name = "nbody";
    w.footprint_bytes = bodies * 32;    // pos+vel in FP32
    for (unsigned s = 0; s < steps; ++s) {
        Phase p;
        p.name = "force_step" + std::to_string(s);
        p.device = PhaseDevice::gpu;
        // ~20 flops per pairwise interaction (mini-nbody).
        p.gpu_flops = 20 * bodies * bodies;
        p.dtype = gpu::DataType::fp32;
        p.pipe = gpu::Pipe::vector;
        // Positions are re-read per tile; O(N) traffic per step once
        // tiles are cached.
        p.gpu_bytes_read = bodies * 16 * 8;
        p.gpu_bytes_written = bodies * 16;
        p.grid_workgroups = 1024;
        w.phases.push_back(p);
    }
    return w;
}

Workload
hpcg(std::uint64_t nx, std::uint64_t ny, std::uint64_t nz,
     unsigned iters)
{
    Workload w;
    w.name = "hpcg";
    const std::uint64_t rows = nx * ny * nz;
    // 27-point stencil in CSR: ~27 values + 27 indices per row.
    const std::uint64_t matrix_bytes = rows * 27 * (8 + 4);
    w.footprint_bytes = matrix_bytes + rows * 8 * 6;
    for (unsigned it = 0; it < iters; ++it) {
        Phase spmv;
        spmv.name = "spmv" + std::to_string(it);
        spmv.device = PhaseDevice::gpu;
        spmv.gpu_flops = rows * 27 * 2;
        spmv.dtype = gpu::DataType::fp64;
        spmv.pipe = gpu::Pipe::vector;
        spmv.gpu_bytes_read = matrix_bytes + rows * 8;
        spmv.gpu_bytes_written = rows * 8;
        spmv.grid_workgroups = 1024;
        w.phases.push_back(spmv);

        Phase dot;
        dot.name = "dot_axpy" + std::to_string(it);
        dot.device = PhaseDevice::gpu;
        dot.gpu_flops = rows * 6;
        dot.dtype = gpu::DataType::fp64;
        dot.pipe = gpu::Pipe::vector;
        dot.gpu_bytes_read = rows * 8 * 3;
        dot.gpu_bytes_written = rows * 8;
        dot.grid_workgroups = 512;
        w.phases.push_back(dot);
    }
    return w;
}

Workload
cfdSolver(std::uint64_t cells, unsigned steps)
{
    Workload w;
    w.name = "cfd_solver";
    // ~25 doubles of state per cell (velocity, pressure, fluxes...).
    w.footprint_bytes = cells * 25 * 8;
    for (unsigned s = 0; s < steps; ++s) {
        // CPU assembles boundary conditions / matrix coefficients.
        Phase assemble;
        assemble.name = "cpu_assemble" + std::to_string(s);
        assemble.device = PhaseDevice::cpu;
        assemble.cpu_flops = cells * 40;
        assemble.cpu_scalar_ops = cells * 60;
        assemble.cpu_bytes_read = cells * 16;
        assemble.cpu_bytes_written = cells * 8;
        // The assembled coefficient field feeds the GPU solver
        // (copied over the host link on a discrete node, free on
        // the APU).
        assemble.to_gpu_bytes = cells * 8;
        w.phases.push_back(assemble);

        // GPU pressure/momentum solve: memory-hungry linear algebra.
        Phase solve;
        solve.name = "gpu_solve" + std::to_string(s);
        solve.device = PhaseDevice::gpuThenCpu;
        solve.gpu_flops = cells * 600;
        solve.dtype = gpu::DataType::fp64;
        solve.pipe = gpu::Pipe::vector;
        solve.gpu_bytes_read = cells * 20 * 8 * 4;  // multiple sweeps
        solve.gpu_bytes_written = cells * 8 * 8;
        solve.grid_workgroups = 2048;
        // CPU post-processes residuals/monitors each step.
        solve.cpu_flops = cells * 6;
        solve.cpu_scalar_ops = cells * 8;
        solve.cpu_bytes_read = cells * 8;
        solve.cpu_bytes_written = cells / 2;
        solve.to_cpu_bytes = cells * 4;
        solve.fine_grained_capable = true;
        w.phases.push_back(solve);
    }
    return w;
}

Workload
gromacsLike(std::uint64_t atoms, unsigned steps)
{
    Workload w;
    w.name = "gromacs_like";
    w.footprint_bytes = atoms * 100;
    for (unsigned s = 0; s < steps; ++s) {
        Phase force;
        force.name = "nb_force" + std::to_string(s);
        force.device = PhaseDevice::gpu;
        // Short-range nonbonded kernel: ~400 neighbors per atom,
        // ~30 flops per pair, FP32. Neighbor positions live in
        // LDS/L2 tiles, so DRAM traffic is near-compulsory.
        force.gpu_flops = atoms * 400 * 30;
        force.dtype = gpu::DataType::fp32;
        force.pipe = gpu::Pipe::vector;
        force.gpu_bytes_read = atoms * 256;
        force.gpu_bytes_written = atoms * 16;
        force.grid_workgroups = 1536;
        w.phases.push_back(force);

        Phase integrate;
        integrate.name = "integrate" + std::to_string(s);
        integrate.device = PhaseDevice::gpu;
        integrate.gpu_flops = atoms * 30;
        integrate.dtype = gpu::DataType::fp32;
        integrate.pipe = gpu::Pipe::vector;
        integrate.gpu_bytes_read = atoms * 48;
        integrate.gpu_bytes_written = atoms * 32;
        integrate.grid_workgroups = 512;
        w.phases.push_back(integrate);
    }
    return w;
}

Workload
llmPrefill(const LlmConfig &cfg)
{
    Workload w;
    w.name = "llm_prefill";
    const unsigned eb = gpu::dataTypeBytes(cfg.dtype);
    w.footprint_bytes = cfg.params * eb;

    Phase p;
    p.name = "prefill";
    p.device = PhaseDevice::gpu;
    // 2 flops per parameter per token.
    p.gpu_flops = 2ull * cfg.params * cfg.input_tokens * cfg.batch;
    p.dtype = cfg.dtype;
    p.pipe = gpu::Pipe::matrix;
    // One pass over the weights plus activation traffic.
    p.gpu_bytes_read = cfg.params * eb +
                       static_cast<std::uint64_t>(cfg.input_tokens) *
                           cfg.batch * 8192 * eb;
    p.gpu_bytes_written = static_cast<std::uint64_t>(
                              cfg.input_tokens) *
                          cfg.batch * 8192 * eb;
    p.grid_workgroups = 4096;
    w.phases.push_back(p);
    return w;
}

Workload
llmDecode(const LlmConfig &cfg)
{
    Workload w;
    w.name = "llm_decode";
    const unsigned eb = gpu::dataTypeBytes(cfg.dtype);
    w.footprint_bytes = cfg.params * eb;

    // Every generated token streams the full weight set (batch 1):
    // decode is bandwidth-bound (paper Sec. VII).
    Phase p;
    p.name = "decode";
    p.device = PhaseDevice::gpu;
    p.gpu_flops =
        2ull * cfg.params * cfg.output_tokens * cfg.batch;
    p.dtype = cfg.dtype;
    p.pipe = gpu::Pipe::matrix;
    p.gpu_bytes_read =
        static_cast<std::uint64_t>(cfg.output_tokens) * cfg.params *
        eb;
    p.gpu_bytes_written = static_cast<std::uint64_t>(
                              cfg.output_tokens) *
                          cfg.batch * 8192 * eb;
    p.grid_workgroups = 4096;
    w.phases.push_back(p);
    return w;
}

Workload
llmInference(const LlmConfig &cfg)
{
    Workload w;
    w.name = "llm_inference";
    Workload pre = llmPrefill(cfg);
    Workload dec = llmDecode(cfg);
    w.footprint_bytes = pre.footprint_bytes;
    w.phases = pre.phases;
    w.phases.insert(w.phases.end(), dec.phases.begin(),
                    dec.phases.end());
    return w;
}

} // namespace workloads
} // namespace ehpsim
