#include "workloads/workload.hh"

namespace ehpsim
{
namespace workloads
{

std::uint64_t
Workload::totalGpuFlops() const
{
    std::uint64_t f = 0;
    for (const auto &p : phases)
        f += p.gpu_flops;
    return f;
}

std::uint64_t
Workload::totalGpuBytes() const
{
    std::uint64_t b = 0;
    for (const auto &p : phases)
        b += p.gpu_bytes_read + p.gpu_bytes_written;
    return b;
}

std::uint64_t
Workload::totalTransferBytes() const
{
    std::uint64_t b = 0;
    for (const auto &p : phases)
        b += p.to_gpu_bytes + p.to_cpu_bytes;
    return b;
}

} // namespace workloads
} // namespace ehpsim
