#include "workloads/arrivals.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ehpsim
{
namespace workloads
{

void
ArrivalParams::validate() const
{
    if (rate_per_s <= 0.0)
        fatal("arrival rate must be positive, got ", rate_per_s);
    if (mean_input_tokens == 0 || mean_output_tokens == 0)
        fatal("mean token counts must be nonzero");
    if (token_jitter < 0.0 || token_jitter >= 1.0)
        fatal("token jitter must be in [0, 1), got ", token_jitter);
}

void
MmppParams::validate() const
{
    if (burst_rate_multiplier < 1.0)
        fatal("burst rate multiplier must be >= 1, got ",
              burst_rate_multiplier);
    if (mean_calm_s <= 0.0 || mean_burst_s <= 0.0)
        fatal("MMPP dwell times must be positive");
}

namespace
{

/** Exponential draw with mean 1/@p rate, seconds. */
double
expDraw(Rng &rng, double rate)
{
    // nextDouble() is in [0, 1); 1-u is in (0, 1], so log() is safe.
    return -std::log(1.0 - rng.nextDouble()) / rate;
}

/** Uniform draw in mean * [1 - jitter, 1 + jitter], at least 1. */
unsigned
jitteredTokens(Rng &rng, unsigned mean, double jitter)
{
    const double f = 1.0 - jitter + 2.0 * jitter * rng.nextDouble();
    const double v = static_cast<double>(mean) * f;
    return std::max(1u, static_cast<unsigned>(v));
}

ServingRequestSpec
makeRequest(Rng &rng, Tick arrival, const ArrivalParams &p)
{
    ServingRequestSpec r;
    r.arrival = arrival;
    r.input_tokens =
        jitteredTokens(rng, p.mean_input_tokens, p.token_jitter);
    r.output_tokens =
        jitteredTokens(rng, p.mean_output_tokens, p.token_jitter);
    return r;
}

} // anonymous namespace

std::vector<ServingRequestSpec>
poissonArrivals(const ArrivalParams &p)
{
    p.validate();
    Rng rng(p.seed);
    std::vector<ServingRequestSpec> out;
    out.reserve(p.num_requests);
    double t_s = 0.0;
    for (unsigned i = 0; i < p.num_requests; ++i) {
        t_s += expDraw(rng, p.rate_per_s);
        out.push_back(makeRequest(rng, ticksFromSeconds(t_s), p));
    }
    return out;
}

std::vector<ServingRequestSpec>
mmppArrivals(const ArrivalParams &p, const MmppParams &m)
{
    p.validate();
    m.validate();
    // Stationary mean rate = (r_c * T_c + r_b * T_b) / (T_c + T_b)
    // with r_b = mult * r_c; solve for the calm rate r_c.
    const double weight =
        (m.mean_calm_s + m.burst_rate_multiplier * m.mean_burst_s) /
        (m.mean_calm_s + m.mean_burst_s);
    const double calm_rate = p.rate_per_s / weight;
    const double burst_rate = calm_rate * m.burst_rate_multiplier;

    Rng rng(p.seed);
    std::vector<ServingRequestSpec> out;
    out.reserve(p.num_requests);
    double t_s = 0.0;
    bool burst = false;
    double switch_s = expDraw(rng, 1.0 / m.mean_calm_s);
    while (out.size() < p.num_requests) {
        const double rate = burst ? burst_rate : calm_rate;
        const double next = t_s + expDraw(rng, rate);
        if (next >= switch_s) {
            // The state flips before this arrival would land:
            // restart the (memoryless) draw from the switch point.
            t_s = switch_s;
            burst = !burst;
            switch_s =
                t_s + expDraw(rng, 1.0 / (burst ? m.mean_burst_s
                                                : m.mean_calm_s));
            continue;
        }
        t_s = next;
        out.push_back(makeRequest(rng, ticksFromSeconds(t_s), p));
    }
    return out;
}

} // namespace workloads
} // namespace ehpsim
