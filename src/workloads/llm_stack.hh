/**
 * @file
 * Software-stack efficiency table shared by the Fig. 21 bench and
 * the serving subsystem (src/serve).
 *
 * Sustained fraction of peak (math and bandwidth) per inference
 * software stack. vLLM's kernels are well tuned for MI300X (AMD's
 * launch stack) but generic on the baseline GPU; TensorRT-LLM is the
 * baseline vendor's heavily optimized stack; its FP8 path gives up
 * sustained efficiency for the halved footprint (quantize /
 * dequantize epilogues, less mature kernels). One definition here so
 * fig21 and bench/serving_llm cannot diverge.
 */

#ifndef EHPSIM_WORKLOADS_LLM_STACK_HH
#define EHPSIM_WORKLOADS_LLM_STACK_HH

#include "gpu/cdna.hh"

namespace ehpsim
{
namespace workloads
{

/** One inference software stack: sustained efficiency + data type. */
struct SoftwareStack
{
    const char *name;
    /** Fraction of peak math and bandwidth the stack sustains. */
    double efficiency;
    gpu::DataType dtype;
};

/** vLLM on MI300X: AMD's launch stack, well tuned there. */
constexpr SoftwareStack vllmMi300xStack = {"vLLM", 0.70,
                                           gpu::DataType::fp16};

/** vLLM on the baseline GPU: generic, untuned kernels. */
constexpr SoftwareStack vllmBaselineStack = {"vLLM", 0.40,
                                             gpu::DataType::fp16};

/** TensorRT-LLM FP16 on the baseline GPU: vendor-optimized. */
constexpr SoftwareStack trtllmBaselineStack = {"TensorRT-LLM", 0.80,
                                               gpu::DataType::fp16};

/** TensorRT-LLM FP8: halved footprint, lower sustained efficiency. */
constexpr SoftwareStack trtllmFp8BaselineStack = {"TensorRT-LLM-FP8",
                                                  0.45,
                                                  gpu::DataType::fp8};

} // namespace workloads
} // namespace ehpsim

#endif // EHPSIM_WORKLOADS_LLM_STACK_HH
