/**
 * @file
 * The workload intermediate representation shared by both execution
 * engines.
 *
 * A Workload is a sequence of Phases. Each phase names the device(s)
 * it runs on, its math (flops, data type, pipe) and memory footprint,
 * and — critically for the paper's unified-memory story — how much
 * data must cross between CPU and GPU around the phase. On an APU
 * that coupling is free (the data never moves); on a discrete node
 * it becomes explicit hipMemcpy traffic over PCIe (paper Fig. 14).
 */

#ifndef EHPSIM_WORKLOADS_WORKLOAD_HH
#define EHPSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/cdna.hh"

namespace ehpsim
{
namespace workloads
{

enum class PhaseDevice
{
    cpu,
    gpu,
    gpuThenCpu,     ///< GPU produces, CPU post-processes (Fig. 15)
};

struct Phase
{
    std::string name;
    PhaseDevice device = PhaseDevice::gpu;

    /** @{ GPU side */
    std::uint64_t gpu_flops = 0;
    gpu::DataType dtype = gpu::DataType::fp64;
    gpu::Pipe pipe = gpu::Pipe::vector;
    bool sparse = false;
    std::uint64_t gpu_bytes_read = 0;
    std::uint64_t gpu_bytes_written = 0;
    /** Suggested workgroup decomposition for the event engine. */
    std::uint64_t grid_workgroups = 512;
    /** @} */

    /** @{ CPU side */
    std::uint64_t cpu_flops = 0;
    std::uint64_t cpu_scalar_ops = 0;
    std::uint64_t cpu_bytes_read = 0;
    std::uint64_t cpu_bytes_written = 0;
    /** @} */

    /** @{ CPU <-> GPU coupling (copied on discrete systems only) */
    std::uint64_t to_gpu_bytes = 0;   ///< host-to-device before phase
    std::uint64_t to_cpu_bytes = 0;   ///< device-to-host after phase
    /** @} */

    /**
     * The GPU output can be consumed element-wise by the CPU via
     * completion flags in coherent memory (paper Fig. 15); only
     * meaningful for gpuThenCpu phases.
     */
    bool fine_grained_capable = false;
};

struct Workload
{
    std::string name;
    std::vector<Phase> phases;

    /** Resident data footprint (for capacity checks). */
    std::uint64_t footprint_bytes = 0;

    std::uint64_t totalGpuFlops() const;
    std::uint64_t totalGpuBytes() const;
    std::uint64_t totalTransferBytes() const;
};

} // namespace workloads
} // namespace ehpsim

#endif // EHPSIM_WORKLOADS_WORKLOAD_HH
