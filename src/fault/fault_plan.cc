#include "fault/fault_plan.hh"

#include <sstream>

#include "sim/logging.hh"

namespace ehpsim
{
namespace fault
{

void
FaultPlan::validate() const
{
    if (chunk_error_rate < 0.0 || chunk_error_rate > 1.0)
        fatal("fault plan: chunk_error_rate ", chunk_error_rate,
              " out of [0, 1]");
    for (const auto &lf : link_faults) {
        if (lf.node_a.empty() || lf.node_b.empty())
            fatal("fault plan: link fault with an empty node name");
        if (lf.node_a == lf.node_b)
            fatal("fault plan: link fault '", lf.node_a,
                  "' to itself");
        if (lf.derate < 0.0 || lf.derate >= 1.0)
            fatal("fault plan: derate ", lf.derate, " for ",
                  lf.node_a, " <-> ", lf.node_b,
                  " out of [0, 1) (0 kills the link)");
    }
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << "seed=" << seed << " chunk_error_rate=" << chunk_error_rate;
    if (active_cus > 0)
        os << " active_cus=" << active_cus;
    os << " link_faults=" << link_faults.size()
       << " channel_faults=" << channel_faults.size();
    return os.str();
}

LinkFault
parseLinkFault(const std::string &spec)
{
    const auto colon = spec.find(':');
    const auto at = spec.find('@');
    if (colon == std::string::npos || at == std::string::npos ||
        colon == 0 || at < colon + 2 || at + 1 >= spec.size())
        fatal("bad link fault '", spec, "' (want a:b@tick[*factor])");

    LinkFault f;
    f.node_a = spec.substr(0, colon);
    f.node_b = spec.substr(colon + 1, at - colon - 1);
    const auto star = spec.find('*', at + 1);
    const std::string tick_str =
        spec.substr(at + 1, star == std::string::npos
                                ? std::string::npos
                                : star - at - 1);
    bool parsed = true;
    try {
        f.at = std::stoull(tick_str);
        if (star != std::string::npos)
            f.derate = std::stod(spec.substr(star + 1));
    } catch (const std::logic_error &) {
        parsed = false;
    }
    if (!parsed)
        fatal("bad link fault '", spec, "' (want a:b@tick[*factor])");
    return f;
}

void
applyCuHarvest(gpu::XcdParams &params, unsigned active_cus)
{
    if (active_cus == 0)
        fatal("CU harvest: an XCD needs at least one active CU");
    if (active_cus > params.physical_cus)
        fatal("CU harvest: cannot enable ", active_cus, " of ",
              params.physical_cus, " physical CUs");
    params.active_cus = active_cus;
}

} // namespace fault
} // namespace ehpsim
