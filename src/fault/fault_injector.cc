#include "fault/fault_injector.hh"

#include <algorithm>

#include "sim/access_tracker.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace ehpsim
{
namespace fault
{

FaultInjector::FaultInjector(SimObject *parent,
                             const std::string &name, FaultPlan plan,
                             EventQueue *eq)
    : SimObject(parent, name, eq),
      faults_injected(this, "faults_injected",
                      "faults of any kind delivered"),
      links_cut(this, "links_cut", "fabric link pairs killed"),
      links_derated(this, "links_derated",
                    "fabric link pairs derated"),
      channels_blacked_out(this, "channels_blacked_out",
                           "HBM channels blacked out"),
      chunk_faults(this, "chunk_faults",
                   "chunk transfer attempts failed in transit"),
      plan_(std::move(plan))
{
    if (!eventq())
        fatal(name, ": no event queue (pass one explicitly; faults "
              "are scheduled as events)");
    plan_.validate();
}

void
FaultInjector::attachNetwork(fabric::Network *net)
{
    if (!net)
        fatal(name(), ": null network");
    net_ = net;
}

void
FaultInjector::attachCommGroup(comm::CommGroup *group)
{
    if (!group)
        fatal(name(), ": null comm group");
    comm_ = group;
    // Stateless counter-based draw: the verdict is a pure hash of
    // (plan seed, op id, task index, attempt), so the failure
    // history is a property of the schedule, not of execution
    // order — the same attempt fails identically whether the run is
    // serial or partitioned across PDES workers. Accounting goes
    // through the sink, which the group invokes on the main thread.
    const double rate = plan_.chunk_error_rate;
    const std::uint64_t seed = plan_.seed;
    comm_->setChunkFaultHook(
        [rate, seed](const comm::CommGroup::ChunkAttempt &a) {
            return counterHashUnit(seed, a.op_id, a.task_index,
                                   a.attempt) < rate;
        });
    comm_->setChunkFaultSink([this](std::uint64_t n) {
        chunk_faults += static_cast<double>(n);
        faults_injected += static_cast<double>(n);
    });
}

void
FaultInjector::attachHbm(mem::HbmSubsystem *hbm)
{
    if (!hbm)
        fatal(name(), ": null HBM subsystem");
    hbm_ = hbm;
}

void
FaultInjector::arm()
{
    if (armed_)
        fatal(name(), ": arm() called twice");
    armed_ = true;
    if (!plan_.link_faults.empty() && !net_)
        fatal(name(), ": plan has link faults but no network is "
              "attached");
    if (!plan_.channel_faults.empty() && !hbm_)
        fatal(name(), ": plan has channel faults but no HBM "
              "subsystem is attached");
    if (plan_.chunk_error_rate > 0.0 && !comm_)
        fatal(name(), ": plan has a chunk_error_rate but no comm "
              "group is attached");

    for (const auto &lf : plan_.link_faults) {
        // Resolve names now so a typo fails at arm() time, not
        // mid-run.
        const fabric::NodeId a = net_->nodeByName(lf.node_a);
        const fabric::NodeId b = net_->nodeByName(lf.node_b);
        const double factor = lf.derate;
        const Tick when = std::max(lf.at, eventq()->curTick());
        eventq()->scheduleCallback(when, [this, a, b, factor] {
            // Fault application mutates fabric state other events
            // may be using this very tick; the tracker pairs this
            // write with Link/Network reads to flag collisions.
            EHPSIM_TRACK_WRITE(this, "injected");
            if (factor == 0.0) {
                net_->killLink(a, b);
                ++links_cut;
            } else {
                net_->derateLink(a, b, factor);
                ++links_derated;
            }
            ++faults_injected;
        });
    }
    for (const auto &cf : plan_.channel_faults) {
        const unsigned channel = cf.channel;
        const Tick when = std::max(cf.at, eventq()->curTick());
        eventq()->scheduleCallback(when, [this, channel] {
            EHPSIM_TRACK_WRITE(this, "injected");
            hbm_->blackoutChannel(channel);
            ++channels_blacked_out;
            ++faults_injected;
        });
    }
}

} // namespace fault
} // namespace ehpsim
