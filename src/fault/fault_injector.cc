#include "fault/fault_injector.hh"

#include <algorithm>

#include "sim/access_tracker.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ehpsim
{
namespace fault
{

FaultInjector::FaultInjector(SimObject *parent,
                             const std::string &name, FaultPlan plan,
                             EventQueue *eq)
    : SimObject(parent, name, eq),
      faults_injected(this, "faults_injected",
                      "faults of any kind delivered"),
      links_cut(this, "links_cut", "fabric link pairs killed"),
      links_derated(this, "links_derated",
                    "fabric link pairs derated"),
      channels_blacked_out(this, "channels_blacked_out",
                           "HBM channels blacked out"),
      chunk_faults(this, "chunk_faults",
                   "chunk transfer attempts failed in transit"),
      plan_(std::move(plan))
{
    if (!eventq())
        fatal(name, ": no event queue (pass one explicitly; faults "
              "are scheduled as events)");
    plan_.validate();
    // Timed faults are keyed one-shots so a checkpoint can save them
    // pending and a restore can replay them without re-arming.
    eventq()->registerKeyedFactory(
        "fault.link",
        [this](Tick when, std::uint64_t a0, std::uint64_t) {
            scheduleLinkFault(when, a0);
        });
    eventq()->registerKeyedFactory(
        "fault.chan",
        [this](Tick when, std::uint64_t a0, std::uint64_t) {
            scheduleChannelFault(when, a0);
        });
}

void
FaultInjector::attachNetwork(fabric::Network *net)
{
    if (!net)
        fatal(name(), ": null network");
    net_ = net;
}

void
FaultInjector::attachCommGroup(comm::CommGroup *group)
{
    if (!group)
        fatal(name(), ": null comm group");
    comm_ = group;
    // Stateless counter-based draw: the verdict is a pure hash of
    // (plan seed, op id, task index, attempt), so the failure
    // history is a property of the schedule, not of execution
    // order — the same attempt fails identically whether the run is
    // serial or partitioned across PDES workers. Accounting goes
    // through the sink, which the group invokes on the main thread.
    const double rate = plan_.chunk_error_rate;
    const std::uint64_t seed = plan_.seed;
    comm_->setChunkFaultHook(
        [rate, seed](const comm::CommGroup::ChunkAttempt &a) {
            return counterHashUnit(seed, a.op_id, a.task_index,
                                   a.attempt) < rate;
        });
    comm_->setChunkFaultSink([this](std::uint64_t n) {
        chunk_faults += static_cast<double>(n);
        faults_injected += static_cast<double>(n);
    });
}

void
FaultInjector::attachHbm(mem::HbmSubsystem *hbm)
{
    if (!hbm)
        fatal(name(), ": null HBM subsystem");
    hbm_ = hbm;
}

void
FaultInjector::arm()
{
    if (armed_)
        fatal(name(), ": arm() called twice");
    armed_ = true;
    if (!plan_.link_faults.empty() && !net_)
        fatal(name(), ": plan has link faults but no network is "
              "attached");
    if (!plan_.channel_faults.empty() && !hbm_)
        fatal(name(), ": plan has channel faults but no HBM "
              "subsystem is attached");
    if (plan_.chunk_error_rate > 0.0 && !comm_)
        fatal(name(), ": plan has a chunk_error_rate but no comm "
              "group is attached");

    for (std::size_t i = 0; i < plan_.link_faults.size(); ++i) {
        // Resolve names now so a typo fails at arm() time, not
        // mid-run (the event callback re-resolves by plan index).
        const auto &lf = plan_.link_faults[i];
        net_->nodeByName(lf.node_a);
        net_->nodeByName(lf.node_b);
        scheduleLinkFault(std::max(lf.at, eventq()->curTick()), i);
    }
    for (std::size_t i = 0; i < plan_.channel_faults.size(); ++i) {
        scheduleChannelFault(
            std::max(plan_.channel_faults[i].at, eventq()->curTick()),
            i);
    }
}

void
FaultInjector::scheduleLinkFault(Tick when, std::uint64_t i)
{
    eventq()->scheduleKeyed(when, "fault.link", i, 0, [this, i] {
        const auto &lf = plan_.link_faults[i];
        const fabric::NodeId a = net_->nodeByName(lf.node_a);
        const fabric::NodeId b = net_->nodeByName(lf.node_b);
        // Fault application mutates fabric state other events may be
        // using this very tick; the tracker pairs this write with
        // Link/Network reads to flag collisions.
        EHPSIM_TRACK_WRITE(this, "injected");
        if (lf.derate == 0.0) {
            net_->killLink(a, b);
            ++links_cut;
        } else {
            net_->derateLink(a, b, lf.derate);
            ++links_derated;
        }
        ++faults_injected;
    });
}

void
FaultInjector::scheduleChannelFault(Tick when, std::uint64_t i)
{
    eventq()->scheduleKeyed(when, "fault.chan", i, 0, [this, i] {
        EHPSIM_TRACK_WRITE(this, "injected");
        hbm_->blackoutChannel(plan_.channel_faults[i].channel);
        ++channels_blacked_out;
        ++faults_injected;
    });
}

void
FaultInjector::snapshot(SnapshotWriter &w) const
{
    StatGroup::snapshot(w);
    w.putBool(armed_);
}

void
FaultInjector::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    armed_ = r.getBool();
}

} // namespace fault
} // namespace ehpsim
