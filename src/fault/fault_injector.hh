/**
 * @file
 * Turns a FaultPlan into scheduled events against live components.
 *
 * The injector is a SimObject so its stats land in the same tree as
 * everything else: attach the fabric, comm group, and memory it
 * should break, then arm() once. Timed faults (link kill/derate,
 * HBM channel blackout) become EventQueue lambdas; transient chunk
 * errors become a CommGroup fault hook drawing a counter-based hash
 * of (plan seed, op id, task index, attempt), so the whole failure
 * history replays byte-for-byte from one seed — on the serial core
 * and on any PDES partitioning alike.
 */

#ifndef EHPSIM_FAULT_FAULT_INJECTOR_HH
#define EHPSIM_FAULT_FAULT_INJECTOR_HH

#include <string>

#include "comm/comm_group.hh"
#include "fabric/network.hh"
#include "fault/fault_plan.hh"
#include "mem/hbm_subsystem.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"

namespace ehpsim
{
namespace fault
{

class FaultInjector : public SimObject
{
  public:
    /**
     * @param eq Queue the faults are scheduled on (must match the
     *        attached components'; required).
     */
    FaultInjector(SimObject *parent, const std::string &name,
                  FaultPlan plan, EventQueue *eq);

    /** Fabric whose links the plan's link faults hit. */
    void attachNetwork(fabric::Network *net);

    /**
     * Comm group whose chunk transfers see transient errors; this
     * installs the group's fault hook.
     */
    void attachCommGroup(comm::CommGroup *group);

    /** Memory whose channels the plan's channel faults black out. */
    void attachHbm(mem::HbmSubsystem *hbm);

    /**
     * Validate the plan against the attached components and
     * schedule every timed fault. Call exactly once, after
     * attaching.
     */
    void arm();

    const FaultPlan &plan() const { return plan_; }

    /** @{ statistics */
    stats::Scalar faults_injected;
    stats::Scalar links_cut;
    stats::Scalar links_derated;
    stats::Scalar channels_blacked_out;
    stats::Scalar chunk_faults;
    /** @} */

    /** @{ checkpoint: stats (base) + the armed flag (DESIGN.md §16).
     *  Pending timed faults are KEYED events ("fault.link" /
     *  "fault.chan" with the plan index as payload), so the
     *  EventQueue replays them from its own snapshot — a restored
     *  world must NOT call arm() again. */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    /** Schedule link fault @p i of the plan as a keyed one-shot at
     *  @p when (also the "fault.link" replay factory). */
    void scheduleLinkFault(Tick when, std::uint64_t i);

    /** Schedule channel fault @p i of the plan as a keyed one-shot
     *  at @p when (also the "fault.chan" replay factory). */
    void scheduleChannelFault(Tick when, std::uint64_t i);

    FaultPlan plan_;
    fabric::Network *net_ = nullptr;
    comm::CommGroup *comm_ = nullptr;
    mem::HbmSubsystem *hbm_ = nullptr;
    bool armed_ = false;
};

} // namespace fault
} // namespace ehpsim

#endif // EHPSIM_FAULT_FAULT_INJECTOR_HH
