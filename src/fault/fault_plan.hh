/**
 * @file
 * Declarative fault plans for resilience studies (DESIGN.md §10).
 *
 * The paper's products are built around imperfect silicon: every
 * XCD ships with 38 of its 40 CUs enabled for yield harvesting
 * (Sec. IV.B), and the Fig. 18 node topologies only reach their
 * rated bandwidth while all eight x16 links per socket are healthy.
 * A FaultPlan describes, deterministically, what breaks and when:
 * CU harvesting beyond stock, fabric links dying or derating at a
 * given tick, HBM channels blacking out, and a transient per-chunk
 * transfer error rate drawn from a seeded Rng. A FaultInjector
 * turns the plan into events on the simulation's EventQueue.
 */

#ifndef EHPSIM_FAULT_FAULT_PLAN_HH
#define EHPSIM_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/xcd.hh"
#include "sim/types.hh"

namespace ehpsim
{
namespace fault
{

/** One fabric link pair failing or degrading at a given tick. */
struct LinkFault
{
    std::string node_a;
    std::string node_b;
    Tick at = 0;
    /** 0 kills the link pair; (0, 1) derates it to this fraction. */
    double derate = 0.0;
};

/** One HBM channel blacking out at a given tick. */
struct ChannelFault
{
    unsigned channel = 0;
    Tick at = 0;
};

/**
 * Everything a resilience run injects. Plans are plain data so
 * sweeps can build them per job; the same plan + seed always
 * produces the same faults at the same ticks.
 */
struct FaultPlan
{
    /** Seeds the transient-error draw: a counter-based hash of
     *  (seed, op, task, attempt), identical under serial and PDES
     *  execution (sim/rng.hh counterHashUnit). */
    std::uint64_t seed = 1;

    /** Probability each chunk transfer attempt fails in transit. */
    double chunk_error_rate = 0.0;

    /**
     * CU harvest level applied at construction via applyCuHarvest()
     * (0 = leave the product's stock harvesting untouched).
     */
    unsigned active_cus = 0;

    std::vector<LinkFault> link_faults;
    std::vector<ChannelFault> channel_faults;

    /** Fatal on out-of-range rates or derate factors. */
    void validate() const;

    /** One-line human-readable summary. */
    std::string describe() const;
};

/**
 * Parse "a:b@TICK" (kill the a <-> b pair at TICK) with an optional
 * "*F" suffix derating to fraction F instead: "a:b@5000000*0.5".
 */
LinkFault parseLinkFault(const std::string &spec);

/**
 * Harvest an XCD down to @p active_cus enabled CUs (stock MI300
 * ships 38 of 40). Flows into dispatch, peak flops, the roofline
 * (via modelFromPackage) and utilization. Fatal on 0 or more CUs
 * than physically present.
 */
void applyCuHarvest(gpu::XcdParams &params, unsigned active_cus);

} // namespace fault
} // namespace ehpsim

#endif // EHPSIM_FAULT_FAULT_PLAN_HH
