#include "serve/serving_config.hh"

#include "core/machine_model.hh"
#include "sim/logging.hh"

namespace ehpsim
{
namespace serve
{

std::uint64_t
LlmModelSpec::weightBytes() const
{
    return params * gpu::dataTypeBytes(dtype);
}

std::uint64_t
LlmModelSpec::kvBytesPerToken() const
{
    const std::uint64_t head_dim = hidden / heads;
    return 2ull * layers * head_dim * kv_heads
           * gpu::dataTypeBytes(dtype);
}

std::uint64_t
LlmModelSpec::activationBytesPerToken() const
{
    return static_cast<std::uint64_t>(hidden)
           * gpu::dataTypeBytes(dtype);
}

std::uint64_t
ServingConfig::kvBudgetBytes() const
{
    const double usable = static_cast<double>(tp)
                          * static_cast<double>(mem_capacity)
                          * kv_util_frac;
    const double weights = static_cast<double>(model.weightBytes());
    if (usable <= weights)
        return 0;
    return static_cast<std::uint64_t>(usable - weights);
}

std::uint64_t
ServingConfig::kvTotalBlocks() const
{
    if (kv_blocks_override)
        return kv_blocks_override;
    const std::uint64_t block_bytes =
        static_cast<std::uint64_t>(block_tokens)
        * model.kvBytesPerToken();
    return kvBudgetBytes() / block_bytes;
}

void
ServingConfig::validate() const
{
    if (tp == 0 || token_budget == 0 || max_batch == 0
        || block_tokens == 0) {
        fatal("serving config: tp/token_budget/max_batch/block_tokens "
              "must be nonzero");
    }
    if (peak_flops <= 0 || mem_bw <= 0 || mem_capacity == 0)
        fatal("serving config: device rates unset");
    if (model.heads == 0 || model.hidden % model.heads != 0)
        fatal("serving config: hidden must divide evenly into heads");
    if (kvTotalBlocks() == 0) {
        fatal("serving config '", stack.name, "': model weights (",
              formatBytes(model.weightBytes()),
              ") leave no KV capacity in ", tp, "x",
              formatBytes(mem_capacity));
    }
}

ServingConfig
mi300xServingConfig(unsigned tp)
{
    const core::MachineModel m = core::mi300xModel();
    ServingConfig cfg;
    cfg.stack = workloads::vllmMi300xStack;
    cfg.model.dtype = cfg.stack.dtype;
    cfg.peak_flops =
        m.gpuPeakFlops(gpu::Pipe::matrix, cfg.stack.dtype);
    cfg.mem_bw = m.mem_bw;
    cfg.mem_capacity = m.mem_capacity;
    cfg.tp = tp;
    return cfg;
}

ServingConfig
baselineGpuServingConfig(unsigned tp)
{
    const core::MachineModel m = core::baselineGpuModel();
    ServingConfig cfg;
    cfg.stack = workloads::trtllmFp8BaselineStack;
    cfg.model.dtype = cfg.stack.dtype;
    cfg.peak_flops =
        m.gpuPeakFlops(gpu::Pipe::matrix, cfg.stack.dtype);
    cfg.mem_bw = m.mem_bw;
    cfg.mem_capacity = m.mem_capacity;
    cfg.tp = tp;
    return cfg;
}

} // namespace serve
} // namespace ehpsim
