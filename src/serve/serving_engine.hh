/**
 * @file
 * Event-driven cluster-scale LLM serving engine (DESIGN.md §13).
 *
 * The engine replays an open-loop arrival trace through a continuous
 * batcher and a paged KV cache, advancing one batched iteration at a
 * time on the EventQueue. Each iteration's latency comes from a
 * roofline of the batch: a math term over the stack's sustained
 * matrix throughput and a memory term streaming the sharded weights
 * plus the batch's KV context at (possibly fault-degraded) HBM
 * bandwidth. Under tensor parallelism the iteration additionally
 * issues a REAL all-reduce through CommGroup — chunked transfers on
 * the fabric, subject to link faults and retry backoff — and scales
 * the measured time by the model's per-pass all-reduce count.
 *
 * Because everything runs on one EventQueue, the fault injector's
 * link kills, comm chunk errors, and HBM channel blackouts degrade
 * TTFT/TPOT and SLO attainment end to end, with no closed forms in
 * the path.
 */

#ifndef EHPSIM_SERVE_SERVING_ENGINE_HH
#define EHPSIM_SERVE_SERVING_ENGINE_HH

#include <cstdint>
#include <vector>

#include "comm/comm_group.hh"
#include "mem/hbm_subsystem.hh"
#include "serve/batcher.hh"
#include "serve/kv_cache.hh"
#include "serve/request.hh"
#include "serve/serving_config.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "workloads/arrivals.hh"

namespace ehpsim
{
namespace serve
{

class ServingEngine : public SimObject
{
  public:
    /**
     * @param comm TP communicator (required when config.tp > 1; the
     *        engine issues one measured all-reduce per iteration).
     * @param hbm Optional memory subsystem: its live-channel ratio
     *        derates bandwidth and shrinks the KV pool on blackout.
     */
    ServingEngine(SimObject *parent, const std::string &name,
                  EventQueue *eq, const ServingConfig &config,
                  std::vector<workloads::ServingRequestSpec> trace,
                  comm::CommGroup *comm = nullptr,
                  mem::HbmSubsystem *hbm = nullptr);

    /** Schedule the first wake-up; then drive the EventQueue. */
    void start();

    bool allDone() const { return finished_ == requests_.size(); }

    std::uint64_t completed() const { return finished_; }

    /** Tick the last request finished (0 until allDone()). */
    Tick makespan() const { return last_finish_; }

    const std::vector<Request> &requests() const { return requests_; }

    KvCacheManager &kvCache() { return kv_; }

    ContinuousBatcher &batcher() { return batcher_; }

    const ServingConfig &config() const { return config_; }

    /** @{ statistics */
    stats::Percentile ttft_s;        ///< time to first token
    stats::Percentile tpot_s;        ///< mean time per output token
    stats::Scalar tokens_generated;
    stats::Scalar iterations;
    stats::Scalar comm_iterations;
    stats::Scalar slo_attained;      ///< met both TTFT and TPOT SLOs
    stats::Scalar slo_missed;
    stats::Average queue_depth;      ///< waiting queue, per iteration
    stats::Average batch_tokens;     ///< scheduled tokens / iteration
    stats::Scalar hbm_derates;       ///< KV-pool rescales observed
    stats::Formula slo_attainment;   ///< attained / completed
    stats::Formula tokens_per_s;     ///< generated / makespan
    /** @} */

    /**
     * @{ checkpoint (DESIGN.md §16): stats + kv/batcher children
     * (base walk), then per-request lifecycle state, the arrival
     * cursor, scheduler flags, HBM derate ratio, finish bookkeeping,
     * and the in-flight iteration plan. The engine's wake and
     * iteration-finish events are KEYED ("serve.wake" /
     * "serve.finish"), replayed by the EventQueue snapshot — a
     * restored world must NOT call start() again.
     */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    /**
     * Scheduler pulse: drain arrivals, fold in HBM degradation,
     * build a plan, and launch it (or sleep until the next arrival).
     * No-op while an iteration is in flight.
     */
    void step();

    /** Launch @p plan: roofline timing plus the measured TP
     *  all-reduce, ending in finishIteration(). */
    void launchIteration(IterationPlan plan);

    /** Commit the in-flight plan's effects at @p now. */
    void finishIteration(Tick now);

    /** Enqueue every arrival with tick <= now. */
    void drainArrivals(Tick now);

    /** Rescale KV pool and bandwidth to the HBM live ratio. */
    void applyHbmDegrade();

    /** Seconds of math + memory for a plan (excludes comm). */
    double iterationSeconds(const IterationPlan &plan) const;

    void finishRequest(Request &r, Tick now);

    /** Schedule the keyed scheduler pulse ("serve.wake") at
     *  @p when; doubles as its replay factory. */
    void scheduleWake(Tick when);

    /** Schedule the keyed iteration completion ("serve.finish") at
     *  @p when; doubles as its replay factory. */
    void scheduleFinish(Tick when);

    ServingConfig config_;
    std::vector<Request> requests_;
    /** Arrival ticks sorted ascending; next_arrival_ indexes it. */
    std::vector<workloads::ServingRequestSpec> trace_;
    std::size_t next_arrival_ = 0;

    KvCacheManager kv_;
    ContinuousBatcher batcher_;
    comm::CommGroup *comm_;
    mem::HbmSubsystem *hbm_;

    /** The one in-flight iteration's plan (engine is sequential). */
    IterationPlan plan_;
    bool busy_ = false;
    bool wake_scheduled_ = false;

    double hbm_ratio_ = 1.0;
    std::uint64_t base_kv_blocks_;
    std::uint64_t finished_ = 0;
    Tick last_finish_ = 0;
};

} // namespace serve
} // namespace ehpsim

#endif // EHPSIM_SERVE_SERVING_ENGINE_HH
