#include "serve/scenario.hh"

#include <memory>
#include <sstream>
#include <utility>

#include "fault/fault_injector.hh"
#include "serve/serving_engine.hh"
#include "sim/logging.hh"
#include "sim/pdes/pdes_engine.hh"
#include "soc/node_topology.hh"

namespace ehpsim
{
namespace serve
{

ServingConfig
scenarioConfig(const ScenarioParams &p)
{
    ServingConfig cfg;
    if (p.device == "mi300x") {
        cfg = mi300xServingConfig(p.tp);
    } else if (p.device == "baseline") {
        cfg = baselineGpuServingConfig(p.tp);
    } else {
        fatal("serving scenario: unknown device '", p.device,
              "' (expected mi300x or baseline)");
    }
    cfg.token_budget = p.token_budget;
    cfg.max_batch = p.max_batch;
    cfg.kv_blocks_override = p.kv_blocks_override;
    return cfg;
}

std::vector<workloads::ServingRequestSpec>
scenarioTrace(const ScenarioParams &p)
{
    workloads::ArrivalParams ap;
    ap.seed = p.seed;
    ap.num_requests = p.num_requests;
    ap.rate_per_s = p.load_rps;
    ap.mean_input_tokens = p.input_tokens;
    ap.mean_output_tokens = p.output_tokens;
    if (p.bursty)
        return workloads::mmppArrivals(ap, workloads::MmppParams{});
    return workloads::poissonArrivals(ap);
}

namespace
{

/**
 * Every component of one serving scenario, owned together and built
 * in a fixed order. The checkpoint path depends on that order being
 * reproducible: restoreWorld() walks the object tree in registration
 * order, so the fresh world it restores into must construct the same
 * components in the same sequence as the warm world it mirrors.
 */
struct ScenarioWorld
{
    EventQueue eq;
    SimObject root;
    std::unique_ptr<soc::NodeTopology> topo;
    std::unique_ptr<comm::CommGroup> group;
    std::unique_ptr<mem::HbmSubsystem> hbm;
    std::unique_ptr<ServingEngine> engine;
    std::unique_ptr<fault::FaultInjector> injector;

    /**
     * Build and attach everything, but neither arm() nor start():
     * a warm world does that next; a restored world must not (its
     * pending events replay from the blob). The attachments are
     * made either way — they install the stateless chunk fault
     * hook, which is configuration, not state.
     */
    ScenarioWorld(const ScenarioParams &p, const ServingConfig &cfg)
        : root(nullptr, "serving", &eq)
    {
        // TP > 1 shards over the first tp sockets of the Fig. 18b
        // octo node; the decode/prefill all-reduces run over its IF
        // links.
        if (cfg.tp > 1) {
            topo = soc::NodeTopology::mi300xOctoNode(&root);
            std::vector<fabric::NodeId> ranks;
            for (unsigned i = 0; i < cfg.tp; ++i)
                ranks.push_back(topo->nodeId(i));
            comm::CommParams cp;
            cp.chunk_bytes = 1 * MiB;
            // Transient chunk errors back off from 200 us so a
            // faulted sweep degrades service without fatal retry
            // exhaustion.
            cp.retry_timeout = 200'000'000;
            group = std::make_unique<comm::CommGroup>(
                topo.get(), "tp_comm", topo->network(),
                std::move(ranks), &eq, cp);
        }

        mem::HbmSubsystemParams hp;
        hp.capacity_bytes = cfg.mem_capacity;
        hbm = std::make_unique<mem::HbmSubsystem>(&root, "hbm", hp);

        engine = std::make_unique<ServingEngine>(
            &root, "engine", &eq, cfg, scenarioTrace(p), group.get(),
            hbm.get());

        injector = std::make_unique<fault::FaultInjector>(
            &root, "faults", p.faults, &eq);
        if (topo)
            injector->attachNetwork(topo->network());
        if (group)
            injector->attachCommGroup(group.get());
        injector->attachHbm(hbm.get());
    }

    /** Drain the queue, honoring the PDES knob. */
    void
    runToCompletion(unsigned pdes_parts)
    {
        if (pdes_parts > 0) {
            // The conservative parallel core: the serving engine
            // stays on the coordinator queue; the TP all-reduce
            // chunks (when any) fan out over the partition queues.
            // run() drains everything, exactly like eq.run(), and
            // the output is byte-identical to the serial run's.
            pdes::PdesEngine pe(&eq,
                                topo ? topo->network() : nullptr,
                                pdes_parts);
            if (group)
                group->attachPdes(&pe);
            pe.run();
            if (group)
                group->attachPdes(nullptr);
        } else {
            eq.run();
        }
    }
};

ScenarioResult
summarize(const ScenarioParams &p, ScenarioWorld &w)
{
    ServingEngine &engine = *w.engine;
    if (!engine.allDone())
        fatal("serving scenario: run drained with ",
              engine.completed(), "/", p.num_requests,
              " requests finished");

    ScenarioResult r;
    r.ttft_p50_s = engine.ttft_s.percentile(50);
    r.ttft_p95_s = engine.ttft_s.percentile(95);
    r.ttft_p99_s = engine.ttft_s.percentile(99);
    r.tpot_p50_s = engine.tpot_s.percentile(50);
    r.tpot_p95_s = engine.tpot_s.percentile(95);
    r.tpot_p99_s = engine.tpot_s.percentile(99);
    r.ttft_samples = engine.ttft_s.count();
    r.tpot_samples = engine.tpot_s.count();
    r.tokens_per_s = engine.tokens_per_s.value();
    r.slo_attainment = engine.slo_attainment.value();
    r.mean_queue_depth = engine.queue_depth.mean();
    r.max_queue_depth = engine.queue_depth.max();
    r.kv_peak_blocks = engine.kvCache().peakUsedBlocks();
    r.kv_total_blocks = engine.kvCache().totalBlocks();
    r.kv_reserve_failures = engine.kvCache().reserveFailures();
    r.kv_peak_occupancy =
        r.kv_total_blocks
            ? static_cast<double>(r.kv_peak_blocks)
                  / static_cast<double>(r.kv_total_blocks)
            : 0.0;
    r.evictions = engine.batcher().evictions();
    r.recompute_tokens = engine.batcher().recomputeTokens();
    r.chunk_retries =
        w.group ? static_cast<std::uint64_t>(
                      w.group->chunk_retries.value())
                : 0;
    r.channels_dark =
        static_cast<std::uint64_t>(w.hbm->channels_dark.value());
    r.completed = engine.completed();
    r.iterations =
        static_cast<std::uint64_t>(engine.iterations.value());
    r.makespan_s = secondsFromTicks(engine.makespan());

    std::ostringstream stats;
    json::JsonWriter sw(stats);
    w.root.dumpJsonStats(sw);
    r.stats_json = stats.str();

    return r;
}

} // namespace

std::string
checkpointServingScenario(const ScenarioParams &p)
{
    if (p.checkpoint_at == 0)
        fatal("serving scenario: checkpointServingScenario needs "
              "checkpoint_at > 0");

    const ServingConfig cfg = scenarioConfig(p);
    ScenarioWorld w(p, cfg);
    w.injector->arm();
    w.engine->start();

    // The warmup prefix always runs serially — the snapshot must be
    // taken from a quiesced coordinator queue, and the prefix is run
    // exactly once however the resumed halves are parallelized.
    w.eq.run(p.checkpoint_at);
    // A legal save needs every pending event keyed; comm chunk and
    // retry events are not, so stepping until they drain also means
    // any in-flight collective has retired.
    while (!w.eq.allPendingKeyed() && !w.eq.empty())
        w.eq.step();
    return saveWorld(w.eq, w.root);
}

ScenarioResult
resumeServingScenario(const ScenarioParams &p,
                      const std::string &blob)
{
    const ServingConfig cfg = scenarioConfig(p);
    ScenarioWorld w(p, cfg);
    // No arm(), no start(): the injector's pending timed faults and
    // the engine's wake/finish events replay from the blob.
    restoreWorld(blob, w.eq, w.root);
    w.runToCompletion(p.pdes);
    return summarize(p, w);
}

ScenarioResult
runServingScenario(const ScenarioParams &p)
{
    if (p.checkpoint_at > 0)
        return resumeServingScenario(p,
                                     checkpointServingScenario(p));

    const ServingConfig cfg = scenarioConfig(p);
    ScenarioWorld w(p, cfg);
    w.injector->arm();
    w.engine->start();
    w.runToCompletion(p.pdes);
    return summarize(p, w);
}

void
dumpScenario(json::JsonWriter &jw, const ScenarioParams &p,
             const ScenarioResult &r)
{
    jw.beginObject();
    jw.key("params");
    jw.beginObject();
    jw.kv("device", p.device);
    jw.kv("tp", p.tp);
    jw.kv("load_rps", p.load_rps);
    jw.kv("num_requests", p.num_requests);
    jw.kv("input_tokens", p.input_tokens);
    jw.kv("output_tokens", p.output_tokens);
    jw.kv("seed", p.seed);
    jw.kv("bursty", p.bursty);
    jw.kv("token_budget", p.token_budget);
    jw.kv("max_batch", p.max_batch);
    jw.kv("faults", p.faults.describe());
    jw.endObject();
    jw.kv("ttft_p50_s", r.ttft_p50_s);
    jw.kv("ttft_p95_s", r.ttft_p95_s);
    jw.kv("ttft_p99_s", r.ttft_p99_s);
    jw.kv("tpot_p50_s", r.tpot_p50_s);
    jw.kv("tpot_p95_s", r.tpot_p95_s);
    jw.kv("tpot_p99_s", r.tpot_p99_s);
    // Sample counts disambiguate the percentiles above: an empty
    // Percentile reports 0, which is indistinguishable from a real
    // sub-resolution latency without them.
    jw.kv("ttft_samples", r.ttft_samples);
    jw.kv("tpot_samples", r.tpot_samples);
    jw.kv("tokens_per_s", r.tokens_per_s);
    jw.kv("slo_attainment", r.slo_attainment);
    jw.kv("mean_queue_depth", r.mean_queue_depth);
    jw.kv("max_queue_depth", r.max_queue_depth);
    jw.kv("kv_peak_occupancy", r.kv_peak_occupancy);
    jw.kv("kv_peak_blocks", r.kv_peak_blocks);
    jw.kv("kv_total_blocks", r.kv_total_blocks);
    jw.kv("kv_reserve_failures", r.kv_reserve_failures);
    jw.kv("evictions", r.evictions);
    jw.kv("recompute_tokens", r.recompute_tokens);
    jw.kv("chunk_retries", r.chunk_retries);
    jw.kv("channels_dark", r.channels_dark);
    jw.kv("completed", r.completed);
    jw.kv("iterations", r.iterations);
    jw.kv("makespan_s", r.makespan_s);
    jw.key("stats");
    jw.rawValue(r.stats_json);
    jw.endObject();
}

} // namespace serve
} // namespace ehpsim
