#include "serve/kv_cache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ehpsim
{
namespace serve
{

KvCacheManager::KvCacheManager(SimObject *parent,
                               const std::string &name, const Params &p)
    : SimObject(parent, name),
      total_(p.total_blocks),
      block_tokens_(p.block_tokens),
      reserve_failures_(this, "reserve_failures",
                        "block reservations denied for lack of space"),
      blocks_reserved_(this, "blocks_reserved",
                       "KV blocks reserved over the run"),
      blocks_released_(this, "blocks_released",
                       "KV blocks released over the run"),
      peak_used_(this, "peak_used_blocks",
                 "high-water mark of resident KV blocks"),
      occupancy_stat_(this, "occupancy",
                      "fraction of the KV block pool in use",
                      [this] { return occupancy(); })
{
    if (block_tokens_ == 0)
        fatal("kv cache: block_tokens must be nonzero");
    if (total_ == 0)
        fatal("kv cache: empty block pool");
}

std::uint64_t
KvCacheManager::blocksForTokens(unsigned tokens) const
{
    return (static_cast<std::uint64_t>(tokens) + block_tokens_ - 1)
           / block_tokens_;
}

bool
KvCacheManager::tryReserve(std::uint64_t blocks)
{
    if (used_ + blocks > total_) {
        ++reserve_failures_;
        return false;
    }
    used_ += blocks;
    blocks_reserved_ += static_cast<double>(blocks);
    peak_used_.set(std::max(peak_used_.value(),
                            static_cast<double>(used_)));
    return true;
}

void
KvCacheManager::release(std::uint64_t blocks)
{
    if (blocks > used_)
        fatal("kv cache: releasing ", blocks, " blocks with only ",
              used_, " in use");
    used_ -= blocks;
    blocks_released_ += static_cast<double>(blocks);
}

void
KvCacheManager::snapshot(SnapshotWriter &w) const
{
    StatGroup::snapshot(w);
    w.putU64(total_);
    w.putU64(used_);
}

void
KvCacheManager::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    total_ = r.getU64();
    used_ = r.getU64();
}

void
KvCacheManager::setTotalBlocks(std::uint64_t blocks)
{
    if (blocks == 0)
        fatal("kv cache: cannot shrink pool to zero blocks");
    total_ = blocks;
}

} // namespace serve
} // namespace ehpsim
