/**
 * @file
 * Configuration of a cluster-scale LLM serving simulation
 * (DESIGN.md §13).
 *
 * The paper's Fig. 21 story is fundamentally a capacity story:
 * 192 GB of unified HBM per MI300X vs 80 GB on the baseline GPU.
 * A ServingConfig captures everything the serving engine needs to
 * replay that story under open-loop load: the model's shapes (which
 * set weight bytes and KV-cache bytes per token), the software
 * stack's sustained efficiency (shared with fig21 via
 * workloads/llm_stack.hh), the device's peak rates and capacity,
 * the tensor-parallel degree, and the continuous-batching and
 * KV-cache knobs.
 */

#ifndef EHPSIM_SERVE_SERVING_CONFIG_HH
#define EHPSIM_SERVE_SERVING_CONFIG_HH

#include <cstdint>

#include "gpu/cdna.hh"
#include "sim/units.hh"
#include "workloads/llm_stack.hh"

namespace ehpsim
{
namespace serve
{

/** Transformer shapes that set the serving footprints. */
struct LlmModelSpec
{
    std::uint64_t params = 70ull * 1000 * 1000 * 1000;  ///< 70 B
    unsigned layers = 80;
    unsigned hidden = 8192;
    unsigned heads = 64;
    /** Grouped-query attention: KV heads per layer (Llama-2 70B). */
    unsigned kv_heads = 8;
    /** Weights, activations, and KV entries share one data type. */
    gpu::DataType dtype = gpu::DataType::fp16;

    std::uint64_t weightBytes() const;

    /** K + V bytes one token pins across all layers (GQA-reduced). */
    std::uint64_t kvBytesPerToken() const;

    /** One token's activation row (the TP all-reduce payload). */
    std::uint64_t activationBytesPerToken() const;
};

struct ServingConfig
{
    LlmModelSpec model;
    workloads::SoftwareStack stack = workloads::vllmMi300xStack;

    /** @{ device: peak math at the stack's dtype, HBM rates */
    double peak_flops = 0;
    BytesPerSecond mem_bw = 0;
    std::uint64_t mem_capacity = 0;
    /** @} */

    /** Tensor-parallel degree (1 = single device, no collectives). */
    unsigned tp = 1;

    /** @{ continuous batching */
    /** Max tokens (decode + prefill chunks) per iteration. */
    unsigned token_budget = 2048;
    /** Max concurrently resident sequences. */
    unsigned max_batch = 64;
    /** @} */

    /** @{ KV cache */
    unsigned block_tokens = 16;
    /** Fraction of device memory usable (rest: activations, frag). */
    double kv_util_frac = 0.95;
    /** Test hook: force the block pool size (0 = derive). */
    std::uint64_t kv_blocks_override = 0;
    /** @} */

    /** @{ service-level objectives */
    double slo_ttft_s = 4.0;
    double slo_tpot_s = 0.15;
    /** @} */

    /** Megatron-style sharding: all-reduces per transformer layer. */
    unsigned allreduces_per_layer = 2;

    /**
     * Aggregate KV budget across the TP group:
     * tp * capacity * kv_util_frac - weights (weights shard 1/tp per
     * rank, KV shards 1/tp per rank, so the aggregate is exact).
     */
    std::uint64_t kvBudgetBytes() const;

    /** The KV block pool backing that budget. */
    std::uint64_t kvTotalBlocks() const;

    /** Fatal when the sharded weights overflow capacity, the KV
     *  budget is empty, or the token budget can't cover the batch. */
    void validate() const;
};

/** MI300X (192 GB @ 5.3 TB/s) serving vLLM FP16. */
ServingConfig mi300xServingConfig(unsigned tp = 1);

/**
 * The Fig. 21 baseline GPU (80 GB @ 3.35 TB/s). FP16 weights do not
 * fit, so it serves the TensorRT-LLM FP8 stack: halved weight and
 * KV footprints at lower sustained efficiency.
 */
ServingConfig baselineGpuServingConfig(unsigned tp = 1);

} // namespace serve
} // namespace ehpsim

#endif // EHPSIM_SERVE_SERVING_CONFIG_HH
