/**
 * @file
 * One inflight serving request's lifecycle state.
 *
 * Requests are owned by the ServingEngine in a flat vector sized from
 * the arrival trace; the batcher and engine refer to them by index so
 * scheduling state stays trivially copyable and allocation-free in
 * the steady state.
 */

#ifndef EHPSIM_SERVE_REQUEST_HH
#define EHPSIM_SERVE_REQUEST_HH

#include <cstdint>

#include "sim/types.hh"

namespace ehpsim
{
namespace serve
{

enum class RequestState
{
    waiting,   ///< arrived, not yet admitted (or preempted back)
    prefill,   ///< admitted, prompt tokens still being processed
    decode,    ///< generating output tokens one per iteration
    finished,  ///< all output tokens emitted
};

struct Request
{
    std::uint64_t id = 0;
    Tick arrival = 0;
    unsigned prompt_tokens = 0;
    unsigned output_tokens = 0;

    RequestState state = RequestState::waiting;

    /** Prompt (plus regenerated) tokens prefilled so far. */
    unsigned prefill_done = 0;
    /** Output tokens emitted so far. */
    unsigned generated = 0;
    /** Tokens currently pinned in the KV cache. */
    unsigned kv_tokens = 0;
    /** KV blocks currently reserved for this request. */
    std::uint64_t kv_blocks = 0;
    /** Times this request was evicted under KV pressure. */
    unsigned preemptions = 0;

    Tick first_token = 0;  ///< tick of the first emitted token
    Tick finish = 0;       ///< tick of the last emitted token

    /** Prefill target: the prompt plus any already-generated tokens
     *  that must be recomputed after an eviction. */
    unsigned prefillTarget() const { return prompt_tokens + generated; }

    bool prefillComplete() const
    {
        return prefill_done >= prefillTarget();
    }
};

} // namespace serve
} // namespace ehpsim

#endif // EHPSIM_SERVE_REQUEST_HH
