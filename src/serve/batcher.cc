#include "serve/batcher.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ehpsim
{
namespace serve
{

ContinuousBatcher::ContinuousBatcher(SimObject *parent,
                                     const std::string &name,
                                     const Params &p,
                                     std::vector<Request> *requests,
                                     KvCacheManager *kv)
    : SimObject(parent, name),
      params_(p),
      requests_(requests),
      kv_(kv),
      admitted_(this, "admitted", "requests admitted into the batch"),
      evictions_(this, "evictions",
                 "sequences evicted under KV pressure"),
      recompute_tokens_(this, "recompute_tokens",
                        "context tokens recomputed after eviction"),
      admission_stalls_(this, "admission_stalls",
                        "iterations the queue head could not reserve "
                        "KV blocks")
{
    if (params_.token_budget == 0 || params_.max_batch == 0)
        fatal("batcher: token_budget/max_batch must be nonzero");
}

void
ContinuousBatcher::enqueue(std::uint64_t idx)
{
    waiting_.push_back(idx);
}

std::uint64_t
ContinuousBatcher::preemptLatest()
{
    if (running_.empty())
        panic("batcher: eviction with no resident sequences");
    const std::uint64_t victim = running_.back();
    running_.pop_back();
    Request &v = (*requests_)[victim];
    kv_->release(v.kv_blocks);
    recompute_tokens_ += static_cast<double>(v.kv_tokens);
    ++evictions_;
    ++v.preemptions;
    v.kv_blocks = 0;
    v.kv_tokens = 0;
    v.prefill_done = 0;
    v.state = RequestState::waiting;
    waiting_.push_front(victim);
    return victim;
}

void
ContinuousBatcher::preemptUntilFits()
{
    while (kv_->overCommitted())
        preemptLatest();
}

IterationPlan
ContinuousBatcher::buildPlan()
{
    IterationPlan plan;
    unsigned budget = params_.token_budget;

    // Phase 1: one decode token per running decode sequence, in
    // admission order. Crossing a block boundary reserves a block;
    // when the pool is exhausted the latest-admitted sequence is
    // evicted to make room (possibly this one, which then skips).
    for (std::size_t i = 0; i < running_.size() && budget > 0;) {
        const std::uint64_t idx = running_[i];
        Request &r = (*requests_)[idx];
        if (r.state != RequestState::decode) {
            ++i;
            continue;
        }
        const std::uint64_t covered =
            r.kv_blocks * kv_->blockTokens();
        if (r.kv_tokens + 1 > covered) {
            bool evicted_self = false;
            while (!kv_->tryReserve(1)) {
                if (preemptLatest() == idx) {
                    evicted_self = true;
                    break;
                }
            }
            if (evicted_self)
                continue;  // running_[i] is now a different entry
            r.kv_blocks += 1;
        }
        plan.decode.push_back(idx);
        plan.context_tokens += r.kv_tokens;
        --budget;
        ++i;
    }

    // Phase 2: continue chunked prefill of resident sequences.
    for (const std::uint64_t idx : running_) {
        if (budget == 0)
            break;
        Request &r = (*requests_)[idx];
        if (r.state != RequestState::prefill)
            continue;
        const unsigned remaining = r.prefillTarget() - r.prefill_done;
        const unsigned chunk = std::min(budget, remaining);
        plan.prefill.emplace_back(idx, chunk);
        plan.context_tokens += r.prefill_done;
        budget -= chunk;
    }

    // Phase 3: admit from the queue head. Admission reserves the
    // sequence's full context (plus its first generated token) up
    // front; a failed reservation stalls the whole queue — later
    // arrivals never jump an earlier one.
    while (budget > 0 && !waiting_.empty()
           && running_.size() < params_.max_batch) {
        const std::uint64_t idx = waiting_.front();
        Request &r = (*requests_)[idx];
        const std::uint64_t blocks =
            kv_->blocksForTokens(r.prefillTarget() + 1);
        if (blocks > kv_->totalBlocks()) {
            fatal("batcher: request ", r.id, " needs ", blocks,
                  " KV blocks but the pool holds only ",
                  kv_->totalBlocks());
        }
        if (!kv_->tryReserve(blocks)) {
            ++admission_stalls_;
            break;
        }
        waiting_.pop_front();
        r.state = RequestState::prefill;
        r.kv_blocks = blocks;
        running_.push_back(idx);
        ++admitted_;
        const unsigned chunk = std::min(budget, r.prefillTarget());
        plan.prefill.emplace_back(idx, chunk);
        budget -= chunk;
    }

    return plan;
}

void
ContinuousBatcher::snapshot(SnapshotWriter &w) const
{
    StatGroup::snapshot(w);
    w.putU64(waiting_.size());
    for (const std::uint64_t idx : waiting_)
        w.putU64(idx);
    w.putU64(running_.size());
    for (const std::uint64_t idx : running_)
        w.putU64(idx);
}

void
ContinuousBatcher::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    waiting_.clear();
    const std::uint64_t nw = r.getU64();
    for (std::uint64_t i = 0; i < nw; ++i)
        waiting_.push_back(r.getU64());
    running_.clear();
    const std::uint64_t nr = r.getU64();
    for (std::uint64_t i = 0; i < nr; ++i)
        running_.push_back(r.getU64());
}

void
ContinuousBatcher::finish(std::uint64_t idx)
{
    auto it = std::find(running_.begin(), running_.end(), idx);
    if (it == running_.end())
        panic("batcher: finishing non-resident request ", idx);
    running_.erase(it);
    Request &r = (*requests_)[idx];
    kv_->release(r.kv_blocks);
    r.kv_blocks = 0;
    r.kv_tokens = 0;
}

} // namespace serve
} // namespace ehpsim
