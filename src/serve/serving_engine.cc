#include "serve/serving_engine.hh"

#include <algorithm>
#include <utility>

#include "sim/access_tracker.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ehpsim
{
namespace serve
{

namespace
{

const ServingConfig &
validated(const ServingConfig &cfg)
{
    cfg.validate();
    return cfg;
}

} // namespace

ServingEngine::ServingEngine(
    SimObject *parent, const std::string &name, EventQueue *eq,
    const ServingConfig &config,
    std::vector<workloads::ServingRequestSpec> trace,
    comm::CommGroup *comm, mem::HbmSubsystem *hbm)
    : SimObject(parent, name, eq),
      ttft_s(this, "ttft_s", "time to first token (s)"),
      tpot_s(this, "tpot_s", "mean time per output token (s)"),
      tokens_generated(this, "tokens_generated",
                       "output tokens emitted"),
      iterations(this, "iterations", "batched iterations executed"),
      comm_iterations(this, "comm_iterations",
                      "iterations that issued a TP all-reduce"),
      slo_attained(this, "slo_attained",
                   "requests meeting both TTFT and TPOT SLOs"),
      slo_missed(this, "slo_missed",
                 "requests missing a latency SLO"),
      queue_depth(this, "queue_depth",
                  "admission-queue depth per iteration"),
      batch_tokens(this, "batch_tokens",
                   "tokens scheduled per iteration"),
      hbm_derates(this, "hbm_derates",
                  "KV-pool rescales after HBM channel loss"),
      slo_attainment(this, "slo_attainment",
                     "fraction of finished requests meeting SLOs",
                     [this] {
                         const double done = slo_attained.value()
                                             + slo_missed.value();
                         return done ? slo_attained.value() / done
                                     : 0.0;
                     }),
      tokens_per_s(this, "tokens_per_s",
                   "output tokens per second of serving time",
                   [this] {
                       return last_finish_
                                  ? tokens_generated.value()
                                        / secondsFromTicks(
                                              last_finish_)
                                  : 0.0;
                   }),
      config_(validated(config)),
      trace_(std::move(trace)),
      kv_(this, "kv",
          KvCacheManager::Params{config_.kvTotalBlocks(),
                                 config_.block_tokens}),
      batcher_(this, "batcher",
               ContinuousBatcher::Params{config_.token_budget,
                                         config_.max_batch},
               &requests_, &kv_),
      comm_(comm),
      hbm_(hbm),
      base_kv_blocks_(config_.kvTotalBlocks())
{
    if (config_.tp > 1 && !comm_)
        fatal("serving engine '", name,
              "': tp > 1 requires a CommGroup");
    if (comm_ && comm_->numRanks() != config_.tp)
        fatal("serving engine '", name, "': comm group has ",
              comm_->numRanks(), " ranks but tp is ", config_.tp);
    if (!std::is_sorted(trace_.begin(), trace_.end(),
                        [](const auto &a, const auto &b) {
                            return a.arrival < b.arrival;
                        }))
        fatal("serving engine '", name,
              "': arrival trace must be sorted");
    requests_.reserve(trace_.size());
    for (std::size_t i = 0; i < trace_.size(); ++i) {
        Request r;
        r.id = i;
        r.arrival = trace_[i].arrival;
        r.prompt_tokens = trace_[i].input_tokens;
        r.output_tokens = trace_[i].output_tokens;
        requests_.push_back(r);
    }
    // The scheduler pulse and the iteration completion are keyed
    // one-shots: a checkpoint saves them pending and replays them
    // through these factories on restore.
    eventq()->registerKeyedFactory(
        "serve.wake", [this](Tick when, std::uint64_t,
                             std::uint64_t) { scheduleWake(when); });
    eventq()->registerKeyedFactory(
        "serve.finish",
        [this](Tick when, std::uint64_t, std::uint64_t) {
            scheduleFinish(when);
        });
}

void
ServingEngine::scheduleWake(Tick when)
{
    eventq()->scheduleKeyed(when, "serve.wake", 0, 0, [this] {
        wake_scheduled_ = false;
        step();
    });
}

void
ServingEngine::scheduleFinish(Tick when)
{
    eventq()->scheduleKeyed(when, "serve.finish", 0, 0,
                            [this] { finishIteration(curTick()); });
}

void
ServingEngine::start()
{
    if (trace_.empty())
        return;
    wake_scheduled_ = true;
    scheduleWake(trace_[0].arrival);
}

void
ServingEngine::drainArrivals(Tick now)
{
    while (next_arrival_ < trace_.size()
           && trace_[next_arrival_].arrival <= now) {
        batcher_.enqueue(next_arrival_);
        ++next_arrival_;
    }
}

void
ServingEngine::applyHbmDegrade()
{
    if (!hbm_)
        return;
    const double ratio = static_cast<double>(hbm_->liveChannels())
                         / static_cast<double>(hbm_->numChannels());
    if (ratio == hbm_ratio_)
        return;
    // KV-pool rescale after channel loss: races with any same-tick
    // iteration using the old pool size.
    EHPSIM_TRACK_WRITE(this, "kv_pool");
    hbm_ratio_ = ratio;
    ++hbm_derates;
    const auto scaled = static_cast<std::uint64_t>(
        static_cast<double>(base_kv_blocks_) * ratio);
    kv_.setTotalBlocks(std::max<std::uint64_t>(scaled, 1));
    batcher_.preemptUntilFits();
}

double
ServingEngine::iterationSeconds(const IterationPlan &plan) const
{
    const double eff = config_.stack.efficiency;
    const double tokens = static_cast<double>(plan.tokens());
    const double tp = static_cast<double>(config_.tp);

    const double compute_s =
        2.0 * static_cast<double>(config_.model.params) * tokens / tp
        / (config_.peak_flops * eff);

    const double weight_bytes =
        static_cast<double>(config_.model.weightBytes()) / tp;
    const double kv_bytes =
        (static_cast<double>(plan.context_tokens) + tokens)
        * static_cast<double>(config_.model.kvBytesPerToken()) / tp;
    const double bw = config_.mem_bw * hbm_ratio_ * eff;
    const double mem_s = (weight_bytes + kv_bytes) / bw;

    return std::max(compute_s, mem_s);
}

void
ServingEngine::step()
{
    if (busy_)
        return;
    const Tick now = curTick();
    // The scheduler consumes the admission queue and KV pool both
    // fault events and iteration completions mutate.
    EHPSIM_TRACK_WRITE(this, "batcher");
    drainArrivals(now);
    applyHbmDegrade();

    IterationPlan plan = batcher_.buildPlan();
    if (plan.empty()) {
        if (!batcher_.idle())
            panic("serving engine '", name(),
                  "': scheduler stalled with ",
                  batcher_.waitingDepth(), " waiting / ",
                  batcher_.runningCount(), " running");
        if (next_arrival_ < trace_.size() && !wake_scheduled_) {
            wake_scheduled_ = true;
            scheduleWake(trace_[next_arrival_].arrival);
        }
        return;
    }

    queue_depth.sample(
        static_cast<double>(batcher_.waitingDepth()));
    batch_tokens.sample(static_cast<double>(plan.tokens()));
    launchIteration(std::move(plan));
}

void
ServingEngine::launchIteration(IterationPlan plan)
{
    busy_ = true;
    ++iterations;
    const Tick now = curTick();
    const Tick base =
        std::max<Tick>(ticksFromSeconds(iterationSeconds(plan)), 1);
    const std::uint64_t bytes = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(plan.tokens())
            * config_.model.activationBytesPerToken(),
        1);
    plan_ = std::move(plan);

    if (config_.tp == 1) {
        scheduleFinish(now + base);
        return;
    }

    // One measured all-reduce over the fabric stands in for the
    // layers * allreduces_per_layer identical ones a Megatron-style
    // forward pass issues: the rest are extrapolated from its
    // measured duration, so link faults and retry backoff stretch
    // the whole iteration.
    ++comm_iterations;
    const Tick comm_start = now + base;
    const unsigned per_pass =
        config_.model.layers * config_.allreduces_per_layer;
    auto op = comm_->allReduce(comm_start, bytes);
    op->setOnComplete([this, comm_start, per_pass](Tick fin) {
        const Tick measured = fin - comm_start;
        const Tick extra = measured * (per_pass - 1);
        scheduleFinish(fin + extra);
    });
}

void
ServingEngine::finishRequest(Request &r, Tick now)
{
    r.state = RequestState::finished;
    r.finish = now;
    const double ttft = secondsFromTicks(r.first_token - r.arrival);
    double tpot = 0.0;
    if (r.generated > 1) {
        tpot = secondsFromTicks(now - r.first_token)
               / static_cast<double>(r.generated - 1);
        tpot_s.sample(tpot);
    }
    if (ttft <= config_.slo_ttft_s && tpot <= config_.slo_tpot_s)
        ++slo_attained;
    else
        ++slo_missed;
    batcher_.finish(r.id);
    ++finished_;
    last_finish_ = std::max(last_finish_, now);
}

void
ServingEngine::finishIteration(Tick now)
{
    // Retires the in-flight plan and advances request/KV state; the
    // batcher write pairs with step()'s so a same-tick completion
    // vs. rescheduling collision is flagged.
    EHPSIM_TRACK_WRITE(this, "batcher");
    for (const auto &[idx, chunk] : plan_.prefill) {
        Request &r = requests_[idx];
        if (r.state != RequestState::prefill)
            panic("serving engine: planned prefill for request ",
                  idx, " in wrong state");
        r.prefill_done += chunk;
        r.kv_tokens = r.prefill_done;
        if (!r.prefillComplete())
            continue;
        r.state = RequestState::decode;
        if (r.generated == 0) {
            // Fresh prefill emits the first token; a recompute
            // after eviction only restores context.
            r.first_token = now;
            ttft_s.sample(secondsFromTicks(now - r.arrival));
            r.generated = 1;
            r.kv_tokens += 1;
            ++tokens_generated;
            if (r.generated >= r.output_tokens)
                finishRequest(r, now);
        }
    }

    for (const std::uint64_t idx : plan_.decode) {
        Request &r = requests_[idx];
        if (r.state != RequestState::decode)
            panic("serving engine: planned decode for request ", idx,
                  " in wrong state");
        r.kv_tokens += 1;
        r.generated += 1;
        ++tokens_generated;
        if (r.generated >= r.output_tokens)
            finishRequest(r, now);
    }

    plan_ = IterationPlan{};
    busy_ = false;
    step();
}

void
ServingEngine::snapshot(SnapshotWriter &w) const
{
    StatGroup::snapshot(w);
    w.putU64(requests_.size());
    for (const Request &r : requests_) {
        w.putU8(static_cast<std::uint8_t>(r.state));
        w.putU32(r.prefill_done);
        w.putU32(r.generated);
        w.putU32(r.kv_tokens);
        w.putU64(r.kv_blocks);
        w.putU32(r.preemptions);
        w.putU64(r.first_token);
        w.putU64(r.finish);
    }
    w.putU64(next_arrival_);
    w.putBool(busy_);
    w.putBool(wake_scheduled_);
    w.putF64(hbm_ratio_);
    w.putU64(finished_);
    w.putU64(last_finish_);
    w.putU64(plan_.decode.size());
    for (const std::uint64_t idx : plan_.decode)
        w.putU64(idx);
    w.putU64(plan_.prefill.size());
    for (const auto &[idx, chunk] : plan_.prefill) {
        w.putU64(idx);
        w.putU32(chunk);
    }
    w.putU64(plan_.context_tokens);
}

void
ServingEngine::restore(SnapshotReader &r)
{
    StatGroup::restore(r);
    const std::uint64_t n = r.getU64();
    if (n != requests_.size()) {
        fatal("serving engine '", name(), "': snapshot holds ", n,
              " requests but the trace built ", requests_.size(),
              " — checkpoint/config mismatch");
    }
    for (Request &req : requests_) {
        req.state = static_cast<RequestState>(r.getU8());
        req.prefill_done = r.getU32();
        req.generated = r.getU32();
        req.kv_tokens = r.getU32();
        req.kv_blocks = r.getU64();
        req.preemptions = r.getU32();
        req.first_token = r.getU64();
        req.finish = r.getU64();
    }
    next_arrival_ = r.getU64();
    busy_ = r.getBool();
    wake_scheduled_ = r.getBool();
    hbm_ratio_ = r.getF64();
    finished_ = r.getU64();
    last_finish_ = r.getU64();
    plan_ = IterationPlan{};
    const std::uint64_t nd = r.getU64();
    plan_.decode.reserve(nd);
    for (std::uint64_t i = 0; i < nd; ++i)
        plan_.decode.push_back(r.getU64());
    const std::uint64_t np = r.getU64();
    plan_.prefill.reserve(np);
    for (std::uint64_t i = 0; i < np; ++i) {
        const std::uint64_t idx = r.getU64();
        plan_.prefill.emplace_back(idx, r.getU32());
    }
    plan_.context_tokens = r.getU64();
}

} // namespace serve
} // namespace ehpsim
