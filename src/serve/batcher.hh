/**
 * @file
 * Continuous (iteration-level) batching over the KV block pool.
 *
 * Orca/vLLM-style scheduling: every iteration the batcher assembles a
 * fresh plan of decode steps (one token per running decode sequence)
 * and prefill chunks (prompt tokens packed into the remaining token
 * budget), admitting new requests from the FIFO queue while KV blocks
 * and batch slots last. Under KV pressure the latest-admitted
 * sequence is evicted — its blocks freed, its context re-prefetched
 * from scratch on re-admission (preemption with recompute) — so
 * earlier arrivals are never starved by later ones.
 *
 * All policy here is deterministic: FIFO admission, LIFO eviction,
 * no randomness, no wall-clock, no unordered containers.
 */

#ifndef EHPSIM_SERVE_BATCHER_HH
#define EHPSIM_SERVE_BATCHER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/kv_cache.hh"
#include "serve/request.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace ehpsim
{
namespace serve
{

/** One iteration's worth of work, in deterministic order. */
struct IterationPlan
{
    /** Requests generating one token each (admission order). */
    std::vector<std::uint64_t> decode;
    /** (request, chunk tokens) prefill slices (admission order). */
    std::vector<std::pair<std::uint64_t, unsigned>> prefill;
    /** KV context tokens read by attention this iteration. */
    std::uint64_t context_tokens = 0;

    unsigned tokens() const
    {
        unsigned t = static_cast<unsigned>(decode.size());
        for (const auto &[idx, chunk] : prefill)
            t += chunk;
        return t;
    }

    bool empty() const { return decode.empty() && prefill.empty(); }
};

class ContinuousBatcher : public SimObject
{
  public:
    struct Params
    {
        unsigned token_budget = 2048;
        unsigned max_batch = 64;
    };

    /** @p requests and @p kv are owned by the engine (not copied). */
    ContinuousBatcher(SimObject *parent, const std::string &name,
                      const Params &p, std::vector<Request> *requests,
                      KvCacheManager *kv);

    /** A request arrived; join the admission queue. */
    void enqueue(std::uint64_t idx);

    /**
     * Build the next iteration's plan. Mutates scheduling state: may
     * reserve KV blocks for decode growth and admissions, and may
     * evict sequences when reservations fail.
     */
    IterationPlan buildPlan();

    /** A running request emitted its last token; free its residency. */
    void finish(std::uint64_t idx);

    /**
     * Evict latest-admitted sequences until the (possibly shrunken)
     * KV pool is no longer over-committed.
     */
    void preemptUntilFits();

    std::size_t waitingDepth() const { return waiting_.size(); }

    std::size_t runningCount() const { return running_.size(); }

    bool idle() const { return waiting_.empty() && running_.empty(); }

    std::uint64_t evictions() const
    {
        return static_cast<std::uint64_t>(evictions_.value());
    }

    std::uint64_t recomputeTokens() const
    {
        return static_cast<std::uint64_t>(recompute_tokens_.value());
    }

    /** @{ checkpoint: stats (base) + the admission queue and the
     *  resident set, in order (DESIGN.md §16). Per-request fields
     *  (kv_blocks, prefill_done, state...) belong to the engine's
     *  request table, not the batcher. */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    /** Evict the latest-admitted running sequence; @return it. */
    std::uint64_t preemptLatest();

    Params params_;
    std::vector<Request> *requests_;
    KvCacheManager *kv_;

    /** FIFO admission queue; evicted sequences re-enter at the
     *  FRONT so earlier arrivals keep priority. */
    std::deque<std::uint64_t> waiting_;
    /** Resident sequences in admission order (eviction pops the
     *  back). */
    std::vector<std::uint64_t> running_;

    stats::Scalar admitted_;
    stats::Scalar evictions_;
    stats::Scalar recompute_tokens_;
    stats::Scalar admission_stalls_;
};

} // namespace serve
} // namespace ehpsim

#endif // EHPSIM_SERVE_BATCHER_HH
