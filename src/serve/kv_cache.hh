/**
 * @file
 * Paged KV-cache accounting against unified-HBM capacity.
 *
 * Models a vLLM-style block allocator: the device memory left after
 * model weights is carved into fixed-size blocks of block_tokens
 * tokens each, and every resident sequence pins ceil(tokens/block)
 * blocks. The manager only tracks counts — block identity does not
 * affect timing — which keeps admission, eviction, and occupancy
 * deterministic and allocation-free.
 *
 * Capacity can be rescaled mid-run (HBM channel blackouts from the
 * fault injector shrink the pool), which may leave the pool
 * over-committed until the batcher preempts sequences to fit.
 */

#ifndef EHPSIM_SERVE_KV_CACHE_HH
#define EHPSIM_SERVE_KV_CACHE_HH

#include <cstdint>

#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace ehpsim
{
namespace serve
{

class KvCacheManager : public SimObject
{
  public:
    struct Params
    {
        std::uint64_t total_blocks = 0;
        unsigned block_tokens = 16;
    };

    KvCacheManager(SimObject *parent, const std::string &name,
                   const Params &p);

    /** Blocks needed to pin @p tokens tokens. */
    std::uint64_t blocksForTokens(unsigned tokens) const;

    /**
     * Reserve @p blocks blocks; false (and a counted failure) when
     * the pool cannot cover them.
     */
    bool tryReserve(std::uint64_t blocks);

    void release(std::uint64_t blocks);

    /**
     * Rescale the pool (HBM degradation). Never fails: the pool may
     * become over-committed; the caller must preempt until
     * overCommitted() clears.
     */
    void setTotalBlocks(std::uint64_t blocks);

    bool overCommitted() const { return used_ > total_; }

    std::uint64_t totalBlocks() const { return total_; }

    std::uint64_t usedBlocks() const { return used_; }

    std::uint64_t freeBlocks() const
    {
        return used_ >= total_ ? 0 : total_ - used_;
    }

    unsigned blockTokens() const { return block_tokens_; }

    double occupancy() const
    {
        return total_ ? static_cast<double>(used_)
                            / static_cast<double>(total_)
                      : 0.0;
    }

    std::uint64_t reserveFailures() const
    {
        return static_cast<std::uint64_t>(reserve_failures_.value());
    }

    /** High-water mark of resident blocks over the run. */
    std::uint64_t peakUsedBlocks() const
    {
        return static_cast<std::uint64_t>(peak_used_.value());
    }

    /** @{ checkpoint: stats (base) + pool size and residency
     *  (DESIGN.md §16). total_ is saved because HBM blackouts
     *  rescale it mid-run. */
    void snapshot(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
    /** @} */

  private:
    std::uint64_t total_;
    unsigned block_tokens_;
    std::uint64_t used_ = 0;

    stats::Scalar reserve_failures_;
    stats::Scalar blocks_reserved_;
    stats::Scalar blocks_released_;
    stats::Scalar peak_used_;
    stats::Formula occupancy_stat_;
};

} // namespace serve
} // namespace ehpsim

#endif // EHPSIM_SERVE_KV_CACHE_HH
