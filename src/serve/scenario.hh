/**
 * @file
 * One-call serving scenarios: wire arrival trace, engine, KV cache,
 * octo-node fabric, and fault injector on a single EventQueue, run
 * to completion, and summarize.
 *
 * This is the layer the serving bench, the `ehpsim_cli serve`
 * subcommand, and the tests all share, so every consumer replays the
 * exact same wiring: deterministic arrivals from a seed, a real
 * CommGroup over the Fig. 18b node for TP > 1, an HbmSubsystem whose
 * channel blackouts shrink the KV pool, and a FaultInjector armed
 * with the caller's plan. dumpScenario() serializes both the summary
 * metrics and the full stats tree, so byte-comparing two documents
 * checks the entire simulation history.
 */

#ifndef EHPSIM_SERVE_SCENARIO_HH
#define EHPSIM_SERVE_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "serve/serving_config.hh"
#include "sim/json.hh"
#include "sim/types.hh"
#include "workloads/arrivals.hh"

namespace ehpsim
{
namespace serve
{

struct ScenarioParams
{
    /** "mi300x" (192 GB, vLLM FP16) or "baseline" (80 GB,
     *  TensorRT-LLM FP8). */
    std::string device = "mi300x";
    unsigned tp = 1;
    /** Offered load, requests per second (open loop). */
    double load_rps = 1.0;
    unsigned num_requests = 32;
    unsigned input_tokens = 1024;
    unsigned output_tokens = 256;
    std::uint64_t seed = 1;
    /** MMPP bursty arrivals instead of plain Poisson. */
    bool bursty = false;

    unsigned token_budget = 2048;
    unsigned max_batch = 64;
    /** Test hook: force a tiny KV pool to exercise eviction. */
    std::uint64_t kv_blocks_override = 0;

    /**
     * Run the simulation on the conservative parallel core with
     * this many partitions (0 = the serial queue, the default).
     * Output is byte-identical either way — the knob trades wall
     * time only, and is deliberately NOT serialized by
     * dumpScenario() so serial and PDES documents can be cmp'd.
     */
    unsigned pdes = 0;

    /**
     * Checkpoint/fast-forward rehearsal (DESIGN.md §16): when > 0,
     * run serially to this tick, quiesce, snapshot the world, and
     * finish the run on a freshly built world restored from that
     * snapshot (honoring the pdes knob). Output is byte-identical
     * to a straight-through run; like pdes, the knob trades wall
     * time only and is deliberately NOT serialized by
     * dumpScenario() so the two documents can be cmp'd.
     */
    Tick checkpoint_at = 0;

    fault::FaultPlan faults;
};

struct ScenarioResult
{
    double ttft_p50_s = 0, ttft_p95_s = 0, ttft_p99_s = 0;
    double tpot_p50_s = 0, tpot_p95_s = 0, tpot_p99_s = 0;
    /**
     * Samples behind the percentiles above. Percentile::percentile
     * returns 0 on an empty stat, so a consumer reading a 0 latency
     * must check these to tell "no completed requests" from a
     * genuine sub-resolution latency.
     */
    std::uint64_t ttft_samples = 0;
    std::uint64_t tpot_samples = 0;
    double tokens_per_s = 0;
    double slo_attainment = 0;
    double mean_queue_depth = 0;
    double max_queue_depth = 0;
    double kv_peak_occupancy = 0;
    std::uint64_t kv_peak_blocks = 0;
    std::uint64_t kv_total_blocks = 0;
    std::uint64_t kv_reserve_failures = 0;
    std::uint64_t evictions = 0;
    std::uint64_t recompute_tokens = 0;
    std::uint64_t chunk_retries = 0;
    std::uint64_t channels_dark = 0;
    std::uint64_t completed = 0;
    std::uint64_t iterations = 0;
    double makespan_s = 0;
    /** The root stats tree, serialized deterministically. */
    std::string stats_json;
};

/** The ServingConfig a scenario resolves to (exposed for tests). */
ServingConfig scenarioConfig(const ScenarioParams &p);

/** The arrival trace a scenario replays (exposed for tests). */
std::vector<workloads::ServingRequestSpec>
scenarioTrace(const ScenarioParams &p);

/** Build, run to completion, and summarize one scenario. Fatal if
 *  the run stalls before every request finishes. With
 *  p.checkpoint_at > 0, the run round-trips through a snapshot at
 *  that tick (see ScenarioParams::checkpoint_at). */
ScenarioResult runServingScenario(const ScenarioParams &p);

/**
 * Run the scenario serially to p.checkpoint_at (> 0 required),
 * quiesce, and return the saveWorld() blob — the `ehpsim_cli serve
 * --checkpoint` save path, and the warm half of runServingScenario's
 * rehearsal.
 */
std::string checkpointServingScenario(const ScenarioParams &p);

/**
 * Restore @p blob into a freshly built world for @p p and run it to
 * completion (honoring p.pdes). @p p must describe the same scenario
 * the blob was saved from — a mismatched topology or trace is fatal
 * during restore. Fatal on a corrupt or truncated blob.
 */
ScenarioResult resumeServingScenario(const ScenarioParams &p,
                                     const std::string &blob);

/** Write params + metrics + the stats tree as one JSON object. */
void dumpScenario(json::JsonWriter &jw, const ScenarioParams &p,
                  const ScenarioResult &r);

} // namespace serve
} // namespace ehpsim

#endif // EHPSIM_SERVE_SCENARIO_HH
