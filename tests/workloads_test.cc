/**
 * @file
 * Tests for the workload IR and the synthetic generators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "workloads/arrivals.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::workloads;

TEST(Workload, Totals)
{
    Workload w;
    Phase a;
    a.gpu_flops = 100;
    a.gpu_bytes_read = 10;
    a.gpu_bytes_written = 5;
    a.to_gpu_bytes = 7;
    Phase b;
    b.gpu_flops = 50;
    b.to_cpu_bytes = 3;
    w.phases = {a, b};
    EXPECT_EQ(w.totalGpuFlops(), 150u);
    EXPECT_EQ(w.totalGpuBytes(), 15u);
    EXPECT_EQ(w.totalTransferBytes(), 10u);
}

TEST(Generators, TriadIsBandwidthBound)
{
    const auto w = streamTriad(1 << 20);
    ASSERT_EQ(w.phases.size(), 1u);
    const auto &p = w.phases[0];
    // Arithmetic intensity of triad is 2 flops / 24 bytes.
    const double ai = static_cast<double>(p.gpu_flops) /
                      (p.gpu_bytes_read + p.gpu_bytes_written);
    EXPECT_LT(ai, 0.2);
}

TEST(Generators, GemmIsComputeBound)
{
    const auto w = gemm(4096, 4096, 4096);
    const auto &p = w.phases[0];
    const double ai = static_cast<double>(p.gpu_flops) /
                      (p.gpu_bytes_read + p.gpu_bytes_written);
    EXPECT_GT(ai, 100.0);
    EXPECT_EQ(p.pipe, gpu::Pipe::matrix);
}

TEST(Generators, NbodyQuadraticInBodies)
{
    const auto small = nbody(1000);
    const auto large = nbody(2000);
    EXPECT_NEAR(static_cast<double>(large.totalGpuFlops()) /
                    small.totalGpuFlops(),
                4.0, 0.01);
}

TEST(Generators, HpcgIsMemoryBound)
{
    const auto w = hpcg(64, 64, 64, 2);
    EXPECT_EQ(w.phases.size(), 4u);     // spmv + dot per iteration
    const double ai =
        static_cast<double>(w.totalGpuFlops()) / w.totalGpuBytes();
    EXPECT_LT(ai, 0.25);
    EXPECT_EQ(w.phases[0].dtype, gpu::DataType::fp64);
}

TEST(Generators, CfdCouplesCpuAndGpu)
{
    const auto w = cfdSolver(1'000'000, 3);
    EXPECT_EQ(w.phases.size(), 6u);
    EXPECT_GT(w.totalTransferBytes(), 0u);
    bool has_cpu = false, has_overlap = false;
    for (const auto &p : w.phases) {
        if (p.device == PhaseDevice::cpu)
            has_cpu = true;
        if (p.fine_grained_capable)
            has_overlap = true;
    }
    EXPECT_TRUE(has_cpu);
    EXPECT_TRUE(has_overlap);
}

TEST(Generators, LlmPrefillComputeBoundDecodeBandwidthBound)
{
    LlmConfig cfg;
    const auto pre = llmPrefill(cfg);
    const auto dec = llmDecode(cfg);
    const double pre_ai =
        static_cast<double>(pre.totalGpuFlops()) /
        pre.totalGpuBytes();
    const double dec_ai =
        static_cast<double>(dec.totalGpuFlops()) /
        dec.totalGpuBytes();
    // Paper Sec. VII: prompt phase demands compute, token phase is
    // constrained by memory bandwidth.
    EXPECT_GT(pre_ai, 100.0);
    EXPECT_LT(dec_ai, 10.0);
}

TEST(Generators, LlmFootprintMatchesWeights)
{
    LlmConfig cfg;
    const auto w = llmInference(cfg);
    // 70B FP16 parameters = 140 GB: more than the baseline GPU's
    // 80 GB but within MI300X's 192 GB (paper Fig. 19/21).
    EXPECT_NEAR(static_cast<double>(w.footprint_bytes) / 1e9, 140.0,
                1.0);
    EXPECT_EQ(w.phases.size(), 2u);
}

TEST(Generators, LlmDecodeScalesWithOutputTokens)
{
    LlmConfig a, b;
    a.output_tokens = 64;
    b.output_tokens = 128;
    EXPECT_NEAR(static_cast<double>(
                    llmDecode(b).totalGpuBytes()) /
                    llmDecode(a).totalGpuBytes(),
                2.0, 0.05);
}

TEST(Generators, GromacsMixedPhases)
{
    const auto w = gromacsLike(500'000, 2);
    EXPECT_EQ(w.phases.size(), 4u);
    EXPECT_EQ(w.phases[0].dtype, gpu::DataType::fp32);
}

// ---------------------------------------------------------------------
// Open-loop arrival traces (src/workloads/arrivals.hh)
// ---------------------------------------------------------------------

namespace
{

ArrivalParams
arrivalParams(std::uint64_t seed, unsigned n, double rate)
{
    ArrivalParams p;
    p.seed = seed;
    p.num_requests = n;
    p.rate_per_s = rate;
    return p;
}

double
interArrivalCv(const std::vector<ServingRequestSpec> &trace)
{
    double sum = 0, sq = 0;
    const auto n = static_cast<double>(trace.size() - 1);
    for (std::size_t i = 1; i < trace.size(); ++i) {
        const double d =
            secondsFromTicks(trace[i].arrival - trace[i - 1].arrival);
        sum += d;
        sq += d * d;
    }
    const double mean = sum / n;
    return std::sqrt(sq / n - mean * mean) / mean;
}

} // anonymous namespace

TEST(Arrivals, PoissonIsSeedDeterministicAndSorted)
{
    const auto a = poissonArrivals(arrivalParams(7, 64, 4.0));
    const auto b = poissonArrivals(arrivalParams(7, 64, 4.0));
    ASSERT_EQ(a.size(), 64u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].input_tokens, b[i].input_tokens);
        EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
        if (i > 0)
            EXPECT_GT(a[i].arrival, a[i - 1].arrival);
    }
    const auto c = poissonArrivals(arrivalParams(8, 64, 4.0));
    EXPECT_NE(a[0].arrival, c[0].arrival);
}

TEST(Arrivals, PoissonMatchesOfferedLoad)
{
    const auto trace = poissonArrivals(arrivalParams(3, 4000, 10.0));
    const double span = secondsFromTicks(trace.back().arrival);
    const double rate = 4000.0 / span;
    EXPECT_NEAR(rate, 10.0, 1.0);
}

TEST(Arrivals, TokenJitterStaysInBounds)
{
    ArrivalParams p = arrivalParams(11, 256, 2.0);
    p.mean_input_tokens = 1000;
    p.mean_output_tokens = 100;
    p.token_jitter = 0.25;
    for (const auto &r : poissonArrivals(p)) {
        EXPECT_GE(r.input_tokens, 750u);
        EXPECT_LE(r.input_tokens, 1250u);
        EXPECT_GE(r.output_tokens, 75u);
        EXPECT_LE(r.output_tokens, 125u);
        EXPECT_GT(r.output_tokens, 0u);
    }
}

TEST(Arrivals, MmppIsBurstierThanPoissonAtEqualMeanLoad)
{
    const auto poisson = poissonArrivals(arrivalParams(5, 512, 2.0));
    const auto mmpp =
        mmppArrivals(arrivalParams(5, 512, 2.0), MmppParams{});
    ASSERT_EQ(mmpp.size(), 512u);
    for (std::size_t i = 1; i < mmpp.size(); ++i)
        EXPECT_GT(mmpp[i].arrival, mmpp[i - 1].arrival);
    // A Poisson process has inter-arrival CV ~= 1; the two-state
    // MMPP's burst/calm switching pushes it well above.
    EXPECT_NEAR(interArrivalCv(poisson), 1.0, 0.25);
    EXPECT_GT(interArrivalCv(mmpp), interArrivalCv(poisson) * 1.2);
}

TEST(Arrivals, InvalidParamsAreFatal)
{
    ArrivalParams bad = arrivalParams(1, 8, 0.0);
    EXPECT_THROW(bad.validate(), std::runtime_error);
    ArrivalParams jit = arrivalParams(1, 8, 1.0);
    jit.token_jitter = 1.0;
    EXPECT_THROW(jit.validate(), std::runtime_error);
    MmppParams m;
    m.burst_rate_multiplier = 0.5;
    EXPECT_THROW(m.validate(), std::runtime_error);
}
