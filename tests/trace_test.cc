/**
 * @file
 * Tests for the Chrome-trace exporter and the coherence-sampling
 * integration of the event engine.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/apu_system.hh"
#include "core/machine_model.hh"
#include "core/roofline.hh"
#include "core/trace.hh"
#include "workloads/generators.hh"

using namespace ehpsim;
using namespace ehpsim::core;

TEST(Trace, EmitsValidSkeleton)
{
    const RooflineEngine eng(mi300aModel());
    const auto rep = eng.run(workloads::cfdSolver(1'000'000, 2));
    std::ostringstream oss;
    writeChromeTrace(rep, oss);
    const std::string json = oss.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"GPU\""), std::string::npos);
    EXPECT_NE(json.find("\"CPU\""), std::string::npos);
    EXPECT_NE(json.find("gpu_solve0"), std::string::npos);
    // Balanced braces/brackets at the top level.
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, DiscreteRunsShowCopies)
{
    const RooflineEngine eng(mi250xNodeModel());
    const auto rep = eng.run(workloads::cfdSolver(1'000'000, 1));
    std::ostringstream oss;
    writeChromeTrace(rep, oss);
    EXPECT_NE(oss.str().find("(copy)"), std::string::npos);
}

TEST(Trace, UnifiedRunsShowNoCopies)
{
    const RooflineEngine eng(mi300aModel());
    const auto rep = eng.run(workloads::cfdSolver(1'000'000, 1));
    std::ostringstream oss;
    writeChromeTrace(rep, oss);
    EXPECT_EQ(oss.str().find("(copy)"), std::string::npos);
}

TEST(Trace, BadPathFatal)
{
    const RooflineEngine eng(mi300aModel());
    const auto rep = eng.run(workloads::streamTriad(1024));
    EXPECT_THROW(writeChromeTrace(rep, "/nonexistent/dir/x.json"),
                 std::runtime_error);
}

TEST(CoherenceSampling, GpuToCpuHandoffGeneratesProbes)
{
    ApuSystem sys(soc::mi300aConfig());
    auto w = workloads::cfdSolver(100'000, 2);
    for (auto &p : w.phases)
        p.grid_workgroups = 128;
    sys.run(w);
    auto *pf = sys.package().probeFilter();
    // The CPU consumed GPU-produced lines: cache-to-cache transfers
    // and probes must have occurred, and the directory must stay
    // consistent.
    EXPECT_GT(pf->lookups.value(), 0.0);
    EXPECT_GT(pf->probes_sent.value(), 0.0);
    EXPECT_GT(pf->cache_transfers.value(), 0.0);
    EXPECT_TRUE(pf->invariantsHold());
}

TEST(CoherenceSampling, GpuOnlyWorkloadsGenerateNoProbes)
{
    ApuSystem sys(soc::mi300aConfig());
    auto w = workloads::streamTriad(1 << 17);
    w.phases[0].grid_workgroups = 128;
    sys.run(w);
    // Pure GPU phases take ownership but nothing ever probes.
    EXPECT_DOUBLE_EQ(
        sys.package().probeFilter()->cache_transfers.value(), 0.0);
}

TEST(CoherenceSampling, NoCcdsMeansNoSampling)
{
    ApuSystem sys(soc::mi300xConfig());
    auto w = workloads::streamTriad(1 << 17);
    w.phases[0].grid_workgroups = 128;
    sys.run(w);
    EXPECT_DOUBLE_EQ(sys.package().probeFilter()->lookups.value(),
                     0.0);
}
