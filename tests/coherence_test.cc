/**
 * @file
 * Tests for the probe-filter directory protocol and GPU scoped
 * coherence.
 */

#include <gtest/gtest.h>

#include "coherence/gpu_scope.hh"
#include "coherence/probe_filter.hh"
#include "sim/rng.hh"

using namespace ehpsim;
using namespace ehpsim::coherence;

TEST(ProbeFilter, ColdReadIsExclusiveFromMemory)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    const auto out = pf.read(0, 0x1000);
    EXPECT_TRUE(out.data_from_memory);
    EXPECT_EQ(out.probes, 0u);
    EXPECT_EQ(pf.lineState(0x1000), State::exclusive);
    EXPECT_EQ(pf.owner(0x1000), std::optional<AgentId>(0));
}

TEST(ProbeFilter, SecondReaderDowngradesExclusive)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    pf.read(0, 0x1000);
    const auto out = pf.read(1, 0x1000);
    EXPECT_EQ(out.probes, 1u);
    EXPECT_TRUE(out.data_from_cache);
    EXPECT_EQ(pf.lineState(0x1000), State::shared);
    EXPECT_EQ(pf.holders(0x1000).size(), 2u);
}

TEST(ProbeFilter, ReadOfModifiedGoesOwned)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    pf.write(0, 0x40);
    EXPECT_EQ(pf.lineState(0x40), State::modified);
    const auto out = pf.read(1, 0x40);
    EXPECT_TRUE(out.data_from_cache);
    EXPECT_EQ(pf.lineState(0x40), State::owned);
    EXPECT_EQ(pf.owner(0x40), std::optional<AgentId>(0));
}

TEST(ProbeFilter, WriteInvalidatesAllSharers)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    pf.read(0, 0x80);
    pf.read(1, 0x80);
    pf.read(2, 0x80);
    const auto out = pf.write(3, 0x80);
    EXPECT_EQ(out.invalidations, 3u);
    EXPECT_EQ(pf.lineState(0x80), State::modified);
    EXPECT_EQ(pf.holders(0x80), std::vector<AgentId>{3});
}

TEST(ProbeFilter, WriteUpgradeByHolderProbesOthersOnly)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    pf.read(0, 0x80);
    pf.read(1, 0x80);
    const auto out = pf.write(0, 0x80);
    EXPECT_EQ(out.invalidations, 1u);
    EXPECT_FALSE(out.data_from_memory);     // already held the data
    EXPECT_EQ(pf.owner(0x80), std::optional<AgentId>(0));
}

TEST(ProbeFilter, RepeatedAccessByHolderIsSilent)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    pf.read(0, 0x100);
    const auto out = pf.read(0, 0x100);
    EXPECT_EQ(out.probes, 0u);
    EXPECT_FALSE(out.data_from_memory);
    EXPECT_FALSE(out.data_from_cache);
}

TEST(ProbeFilter, DirtyEvictionWritesBack)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    pf.write(2, 0x200);
    const auto out = pf.evict(2, 0x200);
    EXPECT_TRUE(out.writeback);
    EXPECT_EQ(pf.lineState(0x200), State::invalid);
    EXPECT_EQ(pf.trackedLines(), 0u);
}

TEST(ProbeFilter, CleanEvictionLeavesSharers)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    pf.read(0, 0x200);
    pf.read(1, 0x200);
    const auto out = pf.evict(0, 0x200);
    EXPECT_FALSE(out.writeback);
    EXPECT_EQ(pf.holders(0x200), std::vector<AgentId>{1});
    EXPECT_TRUE(pf.invariantsHold());
}

TEST(ProbeFilter, OwnedEvictionWritesBackAndDowngrades)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    pf.write(0, 0x300);
    pf.read(1, 0x300);          // 0 owned, 1 sharer
    const auto out = pf.evict(0, 0x300);
    EXPECT_TRUE(out.writeback);
    EXPECT_EQ(pf.lineState(0x300), State::shared);
    EXPECT_TRUE(pf.invariantsHold());
}

TEST(ProbeFilter, CapacityRecallInvalidatesEverywhere)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf", /*capacity=*/4);
    for (Addr a = 0; a < 4 * 64; a += 64)
        pf.read(0, a);
    EXPECT_EQ(pf.trackedLines(), 4u);
    const auto out = pf.read(1, 0x1000);
    EXPECT_TRUE(out.recall);
    EXPECT_EQ(pf.trackedLines(), 4u);
    EXPECT_GT(pf.recalls.value(), 0.0);
}

TEST(ProbeFilter, LinesAlignToLineSize)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf", 0, 64);
    pf.write(0, 0x1008);
    const auto out = pf.read(1, 0x1030);    // same 64 B line
    EXPECT_TRUE(out.data_from_cache);
}

class ProbeFilterRandom : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ProbeFilterRandom, InvariantsUnderRandomTraffic)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf", 256);
    Rng rng(GetParam());
    for (int i = 0; i < 20000; ++i) {
        const AgentId agent = rng.nextBounded(9);   // 6 XCD + 3 CCD
        const Addr addr = rng.nextBounded(1 << 16);
        const auto op = rng.nextBounded(3);
        if (op == 0)
            pf.read(agent, addr);
        else if (op == 1)
            pf.write(agent, addr);
        else
            pf.evict(agent, addr);
        if (i % 500 == 0) {
            ASSERT_TRUE(pf.invariantsHold()) << "iteration " << i;
        }
    }
    EXPECT_TRUE(pf.invariantsHold());
    EXPECT_LE(pf.trackedLines(), 256u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbeFilterRandom,
                         ::testing::Values(1, 2, 3, 42, 1234));

TEST(ProbeFilter, SingleWriterInvariant)
{
    SimObject root(nullptr, "root");
    ProbeFilter pf(&root, "pf");
    Rng rng(77);
    const Addr addr = 0x4000;
    for (int i = 0; i < 100; ++i) {
        const AgentId a = rng.nextBounded(8);
        if (rng.nextBool(0.5))
            pf.write(a, addr);
        else
            pf.read(a, addr);
        const auto st = pf.lineState(addr);
        if (st == State::modified || st == State::exclusive) {
            EXPECT_EQ(pf.holders(addr).size(), 1u);
        }
    }
}

// ---------------------------------------------------------------------
// GPU scoped coherence
// ---------------------------------------------------------------------

namespace
{

class NullMemory : public mem::MemDevice
{
  public:
    explicit NullMemory(SimObject *parent)
        : mem::MemDevice(parent, "null")
    {}

    mem::AccessResult
    access(Tick when, Addr, std::uint64_t, bool) override
    {
        return {when + 1000, true, 0};
    }
};

struct ScopeFixture
{
    SimObject root{nullptr, "root"};
    NullMemory memory{&root};
    mem::Cache l2;
    mem::Cache l1a;
    mem::Cache l1b;
    ScopeController ctrl{&root, "scopes"};

    static mem::CacheParams
    smallCache()
    {
        mem::CacheParams p;
        p.size_bytes = 4096;
        p.assoc = 4;
        p.line_bytes = 64;
        return p;
    }

    ScopeFixture()
        : l2(&root, "l2", smallCache(), &memory),
          l1a(&root, "l1a", smallCache(), &l2),
          l1b(&root, "l1b", smallCache(), &l2)
    {
        ctrl.addXcdCaches({&l1a, &l1b}, &l2);
    }
};

} // anonymous namespace

TEST(ScopeController, WorkgroupScopeIsFree)
{
    ScopeFixture f;
    f.l1a.access(0, 0, 64, true);
    const auto op = f.ctrl.acquire(0, 0, Scope::workgroup);
    EXPECT_EQ(op.lines_invalidated, 0u);
    const auto rel = f.ctrl.release(0, 0, Scope::workgroup);
    EXPECT_EQ(rel.bytes_written_back, 0u);
}

TEST(ScopeController, AgentAcquireInvalidatesL1s)
{
    ScopeFixture f;
    f.l1a.access(0, 0, 256, false);
    f.l1b.access(0, 512, 128, false);
    const auto op = f.ctrl.acquire(0, 0, Scope::agent);
    EXPECT_EQ(op.lines_invalidated, 4u + 2u);
    EXPECT_EQ(f.l1a.array().numValid(), 0u);
}

TEST(ScopeController, DeviceReleaseFlushesL2)
{
    ScopeFixture f;
    f.l1a.access(0, 0, 128, true);      // dirty in L1
    const auto op = f.ctrl.release(0, 0, Scope::device);
    EXPECT_GE(op.bytes_written_back, 128u);
    EXPECT_EQ(f.l2.array().numValid(), 0u);
}

TEST(ScopeController, UnknownXcdFatal)
{
    ScopeFixture f;
    EXPECT_THROW(f.ctrl.acquire(0, 5, Scope::agent),
                 std::runtime_error);
}

TEST(ScopeController, ScopeNames)
{
    EXPECT_STREQ(scopeName(Scope::workgroup), "workgroup");
    EXPECT_STREQ(scopeName(Scope::system), "system");
}
