/**
 * @file
 * Tests for product configs, the package builder, floorplans,
 * partition modes (Fig. 17), and node topologies (Fig. 18).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "soc/floorplan_builder.hh"
#include "soc/node_topology.hh"
#include "soc/package.hh"
#include "soc/product_config.hh"

using namespace ehpsim;
using namespace ehpsim::soc;

TEST(ProductConfig, Mi300aComposition)
{
    const auto cfg = mi300aConfig();
    // Paper Sec. IV: 6 XCDs, 3 CCDs, 8 HBM stacks on 4 IODs.
    EXPECT_EQ(cfg.iods.size(), 4u);
    EXPECT_EQ(cfg.totalXcds(), 6u);
    EXPECT_EQ(cfg.totalCcds(), 3u);
    EXPECT_EQ(cfg.totalStacks(), 8u);
    EXPECT_EQ(cfg.hbm.capacity_bytes, 128ull << 30);
}

TEST(ProductConfig, Mi300xSwapsCcdsForXcds)
{
    const auto a = mi300aConfig();
    const auto x = mi300xConfig();
    // Paper Sec. VII: the modular chiplet swap.
    EXPECT_EQ(x.totalXcds(), 8u);
    EXPECT_EQ(x.totalCcds(), 0u);
    EXPECT_EQ(x.totalStacks(), a.totalStacks());
    EXPECT_EQ(x.hbm.capacity_bytes, 192ull << 30);  // +50% (Fig. 19)
}

TEST(Package, Mi300aBuildsCorrectCounts)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "mi300a", mi300aConfig());
    EXPECT_EQ(pkg.numXcds(), 6u);
    EXPECT_EQ(pkg.numCcds(), 3u);
    EXPECT_EQ(pkg.memMap().numChannels(), 128u);
    EXPECT_EQ(pkg.totalCus(), 228u);        // 6 x 38 (paper Sec. IV.B)
    EXPECT_NEAR(pkg.peakMemBandwidth() / 1e12, 5.3, 0.05);
    EXPECT_NEAR(pkg.peakCacheBandwidth() / 1e12, 17.0, 0.05);
    // 8 x16 links at 128 GB/s bidirectional = 1024 GB/s (Sec. VIII).
    EXPECT_DOUBLE_EQ(pkg.ioBandwidthGBs(), 1024.0);
}

TEST(Package, StackCountMismatchFatal)
{
    SimObject root(nullptr, "root");
    auto cfg = mi300aConfig();
    cfg.iods[0].num_hbm_stacks = 1;     // now only 7 stacks attached
    EXPECT_THROW(Package(&root, "bad", cfg), std::runtime_error);
}

TEST(Package, MemAccessFromXcdCompletes)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "mi300a", mi300aConfig());
    const auto r =
        pkg.memAccessFrom(pkg.xcdNode(0), 0, 0x10000, 256, false);
    EXPECT_GT(r.complete, 0u);
    // Another access from a CCD also works.
    const auto w =
        pkg.memAccessFrom(pkg.ccdNode(0), 0, 0x20000, 256, true);
    EXPECT_GT(w.complete, 0u);
}

TEST(Package, SecondAccessHitsInfinityCache)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "mi300a", mi300aConfig());
    const auto miss =
        pkg.memAccessFrom(pkg.xcdNode(0), 0, 0x40000, 128, false);
    EXPECT_FALSE(miss.hit);
    const auto hit = pkg.memAccessFrom(pkg.xcdNode(0), miss.complete,
                                       0x40000, 128, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_GT(pkg.cacheHitRate(), 0.0);
}

TEST(Package, LargeAccessSpreadsAcrossStacks)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "mi300a", mi300aConfig());
    pkg.memAccessFrom(pkg.xcdNode(0), 0, 0, 64 * 1024, false);
    unsigned used_stacks = 0;
    for (unsigned s = 0; s < 8; ++s) {
        double bytes = 0;
        for (unsigned c = 0; c < 16; ++c)
            bytes += pkg.channel(s * 16 + c)->bytes_served.value();
        if (bytes > 0)
            ++used_stacks;
    }
    EXPECT_GT(used_stacks, 4u);
}

TEST(Package, PartitionModesMatchFig17)
{
    SimObject root(nullptr, "root");
    Package a(&root, "mi300a", mi300aConfig());
    EXPECT_EQ(a.supportedPartitionCounts(),
              (std::vector<unsigned>{1, 3}));
    Package x(&root, "mi300x", mi300xConfig());
    EXPECT_EQ(x.supportedPartitionCounts(),
              (std::vector<unsigned>{1, 2, 4, 8}));
    EXPECT_THROW(a.partitionInto(2), std::runtime_error);

    const auto parts = a.partitionInto(3);
    ASSERT_EQ(parts.size(), 3u);
    for (auto *p : parts)
        EXPECT_EQ(p->numXcds(), 2u);
    EXPECT_EQ(a.unifiedPartition()->numXcds(), 6u);
}

TEST(Package, Mi250xProfile)
{
    SimObject root(nullptr, "root");
    Package pkg(&root, "mi250x", mi250xConfig());
    EXPECT_EQ(pkg.numXcds(), 2u);           // two GCDs
    EXPECT_EQ(pkg.numCcds(), 0u);
    EXPECT_EQ(pkg.totalCus(), 220u);
    EXPECT_NEAR(pkg.peakMemBandwidth() / 1e12, 3.2, 0.05);
    // No Infinity Cache: cache bandwidth == HBM bandwidth.
    EXPECT_DOUBLE_EQ(pkg.peakCacheBandwidth(),
                     pkg.peakMemBandwidth());
}

TEST(Package, Fig19GenerationalUplift)
{
    SimObject root(nullptr, "root");
    Package m250(&root, "mi250x", mi250xConfig());
    Package m300a(&root, "mi300a", mi300aConfig());
    Package m300x(&root, "mi300x", mi300xConfig());

    // Paper Fig. 19: memory bandwidth +70%, capacity +50% on X,
    // FP16 matrix ~3.4x per-socket.
    EXPECT_NEAR(m300a.peakMemBandwidth() / m250.peakMemBandwidth(),
                1.7, 0.1);
    EXPECT_NEAR(static_cast<double>(m300x.memCapacity()) /
                    m250.memCapacity(),
                1.5, 0.01);
    const double fp16_uplift =
        m300a.peakGpuFlops(gpu::Pipe::matrix, gpu::DataType::fp16) /
        m250.peakGpuFlops(gpu::Pipe::matrix, gpu::DataType::fp16);
    EXPECT_GT(fp16_uplift, 2.0);
    // FP8 exists only on MI300 (CDNA 3).
    EXPECT_EQ(m250.peakGpuFlops(gpu::Pipe::matrix,
                                gpu::DataType::fp8),
              0.0);
    EXPECT_GT(m300x.peakGpuFlops(gpu::Pipe::matrix,
                                 gpu::DataType::fp8),
              m300a.peakGpuFlops(gpu::Pipe::matrix,
                                 gpu::DataType::fp8));
}

TEST(Package, Ehpv4CpuPathIsLongerThanMi300a)
{
    SimObject root(nullptr, "root");
    Package ehp(&root, "ehpv4", ehpv4Config());
    Package m300(&root, "mi300a", mi300aConfig());
    // Paper Fig. 4 (3): EHPv4's CPU reaches HBM over two SerDes
    // hops; MI300A's CCD sits directly on an IOD.
    const auto ehp_lat =
        ehp.memAccessFrom(ehp.ccdNode(0), 0, 4096, 64, false);
    const auto m300_lat =
        m300.memAccessFrom(m300.ccdNode(0), 0, 4096, 64, false);
    EXPECT_GT(ehp_lat.complete, m300_lat.complete);
}

// ---------------------------------------------------------------------
// Floorplans
// ---------------------------------------------------------------------

TEST(FloorplanBuilder, Mi300aPlanIsOverlapFreeAndComplete)
{
    const auto plan = buildPackageFloorplan(mi300aConfig());
    EXPECT_TRUE(plan.overlapFree()) << [&] {
        std::string s;
        for (const auto &o : plan.overlaps())
            s += o + " ";
        return s;
    }();
    // All dies and stacks present.
    for (int i = 0; i < 6; ++i)
        EXPECT_NE(plan.find("xcd" + std::to_string(i)), nullptr);
    for (int i = 0; i < 3; ++i)
        EXPECT_NE(plan.find("ccd" + std::to_string(i)), nullptr);
    for (int i = 0; i < 8; ++i)
        EXPECT_NE(plan.find("hbm" + std::to_string(i)), nullptr);
    // USR strips exist on inner edges (Fig. 6).
    EXPECT_NE(plan.find("iod0.usr_e"), nullptr);
    EXPECT_GT(plan.utilization(), 0.4);
}

TEST(FloorplanBuilder, RowLayoutForMi250x)
{
    const auto plan = buildPackageFloorplan(mi250xConfig());
    EXPECT_TRUE(plan.overlapFree());
    EXPECT_NE(plan.find("xcd0"), nullptr);
    EXPECT_NE(plan.find("xcd1"), nullptr);
    EXPECT_NE(plan.find("hbm7"), nullptr);
}

TEST(FloorplanBuilder, DomainsMapFromNames)
{
    const auto plan = buildPackageFloorplan(mi300aConfig());
    using power::Domain;
    EXPECT_EQ(domainForRegion(*plan.find("xcd0")), Domain::xcd);
    EXPECT_EQ(domainForRegion(*plan.find("ccd0")), Domain::ccd);
    EXPECT_EQ(domainForRegion(*plan.find("hbm0")), Domain::hbm);
    EXPECT_EQ(domainForRegion(*plan.find("iod0.cache")),
              Domain::infinityCache);
    EXPECT_EQ(domainForRegion(*plan.find("iod0.usr_e")),
              Domain::usr);
}

TEST(FloorplanBuilder, RegionPowerVectorConserves)
{
    const auto plan = buildPackageFloorplan(mi300aConfig());
    std::vector<double> domain_watts(power::numDomains, 0.0);
    domain_watts[static_cast<unsigned>(power::Domain::xcd)] = 300.0;
    domain_watts[static_cast<unsigned>(power::Domain::hbm)] = 100.0;
    const auto region_watts = regionPowerVector(plan, domain_watts);
    double total = 0;
    for (double w : region_watts)
        total += w;
    EXPECT_NEAR(total, 400.0, 1e-6);
}

// ---------------------------------------------------------------------
// Node topologies
// ---------------------------------------------------------------------

TEST(NodeTopology, QuadApuFullyConnected)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    EXPECT_EQ(node->numEndpoints(), 4u);
    // Two x16 per pair, six of eight links used per socket
    // (Fig. 18a), leaving two for NICs/storage.
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(node->freeLinks(s), 2u);
    // Direct single hop between every pair at 128 GB/s.
    for (unsigned a = 0; a < 4; ++a) {
        for (unsigned b = 0; b < 4; ++b) {
            if (a == b)
                continue;
            EXPECT_NEAR(node->p2pBandwidth(a, b) / 1e9, 128.0, 0.1);
        }
    }
}

TEST(NodeTopology, OctoMi300xWithHosts)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300xOctoNode(&root);
    EXPECT_EQ(node->numEndpoints(), 10u);   // 8 accelerators + 2 hosts
    // Every accelerator used all eight links (7 IF + 1 PCIe).
    for (unsigned s = 0; s < 8; ++s)
        EXPECT_EQ(node->freeLinks(s), 0u);
    EXPECT_NEAR(node->p2pBandwidth(0, 7) / 1e9, 64.0, 0.1);
}

TEST(NodeTopology, AllToAllCompletes)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    const Tick done = node->allToAll(0, 64 << 20);
    // 64 MB at 128 GB/s is ~0.5 ms plus latency.
    EXPECT_GT(done, ticksFromSeconds(4e-4));
    EXPECT_LT(done, ticksFromSeconds(5e-3));
}

TEST(NodeTopology, OverSubscribedLinksFatal)
{
    SimObject root(nullptr, "root");
    NodeTopology node(&root, "custom");
    node.addSocket("a", 2);
    node.addSocket("b", 8);
    node.connect(0, 1, 2);
    EXPECT_THROW(node.connect(0, 1, 1), std::runtime_error);
}

TEST(NodeTopology, BisectionBandwidth)
{
    SimObject root(nullptr, "root");
    auto node = NodeTopology::mi300aQuadNode(&root);
    // Cut {0,1} vs {2,3}: four pair-links x 2 x16 x 64 GB/s.
    EXPECT_NEAR(node->bisectionBandwidth() / 1e9, 512.0, 1.0);
}
