/**
 * @file
 * Tests for the Zen core model and the CCD.
 */

#include <gtest/gtest.h>

#include "cpu/ccd.hh"
#include "cpu/zen_core.hh"

using namespace ehpsim;
using namespace ehpsim::cpu;

namespace
{

class FlatMemory : public mem::MemDevice
{
  public:
    FlatMemory(SimObject *parent, Tick latency)
        : mem::MemDevice(parent, "flat"), latency_(latency)
    {}

    mem::AccessResult
    access(Tick when, Addr, std::uint64_t, bool) override
    {
        return {when + latency_, true, 0};
    }

  private:
    Tick latency_;
};

} // anonymous namespace

TEST(ZenCore, ComputeBoundTimeMatchesFlopRate)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    ZenCore core(&root, "core", zen4CoreParams(), &memory);

    CpuWork work;
    work.flops = 16'000'000;    // 1e6 cycles at 16 flops/cycle
    const Tick done = core.run(0, work);
    // 1e6 cycles at 3.7 GHz = 270.27 us.
    const double seconds = secondsFromTicks(done);
    EXPECT_NEAR(seconds, 1e6 / 3.7e9, 1e-6);
}

TEST(ZenCore, ScalarIpcModel)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    ZenCore core(&root, "core", zen4CoreParams(), &memory);
    CpuWork work;
    work.scalar_ops = 4'000'000;    // 1e6 cycles at IPC 4
    const Tick done = core.run(0, work);
    EXPECT_NEAR(secondsFromTicks(done), 1e6 / 3.7e9, 1e-6);
    EXPECT_DOUBLE_EQ(core.instructions.value(), 4e6);
}

TEST(ZenCore, MemoryBoundWorkGatedByHierarchy)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 200'000);  // slow memory
    ZenCore core(&root, "core", zen4CoreParams(), &memory);
    CpuWork small;
    small.flops = 1000;
    small.bytes_read = 64 * 1024;   // misses L1, mostly misses L2
    const Tick done = core.run(0, small);
    // Far slower than the compute alone.
    EXPECT_GT(done, 200'000u);
}

TEST(ZenCore, Zen4BeatsZen3OnVectorWork)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    ZenCore z4(&root, "z4", zen4CoreParams(), &memory);
    ZenCore z3(&root, "z3", zen3CoreParams(), &memory);
    CpuWork work;
    work.flops = 32'000'000;
    const Tick t4 = z4.run(0, work);
    const Tick t3 = z3.run(0, work);
    // AVX-512 + clocks: roughly 2.2x (paper Sec. IV.C highlights).
    EXPECT_GT(static_cast<double>(t3) / t4, 1.8);
}

TEST(ZenCore, SpinWaitPollsUntilFlag)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    ZenCore core(&root, "core", zen4CoreParams(), &memory);
    const Tick flag_at = 1'000'000;
    const Tick t = core.spinWait(0, flag_at, 10'000, 50'000);
    EXPECT_GE(t, flag_at);
    EXPECT_LE(t, flag_at + 10'000 + 50'000);
    EXPECT_GT(core.spin_polls.value(), 50.0);
}

TEST(ZenCore, SpinWaitOnSetFlagReturnsQuickly)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    ZenCore core(&root, "core", zen4CoreParams(), &memory);
    const Tick t = core.spinWait(500, 100, 10'000, 1'000);
    EXPECT_EQ(t, 1'500u);
}

TEST(ZenCore, WorkSerializesOnOneCore)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    ZenCore core(&root, "core", zen4CoreParams(), &memory);
    CpuWork work;
    work.flops = 16'000'000;
    const Tick first = core.run(0, work);
    const Tick second = core.run(0, work);
    EXPECT_NEAR(static_cast<double>(second),
                2.0 * static_cast<double>(first),
                static_cast<double>(first) * 0.01);
}

TEST(Ccd, GeometryAndPeaks)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100'000);
    Ccd ccd(&root, "ccd", zen4CcdParams(), &memory);
    EXPECT_EQ(ccd.numCores(), 8u);
    // 8 cores x 16 DP flops x 3.7 GHz = 473.6 Gflop/s.
    EXPECT_NEAR(ccd.peakFlops(true) / 1e9, 473.6, 1.0);
}

TEST(Ccd, ParallelSplitsWork)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    Ccd ccd(&root, "ccd", zen4CcdParams(), &memory);
    CpuWork work;
    work.flops = 128'000'000;
    const Tick parallel = ccd.runParallel(0, work, 8);
    Ccd ccd1(&root, "ccd1", zen4CcdParams(), &memory);
    const Tick serial = ccd1.runParallel(0, work, 1);
    EXPECT_NEAR(static_cast<double>(serial) / parallel, 8.0, 0.5);
}

TEST(Ccd, DrainTimeTracksLatestCore)
{
    SimObject root(nullptr, "root");
    FlatMemory memory(&root, 100);
    Ccd ccd(&root, "ccd", zen4CcdParams(), &memory);
    CpuWork work;
    work.flops = 1'000'000;
    const Tick done = ccd.runParallel(0, work, 4);
    EXPECT_EQ(ccd.drainTime(), done);
}
