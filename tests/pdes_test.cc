/**
 * @file
 * Determinism gates for the conservative parallel core (sim/pdes,
 * DESIGN.md §15).
 *
 * The PDES contract is absolute: a simulation run on N partitions
 * produces byte-identical output to the serial kernel, for any N.
 * Each test here renders a full run — the complete stats tree, or a
 * whole serving document — to a string under serial execution and
 * under --pdes-style execution with 1, 2, and 8 partitions, and
 * EXPECT_EQs the strings. A mismatch prints the first diverging
 * stat, which localizes the offending event ordering.
 *
 * Three workloads cover the three synchronization regimes:
 *  - the octo all-reduce: steady-state parallel windows, every
 *    partition group independent;
 *  - a fixed-seed TP-2 serving run: coordinator-heavy (the batcher
 *    lives on the serial queue) with bursts of partitioned chunks;
 *  - a fault storm with a mid-run link kill: the placement collapse
 *    path, where a detoured route forces every partition into one
 *    merged group at a window boundary.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "comm/comm_group.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "serve/scenario.hh"
#include "sim/json.hh"
#include "sim/pdes/pdes_engine.hh"
#include "soc/node_topology.hh"

using namespace ehpsim;

namespace
{

/** One run's complete observable history: the root stats tree plus
 *  the final simulated tick. */
struct RunRecord
{
    std::string stats;
    Tick final_tick = 0;
};

/** Ring + direct all-reduce over the Fig. 18b octo node; pdes == 0
 *  runs the serial kernel. */
RunRecord
octoAllReduceRun(unsigned pdes)
{
    SimObject root(nullptr, "root");
    auto topo = soc::NodeTopology::mi300xOctoNode(&root);
    EventQueue eq;
    comm::CommParams params;
    params.chunk_bytes = 1 * MiB;
    comm::CommGroup group(topo.get(), "comm", topo->network(),
                          topo->deviceRanks(), &eq, params);

    std::unique_ptr<pdes::PdesEngine> engine;
    if (pdes > 0) {
        engine = std::make_unique<pdes::PdesEngine>(
            &eq, topo->network(), pdes);
        group.attachPdes(engine.get());
    }

    group.allReduce(0, 4 * MiB, comm::Algorithm::ring);
    group.allReduce(0, 4 * MiB, comm::Algorithm::direct);
    group.waitAll();
    if (engine)
        group.attachPdes(nullptr);

    RunRecord rec;
    rec.final_tick = eq.curTick();
    std::ostringstream ss;
    json::JsonWriter jw(ss);
    root.dumpJsonStats(jw);
    rec.stats = ss.str();
    return rec;
}

/**
 * A collective storm under the fault injector: transient chunk
 * errors plus a link kill scheduled mid-run, so routes detour and
 * the engine must collapse its partition groups at a window
 * boundary without perturbing the schedule.
 */
RunRecord
faultStormRun(unsigned pdes)
{
    SimObject root(nullptr, "root");
    auto topo = soc::NodeTopology::mi300xOctoNode(&root);
    EventQueue eq;
    comm::CommParams params;
    params.chunk_bytes = 1 * MiB;
    params.retry_timeout = 200'000'000;
    comm::CommGroup group(topo.get(), "comm", topo->network(),
                          topo->deviceRanks(), &eq, params);

    fault::FaultPlan plan;
    plan.seed = 7;
    plan.chunk_error_rate = 0.02;
    plan.link_faults.push_back(
        fault::LinkFault{"mi300x0", "mi300x1", 50'000'000, 0.0});
    plan.validate();
    fault::FaultInjector injector(topo.get(), "inj", plan, &eq);
    injector.attachNetwork(topo->network());
    injector.attachCommGroup(&group);
    injector.arm();

    std::unique_ptr<pdes::PdesEngine> engine;
    if (pdes > 0) {
        engine = std::make_unique<pdes::PdesEngine>(
            &eq, topo->network(), pdes);
        group.attachPdes(engine.get());
    }

    group.allReduce(0, 8 * MiB, comm::Algorithm::ring);
    group.waitAll();
    group.allReduce(0, 8 * MiB, comm::Algorithm::direct);
    group.waitAll();
    if (engine) {
        // The kill at 50 us landed mid-run: the detoured route must
        // have collapsed every partition into one merged group.
        EXPECT_EQ(engine->numGroups(), 1u);
        group.attachPdes(nullptr);
    }

    RunRecord rec;
    rec.final_tick = eq.curTick();
    std::ostringstream ss;
    json::JsonWriter jw(ss);
    root.dumpJsonStats(jw);
    rec.stats = ss.str();
    return rec;
}

/** A fixed-seed TP-2 serving run rendered as its full JSON
 *  document (params + metrics + stats tree). */
std::string
serveDoc(unsigned pdes)
{
    serve::ScenarioParams p;
    p.device = "mi300x";
    p.tp = 2;
    p.num_requests = 8;
    p.seed = 42;
    p.load_rps = 1.0;
    p.pdes = pdes;
    const auto r = serve::runServingScenario(p);
    std::ostringstream ss;
    json::JsonWriter jw(ss);
    serve::dumpScenario(jw, p, r);
    return ss.str();
}

} // anonymous namespace

TEST(Pdes, OctoAllReduceMatchesSerialForAnyPartitionCount)
{
    const RunRecord serial = octoAllReduceRun(0);
    ASSERT_FALSE(serial.stats.empty());
    for (const unsigned n : {1u, 2u, 8u}) {
        const RunRecord par = octoAllReduceRun(n);
        EXPECT_EQ(par.final_tick, serial.final_tick) << "pdes=" << n;
        EXPECT_EQ(par.stats, serial.stats) << "pdes=" << n;
    }
}

TEST(Pdes, FaultStormWithMidRunKillMatchesSerial)
{
    const RunRecord serial = faultStormRun(0);
    for (const unsigned n : {1u, 2u, 8u}) {
        const RunRecord par = faultStormRun(n);
        EXPECT_EQ(par.final_tick, serial.final_tick) << "pdes=" << n;
        EXPECT_EQ(par.stats, serial.stats) << "pdes=" << n;
    }
}

TEST(Pdes, ServingScenarioMatchesSerial)
{
    const std::string serial = serveDoc(0);
    ASSERT_NE(serial.find("\"completed\": 8"), std::string::npos);
    for (const unsigned n : {1u, 2u, 8u})
        EXPECT_EQ(serveDoc(n), serial) << "pdes=" << n;
}

TEST(Pdes, EngineReportsParallelProgress)
{
    // White-box: the octo all-reduce at 8 partitions must actually
    // exercise the parallel path — nonzero lookahead (every rank
    // pair rides a direct IF link), more than one worker group, and
    // at least one parallel window per collective.
    SimObject root(nullptr, "root");
    auto topo = soc::NodeTopology::mi300xOctoNode(&root);
    EventQueue eq;
    comm::CommParams params;
    params.chunk_bytes = 1 * MiB;
    comm::CommGroup group(topo.get(), "comm", topo->network(),
                          topo->deviceRanks(), &eq, params);
    pdes::PdesEngine engine(&eq, topo->network(), 8);
    group.attachPdes(&engine);

    group.allReduce(0, 4 * MiB, comm::Algorithm::ring);
    group.waitAll();

    EXPECT_GT(engine.lookahead(), 0);
    EXPECT_GT(engine.numGroups(), 1u);
    EXPECT_GT(engine.windows(), 0u);
    EXPECT_GT(engine.totalProcessed(), 0u);
    group.attachPdes(nullptr);
}
